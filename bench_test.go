// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Fig. 3 to Fig. 9) plus the ISP design-choice ablations. Each benchmark
// runs the corresponding experiment sweep with a scaled-down "quick" profile
// so that `go test -bench=. -benchmem` regenerates every series in minutes;
// the full paper-scale sweeps are available through `cmd/nrbench -profile
// paper` (see EXPERIMENTS.md for the recorded outputs and the comparison
// against the paper's numbers).
//
// The regenerated tables are printed once per benchmark (on the first
// iteration) so that a benchmark run doubles as a figure regeneration.
package netrecovery_test

import (
	"context"
	"os"
	"sync"
	"testing"

	"netrecovery/internal/experiments"
)

// benchConfig is the shared scaled-down profile used by the benchmarks.
func benchConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.Runs = 1
	return cfg
}

// printOnce renders the tables of a figure result the first time a benchmark
// reaches it, so figure output is not repeated across b.N iterations.
var printedFigures sync.Map

func reportTables(b *testing.B, res *experiments.FigureResult) {
	b.Helper()
	if _, loaded := printedFigures.LoadOrStore(res.Figure+res.Tables[0].Title, true); loaded {
		return
	}
	for _, table := range res.Tables {
		if err := table.Render(os.Stdout); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_MulticommodityEnvelope regenerates Fig. 3: total repairs of
// the best/worst multi-commodity optima (MCB/MCW) versus ALL as the demand
// per pair grows on Bell-Canada with complete destruction.
func BenchmarkFig3_MulticommodityEnvelope(b *testing.B) {
	cfg := benchConfig()
	cfg.IncludeOpt = false // OPT appears in Fig. 4-6 benches; keep Fig. 3 light
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3MulticommodityEnvelope(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, res)
	}
}

// BenchmarkFig4_VaryDemandPairs regenerates Fig. 4(a)-(d): repairs and
// satisfied demand versus the number of demand pairs on Bell-Canada with
// complete destruction (10 units per pair).
func BenchmarkFig4_VaryDemandPairs(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4VaryDemandPairs(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, res)
	}
}

// BenchmarkFig5_VaryDemandIntensity regenerates Fig. 5(a)-(b): repairs and
// satisfied demand versus the per-pair demand intensity (4 pairs).
func BenchmarkFig5_VaryDemandIntensity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5VaryDemandIntensity(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, res)
	}
}

// BenchmarkFig6_VaryDisruption regenerates Fig. 6(a)-(b): repairs and
// satisfied demand versus the variance of the geographic disruption.
func BenchmarkFig6_VaryDisruption(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6VaryDisruption(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, res)
	}
}

// BenchmarkFig7_ErdosRenyiScalability regenerates Fig. 7(a)-(b): execution
// time and total repairs of ISP, SRT and OPT on Erdős–Rényi instances of
// increasing density (connectivity-only demands).
func BenchmarkFig7_ErdosRenyiScalability(b *testing.B) {
	cfg := benchConfig()
	cfg.IncludeOpt = true
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7ErdosRenyiScalability(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, res)
	}
}

// BenchmarkFig8_CAIDATopology regenerates Fig. 8: the statistics of the
// CAIDA-like 825-node topology stand-in.
func BenchmarkFig8_CAIDATopology(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8CAIDAStatistics(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, res)
	}
}

// BenchmarkFig9_CAIDA regenerates Fig. 9(a)-(b): total repairs and satisfied
// demand of ISP and SRT on the 825-node CAIDA-like topology under a
// geographic disruption (22 units per pair).
func BenchmarkFig9_CAIDA(b *testing.B) {
	cfg := benchConfig()
	cfg.DemandPairs = []int{1, 3, 5}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9CAIDA(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, res)
	}
}

// BenchmarkAblation_CentralityMetric compares the full ISP against its
// ablated variants (classical betweenness ranking, static path metric, no
// pruning) on the Fig. 4 scenarios.
func BenchmarkAblation_CentralityMetric(b *testing.B) {
	cfg := benchConfig()
	cfg.DemandPairs = []int{3}
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationCentrality(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, res)
	}
}

// BenchmarkAblation_PathMetric isolates the dynamic path metric on a denser
// demand set (5 pairs), where concentrating flow on already-repaired
// elements matters most.
func BenchmarkAblation_PathMetric(b *testing.B) {
	cfg := benchConfig()
	cfg.DemandPairs = []int{5}
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationCentrality(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, res)
	}
}

// BenchmarkAblation_Pruning exercises the ablation sweep at the paper's
// 4-pair setting; the "ISP-no-pruning" series quantifies the prune rule.
func BenchmarkAblation_Pruning(b *testing.B) {
	cfg := benchConfig()
	cfg.DemandPairs = []int{4}
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationCentrality(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, res)
	}
}
