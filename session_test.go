package netrecovery

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"netrecovery/internal/wire"
)

// wirePlanBytes encodes a plan for byte-level comparison. RuntimeMS is the
// single wall-clock field of the wire schema; it is zeroed so the comparison
// covers every answer field (repairs, routing-derived demand metrics, cost,
// fingerprint) without being trivially broken by timing.
func wirePlanBytes(t *testing.T, sc *Scenario, p *Plan) []byte {
	t.Helper()
	wp := wire.FromPlan(sc.inner, p.inner)
	wp.RuntimeMS = 0
	raw, err := json.Marshal(wp)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// invariantDeltas builds a delta sequence valid for the snapshot: repair the
// first broken node, repair the first broken link (when one exists), bump a
// demand, then re-break the repaired node — the shape of an evolving
// disaster (repairs complete, demand shifts, new failures land).
func invariantDeltas(sc *Scenario) [][]Delta {
	var steps [][]Delta
	nodes := sc.BrokenNodeIDs()
	links := sc.BrokenLinkIDs()
	if len(nodes) > 0 {
		steps = append(steps, []Delta{RepairNode(nodes[0])})
	}
	if len(links) > 0 {
		steps = append(steps, []Delta{RepairLink(links[0])})
	}
	steps = append(steps, []Delta{SetDemand(0, 7)})
	if len(nodes) > 0 {
		steps = append(steps, []Delta{BreakNode(nodes[0])})
	}
	return steps
}

// TestSessionWarmMatchesColdInvariants is the session half of the delta
// property test: on every invariants topology, a warm session's re-plan
// after each delta batch must be byte-identical (via the wire encoding) to a
// cold solve of the same resulting scenario.
func TestSessionWarmMatchesColdInvariants(t *testing.T) {
	for _, topology := range []string{"bell-canada", "grid", "erdos-renyi"} {
		t.Run(topology, func(t *testing.T) {
			snap := invariantNetwork(t, topology, 1).Snapshot()
			planner := NewPlanner() // ISP exact: the warm path
			sess, err := planner.NewSession(snap)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			if _, err := sess.Plan(ctx); err != nil {
				t.Fatalf("initial plan: %v", err)
			}
			for i, step := range invariantDeltas(snap) {
				warm, err := sess.Apply(ctx, step...)
				if err != nil {
					t.Fatalf("step %d (%v): %v", i, step, err)
				}
				cur := sess.Scenario()
				cold, err := planner.Plan(ctx, cur)
				if err != nil {
					t.Fatalf("step %d cold solve: %v", i, err)
				}
				warmRaw := wirePlanBytes(t, cur, warm)
				coldRaw := wirePlanBytes(t, cur, cold)
				if string(warmRaw) != string(coldRaw) {
					t.Errorf("step %d (%v): warm plan diverged from cold:\nwarm %s\ncold %s",
						i, step, warmRaw, coldRaw)
				}
			}
			st := sess.Stats()
			if !st.Warm {
				t.Fatalf("ISP session not warm: %+v", st)
			}
			// Small topologies can resolve entirely through prune/max-flow
			// shortcuts without ever posing an LP subproblem; only the larger
			// Bell Canada instance is guaranteed memo traffic.
			if topology == "bell-canada" && st.SplitHits+st.RoutabilityHits == 0 {
				t.Errorf("warm session recorded no memo hits: %+v", st)
			}
		})
	}
}

// TestSessionRandomDeltaProperty drives a session through a random delta
// sequence on the Bell Canada invariants network, comparing each warm plan
// against a cold solve (from-scratch rebuild) of the same scenario.
func TestSessionRandomDeltaProperty(t *testing.T) {
	snap := invariantNetwork(t, "bell-canada", 2).Snapshot()
	planner := NewPlanner()
	sess, err := planner.NewSession(snap)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Plan(ctx); err != nil {
		t.Fatal(err)
	}
	// A deterministic pseudo-random walk: alternate repairs, breaks and
	// demand changes, always against the session's current state so every
	// delta is valid.
	for step := 0; step < 8; step++ {
		cur := sess.Scenario()
		var d Delta
		switch step % 4 {
		case 0, 2:
			nodes := cur.BrokenNodeIDs()
			if len(nodes) == 0 {
				continue
			}
			d = RepairNode(nodes[step%len(nodes)])
		case 1:
			links := cur.BrokenLinkIDs()
			if len(links) == 0 {
				continue
			}
			d = RepairLink(links[0])
		default:
			d = SetDemand(step%2, float64(3+step))
		}
		warm, err := sess.Apply(ctx, d)
		if err != nil {
			t.Fatalf("step %d (%v): %v", step, d, err)
		}
		after := sess.Scenario()
		cold, err := planner.Plan(ctx, after)
		if err != nil {
			t.Fatal(err)
		}
		if string(wirePlanBytes(t, after, warm)) != string(wirePlanBytes(t, after, cold)) {
			t.Errorf("step %d (%v): warm plan diverged from cold rebuild", step, d)
		}
	}
}

func TestSessionApplyInvalidIsAtomic(t *testing.T) {
	snap := invariantNetwork(t, "grid", 1).Snapshot()
	planner := NewPlanner()
	sess, err := planner.NewSession(snap)
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Scenario().Fingerprint()
	broken := snap.BrokenNodeIDs()
	if len(broken) == 0 {
		t.Skip("disruption broke no nodes")
	}
	// Valid delta followed by an invalid one: nothing may stick.
	_, err = sess.Apply(context.Background(), RepairNode(broken[0]), BreakNode(broken[0]), BreakNode(broken[0]))
	if err == nil || !strings.Contains(err.Error(), "already broken") {
		t.Fatalf("Apply error = %v, want already-broken", err)
	}
	if got := sess.Scenario().Fingerprint(); got != before {
		t.Fatalf("failed Apply changed the session scenario: %s != %s", got, before)
	}
	// The session still plans.
	if _, err := sess.Plan(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestSessionNonISPRunsCold(t *testing.T) {
	snap := invariantNetwork(t, "grid", 1).Snapshot()
	planner := NewPlanner(WithAlgorithm(SRT))
	sess, err := planner.NewSession(snap)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sess.Plan(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm() != string(SRT) {
		t.Fatalf("algorithm = %q, want SRT", plan.Algorithm())
	}
	st := sess.Stats()
	if st.Warm {
		t.Fatalf("SRT session claims warm: %+v", st)
	}
	if st.Plans != 1 {
		t.Fatalf("plans = %d, want 1", st.Plans)
	}
}

func TestSessionNilAndInvalidInputs(t *testing.T) {
	planner := NewPlanner()
	if _, err := planner.NewSession(nil); err == nil {
		t.Fatal("NewSession(nil) succeeded")
	}
	var nilSc *Scenario
	if _, err := nilSc.Apply(RepairNode(0)); err == nil {
		t.Fatal("Apply on nil scenario succeeded")
	}
}

// TestSessionConcurrentUse exercises the session mutex under the race
// detector: concurrent Apply (demand-only deltas, always valid), Plan and
// Stats calls must serialise cleanly.
func TestSessionConcurrentUse(t *testing.T) {
	snap := invariantNetwork(t, "grid", 3).Snapshot()
	planner := NewPlanner(WithFastISP())
	sess, err := planner.NewSession(snap)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Plan(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				switch g % 3 {
				case 0:
					if _, err := sess.Apply(ctx, SetDemand(0, float64(1+g+i))); err != nil {
						t.Errorf("Apply: %v", err)
					}
				case 1:
					if _, err := sess.Plan(ctx); err != nil {
						t.Errorf("Plan: %v", err)
					}
				default:
					_ = sess.Stats()
					_ = sess.Scenario().Fingerprint()
				}
			}
		}(g)
	}
	wg.Wait()
}

func ExamplePlanner_NewSession() {
	net := BellCanada()
	if err := net.AddFarApartDemands(2, 5, 1); err != nil {
		fmt.Println(err)
		return
	}
	net.ApplyGeographicDisruption(DisruptionConfig{Variance: 30, Seed: 1})
	sess, err := NewPlanner().NewSession(net.Snapshot())
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := sess.Plan(context.Background()); err != nil {
		fmt.Println(err)
		return
	}
	broken := sess.Scenario().BrokenNodeIDs()
	plan, err := sess.Apply(context.Background(), RepairNode(broken[0]))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(plan.Algorithm() == "ISP", sess.Stats().Warm)
	// Output: true true
}
