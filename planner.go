package netrecovery

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"netrecovery/internal/degrade"
	"netrecovery/internal/graph"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/plancache"
	"netrecovery/internal/scenario"
)

// Scenario is an immutable snapshot of a MinR problem instance: the supply
// network, the demand flows and the broken-element sets at one point in
// time. Build one with Network.Snapshot — the Network is the builder:
// construct or load a topology, add demands, apply disruptions, then
// snapshot. A Scenario deep-copies everything it references, so it is safe
// to share across goroutines and to solve concurrently while the source
// Network keeps mutating.
type Scenario struct {
	inner *scenario.Scenario
}

// Snapshot returns an immutable deep copy of the network's current state.
// The snapshot is detached from the Network: later mutations (AddDemand,
// BreakNode, Apply*Disruption, ...) do not affect it, and any number of
// goroutines may solve it concurrently.
func (n *Network) Snapshot() *Scenario {
	n.mu.RLock()
	defer n.mu.RUnlock()
	live := &scenario.Scenario{
		Supply:      n.graph,
		Demand:      n.demands,
		BrokenNodes: n.broken.Nodes,
		BrokenEdges: n.broken.Edges,
	}
	return &Scenario{inner: live.Clone()}
}

// NumNodes and NumLinks report the snapshot's supply-network size.
func (sc *Scenario) NumNodes() int { return sc.inner.Supply.NumNodes() }

// NumLinks reports the number of links of the snapshot's supply network.
func (sc *Scenario) NumLinks() int { return sc.inner.Supply.NumEdges() }

// TotalDemand returns the snapshot's total demand flow.
func (sc *Scenario) TotalDemand() float64 { return sc.inner.Demand.TotalFlow() }

// Broken returns the broken nodes and links of the snapshot.
func (sc *Scenario) Broken() DisruptionReport {
	return disruptionReport(sc.inner.BrokenNodes, sc.inner.BrokenEdges)
}

// BrokenNodeIDs returns the IDs of the broken nodes in ascending order.
func (sc *Scenario) BrokenNodeIDs() []int {
	out := make([]int, 0, len(sc.inner.BrokenNodes))
	for v := range sc.inner.BrokenNodes {
		out = append(out, int(v))
	}
	sort.Ints(out)
	return out
}

// BrokenLinkIDs returns the IDs of the broken links in ascending order.
func (sc *Scenario) BrokenLinkIDs() []int {
	out := make([]int, 0, len(sc.inner.BrokenEdges))
	for e := range sc.inner.BrokenEdges {
		out = append(out, int(e))
	}
	sort.Ints(out)
	return out
}

// Validate checks the snapshot's internal consistency (broken elements and
// demand endpoints must exist in the supply graph).
func (sc *Scenario) Validate() error { return sc.inner.Validate() }

// Fingerprint returns the scenario's canonical 256-bit content hash as a
// lowercase hex string. The hash covers everything a solver reads —
// topology, capacities, repair costs, demands and the disruption state — so
// two snapshots with equal fingerprints describe the same MinR instance and
// yield the same plan for the same solver configuration. It is stable
// across processes and runs, which is what lets plans be cached and served
// by content address (see NewPlanCache and cmd/nrserved).
func (sc *Scenario) Fingerprint() string { return sc.inner.FingerprintHex() }

// ProgressEvent is one observability event streamed by a long-running
// solver to a Planner's WithProgress callback: ISP reports its main-loop
// iterations, OPT reports the incumbent and bound updates of its
// branch-and-bound search.
type ProgressEvent struct {
	// Solver is the name of the emitting algorithm.
	Solver string
	// Kind is "iteration" (ISP), "incumbent" or "bound" (OPT).
	Kind string
	// Iteration and Repairs accompany iteration events: the 0-based
	// main-loop iteration and the number of elements scheduled for repair so
	// far.
	Iteration int
	Repairs   int
	// Incumbent, Bound and Nodes accompany incumbent/bound events: the
	// incumbent objective (±Inf while none exists), the best proven bound
	// and the number of explored branch-and-bound nodes.
	Incumbent float64
	Bound     float64
	Nodes     int
}

// Progress event kinds, mirroring the solver events.
const (
	EventIteration = heuristics.EventIteration
	EventIncumbent = heuristics.EventIncumbent
	EventBound     = heuristics.EventBound
)

// PlanCacheConfig parameterises NewPlanCache.
type PlanCacheConfig struct {
	// MaxEntries bounds the number of cached plans (0 = 1024); beyond it
	// the least-recently-used plan is evicted.
	MaxEntries int
	// TTL is the maximum age of a cached plan (0 = never expires).
	TTL time.Duration
}

// PlanCacheStats is a point-in-time snapshot of a PlanCache's counters.
type PlanCacheStats struct {
	// Hits, Misses and Coalesced count Plan-call outcomes: answered from
	// the cache, solved (and stored), or deduplicated onto a concurrent
	// identical solve.
	Hits, Misses, Coalesced uint64
	// Evictions and Expired count entries dropped by LRU pressure and TTL.
	Evictions, Expired uint64
	// Reelections counts waiters that found their solve leader cancelled and
	// re-competed for leadership (see the coalescing documentation on
	// PlanCache).
	Reelections uint64
	// Entries is the current number of cached plans.
	Entries int
}

// PlanCache is a content-addressed recovery-plan cache shared by any number
// of Planners (see WithCache): plans are keyed by the scenario fingerprint
// plus the solver configuration, concurrent identical Plan calls are
// coalesced into a single solve, and entries are evicted by LRU and TTL.
// It is safe for concurrent use.
type PlanCache struct {
	inner *plancache.Cache
}

// NewPlanCache returns an empty plan cache.
func NewPlanCache(cfg PlanCacheConfig) *PlanCache {
	return &PlanCache{inner: plancache.New(plancache.Config{MaxEntries: cfg.MaxEntries, TTL: cfg.TTL})}
}

// Stats returns a snapshot of the cache counters.
func (c *PlanCache) Stats() PlanCacheStats {
	st := c.inner.Stats()
	return PlanCacheStats{
		Hits:        st.Hits,
		Misses:      st.Misses,
		Coalesced:   st.Coalesced,
		Evictions:   st.Evictions,
		Expired:     st.Expired,
		Reelections: st.Reelections,
		Entries:     st.Entries,
	}
}

// plannerConfig is the resolved option set of a Planner.
type plannerConfig struct {
	alg          Algorithm
	fast         bool
	optTimeLimit time.Duration
	optMaxNodes  int
	workers      int
	progress     func(ProgressEvent)
	schedule     bool
	stageBudget  float64
	cache        *PlanCache
	deadline     time.Duration
}

// PlannerOption configures a Planner. Options are applied by NewPlanner in
// order.
type PlannerOption func(*plannerConfig)

// WithAlgorithm selects the recovery algorithm (default ISP). Any name in
// the solver registry is accepted, including solvers added with
// RegisterSolver.
func WithAlgorithm(alg Algorithm) PlannerOption {
	return func(c *plannerConfig) { c.alg = alg }
}

// WithFastISP prefers speed over solution quality where the algorithm
// offers the trade-off: ISP switches to its greedy split mode, recommended
// for networks with hundreds of nodes. Other built-in algorithms ignore it;
// custom solvers receive it as SolverConfig.Fast.
func WithFastISP() PlannerOption {
	return func(c *plannerConfig) { c.fast = true }
}

// WithOPTBudget bounds OPT's branch-and-bound search by wall-clock time and
// explored nodes. Zero values keep the solver defaults (120s / 4000 nodes).
func WithOPTBudget(limit time.Duration, maxNodes int) PlannerOption {
	return func(c *plannerConfig) {
		c.optTimeLimit = limit
		c.optMaxNodes = maxNodes
	}
}

// WithParallelism sets the number of worker goroutines an algorithm may use
// inside a single Plan call. OPT's branch and bound solves its LP
// relaxations on that many workers; other built-in algorithms currently run
// sequentially, and custom solvers receive the value as
// SolverConfig.Workers. Zero (the default) uses all of GOMAXPROCS, negative
// forces sequential execution.
//
// Parallelism never changes the answer: OPT's search is deterministic — the
// same plan, objective, bound and node count for every worker count and
// every run — so WithParallelism is purely a latency/resource knob. Callers
// that already fan out across scenarios (e.g. a Sweep) should pass 1, or
// set SweepSpec workers instead, to avoid oversubscription.
func WithParallelism(workers int) PlannerOption {
	return func(c *plannerConfig) { c.workers = workers }
}

// WithProgress streams solver progress events (ISP iterations, OPT
// incumbent/bound updates) to fn, for observability under long solves. The
// callback runs synchronously on the solver goroutine and must be cheap;
// concurrent Plan calls invoke it from multiple goroutines.
func WithProgress(fn func(ProgressEvent)) PlannerOption {
	return func(c *plannerConfig) { c.progress = fn }
}

// WithCache answers Plan calls from the given content-addressed cache when
// an identical scenario has already been solved with an identical solver
// configuration, and coalesces concurrent identical Plan calls into one
// solve. Identity is by content: the scenario Fingerprint plus the
// algorithm and its answer-relevant options (fast mode, OPT budget —
// WithParallelism and WithProgress are excluded, parallelism never changes
// the plan and progress is pure observability; note a cache hit therefore
// emits no progress events). Any number of Planners may share one cache;
// CLI and sweep users get request deduplication for free by passing the
// same cache to every Planner they build.
func WithCache(c *PlanCache) PlannerOption {
	return func(cfg *plannerConfig) { cfg.cache = c }
}

// WithSchedule additionally spreads every computed plan over progressive
// recovery stages with at most stageBudget repair cost per stage (the
// progressive-recovery extension of Wang, Qiao & Yu, INFOCOM 2011); the
// timeline is available from Plan.Stages.
// The budget must be positive and at least as large as the most expensive
// single element of the plan; Plan returns an error otherwise.
func WithSchedule(stageBudget float64) PlannerOption {
	return func(c *plannerConfig) {
		c.schedule = true
		c.stageBudget = stageBudget
	}
}

// WithDeadline bounds every Plan call by an overall wall-clock budget and
// enables graceful degradation inside it: the configured algorithm gets the
// bulk of the budget, and when it cannot answer in time (or fails) the
// Planner falls back to fast ISP — the paper's polynomial heuristic in
// greedy split mode — and finally, when a cache is configured (WithCache),
// to a stale cached plan for the same scenario. Which stage served, and how
// each stage spent its slice, is reported by Plan.Degradation. Plan returns
// an error only when every stage is exhausted. A zero deadline (the
// default) disables the chain: the solver runs to completion exactly as
// before.
func WithDeadline(d time.Duration) PlannerOption {
	return func(c *plannerConfig) { c.deadline = d }
}

// DegradationStage reports how one fallback-chain stage spent its share of
// the Plan deadline.
type DegradationStage struct {
	// Stage is the chain stage name: "primary", "fallback_isp" or
	// "stale_cache".
	Stage string
	// Outcome is "served", "timeout", "error", "skipped" or "unavailable".
	Outcome string
	// Attempts counts solve attempts (0 for stages that never ran).
	Attempts int
	// Elapsed is the wall-clock time the stage consumed.
	Elapsed time.Duration
	// Err describes the failure for non-served stages ("" otherwise).
	Err string
}

// Degradation annotates a plan produced under WithDeadline: which stage of
// the fallback chain served it and how the deadline budget was spent.
type Degradation struct {
	// Level is "none" (the requested algorithm answered), "fallback" (fast
	// ISP answered) or "stale" (an expired cache entry was served).
	Level string
	// ServedBy is the name of the stage that produced the plan.
	ServedBy string
	// Deadline is the overall budget the chain ran under.
	Deadline time.Duration
	// Stages records every chain stage in order.
	Stages []DegradationStage
}

// Planner computes recovery plans for scenarios. A Planner is configured
// once with functional options and is immutable afterwards: it is safe for
// concurrent use, and one Planner may solve many scenarios (and the same
// Scenario many times) from multiple goroutines.
type Planner struct {
	cfg plannerConfig
}

// NewPlanner returns a Planner configured by the given options. With no
// options it plans with ISP in its exact (paper) configuration.
func NewPlanner(opts ...PlannerOption) *Planner {
	cfg := plannerConfig{alg: ISP}
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Planner{cfg: cfg}
}

// Plan runs the configured algorithm on the scenario and returns its repair
// plan. Every algorithm — built-in or registered with RegisterSolver — is
// constructed through the solver registry with the Planner's options.
// Cancelling the context (or letting its deadline fire) stops the solver
// promptly and returns the context's error.
func (p *Planner) Plan(ctx context.Context, sc *Scenario) (*Plan, error) {
	if sc == nil || sc.inner == nil {
		return nil, fmt.Errorf("netrecovery: Plan called with a nil scenario")
	}
	if err := sc.inner.Validate(); err != nil {
		return nil, err
	}
	params := p.params()
	solver, err := heuristics.New(string(p.cfg.alg), params)
	if err != nil {
		return nil, err
	}
	if p.cfg.deadline > 0 {
		return p.planDegraded(ctx, sc, params, solver)
	}
	var inner *scenario.Plan
	if p.cfg.cache != nil {
		key := plancache.Key{
			Fingerprint: sc.inner.Fingerprint(),
			Algorithm:   string(p.cfg.alg),
			Options:     plancache.ParamsDigest(params),
		}
		inner, _, _, err = p.cfg.cache.inner.Do(ctx, key, func(ctx context.Context) (*scenario.Plan, error) {
			return solver.Solve(ctx, sc.inner)
		})
	} else {
		inner, err = solver.Solve(ctx, sc.inner)
	}
	if err != nil {
		return nil, err
	}
	plan := &Plan{inner: inner, scen: sc.inner}
	if p.cfg.schedule {
		stages, err := buildStages(sc.inner, inner, p.cfg.stageBudget)
		if err != nil {
			return nil, err
		}
		plan.stages = stages
	}
	return plan, nil
}

// planDegraded runs the WithDeadline fallback chain: the configured solver
// under the bulk of the budget, then fast ISP, then (with a cache) a stale
// cached plan. It mirrors the serving daemon's chain without its admission
// control — a library caller owns its own concurrency.
func (p *Planner) planDegraded(ctx context.Context, sc *Scenario, params heuristics.Params, solver heuristics.Solver) (*Plan, error) {
	primaryKey := plancache.Key{
		Fingerprint: sc.inner.Fingerprint(),
		Algorithm:   string(p.cfg.alg),
		Options:     plancache.ParamsDigest(params),
	}
	solveStage := func(stageCtx context.Context, stageSolver heuristics.Solver, key plancache.Key) (*scenario.Plan, error) {
		if p.cfg.cache == nil {
			return stageSolver.Solve(stageCtx, sc.inner)
		}
		plan, _, _, err := p.cfg.cache.inner.Do(stageCtx, key, func(c context.Context) (*scenario.Plan, error) {
			return stageSolver.Solve(c, sc.inner)
		})
		var unavailable *plancache.UnavailableError
		if errors.As(err, &unavailable) {
			return stageSolver.Solve(stageCtx, sc.inner)
		}
		return plan, err
	}

	stages := []degrade.Stage{{
		Name:  "primary",
		Level: degrade.LevelNone,
		Retry: true,
		Run: func(stageCtx context.Context) (*scenario.Plan, error) {
			return solveStage(stageCtx, solver, primaryKey)
		},
	}}
	// Fast ISP is the fallback unless it is already the primary.
	fallbackParams := heuristics.Params{Fast: true, OPTWorkers: params.OPTWorkers}
	haveFallback := !(p.cfg.alg == ISP && p.cfg.fast)
	var fallbackKey plancache.Key
	if haveFallback {
		stages[0].Fraction = 0.6
		fallbackSolver, err := heuristics.New(string(ISP), fallbackParams)
		if err != nil {
			return nil, err
		}
		fallbackKey = plancache.Key{
			Fingerprint: sc.inner.Fingerprint(),
			Algorithm:   string(ISP),
			Options:     plancache.ParamsDigest(fallbackParams),
		}
		stages = append(stages, degrade.Stage{
			Name:  "fallback_isp",
			Level: degrade.LevelFallback,
			Retry: true,
			Run: func(stageCtx context.Context) (*scenario.Plan, error) {
				return solveStage(stageCtx, fallbackSolver, fallbackKey)
			},
		})
	}
	stages = append(stages, degrade.Stage{
		Name:  "stale_cache",
		Level: degrade.LevelStale,
		Free:  true,
		Skip: func() string {
			if p.cfg.cache == nil {
				return "no cache configured"
			}
			return ""
		},
		Run: func(context.Context) (*scenario.Plan, error) {
			if plan, _, _, ok := p.cfg.cache.inner.GetStale(primaryKey); ok {
				return plan, nil
			}
			if haveFallback {
				if plan, _, _, ok := p.cfg.cache.inner.GetStale(fallbackKey); ok {
					return plan, nil
				}
			}
			return nil, nil
		},
	})

	res, err := degrade.Execute(ctx, stages, degrade.Options{Deadline: p.cfg.deadline})
	if err != nil {
		return nil, err
	}
	deg := &Degradation{
		Level:    res.Level.String(),
		ServedBy: res.ServedBy,
		Deadline: p.cfg.deadline,
	}
	for _, st := range res.Stages {
		ds := DegradationStage{
			Stage:    st.Name,
			Outcome:  st.Outcome,
			Attempts: st.Attempts,
			Elapsed:  st.Elapsed,
		}
		if st.Err != nil {
			ds.Err = st.Err.Error()
		}
		deg.Stages = append(deg.Stages, ds)
	}
	plan := &Plan{inner: res.Plan, scen: sc.inner, degradation: deg}
	if p.cfg.schedule {
		stages, err := buildStages(sc.inner, res.Plan, p.cfg.stageBudget)
		if err != nil {
			return nil, err
		}
		plan.stages = stages
	}
	return plan, nil
}

// SolverInfo describes a registered recovery algorithm.
type SolverInfo struct {
	// Name is the registry key, usable as an Algorithm with WithAlgorithm.
	Name string
	// Description is a one-line human-readable summary.
	Description string
	// Exact reports whether the algorithm produces provably optimal plans
	// (given enough search budget) as opposed to a heuristic.
	Exact bool
	// Scalability hints at the instance sizes the algorithm handles.
	Scalability string
}

// Solvers returns the metadata of every registered algorithm — built-in and
// custom — in registration (presentation) order.
func Solvers() []SolverInfo {
	infos := heuristics.Infos()
	out := make([]SolverInfo, 0, len(infos))
	for _, info := range infos {
		out = append(out, SolverInfo(info))
	}
	return out
}

// SolverConfig carries the Planner options relevant to a custom solver.
type SolverConfig struct {
	// Fast mirrors WithFastISP: prefer speed over solution quality.
	Fast bool
	// OPTTimeLimit / OPTMaxNodes mirror WithOPTBudget; custom exact solvers
	// may honour them as their own search budget.
	OPTTimeLimit time.Duration
	OPTMaxNodes  int
	// Workers mirrors WithParallelism: the in-solve worker budget
	// (0 = GOMAXPROCS, negative = 1). Like the built-in solvers, a custom
	// solver must treat Workers as a latency/resource knob only — the
	// resulting plan must be identical for every value. Plan caches
	// (WithCache, the nrserved daemon) rely on this: they key plans
	// ignoring Workers, so a solver whose answer varied with it would be
	// served plans computed under a different worker count.
	Workers int
	// Progress mirrors WithProgress; custom solvers may stream their own
	// events through it.
	Progress func(ProgressEvent)
}

// Solver is the interface a custom recovery algorithm implements to
// participate in the registry. Solve must not retain or mutate the scenario
// and must honour context cancellation.
type Solver interface {
	// Name returns the algorithm's display name.
	Name() string
	// Solve computes the repair decisions for the scenario.
	Solve(ctx context.Context, sc *Scenario) (*PlanSpec, error)
}

// PlanSpec is the raw outcome a custom Solver reports: the repair decisions
// and the demand it claims to serve. The registry turns it into a full Plan,
// computing costs and runtime against the scenario.
type PlanSpec struct {
	// RepairedNodes and RepairedLinks are the element IDs to repair; they
	// must be subsets of the scenario's broken sets.
	RepairedNodes []int
	RepairedLinks []int
	// SatisfiedDemand is the demand flow (in flow units) the repairs allow
	// to be served.
	SatisfiedDemand float64
}

// SolverFactory constructs a fresh instance of a custom solver configured
// from the Planner's options. Factories must return independent values so
// concurrent plans never share solver state.
type SolverFactory func(cfg SolverConfig) Solver

// RegisterSolver adds a custom recovery algorithm under the given name,
// making it available to every consumer of the registry: Planner
// (WithAlgorithm), sweeps (SweepSpec.Algorithms), the legacy Recover shims
// and the CLI tools. It registers placeholder metadata; use
// RegisterSolverWithInfo to describe the algorithm. It panics when the name
// is empty or already taken, mirroring database/sql.Register semantics.
func RegisterSolver(name string, factory SolverFactory) {
	RegisterSolverWithInfo(SolverInfo{
		Name:        name,
		Description: "custom solver",
		Scalability: "unknown",
	}, factory)
}

// RegisterSolverWithInfo is RegisterSolver with explicit metadata, surfaced
// by Solvers() and `nrecover -list`.
func RegisterSolverWithInfo(info SolverInfo, factory SolverFactory) {
	if factory == nil {
		panic("netrecovery: RegisterSolver with nil factory")
	}
	name := info.Name
	heuristics.Register(heuristics.Info(info), func(p heuristics.Params) heuristics.Solver {
		cfg := SolverConfig{
			Fast:         p.Fast,
			OPTTimeLimit: p.OPTTimeLimit,
			OPTMaxNodes:  p.OPTMaxNodes,
			Workers:      p.OPTWorkers,
		}
		if p.Progress != nil {
			progress := p.Progress
			cfg.Progress = func(ev ProgressEvent) { progress(heuristics.ProgressEvent(ev)) }
		}
		return &customSolver{name: name, impl: factory(cfg)}
	})
}

// customSolver adapts a public Solver to the internal registry interface.
type customSolver struct {
	name string
	impl Solver
}

// Name implements heuristics.Solver.
func (c *customSolver) Name() string { return c.name }

// Solve implements heuristics.Solver: it hands the custom solver a
// read-only view of the scenario and assembles its PlanSpec into a plan.
func (c *customSolver) Solve(ctx context.Context, s *scenario.Scenario) (*scenario.Plan, error) {
	start := time.Now()
	spec, err := c.impl.Solve(ctx, &Scenario{inner: s})
	if err != nil {
		return nil, err
	}
	if spec == nil {
		return nil, fmt.Errorf("netrecovery: solver %q returned a nil plan", c.name)
	}
	plan := scenario.NewPlan(c.name)
	plan.Routing = nil
	plan.TotalDemand = s.Demand.TotalFlow()
	plan.SatisfiedDemand = spec.SatisfiedDemand
	for _, v := range spec.RepairedNodes {
		plan.RepairedNodes[graph.NodeID(v)] = true
	}
	for _, e := range spec.RepairedLinks {
		plan.RepairedEdges[graph.EdgeID(e)] = true
	}
	plan.Runtime = time.Since(start)
	return plan, nil
}
