package netrecovery

import (
	"netrecovery/internal/progressive"
	"netrecovery/internal/scenario"
)

// RecoveryStage is one step of a progressive recovery timeline: the repairs
// performed during the stage and the demand served once it completes.
type RecoveryStage struct {
	// Index is the 1-based stage number.
	Index int
	// RepairedNodes and RepairedLinks are the element IDs repaired in this
	// stage.
	RepairedNodes []int
	RepairedLinks []int
	// Cost is the repair cost spent in this stage.
	Cost float64
	// SatisfiedDemandRatio is the cumulative fraction of the demand served
	// after this stage completes.
	SatisfiedDemandRatio float64
}

// buildStages schedules the plan's repairs over stages with at most
// stageBudget repair cost per stage, ordering repairs so that the
// mission-critical demand is restored as early as possible (the
// progressive-recovery extension of Wang, Qiao & Yu; see the progressive
// package).
func buildStages(scen *scenario.Scenario, plan *scenario.Plan, stageBudget float64) ([]RecoveryStage, error) {
	sched, err := progressive.Build(scen, plan, progressive.Options{StageBudget: stageBudget})
	if err != nil {
		return nil, err
	}
	out := make([]RecoveryStage, 0, len(sched.Stages))
	for _, stage := range sched.Stages {
		rs := RecoveryStage{
			Index:                stage.Index,
			Cost:                 stage.Cost,
			SatisfiedDemandRatio: stage.SatisfiedRatio,
		}
		for _, el := range stage.Repairs {
			if el.IsNode() {
				rs.RepairedNodes = append(rs.RepairedNodes, int(el.Node))
			} else {
				rs.RepairedLinks = append(rs.RepairedLinks, int(el.Edge))
			}
		}
		out = append(out, rs)
	}
	return out, nil
}

// Stages returns the progressive recovery timeline computed alongside the
// plan when the Planner was configured with WithSchedule, or nil otherwise.
// The returned slice is a copy; mutating it does not affect the plan.
func (p *Plan) Stages() []RecoveryStage {
	if p.stages == nil {
		return nil
	}
	return append([]RecoveryStage(nil), p.stages...)
}

// ScheduleProgressively spreads the plan's repairs over stages with at most
// stageBudget repair cost per stage.
//
// Deprecated: configure the Planner with WithSchedule(stageBudget) and read
// the timeline from Plan.Stages; this shim computes the identical schedule
// on demand.
func (p *Plan) ScheduleProgressively(stageBudget float64) ([]RecoveryStage, error) {
	return buildStages(p.scen, p.inner, stageBudget)
}
