package netrecovery

import (
	"netrecovery/internal/progressive"
)

// RecoveryStage is one step of a progressive recovery timeline: the repairs
// performed during the stage and the demand served once it completes.
type RecoveryStage struct {
	// Index is the 1-based stage number.
	Index int
	// RepairedNodes and RepairedLinks are the element IDs repaired in this
	// stage.
	RepairedNodes []int
	RepairedLinks []int
	// Cost is the repair cost spent in this stage.
	Cost float64
	// SatisfiedDemandRatio is the cumulative fraction of the demand served
	// after this stage completes.
	SatisfiedDemandRatio float64
}

// ScheduleProgressively spreads the plan's repairs over stages with at most
// stageBudget repair cost per stage, ordering repairs so that the
// mission-critical demand is restored as early as possible (the
// progressive-recovery extension; see the progressive package).
func (p *Plan) ScheduleProgressively(stageBudget float64) ([]RecoveryStage, error) {
	sched, err := progressive.Build(p.scen, p.inner, progressive.Options{StageBudget: stageBudget})
	if err != nil {
		return nil, err
	}
	out := make([]RecoveryStage, 0, len(sched.Stages))
	for _, stage := range sched.Stages {
		rs := RecoveryStage{
			Index:                stage.Index,
			Cost:                 stage.Cost,
			SatisfiedDemandRatio: stage.SatisfiedRatio,
		}
		for _, el := range stage.Repairs {
			if el.IsNode() {
				rs.RepairedNodes = append(rs.RepairedNodes, int(el.Node))
			} else {
				rs.RepairedLinks = append(rs.RepairedLinks, int(el.Edge))
			}
		}
		out = append(out, rs)
	}
	return out, nil
}
