package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"netrecovery/internal/cluster"
	"netrecovery/internal/wire"
)

// TestDaemonEndToEnd boots the daemon on an ephemeral port, exercises
// /healthz and the cold/warm /v1/plan path, then shuts it down with SIGTERM
// and waits for the graceful exit.
func TestDaemonEndToEnd(t *testing.T) {
	ready := make(chan net.Addr, 1)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-request-timeout", "30s"}, &out, ready)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before becoming ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{
		"scenario": {
			"nodes": [
				{"name": "a", "x": 0, "y": 0, "repairCost": 1},
				{"name": "b", "x": 1, "y": 0, "repairCost": 1},
				{"name": "c", "x": 2, "y": 0, "repairCost": 1}
			],
			"links": [
				{"from": 0, "to": 1, "capacity": 10, "repairCost": 1},
				{"from": 1, "to": 2, "capacity": 10, "repairCost": 1}
			],
			"demands": [{"source": 0, "target": 2, "flow": 5}],
			"broken_nodes": [1],
			"broken_links": [0, 1]
		},
		"algorithm": "ISP"
	}`
	post := func() (string, string) {
		resp, err := http.Post(base+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan: %d %s", resp.StatusCode, raw)
		}
		var parsed struct {
			Plan  json.RawMessage `json:"plan"`
			Cache struct {
				Status string `json:"status"`
			} `json:"cache"`
		}
		if err := json.Unmarshal(raw, &parsed); err != nil {
			t.Fatalf("bad response %s: %v", raw, err)
		}
		return string(parsed.Plan), parsed.Cache.Status
	}
	plan1, status1 := post()
	plan2, status2 := post()
	if status1 != "miss" || status2 != "hit" {
		t.Fatalf("cache statuses = %q, %q; want miss, hit", status1, status2)
	}
	if plan1 != plan2 {
		t.Fatalf("cached plan differs from cold plan:\n%s\nvs\n%s", plan1, plan2)
	}

	// Graceful shutdown on SIGTERM.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing shutdown log in output: %q", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	// A busy/invalid address must fail fast, not hang.
	if err := run([]string{"-addr", "256.256.256.256:99999"}, io.Discard, nil); err == nil {
		t.Fatal("invalid address accepted")
	}
}

// TestDaemonClusterMode boots two daemons wired into one ring and checks
// the cross-node cache path end to end: a plan solved on the fingerprint's
// owner is served as a peer fill on the other node.
func TestDaemonClusterMode(t *testing.T) {
	// Reserve two loopback ports so the peer list is known before boot.
	reserve := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	addrs := []string{reserve(), reserve()}
	urls := []string{"http://" + addrs[0], "http://" + addrs[1]}
	peers := urls[0] + "," + urls[1]

	var outs [2]bytes.Buffer
	done := make(chan error, 2)
	for i := range addrs {
		ready := make(chan net.Addr, 1)
		go func(i int) {
			done <- run([]string{
				"-addr", addrs[i],
				"-self", urls[i],
				"-peers", peers,
				"-probe-interval", "-1s",
				"-request-timeout", "30s",
			}, &outs[i], ready)
		}(i)
		select {
		case <-ready:
		case err := <-done:
			t.Fatalf("daemon %d exited before ready: %v", i, err)
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon %d never became ready", i)
		}
	}

	body := `{
		"scenario": {
			"nodes": [
				{"name": "a", "x": 0, "y": 0, "repairCost": 1},
				{"name": "b", "x": 1, "y": 0, "repairCost": 2},
				{"name": "c", "x": 2, "y": 0, "repairCost": 3}
			],
			"links": [
				{"from": 0, "to": 1, "capacity": 10, "repairCost": 1},
				{"from": 1, "to": 2, "capacity": 10, "repairCost": 2}
			],
			"demands": [{"source": 0, "target": 2, "flow": 5}],
			"broken_nodes": [1],
			"broken_links": [1]
		},
		"algorithm": "ISP"
	}`
	// Compute the fingerprint's owner with the same ring the daemons built.
	var req wire.PlanRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	s, err := req.Scenario.Build()
	if err != nil {
		t.Fatal(err)
	}
	owner, ok := cluster.NewRing(urls, 0).Owner(s.Fingerprint(), nil)
	if !ok {
		t.Fatal("no ring owner")
	}
	other := urls[0]
	if owner == urls[0] {
		other = urls[1]
	}

	post := func(base string) string {
		resp, err := http.Post(base+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan via %s: %d %s", base, resp.StatusCode, raw)
		}
		var parsed struct {
			Cache struct {
				Status string `json:"status"`
			} `json:"cache"`
		}
		if err := json.Unmarshal(raw, &parsed); err != nil {
			t.Fatalf("bad response %s: %v", raw, err)
		}
		return parsed.Cache.Status
	}
	if status := post(owner); status != "miss" {
		t.Fatalf("owner solve: status %q, want miss", status)
	}
	if status := post(other); status != "peer" {
		t.Fatalf("non-owner: status %q, want peer", status)
	}
	if status := post(other); status != "hit" {
		t.Fatalf("non-owner repeat: status %q, want hit", status)
	}

	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exited with error: %v", err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("daemons did not shut down after SIGTERM")
		}
	}
	if !strings.Contains(outs[0].String(), "cluster mode: 2 peers") {
		t.Errorf("missing cluster-mode log: %q", outs[0].String())
	}
}

// TestClusterFlagValidation: -peers without a matching -self fails fast.
func TestClusterFlagValidation(t *testing.T) {
	if err := run([]string{"-peers", "http://a:1,http://b:1"}, io.Discard, nil); err == nil {
		t.Fatal("cluster mode without -self accepted")
	}
}
