// Command nrserved is the recovery-planning HTTP daemon: it serves
// recovery plans for JSON scenarios over a content-addressed plan cache
// with request coalescing, runs declarative scenario sweeps, and streams
// solver progress as Server-Sent Events.
//
// Usage:
//
//	nrserved -addr :8080
//	nrserved -addr :8080 -cache-entries 4096 -cache-ttl 1h \
//	         -max-inflight 8 -request-timeout 2m
//
// Endpoints (see the README "Serving" section for the full schema):
//
//	POST /v1/plan        {"scenario": {...}, "algorithm": "ISP"} -> plan + cache metadata
//	POST /v1/sweep       sweep spec -> aggregated report
//	GET  /v1/plan/stream same body as /v1/plan -> SSE progress + final plan
//	POST /v1/session     open an incremental planning session -> handle + initial plan
//	POST /v1/session/{id}/delta  apply scenario deltas, warm re-plan -> new plan
//	GET  /v1/session/{id}/stream SSE feed of the session's plan updates
//	GET  /v1/session/{id}        session info + last plan; DELETE closes it
//	GET  /v1/peer/plan/{fp}      cluster peer-fill lookup (cache-only, never solves)
//	GET  /healthz        liveness
//	GET  /metrics        Prometheus text metrics
//
// Cluster mode (-peers with the base URLs of every node, -self with this
// node's) places all nodes on one consistent-hash ring: each scenario
// fingerprint has an owning node, and a cache miss elsewhere asks the owner
// before solving locally, so a plan computed anywhere is a hit everywhere:
//
//	nrserved -addr :8080 -self http://10.0.0.1:8080 \
//	         -peers http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, lets in-flight requests drain up to -drain, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netrecovery/internal/cluster"
	"netrecovery/internal/faultinject"
	"netrecovery/internal/plancache"
	"netrecovery/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "nrserved:", err)
		os.Exit(1)
	}
}

// run starts the daemon. ready, when non-nil, receives the bound listener
// address once the server accepts connections (tests use it to find the
// ephemeral port and to shut the daemon down via the returned context).
func run(args []string, stdout io.Writer, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("nrserved", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		cacheEntries = fs.Int("cache-entries", 1024, "maximum cached plans (LRU beyond that)")
		cacheTTL     = fs.Duration("cache-ttl", 0, "maximum age of a cached plan (0 = never expires)")
		maxInFlight  = fs.Int("max-inflight", 0, "maximum concurrent solves (0 = GOMAXPROCS); excess requests queue")
		reqTimeout   = fs.Duration("request-timeout", 2*time.Minute, "per-request wall-clock budget (0 = none)")
		solverW      = fs.Int("solver-workers", 0, "default in-solve parallelism per request (0 = GOMAXPROCS/max-inflight)")
		sessionTTL   = fs.Duration("session-ttl", 10*time.Minute, "idle timeout of an open planning session")
		maxSessions  = fs.Int("max-sessions", 64, "maximum concurrently open planning sessions")
		drain        = fs.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight requests")

		cacheJitter  = fs.Float64("cache-ttl-jitter", 0, "shorten each cached plan's TTL by a deterministic per-key fraction up to this value in [0,1), spreading expiry so a burst of same-age entries does not re-solve at once")
		degradeDL    = fs.Duration("degrade-deadline", 0, "default deadline budget for /v1/plan requests that set none: inside it the solver chain degrades exact -> fast ISP -> stale cache instead of failing (0 = degrade only on request)")
		maxQueue     = fs.Int("max-queue", 0, "admission queue bound across all priority classes (0 = 8x max-inflight); excess requests are shed with 429 + Retry-After")
		faultProfile = fs.String("fault-profile", "", "arm the deterministic fault-injection harness from this JSON profile file (chaos testing; see internal/faultinject)")

		selfURL       = fs.String("self", "", "this node's advertised base URL in cluster mode, e.g. http://10.0.0.1:8080 (must appear in -peers)")
		peers         = fs.String("peers", "", "comma-separated base URLs of every cluster node including self; empty = single-node mode")
		peerTimeout   = fs.Duration("peer-timeout", cluster.DefaultFillTimeout, "per-peer-fill budget before falling back to a local solve")
		peerMailbox   = fs.Int("peer-mailbox", cluster.DefaultMailboxSize, "pending peer-fill queue bound per peer (full queue = immediate local solve)")
		peerInflight  = fs.Int("peer-inflight", cluster.DefaultWorkersPerPeer, "concurrent in-flight peer-fills per peer")
		probeInterval = fs.Duration("probe-interval", cluster.DefaultProbeInterval, "peer /healthz probing cadence (negative = no probing)")
		probeFailures = fs.Int("probe-failures", cluster.DefaultProbeFailures, "consecutive failed probes that eject a peer from the ring")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *faultProfile != "" {
		profile, err := faultinject.LoadProfile(*faultProfile)
		if err != nil {
			return fmt.Errorf("fault profile: %w", err)
		}
		faultinject.Arm(profile)
		fmt.Fprintf(stdout, "nrserved: fault injection armed from %s\n", *faultProfile)
	}

	var clu *cluster.Cluster
	if *peers != "" {
		peerList := strings.Split(*peers, ",")
		for i := range peerList {
			peerList[i] = strings.TrimSpace(strings.TrimSuffix(peerList[i], "/"))
		}
		self := strings.TrimSpace(strings.TrimSuffix(*selfURL, "/"))
		var err error
		clu, err = cluster.New(cluster.Config{
			Self:           self,
			Peers:          peerList,
			FillTimeout:    *peerTimeout,
			MailboxSize:    *peerMailbox,
			WorkersPerPeer: *peerInflight,
			ProbeInterval:  *probeInterval,
			ProbeFailures:  *probeFailures,
		})
		if err != nil {
			return err
		}
		clu.Start()
		defer clu.Close()
		fmt.Fprintf(stdout, "nrserved cluster mode: %d peers, self %s\n", clu.Size(), self)
	}

	srv := server.New(server.Config{
		Cluster: clu,
		Cache: plancache.New(plancache.Config{
			MaxEntries: *cacheEntries,
			TTL:        *cacheTTL,
			TTLJitter:  *cacheJitter,
		}),
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		RequestTimeout:  *reqTimeout,
		DegradeDeadline: *degradeDL,
		SolverWorkers:   *solverW,
		SessionTTL:      *sessionTTL,
		MaxSessions:     *maxSessions,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler: srv.Handler(),
		// Solves stream or run long; only bound the header read here, the
		// per-request budget is enforced inside the handler.
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          log.New(io.Discard, "", 0),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(stdout, "nrserved listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "nrserved shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// The drain budget expired with requests still in flight; close
		// them hard.
		httpSrv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}
