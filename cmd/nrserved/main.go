// Command nrserved is the recovery-planning HTTP daemon: it serves
// recovery plans for JSON scenarios over a content-addressed plan cache
// with request coalescing, runs declarative scenario sweeps, and streams
// solver progress as Server-Sent Events.
//
// Usage:
//
//	nrserved -addr :8080
//	nrserved -addr :8080 -cache-entries 4096 -cache-ttl 1h \
//	         -max-inflight 8 -request-timeout 2m
//
// Endpoints (see the README "Serving" section for the full schema):
//
//	POST /v1/plan        {"scenario": {...}, "algorithm": "ISP"} -> plan + cache metadata
//	POST /v1/sweep       sweep spec -> aggregated report
//	GET  /v1/plan/stream same body as /v1/plan -> SSE progress + final plan
//	POST /v1/session     open an incremental planning session -> handle + initial plan
//	POST /v1/session/{id}/delta  apply scenario deltas, warm re-plan -> new plan
//	GET  /v1/session/{id}/stream SSE feed of the session's plan updates
//	GET  /v1/session/{id}        session info + last plan; DELETE closes it
//	GET  /v1/peer/plan/{fp}      cluster peer-fill lookup (cache-only, never solves)
//	GET  /healthz        liveness
//	GET  /metrics        Prometheus text metrics
//
// Cluster mode (-peers with the base URLs of every node, -self with this
// node's) places all nodes on one consistent-hash ring: each scenario
// fingerprint has an owning node, and a cache miss elsewhere asks the owner
// before solving locally, so a plan computed anywhere is a hit everywhere:
//
//	nrserved -addr :8080 -self http://10.0.0.1:8080 \
//	         -peers http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, lets in-flight requests drain up to -drain, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"netrecovery/internal/cluster"
	"netrecovery/internal/faultinject"
	"netrecovery/internal/obs"
	"netrecovery/internal/plancache"
	"netrecovery/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "nrserved:", err)
		os.Exit(1)
	}
}

// run starts the daemon. ready, when non-nil, receives the bound listener
// address once the server accepts connections (tests use it to find the
// ephemeral port and to shut the daemon down via the returned context).
func run(args []string, stdout io.Writer, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("nrserved", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		cacheEntries = fs.Int("cache-entries", 1024, "maximum cached plans (LRU beyond that)")
		cacheTTL     = fs.Duration("cache-ttl", 0, "maximum age of a cached plan (0 = never expires)")
		maxInFlight  = fs.Int("max-inflight", 0, "maximum concurrent solves (0 = GOMAXPROCS); excess requests queue")
		reqTimeout   = fs.Duration("request-timeout", 2*time.Minute, "per-request wall-clock budget (0 = none)")
		solverW      = fs.Int("solver-workers", 0, "default in-solve parallelism per request (0 = GOMAXPROCS/max-inflight)")
		sessionTTL   = fs.Duration("session-ttl", 10*time.Minute, "idle timeout of an open planning session")
		maxSessions  = fs.Int("max-sessions", 64, "maximum concurrently open planning sessions")
		drain        = fs.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight requests")

		cacheJitter  = fs.Float64("cache-ttl-jitter", 0, "shorten each cached plan's TTL by a deterministic per-key fraction up to this value in [0,1), spreading expiry so a burst of same-age entries does not re-solve at once")
		degradeDL    = fs.Duration("degrade-deadline", 0, "default deadline budget for /v1/plan requests that set none: inside it the solver chain degrades exact -> fast ISP -> stale cache instead of failing (0 = degrade only on request)")
		maxQueue     = fs.Int("max-queue", 0, "admission queue bound across all priority classes (0 = 8x max-inflight); excess requests are shed with 429 + Retry-After")
		faultProfile = fs.String("fault-profile", "", "arm the deterministic fault-injection harness from this JSON profile file (chaos testing; see internal/faultinject)")

		logFormat   = fs.String("log-format", "text", "structured log encoding: text or json")
		logLevel    = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		trace       = fs.Bool("trace", true, "trace API requests into the in-memory ring exposed at /debug/traces (disabled tracing costs one atomic load per request)")
		traceSeed   = fs.Uint64("trace-seed", 0, "seed of the deterministic trace/span ID stream (0 = derived from the listen address)")
		traceCap    = fs.Int("trace-capacity", 0, "bounded trace ring size (0 = 256); the oldest trace is evicted beyond that")
		debugAddr   = fs.String("debug-addr", "", "separate listener for /debug/pprof and /debug/traces (empty = no debug listener; traces also ride the main listener)")
		profileRate = fs.Int("debug-profile-rate", 0, "runtime block-profile rate and mutex-profile fraction for the pprof endpoints (0 = off)")

		selfURL       = fs.String("self", "", "this node's advertised base URL in cluster mode, e.g. http://10.0.0.1:8080 (must appear in -peers)")
		peers         = fs.String("peers", "", "comma-separated base URLs of every cluster node including self; empty = single-node mode")
		peerTimeout   = fs.Duration("peer-timeout", cluster.DefaultFillTimeout, "per-peer-fill budget before falling back to a local solve")
		peerMailbox   = fs.Int("peer-mailbox", cluster.DefaultMailboxSize, "pending peer-fill queue bound per peer (full queue = immediate local solve)")
		peerInflight  = fs.Int("peer-inflight", cluster.DefaultWorkersPerPeer, "concurrent in-flight peer-fills per peer")
		probeInterval = fs.Duration("probe-interval", cluster.DefaultProbeInterval, "peer /healthz probing cadence (negative = no probing)")
		probeFailures = fs.Int("probe-failures", cluster.DefaultProbeFailures, "consecutive failed probes that eject a peer from the ring")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logFormat != "text" && *logFormat != "json" {
		return fmt.Errorf("bad -log-format %q (want text or json)", *logFormat)
	}
	logger := obs.NewLogger(obs.LoggerConfig{
		W:      stdout,
		Format: *logFormat,
		Level:  obs.ParseLevel(*logLevel),
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *faultProfile != "" {
		profile, err := faultinject.LoadProfile(*faultProfile)
		if err != nil {
			return fmt.Errorf("fault profile: %w", err)
		}
		faultinject.Arm(profile)
		logger.Warn(ctx, fmt.Sprintf("nrserved: fault injection armed from %s", *faultProfile))
	}

	var tracer *obs.Tracer
	if *trace {
		seed := *traceSeed
		if seed == 0 {
			seed = hashString(*addr)
		}
		tracer = obs.NewTracer(obs.Config{Seed: seed, Capacity: *traceCap})
		tracer.Enable()
	}

	var clu *cluster.Cluster
	if *peers != "" {
		peerList := strings.Split(*peers, ",")
		for i := range peerList {
			peerList[i] = strings.TrimSpace(strings.TrimSuffix(peerList[i], "/"))
		}
		self := strings.TrimSpace(strings.TrimSuffix(*selfURL, "/"))
		var err error
		clu, err = cluster.New(cluster.Config{
			Self:           self,
			Peers:          peerList,
			FillTimeout:    *peerTimeout,
			MailboxSize:    *peerMailbox,
			WorkersPerPeer: *peerInflight,
			ProbeInterval:  *probeInterval,
			ProbeFailures:  *probeFailures,
			Logger:         logger,
		})
		if err != nil {
			return err
		}
		clu.Start()
		defer clu.Close()
		logger.Info(ctx, fmt.Sprintf("nrserved cluster mode: %d peers, self %s", clu.Size(), self))
	}

	srv := server.New(server.Config{
		Cluster: clu,
		Cache: plancache.New(plancache.Config{
			MaxEntries: *cacheEntries,
			TTL:        *cacheTTL,
			TTLJitter:  *cacheJitter,
		}),
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		RequestTimeout:  *reqTimeout,
		DegradeDeadline: *degradeDL,
		SolverWorkers:   *solverW,
		SessionTTL:      *sessionTTL,
		MaxSessions:     *maxSessions,
		Tracer:          tracer,
		Logger:          logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler: srv.Handler(),
		// Solves stream or run long; only bound the header read here, the
		// per-request budget is enforced inside the handler.
		ReadHeaderTimeout: 10 * time.Second,
		// Accept errors, TLS handshake failures and handler panics land in
		// the structured log, rate-limited per second so a port scan or a
		// misbehaving client cannot flood it.
		ErrorLog: log.New(logger.LineWriter(obs.LevelWarn, "http-server"), "", 0),
	}

	if *debugAddr != "" {
		debugLn, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer debugLn.Close()
		if *profileRate > 0 {
			runtime.SetBlockProfileRate(*profileRate)
			runtime.SetMutexProfileFraction(*profileRate)
		}
		debugSrv := &http.Server{
			Handler:           debugMux(tracer),
			ReadHeaderTimeout: 10 * time.Second,
			ErrorLog:          log.New(logger.LineWriter(obs.LevelWarn, "debug-server"), "", 0),
		}
		go debugSrv.Serve(debugLn)
		defer debugSrv.Close()
		logger.Info(ctx, fmt.Sprintf("nrserved debug listener on %s (pprof, traces)", debugLn.Addr()))
	}

	logger.Info(ctx, fmt.Sprintf("nrserved listening on %s", ln.Addr()),
		"tracing", tracer.Enabled(), "log_format", *logFormat)
	if ready != nil {
		ready <- ln.Addr()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}

	logger.Info(ctx, "nrserved shutting down", "drain_budget", drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// The drain budget expired with requests still in flight; close
		// them hard.
		httpSrv.Close()
		logger.Error(ctx, "nrserved drain budget expired, closing in-flight requests", "err", err.Error())
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Info(ctx, "nrserved drained cleanly")
	return nil
}

// debugMux serves the opt-in debug listener: pprof (with the block/mutex
// rates set by -debug-profile-rate) plus the trace ring.
func debugMux(tracer *obs.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if tracer != nil {
		th := tracer.Handler("/debug/traces")
		mux.Handle("GET /debug/traces", th)
		mux.Handle("GET /debug/traces/{rest...}", th)
	}
	return mux
}

// hashString derives a deterministic tracer seed from the listen address
// (splitmix64 over the bytes), so multi-node fleets started without
// -trace-seed still get distinct ID streams.
func hashString(s string) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < len(s); i++ {
		h = splitmix64(h ^ uint64(s[i]))
	}
	if h == 0 {
		h = 1
	}
	return h
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
