package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"netrecovery/internal/core"
	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/flow"
	"netrecovery/internal/lp"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// benchRecord is one row of the BENCH_lp.json trajectory file: a named
// micro-benchmark with its per-operation cost. Future performance PRs append
// their numbers to EXPERIMENTS.md by re-running `nrbench -bench-json`.
type benchRecord struct {
	Name        string  `json:"name"`
	Reps        int     `json:"reps"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	Suite      string        `json:"suite"`
	GoVersion  string        `json:"go_version"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// measure runs fn reps times and records wall time and heap allocations.
func measure(name string, reps int, fn func()) benchRecord {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchRecord{
		Name:        name,
		Reps:        reps,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(reps),
		AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(reps),
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(reps),
	}
}

// lpTransportation builds the 25x25 transportation LP used by the LP rows of
// the trajectory (mirrors internal/lp's BenchmarkLP_SparseCold).
func lpTransportation(seed int64) *lp.Problem {
	rng := rand.New(rand.NewSource(seed))
	const s, d = 25, 25
	p := lp.New(lp.Minimize)
	for i := 0; i < s*d; i++ {
		p.AddVariable(1+rng.Float64()*9, "")
	}
	demands := make([]float64, d)
	total := 0.0
	for j := range demands {
		demands[j] = 1 + rng.Float64()*9
		total += demands[j]
	}
	terms := make([]lp.Term, 0, s*d)
	for i := 0; i < s; i++ {
		terms = terms[:0]
		for j := 0; j < d; j++ {
			terms = append(terms, lp.Term{Var: i*d + j, Coef: 1})
		}
		if err := p.AddConstraint(terms, lp.LessEq, total/s+rng.Float64()*3, ""); err != nil {
			panic(err)
		}
	}
	for j := 0; j < d; j++ {
		terms = terms[:0]
		for i := 0; i < s; i++ {
			terms = append(terms, lp.Term{Var: i*d + j, Coef: 1})
		}
		if err := p.AddConstraint(terms, lp.Equal, demands[j], ""); err != nil {
			panic(err)
		}
	}
	return p
}

// benchLPScenario is the Quick-profile Bell-Canada scenario of the ISP rows.
func benchLPScenario() (*scenario.Scenario, error) {
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(1))
	dg, err := demand.GenerateFarApartPairs(g, 4, 10, rng)
	if err != nil {
		return nil, err
	}
	d := disruption.Complete(g)
	return &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}, nil
}

// runBenchJSON executes the LP/ISP micro-benchmark suite and writes the
// trajectory file (canonically BENCH_lp.json) so that future performance PRs
// have a recorded baseline to compare against.
func runBenchJSON(ctx context.Context, path string) error {
	s, err := benchLPScenario()
	if err != nil {
		return err
	}
	mustSolve := func(opts core.Options) func() {
		return func() {
			if _, _, err := core.Solve(ctx, s, opts); err != nil {
				panic(err)
			}
		}
	}

	report := benchReport{Suite: "lp", GoVersion: runtime.Version()}
	prob := lpTransportation(3)
	solver := lp.NewSolver()
	report.Benchmarks = append(report.Benchmarks,
		measure("lp_transportation_sparse_cold", 20, func() {
			if sol := solver.Solve(prob, lp.Options{}); sol.Status != lp.StatusOptimal {
				panic(sol.Status)
			}
		}),
		measure("lp_transportation_dense_cold", 5, func() {
			if sol := prob.SolveWithOptions(lp.Options{Dense: true}); sol.Status != lp.StatusOptimal {
				panic(sol.Status)
			}
		}),
	)
	warm := solver.Solve(prob, lp.Options{})
	if warm.Status != lp.StatusOptimal {
		return fmt.Errorf("bench-json: warm-up solve failed: %v", warm.Status)
	}
	basis := warm.Basis
	rng := rand.New(rand.NewSource(9))
	report.Benchmarks = append(report.Benchmarks,
		measure("lp_transportation_warm_resolve", 200, func() {
			_ = prob.SetRHS(25+rng.Intn(25), 1+rng.Float64()*9)
			sol := solver.Solve(prob, lp.Options{WarmStart: basis})
			if sol.Status != lp.StatusOptimal {
				panic(sol.Status)
			}
			basis = sol.Basis
		}),
		measure("isp_iteration_exact", 3, mustSolve(core.Options{Routability: flow.Options{Mode: flow.ModeExact}})),
		measure("isp_iteration_fast", 10, mustSolve(core.FastOptions())),
	)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
