package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"netrecovery/internal/core"
	"netrecovery/internal/degrade"
	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/ensemble"
	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/lp"
	"netrecovery/internal/milp"
	"netrecovery/internal/plancache"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// benchRecord is one row of the BENCH_lp.json trajectory file: a named
// micro-benchmark with its per-operation cost. Future performance PRs append
// their numbers to EXPERIMENTS.md by re-running `nrbench -bench-json`.
type benchRecord struct {
	Name        string  `json:"name"`
	Reps        int     `json:"reps"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	// Skipped, when non-empty, records why this row was not measured on this
	// host (e.g. a multi-worker row on a single-core machine, where it would
	// measure scheduler round-barrier overhead instead of parallel speedup).
	// Skipped rows carry zero measurements and are excluded from the
	// -compare regression gate in both directions.
	Skipped string `json:"skipped,omitempty"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	Suite      string        `json:"suite"`
	GoVersion  string        `json:"go_version"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// measure runs fn reps times and records wall time and heap allocations.
// The reps are split into up to three chunks and ns/op is the fastest
// chunk's: the rows feed the CI regression gate, where a transient burst of
// scheduler contention on a shared runner must not read as a code
// regression. Allocation counts are averaged over every rep (they do not
// suffer timing noise).
func measure(name string, reps int, fn func()) benchRecord {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	chunks := 3
	if reps < chunks {
		chunks = reps
	}
	per := reps / chunks
	bestNs := math.Inf(1)
	done := 0
	for c := 0; c < chunks; c++ {
		n := per
		if c == chunks-1 {
			n = reps - done
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		if ns := float64(time.Since(start).Nanoseconds()) / float64(n); ns < bestNs {
			bestNs = ns
		}
		done += n
	}
	runtime.ReadMemStats(&after)
	return benchRecord{
		Name:        name,
		Reps:        reps,
		NsPerOp:     bestNs,
		AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(reps),
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(reps),
	}
}

// lpTransportation builds the 25x25 transportation LP used by the LP rows of
// the trajectory (mirrors internal/lp's BenchmarkLP_SparseCold).
func lpTransportation(seed int64) *lp.Problem {
	rng := rand.New(rand.NewSource(seed))
	const s, d = 25, 25
	p := lp.New(lp.Minimize)
	for i := 0; i < s*d; i++ {
		p.AddVariable(1+rng.Float64()*9, "")
	}
	demands := make([]float64, d)
	total := 0.0
	for j := range demands {
		demands[j] = 1 + rng.Float64()*9
		total += demands[j]
	}
	terms := make([]lp.Term, 0, s*d)
	for i := 0; i < s; i++ {
		terms = terms[:0]
		for j := 0; j < d; j++ {
			terms = append(terms, lp.Term{Var: i*d + j, Coef: 1})
		}
		if err := p.AddConstraint(terms, lp.LessEq, total/s+rng.Float64()*3, ""); err != nil {
			panic(err)
		}
	}
	for j := 0; j < d; j++ {
		terms = terms[:0]
		for i := 0; i < s; i++ {
			terms = append(terms, lp.Term{Var: i*d + j, Coef: 1})
		}
		if err := p.AddConstraint(terms, lp.Equal, demands[j], ""); err != nil {
			panic(err)
		}
	}
	return p
}

// benchLPScenario is the Quick-profile Bell-Canada scenario of the ISP rows.
func benchLPScenario() (*scenario.Scenario, error) {
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(1))
	dg, err := demand.GenerateFarApartPairs(g, 4, 10, rng)
	if err != nil {
		return nil, err
	}
	d := disruption.Complete(g)
	return &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}, nil
}

// benchEnsembleScenario is the intact Quick Bell-Canada instance of the
// ensemble rows: the sampler provides all the damage, so samples actually
// vary (the ISP rows' fully-destroyed scenario would collapse every draw onto
// one fingerprint).
func benchEnsembleScenario() (*scenario.Scenario, error) {
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(1))
	dg, err := demand.GenerateFarApartPairs(g, 4, 10, rng)
	if err != nil {
		return nil, err
	}
	return &scenario.Scenario{
		Supply:      g,
		Demand:      dg,
		BrokenNodes: map[graph.NodeID]bool{},
		BrokenEdges: map[graph.EdgeID]bool{},
	}, nil
}

// runBenchSuite executes the LP/ISP/OPT micro-benchmark suite and returns
// the trajectory report. The suite backs both `-bench-json` (record the
// baseline) and `-compare` (the CI benchmark-regression gate).
func runBenchSuite(ctx context.Context) (benchReport, error) {
	report := benchReport{Suite: "lp", GoVersion: runtime.Version()}
	s, err := benchLPScenario()
	if err != nil {
		return report, err
	}
	mustSolve := func(opts core.Options) func() {
		return func() {
			if _, _, err := core.Solve(ctx, s, opts); err != nil {
				panic(err)
			}
		}
	}

	prob := lpTransportation(3)
	// The cold row and the warm row use SEPARATE solvers: the warm row needs
	// a priming solve to obtain its starting basis, and running that on the
	// cold row's solver would pre-allocate its factorisation buffers and
	// silently turn "cold" into a warm-buffer measurement.
	solver := lp.NewSolver()
	warmSolver := lp.NewSolver()
	warm := warmSolver.Solve(prob, lp.Options{})
	if warm.Status != lp.StatusOptimal {
		return report, fmt.Errorf("bench: warm-up solve failed: %v", warm.Status)
	}
	basis := warm.Basis
	rng := rand.New(rand.NewSource(9))

	// cached_plan_hit: the serving-path cost of answering a plan request
	// whose scenario is already cached — one fingerprint computation plus a
	// cache lookup, no solver. Primed with one fast-ISP solve; the row's
	// solve callback must never run again.
	cache := plancache.New(plancache.Config{})
	fastParams := heuristics.Params{Fast: true}
	hitKey := func() plancache.Key {
		return plancache.Key{Fingerprint: s.Fingerprint(), Algorithm: "ISP", Options: plancache.ParamsDigest(fastParams)}
	}
	primeSolver, err := heuristics.New("ISP", fastParams)
	if err != nil {
		return report, err
	}
	if _, _, _, err := cache.Do(ctx, hitKey(), func(ctx context.Context) (*scenario.Plan, error) {
		return primeSolver.Solve(ctx, s)
	}); err != nil {
		return report, fmt.Errorf("bench: cache priming solve failed: %w", err)
	}

	milpProb := heuristics.OptMILP(s)
	milpSolve := func(workers int) func() {
		opts := milp.Options{MaxNodes: 300, TimeLimit: 5 * time.Minute, Workers: workers}
		return func() {
			// A limit status is fine — these are node-throughput rows, the
			// 300-node budget binds long before optimality on this MILP. The
			// parallel search explores the identical tree for every worker
			// count, so the w4 row tracks pure parallel speedup (flat on a
			// single-core machine, where it measures the round-barrier
			// overhead instead).
			sol := milp.Solve(ctx, milpProb, opts)
			if sol.Status == milp.StatusUnbounded || sol.Status == milp.StatusInfeasible {
				panic(sol.Status)
			}
		}
	}

	// replan_cold / replan_warm: the incremental re-planning rows. A 10-step
	// repair sequence on the bench scenario (one broken node repaired per
	// step, demand endpoints kept broken) stands in for an evolving disaster.
	// The cold row re-solves each step from scratch; the warm row answers the
	// same steps through a long-lived core.Session whose split-LP/routability
	// memos stay hot — after the first cycle the row measures steady-state
	// memo-revisit latency, which is what a long-lived planning session pays
	// per delta. Sessions are plan-equivalent to cold solves (see
	// core.Session), so the two rows solve identical inputs to identical
	// plans and their ratio is the warm re-plan speedup the serving stack's
	// /v1/session endpoint advertises.
	exactOpts := core.Options{Routability: flow.Options{Mode: flow.ModeExact}}
	replanScens := make([]*scenario.Scenario, 0, 10)
	curScen := s
	for i := 0; i < 10; i++ {
		c := curScen.Clone()
		for _, v := range c.SortedBrokenNodes() {
			used := false
			for _, p := range c.Demand.All() {
				if p.Source == v || p.Target == v {
					used = true
				}
			}
			if !used {
				delete(c.BrokenNodes, v)
				break
			}
		}
		replanScens = append(replanScens, c)
		curScen = c
	}
	replanSess := core.NewSession()
	if _, _, err := replanSess.Solve(ctx, s.Clone(), exactOpts); err != nil {
		return report, fmt.Errorf("bench: replan session priming solve failed: %w", err)
	}
	coldStep, warmStep := 0, 0

	// ensemble_64_fastisp_{cold,warm}: the Monte-Carlo serving rows. Each op
	// draws a 64-sample cascade ensemble over the intact bench topology,
	// deduplicates, solves with fast ISP and aggregates the robust-plan
	// report. The cold row runs without a cache (every unique scenario
	// solves); the warm row routes the identical ensemble through a primed
	// plan cache, so it measures the sample-draw/dedup/aggregate overhead
	// plus 64 cache lookups — the steady-state cost of re-answering an
	// ensemble the daemon has seen before.
	ensScen, err := benchEnsembleScenario()
	if err != nil {
		return report, err
	}
	ensSpec := ensemble.Spec{
		Scenario:      ensScen,
		Sampler:       ensemble.SamplerSpec{Model: ensemble.ModelCascade, SeedProb: 0.05, Spread: 0.3, EdgeProb: 0.4},
		Samples:       64,
		Seed:          7,
		Algorithm:     "ISP",
		Fast:          true,
		SolverWorkers: 1,
	}
	ensCache := plancache.New(plancache.Config{})
	warmSpec := ensSpec
	warmSpec.Cache = ensCache
	if _, err := ensemble.Run(ctx, warmSpec); err != nil {
		return report, fmt.Errorf("bench: ensemble cache priming run failed: %w", err)
	}
	mustEnsemble := func(spec ensemble.Spec) func() {
		return func() {
			rep, err := ensemble.Run(ctx, spec)
			if err != nil {
				panic(err)
			}
			if rep.Failures > 0 {
				panic(fmt.Sprintf("ensemble bench row had %d failures: %s", rep.Failures, rep.FirstError))
			}
		}
	}

	// fallback_isp_under_budget: the graceful-degradation serving row — a
	// deadline-budgeted fallback chain whose primary stage fails immediately
	// (a downed exact solver) and whose fast-ISP fallback answers inside the
	// budget. It measures the chain machinery plus the fallback solve: the
	// latency a degraded /v1/plan response pays over a plain fast-ISP one
	// (compare against isp_iteration_fast).
	fallbackSolver, err := heuristics.New("ISP", fastParams)
	if err != nil {
		return report, err
	}
	errPrimaryDown := errors.New("bench: primary solver down")
	degradedSolve := func() {
		stages := []degrade.Stage{
			{Name: "primary", Level: degrade.LevelNone, Fraction: 0.6,
				Run: func(context.Context) (*scenario.Plan, error) { return nil, errPrimaryDown }},
			{Name: "fallback_isp", Level: degrade.LevelFallback,
				Run: func(c context.Context) (*scenario.Plan, error) { return fallbackSolver.Solve(c, s) }},
		}
		res, err := degrade.Execute(ctx, stages, degrade.Options{Deadline: 30 * time.Second})
		if err != nil {
			panic(err)
		}
		if res.ServedBy != "fallback_isp" {
			panic(fmt.Sprintf("fallback row served by %q", res.ServedBy))
		}
	}

	// Parallel rows need real cores: on a single-core host the deterministic
	// branch-and-bound explores the same tree but the extra workers only add
	// round-barrier overhead, so the measurement says nothing about the code.
	// Such rows are emitted as skipped (and the -compare gate ignores them)
	// instead of polluting the trajectory with meaningless numbers; the
	// nightly bench job runs on a multi-core runner where they measure.
	skipRows := map[string]string{}
	if runtime.NumCPU() == 1 {
		skipRows["opt_search300_w4"] = "single-core host (NumCPU=1): multi-worker row would measure scheduler overhead, not parallel speedup"
	}

	rows := []struct {
		name string
		reps int
		fn   func()
	}{
		{"lp_transportation_sparse_cold", 20, func() {
			if sol := solver.Solve(prob, lp.Options{}); sol.Status != lp.StatusOptimal {
				panic(sol.Status)
			}
		}},
		{"lp_transportation_dense_cold", 5, func() {
			if sol := prob.SolveWithOptions(lp.Options{Dense: true}); sol.Status != lp.StatusOptimal {
				panic(sol.Status)
			}
		}},
		{"lp_transportation_warm_resolve", 200, func() {
			_ = prob.SetRHS(25+rng.Intn(25), 1+rng.Float64()*9)
			sol := warmSolver.Solve(prob, lp.Options{WarmStart: basis})
			if sol.Status != lp.StatusOptimal {
				panic(sol.Status)
			}
			basis = sol.Basis
		}},
		{"isp_iteration_exact", 3, mustSolve(core.Options{Routability: flow.Options{Mode: flow.ModeExact}})},
		{"isp_iteration_fast", 10, mustSolve(core.FastOptions())},
		{"cached_plan_hit", 1000, func() {
			_, outcome, _, err := cache.Do(ctx, hitKey(), func(context.Context) (*scenario.Plan, error) {
				panic("cached_plan_hit must never solve")
			})
			if err != nil || outcome != plancache.Hit {
				panic(fmt.Sprintf("cached_plan_hit: outcome=%v err=%v", outcome, err))
			}
		}},
		{"replan_cold", 10, func() {
			sc := replanScens[coldStep%len(replanScens)]
			coldStep++
			if _, _, err := core.Solve(ctx, sc.Clone(), exactOpts); err != nil {
				panic(err)
			}
		}},
		{"replan_warm", 30, func() {
			sc := replanScens[warmStep%len(replanScens)]
			warmStep++
			if _, _, err := replanSess.Solve(ctx, sc.Clone(), exactOpts); err != nil {
				panic(err)
			}
		}},
		{"ensemble_64_fastisp_cold", 3, mustEnsemble(ensSpec)},
		{"ensemble_64_fastisp_warm", 10, mustEnsemble(warmSpec)},
		{"fallback_isp_under_budget", 10, degradedSolve},
		{"opt_search300_w1", 1, milpSolve(1)},
		{"opt_search300_w4", 1, milpSolve(4)},
	}

	// Every row is measured in TWO passes over the whole suite, keeping the
	// faster sample: a CPU-steal burst on a shared runner easily outlasts a
	// single measurement (the within-measurement best-of-chunks cannot help
	// then), but rarely recurs at the same row many seconds later. Without
	// this the CI regression gate reads machine bursts as code regressions.
	for _, row := range rows {
		if reason, ok := skipRows[row.name]; ok {
			report.Benchmarks = append(report.Benchmarks, benchRecord{Name: row.name, Skipped: reason})
			continue
		}
		report.Benchmarks = append(report.Benchmarks, measure(row.name, row.reps, row.fn))
	}
	for i, row := range rows {
		if report.Benchmarks[i].Skipped != "" {
			continue
		}
		if again := measure(row.name, row.reps, row.fn); again.NsPerOp < report.Benchmarks[i].NsPerOp {
			report.Benchmarks[i].NsPerOp = again.NsPerOp
		}
	}

	// The serving-path rows (in-process fleet, HTTP end to end) ride the
	// same trajectory file and regression gate as the micro rows.
	serveRows, err := runServeRows(ctx)
	if err != nil {
		return report, err
	}
	report.Benchmarks = append(report.Benchmarks, serveRows...)
	return report, nil
}

// readBenchReport loads a trajectory file written by writeBenchReport.
func readBenchReport(path string) (benchReport, error) {
	var report benchReport
	raw, err := os.ReadFile(path)
	if err != nil {
		return report, fmt.Errorf("compare: %w", err)
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		return report, fmt.Errorf("compare: parse %s: %w", path, err)
	}
	return report, nil
}

// writeBenchReport writes the trajectory file (canonically BENCH_lp.json) so
// that future performance PRs have a recorded baseline to compare against.
func writeBenchReport(report benchReport, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// compareBench is the benchmark-regression gate: it checks every tracked
// metric of the baseline file against the fresh report and returns an error
// (non-zero exit) when any ns/op regressed by more than the tolerance
// (fractional, e.g. 0.25 allows +25%). A baseline metric missing from the
// fresh run also fails — a silently dropped benchmark must not pass the
// gate — while new metrics are reported informationally and pass. Every row
// prints its baseline-vs-current allocations alongside ns/op — passing rows
// included — so an allocation creep is visible in the CI log before it grows
// into a timing regression.
func compareBench(w io.Writer, baselineName string, baseline, fresh benchReport, tolerance float64) error {
	freshByName := make(map[string]benchRecord, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshByName[b.Name] = b
	}

	fmt.Fprintf(w, "%-32s %14s %14s %8s %19s %25s  %s\n",
		"benchmark", "baseline ns/op", "fresh ns/op", "delta", "allocs/op", "bytes/op", "status")
	pair := func(base, got uint64) string { return fmt.Sprintf("%d -> %d", base, got) }
	regressions := 0
	for _, base := range baseline.Benchmarks {
		got, ok := freshByName[base.Name]
		delete(freshByName, base.Name)
		if !ok {
			regressions++
			fmt.Fprintf(w, "%-32s %14.0f %14s %8s %19s %25s  MISSING\n", base.Name, base.NsPerOp, "-", "-", "-", "-")
			continue
		}
		// A row the fresh run (or the baseline) flagged as unmeasurable on
		// its host — e.g. a multi-worker row on a single-core runner — is
		// excluded from the gate rather than read as a regression; the
		// nightly multi-core bench job still measures it.
		if got.Skipped != "" || base.Skipped != "" {
			reason := got.Skipped
			if reason == "" {
				reason = base.Skipped
			}
			fmt.Fprintf(w, "%-32s %14.0f %14s %8s %19s %25s  skipped (%s)\n", base.Name, base.NsPerOp, "-", "-", "-", "-", reason)
			continue
		}
		delta := got.NsPerOp/base.NsPerOp - 1
		status := "ok"
		if delta > tolerance {
			status = "REGRESSED"
			regressions++
		}
		fmt.Fprintf(w, "%-32s %14.0f %14.0f %+7.1f%% %19s %25s  %s\n",
			base.Name, base.NsPerOp, got.NsPerOp, 100*delta,
			pair(base.AllocsPerOp, got.AllocsPerOp), pair(base.BytesPerOp, got.BytesPerOp), status)
	}
	for _, b := range fresh.Benchmarks {
		if _, isNew := freshByName[b.Name]; isNew {
			fmt.Fprintf(w, "%-32s %14s %14.0f %8s %19d %25d  new\n", b.Name, "-", b.NsPerOp, "-", b.AllocsPerOp, b.BytesPerOp)
		}
	}
	if regressions > 0 {
		return fmt.Errorf("benchmark regression gate: %d metric(s) regressed beyond %.0f%% of %s",
			regressions, 100*tolerance, baselineName)
	}
	fmt.Fprintf(w, "benchmark regression gate: all tracked metrics within %.0f%% of %s\n", 100*tolerance, baselineName)
	return nil
}
