// Command nrbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	nrbench -figure 4                 # quick-profile reproduction of Fig. 4
//	nrbench -figure 6 -profile paper  # full 20-run reproduction of Fig. 6
//	nrbench -figure all -runs 5       # every figure, 5 runs per point
//	nrbench -figure ablation          # ISP design-choice ablations
//
// Output is a fixed-width table per sub-figure (use -csv for CSV).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"netrecovery/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nrbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("nrbench", flag.ContinueOnError)
	var (
		figure     = fs.String("figure", "4", "figure to regenerate: 3-9, 'ablation' or 'all'")
		profile    = fs.String("profile", "quick", "parameter profile: quick | paper")
		runs       = fs.Int("runs", 0, "override the number of runs per point")
		seed       = fs.Int64("seed", 0, "override the base random seed")
		includeOpt = fs.Bool("opt", false, "force-include the OPT baseline")
		noOpt      = fs.Bool("no-opt", false, "exclude the OPT baseline")
		optTime    = fs.Duration("opt-time", 0, "time limit per OPT invocation")
		csv        = fs.Bool("csv", false, "emit CSV instead of a text table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg experiments.Config
	switch *profile {
	case "quick":
		cfg = experiments.Quick()
	case "paper":
		cfg = experiments.Paper()
	default:
		return fmt.Errorf("unknown profile %q (quick | paper)", *profile)
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *includeOpt {
		cfg.IncludeOpt = true
	}
	if *noOpt {
		cfg.IncludeOpt = false
	}
	if *optTime > 0 {
		cfg.OptTimeLimit = *optTime
	}

	figures := []string{*figure}
	if *figure == "all" {
		figures = experiments.Figures()
	}

	for _, fig := range figures {
		start := time.Now()
		var (
			res *experiments.FigureResult
			err error
		)
		if fig == "ablation" {
			res, err = experiments.AblationCentrality(cfg)
		} else {
			res, err = experiments.Run(fig, cfg)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "== Figure %s (profile %s, %d runs, %s) ==\n\n", res.Figure, *profile, cfg.Runs, time.Since(start).Round(time.Millisecond))
		for _, table := range res.Tables {
			var renderErr error
			if *csv {
				fmt.Fprintf(stdout, "# %s\n", table.Title)
				renderErr = table.CSV(stdout)
				fmt.Fprintln(stdout)
			} else {
				renderErr = table.Render(stdout)
			}
			if renderErr != nil {
				return renderErr
			}
		}
		fmt.Fprintln(stdout, strings.Repeat("-", 60))
	}
	return nil
}
