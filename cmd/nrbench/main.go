// Command nrbench regenerates the paper's evaluation figures and runs
// declarative scenario sweeps on the concurrent sweep engine.
//
// Usage:
//
//	nrbench -figure 4                 # quick-profile reproduction of Fig. 4
//	nrbench -figure 6 -profile paper  # full 20-run reproduction of Fig. 6
//	nrbench -figure all -runs 5       # every figure, 5 runs per point
//	nrbench -figure ablation          # ISP design-choice ablations
//	nrbench -figure 4 -workers 8      # figure cells on 8 workers
//
//	nrbench -sweep -topologies bell-canada,grid:4x4 -algorithms ISP,SRT \
//	        -variances 20,60 -pairs 3 -flow 10 -seeds 5 -workers 8 -csv
//
//	nrbench -bench-json BENCH_lp.json  # LP/ISP/OPT micro-benchmark trajectory
//	nrbench -compare BENCH_lp.json -tolerance 0.25   # CI regression gate
//
// Figure output is a fixed-width table per sub-figure (use -csv for CSV);
// sweep output is the aggregated report as JSON (use -csv for one CSV row
// per grid point); -bench-json writes the machine-readable performance
// trajectory recorded in EXPERIMENTS.md, and -compare re-runs the suite and
// exits non-zero when a tracked metric regressed past the tolerance against
// a recorded baseline (the bench-smoke CI job runs it against the committed
// BENCH_lp.json).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"netrecovery/internal/experiments"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nrbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("nrbench", flag.ContinueOnError)
	var (
		figure     = fs.String("figure", "4", "figure to regenerate: 3-9, 'ablation' or 'all'")
		profile    = fs.String("profile", "quick", "parameter profile: quick | paper")
		runs       = fs.Int("runs", 0, "override the number of runs per point")
		seed       = fs.Int64("seed", 0, "override the base random seed")
		includeOpt = fs.Bool("opt", false, "force-include the OPT baseline")
		noOpt      = fs.Bool("no-opt", false, "exclude the OPT baseline")
		optTime    = fs.Duration("opt-time", 0, "time limit per OPT invocation")
		csv        = fs.Bool("csv", false, "emit CSV instead of a text table / JSON report")
		workers    = fs.Int("workers", 0, "worker goroutines for figure cells and sweep jobs (0 = GOMAXPROCS)")
		optWorkers = fs.Int("opt-workers", 0, "per-solve branch-and-bound workers for OPT (figures: 0 = 1, cells are already parallel; sweeps: 0 = GOMAXPROCS/workers)")
		timeout    = fs.Duration("timeout", 0, "overall wall-clock budget (0 = none)")

		// Micro-benchmark trajectory mode.
		benchJSON = fs.String("bench-json", "", "run the LP/ISP/OPT micro-benchmarks and write the trajectory JSON to this file (canonically BENCH_lp.json), then exit")
		compareTo = fs.String("compare", "", "run the micro-benchmarks and compare against this baseline trajectory JSON; exit non-zero when a tracked metric regresses past -tolerance (combine with -bench-json to also record the fresh run)")
		tolerance = fs.Float64("tolerance", 0.25, "allowed fractional ns/op regression for -compare (0.25 = +25%)")

		// Declarative sweep mode.
		doSweep    = fs.Bool("sweep", false, "run a declarative scenario sweep instead of a figure")
		topologies = fs.String("topologies", "bell-canada", "comma-separated topologies: bell-canada | grid:RxC | erdos-renyi:N:P | caida")
		algorithms = fs.String("algorithms", "ISP,SRT", "comma-separated solver names: "+strings.Join(heuristics.Names(), ", "))
		variances  = fs.String("variances", "", "comma-separated geographic-disruption variances (empty = complete destruction)")
		pairs      = fs.Int("pairs", 4, "sweep: demand pairs per scenario")
		flowUnits  = fs.Float64("flow", 10, "sweep: flow units per demand pair")
		seeds      = fs.Int("seeds", 3, "sweep: number of seeds per grid point")
		jobTimeout = fs.Duration("job-timeout", 0, "sweep: per-job time limit (0 = none)")
		fastISP    = fs.Bool("fast-isp", false, "sweep: greedy-split ISP (required for caida-scale topologies)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *benchJSON != "" || *compareTo != "" {
		// Load the baseline before spending seconds on the suite, so a bad
		// -compare path fails fast.
		var baseline *benchReport
		if *compareTo != "" {
			b, err := readBenchReport(*compareTo)
			if err != nil {
				return err
			}
			baseline = &b
		}
		report, err := runBenchSuite(ctx)
		if err != nil {
			return err
		}
		if *benchJSON != "" {
			if err := writeBenchReport(report, *benchJSON); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote benchmark trajectory to %s\n", *benchJSON)
		}
		if baseline != nil {
			return compareBench(stdout, *compareTo, *baseline, report, *tolerance)
		}
		return nil
	}

	if *doSweep {
		base := *seed
		if base == 0 {
			base = 1
		}
		spec, err := buildSweepSpec(*topologies, *algorithms, *variances, *pairs, *flowUnits, base, *seeds)
		if err != nil {
			return err
		}
		spec.Workers = *workers
		spec.SolverWorkers = *optWorkers
		spec.JobTimeout = *jobTimeout
		spec.FastISP = *fastISP
		if *optTime > 0 {
			spec.OptTimeLimit = *optTime
		}
		start := time.Now()
		report, err := sweep.Run(ctx, spec)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "== Sweep %s: %d jobs, %d failures, %s ==\n\n", spec.Name, report.Jobs, report.Failures, time.Since(start).Round(time.Millisecond))
		if *csv {
			return report.WriteCSV(stdout)
		}
		return report.WriteJSON(stdout)
	}

	var cfg experiments.Config
	switch *profile {
	case "quick":
		cfg = experiments.Quick()
	case "paper":
		cfg = experiments.Paper()
	default:
		return fmt.Errorf("unknown profile %q (quick | paper)", *profile)
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *includeOpt {
		cfg.IncludeOpt = true
	}
	if *noOpt {
		cfg.IncludeOpt = false
	}
	if *optTime > 0 {
		cfg.OptTimeLimit = *optTime
	}
	cfg.Workers = *workers
	cfg.OptWorkers = *optWorkers

	figures := []string{*figure}
	if *figure == "all" {
		figures = experiments.Figures()
	}

	for _, fig := range figures {
		start := time.Now()
		var (
			res *experiments.FigureResult
			err error
		)
		if fig == "ablation" {
			res, err = experiments.AblationCentrality(ctx, cfg)
		} else {
			res, err = experiments.Run(ctx, fig, cfg)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "== Figure %s (profile %s, %d runs, %s) ==\n\n", res.Figure, *profile, cfg.Runs, time.Since(start).Round(time.Millisecond))
		for _, table := range res.Tables {
			var renderErr error
			if *csv {
				fmt.Fprintf(stdout, "# %s\n", table.Title)
				renderErr = table.CSV(stdout)
				fmt.Fprintln(stdout)
			} else {
				renderErr = table.Render(stdout)
			}
			if renderErr != nil {
				return renderErr
			}
		}
		fmt.Fprintln(stdout, strings.Repeat("-", 60))
	}
	return nil
}

// buildSweepSpec assembles a sweep.Spec from the CLI's comma-separated
// dimension flags.
func buildSweepSpec(topologies, algorithms, variances string, pairs int, flowUnits float64, baseSeed int64, seeds int) (sweep.Spec, error) {
	spec := sweep.Spec{
		Name:  "nrbench",
		Seeds: sweep.SeedRange(baseSeed, seeds),
		Demands: []sweep.Demand{
			{Pairs: pairs, FlowPerPair: flowUnits},
		},
	}
	for _, raw := range strings.Split(topologies, ",") {
		topo, err := parseTopology(strings.TrimSpace(raw))
		if err != nil {
			return sweep.Spec{}, err
		}
		spec.Topologies = append(spec.Topologies, topo)
	}
	for _, alg := range strings.Split(algorithms, ",") {
		if alg = strings.TrimSpace(alg); alg != "" {
			spec.Algorithms = append(spec.Algorithms, alg)
		}
	}
	if variances == "" {
		spec.Disruptions = []sweep.Disruption{{Kind: sweep.DisruptComplete}}
	} else {
		for _, raw := range strings.Split(variances, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
			if err != nil {
				return sweep.Spec{}, fmt.Errorf("bad variance %q: %w", raw, err)
			}
			spec.Disruptions = append(spec.Disruptions, sweep.Disruption{Kind: sweep.DisruptGeographic, Variance: v})
		}
	}
	return spec, nil
}

// parseTopology understands bell-canada, caida, grid:RxC and erdos-renyi:N:P.
func parseTopology(raw string) (sweep.Topology, error) {
	switch {
	case raw == sweep.TopoBellCanada || raw == sweep.TopoCAIDA:
		return sweep.Topology{Kind: raw}, nil
	case strings.HasPrefix(raw, sweep.TopoGrid+":"):
		dims := strings.Split(strings.TrimPrefix(raw, sweep.TopoGrid+":"), "x")
		if len(dims) != 2 {
			return sweep.Topology{}, fmt.Errorf("bad grid topology %q (want grid:RxC)", raw)
		}
		rows, err1 := strconv.Atoi(dims[0])
		cols, err2 := strconv.Atoi(dims[1])
		if err1 != nil || err2 != nil {
			return sweep.Topology{}, fmt.Errorf("bad grid topology %q (want grid:RxC)", raw)
		}
		return sweep.Topology{Kind: sweep.TopoGrid, Rows: rows, Cols: cols}, nil
	case strings.HasPrefix(raw, sweep.TopoErdosRenyi+":"):
		parts := strings.Split(strings.TrimPrefix(raw, sweep.TopoErdosRenyi+":"), ":")
		if len(parts) != 2 {
			return sweep.Topology{}, fmt.Errorf("bad erdos-renyi topology %q (want erdos-renyi:N:P)", raw)
		}
		n, err1 := strconv.Atoi(parts[0])
		p, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil {
			return sweep.Topology{}, fmt.Errorf("bad erdos-renyi topology %q (want erdos-renyi:N:P)", raw)
		}
		return sweep.Topology{Kind: sweep.TopoErdosRenyi, Nodes: n, EdgeProb: p}, nil
	default:
		return sweep.Topology{}, fmt.Errorf("unknown topology %q", raw)
	}
}
