package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestRunSingleFigureQuick(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-figure", "8", "-profile", "quick", "-runs", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "== Figure 8") {
		t.Errorf("missing figure header: %q", text)
	}
	if !strings.Contains(text, "CAIDA-like topology statistics") {
		t.Errorf("missing table title: %q", text)
	}
}

func TestRunFigure4NoOptCSV(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-figure", "4", "-runs", "1", "-no-opt", "-csv", "-seed", "7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "demand pairs,ISP") {
		t.Errorf("missing CSV header: %q", text)
	}
	if strings.Contains(text, "OPT") {
		t.Errorf("-no-opt should drop the OPT column: %q", text)
	}
}

func TestRunAblation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-figure", "ablation", "-runs", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ISP-no-pruning") {
		t.Errorf("missing ablation series: %q", out.String())
	}
}

func TestRunSweepCSV(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sweep",
		"-topologies", "grid:3x3",
		"-algorithms", "ISP,SRT",
		"-variances", "25",
		"-pairs", "1", "-flow", "5", "-seeds", "2",
		"-workers", "4", "-csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "== Sweep nrbench: 4 jobs, 0 failures") {
		t.Errorf("missing sweep header: %q", text)
	}
	if !strings.Contains(text, "topology,disruption,demand,algorithm") {
		t.Errorf("missing CSV header: %q", text)
	}
	if !strings.Contains(text, "grid-3x3,geo-v25,1x5-far-apart,SRT") {
		t.Errorf("missing SRT group row: %q", text)
	}
}

func TestRunSweepJSON(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sweep", "-topologies", "grid:3x3", "-algorithms", "ISP",
		"-pairs", "1", "-flow", "5", "-seeds", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, `"groups"`) || !strings.Contains(text, `"satisfied_ratio"`) {
		t.Errorf("missing JSON report fields: %q", text)
	}
}

func TestRunSweepBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sweep", "-topologies", "torus"}, &out); err == nil {
		t.Error("expected error for unknown topology")
	}
	if err := run([]string{"-sweep", "-topologies", "grid:3"}, &out); err == nil {
		t.Error("expected error for malformed grid size")
	}
	if err := run([]string{"-sweep", "-variances", "abc"}, &out); err == nil {
		t.Error("expected error for malformed variance")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-figure", "17"}, &out); err == nil {
		t.Error("expected error for unknown figure")
	}
	if err := run([]string{"-profile", "bogus"}, &out); err == nil {
		t.Error("expected error for unknown profile")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("expected flag parse error")
	}
}

// (The -bench-json output itself is validated inside TestCompareGateEndToEnd,
// which shares one real suite run between the trajectory and gate checks —
// the suite costs seconds, so the package avoids running it twice.)

// writeBaseline writes a synthetic trajectory baseline whose every row is
// the given multiple of the fresh report's measurement.
func writeBaseline(t *testing.T, fresh benchReport, scale float64) string {
	t.Helper()
	baseline := benchReport{Suite: fresh.Suite, GoVersion: fresh.GoVersion}
	for _, b := range fresh.Benchmarks {
		b.NsPerOp *= scale
		baseline.Benchmarks = append(baseline.Benchmarks, b)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	raw, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// syntheticReport fabricates a trajectory report without running the suite.
func syntheticReport(ns map[string]float64) benchReport {
	report := benchReport{Suite: "lp", GoVersion: "go-test"}
	// Stable iteration order keeps the rendered table deterministic.
	names := make([]string, 0, len(ns))
	for name := range ns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		report.Benchmarks = append(report.Benchmarks, benchRecord{Name: name, Reps: 1, NsPerOp: ns[name]})
	}
	return report
}

// TestCompareBenchGateLogic covers the gate's verdicts on synthetic
// reports: within-tolerance passes, a regression past tolerance fails, a
// tracked metric missing from the fresh run fails, and metrics new in the
// fresh run pass informationally.
func TestCompareBenchGateLogic(t *testing.T) {
	baseline := syntheticReport(map[string]float64{"a": 1000, "b": 2000})

	var out bytes.Buffer
	fresh := syntheticReport(map[string]float64{"a": 1200, "b": 2100, "c": 5})
	if err := compareBench(&out, "base.json", baseline, fresh, 0.25); err != nil {
		t.Fatalf("within-tolerance comparison failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new") {
		t.Errorf("new metric not reported: %q", out.String())
	}
	// Passing rows print their baseline-vs-current allocation metrics too.
	if !strings.Contains(out.String(), "allocs/op") || !strings.Contains(out.String(), "0 -> 0") {
		t.Errorf("per-metric allocation columns missing: %q", out.String())
	}

	out.Reset()
	fresh = syntheticReport(map[string]float64{"a": 1300, "b": 2000})
	if err := compareBench(&out, "base.json", baseline, fresh, 0.25); err == nil {
		t.Fatalf("+30%% regression passed a 25%% gate:\n%s", out.String())
	} else if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("missing REGRESSED marker: %q", out.String())
	}

	out.Reset()
	fresh = syntheticReport(map[string]float64{"a": 1000})
	if err := compareBench(&out, "base.json", baseline, fresh, 0.25); err == nil {
		t.Fatalf("dropped tracked metric passed the gate:\n%s", out.String())
	} else if !strings.Contains(out.String(), "MISSING") {
		t.Errorf("missing MISSING marker: %q", out.String())
	}

	// A row the fresh run flagged as unmeasurable (single-core host) is
	// excluded from the gate instead of failing it — even when its recorded
	// ns/op would read as a wild regression.
	out.Reset()
	fresh = syntheticReport(map[string]float64{"a": 1000, "b": 0})
	fresh.Benchmarks[1].Skipped = "single-core host"
	fresh.Benchmarks[1].Reps = 0
	if err := compareBench(&out, "base.json", baseline, fresh, 0.25); err != nil {
		t.Fatalf("skipped row failed the gate: %v\n%s", err, out.String())
	} else if !strings.Contains(out.String(), "skipped (single-core host)") {
		t.Errorf("missing skipped marker: %q", out.String())
	}
}

// TestCompareGateEndToEnd verifies the trajectory recorder and the CLI
// wiring of the gate on ONE real suite run: the -bench-json output must be a
// well-formed trajectory with every tracked row, and comparing a second run
// against a doctored baseline claiming everything used to be 50x faster
// must exit non-zero. (The injection is the permanent form of the one-off
// synthetic-regression check the CI gate was validated with.)
func TestCompareGateEndToEnd(t *testing.T) {
	freshPath := filepath.Join(t.TempDir(), "fresh.json")
	var out bytes.Buffer
	if err := run([]string{"-bench-json", freshPath}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(freshPath)
	if err != nil {
		t.Fatal(err)
	}
	var fresh benchReport
	if err := json.Unmarshal(raw, &fresh); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if fresh.Suite != "lp" || len(fresh.Benchmarks) < 5 {
		t.Fatalf("unexpected report: %+v", fresh)
	}
	names := map[string]bool{}
	rowByName := map[string]benchRecord{}
	for _, b := range fresh.Benchmarks {
		names[b.Name] = true
		rowByName[b.Name] = b
		if b.Skipped != "" {
			continue // flagged unmeasurable on this host (e.g. single-core)
		}
		if b.NsPerOp <= 0 || b.Reps <= 0 {
			t.Errorf("benchmark %s has non-positive metrics: %+v", b.Name, b)
		}
	}
	for _, want := range []string{"lp_transportation_sparse_cold", "lp_transportation_warm_resolve", "isp_iteration_exact", "replan_cold", "replan_warm", "ensemble_64_fastisp_cold", "ensemble_64_fastisp_warm", "fallback_isp_under_budget", "opt_search300_w1", "opt_search300_w4", "serve_plan_p50_1node", "serve_plan_p99_1node", "serve_plan_p50_3node_warm", "serve_plan_p99_3node_warm"} {
		if !names[want] {
			t.Errorf("missing benchmark %q in %v", want, names)
		}
	}
	// The incremental re-planning rows back the session feature's headline
	// claim: a warm re-plan after a repair delta must be at least 5x faster
	// than the from-scratch solve (measured ~20x, so the margin absorbs
	// runner noise).
	if cold, warm := rowByName["replan_cold"], rowByName["replan_warm"]; cold.Skipped == "" && warm.Skipped == "" {
		if warm.NsPerOp <= 0 || cold.NsPerOp/warm.NsPerOp < 5 {
			t.Errorf("replan_warm is only %.1fx faster than replan_cold (cold %.0f ns, warm %.0f ns), want >= 5x",
				cold.NsPerOp/warm.NsPerOp, cold.NsPerOp, warm.NsPerOp)
		}
	}

	regressed := writeBaseline(t, fresh, 1.0/50) // reality is a ~50x regression vs this
	out.Reset()
	if err := run([]string{"-compare", regressed, "-tolerance", "0.25"}, &out); err == nil {
		t.Fatalf("gate passed an injected 50x regression:\n%s", out.String())
	} else if !strings.Contains(err.Error(), "regression gate") || !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("unexpected gate output: err=%v\n%s", err, out.String())
	}

	// A missing baseline file fails fast, before the suite runs.
	if err := run([]string{"-compare", filepath.Join(t.TempDir(), "nope.json")}, &out); err == nil {
		t.Error("expected error for a missing baseline file")
	}
}
