package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleFigureQuick(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-figure", "8", "-profile", "quick", "-runs", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "== Figure 8") {
		t.Errorf("missing figure header: %q", text)
	}
	if !strings.Contains(text, "CAIDA-like topology statistics") {
		t.Errorf("missing table title: %q", text)
	}
}

func TestRunFigure4NoOptCSV(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-figure", "4", "-runs", "1", "-no-opt", "-csv", "-seed", "7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "demand pairs,ISP") {
		t.Errorf("missing CSV header: %q", text)
	}
	if strings.Contains(text, "OPT") {
		t.Errorf("-no-opt should drop the OPT column: %q", text)
	}
}

func TestRunAblation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-figure", "ablation", "-runs", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ISP-no-pruning") {
		t.Errorf("missing ablation series: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-figure", "17"}, &out); err == nil {
		t.Error("expected error for unknown figure")
	}
	if err := run([]string{"-profile", "bogus"}, &out); err == nil {
		t.Error("expected error for unknown profile")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("expected flag parse error")
	}
}
