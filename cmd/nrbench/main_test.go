package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigureQuick(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-figure", "8", "-profile", "quick", "-runs", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "== Figure 8") {
		t.Errorf("missing figure header: %q", text)
	}
	if !strings.Contains(text, "CAIDA-like topology statistics") {
		t.Errorf("missing table title: %q", text)
	}
}

func TestRunFigure4NoOptCSV(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-figure", "4", "-runs", "1", "-no-opt", "-csv", "-seed", "7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "demand pairs,ISP") {
		t.Errorf("missing CSV header: %q", text)
	}
	if strings.Contains(text, "OPT") {
		t.Errorf("-no-opt should drop the OPT column: %q", text)
	}
}

func TestRunAblation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-figure", "ablation", "-runs", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ISP-no-pruning") {
		t.Errorf("missing ablation series: %q", out.String())
	}
}

func TestRunSweepCSV(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sweep",
		"-topologies", "grid:3x3",
		"-algorithms", "ISP,SRT",
		"-variances", "25",
		"-pairs", "1", "-flow", "5", "-seeds", "2",
		"-workers", "4", "-csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "== Sweep nrbench: 4 jobs, 0 failures") {
		t.Errorf("missing sweep header: %q", text)
	}
	if !strings.Contains(text, "topology,disruption,demand,algorithm") {
		t.Errorf("missing CSV header: %q", text)
	}
	if !strings.Contains(text, "grid-3x3,geo-v25,1x5-far-apart,SRT") {
		t.Errorf("missing SRT group row: %q", text)
	}
}

func TestRunSweepJSON(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sweep", "-topologies", "grid:3x3", "-algorithms", "ISP",
		"-pairs", "1", "-flow", "5", "-seeds", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, `"groups"`) || !strings.Contains(text, `"satisfied_ratio"`) {
		t.Errorf("missing JSON report fields: %q", text)
	}
}

func TestRunSweepBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sweep", "-topologies", "torus"}, &out); err == nil {
		t.Error("expected error for unknown topology")
	}
	if err := run([]string{"-sweep", "-topologies", "grid:3"}, &out); err == nil {
		t.Error("expected error for malformed grid size")
	}
	if err := run([]string{"-sweep", "-variances", "abc"}, &out); err == nil {
		t.Error("expected error for malformed variance")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-figure", "17"}, &out); err == nil {
		t.Error("expected error for unknown figure")
	}
	if err := run([]string{"-profile", "bogus"}, &out); err == nil {
		t.Error("expected error for unknown profile")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("expected flag parse error")
	}
}

func TestRunBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_lp.json")
	var out bytes.Buffer
	if err := run([]string{"-bench-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if report.Suite != "lp" || len(report.Benchmarks) < 5 {
		t.Fatalf("unexpected report: %+v", report)
	}
	names := map[string]bool{}
	for _, b := range report.Benchmarks {
		names[b.Name] = true
		if b.NsPerOp <= 0 || b.Reps <= 0 {
			t.Errorf("benchmark %s has non-positive metrics: %+v", b.Name, b)
		}
	}
	for _, want := range []string{"lp_transportation_sparse_cold", "lp_transportation_warm_resolve", "isp_iteration_exact"} {
		if !names[want] {
			t.Errorf("missing benchmark %q in %v", want, names)
		}
	}
}
