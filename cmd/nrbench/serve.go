package main

import (
	"context"
	"fmt"

	"netrecovery/internal/cluster"
	"netrecovery/internal/loadgen"
	"netrecovery/internal/server"
)

// serveRowSpec pins the serving-path measurement: an in-process fleet on
// loopback listeners driven by the deterministic loadgen closed loop. Small
// enough to ride in the CI bench gate, large enough that the percentiles
// are percentiles and not single samples.
const (
	serveScenarios = 32
	serveRequests  = 600
	serveWarmup    = 200
	serveWorkers   = 4
)

// serveLatencies boots an n-node fleet, drives the standard serve workload
// at it and returns the measured p50/p99 in ns/op plus the request count.
// A 1-node fleet is prewarmed (the row measures the steady-state local-hit
// path); a multi-node fleet instead gets an unmeasured warm-up run, so the
// measured window covers the real steady state of a cluster: mostly local
// hits with a peer-filled and coalesced tail.
func serveLatencies(ctx context.Context, nodes int, opts ...loadgen.LocalOption) (p50, p99 float64, reqs int, err error) {
	lc, err := loadgen.StartLocal(nodes, server.Config{}, cluster.Config{}, opts...)
	if err != nil {
		return 0, 0, 0, err
	}
	defer lc.Close()
	spec := loadgen.Spec{
		Targets:     lc.URLs,
		MaxRequests: serveRequests,
		Concurrency: serveWorkers,
		Scenarios:   serveScenarios,
		Seed:        1,
		Fast:        true,
		PrewarmAll:  nodes == 1,
	}
	if nodes > 1 {
		warm := spec
		warm.PrewarmAll = false
		warm.MaxRequests = serveWarmup
		if _, err := loadgen.Run(ctx, warm); err != nil {
			return 0, 0, 0, fmt.Errorf("serve warm-up (%d nodes): %w", nodes, err)
		}
	}
	rep, err := loadgen.Run(ctx, spec)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("serve rows (%d nodes): %w", nodes, err)
	}
	if rep.Errors > 0 || rep.Err5xx > 0 {
		return 0, 0, 0, fmt.Errorf("serve rows (%d nodes): %d errors, %d 5xx — refusing to record latencies of a failing fleet",
			nodes, rep.Errors, rep.Err5xx)
	}
	const msToNs = 1e6
	return rep.Latency.P50MS * msToNs, rep.Latency.P99MS * msToNs, rep.Requests, nil
}

// runServeRows measures the HTTP serving path end to end — request decode,
// cache, admission, peer-fill, response render — as trajectory rows:
// serve_plan_{p50,p99}_1node on a single warmed node and
// serve_plan_{p50,p99}_3node_warm on a 3-node consistent-hash fleet.
// Like the micro rows, each configuration is measured twice keeping the
// faster sample, so a one-off CPU-steal burst on a shared runner does not
// read as a code regression. Allocation columns are zero: per-op heap
// accounting is meaningless across an HTTP round trip with background
// goroutines.
func runServeRows(ctx context.Context) ([]benchRecord, error) {
	type config struct {
		nodes  int
		suffix string
	}
	configs := []config{{1, "1node"}, {3, "3node_warm"}}
	rows := make([]benchRecord, 0, 2*len(configs))
	for _, cfg := range configs {
		p50, p99, reqs, err := serveLatencies(ctx, cfg.nodes)
		if err != nil {
			return nil, err
		}
		if p50b, p99b, _, err := serveLatencies(ctx, cfg.nodes); err != nil {
			return nil, err
		} else {
			if p50b < p50 {
				p50 = p50b
			}
			if p99b < p99 {
				p99 = p99b
			}
		}
		rows = append(rows,
			benchRecord{Name: "serve_plan_p50_" + cfg.suffix, Reps: reqs, NsPerOp: p50},
			benchRecord{Name: "serve_plan_p99_" + cfg.suffix, Reps: reqs, NsPerOp: p99},
		)
	}
	traced, err := runTracedRows(ctx)
	if err != nil {
		return nil, err
	}
	return append(rows, traced...), nil
}

// runTracedRows pins the tracing layer's overhead on the 1-node warmed
// plan path:
//
//   - plan_traced_overhead is the p50 with tracing DISABLED — the cost of
//     the dormant span sites (one atomic load each) riding in every build.
//     It is gated against the serve_plan_p50_1node baseline of the PR that
//     predates tracing, so a hot-path regression from instrumentation
//     alone fails the bench gate.
//   - plan_traced_p50_1node is the p50 with tracing ENABLED (informational:
//     no baseline, so -compare reports it as new). The EXPERIMENTS
//     traced-vs-untraced table reads these two rows.
//
// Both are measured twice keeping the faster sample, like the serve rows.
func runTracedRows(ctx context.Context) ([]benchRecord, error) {
	measure := func(opts ...loadgen.LocalOption) (float64, int, error) {
		p50, _, reqs, err := serveLatencies(ctx, 1, opts...)
		if err != nil {
			return 0, 0, err
		}
		if p50b, _, _, err := serveLatencies(ctx, 1, opts...); err != nil {
			return 0, 0, err
		} else if p50b < p50 {
			p50 = p50b
		}
		return p50, reqs, nil
	}
	disabled, reqs, err := measure()
	if err != nil {
		return nil, fmt.Errorf("traced-overhead rows (tracing off): %w", err)
	}
	enabled, treqs, err := measure(loadgen.WithTracing(1))
	if err != nil {
		return nil, fmt.Errorf("traced-overhead rows (tracing on): %w", err)
	}
	return []benchRecord{
		{Name: "plan_traced_overhead", Reps: reqs, NsPerOp: disabled},
		{Name: "plan_traced_p50_1node", Reps: treqs, NsPerOp: enabled},
	}, nil
}
