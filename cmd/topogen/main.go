// Command topogen generates the built-in supply-network topologies and
// writes them as JSON, so they can be inspected, edited and fed back into
// cmd/nrecover.
//
// Usage:
//
//	topogen -kind bell-canada -out bell.json
//	topogen -kind erdos-renyi -nodes 100 -p 0.3 -capacity 1000 -out er.json
//	topogen -kind caida -seed 7 -out caida.json
//	topogen -kind grid -rows 5 -cols 8 -capacity 20
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"netrecovery/internal/graph"
	"netrecovery/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	var (
		kind     = fs.String("kind", "bell-canada", "topology kind: bell-canada | erdos-renyi | caida | grid")
		nodes    = fs.Int("nodes", 100, "node count (erdos-renyi)")
		p        = fs.Float64("p", 0.3, "edge probability (erdos-renyi)")
		rows     = fs.Int("rows", 4, "grid rows")
		cols     = fs.Int("cols", 4, "grid columns")
		capacity = fs.Float64("capacity", 100, "uniform edge capacity (generated topologies)")
		seed     = fs.Int64("seed", 1, "random seed")
		out      = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		g   *graph.Graph
		err error
	)
	cfg := topology.DefaultConfig(*capacity)
	rng := rand.New(rand.NewSource(*seed))
	switch *kind {
	case "bell-canada":
		g = topology.BellCanada()
	case "erdos-renyi":
		g, err = topology.ErdosRenyi(*nodes, *p, cfg, rng)
	case "caida":
		g = topology.CAIDALike(cfg, rng)
	case "grid":
		g, err = topology.Grid(*rows, *cols, cfg)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		w = f
	}
	if err := topology.Write(w, *kind, g); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "topogen: wrote %s with %d nodes and %d edges\n", *kind, g.NumNodes(), g.NumEdges())
	return nil
}
