package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netrecovery/internal/topology"
)

func TestGenerateToStdout(t *testing.T) {
	cases := map[string][]string{
		"bell-canada": {"-kind", "bell-canada"},
		"erdos-renyi": {"-kind", "erdos-renyi", "-nodes", "20", "-p", "0.3", "-seed", "2"},
		"grid":        {"-kind", "grid", "-rows", "3", "-cols", "5", "-capacity", "7"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(args, &out); err != nil {
				t.Fatal(err)
			}
			g, topoName, err := topology.Read(&out)
			if err != nil {
				t.Fatalf("generated output is not a readable topology: %v", err)
			}
			if topoName != name {
				t.Errorf("name = %q, want %q", topoName, name)
			}
			if g.NumNodes() == 0 || g.NumEdges() == 0 {
				t.Error("generated topology is empty")
			}
		})
	}
}

func TestGenerateCAIDAToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "caida.json")
	var out bytes.Buffer
	if err := run([]string{"-kind", "caida", "-seed", "3", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, _, err := topology.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != topology.CAIDALikeNodes || g.NumEdges() != topology.CAIDALikeEdges {
		t.Errorf("CAIDA topology size = %d/%d", g.NumNodes(), g.NumEdges())
	}
}

func TestGenerateErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "unknown"}, &out); err == nil {
		t.Error("expected error for unknown kind")
	}
	if err := run([]string{"-kind", "grid", "-rows", "0"}, &out); err == nil {
		t.Error("expected error for invalid grid dimensions")
	}
	if err := run([]string{"-kind", "erdos-renyi", "-p", "1.5"}, &out); err == nil {
		t.Error("expected error for invalid edge probability")
	}
	if err := run([]string{"-out", filepath.Join("missing", "dir", "x.json")}, &out); err == nil {
		t.Error("expected error for unwritable output path")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("expected flag parse error")
	}
	if !strings.Contains(out.String(), "") {
		t.Log("no stdout expected for error cases")
	}
}
