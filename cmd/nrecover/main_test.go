package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"netrecovery/internal/topology"
	"netrecovery/internal/wire"
)

func TestRunDefaultTopologyISP(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-pairs", "2", "-flow", "8", "-variance", "30", "-seed", "4", "-fast"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "ISP plan:") {
		t.Errorf("output missing plan header: %q", text)
	}
	if !strings.Contains(text, "satisfied demand: 100.0%") {
		t.Errorf("ISP should serve the full demand: %q", text)
	}
	if !strings.Contains(text, "nodes to repair:") || !strings.Contains(text, "links to repair:") {
		t.Errorf("output missing repair lists: %q", text)
	}
}

func TestRunEverySolverName(t *testing.T) {
	for _, solver := range []string{"ISP", "SRT", "GRD-COM", "GRD-NC", "ALL"} {
		t.Run(solver, func(t *testing.T) {
			var out bytes.Buffer
			err := run([]string{"-pairs", "2", "-flow", "5", "-variance", "20", "-seed", "9", "-solver", solver}, &out)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), solver+" plan:") {
				t.Errorf("missing %s plan header: %q", solver, out.String())
			}
		})
	}
}

func TestRunOptSolverSmall(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-pairs", "1", "-flow", "5", "-variance", "15", "-seed", "2", "-solver", "OPT", "-opt-time", "10s"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "OPT plan:") {
		t.Errorf("missing OPT plan header: %q", out.String())
	}
}

func TestRunCompareMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-pairs", "2", "-flow", "8", "-variance", "25", "-seed", "5", "-compare", "-fast"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "solver comparison") {
		t.Errorf("missing comparison table: %q", out.String())
	}
	if !strings.Contains(out.String(), "row 1 = ISP") {
		t.Errorf("missing legend: %q", out.String())
	}
}

func TestRunWithTopologyFileAndDestroyAll(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.json")
	g, err := topology.Grid(3, 3, topology.DefaultConfig(25))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.Write(f, "test-grid", g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{"-topology", path, "-pairs", "1", "-flow", "10", "-destroy-all", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "test-grid") {
		t.Errorf("topology name missing from output: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-topology", "/does/not/exist.json"}, &out); err == nil {
		t.Error("expected error for missing topology file")
	}
	if err := run([]string{"-solver", "NOPE"}, &out); err == nil {
		t.Error("expected error for unknown solver")
	}
	if err := run([]string{"-pairs", "0", "-flow", "0"}, &out); err == nil {
		t.Error("expected error for empty demand (zero flow)")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("expected flag parse error")
	}
}

func TestRunListSolvers(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, name := range []string{"ISP", "OPT", "SRT", "GRD-COM", "GRD-NC", "ALL"} {
		if !strings.Contains(text, name) {
			t.Errorf("-list output missing solver %s: %q", name, text)
		}
	}
	if !strings.Contains(text, "exact") || !strings.Contains(text, "heuristic") {
		t.Errorf("-list output missing exact/heuristic kinds: %q", text)
	}
	if !strings.Contains(text, "Iterative Split and Prune") {
		t.Errorf("-list output missing descriptions: %q", text)
	}
}

func TestBuildSolverVariants(t *testing.T) {
	if s, err := buildSolver("ISP", true, 0, 0, nil); err != nil || s.Name() != "ISP" {
		t.Errorf("buildSolver ISP fast: %v, %v", s, err)
	}
	if s, err := buildSolver("OPT", false, 0, 2, nil); err != nil || s.Name() != "OPT" {
		t.Errorf("buildSolver OPT: %v, %v", s, err)
	}
	if _, err := buildSolver("junk", false, 0, 0, nil); err == nil {
		t.Error("expected error for unknown solver")
	}
}

func TestRunRoutesAndStages(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-pairs", "2", "-flow", "8", "-variance", "30", "-seed", "4", "-routes", "-stage-budget", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "routes:") || !strings.Contains(text, "units via") {
		t.Errorf("missing route decomposition: %q", text)
	}
	if !strings.Contains(text, "progressive schedule") || !strings.Contains(text, "stage 1:") {
		t.Errorf("missing progressive schedule: %q", text)
	}
}

func TestRunGraphMLTopology(t *testing.T) {
	const sample = `<?xml version="1.0"?><graphml xmlns="http://graphml.graphdrawing.org/xmlns">
	<graph>
	<node id="a"/><node id="b"/><node id="c"/><node id="d"/>
	<edge source="a" target="b"/><edge source="b" target="c"/><edge source="c" target="d"/><edge source="a" target="d"/>
	</graph></graphml>`
	dir := t.TempDir()
	path := filepath.Join(dir, "zoo.graphml")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-topology", path, "-graphml", "-pairs", "1", "-flow", "5", "-destroy-all"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4 nodes, 4 edges") {
		t.Errorf("GraphML topology not loaded: %q", out.String())
	}
}

// TestRunJSONOutput: -json emits the shared wire schema — parseable as a
// wire.Plan, deterministic across runs, with sorted ID lists.
func TestRunJSONOutput(t *testing.T) {
	args := []string{"-pairs", "2", "-flow", "8", "-variance", "30", "-seed", "4", "-json", "-stage-budget", "50"}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var plan wire.Plan
	if err := json.Unmarshal(out.Bytes(), &plan); err != nil {
		t.Fatalf("output is not a wire.Plan: %v\n%s", err, out.String())
	}
	if plan.Algorithm != "ISP" {
		t.Errorf("algorithm = %q", plan.Algorithm)
	}
	if len(plan.ScenarioFingerprint) != 64 {
		t.Errorf("scenario_fingerprint = %q, want 64 hex chars", plan.ScenarioFingerprint)
	}
	if plan.TotalRepairs != plan.NodeRepairs+plan.LinkRepairs {
		t.Errorf("repair counts inconsistent: %+v", plan)
	}
	if !sort.IntsAreSorted(plan.RepairedNodes) || !sort.IntsAreSorted(plan.RepairedLinks) {
		t.Errorf("repaired ID lists not sorted: %v / %v", plan.RepairedNodes, plan.RepairedLinks)
	}
	if len(plan.Stages) == 0 {
		t.Error("no stages despite -stage-budget")
	}

	// Byte-identical across runs: the CLI and server share one encoder and
	// the runtime is the only varying field, so strip it before comparing.
	var again bytes.Buffer
	if err := run(args, &again); err != nil {
		t.Fatal(err)
	}
	strip := func(s string) string {
		re := regexp.MustCompile(`"runtime_ms": [0-9.e+-]+`)
		return re.ReplaceAllString(s, `"runtime_ms": X`)
	}
	if strip(out.String()) != strip(again.String()) {
		t.Errorf("-json output not deterministic:\n%s\nvs\n%s", out.String(), again.String())
	}
}

func TestRunJSONRejectsCompare(t *testing.T) {
	if err := run([]string{"-json", "-compare"}, io.Discard); err == nil {
		t.Fatal("-json -compare accepted")
	}
}

// TestRunEnsembleMode: -ensemble replaces the single plan with a robust-plan
// report over sampled disruptions.
func TestRunEnsembleMode(t *testing.T) {
	args := []string{"-pairs", "2", "-flow", "5", "-seed", "3", "-fast",
		"-ensemble", "40", "-ensemble-model", "cascade"}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"ensemble: 40 samples", "hit ratio", "repair cost", "satisfied ratio", "consensus plan",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("ensemble output missing %q:\n%s", want, text)
		}
	}
}

// TestRunEnsembleJSON: -ensemble -json emits the POST /v1/ensemble schema,
// byte-deterministic apart from the wall-clock envelope field.
func TestRunEnsembleJSON(t *testing.T) {
	args := []string{"-pairs", "2", "-flow", "5", "-seed", "3", "-fast",
		"-ensemble", "40", "-ensemble-model", "bernoulli", "-node-prob", "0.1", "-edge-prob", "0.1", "-json"}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var resp wire.EnsembleResponse
	if err := json.Unmarshal(out.Bytes(), &resp); err != nil {
		t.Fatalf("output is not a wire.EnsembleResponse: %v\n%s", err, out.String())
	}
	if resp.Report == nil || resp.Report.Samples != 40 || resp.Report.Failures != 0 {
		t.Fatalf("report = %+v", resp.Report)
	}
	if len(resp.Fingerprint) != 64 {
		t.Errorf("fingerprint = %q, want 64 hex chars", resp.Fingerprint)
	}

	var again bytes.Buffer
	if err := run(args, &again); err != nil {
		t.Fatal(err)
	}
	strip := func(s string) string {
		re := regexp.MustCompile(`"elapsed_ms": [0-9.e+-]+`)
		return re.ReplaceAllString(s, `"elapsed_ms": X`)
	}
	if strip(out.String()) != strip(again.String()) {
		t.Errorf("-ensemble -json output not deterministic:\n%s\nvs\n%s", out.String(), again.String())
	}
}

func TestRunEnsembleRejectsConflictsAndBadModels(t *testing.T) {
	if err := run([]string{"-ensemble", "5", "-compare"}, io.Discard); err == nil {
		t.Error("-ensemble -compare accepted")
	}
	if err := run([]string{"-ensemble", "5", "-destroy-all"}, io.Discard); err == nil {
		t.Error("-ensemble -destroy-all accepted")
	}
	if err := run([]string{"-ensemble", "5", "-ensemble-model", "meteor"}, io.Discard); err == nil {
		t.Error("unknown ensemble model accepted")
	}
	if err := run([]string{"-ensemble", "5", "-solver", "NOPE"}, io.Discard); err == nil {
		t.Error("unknown solver accepted in ensemble mode")
	}
}
