// Command nrecover runs a recovery algorithm on a topology file with a
// synthetic disruption and demand set, printing the repair plan.
//
// Usage:
//
//	nrecover -list
//	nrecover -topology bell.json -pairs 4 -flow 10 -variance 50 -solver ISP
//	nrecover -topology er.json -destroy-all -pairs 5 -flow 1 -solver SRT
//	nrecover -topology bell.json -pairs 3 -flow 10 -variance 40 -compare
//	nrecover -topology bell.json -pairs 4 -flow 10 -variance 50 -json
//	nrecover -ensemble 1000 -ensemble-model cascade -seed-prob 0.05 -spread 0.3
//
// With -list the registered solvers and their metadata are printed. With
// -compare every available solver is run and a comparison table is printed
// instead of a single plan. With -json the plan is emitted in the shared
// wire schema — exactly what the nrserved HTTP daemon returns from
// POST /v1/plan — so scripts can consume either interchangeably.
//
// With -ensemble N the single disruption is replaced by a Monte-Carlo
// ensemble: N disruptions are drawn from the selected failure model
// (-ensemble-model geographic | bernoulli | cascade) over the intact
// topology, deduplicated, solved, and aggregated into a robust-plan report
// (quantiles and CVaR of cost and flow loss, repair frequencies, consensus
// plan). -json switches the report to the POST /v1/ensemble schema.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"netrecovery/internal/degrade"
	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/experiments"
	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/progressive"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
	"netrecovery/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nrecover:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("nrecover", flag.ContinueOnError)
	var (
		topoPath   = fs.String("topology", "", "topology JSON file (default: built-in Bell-Canada)")
		solverName = fs.String("solver", "ISP", "solver: "+strings.Join(heuristics.Names(), " | "))
		list       = fs.Bool("list", false, "list the registered solvers with their metadata and exit")
		pairs      = fs.Int("pairs", 4, "number of far-apart demand pairs to generate")
		flowUnits  = fs.Float64("flow", 10, "flow units per demand pair")
		variance   = fs.Float64("variance", 50, "variance of the geographic disruption")
		destroyAll = fs.Bool("destroy-all", false, "destroy the whole network instead of a geographic disruption")
		seed       = fs.Int64("seed", 1, "random seed for demand and disruption generation")
		fast       = fs.Bool("fast", false, "use ISP's greedy split mode (large topologies)")
		compare    = fs.Bool("compare", false, "run every solver and print a comparison table")
		optTime    = fs.Duration("opt-time", 60*time.Second, "time limit for the OPT solver")
		optWorkers = fs.Int("opt-workers", 0, "branch-and-bound worker goroutines for OPT (0 = all cores; the plan is identical for any value)")
		routes     = fs.Bool("routes", false, "also print the per-demand routes of the plan")
		stages     = fs.Float64("stage-budget", 0, "if positive, also print a progressive repair schedule with this per-stage budget")
		graphml    = fs.Bool("graphml", false, "parse -topology as an Internet Topology Zoo GraphML file")
		jsonOut    = fs.Bool("json", false, "emit the plan as JSON in the exact schema the nrserved HTTP daemon returns (includes the stages when -stage-budget is set)")
		solveStats = fs.Bool("solver-stats", false, "print solver depth statistics (simplex iterations, refactorisations, warm starts; branch-and-bound nodes, steals, incumbent timeline) as JSON on stderr")
		deadline   = fs.Duration("deadline", 0, "overall wall-clock budget for the solve: when the selected solver cannot answer inside it (or fails), degrade to fast ISP instead of erroring; with -json the output is wrapped as {plan, degradation} like a degraded daemon response (0 = off)")

		ensembleN       = fs.Int("ensemble", 0, "draw this many disruption samples and print a robust-plan ensemble report instead of a single plan (0 = off)")
		ensembleModel   = fs.String("ensemble-model", "geographic", "ensemble failure model: geographic | bernoulli | cascade")
		ensembleAlpha   = fs.Float64("ensemble-alpha", 0.95, "CVaR confidence level of the ensemble report")
		ensembleCons    = fs.Float64("ensemble-consensus", 0.9, "repair-frequency threshold of the ensemble consensus plan")
		ensembleWorkers = fs.Int("ensemble-workers", 0, "concurrent ensemble solves (0 = all cores; the report is identical for any value)")
		peakProb        = fs.Float64("peak-prob", 1, "peak failure probability at the epicentre (geographic ensemble model; -variance sets the spread)")
		jitter          = fs.Float64("epicenter-jitter", 0, "std dev of the per-sample epicentre displacement (geographic ensemble model)")
		nodeProb        = fs.Float64("node-prob", 0.1, "per-node failure probability (bernoulli ensemble model)")
		edgeProb        = fs.Float64("edge-prob", 0.1, "per-link failure probability (bernoulli model; co-located link damage for cascade)")
		seedProb        = fs.Float64("seed-prob", 0.05, "initial-shock probability (cascade ensemble model)")
		spread          = fs.Float64("spread", 0.3, "neighbour propagation probability (cascade ensemble model)")
		cascadeRounds   = fs.Int("cascade-rounds", 0, "cascade propagation round bound (0 = run to fixpoint)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		printSolvers(stdout)
		return nil
	}
	if *pairs <= 0 || *flowUnits <= 0 {
		return fmt.Errorf("need a positive number of demand pairs (-pairs) and flow units (-flow)")
	}

	g, name, err := loadTopology(*topoPath, *graphml)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	dg, err := demand.GenerateFarApartPairs(g, *pairs, *flowUnits, rng)
	if err != nil {
		return err
	}
	if *ensembleN > 0 {
		if *compare {
			return fmt.Errorf("-ensemble and -compare are mutually exclusive")
		}
		if *destroyAll {
			return fmt.Errorf("-ensemble draws its own disruptions; drop -destroy-all")
		}
		s := &scenario.Scenario{
			Supply:      g,
			Demand:      dg,
			BrokenNodes: map[graph.NodeID]bool{},
			BrokenEdges: map[graph.EdgeID]bool{},
		}
		if err := s.Validate(); err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "topology %s: %d nodes, %d edges; demand: %d pairs x %.0f units\n\n",
				name, g.NumNodes(), g.NumEdges(), *pairs, *flowUnits)
		}
		ef := ensembleFlags{
			samples:   *ensembleN,
			model:     *ensembleModel,
			alpha:     *ensembleAlpha,
			consensus: *ensembleCons,
			seed:      *seed,
			workers:   *ensembleWorkers,
			variance:  *variance,
			peakProb:  *peakProb,
			jitter:    *jitter,
			nodeProb:  *nodeProb,
			edgeProb:  *edgeProb,
			seedProb:  *seedProb,
			spread:    *spread,
			rounds:    *cascadeRounds,
		}
		return runEnsembleCLI(context.Background(), stdout, s, *solverName, *fast, *optTime, ef, *jsonOut)
	}

	var d disruption.Disruption
	if *destroyAll {
		d = disruption.Complete(g)
	} else {
		d = disruption.Geographic(g, disruption.GeographicConfig{Auto: true, Variance: *variance, PeakProbability: 1}, rng)
	}
	s := &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
	if err := s.Validate(); err != nil {
		return err
	}
	if *jsonOut && *compare {
		return fmt.Errorf("-json and -compare are mutually exclusive")
	}

	if !*jsonOut {
		fmt.Fprintf(stdout, "topology %s: %d nodes, %d edges; disruption: %d nodes + %d edges broken; demand: %d pairs x %.0f units\n\n",
			name, g.NumNodes(), g.NumEdges(), len(d.Nodes), len(d.Edges), *pairs, *flowUnits)
	}

	if *compare {
		cfg := experiments.Quick()
		cfg.IncludeOpt = g.NumNodes() <= 100
		cfg.OptTimeLimit = *optTime
		// The experiments config maps 0 to sequential OPT (its figure cells
		// are already parallel), but -compare runs one solver at a time, so
		// honour the flag's "0 = all cores" promise explicitly.
		cfg.OptWorkers = *optWorkers
		if cfg.OptWorkers == 0 {
			cfg.OptWorkers = runtime.GOMAXPROCS(0)
		}
		cfg.FastISP = *fast || g.NumNodes() > 100
		table, err := experiments.CompareOnScenario(context.Background(), s, cfg)
		if err != nil {
			return err
		}
		legend := experiments.SeriesLegend(cfg)
		for i, solver := range legend {
			fmt.Fprintf(stdout, "row %d = %s\n", i+1, solver)
		}
		fmt.Fprintln(stdout)
		return table.Render(stdout)
	}

	var onStats heuristics.StatsFunc
	if *solveStats {
		onStats = func(_ context.Context, st heuristics.SolveStats) {
			raw, err := json.MarshalIndent(st, "", "  ")
			if err != nil {
				return
			}
			fmt.Fprintf(os.Stderr, "nrecover solver stats: %s\n", raw)
		}
	}
	solver, err := buildSolver(*solverName, *fast, *optTime, *optWorkers, onStats)
	if err != nil {
		return err
	}
	var (
		plan *scenario.Plan
		deg  *degrade.Result
	)
	if *deadline > 0 {
		deg, err = solveWithDeadline(context.Background(), s, solver, *solverName, *fast, *optWorkers, onStats, *deadline)
		if deg != nil {
			plan = deg.Plan
		}
	} else {
		plan, err = solver.Solve(context.Background(), s)
	}
	if err != nil {
		return err
	}
	if err := scenario.VerifyPlan(s, plan); err != nil {
		return fmt.Errorf("produced plan failed verification: %w", err)
	}
	if *jsonOut {
		return printPlanJSON(stdout, s, plan, *stages, degradationJSON(deg, *deadline))
	}
	printPlan(stdout, s, plan)
	printDegradation(stdout, deg, *deadline)
	if *routes {
		printRoutes(stdout, s, plan)
	}
	if *stages > 0 {
		if err := printStages(stdout, s, plan, *stages); err != nil {
			return err
		}
	}
	return nil
}

// solveWithDeadline runs the CLI solve through the deadline-budgeted
// fallback chain: the selected solver under the bulk of the budget, then
// fast ISP. The CLI has no plan cache, so there is no stale stage.
func solveWithDeadline(ctx context.Context, s *scenario.Scenario, solver heuristics.Solver, name string, fast bool, optWorkers int, onStats heuristics.StatsFunc, deadline time.Duration) (*degrade.Result, error) {
	stages := []degrade.Stage{{
		Name:  "primary",
		Level: degrade.LevelNone,
		Run:   func(c context.Context) (*scenario.Plan, error) { return solver.Solve(c, s) },
	}}
	if !(name == "ISP" && fast) {
		stages[0].Fraction = 0.6
		fallback, err := heuristics.New("ISP", heuristics.Params{Fast: true, OPTWorkers: optWorkers, OnStats: onStats})
		if err != nil {
			return nil, err
		}
		stages = append(stages, degrade.Stage{
			Name:  "fallback_isp",
			Level: degrade.LevelFallback,
			Run:   func(c context.Context) (*scenario.Plan, error) { return fallback.Solve(c, s) },
		})
	}
	return degrade.Execute(ctx, stages, degrade.Options{Deadline: deadline})
}

// degradationJSON converts a chain result into the wire annotation the
// nrserved daemon attaches to degraded responses (nil when the chain did
// not run).
func degradationJSON(deg *degrade.Result, deadline time.Duration) *wire.Degradation {
	if deg == nil {
		return nil
	}
	d := &wire.Degradation{
		Level:      deg.Level.String(),
		ServedBy:   deg.ServedBy,
		DeadlineMS: deadline.Milliseconds(),
		Retries:    deg.Retries,
	}
	for _, st := range deg.Stages {
		ts := wire.StageTiming{
			Stage:     st.Name,
			Outcome:   st.Outcome,
			Attempts:  st.Attempts,
			ElapsedMS: st.Elapsed.Milliseconds(),
		}
		if st.Err != nil {
			ts.Error = st.Err.Error()
		}
		d.Stages = append(d.Stages, ts)
	}
	return d
}

// printDegradation summarises the fallback chain after the plan (text mode).
func printDegradation(w io.Writer, deg *degrade.Result, deadline time.Duration) {
	if deg == nil {
		return
	}
	fmt.Fprintf(w, "\ndeadline %v: served by %s (degradation level %s)\n", deadline, deg.ServedBy, deg.Level)
	for _, st := range deg.Stages {
		line := fmt.Sprintf("  %-12s %s", st.Name, st.Outcome)
		if st.Err != nil {
			line += ": " + st.Err.Error()
		}
		fmt.Fprintln(w, line)
	}
}

// printPlanJSON emits the plan in the shared wire schema — the exact JSON
// the nrserved daemon serves from POST /v1/plan — so CLI output and server
// responses cannot drift apart. Under -deadline the plan is wrapped with
// its degradation annotation, mirroring a degraded daemon response.
func printPlanJSON(w io.Writer, s *scenario.Scenario, plan *scenario.Plan, stageBudget float64, deg *wire.Degradation) error {
	wp := wire.FromPlan(s, plan)
	if stageBudget > 0 {
		staged, err := wp.WithStages(s, plan, stageBudget)
		if err != nil {
			return err
		}
		wp = staged
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if deg != nil {
		return enc.Encode(struct {
			Plan        wire.Plan         `json:"plan"`
			Degradation *wire.Degradation `json:"degradation"`
		}{wp, deg})
	}
	return enc.Encode(wp)
}

// printRoutes decomposes the plan's routing into explicit per-demand paths.
func printRoutes(w io.Writer, s *scenario.Scenario, plan *scenario.Plan) {
	fmt.Fprintln(w, "\nroutes:")
	paths := flow.DecomposeRouting(s.Supply, plan.Routing)
	if len(paths) == 0 {
		fmt.Fprintln(w, "  (no routing recorded)")
		return
	}
	for _, rp := range paths {
		pair, _ := s.Demand.Pair(rp.Pair)
		fmt.Fprintf(w, "  demand %d (%d -> %d): %.1f units via %s\n", rp.Pair, pair.Source, pair.Target, rp.Flow, rp.Path)
	}
}

// printStages prints a progressive repair schedule for the plan.
func printStages(w io.Writer, s *scenario.Scenario, plan *scenario.Plan, budget float64) error {
	sched, err := progressive.Build(s, plan, progressive.Options{StageBudget: budget})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nprogressive schedule (budget %.1f per stage):\n", budget)
	for _, stage := range sched.Stages {
		fmt.Fprintf(w, "  stage %d: %d repairs (cost %.1f) -> %.1f%% of demand served\n",
			stage.Index, len(stage.Repairs), stage.Cost, 100*stage.SatisfiedRatio)
	}
	return nil
}

func loadTopology(path string, graphml bool) (*graph.Graph, string, error) {
	if path == "" {
		return topology.BellCanada(), "bell-canada (built-in)", nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	if graphml {
		g, gerr := topology.ReadGraphML(f, topology.GraphMLOptions{})
		if gerr != nil {
			return nil, "", gerr
		}
		return g, path, nil
	}
	return topologyRead(f, path)
}

func topologyRead(r io.Reader, path string) (*graph.Graph, string, error) {
	g, name, err := topology.Read(r)
	if err != nil {
		return nil, "", fmt.Errorf("read %s: %w", path, err)
	}
	if name == "" {
		name = path
	}
	return g, name, nil
}

// printSolvers renders the registry metadata: one row per solver with its
// kind (exact vs heuristic), scalability hint and description.
func printSolvers(w io.Writer) {
	fmt.Fprintf(w, "%-8s %-10s %-55s %s\n", "solver", "kind", "scalability", "description")
	for _, info := range heuristics.Infos() {
		kind := "heuristic"
		if info.Exact {
			kind = "exact"
		}
		fmt.Fprintf(w, "%-8s %-10s %-55s %s\n", info.Name, kind, info.Scalability, info.Description)
	}
}

// buildSolver resolves the solver through the registry; the CLI knobs ride
// along as registry params, so custom solvers are constructed exactly like
// the built-ins.
func buildSolver(name string, fast bool, optTime time.Duration, optWorkers int, onStats heuristics.StatsFunc) (heuristics.Solver, error) {
	return heuristics.New(name, heuristics.Params{Fast: fast, OPTTimeLimit: optTime, OPTWorkers: optWorkers, OnStats: onStats})
}

func printPlan(w io.Writer, s *scenario.Scenario, plan *scenario.Plan) {
	nodes, edges, total := plan.NumRepairs()
	fmt.Fprintf(w, "%s plan: %d node repairs + %d edge repairs = %d total (cost %.1f)\n",
		plan.Solver, nodes, edges, total, plan.RepairCost(s))
	fmt.Fprintf(w, "satisfied demand: %.1f%% of %.1f units\n", 100*plan.SatisfactionRatio(), plan.TotalDemand)
	fmt.Fprintf(w, "runtime: %v\n", plan.Runtime.Round(time.Millisecond))
	if plan.Notes != "" {
		fmt.Fprintf(w, "notes: %s\n", plan.Notes)
	}

	repairNodeIDs := make([]int, 0, len(plan.RepairedNodes))
	for v := range plan.RepairedNodes {
		repairNodeIDs = append(repairNodeIDs, int(v))
	}
	sort.Ints(repairNodeIDs)
	fmt.Fprintf(w, "\nnodes to repair:")
	for _, v := range repairNodeIDs {
		node := s.Supply.Node(graph.NodeID(v))
		label := node.Name
		if label == "" {
			label = fmt.Sprintf("#%d", v)
		}
		fmt.Fprintf(w, " %s", label)
	}
	repairEdgeIDs := make([]int, 0, len(plan.RepairedEdges))
	for e := range plan.RepairedEdges {
		repairEdgeIDs = append(repairEdgeIDs, int(e))
	}
	sort.Ints(repairEdgeIDs)
	fmt.Fprintf(w, "\nlinks to repair:")
	for _, e := range repairEdgeIDs {
		edge := s.Supply.Edge(graph.EdgeID(e))
		fmt.Fprintf(w, " (%d-%d)", edge.From, edge.To)
	}
	fmt.Fprintln(w)
}
