package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"netrecovery/internal/ensemble"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
	"netrecovery/internal/wire"
)

// ensembleFlags collects the -ensemble* knobs of the CLI.
type ensembleFlags struct {
	samples   int
	model     string
	alpha     float64
	consensus float64
	seed      int64
	workers   int

	variance float64
	peakProb float64
	jitter   float64
	nodeProb float64
	edgeProb float64
	seedProb float64
	spread   float64
	rounds   int
}

// sampler assembles the failure-model spec. Every knob is set; the model
// validates and consumes only its own parameters.
func (f ensembleFlags) sampler() ensemble.SamplerSpec {
	return ensemble.SamplerSpec{
		Model:           f.model,
		Variance:        f.variance,
		PeakProbability: f.peakProb,
		EpicenterJitter: f.jitter,
		NodeProb:        f.nodeProb,
		EdgeProb:        f.edgeProb,
		SeedProb:        f.seedProb,
		Spread:          f.spread,
		Rounds:          f.rounds,
	}
}

// runEnsembleCLI draws the ensemble over the (intact) base scenario and
// prints the robust-plan report — as the shared wire schema with -json
// (exactly what POST /v1/ensemble returns), as a human summary otherwise.
func runEnsembleCLI(ctx context.Context, w io.Writer, s *scenario.Scenario, solverName string, fast bool, optTime time.Duration, f ensembleFlags, jsonOut bool) error {
	rep, err := ensemble.Run(ctx, ensemble.Spec{
		Scenario:           s,
		Sampler:            f.sampler(),
		Samples:            f.samples,
		Seed:               f.seed,
		Algorithm:          solverName,
		Fast:               fast,
		OPTTimeLimit:       optTime,
		Workers:            f.workers,
		SolverWorkers:      1, // the sample pool owns the parallelism
		Alpha:              f.alpha,
		ConsensusThreshold: f.consensus,
	})
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(wire.FromEnsemble(s, rep))
	}
	printEnsemble(w, s, rep)
	return nil
}

func printEnsemble(w io.Writer, s *scenario.Scenario, rep *ensemble.Report) {
	fmt.Fprintf(w, "ensemble: %d samples -> %d unique (%d deduped), %d solves, hit ratio %.1f%%\n",
		rep.Samples, rep.Unique, rep.Deduped, rep.Solves, 100*rep.HitRatio)
	fmt.Fprintf(w, "algorithm %s, alpha %.2f, consensus threshold %.0f%%, runtime %v\n",
		rep.Algorithm, rep.Alpha, 100*rep.Consensus.Threshold, rep.Elapsed.Round(time.Millisecond))
	if rep.Failures > 0 {
		fmt.Fprintf(w, "failures: %d unique scenarios excluded (first: %s)\n", rep.Failures, rep.FirstError)
	}

	fmt.Fprintf(w, "\n%-16s %10s %10s %10s %10s %10s %10s\n", "metric", "mean", "std", "p50", "p95", "p99", "cvar")
	row := func(name string, d ensemble.Dist) {
		fmt.Fprintf(w, "%-16s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			name, d.Mean, d.Std, d.P50, d.P95, d.P99, d.CVaR)
	}
	row("broken elements", rep.BrokenElements)
	row("repair cost", rep.RepairCost)
	row("flow loss", rep.FlowLoss)
	row("satisfied ratio", rep.SatisfiedRatio)

	if top := topRepairs(rep.Repairs, 10); len(top) > 0 {
		fmt.Fprintf(w, "\ntop repairs (share of samples whose plan repairs the element):\n")
		for _, st := range top {
			fmt.Fprintf(w, "  %-5s %-16s %5.1f%%  (%.1f%% when broken)\n",
				st.Kind, elementLabel(s, st), 100*st.Frequency, 100*st.ConditionalFrequency)
		}
	}

	c := rep.Consensus
	fmt.Fprintf(w, "\nconsensus plan (repaired in >= %.0f%% of samples): %d nodes + %d links\n",
		100*c.Threshold, len(c.Nodes), len(c.Links))
	if len(c.Nodes)+len(c.Links) > 0 {
		fmt.Fprintf(w, "  mean cost %.1f; satisfied ratio mean %.1f%% (cvar %.1f%%); fully restores %.1f%% of samples\n",
			c.MeanCost, 100*c.SatisfiedRatio.Mean, 100*c.SatisfiedRatio.CVaR, 100*c.FullSatisfied)
	}
}

// topRepairs returns the n highest-frequency repair stats, preserving the
// canonical kind/ID order among ties.
func topRepairs(stats []ensemble.RepairStat, n int) []ensemble.RepairStat {
	top := append([]ensemble.RepairStat(nil), stats...)
	sort.SliceStable(top, func(i, j int) bool { return top[i].Frequency > top[j].Frequency })
	if len(top) > n {
		top = top[:n]
	}
	return top
}

// elementLabel renders one repair target: the node's name (or #id), or the
// link's endpoint pair.
func elementLabel(s *scenario.Scenario, st ensemble.RepairStat) string {
	if st.Kind == "node" {
		node := s.Supply.Node(graph.NodeID(st.ID))
		if node.Name != "" {
			return node.Name
		}
		return fmt.Sprintf("#%d", st.ID)
	}
	edge := s.Supply.Edge(graph.EdgeID(st.ID))
	return fmt.Sprintf("(%d-%d)", edge.From, edge.To)
}
