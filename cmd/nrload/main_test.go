package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netrecovery/internal/cluster"
	"netrecovery/internal/loadgen"
	"netrecovery/internal/server"
	"netrecovery/internal/wire"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("plan=8,session=1,ensemble=1")
	if err != nil {
		t.Fatal(err)
	}
	if mix != (loadgen.Mix{Plan: 8, Session: 1, Ensemble: 1}) {
		t.Fatalf("mix = %+v", mix)
	}
	for _, bad := range []string{"plan", "plan=x", "plan=-1", "sweep=1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestRunAgainstFleet drives the CLI end to end against an in-process
// 3-node fleet and checks the report file and the SLO assertions.
func TestRunAgainstFleet(t *testing.T) {
	lc, err := loadgen.StartLocal(3, server.Config{}, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	targets := strings.Join(lc.URLs, ",")
	out := filepath.Join(t.TempDir(), "report.json")

	var stdout bytes.Buffer
	err = run([]string{
		"-targets", targets,
		"-duration", "0",
		"-max-requests", "40",
		"-concurrency", "4",
		"-scenarios", "6",
		"-topology", "grid:4x4",
		"-seed", "3",
		"-out", out,
		"-assert-no-5xx",
		"-assert-min-requests", "40",
	}, &stdout)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep wire.LoadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, raw)
	}
	if rep.Requests != 40 || rep.Err5xx != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Targets) != 3 {
		t.Fatalf("targets = %v", rep.Targets)
	}

	// An impossible SLO fails the run after writing the report.
	err = run([]string{
		"-targets", targets,
		"-duration", "0",
		"-max-requests", "10",
		"-scenarios", "4",
		"-topology", "grid:4x4",
		"-out", filepath.Join(t.TempDir(), "r.json"),
		"-assert-p99-ms", "0.000001",
	}, &stdout)
	if err == nil || !strings.Contains(err.Error(), "p99") {
		t.Fatalf("impossible p99 assertion passed: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var stdout bytes.Buffer
	if err := run([]string{}, &stdout); err == nil {
		t.Fatal("run accepted missing -targets")
	}
	if err := run([]string{"-targets", "http://x", "-mix", "bogus"}, &stdout); err == nil {
		t.Fatal("run accepted bogus -mix")
	}
}
