// Command nrload replays Zipf-distributed recovery-planning traffic
// against one or more nrserved nodes and reports latency percentiles,
// throughput and the fleet's cache dispositions as a single JSON
// wire.LoadReport.
//
// Usage:
//
//	nrload -targets http://localhost:8080 -duration 15s
//	nrload -targets http://n1:8080,http://n2:8080,http://n3:8080 \
//	       -duration 15s -concurrency 8 -scenarios 128 \
//	       -mix plan=8,session=1,ensemble=1 -out report.json
//
// A closed loop (fixed -concurrency) is the default; -rate switches to an
// open loop with that arrival rate per second and a bounded dispatch
// queue. The -assert-* flags turn the run into an SLO gate for CI: the
// process exits non-zero when an assertion fails, after printing the
// report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"netrecovery/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nrload:", err)
		os.Exit(1)
	}
}

// parseMix parses "plan=8,session=1,ensemble=1" (weights, not ratios).
func parseMix(s string) (loadgen.Mix, error) {
	var mix loadgen.Mix
	if s == "" {
		return mix, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return mix, fmt.Errorf("bad mix component %q (want kind=weight)", part)
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return mix, fmt.Errorf("bad mix weight %q", part)
		}
		switch k {
		case "plan":
			mix.Plan = w
		case "session":
			mix.Session = w
		case "ensemble":
			mix.Ensemble = w
		default:
			return mix, fmt.Errorf("unknown mix kind %q (want plan, session or ensemble)", k)
		}
	}
	return mix, nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("nrload", flag.ContinueOnError)
	var (
		targets     = fs.String("targets", "", "comma-separated node base URLs (required)")
		duration    = fs.Duration("duration", 15*time.Second, "run wall-time budget (0 = until -max-requests)")
		maxRequests = fs.Int("max-requests", 0, "stop after this many requests (0 = until -duration)")
		concurrency = fs.Int("concurrency", loadgen.DefaultConcurrency, "worker count")
		rate        = fs.Float64("rate", 0, "open-loop arrival rate per second (0 = closed loop)")
		queueDepth  = fs.Int("queue-depth", 0, "open-loop dispatch queue bound (0 = 2x concurrency); overflow arrivals are dropped and counted")
		scenarios   = fs.Int("scenarios", loadgen.DefaultScenarios, "scenario population size")
		zipfS       = fs.Float64("zipf-s", loadgen.DefaultZipfS, "Zipf exponent of the key distribution (>1; larger = hotter hot set)")
		zipfV       = fs.Float64("zipf-v", loadgen.DefaultZipfV, "Zipf v parameter (>=1)")
		seed        = fs.Uint64("seed", 1, "root seed of every random stream")
		algorithm   = fs.String("algorithm", loadgen.DefaultAlgorithm, "solver algorithm the plan requests ask for")
		fast        = fs.Bool("fast", true, "request the fast (greedy split) ISP mode")
		mixFlag     = fs.String("mix", "plan=1", "op mix weights, e.g. plan=8,session=1,ensemble=1")
		topo        = fs.String("topology", loadgen.DefaultTopology, "base graph: grid:RxC or bell-canada")
		pairs       = fs.Int("pairs", loadgen.DefaultPairs, "demand pairs")
		flow        = fs.Float64("flow", loadgen.DefaultFlow, "flow per demand pair")
		reqTimeout  = fs.Duration("request-timeout", 10*time.Second, "per-request budget")
		prewarm     = fs.Bool("prewarm", false, "issue every scenario once against every target before measuring")
		timing      = fs.Bool("timing", false, "request per-response traced timing breakdowns and report queue/solve/peer-fill percentiles (needs tracing enabled on the fleet)")
		out         = fs.String("out", "", "write the JSON report to this file (default stdout)")

		assertP99      = fs.Float64("assert-p99-ms", 0, "fail unless p99 latency is at or below this many milliseconds (0 = no assertion)")
		assertNo5xx    = fs.Bool("assert-no-5xx", false, "fail if any request answered 5xx")
		assertPeerFill = fs.Bool("assert-peer-fill", false, "fail unless at least one plan was peer-filled (multi-node cache path observed)")
		assertMinReqs  = fs.Int("assert-min-requests", 0, "fail unless at least this many requests completed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *targets == "" {
		return fmt.Errorf("-targets required")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	targetList := strings.Split(*targets, ",")
	for i := range targetList {
		targetList[i] = strings.TrimSpace(strings.TrimSuffix(targetList[i], "/"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := loadgen.Run(ctx, loadgen.Spec{
		Targets:        targetList,
		Duration:       *duration,
		MaxRequests:    *maxRequests,
		Concurrency:    *concurrency,
		Rate:           *rate,
		QueueDepth:     *queueDepth,
		Scenarios:      *scenarios,
		ZipfS:          *zipfS,
		ZipfV:          *zipfV,
		Seed:           *seed,
		Algorithm:      *algorithm,
		Fast:           *fast,
		Mix:            mix,
		Topology:       *topo,
		Pairs:          *pairs,
		Flow:           *flow,
		RequestTimeout: *reqTimeout,
		PrewarmAll:     *prewarm,
		Timing:         *timing,
	})
	if err != nil {
		return err
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "nrload: report written to %s\n", *out)
	} else {
		stdout.Write(raw)
	}
	if t := rep.Timing; t != nil {
		fmt.Fprintf(stdout, "nrload timing (%d samples): queue p50 %.3fms p99 %.3fms; solve p50 %.3fms p99 %.3fms; peer-fill p50 %.3fms p99 %.3fms\n",
			t.Samples, t.QueueP50MS, t.QueueP99MS, t.SolveP50MS, t.SolveP99MS, t.PeerFillP50MS, t.PeerFillP99MS)
	}

	var failures []string
	if *assertP99 > 0 && rep.Latency.P99MS > *assertP99 {
		failures = append(failures, fmt.Sprintf("p99 %.2fms > %.2fms", rep.Latency.P99MS, *assertP99))
	}
	if *assertNo5xx && rep.Err5xx > 0 {
		failures = append(failures, fmt.Sprintf("%d requests answered 5xx", rep.Err5xx))
	}
	if *assertPeerFill && rep.Cache.PeerFilled == 0 {
		failures = append(failures, "no peer-filled plan observed")
	}
	if *assertMinReqs > 0 && rep.Requests < *assertMinReqs {
		failures = append(failures, fmt.Sprintf("only %d requests completed, want >= %d", rep.Requests, *assertMinReqs))
	}
	if len(failures) > 0 {
		return fmt.Errorf("SLO assertions failed: %s", strings.Join(failures, "; "))
	}
	return nil
}
