package netrecovery_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"netrecovery"
)

// TestConcurrentPlanAndMutation is the race-detector regression test for
// the snapshot redesign: concurrent solves and mutations on one shared
// Network must be data-race free, because every solve operates on a
// deep-copied snapshot taken under the network's lock. Run with -race to
// make it meaningful. (The legacy-shim variant lives in shim_test.go.)
func TestConcurrentPlanAndMutation(t *testing.T) {
	net, err := netrecovery.Grid(4, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddDemandByID(0, 15, 10); err != nil {
		t.Fatal(err)
	}
	net.ApplyCompleteDestruction()

	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	planner := netrecovery.NewPlanner(netrecovery.WithAlgorithm(netrecovery.SRT))
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := planner.Plan(context.Background(), net.Snapshot()); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	// Mutators: break elements, add demands and apply disruptions while the
	// solvers run.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			net.BreakNode(i % 16)
			net.BreakLink(i % 24)
			net.ApplyRandomDisruption(0.1, 0.1, int64(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := net.AddDemandByID(1, 14, 1); err != nil {
				errs <- err
				return
			}
			_ = net.Broken()
			_ = net.TotalDemand()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentSolvesOnSharedScenario is the acceptance test for scenario
// immutability: one snapshot is solved concurrently by every registered
// algorithm, several times, without any data race (solvers clone what they
// mutate and only read the shared snapshot).
func TestConcurrentSolvesOnSharedScenario(t *testing.T) {
	net, err := netrecovery.Grid(4, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddDemandByID(0, 15, 10); err != nil {
		t.Fatal(err)
	}
	if err := net.AddDemandByID(3, 12, 5); err != nil {
		t.Fatal(err)
	}
	net.ApplyRandomDisruption(0.5, 0.5, 11)
	sc := net.Snapshot()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for _, alg := range netrecovery.Algorithms() {
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(alg netrecovery.Algorithm) {
				defer wg.Done()
				planner := netrecovery.NewPlanner(
					netrecovery.WithAlgorithm(alg),
					netrecovery.WithFastISP(),
					netrecovery.WithOPTBudget(0, 100),
				)
				plan, err := planner.Plan(context.Background(), sc)
				if err != nil {
					errs <- err
					return
				}
				if err := plan.Verify(); err != nil {
					errs <- err
				}
			}(alg)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The shared snapshot must be unchanged after all those solves.
	want := net.Broken()
	if got := sc.Broken(); !reflect.DeepEqual(got, want) {
		t.Errorf("scenario mutated by solvers: %+v, want %+v", got, want)
	}
}
