package netrecovery

import (
	"testing"
)

func TestScheduleProgressively(t *testing.T) {
	net, err := Grid(3, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddDemandByID(0, 8, 10); err != nil {
		t.Fatal(err)
	}
	net.ApplyCompleteDestruction()
	plan, err := net.Recover(ISP)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := plan.ScheduleProgressively(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) == 0 {
		t.Fatal("expected at least one stage")
	}
	totalScheduled := 0
	prevRatio := -1.0
	for _, stage := range stages {
		if stage.Cost > 3+1e-9 {
			t.Errorf("stage %d cost %f exceeds budget", stage.Index, stage.Cost)
		}
		if stage.SatisfiedDemandRatio < prevRatio-1e-9 {
			t.Errorf("satisfaction regressed at stage %d", stage.Index)
		}
		prevRatio = stage.SatisfiedDemandRatio
		totalScheduled += len(stage.RepairedNodes) + len(stage.RepairedLinks)
	}
	_, _, planTotal := plan.Repairs()
	if totalScheduled != planTotal {
		t.Errorf("scheduled %d elements, plan has %d", totalScheduled, planTotal)
	}
	if stages[len(stages)-1].SatisfiedDemandRatio < 1-1e-9 {
		t.Errorf("final stage ratio = %f, want 1", stages[len(stages)-1].SatisfiedDemandRatio)
	}
	if _, err := plan.ScheduleProgressively(0); err == nil {
		t.Error("expected error for zero budget")
	}
}
