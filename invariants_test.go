package netrecovery

import (
	"fmt"
	"testing"
	"time"
)

// invariantNetwork builds one of the cross-algorithm test networks with its
// demand and disruption applied.
func invariantNetwork(t *testing.T, topology string, seed int64) *Network {
	t.Helper()
	var (
		net *Network
		err error
	)
	switch topology {
	case "bell-canada":
		net = BellCanada()
	case "grid":
		net, err = Grid(4, 4, 20)
	case "erdos-renyi":
		net, err = ErdosRenyi(16, 0.3, 20, seed)
	default:
		t.Fatalf("unknown topology %q", topology)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddFarApartDemands(2, 5, seed); err != nil {
		t.Fatal(err)
	}
	net.ApplyGeographicDisruption(DisruptionConfig{Variance: 30, Seed: seed})
	return net
}

// TestCrossAlgorithmInvariants runs every registered algorithm across three
// topologies and three seeds and checks the properties every plan must
// satisfy:
//
//   - Plan.Verify passes (capacity, conservation, only broken elements
//     repaired);
//   - the plan's cost never exceeds ALL's cost (no solver repairs more than
//     everything);
//   - the loss-free algorithms (ISP, OPT, ALL) serve the whole demand
//     whenever ALL can, i.e. whenever the instance is feasible. SRT and the
//     greedy heuristics may lose demand by design (§VI), so only the
//     verification and cost bounds apply to them.
func TestCrossAlgorithmInvariants(t *testing.T) {
	topologies := []string{"bell-canada", "grid", "erdos-renyi"}
	seeds := []int64{1, 2, 3}
	lossFree := map[Algorithm]bool{ISP: true, OPT: true, All: true}
	opts := RecoverOptions{OPTTimeLimit: 10 * time.Second, OPTMaxNodes: 300}

	if len(Algorithms()) < 6 {
		t.Fatalf("Algorithms() = %v, want the six registered solvers", Algorithms())
	}
	for _, topology := range topologies {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", topology, seed), func(t *testing.T) {
				allPlan, err := invariantNetwork(t, topology, seed).RecoverWithOptions(All, opts)
				if err != nil {
					t.Fatalf("ALL: %v", err)
				}
				allCost := allPlan.Cost()
				feasible := allPlan.SatisfiedDemandRatio() >= 1-1e-9

				for _, alg := range Algorithms() {
					// Rebuild the network per algorithm: plans hold a
					// reference to the scenario they were solved on.
					plan, err := invariantNetwork(t, topology, seed).RecoverWithOptions(alg, opts)
					if err != nil {
						t.Fatalf("%s: %v", alg, err)
					}
					if err := plan.Verify(); err != nil {
						t.Errorf("%s: plan failed verification: %v", alg, err)
					}
					if plan.Cost() > allCost+1e-9 {
						t.Errorf("%s: cost %.2f exceeds ALL cost %.2f", alg, plan.Cost(), allCost)
					}
					if feasible && lossFree[alg] && plan.SatisfiedDemandRatio() < 1-1e-9 {
						t.Errorf("%s: satisfied ratio %.4f on a feasible instance, want 1",
							alg, plan.SatisfiedDemandRatio())
					}
				}
			})
		}
	}
}

// TestRepairedIDsSorted is the regression test for the sortInts fix: the
// facade must return repaired node and link IDs in ascending order.
func TestRepairedIDsSorted(t *testing.T) {
	net, err := Grid(4, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddDemandByID(0, 15, 10); err != nil {
		t.Fatal(err)
	}
	// Break a scattered, deliberately unordered set of elements.
	for _, v := range []int{11, 2, 7, 5, 14, 9} {
		net.BreakNode(v)
	}
	for _, e := range []int{13, 1, 8, 4, 19} {
		net.BreakLink(e)
	}
	plan, err := net.Recover(All)
	if err != nil {
		t.Fatal(err)
	}
	nodes := plan.RepairedNodes()
	links := plan.RepairedLinks()
	if len(nodes) != 6 || len(links) != 5 {
		t.Fatalf("repairs = %d nodes %d links, want 6 and 5", len(nodes), len(links))
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Errorf("RepairedNodes not strictly ascending: %v", nodes)
			break
		}
	}
	for i := 1; i < len(links); i++ {
		if links[i-1] >= links[i] {
			t.Errorf("RepairedLinks not strictly ascending: %v", links)
			break
		}
	}
}
