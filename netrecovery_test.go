package netrecovery

import (
	"strings"
	"testing"
	"time"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	net, err := Grid(3, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 9 || net.NumLinks() != 12 {
		t.Fatalf("grid size = %d nodes %d links", net.NumNodes(), net.NumLinks())
	}
	if err := net.AddDemandByID(0, 8, 10); err != nil {
		t.Fatal(err)
	}
	report := net.ApplyCompleteDestruction()
	if report.BrokenNodes != 9 || report.BrokenEdges != 12 {
		t.Fatalf("disruption = %+v", report)
	}
	plan, err := net.Recover(ISP)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SatisfiedDemandRatio() < 1-1e-9 {
		t.Errorf("satisfaction = %f", plan.SatisfiedDemandRatio())
	}
	if err := plan.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
	if _, _, total := plan.Repairs(); total == 0 {
		t.Error("expected repairs on a destroyed grid")
	}
	if !strings.Contains(plan.Summary(), "ISP") {
		t.Errorf("summary = %q", plan.Summary())
	}
	if len(plan.RepairedNodes()) == 0 || len(plan.RepairedLinks()) == 0 {
		t.Error("expected repaired node and link lists")
	}
	if plan.Cost() <= 0 {
		t.Error("expected positive repair cost")
	}
	if plan.Runtime() <= 0 {
		t.Error("expected positive runtime")
	}
}

func TestFacadeBellCanadaNamedDemands(t *testing.T) {
	net := BellCanada()
	if err := net.AddDemand("Victoria", "Halifax", 10); err != nil {
		t.Fatal(err)
	}
	if err := net.AddDemand("nowhere", "Halifax", 10); err == nil {
		t.Error("expected error for unknown node name")
	}
	if _, ok := net.NodeID("Toronto"); !ok {
		t.Error("Toronto should exist")
	}
	report := net.ApplyGeographicDisruption(DisruptionConfig{Variance: 30, Seed: 7})
	if report.BrokenNodes+report.BrokenEdges == 0 {
		t.Fatal("disruption broke nothing")
	}
	plan, err := net.Recover(SRT)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestFacadeAllAlgorithmsOnSmallScenario(t *testing.T) {
	build := func() *Network {
		net, err := Grid(3, 3, 20)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddDemandByID(0, 8, 10); err != nil {
			t.Fatal(err)
		}
		net.ApplyRandomDisruption(0.4, 0.4, 3)
		return net
	}
	for _, alg := range Algorithms() {
		t.Run(string(alg), func(t *testing.T) {
			net := build()
			plan, err := net.RecoverWithOptions(alg, RecoverOptions{
				OPTMaxNodes:  200,
				OPTTimeLimit: 10 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := plan.Verify(); err != nil {
				t.Errorf("verify: %v", err)
			}
			if plan.Algorithm() != string(alg) {
				t.Errorf("algorithm = %q, want %q", plan.Algorithm(), alg)
			}
		})
	}
	net := build()
	if _, err := net.Recover(Algorithm("bogus")); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestFacadeManualConstruction(t *testing.T) {
	net := New()
	a := net.AddNode("a", 0, 0, 1)
	b := net.AddNode("b", 1, 0, 1)
	c := net.AddNode("c", 2, 0, 1)
	if err := net.AddLink(a, b, 10, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink(b, c, 10, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink(a, a, 10, 1); err == nil {
		t.Error("expected error for self loop")
	}
	if err := net.AddDemand("a", "c", 5); err != nil {
		t.Fatal(err)
	}
	if net.TotalDemand() != 5 {
		t.Errorf("TotalDemand = %f", net.TotalDemand())
	}
	net.BreakNode(b)
	net.BreakLink(0)
	if got := net.Broken(); got.BrokenNodes != 1 || got.BrokenEdges != 1 {
		t.Errorf("Broken = %+v", got)
	}
	plan, err := net.Recover(ISP)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, total := plan.Repairs(); total != 2 {
		t.Errorf("repairs = %d, want 2", total)
	}
	if err := plan.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestFacadeFarApartDemandsAndFastISP(t *testing.T) {
	net := BellCanada()
	if err := net.AddFarApartDemands(3, 10, 5); err != nil {
		t.Fatal(err)
	}
	if net.TotalDemand() != 30 {
		t.Errorf("TotalDemand = %f, want 30", net.TotalDemand())
	}
	net.ApplyGeographicDisruption(DisruptionConfig{Variance: 40, Seed: 5})
	plan, err := net.RecoverWithOptions(ISP, RecoverOptions{FastISP: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
	if plan.SatisfiedDemandRatio() < 1-1e-9 {
		t.Errorf("satisfaction = %f, want 1", plan.SatisfiedDemandRatio())
	}
}

func TestFacadeGenerators(t *testing.T) {
	if _, err := ErdosRenyi(30, 0.2, 100, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ErdosRenyi(0, 0.2, 100, 1); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := Grid(0, 5, 1); err == nil {
		t.Error("expected error for empty grid")
	}
	net := CAIDALike(100, 2)
	if net.NumNodes() != 825 || net.NumLinks() != 1018 {
		t.Errorf("CAIDALike size = %d/%d", net.NumNodes(), net.NumLinks())
	}
}
