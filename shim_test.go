package netrecovery

// Equivalence tests for the deprecated shims: every legacy entry point must
// produce byte-identical plans to the Planner path on the invariants-test
// topologies. These tests live in the declaring package on purpose — the
// deprecated API is their subject.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fingerprint renders every deterministic aspect of a plan (runtime is
// excluded: it is wall-clock measured and never reproducible).
func fingerprint(p *Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "alg=%s\n", p.Algorithm())
	fmt.Fprintf(&b, "nodes=%v\n", p.RepairedNodes())
	fmt.Fprintf(&b, "links=%v\n", p.RepairedLinks())
	fmt.Fprintf(&b, "cost=%.9f\n", p.Cost())
	fmt.Fprintf(&b, "satisfied=%.9f\n", p.SatisfiedDemandRatio())
	fmt.Fprintf(&b, "optimal=%v\n", p.Optimal())
	return b.String()
}

// stageFingerprint renders a progressive timeline.
func stageFingerprint(stages []RecoveryStage) string {
	var b strings.Builder
	for _, s := range stages {
		fmt.Fprintf(&b, "stage %d: nodes=%v links=%v cost=%.9f ratio=%.9f\n",
			s.Index, s.RepairedNodes, s.RepairedLinks, s.Cost, s.SatisfiedDemandRatio)
	}
	return b.String()
}

// TestLegacyShimsMatchPlanner checks Recover, RecoverWithOptions and
// RecoverContext against the Planner on the invariants-test topologies for
// every built-in algorithm.
func TestLegacyShimsMatchPlanner(t *testing.T) {
	topologies := []string{"bell-canada", "grid", "erdos-renyi"}
	algorithms := []Algorithm{ISP, SRT, GreedyCommit, GreedyNoCommit, All, OPT}
	opts := RecoverOptions{OPTTimeLimit: 30 * time.Second, OPTMaxNodes: 300}

	for _, topology := range topologies {
		for _, alg := range algorithms {
			t.Run(fmt.Sprintf("%s/%s", topology, alg), func(t *testing.T) {
				planner := NewPlanner(
					WithAlgorithm(alg),
					WithOPTBudget(opts.OPTTimeLimit, opts.OPTMaxNodes),
				)
				want, err := planner.Plan(context.Background(), invariantNetwork(t, topology, 1).Snapshot())
				if err != nil {
					t.Fatal(err)
				}
				wantFP := fingerprint(want)

				legacy := map[string]func() (*Plan, error){
					"RecoverWithOptions": func() (*Plan, error) {
						return invariantNetwork(t, topology, 1).RecoverWithOptions(alg, opts)
					},
					"RecoverContext": func() (*Plan, error) {
						return invariantNetwork(t, topology, 1).RecoverContext(context.Background(), alg, opts)
					},
				}
				// Recover takes no options; OPT without a node budget can be
				// slow, so only the cheap algorithms exercise it.
				if alg != OPT {
					legacy["Recover"] = func() (*Plan, error) {
						return invariantNetwork(t, topology, 1).Recover(alg)
					}
				}
				for name, call := range legacy {
					got, err := call()
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if gotFP := fingerprint(got); gotFP != wantFP {
						t.Errorf("%s diverges from Planner:\nlegacy:\n%s\nplanner:\n%s", name, gotFP, wantFP)
					}
				}
			})
		}
	}
}

// TestScheduleShimMatchesWithSchedule checks that the deprecated
// Plan.ScheduleProgressively produces the identical timeline to a Planner
// configured with WithSchedule.
func TestScheduleShimMatchesWithSchedule(t *testing.T) {
	for _, topology := range []string{"bell-canada", "grid", "erdos-renyi"} {
		t.Run(topology, func(t *testing.T) {
			const budget = 5.0
			planner := NewPlanner(WithAlgorithm(ISP), WithSchedule(budget))
			plan, err := planner.Plan(context.Background(), invariantNetwork(t, topology, 1).Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			want := stageFingerprint(plan.Stages())
			if _, _, total := plan.Repairs(); total > 0 && want == "" {
				t.Fatal("WithSchedule produced an empty timeline for a plan with repairs")
			}

			legacyPlan, err := invariantNetwork(t, topology, 1).Recover(ISP)
			if err != nil {
				t.Fatal(err)
			}
			stages, err := legacyPlan.ScheduleProgressively(budget)
			if err != nil {
				t.Fatal(err)
			}
			if got := stageFingerprint(stages); got != want {
				t.Errorf("ScheduleProgressively diverges:\nlegacy:\n%s\nplanner:\n%s", got, want)
			}
		})
	}
}

// TestConcurrentLegacyRecoverAndMutation is the race-detector regression
// test for the satellite fix: Recover used to alias the live broken maps
// into the solver's scenario, so concurrent Recover + BreakNode was a data
// race. The shim now snapshots under the network lock; run with -race to
// make this meaningful.
func TestConcurrentLegacyRecoverAndMutation(t *testing.T) {
	net, err := Grid(4, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddDemandByID(0, 15, 10); err != nil {
		t.Fatal(err)
	}
	net.ApplyCompleteDestruction()

	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := net.Recover(SRT); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			net.BreakNode(i % 16)
			net.BreakLink(i % 24)
			net.ApplyRandomDisruption(0.1, 0.1, int64(i))
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLegacyShimResolvesCustomSolver checks that the deprecated entry
// points construct registry-added solvers exactly like the Planner does.
func TestLegacyShimResolvesCustomSolver(t *testing.T) {
	build := func() *Network {
		net, err := Grid(3, 3, 20)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddDemandByID(0, 8, 10); err != nil {
			t.Fatal(err)
		}
		net.ApplyCompleteDestruction()
		return net
	}
	const name = "TEST-ALL" // registered by planner_test.go
	want, err := NewPlanner(WithAlgorithm(Algorithm(name))).Plan(context.Background(), build().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	got, err := build().RecoverContext(context.Background(), Algorithm(name), RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(got) != fingerprint(want) {
		t.Errorf("legacy shim diverges for the custom solver:\nlegacy:\n%s\nplanner:\n%s", fingerprint(got), fingerprint(want))
	}
}

// TestGeographicEpicenterAtOrigin is the regression test for the
// auto-barycentre fix: an explicit epicentre at (0, 0) must be expressible
// through the Epicenter field, while the legacy zero-value coordinates keep
// meaning "auto" for backward compatibility.
func TestGeographicEpicenterAtOrigin(t *testing.T) {
	build := func() *Network {
		net := New()
		// A small cluster at the origin and a larger one far away, so the
		// barycentre is near the far cluster and an origin epicentre behaves
		// observably differently from the auto barycentre.
		net.AddNode("o1", 0, 0, 1)
		net.AddNode("o2", 1, 0, 1)
		net.AddNode("o3", 0, 1, 1)
		net.AddNode("f1", 99, 100, 1)
		net.AddNode("f2", 100, 99, 1)
		net.AddNode("f3", 100, 100, 1)
		net.AddNode("f4", 101, 100, 1)
		net.AddNode("f5", 100, 101, 1)
		return net
	}

	cfg := DisruptionConfig{Variance: 4, Seed: 3}

	// Legacy semantics: zero coordinates mean "auto barycentre", which is
	// near the far cluster — nothing near the origin breaks, and with this
	// small variance nothing at all breaks (every node is ~50 units away).
	auto := build().ApplyGeographicDisruption(cfg)
	if auto.BrokenNodes != 0 {
		t.Fatalf("auto-epicentre broke %d nodes, want 0 (barycentre far from every node)", auto.BrokenNodes)
	}

	// New semantics: Epicenter pins the centre, including the origin. The
	// node exactly at (0, 0) has failure probability 1, so at least it must
	// break, and the far cluster must stay intact.
	cfg.Epicenter = &Epicenter{X: 0, Y: 0}
	net := build()
	origin := net.ApplyGeographicDisruption(cfg)
	if origin.BrokenNodes == 0 {
		t.Fatal("origin epicentre broke nothing; (0,0) must be expressible")
	}
	for _, id := range net.Snapshot().BrokenNodeIDs() {
		if id > 2 {
			t.Errorf("node %d of the far cluster broke under an origin epicentre", id)
		}
	}

	// Explicit non-zero epicentres keep working through the legacy fields.
	far := build().ApplyGeographicDisruption(DisruptionConfig{Variance: 4, Seed: 3, EpicenterX: 100, EpicenterY: 100})
	if far.BrokenNodes == 0 {
		t.Error("legacy explicit epicentre at the far cluster broke nothing")
	}
}
