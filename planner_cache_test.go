package netrecovery_test

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"netrecovery"
)

// cacheTestNetwork builds a small disrupted network for the cache tests.
func cacheTestNetwork(t *testing.T) *netrecovery.Network {
	t.Helper()
	net, err := netrecovery.Grid(3, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddDemandByID(0, 8, 5); err != nil {
		t.Fatal(err)
	}
	net.ApplyRandomDisruption(0.5, 0.5, 7)
	return net
}

func TestScenarioFingerprintFacade(t *testing.T) {
	net := cacheTestNetwork(t)
	sc := net.Snapshot()
	fp := sc.Fingerprint()
	if len(fp) != 64 {
		t.Fatalf("Fingerprint() = %q, want 64 hex chars", fp)
	}
	if again := net.Snapshot().Fingerprint(); again != fp {
		t.Fatalf("two snapshots of the same state fingerprint differently: %s vs %s", fp, again)
	}
	net.BreakNode(4)
	if mutated := net.Snapshot().Fingerprint(); mutated == fp {
		t.Fatal("breaking a node did not change the fingerprint")
	}
	// The original snapshot is immutable: its fingerprint must not move.
	if after := sc.Fingerprint(); after != fp {
		t.Fatalf("snapshot fingerprint moved after source mutation: %s vs %s", fp, after)
	}
}

// TestWithCacheDeduplicates: the second Plan call for a content-identical
// snapshot is answered from the cache — identical plan, one solve.
func TestWithCacheDeduplicates(t *testing.T) {
	var solves atomic.Int32
	netrecovery.RegisterSolver("cache-count-test", func(cfg netrecovery.SolverConfig) netrecovery.Solver {
		return countingSolver{name: "cache-count-test", solves: &solves}
	})
	cache := netrecovery.NewPlanCache(netrecovery.PlanCacheConfig{})
	planner := netrecovery.NewPlanner(
		netrecovery.WithAlgorithm("cache-count-test"),
		netrecovery.WithCache(cache),
	)
	net := cacheTestNetwork(t)

	p1, err := planner.Plan(context.Background(), net.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// A fresh snapshot of the same state: different pointer, same content.
	p2, err := planner.Plan(context.Background(), net.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got := solves.Load(); got != 1 {
		t.Fatalf("solver ran %d times, want 1 (cache hit)", got)
	}
	if !reflect.DeepEqual(p1.RepairedNodes(), p2.RepairedNodes()) ||
		!reflect.DeepEqual(p1.RepairedLinks(), p2.RepairedLinks()) {
		t.Fatal("cached plan differs from cold plan")
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}

	// Mutating the network changes the fingerprint: next Plan solves again.
	net.BreakLink(0)
	if _, err := planner.Plan(context.Background(), net.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := solves.Load(); got != 2 {
		t.Fatalf("mutated scenario did not re-solve: %d solves", got)
	}
}

// TestWithCacheConcurrentCoalescing: concurrent Plan calls for the same
// content trigger one solve under -race.
func TestWithCacheConcurrentCoalescing(t *testing.T) {
	var solves atomic.Int32
	release := make(chan struct{})
	netrecovery.RegisterSolver("cache-gate-test", func(cfg netrecovery.SolverConfig) netrecovery.Solver {
		return countingSolver{name: "cache-gate-test", solves: &solves, block: release}
	})
	cache := netrecovery.NewPlanCache(netrecovery.PlanCacheConfig{})
	planner := netrecovery.NewPlanner(
		netrecovery.WithAlgorithm("cache-gate-test"),
		netrecovery.WithCache(cache),
	)
	sc := cacheTestNetwork(t).Snapshot()

	const K = 8
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = planner.Plan(context.Background(), sc)
		}(i)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := solves.Load(); got != 1 {
		t.Fatalf("%d concurrent Plan calls ran %d solves, want 1", K, got)
	}
	st := cache.Stats()
	if st.Hits+st.Misses+st.Coalesced != K {
		t.Fatalf("stats %+v do not add up to %d calls", st, K)
	}
}

// TestWithCacheKeysOnOptions: the same scenario planned with different
// answer-relevant options does not share cache entries, while different
// parallelism does.
func TestWithCacheKeysOnOptions(t *testing.T) {
	var solves atomic.Int32
	netrecovery.RegisterSolver("cache-opts-test", func(cfg netrecovery.SolverConfig) netrecovery.Solver {
		return countingSolver{name: "cache-opts-test", solves: &solves}
	})
	cache := netrecovery.NewPlanCache(netrecovery.PlanCacheConfig{})
	sc := cacheTestNetwork(t).Snapshot()
	plan := func(opts ...netrecovery.PlannerOption) {
		t.Helper()
		opts = append([]netrecovery.PlannerOption{
			netrecovery.WithAlgorithm("cache-opts-test"),
			netrecovery.WithCache(cache),
		}, opts...)
		if _, err := netrecovery.NewPlanner(opts...).Plan(context.Background(), sc); err != nil {
			t.Fatal(err)
		}
	}
	plan()
	plan(netrecovery.WithFastISP()) // different options digest: new solve
	if got := solves.Load(); got != 2 {
		t.Fatalf("fast-mode plan did not key separately: %d solves, want 2", got)
	}
	plan(netrecovery.WithParallelism(4)) // parallelism is answer-invariant: hit
	if got := solves.Load(); got != 2 {
		t.Fatalf("parallelism keyed the cache: %d solves, want 2", got)
	}
}

// countingSolver counts Solve calls, optionally blocking until released,
// and repairs everything.
type countingSolver struct {
	name   string
	solves *atomic.Int32
	block  chan struct{}
}

func (s countingSolver) Name() string { return s.name }

func (s countingSolver) Solve(ctx context.Context, sc *netrecovery.Scenario) (*netrecovery.PlanSpec, error) {
	s.solves.Add(1)
	if s.block != nil {
		select {
		case <-s.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &netrecovery.PlanSpec{
		RepairedNodes:   sc.BrokenNodeIDs(),
		RepairedLinks:   sc.BrokenLinkIDs(),
		SatisfiedDemand: sc.TotalDemand(),
	}, nil
}
