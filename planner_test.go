package netrecovery_test

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"netrecovery"
)

// testSolver is a custom algorithm registered through the public registry.
// It repairs every broken element (so it is valid on any scenario the other
// facade tests throw at the shared registry) and records the SolverConfig it
// was constructed with, proving the Planner's options are threaded through
// the registry factory rather than a special-case switch.
type testSolver struct {
	cfg netrecovery.SolverConfig
}

func (s *testSolver) Name() string { return testSolverName }

func (s *testSolver) Solve(ctx context.Context, sc *netrecovery.Scenario) (*netrecovery.PlanSpec, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	testSolverMu.Lock()
	testSolverLastCfg = s.cfg
	testSolverMu.Unlock()
	if s.cfg.Progress != nil {
		s.cfg.Progress(netrecovery.ProgressEvent{Solver: testSolverName, Kind: netrecovery.EventIteration})
	}
	return &netrecovery.PlanSpec{
		RepairedNodes: sc.BrokenNodeIDs(),
		RepairedLinks: sc.BrokenLinkIDs(),
	}, nil
}

const testSolverName = "TEST-ALL"

var (
	testSolverMu      sync.Mutex
	testSolverLastCfg netrecovery.SolverConfig
)

func init() {
	netrecovery.RegisterSolverWithInfo(netrecovery.SolverInfo{
		Name:        testSolverName,
		Description: "test solver repairing every broken element",
		Scalability: "any size",
	}, func(cfg netrecovery.SolverConfig) netrecovery.Solver {
		return &testSolver{cfg: cfg}
	})
}

// destroyedGrid returns a snapshot of a fully destroyed 3x3 grid with one
// corner-to-corner demand.
func destroyedGrid(t *testing.T) *netrecovery.Scenario {
	t.Helper()
	net, err := netrecovery.Grid(3, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddDemandByID(0, 8, 10); err != nil {
		t.Fatal(err)
	}
	net.ApplyCompleteDestruction()
	return net.Snapshot()
}

func TestPlannerDefaultsToISP(t *testing.T) {
	plan, err := netrecovery.NewPlanner().Plan(context.Background(), destroyedGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm() != string(netrecovery.ISP) {
		t.Errorf("default algorithm = %q, want ISP", plan.Algorithm())
	}
	if err := plan.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
	if plan.SatisfiedDemandRatio() < 1-1e-9 {
		t.Errorf("satisfied = %f, want 1", plan.SatisfiedDemandRatio())
	}
	if plan.Stages() != nil {
		t.Errorf("Stages = %v without WithSchedule, want nil", plan.Stages())
	}
}

func TestPlannerRejectsUnknownAlgorithmAndNilScenario(t *testing.T) {
	if _, err := netrecovery.NewPlanner(netrecovery.WithAlgorithm("bogus")).Plan(context.Background(), destroyedGrid(t)); err == nil {
		t.Error("expected error for unknown algorithm")
	}
	if _, err := netrecovery.NewPlanner().Plan(context.Background(), nil); err == nil {
		t.Error("expected error for nil scenario")
	}
}

func TestPlannerHonoursContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := netrecovery.NewPlanner().Plan(ctx, destroyedGrid(t)); err == nil {
		t.Error("expected error from a cancelled context")
	}
}

// TestPlannerWithParallelismPlansAreIdentical pins the facade-level
// determinism guarantee: WithParallelism is a latency knob, not a quality
// knob — OPT plans are identical for every worker count, and the option is
// threaded through to custom solvers as SolverConfig.Workers.
func TestPlannerWithParallelismPlansAreIdentical(t *testing.T) {
	sc := destroyedGrid(t)
	type fp struct {
		nodes, links []int
		cost         float64
		optimal      bool
	}
	solve := func(workers int) fp {
		planner := netrecovery.NewPlanner(
			netrecovery.WithAlgorithm(netrecovery.OPT),
			netrecovery.WithOPTBudget(time.Minute, 20000),
			netrecovery.WithParallelism(workers),
		)
		plan, err := planner.Plan(context.Background(), sc)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if err := plan.Verify(); err != nil {
			t.Fatalf("workers %d: verify: %v", workers, err)
		}
		return fp{plan.RepairedNodes(), plan.RepairedLinks(), plan.Cost(), plan.Optimal()}
	}
	ref := solve(1)
	for _, workers := range []int{2, 4} {
		got := solve(workers)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers %d: plan diverged\n got %+v\nwant %+v", workers, got, ref)
		}
	}

	// Custom solvers receive the worker budget through SolverConfig.
	planner := netrecovery.NewPlanner(
		netrecovery.WithAlgorithm(testSolverName),
		netrecovery.WithParallelism(3),
	)
	if _, err := planner.Plan(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	testSolverMu.Lock()
	got := testSolverLastCfg.Workers
	testSolverMu.Unlock()
	if got != 3 {
		t.Errorf("custom solver saw Workers = %d, want 3", got)
	}
}

func TestPlannerWithScheduleComputesStages(t *testing.T) {
	planner := netrecovery.NewPlanner(
		netrecovery.WithAlgorithm(netrecovery.ISP),
		netrecovery.WithSchedule(3),
	)
	plan, err := planner.Plan(context.Background(), destroyedGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	stages := plan.Stages()
	if len(stages) == 0 {
		t.Fatal("WithSchedule produced no stages")
	}
	scheduled := 0
	for _, stage := range stages {
		if stage.Cost > 3+1e-9 {
			t.Errorf("stage %d cost %f exceeds budget", stage.Index, stage.Cost)
		}
		scheduled += len(stage.RepairedNodes) + len(stage.RepairedLinks)
	}
	_, _, total := plan.Repairs()
	if scheduled != total {
		t.Errorf("scheduled %d elements, plan has %d", scheduled, total)
	}
	if final := stages[len(stages)-1].SatisfiedDemandRatio; final < 1-1e-9 {
		t.Errorf("final stage ratio = %f, want 1", final)
	}

	// Mutating the returned slice must not affect the plan.
	stages[0].Cost = -1
	if plan.Stages()[0].Cost == -1 {
		t.Error("Stages() aliases the plan's internal timeline")
	}

	// A non-positive budget is a configuration error, matching the legacy
	// ScheduleProgressively validation.
	bad := netrecovery.NewPlanner(netrecovery.WithAlgorithm(netrecovery.ISP), netrecovery.WithSchedule(0))
	if _, err := bad.Plan(context.Background(), destroyedGrid(t)); err == nil {
		t.Error("WithSchedule(0) must surface the stage-budget validation error")
	}
}

func TestPlannerStreamsISPProgress(t *testing.T) {
	var mu sync.Mutex
	var events []netrecovery.ProgressEvent
	planner := netrecovery.NewPlanner(
		netrecovery.WithAlgorithm(netrecovery.ISP),
		netrecovery.WithProgress(func(ev netrecovery.ProgressEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}),
	)
	if _, err := planner.Plan(context.Background(), destroyedGrid(t)); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events streamed")
	}
	for i, ev := range events {
		if ev.Solver != "ISP" || ev.Kind != netrecovery.EventIteration {
			t.Fatalf("event %d = %+v, want ISP iteration", i, ev)
		}
		if ev.Iteration != i {
			t.Errorf("event %d carries iteration %d", i, ev.Iteration)
		}
	}
}

func TestPlannerStreamsOPTProgress(t *testing.T) {
	var events []netrecovery.ProgressEvent
	planner := netrecovery.NewPlanner(
		netrecovery.WithAlgorithm(netrecovery.OPT),
		netrecovery.WithOPTBudget(30*time.Second, 4000),
		netrecovery.WithProgress(func(ev netrecovery.ProgressEvent) { events = append(events, ev) }),
	)
	plan, err := planner.Plan(context.Background(), destroyedGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Optimal() {
		t.Fatalf("OPT did not close the gap on a 3x3 grid: %s", plan.Summary())
	}
	for _, ev := range events {
		if ev.Solver != "OPT" {
			t.Fatalf("unexpected event %+v", ev)
		}
		if ev.Kind != netrecovery.EventIncumbent && ev.Kind != netrecovery.EventBound {
			t.Fatalf("unexpected OPT event kind %q", ev.Kind)
		}
		if ev.Kind == netrecovery.EventIncumbent && math.IsInf(ev.Incumbent, 0) {
			t.Errorf("incumbent event with infinite objective: %+v", ev)
		}
	}
}

// TestCustomSolverThroughRegistry is the acceptance test for the public
// registry: a test-registered solver must be constructible everywhere an
// algorithm name is accepted — Planner, the legacy shims and the sweep
// engine — and must receive the Planner's options through its factory.
func TestCustomSolverThroughRegistry(t *testing.T) {
	found := false
	for _, info := range netrecovery.Solvers() {
		if info.Name == testSolverName {
			found = true
			if info.Description != "test solver repairing every broken element" || info.Scalability != "any size" {
				t.Errorf("custom solver metadata not honoured: %+v", info)
			}
		}
	}
	if !found {
		t.Fatalf("Solvers() does not list %s", testSolverName)
	}

	sc := destroyedGrid(t)
	var progressed bool
	planner := netrecovery.NewPlanner(
		netrecovery.WithAlgorithm(netrecovery.Algorithm(testSolverName)),
		netrecovery.WithFastISP(),
		netrecovery.WithOPTBudget(7*time.Second, 42),
		netrecovery.WithProgress(func(netrecovery.ProgressEvent) { progressed = true }),
	)
	plan, err := planner.Plan(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm() != testSolverName {
		t.Errorf("plan algorithm = %q", plan.Algorithm())
	}
	if err := plan.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
	broken := sc.Broken()
	if nodes, links, _ := plan.Repairs(); nodes != broken.BrokenNodes || links != broken.BrokenEdges {
		t.Errorf("repairs = (%d, %d), want everything (%d, %d)", nodes, links, broken.BrokenNodes, broken.BrokenEdges)
	}
	testSolverMu.Lock()
	cfg := testSolverLastCfg
	testSolverMu.Unlock()
	if !cfg.Fast || cfg.OPTTimeLimit != 7*time.Second || cfg.OPTMaxNodes != 42 || cfg.Progress == nil {
		t.Errorf("factory config = %+v, want the Planner options threaded through", cfg)
	}
	if !progressed {
		t.Error("custom solver's progress events did not reach the Planner callback")
	}

	// The sweep engine constructs it through the same registry too (the
	// legacy-shim path is covered by shim_test.go).
	report, err := netrecovery.Sweep(context.Background(), netrecovery.SweepSpec{
		Name:        "custom",
		Topologies:  []netrecovery.SweepTopology{{Kind: netrecovery.SweepTopoGrid, Rows: 3, Cols: 3}},
		Disruptions: []netrecovery.SweepDisruption{{Kind: netrecovery.SweepDisruptComplete}},
		Demands:     []netrecovery.SweepDemand{{Pairs: 1, FlowPerPair: 5}},
		Algorithms:  []string{testSolverName},
		Seeds:       netrecovery.SweepSeeds(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failures != 0 {
		t.Fatalf("sweep with custom solver had %d failures", report.Failures)
	}
}

func TestSolversMetadata(t *testing.T) {
	infos := netrecovery.Solvers()
	if len(infos) < 6 {
		t.Fatalf("Solvers() = %d entries, want at least the six built-ins", len(infos))
	}
	exact := 0
	for _, info := range infos {
		if info.Name == "" || info.Description == "" || info.Scalability == "" {
			t.Errorf("incomplete metadata: %+v", info)
		}
		if info.Exact {
			exact++
		}
	}
	if exact == 0 {
		t.Error("no solver marked exact; OPT should be")
	}
	if len(infos) != len(netrecovery.Algorithms()) {
		t.Errorf("Solvers() has %d entries, Algorithms() %d", len(infos), len(netrecovery.Algorithms()))
	}
}

func TestScenarioSnapshotIsDetached(t *testing.T) {
	net, err := netrecovery.Grid(3, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddDemandByID(0, 8, 10); err != nil {
		t.Fatal(err)
	}
	net.BreakNode(4)
	sc := net.Snapshot()
	if got := sc.Broken(); got.BrokenNodes != 1 {
		t.Fatalf("snapshot broken = %+v", got)
	}

	// Mutating the network after the snapshot must not leak into it.
	net.BreakNode(1)
	net.BreakLink(0)
	if err := net.AddDemandByID(2, 6, 5); err != nil {
		t.Fatal(err)
	}
	if got := sc.Broken(); got.BrokenNodes != 1 || got.BrokenEdges != 0 {
		t.Errorf("snapshot changed after network mutation: %+v", got)
	}
	if sc.TotalDemand() != 10 {
		t.Errorf("snapshot demand = %f, want 10", sc.TotalDemand())
	}
	if got := net.Broken(); got.BrokenNodes != 2 || got.BrokenEdges != 1 {
		t.Errorf("network broken = %+v", got)
	}
	if ids := sc.BrokenNodeIDs(); len(ids) != 1 || ids[0] != 4 {
		t.Errorf("BrokenNodeIDs = %v, want [4]", ids)
	}
}
