package netrecovery_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"netrecovery"
)

// induceDegradeFailure toggles failingDegradeSolver. Registration is
// global and permanent, so other tests that enumerate Algorithms() (the
// shared-scenario race test, the cross-algorithm invariants) would solve
// with it too; outside the degrade tests it answers a valid empty plan.
var induceDegradeFailure atomic.Bool

func forceDegradeFailure(t *testing.T) {
	t.Helper()
	induceDegradeFailure.Store(true)
	t.Cleanup(func() { induceDegradeFailure.Store(false) })
}

// failingDegradeSolver errors while induceDegradeFailure is set, forcing
// the WithDeadline chain past its primary stage.
type failingDegradeSolver struct{}

func (failingDegradeSolver) Name() string { return "degrade-fail-test" }

func (failingDegradeSolver) Solve(ctx context.Context, sc *netrecovery.Scenario) (*netrecovery.PlanSpec, error) {
	if induceDegradeFailure.Load() {
		return nil, errors.New("degrade-fail-test: induced failure")
	}
	return &netrecovery.PlanSpec{}, nil
}

// TestWithDeadlineFallsBackToISP: when the requested algorithm fails under
// a deadline, Plan still answers — served by the fast-ISP fallback stage —
// and Degradation reports how the budget was spent.
func TestWithDeadlineFallsBackToISP(t *testing.T) {
	forceDegradeFailure(t)
	netrecovery.RegisterSolver("degrade-fail-test", func(cfg netrecovery.SolverConfig) netrecovery.Solver {
		return failingDegradeSolver{}
	})
	planner := netrecovery.NewPlanner(
		netrecovery.WithAlgorithm("degrade-fail-test"),
		netrecovery.WithDeadline(2*time.Second),
	)
	net := cacheTestNetwork(t)
	plan, err := planner.Plan(context.Background(), net.Snapshot())
	if err != nil {
		t.Fatalf("Plan under deadline: %v", err)
	}
	deg := plan.Degradation()
	if deg == nil {
		t.Fatal("Degradation() = nil for a deadline Planner")
	}
	if deg.Level != "fallback" || deg.ServedBy != "fallback_isp" {
		t.Fatalf("degradation = %+v, want fallback via fallback_isp", deg)
	}
	if len(deg.Stages) < 2 || deg.Stages[0].Stage != "primary" || deg.Stages[0].Outcome != "error" {
		t.Fatalf("stages = %+v", deg.Stages)
	}
	if deg.Stages[0].Err == "" {
		t.Fatal("failed primary stage must carry its error")
	}
	if plan.SatisfiedDemandRatio() <= 0 {
		t.Fatalf("fallback plan satisfies no demand: %+v", plan)
	}
}

// TestWithDeadlinePrimaryServes: a healthy primary stage answers with
// Level "none", and a Planner without a deadline reports no degradation.
func TestWithDeadlinePrimaryServes(t *testing.T) {
	net := cacheTestNetwork(t)

	withDeadline := netrecovery.NewPlanner(
		netrecovery.WithFastISP(),
		netrecovery.WithDeadline(5*time.Second),
	)
	plan, err := withDeadline.Plan(context.Background(), net.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	deg := plan.Degradation()
	if deg == nil || deg.Level != "none" || deg.ServedBy != "primary" {
		t.Fatalf("degradation = %+v, want primary/none", deg)
	}

	plain, err := netrecovery.NewPlanner(netrecovery.WithFastISP()).Plan(context.Background(), net.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Degradation() != nil {
		t.Fatalf("no-deadline Planner reported degradation: %+v", plain.Degradation())
	}
}

// TestWithDeadlineStaleCacheServes: when every solver stage fails, a
// previously cached (even expired) plan for the same scenario is served at
// the stale level.
func TestWithDeadlineStaleCacheServes(t *testing.T) {
	cache := netrecovery.NewPlanCache(netrecovery.PlanCacheConfig{TTL: time.Nanosecond})
	net := cacheTestNetwork(t)

	// Seed the cache through the fallback configuration (fast ISP), then
	// let the entry expire.
	seed := netrecovery.NewPlanner(netrecovery.WithFastISP(), netrecovery.WithCache(cache))
	if _, err := seed.Plan(context.Background(), net.Snapshot()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)

	forceDegradeFailure(t)
	netrecovery.RegisterSolver("degrade-stale-test", func(cfg netrecovery.SolverConfig) netrecovery.Solver {
		return failingDegradeSolver{}
	})
	// A 1ns deadline times out both solver stages before they can answer;
	// the stale-cache stage is Free, so it still runs and serves the
	// expired fallback-key entry seeded above.
	planner := netrecovery.NewPlanner(
		netrecovery.WithAlgorithm("degrade-stale-test"),
		netrecovery.WithFastISP(),
		netrecovery.WithCache(cache),
		netrecovery.WithDeadline(time.Nanosecond),
	)
	plan, err := planner.Plan(context.Background(), net.Snapshot())
	if err != nil {
		t.Fatalf("stale chain: %v", err)
	}
	deg := plan.Degradation()
	if deg == nil || deg.Level != "stale" || deg.ServedBy != "stale_cache" {
		t.Fatalf("degradation = %+v, want stale via stale_cache", deg)
	}
}
