package netrecovery_test

import (
	"context"
	"fmt"

	"netrecovery"
)

// ExamplePlanner restores a single mission-critical flow on a fully
// destroyed grid: the Network builds the state, Snapshot freezes it into an
// immutable Scenario, and a Planner configured with functional options
// solves it — streaming progress events and computing a progressive repair
// timeline along the way.
func ExamplePlanner() {
	net, err := netrecovery.Grid(3, 3, 20)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := net.AddDemandByID(0, 8, 10); err != nil {
		fmt.Println("error:", err)
		return
	}
	net.ApplyCompleteDestruction()

	iterations := 0
	planner := netrecovery.NewPlanner(
		netrecovery.WithAlgorithm(netrecovery.ISP),
		netrecovery.WithProgress(func(ev netrecovery.ProgressEvent) {
			if ev.Kind == netrecovery.EventIteration {
				iterations++
			}
		}),
		netrecovery.WithSchedule(3),
	)
	plan, err := planner.Plan(context.Background(), net.Snapshot())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	nodes, links, total := plan.Repairs()
	fmt.Printf("repairs: %d nodes + %d links = %d elements\n", nodes, links, total)
	fmt.Printf("demand served: %.0f%%\n", 100*plan.SatisfiedDemandRatio())
	fmt.Printf("progress streamed: %v\n", iterations > 0)
	fmt.Printf("stages under budget 3: %d\n", len(plan.Stages()))
	// Output:
	// repairs: 5 nodes + 4 links = 9 elements
	// demand served: 100%
	// progress streamed: true
	// stages under budget 3: 3
}

// ExampleNetwork_Snapshot shows that a snapshot is detached from its source
// network: the network keeps mutating (and could be solved concurrently)
// while the scenario stays frozen.
func ExampleNetwork_Snapshot() {
	net, err := netrecovery.Grid(3, 3, 20)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	net.BreakNode(4)
	scenario := net.Snapshot()
	net.BreakNode(0) // after the snapshot: the scenario does not see it
	fmt.Printf("network: %d broken, scenario: %d broken\n",
		net.Broken().BrokenNodes, scenario.Broken().BrokenNodes)
	// Output:
	// network: 2 broken, scenario: 1 broken
}

// ExampleNetwork_AddDemand shows the named-node API on the built-in
// Bell-Canada topology.
func ExampleNetwork_AddDemand() {
	net := netrecovery.BellCanada()
	if err := net.AddDemand("Victoria", "Halifax", 10); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d nodes, %d links, %.0f units of demand\n",
		net.NumNodes(), net.NumLinks(), net.TotalDemand())
	// Output:
	// 48 nodes, 64 links, 10 units of demand
}

// ExampleSolvers lists the registered algorithms with their metadata; custom
// algorithms added through RegisterSolver appear here too.
func ExampleSolvers() {
	for _, info := range netrecovery.Solvers()[:2] {
		kind := "heuristic"
		if info.Exact {
			kind = "exact"
		}
		fmt.Printf("%s (%s)\n", info.Name, kind)
	}
	// Output:
	// ISP (heuristic)
	// OPT (exact)
}

// ExampleSweep runs a small declarative scenario sweep — a grid of
// (topology × disruption × algorithm × seed) recovery experiments — on the
// concurrent worker pool and prints the aggregated outcome. Results are
// deterministic for fixed seeds regardless of the worker count.
func ExampleSweep() {
	spec := netrecovery.SweepSpec{
		Name:        "demo",
		Topologies:  []netrecovery.SweepTopology{{Kind: netrecovery.SweepTopoGrid, Rows: 3, Cols: 3}},
		Disruptions: []netrecovery.SweepDisruption{{Kind: netrecovery.SweepDisruptComplete}},
		Demands:     []netrecovery.SweepDemand{{Pairs: 1, FlowPerPair: 5}},
		Algorithms:  []string{"ISP", "ALL"},
		Seeds:       netrecovery.SweepSeeds(1, 3),
		Workers:     4,
	}
	report, err := netrecovery.Sweep(context.Background(), spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("jobs: %d, failures: %d\n", report.Jobs, report.Failures)
	for _, g := range report.Groups {
		fmt.Printf("%s on %s: mean repairs %.1f, mean satisfied %.0f%%\n",
			g.Algorithm, g.Topology, g.Repairs.Mean, 100*g.SatisfiedRatio.Mean)
	}
	// Output:
	// jobs: 6, failures: 0
	// ISP on grid-3x3: mean repairs 5.7, mean satisfied 100%
	// ALL on grid-3x3: mean repairs 21.0, mean satisfied 100%
}
