package netrecovery_test

import (
	"context"
	"fmt"

	"netrecovery"
)

// ExampleNetwork_Recover restores a single mission-critical flow on a fully
// destroyed grid and prints the size of the repair plan.
func ExampleNetwork_Recover() {
	net, err := netrecovery.Grid(3, 3, 20)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := net.AddDemandByID(0, 8, 10); err != nil {
		fmt.Println("error:", err)
		return
	}
	net.ApplyCompleteDestruction()

	plan, err := net.Recover(netrecovery.ISP)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	nodes, links, total := plan.Repairs()
	fmt.Printf("repairs: %d nodes + %d links = %d elements\n", nodes, links, total)
	fmt.Printf("demand served: %.0f%%\n", 100*plan.SatisfiedDemandRatio())
	// Output:
	// repairs: 5 nodes + 4 links = 9 elements
	// demand served: 100%
}

// ExampleNetwork_AddDemand shows the named-node API on the built-in
// Bell-Canada topology.
func ExampleNetwork_AddDemand() {
	net := netrecovery.BellCanada()
	if err := net.AddDemand("Victoria", "Halifax", 10); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d nodes, %d links, %.0f units of demand\n",
		net.NumNodes(), net.NumLinks(), net.TotalDemand())
	// Output:
	// 48 nodes, 64 links, 10 units of demand
}

// ExampleSweep runs a small declarative scenario sweep — a grid of
// (topology × disruption × algorithm × seed) recovery experiments — on the
// concurrent worker pool and prints the aggregated outcome. Results are
// deterministic for fixed seeds regardless of the worker count.
func ExampleSweep() {
	spec := netrecovery.SweepSpec{
		Name:        "demo",
		Topologies:  []netrecovery.SweepTopology{{Kind: netrecovery.SweepTopoGrid, Rows: 3, Cols: 3}},
		Disruptions: []netrecovery.SweepDisruption{{Kind: netrecovery.SweepDisruptComplete}},
		Demands:     []netrecovery.SweepDemand{{Pairs: 1, FlowPerPair: 5}},
		Algorithms:  []string{"ISP", "ALL"},
		Seeds:       netrecovery.SweepSeeds(1, 3),
		Workers:     4,
	}
	report, err := netrecovery.Sweep(context.Background(), spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("jobs: %d, failures: %d\n", report.Jobs, report.Failures)
	for _, g := range report.Groups {
		fmt.Printf("%s on %s: mean repairs %.1f, mean satisfied %.0f%%\n",
			g.Algorithm, g.Topology, g.Repairs.Mean, 100*g.SatisfiedRatio.Mean)
	}
	// Output:
	// jobs: 6, failures: 0
	// ISP on grid-3x3: mean repairs 5.7, mean satisfied 100%
	// ALL on grid-3x3: mean repairs 21.0, mean satisfied 100%
}

// ExamplePlan_ScheduleProgressively spreads a repair plan over stages with a
// limited per-stage budget and prints how the served demand ramps up.
func ExamplePlan_ScheduleProgressively() {
	net, err := netrecovery.Grid(3, 3, 20)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := net.AddDemandByID(0, 8, 10); err != nil {
		fmt.Println("error:", err)
		return
	}
	net.ApplyCompleteDestruction()
	plan, err := net.Recover(netrecovery.ISP)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	stages, err := plan.ScheduleProgressively(3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("stages: %d\n", len(stages))
	last := stages[len(stages)-1]
	fmt.Printf("served after the last stage: %.0f%%\n", 100*last.SatisfiedDemandRatio)
	// Output:
	// stages: 3
	// served after the last stage: 100%
}
