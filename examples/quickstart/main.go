// Quickstart: build a small grid network, destroy it completely, and ask ISP
// which nodes and links to repair so a single mission-critical flow can be
// restored.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"netrecovery"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 4x4 grid of routers with 20-unit links.
	net, err := netrecovery.Grid(4, 4, 20)
	if err != nil {
		return err
	}

	// One mission-critical flow of 15 units between opposite corners
	// (node 0 is the top-left corner, node 15 the bottom-right one).
	if err := net.AddDemandByID(0, 15, 15); err != nil {
		return err
	}

	// A disaster takes down the whole network.
	report := net.ApplyCompleteDestruction()
	fmt.Printf("disaster: %d nodes and %d links destroyed\n", report.BrokenNodes, report.BrokenEdges)

	// Freeze the state into an immutable scenario and ask ISP for the
	// cheapest set of repairs that restores the flow. The same snapshot can
	// be solved by any number of planners concurrently.
	ctx := context.Background()
	scenario := net.Snapshot()
	plan, err := netrecovery.NewPlanner(netrecovery.WithAlgorithm(netrecovery.ISP)).Plan(ctx, scenario)
	if err != nil {
		return err
	}
	if err := plan.Verify(); err != nil {
		return fmt.Errorf("plan failed verification: %w", err)
	}

	fmt.Println(plan.Summary())
	fmt.Println("nodes to repair:", plan.RepairedNodes())
	fmt.Println("links to repair:", plan.RepairedLinks())

	// Compare against repairing everything — on the very same snapshot.
	allPlan, err := netrecovery.NewPlanner(netrecovery.WithAlgorithm(netrecovery.All)).Plan(ctx, scenario)
	if err != nil {
		return err
	}
	_, _, ispTotal := plan.Repairs()
	_, _, allTotal := allPlan.Repairs()
	fmt.Printf("ISP repairs %d of the %d destroyed elements (%.0f%% saved)\n",
		ispTotal, allTotal, 100*(1-float64(ispTotal)/float64(allTotal)))
	return nil
}
