// Progressive-disaster study: sweep the variance of the geographic failure
// model on the Bell-Canada backbone (the x axis of Fig. 6) and report how
// many repairs ISP needs versus repairing everything, together with the
// demand served. This is the programmatic equivalent of
// `nrbench -figure 6`, expressed against the public API.
//
// Run with:
//
//	go run ./examples/progressive
package main

import (
	"context"
	"fmt"
	"log"

	"netrecovery"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	variances := []float64{10, 25, 50, 75, 100, 150}
	const runsPerPoint = 3

	// One Planner is reused for every scenario: planners are immutable and
	// safe for concurrent (and repeated) use.
	planner := netrecovery.NewPlanner(netrecovery.WithAlgorithm(netrecovery.ISP))

	fmt.Printf("%-10s %12s %12s %12s %12s\n", "variance", "broken", "ISP repairs", "ALL repairs", "served %")
	for _, variance := range variances {
		var brokenSum, ispSum, allSum, servedSum float64
		for run := 0; run < runsPerPoint; run++ {
			seed := int64(100*variance) + int64(run)
			net := netrecovery.BellCanada()
			if err := net.AddFarApartDemands(4, 10, seed); err != nil {
				return err
			}
			net.ApplyGeographicDisruption(netrecovery.DisruptionConfig{Variance: variance, Seed: seed})
			broken := net.Broken()

			plan, err := planner.Plan(context.Background(), net.Snapshot())
			if err != nil {
				return err
			}
			if err := plan.Verify(); err != nil {
				return fmt.Errorf("variance %.0f: %w", variance, err)
			}
			_, _, total := plan.Repairs()
			brokenSum += float64(broken.BrokenNodes + broken.BrokenEdges)
			ispSum += float64(total)
			allSum += float64(broken.BrokenNodes + broken.BrokenEdges)
			servedSum += 100 * plan.SatisfiedDemandRatio()
		}
		fmt.Printf("%-10.0f %12.1f %12.1f %12.1f %11.1f%%\n",
			variance,
			brokenSum/runsPerPoint,
			ispSum/runsPerPoint,
			allSum/runsPerPoint,
			servedSum/runsPerPoint)
	}
	fmt.Println("\nAs the disaster widens, ISP's repair count grows far more slowly than the")
	fmt.Println("number of destroyed elements: it only repairs what the critical flows need.")
	return nil
}
