// Disaster scenario on the Bell-Canada-like national backbone: a
// geographically-correlated failure (think hurricane or earthquake) knocks
// out the central part of the country, and four mission-critical flows
// between government sites on the two coasts must be restored.
//
// The example runs every recovery algorithm on the same disaster and prints
// a comparison, mirroring the paper's first evaluation scenario (§VII-A).
//
// Run with:
//
//	go run ./examples/disaster
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"netrecovery"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 2016

	net := netrecovery.BellCanada()
	// Mission-critical flows between far-apart cities.
	for _, d := range []struct {
		from, to string
		units    float64
	}{
		{"Victoria", "Halifax", 10},
		{"Vancouver", "Quebec", 10},
		{"Calgary", "Montreal", 10},
		{"Edmonton", "Ottawa", 10},
	} {
		if err := net.AddDemand(d.from, d.to, d.units); err != nil {
			return err
		}
	}
	// A wide geographically-correlated disaster centred on the middle of
	// the country.
	net.ApplyGeographicDisruption(netrecovery.DisruptionConfig{Variance: 60, Seed: seed})

	// One immutable snapshot serves every algorithm: scenarios are safe to
	// share, so there is no need to rebuild the network per solver.
	scenario := net.Snapshot()
	broken := scenario.Broken()
	fmt.Printf("disaster: %d nodes and %d links destroyed out of %d/%d\n\n",
		broken.BrokenNodes, broken.BrokenEdges, scenario.NumNodes(), scenario.NumLinks())

	fmt.Printf("%-10s %8s %8s %8s %12s %10s\n", "algorithm", "nodes", "links", "total", "satisfied", "runtime")
	for _, alg := range netrecovery.Algorithms() {
		planner := netrecovery.NewPlanner(
			netrecovery.WithAlgorithm(alg),
			netrecovery.WithOPTBudget(30*time.Second, 500),
		)
		plan, err := planner.Plan(context.Background(), scenario)
		if err != nil {
			return err
		}
		if err := plan.Verify(); err != nil {
			return fmt.Errorf("%s plan failed verification: %w", alg, err)
		}
		nodes, links, total := plan.Repairs()
		fmt.Printf("%-10s %8d %8d %8d %11.1f%% %10v\n",
			plan.Algorithm(), nodes, links, total, 100*plan.SatisfiedDemandRatio(), plan.Runtime().Round(time.Millisecond))
	}
	fmt.Println("\nISP restores every flow while repairing close to the optimal number of elements;")
	fmt.Println("SRT and GRD-COM may repair fewer but can leave part of the demand unserved.")
	return nil
}
