// Disaster scenario on the Bell-Canada-like national backbone: a
// geographically-correlated failure (think hurricane or earthquake) knocks
// out the central part of the country, and four mission-critical flows
// between government sites on the two coasts must be restored.
//
// The example runs every recovery algorithm on the same disaster and prints
// a comparison, mirroring the paper's first evaluation scenario (§VII-A).
//
// Run with:
//
//	go run ./examples/disaster
package main

import (
	"fmt"
	"log"
	"time"

	"netrecovery"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 2016

	// Build a fresh network per algorithm so each one sees the same initial
	// conditions (the disruption and demands are seeded deterministically).
	build := func() (*netrecovery.Network, error) {
		net := netrecovery.BellCanada()
		// Mission-critical flows between far-apart cities.
		for _, d := range []struct {
			from, to string
			units    float64
		}{
			{"Victoria", "Halifax", 10},
			{"Vancouver", "Quebec", 10},
			{"Calgary", "Montreal", 10},
			{"Edmonton", "Ottawa", 10},
		} {
			if err := net.AddDemand(d.from, d.to, d.units); err != nil {
				return nil, err
			}
		}
		// A wide geographically-correlated disaster centred on the middle of
		// the country.
		net.ApplyGeographicDisruption(netrecovery.DisruptionConfig{Variance: 60, Seed: seed})
		return net, nil
	}

	probe, err := build()
	if err != nil {
		return err
	}
	broken := probe.Broken()
	fmt.Printf("disaster: %d nodes and %d links destroyed out of %d/%d\n\n",
		broken.BrokenNodes, broken.BrokenEdges, probe.NumNodes(), probe.NumLinks())

	fmt.Printf("%-10s %8s %8s %8s %12s %10s\n", "algorithm", "nodes", "links", "total", "satisfied", "runtime")
	for _, alg := range netrecovery.Algorithms() {
		net, err := build()
		if err != nil {
			return err
		}
		plan, err := net.RecoverWithOptions(alg, netrecovery.RecoverOptions{
			OPTTimeLimit: 30 * time.Second,
			OPTMaxNodes:  500,
		})
		if err != nil {
			return err
		}
		if err := plan.Verify(); err != nil {
			return fmt.Errorf("%s plan failed verification: %w", alg, err)
		}
		nodes, links, total := plan.Repairs()
		fmt.Printf("%-10s %8d %8d %8d %11.1f%% %10v\n",
			plan.Algorithm(), nodes, links, total, 100*plan.SatisfiedDemandRatio(), plan.Runtime().Round(time.Millisecond))
	}
	fmt.Println("\nISP restores every flow while repairing close to the optimal number of elements;")
	fmt.Println("SRT and GRD-COM may repair fewer but can leave part of the demand unserved.")
	return nil
}
