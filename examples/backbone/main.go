// Backbone scenario: an 825-node ISP router-level topology (the scale of the
// paper's CAIDA AS28717 experiment, §VII-C) hit by a regional disaster. The
// example restores six 22-unit mission-critical flows with ISP in its fast
// (greedy-split) mode and contrasts the result with the shortest-path repair
// heuristic, which loses demand.
//
// Run with:
//
//	go run ./examples/backbone
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"netrecovery"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 28717

	net := netrecovery.CAIDALike(25, seed)
	if err := net.AddFarApartDemands(6, 22, seed); err != nil {
		return err
	}
	net.ApplyGeographicDisruption(netrecovery.DisruptionConfig{Variance: 400, Seed: seed})

	// A single immutable snapshot serves both algorithms.
	scenario := net.Snapshot()
	broken := scenario.Broken()
	fmt.Printf("backbone: %d routers, %d links; disaster broke %d routers and %d links\n\n",
		scenario.NumNodes(), scenario.NumLinks(), broken.BrokenNodes, broken.BrokenEdges)

	for _, alg := range []netrecovery.Algorithm{netrecovery.ISP, netrecovery.SRT} {
		planner := netrecovery.NewPlanner(
			netrecovery.WithAlgorithm(alg),
			netrecovery.WithFastISP(),
		)
		start := time.Now()
		plan, err := planner.Plan(context.Background(), scenario)
		if err != nil {
			return err
		}
		if err := plan.Verify(); err != nil {
			return fmt.Errorf("%s plan failed verification: %w", alg, err)
		}
		nodes, links, total := plan.Repairs()
		fmt.Printf("%-6s repaired %3d routers + %3d links (%3d total) serving %5.1f%% of demand in %v\n",
			plan.Algorithm(), nodes, links, total, 100*plan.SatisfiedDemandRatio(), time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("\nISP always serves the full demand. SRT repairs shortest paths per flow")
	fmt.Println("independently, so once those paths saturate (larger demand sets, unlucky")
	fmt.Println("overlaps) it leaves part of the demand stranded -- the effect measured in")
	fmt.Println("Fig. 9(b); regenerate it with: go test -bench BenchmarkFig9 or cmd/nrbench.")
	return nil
}
