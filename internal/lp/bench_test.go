package lp

import (
	"math/rand"
	"testing"
)

// benchTransportation builds an s x d transportation problem: minimise
// sum(cost_ij * x_ij) subject to per-supply <= rows and per-demand == rows.
// The structure is sparse (two nonzeros per column), mirroring the
// flow-conservation LPs of the recovery stack.
func benchTransportation(s, d int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := New(Minimize)
	for i := 0; i < s; i++ {
		for j := 0; j < d; j++ {
			p.AddVariable(1+rng.Float64()*9, "")
		}
	}
	supply := make([]float64, s)
	demandTotals := make([]float64, d)
	total := 0.0
	for j := 0; j < d; j++ {
		demandTotals[j] = 1 + rng.Float64()*9
		total += demandTotals[j]
	}
	for i := 0; i < s; i++ {
		supply[i] = total/float64(s) + rng.Float64()*3
	}
	for i := 0; i < s; i++ {
		terms := make([]Term, d)
		for j := 0; j < d; j++ {
			terms[j] = Term{Var: i*d + j, Coef: 1}
		}
		if err := p.AddConstraint(terms, LessEq, supply[i], ""); err != nil {
			panic(err)
		}
	}
	for j := 0; j < d; j++ {
		terms := make([]Term, s)
		for i := 0; i < s; i++ {
			terms[i] = Term{Var: i*d + j, Coef: 1}
		}
		if err := p.AddConstraint(terms, Equal, demandTotals[j], ""); err != nil {
			panic(err)
		}
	}
	return p
}

func benchSolve(b *testing.B, prob *Problem, opts Options) {
	b.Helper()
	b.ReportAllocs()
	solver := NewSolver()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol := solver.Solve(prob, opts)
		if sol.Status != StatusOptimal {
			b.Fatalf("status = %v", sol.Status)
		}
	}
}

// BenchmarkLP_SparseCold solves a 25x25 transportation LP from scratch with
// the sparse revised simplex.
func BenchmarkLP_SparseCold(b *testing.B) {
	benchSolve(b, benchTransportation(25, 25, 3), Options{})
}

// BenchmarkLP_DenseCold is the same LP on the legacy dense tableau.
func BenchmarkLP_DenseCold(b *testing.B) {
	benchSolve(b, benchTransportation(25, 25, 3), Options{Dense: true})
}

// BenchmarkLP_WarmResolve measures the warm-start path: re-solving after a
// small right-hand-side perturbation from the previous optimal basis, the
// shape of the ISP hot loop.
func BenchmarkLP_WarmResolve(b *testing.B) {
	prob := benchTransportation(25, 25, 3)
	solver := NewSolver()
	first := solver.Solve(prob, Options{})
	if first.Status != StatusOptimal {
		b.Fatalf("status = %v", first.Status)
	}
	rng := rand.New(rand.NewSource(9))
	basis := first.Basis
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := 25 + rng.Intn(25) // a demand row
		_ = prob.SetRHS(row, prob.rows[row].RHS*(0.95+0.1*rng.Float64()))
		sol := solver.Solve(prob, Options{WarmStart: basis})
		if sol.Status != StatusOptimal {
			b.Fatalf("status = %v", sol.Status)
		}
		basis = sol.Basis
	}
}

// BenchmarkLP_ColdResolve is the same perturbation loop without warm starts,
// quantifying what the basis reuse buys.
func BenchmarkLP_ColdResolve(b *testing.B) {
	prob := benchTransportation(25, 25, 3)
	solver := NewSolver()
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := 25 + rng.Intn(25)
		_ = prob.SetRHS(row, prob.rows[row].RHS*(0.95+0.1*rng.Float64()))
		sol := solver.Solve(prob, Options{})
		if sol.Status != StatusOptimal {
			b.Fatalf("status = %v", sol.Status)
		}
	}
}

// BenchmarkLP_BoundedKnapsack exercises the native bound handling: many
// bounded variables and a single coupling row, which the dense tableau had
// to expand into one synthetic constraint row per bound.
func BenchmarkLP_BoundedKnapsack(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	p := New(Maximize)
	n := 400
	terms := make([]Term, n)
	for j := 0; j < n; j++ {
		p.AddBoundedVariable(rng.Float64()*10, rng.Float64()*5, "")
		terms[j] = Term{Var: j, Coef: 1}
	}
	if err := p.AddConstraint(terms, LessEq, 300, ""); err != nil {
		b.Fatal(err)
	}
	benchSolve(b, p, Options{})
}
