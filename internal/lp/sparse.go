package lp

import "math"

// stdForm is the sparse standard-form snapshot of a Problem:
//
//	A x = b,  lower <= x <= upper
//
// where x is [structural | slack/surplus] and A is stored column-wise (CSC).
// Inequality rows receive one slack (<=, coefficient +1) or surplus (>=,
// coefficient -1) variable bounded to [0, +Inf); equality rows receive none.
// Finite variable bounds are NOT expanded into rows: the bounded-variable
// simplex of Solver handles them natively in the ratio test.
//
// The sparsity pattern (colPtr/rowIdx/colVal) depends only on the problem
// structure (variables and constraint rows); bounds, costs and right-hand
// sides are refreshed from the Problem before every solve so that callers may
// mutate them (SetBounds, SetObjectiveCoef, SetRHS) between solves without a
// rebuild.
type stdForm struct {
	m       int // constraint rows
	nStruct int // structural variables
	nStd    int // structural + slack/surplus variables

	colPtr []int32
	rowIdx []int32
	colVal []float64

	// slackOf[i] is the slack/surplus column of row i, -1 for equality rows.
	// slackSign[i] is its coefficient (+1 for <=, -1 for >=).
	slackOf   []int32
	slackSign []float64

	// Refreshed per solve. The arrays are sized nStd+m so that the solver can
	// use the trailing m entries for phase-1 artificial variables.
	lower, upper []float64
	cost         []float64
	b            []float64
}

// build (re)constructs the sparsity pattern from the problem structure.
func (sf *stdForm) build(p *Problem) {
	sf.m = len(p.rows)
	sf.nStruct = len(p.objective)

	// Count slack columns and per-column nonzeros.
	nSlack := 0
	for _, r := range p.rows {
		if r.Op != Equal {
			nSlack++
		}
	}
	sf.nStd = sf.nStruct + nSlack

	counts := make([]int32, sf.nStd)
	for _, r := range p.rows {
		for _, t := range r.Terms {
			counts[t.Var]++
		}
	}
	slackCol := sf.nStruct
	sf.slackOf = resizeInt32(sf.slackOf, sf.m)
	sf.slackSign = resizeFloat(sf.slackSign, sf.m)
	for i, r := range p.rows {
		if r.Op == Equal {
			sf.slackOf[i] = -1
			sf.slackSign[i] = 0
			continue
		}
		counts[slackCol] = 1
		sf.slackOf[i] = int32(slackCol)
		if r.Op == LessEq {
			sf.slackSign[i] = 1
		} else {
			sf.slackSign[i] = -1
		}
		slackCol++
	}

	sf.colPtr = resizeInt32(sf.colPtr, sf.nStd+1)
	sf.colPtr[0] = 0
	for j := 0; j < sf.nStd; j++ {
		sf.colPtr[j+1] = sf.colPtr[j] + counts[j]
	}
	nnz := int(sf.colPtr[sf.nStd])
	sf.rowIdx = resizeInt32(sf.rowIdx, nnz)
	sf.colVal = resizeFloat(sf.colVal, nnz)

	// Fill: walk rows, scatter into columns. Duplicate variables within a row
	// are summed (matching the dense tableau's semantics), which requires a
	// merge pass per column afterwards; rows with duplicates are rare, so we
	// first scatter raw entries and then compact duplicates in place.
	next := make([]int32, sf.nStd)
	copy(next, sf.colPtr[:sf.nStd])
	for i, r := range p.rows {
		for _, t := range r.Terms {
			k := next[t.Var]
			sf.rowIdx[k] = int32(i)
			sf.colVal[k] = t.Coef
			next[t.Var] = k + 1
		}
		if sc := sf.slackOf[i]; sc >= 0 {
			k := next[sc]
			sf.rowIdx[k] = int32(i)
			sf.colVal[k] = sf.slackSign[i]
			next[sc] = k + 1
		}
	}
	sf.compactDuplicates()

	total := sf.nStd + sf.m
	sf.lower = resizeFloat(sf.lower, total)
	sf.upper = resizeFloat(sf.upper, total)
	sf.cost = resizeFloat(sf.cost, total)
	sf.b = resizeFloat(sf.b, sf.m)
}

// compactDuplicates merges repeated row entries within each column (a row
// listing the same variable twice contributes the summed coefficient). The
// column entries produced by build are ordered by row already, except that a
// duplicate appears adjacent to its sibling only if the duplicates were
// adjacent in the row; handle the general case with a small per-column merge.
func (sf *stdForm) compactDuplicates() {
	write := int32(0)
	newPtr := make([]int32, sf.nStd+1)
	for j := 0; j < sf.nStd; j++ {
		newPtr[j] = write
		start, end := sf.colPtr[j], sf.colPtr[j+1]
		for k := start; k < end; k++ {
			row, val := sf.rowIdx[k], sf.colVal[k]
			merged := false
			for w := newPtr[j]; w < write; w++ {
				if sf.rowIdx[w] == row {
					sf.colVal[w] += val
					merged = true
					break
				}
			}
			if !merged {
				sf.rowIdx[write] = row
				sf.colVal[write] = val
				write++
			}
		}
	}
	newPtr[sf.nStd] = write
	copy(sf.colPtr, newPtr)
	sf.rowIdx = sf.rowIdx[:write]
	sf.colVal = sf.colVal[:write]
}

// refresh re-reads bounds, costs and right-hand sides from the problem. Costs
// are normalised to minimisation. Artificial entries (the trailing m slots)
// are reset to fixed-at-zero with zero cost; the solver re-opens them as
// needed during phase 1.
func (sf *stdForm) refresh(p *Problem) {
	for j := 0; j < sf.nStruct; j++ {
		sf.lower[j] = p.lowerOf(j)
		sf.upper[j] = p.upper[j]
		if p.sense == Maximize {
			sf.cost[j] = -p.objective[j]
		} else {
			sf.cost[j] = p.objective[j]
		}
	}
	for j := sf.nStruct; j < sf.nStd; j++ {
		sf.lower[j] = 0
		sf.upper[j] = math.Inf(1)
		sf.cost[j] = 0
	}
	for j := sf.nStd; j < sf.nStd+sf.m; j++ {
		sf.lower[j] = 0
		sf.upper[j] = 0
		sf.cost[j] = 0
	}
	for i, r := range p.rows {
		sf.b[i] = r.RHS
	}
}

// nnz returns the number of stored nonzeros.
func (sf *stdForm) nnz() int { return len(sf.colVal) }

// column invokes fn(row, value) for every nonzero of standard-form column j,
// including artificial columns (a single ±1 entry supplied by the solver's
// sign array).
//
// It is written as a method returning slices rather than a callback so the
// hot loops below can iterate without closure overhead.
func (sf *stdForm) column(j int) ([]int32, []float64) {
	start, end := sf.colPtr[j], sf.colPtr[j+1]
	return sf.rowIdx[start:end], sf.colVal[start:end]
}

func resizeFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
