// Package lp implements a self-contained dense two-phase primal simplex
// solver for linear programs in the form
//
//	optimise   c^T x
//	subject to a_i^T x {<=, =, >=} b_i   for every constraint i
//	           0 <= x_j <= u_j           for every variable j
//
// It is the optimisation substrate of the network-recovery library: the
// routability test of §IV-A, the maximum-split LP of §IV-C, the
// multi-commodity relaxation of §VI-A and the branch-and-bound MILP used for
// the OPT baseline are all built on top of it.
//
// The solver is deliberately simple (dense tableau, Bland's anti-cycling
// rule after a Dantzig warm-up) but entirely dependency-free. Problem sizes
// in this repository stay within a few thousand rows and columns; callers
// that may exceed that (the routability test on very large topologies) use a
// constructive fallback in the flow package.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of optimisation.
type Sense int

// Optimisation senses.
const (
	Minimize Sense = iota + 1
	Maximize
)

// ConstraintOp is the relational operator of a constraint row.
type ConstraintOp int

// Constraint operators.
const (
	LessEq ConstraintOp = iota + 1
	Equal
	GreaterEq
)

// Status reports the outcome of a solve.
type Status int

// Solver outcomes.
const (
	StatusOptimal Status = iota + 1
	StatusInfeasible
	StatusUnbounded
	StatusIterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// ErrNoSolution is returned by helpers that require an optimal solution when
// the problem is infeasible or unbounded.
var ErrNoSolution = errors.New("lp: no optimal solution")

// Term is a single coefficient of a constraint row: Coef * x_{Var}.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a single row a^T x op RHS.
type Constraint struct {
	Terms []Term
	Op    ConstraintOp
	RHS   float64
	Name  string
}

// Problem is a linear program under construction. Create one with New, add
// variables and constraints, then call Solve.
type Problem struct {
	sense     Sense
	objective []float64
	upper     []float64 // +Inf when unbounded above
	names     []string
	rows      []Constraint
}

// New returns an empty problem with the given optimisation sense.
func New(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// AddVariable adds a variable with the given objective coefficient, an
// implicit lower bound of zero and no upper bound. It returns the variable
// index.
func (p *Problem) AddVariable(objCoef float64, name string) int {
	return p.AddBoundedVariable(objCoef, math.Inf(1), name)
}

// AddBoundedVariable adds a variable with objective coefficient objCoef and
// bounds 0 <= x <= upper. It returns the variable index.
func (p *Problem) AddBoundedVariable(objCoef, upper float64, name string) int {
	idx := len(p.objective)
	p.objective = append(p.objective, objCoef)
	p.upper = append(p.upper, upper)
	p.names = append(p.names, name)
	return idx
}

// SetObjectiveCoef overwrites the objective coefficient of variable v.
func (p *Problem) SetObjectiveCoef(v int, coef float64) error {
	if v < 0 || v >= len(p.objective) {
		return fmt.Errorf("lp: variable %d out of range", v)
	}
	p.objective[v] = coef
	return nil
}

// SetUpperBound overwrites the upper bound of variable v.
func (p *Problem) SetUpperBound(v int, upper float64) error {
	if v < 0 || v >= len(p.objective) {
		return fmt.Errorf("lp: variable %d out of range", v)
	}
	p.upper[v] = upper
	return nil
}

// UpperBound returns the upper bound of variable v (+Inf if unbounded).
func (p *Problem) UpperBound(v int) float64 { return p.upper[v] }

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.objective) }

// NumConstraints returns the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// AddConstraint adds a constraint row. Terms referencing unknown variables
// cause an error. Duplicate variables within a row are summed.
func (p *Problem) AddConstraint(terms []Term, op ConstraintOp, rhs float64, name string) error {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.objective) {
			return fmt.Errorf("lp: constraint %q references unknown variable %d", name, t.Var)
		}
	}
	row := Constraint{
		Terms: append([]Term(nil), terms...),
		Op:    op,
		RHS:   rhs,
		Name:  name,
	}
	p.rows = append(p.rows, row)
	return nil
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	Objective  float64
	Values     []float64
	Iterations int
}

// Value returns the value of variable v in the solution (0 when the solution
// has no value array, e.g. for infeasible problems).
func (s Solution) Value(v int) float64 {
	if v < 0 || v >= len(s.Values) {
		return 0
	}
	return s.Values[v]
}

// Options tune the solver.
type Options struct {
	// MaxIterations bounds the total number of pivots across both phases.
	// Zero means a generous default proportional to the problem size.
	MaxIterations int
	// Tolerance is the numerical tolerance for optimality and feasibility
	// tests. Zero means 1e-9.
	Tolerance float64
}

func (o Options) withDefaults(rows, cols int) Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 200 * (rows + cols + 10)
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// Solve solves the problem with default options.
func (p *Problem) Solve() Solution {
	return p.SolveWithOptions(Options{})
}

// SolveWithOptions solves the problem with the given options.
func (p *Problem) SolveWithOptions(opts Options) Solution {
	t := newTableau(p)
	opts = opts.withDefaults(t.m, t.n)
	return t.solve(opts)
}
