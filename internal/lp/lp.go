// Package lp implements a self-contained sparse revised simplex solver for
// linear programs in the form
//
//	optimise   c^T x
//	subject to a_i^T x {<=, =, >=} b_i   for every constraint i
//	           l_j <= x_j <= u_j         for every variable j
//
// It is the optimisation substrate of the network-recovery library: the
// routability test of §IV-A, the maximum-split LP of §IV-C, the
// multi-commodity relaxation of §VI-A and the branch-and-bound MILP used for
// the OPT baseline are all built on top of it.
//
// The solver is a bounded-variable revised simplex over a CSC (column
// compressed) matrix: finite variable bounds are handled natively in the
// ratio test (no synthetic bound rows), the basis inverse is maintained
// explicitly with rank-one updates and periodic refactorisation, pricing is
// rotating-partial Dantzig with a Bland's-rule fallback for termination, and
// a dual simplex restores feasibility after bound or right-hand-side changes
// under a warm-started basis. Callers on hot paths hold a Solver (and pass
// Options.WarmStart) so that factorisations, work buffers and bases survive
// across related solves; one-shot callers use Problem.Solve.
//
// The previous dense two-phase tableau implementation is retained behind
// Options.Dense as an internal fallback and as the reference oracle for the
// differential tests in equivalence_test.go. It remains entirely
// dependency-free, like the rest of the package.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of optimisation.
type Sense int

// Optimisation senses.
const (
	Minimize Sense = iota + 1
	Maximize
)

// ConstraintOp is the relational operator of a constraint row.
type ConstraintOp int

// Constraint operators.
const (
	LessEq ConstraintOp = iota + 1
	Equal
	GreaterEq
)

// Status reports the outcome of a solve.
type Status int

// Solver outcomes.
const (
	StatusOptimal Status = iota + 1
	StatusInfeasible
	StatusUnbounded
	StatusIterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// ErrNoSolution is returned by helpers that require an optimal solution when
// the problem is infeasible or unbounded.
var ErrNoSolution = errors.New("lp: no optimal solution")

// Term is a single coefficient of a constraint row: Coef * x_{Var}.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a single row a^T x op RHS.
type Constraint struct {
	Terms []Term
	Op    ConstraintOp
	RHS   float64
	Name  string
}

// Problem is a linear program under construction. Create one with New, add
// variables and constraints, then call Solve.
type Problem struct {
	sense     Sense
	objective []float64
	upper     []float64 // +Inf when unbounded above
	lower     []float64 // nil when every lower bound is zero
	names     []string
	rows      []Constraint

	// termArena chunk-allocates the Terms storage of constraint rows so that
	// building a problem costs one allocation per few thousand terms instead
	// of one per row (the split LP is rebuilt every ISP iteration).
	termArena []Term

	// version counts structural mutations (new variables or rows). A Solver
	// reuses its standard-form matrix and factorisation while the version is
	// unchanged, so bound/cost/RHS edits between solves stay cheap.
	version int
}

// Reserve pre-allocates capacity for nVars additional variables and nRows
// additional constraint rows, eliminating incremental slice growth when the
// final problem size is known up front.
func (p *Problem) Reserve(nVars, nRows int) {
	if want := len(p.objective) + nVars; cap(p.objective) < want {
		p.objective = append(make([]float64, 0, want), p.objective...)
		p.upper = append(make([]float64, 0, want), p.upper...)
		p.names = append(make([]string, 0, want), p.names...)
		if p.lower != nil {
			p.lower = append(make([]float64, 0, want), p.lower...)
		}
	}
	if want := len(p.rows) + nRows; cap(p.rows) < want {
		p.rows = append(make([]Constraint, 0, want), p.rows...)
	}
}

// copyTerms stores a private copy of terms in the problem's chunked arena.
// Chunks are never grown in place, so previously returned slices stay valid.
func (p *Problem) copyTerms(terms []Term) []Term {
	n := len(terms)
	if n == 0 {
		return nil
	}
	if len(p.termArena)+n > cap(p.termArena) {
		size := 4096
		if n > size {
			size = n
		}
		p.termArena = make([]Term, 0, size)
	}
	start := len(p.termArena)
	p.termArena = append(p.termArena, terms...)
	return p.termArena[start : start+n : start+n]
}

// New returns an empty problem with the given optimisation sense.
func New(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// AddVariable adds a variable with the given objective coefficient, an
// implicit lower bound of zero and no upper bound. It returns the variable
// index.
func (p *Problem) AddVariable(objCoef float64, name string) int {
	return p.AddBoundedVariable(objCoef, math.Inf(1), name)
}

// AddBoundedVariable adds a variable with objective coefficient objCoef and
// bounds 0 <= x <= upper. It returns the variable index.
func (p *Problem) AddBoundedVariable(objCoef, upper float64, name string) int {
	idx := len(p.objective)
	p.objective = append(p.objective, objCoef)
	p.upper = append(p.upper, upper)
	if p.lower != nil {
		p.lower = append(p.lower, 0)
	}
	p.names = append(p.names, name)
	p.version++
	return idx
}

// SetObjectiveCoef overwrites the objective coefficient of variable v.
func (p *Problem) SetObjectiveCoef(v int, coef float64) error {
	if v < 0 || v >= len(p.objective) {
		return fmt.Errorf("lp: variable %d out of range", v)
	}
	p.objective[v] = coef
	return nil
}

// SetUpperBound overwrites the upper bound of variable v.
func (p *Problem) SetUpperBound(v int, upper float64) error {
	if v < 0 || v >= len(p.objective) {
		return fmt.Errorf("lp: variable %d out of range", v)
	}
	p.upper[v] = upper
	return nil
}

// UpperBound returns the upper bound of variable v (+Inf if unbounded).
func (p *Problem) UpperBound(v int) float64 { return p.upper[v] }

// SetBounds overwrites both bounds of variable v. The lower bound must be
// finite and not exceed the upper bound. Setting lower == upper fixes the
// variable, which the branch-and-bound MILP solver uses to impose integer
// fixings without altering the problem structure (so a parent basis stays
// warm-startable in the children).
func (p *Problem) SetBounds(v int, lower, upper float64) error {
	if v < 0 || v >= len(p.objective) {
		return fmt.Errorf("lp: variable %d out of range", v)
	}
	if math.IsInf(lower, 0) || math.IsNaN(lower) || math.IsNaN(upper) || lower > upper {
		return fmt.Errorf("lp: invalid bounds [%g, %g] for variable %d", lower, upper, v)
	}
	if p.lower == nil {
		if lower == 0 {
			p.upper[v] = upper
			return nil
		}
		p.lower = make([]float64, len(p.objective))
	}
	p.lower[v] = lower
	p.upper[v] = upper
	return nil
}

// LowerBound returns the lower bound of variable v (zero unless overridden
// with SetBounds).
func (p *Problem) LowerBound(v int) float64 { return p.lowerOf(v) }

func (p *Problem) lowerOf(v int) float64 {
	if p.lower == nil {
		return 0
	}
	return p.lower[v]
}

// SetRHS overwrites the right-hand side of constraint row i. Like SetBounds
// it does not change the problem structure, so warm starts across the edit
// remain valid; the flow package uses it to refresh residual capacities
// between consecutive routability tests.
func (p *Problem) SetRHS(i int, rhs float64) error {
	if i < 0 || i >= len(p.rows) {
		return fmt.Errorf("lp: constraint %d out of range", i)
	}
	p.rows[i].RHS = rhs
	return nil
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.objective) }

// NumConstraints returns the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// AddConstraint adds a constraint row. Terms referencing unknown variables
// cause an error. Duplicate variables within a row are summed.
func (p *Problem) AddConstraint(terms []Term, op ConstraintOp, rhs float64, name string) error {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.objective) {
			return fmt.Errorf("lp: constraint %q references unknown variable %d", name, t.Var)
		}
	}
	row := Constraint{
		Terms: p.copyTerms(terms),
		Op:    op,
		RHS:   rhs,
		Name:  name,
	}
	p.rows = append(p.rows, row)
	p.version++
	return nil
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	Objective  float64
	Values     []float64
	Iterations int
	// Basis, set on optimal solves by the sparse solver, snapshots the final
	// simplex basis. Passing it back via Options.WarmStart to a later solve
	// of a same-structured problem (bounds, costs and right-hand sides may
	// differ) typically re-solves in a handful of pivots.
	Basis *Basis
	// Stats describes how the sparse solver got to the answer (solver-depth
	// telemetry; zero for the dense fallback). It never affects the result.
	Stats Stats
}

// Stats is the solver-depth record of one sparse solve, surfaced so the
// serving stack can attribute latency to simplex work rather than infer
// it from wall time alone.
type Stats struct {
	// Iterations mirrors Solution.Iterations (total pivots, both phases).
	Iterations int
	// Refactorisations counts basis-inverse rebuilds from scratch during
	// the solve — periodic (every refactorEv pivots), on warm-start
	// installation, and on numerical-recovery paths.
	Refactorisations int
	// Warm reports that a supplied warm-start basis was accepted: it was
	// primal-feasible as-is, or dual-simplex repair restored feasibility.
	// False means the solve cold-started (no basis given, stale basis, or
	// repair failed).
	Warm bool
}

// Value returns the value of variable v in the solution (0 when the solution
// has no value array, e.g. for infeasible problems).
func (s Solution) Value(v int) float64 {
	if v < 0 || v >= len(s.Values) {
		return 0
	}
	return s.Values[v]
}

// Options tune the solver.
type Options struct {
	// MaxIterations bounds the total number of pivots across both phases.
	// Zero means a generous default proportional to the sparse problem size
	// (constraint rows plus structural and slack columns; variable bounds are
	// handled natively and no longer inflate the count). Exhausting the
	// budget yields StatusIterLimit, which is distinct from
	// StatusInfeasible: callers that need a definitive feasibility answer
	// must treat it as "unknown", not "no".
	MaxIterations int
	// Tolerance is the numerical tolerance for optimality and feasibility
	// tests. Zero means 1e-9.
	Tolerance float64
	// WarmStart, when non-nil, is a basis snapshot from a previous solve of
	// a problem with identical structure. Invalid or stale bases are
	// detected and silently fall back to a cold start.
	WarmStart *Basis
	// Dense forces the legacy dense two-phase tableau solver. It is kept as
	// an internal fallback and for differential testing against the sparse
	// revised simplex; it ignores WarmStart and expands finite bounds into
	// explicit rows.
	Dense bool
	// Deterministic makes the solve a pure function of the problem data and
	// the supplied warm-start basis, independent of the Solver's solve
	// history: the rotating partial-pricing window restarts at column zero
	// and a warm basis is always refactorised from its snapshot instead of
	// reusing the solver's incrementally-updated inverse when the snapshot
	// happens to match the current basis. The parallel branch-and-bound
	// search sets it so a node relaxation yields bit-identical pivots no
	// matter which worker (after whatever solve sequence) executes it;
	// sequential hot paths leave it false and keep both fast paths.
	Deterministic bool
}

func (o Options) withDefaults(rows, cols int) Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 200 * (rows + cols + 10)
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// Solve solves the problem with default options.
func (p *Problem) Solve() Solution {
	return p.SolveWithOptions(Options{})
}

// SolveWithOptions solves the problem with the given options using the
// sparse revised simplex (or the legacy dense tableau when opts.Dense is
// set). Callers that solve many related problems should hold a Solver and
// call its Solve method instead, which reuses buffers and factorisations
// across solves.
func (p *Problem) SolveWithOptions(opts Options) Solution {
	if opts.Dense {
		return solveDense(p, opts)
	}
	return NewSolver().Solve(p, opts)
}

// solveDense runs the legacy dense two-phase tableau solver. The tableau
// models only 0 <= x <= u, so non-zero lower bounds are handled by the exact
// variable shift y = x - l (bounds become 0 <= y <= u-l, each row's RHS
// drops sum(a_ij * l_j)), and the solution is shifted back afterwards. This
// keeps the dense path a faithful oracle for any bounds the sparse solver
// accepts, including negative lower bounds.
func solveDense(p *Problem, opts Options) Solution {
	shifted := false
	if p.lower != nil {
		for _, lo := range p.lower {
			if lo != 0 {
				shifted = true
				break
			}
		}
	}
	orig := p
	if shifted {
		c := p.CloneStructure()
		c.lower = nil
		for v, lo := range p.lower {
			if lo != 0 {
				c.upper[v] = p.upper[v] - lo // +Inf stays +Inf
			}
		}
		for i := range c.rows {
			adj := 0.0
			for _, t := range c.rows[i].Terms {
				adj += t.Coef * p.lowerOf(t.Var)
			}
			c.rows[i].RHS -= adj
		}
		p = c
	}
	t := newTableau(p)
	o := opts
	o.WarmStart = nil
	o = o.withDefaults(t.m, t.n)
	sol := t.solve(o)
	if shifted && sol.Status == StatusOptimal {
		for v := range sol.Values {
			lo := orig.lowerOf(v)
			sol.Values[v] += lo
			sol.Objective += orig.objective[v] * lo
		}
	}
	return sol
}
