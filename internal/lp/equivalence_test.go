package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomProblem generates a random LP over the dense-compatible subset of
// the API (zero lower bounds): random sense, a mix of bounded and unbounded
// variables, and random <=/==/>= rows with occasional negative right-hand
// sides. The distribution is tuned to produce a healthy mix of optimal,
// infeasible and unbounded instances.
func randomProblem(rng *rand.Rand) *Problem {
	sense := Minimize
	if rng.Intn(2) == 0 {
		sense = Maximize
	}
	p := New(sense)
	n := 1 + rng.Intn(8)
	for j := 0; j < n; j++ {
		coef := math.Round((rng.Float64()*20-10)*4) / 4
		if rng.Intn(3) == 0 {
			p.AddVariable(coef, "")
		} else {
			upper := math.Round(rng.Float64()*40) / 4
			p.AddBoundedVariable(coef, upper, "")
		}
	}
	rows := 1 + rng.Intn(6)
	for i := 0; i < rows; i++ {
		nTerms := 1 + rng.Intn(n)
		terms := make([]Term, 0, nTerms)
		for k := 0; k < nTerms; k++ {
			coef := math.Round((rng.Float64()*8-3)*4) / 4
			if coef == 0 {
				coef = 1
			}
			terms = append(terms, Term{Var: rng.Intn(n), Coef: coef})
		}
		// Weighted toward <= rows with non-negative right-hand sides, which
		// keeps a healthy share of feasible instances; >= and == rows (and
		// occasional negative right-hand sides) still appear often enough to
		// exercise surplus columns, artificials and the infeasible path.
		var op ConstraintOp
		switch r := rng.Intn(10); {
		case r < 6:
			op = LessEq
		case r < 8:
			op = GreaterEq
		default:
			op = Equal
		}
		rhs := math.Round((rng.Float64()*30-3)*4) / 4
		if err := p.AddConstraint(terms, op, rhs, ""); err != nil {
			panic(err)
		}
	}
	return p
}

// TestSparseMatchesDenseOnRandomLPs is the differential property test of the
// rewrite: 500 random LPs solved by both the legacy dense tableau and the
// sparse revised simplex must agree on status and, when optimal, on the
// objective within 1e-6. Variable values may differ (alternative optima are
// common on random instances); the objective is the contract.
func TestSparseMatchesDenseOnRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	counts := map[Status]int{}
	for i := 0; i < 500; i++ {
		p := randomProblem(rng)
		dense := p.SolveWithOptions(Options{Dense: true})
		sparse := p.SolveWithOptions(Options{})
		counts[sparse.Status]++
		if dense.Status == StatusIterLimit || sparse.Status == StatusIterLimit {
			// An iteration-limited answer is "unknown" by contract; with the
			// generous defaults it should not occur on these tiny instances.
			t.Fatalf("case %d: hit iteration limit (dense=%v sparse=%v)", i, dense.Status, sparse.Status)
		}
		if dense.Status != sparse.Status {
			t.Fatalf("case %d: status mismatch: dense=%v sparse=%v", i, dense.Status, sparse.Status)
		}
		if dense.Status != StatusOptimal {
			continue
		}
		if math.Abs(dense.Objective-sparse.Objective) > 1e-6*(1+math.Abs(dense.Objective)) {
			t.Fatalf("case %d: objective mismatch: dense=%.12f sparse=%.12f", i, dense.Objective, sparse.Objective)
		}
		// The sparse solution must itself be feasible for the problem.
		assertFeasible(t, i, p, sparse.Values)
	}
	if counts[StatusOptimal] < 100 || counts[StatusInfeasible] < 20 || counts[StatusUnbounded] < 20 {
		t.Fatalf("generator poorly mixed: %v", counts)
	}
}

// assertFeasible checks bounds and constraint rows within tolerance.
func assertFeasible(t *testing.T, caseNo int, p *Problem, x []float64) {
	t.Helper()
	const tol = 1e-6
	for j := 0; j < p.NumVariables(); j++ {
		if x[j] < p.lowerOf(j)-tol || x[j] > p.upper[j]+tol {
			t.Fatalf("case %d: variable %d = %g outside [%g, %g]", caseNo, j, x[j], p.lowerOf(j), p.upper[j])
		}
	}
	for i, row := range p.rows {
		lhs := 0.0
		for _, term := range row.Terms {
			lhs += term.Coef * x[term.Var]
		}
		scale := 1 + math.Abs(row.RHS)
		switch row.Op {
		case LessEq:
			if lhs > row.RHS+tol*scale {
				t.Fatalf("case %d: row %d violated: %g <= %g", caseNo, i, lhs, row.RHS)
			}
		case GreaterEq:
			if lhs < row.RHS-tol*scale {
				t.Fatalf("case %d: row %d violated: %g >= %g", caseNo, i, lhs, row.RHS)
			}
		case Equal:
			if math.Abs(lhs-row.RHS) > tol*scale {
				t.Fatalf("case %d: row %d violated: %g == %g", caseNo, i, lhs, row.RHS)
			}
		}
	}
}

// TestSparseLowerBounds exercises the native lower-bound support (which the
// dense path emulates with explicit rows).
func TestSparseLowerBounds(t *testing.T) {
	p := New(Minimize)
	x := p.AddBoundedVariable(2, 10, "x")
	y := p.AddBoundedVariable(3, 10, "y")
	if err := p.SetBounds(x, 1.5, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBounds(y, 2, 6); err != nil {
		t.Fatal(err)
	}
	mustConstrain(t, p, []Term{{x, 1}, {y, 1}}, GreaterEq, 5)
	for _, dense := range []bool{false, true} {
		sol := p.SolveWithOptions(Options{Dense: dense})
		if sol.Status != StatusOptimal {
			t.Fatalf("dense=%v status = %v", dense, sol.Status)
		}
		// Cheapest mix: y at its lower bound 2, x at 3 -> 2*3 + 3*2 = 12.
		if !approxEq(sol.Objective, 12, 1e-6) {
			t.Errorf("dense=%v objective = %f, want 12", dense, sol.Objective)
		}
	}
	// Fixing a variable via equal bounds.
	if err := p.SetBounds(x, 4, 4); err != nil {
		t.Fatal(err)
	}
	sol := p.Solve()
	if sol.Status != StatusOptimal || !approxEq(sol.Value(x), 4, 1e-9) {
		t.Fatalf("fixed variable: status=%v x=%f", sol.Status, sol.Value(x))
	}
	if !approxEq(sol.Objective, 2*4+3*2, 1e-6) {
		t.Errorf("fixed objective = %f, want 14", sol.Objective)
	}
	// NaN bounds must be rejected, not silently accepted.
	if err := p.SetBounds(x, 0, math.NaN()); err == nil {
		t.Error("SetBounds accepted a NaN upper bound")
	}
}

// TestNegativeLowerBounds pins the dense oracle's variable-shift handling:
// both solvers must agree on a problem whose optimum sits at a negative
// lower bound (the dense tableau natively models only x >= 0).
func TestNegativeLowerBounds(t *testing.T) {
	p := New(Minimize)
	x := p.AddBoundedVariable(1, 5, "x")
	y := p.AddBoundedVariable(2, 5, "y")
	if err := p.SetBounds(x, -5, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBounds(y, -1, 5); err != nil {
		t.Fatal(err)
	}
	// x + y >= -3 keeps the problem bounded away from the box corner.
	mustConstrain(t, p, []Term{{x, 1}, {y, 1}}, GreaterEq, -3)
	for _, dense := range []bool{false, true} {
		sol := p.SolveWithOptions(Options{Dense: dense})
		if sol.Status != StatusOptimal {
			t.Fatalf("dense=%v status = %v", dense, sol.Status)
		}
		// Optimum: y at -1, x at -2 (constraint binding) -> 1*(-2) + 2*(-1) = -4.
		if !approxEq(sol.Objective, -4, 1e-6) {
			t.Errorf("dense=%v objective = %f, want -4", dense, sol.Objective)
		}
		if !approxEq(sol.Value(x), -2, 1e-6) || !approxEq(sol.Value(y), -1, 1e-6) {
			t.Errorf("dense=%v x=%f y=%f, want -2, -1", dense, sol.Value(x), sol.Value(y))
		}
	}
}

// TestWarmStartAfterRHSAndBoundChanges checks the dual-simplex warm-start
// path: re-solving after right-hand-side and bound perturbations from the
// previous basis must agree with a cold solve, across many random instances.
func TestWarmStartAfterRHSAndBoundChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	solver := NewSolver()
	warmUsable := 0
	for i := 0; i < 300; i++ {
		p := randomProblem(rng)
		first := solver.Solve(p, Options{})
		if first.Status != StatusOptimal {
			continue
		}
		// Perturb every RHS and shrink some upper bounds.
		for r := range p.rows {
			_ = p.SetRHS(r, p.rows[r].RHS+math.Round((rng.Float64()*4-2)*4)/4)
		}
		for v := 0; v < p.NumVariables(); v++ {
			if up := p.UpperBound(v); !math.IsInf(up, 1) && rng.Intn(3) == 0 {
				_ = p.SetBounds(v, 0, math.Max(0, up-rng.Float64()*3))
			}
		}
		warm := solver.Solve(p, Options{WarmStart: first.Basis})
		cold := p.SolveWithOptions(Options{})
		if warm.Status != cold.Status {
			t.Fatalf("case %d: warm=%v cold=%v", i, warm.Status, cold.Status)
		}
		if warm.Status == StatusOptimal {
			if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
				t.Fatalf("case %d: warm obj %.12f != cold obj %.12f", i, warm.Objective, cold.Objective)
			}
			assertFeasible(t, i, p, warm.Values)
			warmUsable++
		}
	}
	if warmUsable < 50 {
		t.Fatalf("only %d warm-started optimal re-solves; generator too hostile", warmUsable)
	}
}

// TestWarmStartIdenticalResolve verifies the zero-pivot fast path: passing
// the returned basis straight back must re-solve optimally with no pivots.
func TestWarmStartIdenticalResolve(t *testing.T) {
	p := New(Maximize)
	x := p.AddVariable(3, "x")
	y := p.AddVariable(5, "y")
	mustConstrain(t, p, []Term{{x, 1}}, LessEq, 4)
	mustConstrain(t, p, []Term{{y, 2}}, LessEq, 12)
	mustConstrain(t, p, []Term{{x, 3}, {y, 2}}, LessEq, 18)
	solver := NewSolver()
	first := solver.Solve(p, Options{})
	if first.Status != StatusOptimal || first.Basis == nil {
		t.Fatalf("first solve: %v", first.Status)
	}
	again := solver.Solve(p, Options{WarmStart: first.Basis})
	if again.Status != StatusOptimal || !approxEq(again.Objective, 36, 1e-9) {
		t.Fatalf("warm resolve: status=%v obj=%f", again.Status, again.Objective)
	}
	if again.Iterations != 0 {
		t.Errorf("warm resolve took %d pivots, want 0", again.Iterations)
	}
}

// TestStatusIterLimitDistinct pins the satellite fix: exhausting the pivot
// budget must surface as StatusIterLimit, never as StatusInfeasible, on a
// feasible problem that needs more pivots than allowed.
func TestStatusIterLimitDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		p := randomProblem(rng)
		full := p.SolveWithOptions(Options{})
		if full.Status != StatusOptimal || full.Iterations < 3 {
			continue
		}
		starved := p.SolveWithOptions(Options{MaxIterations: 1})
		if starved.Status == StatusInfeasible || starved.Status == StatusUnbounded {
			t.Fatalf("case %d: starved solve claimed %v for an optimal problem", i, starved.Status)
		}
	}
}
