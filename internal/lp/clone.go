package lp

// Sense returns the optimisation sense of the problem.
func (p *Problem) Sense() Sense { return p.sense }

// CloneStructure returns a deep copy of the problem (variables, bounds,
// objective and constraint rows). The copy can be mutated freely without
// affecting the original; the branch-and-bound MILP solver uses this to add
// per-node variable fixings.
func (p *Problem) CloneStructure() *Problem {
	c := &Problem{
		sense:     p.sense,
		objective: append([]float64(nil), p.objective...),
		upper:     append([]float64(nil), p.upper...),
		lower:     append([]float64(nil), p.lower...),
		names:     append([]string(nil), p.names...),
		rows:      make([]Constraint, len(p.rows)),
	}
	for i, r := range p.rows {
		c.rows[i] = Constraint{
			Terms: c.copyTerms(r.Terms),
			Op:    r.Op,
			RHS:   r.RHS,
			Name:  r.Name,
		}
	}
	return c
}
