package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMaximizeSimple(t *testing.T) {
	// max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj=36.
	p := New(Maximize)
	x := p.AddVariable(3, "x")
	y := p.AddVariable(5, "y")
	mustConstrain(t, p, []Term{{x, 1}}, LessEq, 4)
	mustConstrain(t, p, []Term{{y, 2}}, LessEq, 12)
	mustConstrain(t, p, []Term{{x, 3}, {y, 2}}, LessEq, 18)
	sol := p.Solve()
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approxEq(sol.Objective, 36, 1e-6) {
		t.Errorf("objective = %f, want 36", sol.Objective)
	}
	if !approxEq(sol.Value(x), 2, 1e-6) || !approxEq(sol.Value(y), 6, 1e-6) {
		t.Errorf("x=%f y=%f, want 2, 6", sol.Value(x), sol.Value(y))
	}
}

func TestMinimizeWithEqualityAndGreaterEq(t *testing.T) {
	// min 2x + 3y st x + y = 10, x >= 3 -> x=10? No: y >= 0 so minimum puts
	// as much as possible on the cheaper variable x: x=10, y=0, but x>=3
	// already satisfied. Objective 20.
	p := New(Minimize)
	x := p.AddVariable(2, "x")
	y := p.AddVariable(3, "y")
	mustConstrain(t, p, []Term{{x, 1}, {y, 1}}, Equal, 10)
	mustConstrain(t, p, []Term{{x, 1}}, GreaterEq, 3)
	sol := p.Solve()
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approxEq(sol.Objective, 20, 1e-6) {
		t.Errorf("objective = %f, want 20", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2 simultaneously.
	p := New(Maximize)
	x := p.AddVariable(1, "x")
	mustConstrain(t, p, []Term{{x, 1}}, LessEq, 1)
	mustConstrain(t, p, []Term{{x, 1}}, GreaterEq, 2)
	sol := p.Solve()
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := New(Maximize)
	x := p.AddVariable(1, "x")
	y := p.AddVariable(0, "y")
	mustConstrain(t, p, []Term{{x, 1}, {y, -1}}, LessEq, 5)
	sol := p.Solve()
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestUpperBoundsAsVariableBounds(t *testing.T) {
	// max x + y with x <= 2.5 (bound), x + y <= 4.
	p := New(Maximize)
	x := p.AddBoundedVariable(1, 2.5, "x")
	y := p.AddVariable(1, "y")
	mustConstrain(t, p, []Term{{x, 1}, {y, 1}}, LessEq, 4)
	sol := p.Solve()
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approxEq(sol.Objective, 4, 1e-6) {
		t.Errorf("objective = %f, want 4", sol.Objective)
	}
	if sol.Value(x) > 2.5+1e-9 {
		t.Errorf("x = %f exceeds its bound", sol.Value(x))
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -3  <=>  x >= 3; minimise x -> 3.
	p := New(Minimize)
	x := p.AddVariable(1, "x")
	mustConstrain(t, p, []Term{{x, -1}}, LessEq, -3)
	sol := p.Solve()
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approxEq(sol.Value(x), 3, 1e-6) {
		t.Errorf("x = %f, want 3", sol.Value(x))
	}
}

func TestEqualityOnlyFeasibility(t *testing.T) {
	// Pure feasibility problem (zero objective): x + y = 5, x - y = 1.
	p := New(Minimize)
	x := p.AddVariable(0, "x")
	y := p.AddVariable(0, "y")
	mustConstrain(t, p, []Term{{x, 1}, {y, 1}}, Equal, 5)
	mustConstrain(t, p, []Term{{x, 1}, {y, -1}}, Equal, 1)
	sol := p.Solve()
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approxEq(sol.Value(x), 3, 1e-6) || !approxEq(sol.Value(y), 2, 1e-6) {
		t.Errorf("x=%f y=%f, want 3, 2", sol.Value(x), sol.Value(y))
	}
}

func TestDegenerateProblem(t *testing.T) {
	// A classic degenerate LP; the solver must still terminate and find the
	// optimum (Bland's rule fallback).
	p := New(Maximize)
	x1 := p.AddVariable(10, "x1")
	x2 := p.AddVariable(-57, "x2")
	x3 := p.AddVariable(-9, "x3")
	x4 := p.AddVariable(-24, "x4")
	mustConstrain(t, p, []Term{{x1, 0.5}, {x2, -5.5}, {x3, -2.5}, {x4, 9}}, LessEq, 0)
	mustConstrain(t, p, []Term{{x1, 0.5}, {x2, -1.5}, {x3, -0.5}, {x4, 1}}, LessEq, 0)
	mustConstrain(t, p, []Term{{x1, 1}}, LessEq, 1)
	sol := p.Solve()
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approxEq(sol.Objective, 1, 1e-6) {
		t.Errorf("objective = %f, want 1", sol.Objective)
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 supplies (10, 15) x 2 demands (12, 13), costs [[2,4],[3,1]].
	// Optimal: ship 10 from s0->d0, 2 from s1->d0, 13 from s1->d1 = 20+6+13 = 39.
	p := New(Minimize)
	x00 := p.AddVariable(2, "x00")
	x01 := p.AddVariable(4, "x01")
	x10 := p.AddVariable(3, "x10")
	x11 := p.AddVariable(1, "x11")
	mustConstrain(t, p, []Term{{x00, 1}, {x01, 1}}, LessEq, 10)
	mustConstrain(t, p, []Term{{x10, 1}, {x11, 1}}, LessEq, 15)
	mustConstrain(t, p, []Term{{x00, 1}, {x10, 1}}, Equal, 12)
	mustConstrain(t, p, []Term{{x01, 1}, {x11, 1}}, Equal, 13)
	sol := p.Solve()
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approxEq(sol.Objective, 39, 1e-6) {
		t.Errorf("objective = %f, want 39", sol.Objective)
	}
}

func TestMaxFlowAsLP(t *testing.T) {
	// Max flow from s to t on a 4-node diamond with unit capacities should
	// be 2, expressed as an LP over arc flows.
	p := New(Maximize)
	// arcs: s->a, s->b, a->t, b->t
	sa := p.AddBoundedVariable(0, 1, "sa")
	sb := p.AddBoundedVariable(0, 1, "sb")
	at := p.AddBoundedVariable(0, 1, "at")
	bt := p.AddBoundedVariable(0, 1, "bt")
	v := p.AddVariable(1, "value")
	// Conservation at a and b; value definition at s.
	mustConstrain(t, p, []Term{{sa, 1}, {at, -1}}, Equal, 0)
	mustConstrain(t, p, []Term{{sb, 1}, {bt, -1}}, Equal, 0)
	mustConstrain(t, p, []Term{{sa, 1}, {sb, 1}, {v, -1}}, Equal, 0)
	sol := p.Solve()
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approxEq(sol.Objective, 2, 1e-6) {
		t.Errorf("objective = %f, want 2", sol.Objective)
	}
}

func TestAddConstraintUnknownVariable(t *testing.T) {
	p := New(Minimize)
	if err := p.AddConstraint([]Term{{Var: 3, Coef: 1}}, LessEq, 1, "bad"); err == nil {
		t.Error("expected error for unknown variable")
	}
}

func TestSettersAndAccessors(t *testing.T) {
	p := New(Minimize)
	x := p.AddBoundedVariable(1, 5, "x")
	if err := p.SetObjectiveCoef(x, 7); err != nil {
		t.Fatal(err)
	}
	if err := p.SetUpperBound(x, 9); err != nil {
		t.Fatal(err)
	}
	if p.UpperBound(x) != 9 {
		t.Errorf("UpperBound = %f, want 9", p.UpperBound(x))
	}
	if err := p.SetObjectiveCoef(42, 1); err == nil {
		t.Error("expected error for out-of-range variable")
	}
	if err := p.SetUpperBound(-1, 1); err == nil {
		t.Error("expected error for out-of-range variable")
	}
	if p.NumVariables() != 1 || p.NumConstraints() != 0 {
		t.Errorf("counts = %d vars %d rows", p.NumVariables(), p.NumConstraints())
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusOptimal:    "optimal",
		StatusInfeasible: "infeasible",
		StatusUnbounded:  "unbounded",
		StatusIterLimit:  "iteration-limit",
		Status(99):       "status(99)",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(st), st.String(), want)
		}
	}
}

func TestSolutionValueOutOfRange(t *testing.T) {
	sol := Solution{Values: []float64{1, 2}}
	if sol.Value(-1) != 0 || sol.Value(5) != 0 {
		t.Error("out-of-range Value should be 0")
	}
	if sol.Value(1) != 2 {
		t.Error("Value(1) should be 2")
	}
}

func TestIterationLimit(t *testing.T) {
	p := New(Maximize)
	x := p.AddVariable(1, "x")
	y := p.AddVariable(1, "y")
	mustConstrain(t, p, []Term{{x, 1}, {y, 1}}, LessEq, 10)
	sol := p.SolveWithOptions(Options{MaxIterations: -1})
	// A negative budget means no pivots are allowed; either the solver
	// reports the limit or the trivial basis happened to be optimal.
	if sol.Status != StatusIterLimit && sol.Status != StatusOptimal {
		t.Errorf("status = %v", sol.Status)
	}
}

// Property: for random feasible bounded problems of the knapsack-like form
// max c^T x st sum(x) <= B, x <= u, the simplex objective matches the greedy
// optimum (sort by coefficient, fill greedily).
func TestRandomBoundedKnapsackAgainstGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		budget := 1 + rng.Float64()*20
		coefs := make([]float64, n)
		uppers := make([]float64, n)
		p := New(Maximize)
		for i := 0; i < n; i++ {
			coefs[i] = rng.Float64() * 10
			uppers[i] = rng.Float64() * 5
			p.AddBoundedVariable(coefs[i], uppers[i], "")
		}
		terms := make([]Term, n)
		for i := range terms {
			terms[i] = Term{Var: i, Coef: 1}
		}
		if err := p.AddConstraint(terms, LessEq, budget, "budget"); err != nil {
			return false
		}
		sol := p.Solve()
		if sol.Status != StatusOptimal {
			return false
		}
		// Greedy fractional knapsack with unit weights.
		type item struct{ c, u float64 }
		items := make([]item, n)
		for i := range items {
			items[i] = item{coefs[i], uppers[i]}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if items[j].c > items[i].c {
					items[i], items[j] = items[j], items[i]
				}
			}
		}
		remaining := budget
		want := 0.0
		for _, it := range items {
			take := math.Min(remaining, it.u)
			want += take * it.c
			remaining -= take
			if remaining <= 0 {
				break
			}
		}
		return approxEq(sol.Objective, want, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func mustConstrain(t *testing.T, p *Problem, terms []Term, op ConstraintOp, rhs float64) {
	t.Helper()
	if err := p.AddConstraint(terms, op, rhs, ""); err != nil {
		t.Fatalf("AddConstraint: %v", err)
	}
}
