package lp

import "math"

// Variable status in the bounded-variable simplex.
const (
	vsAtLower uint8 = iota
	vsAtUpper
	vsBasic
)

// Basis is an opaque snapshot of a simplex basis: which standard-form
// variable is basic in each row and which nonbasic variables sit at their
// upper bound. A Basis returned by one solve can be passed as
// Options.WarmStart to a later solve of a problem with the same structure
// (same variables and constraint rows; bounds, costs and right-hand sides may
// differ), which typically re-solves in a handful of pivots instead of from
// scratch.
type Basis struct {
	m, nStd int
	// basic[i] >= 0 is the standard-form variable basic in row slot i;
	// -(r+1) encodes the phase-1 artificial of row r left basic at zero.
	basic []int
	// atUpper[j] marks nonbasic standard-form variables at their upper bound.
	atUpper []bool
}

// Clone returns an independent copy of the basis.
func (b *Basis) Clone() *Basis {
	if b == nil {
		return nil
	}
	return &Basis{
		m:       b.m,
		nStd:    b.nStd,
		basic:   append([]int(nil), b.basic...),
		atUpper: append([]bool(nil), b.atUpper...),
	}
}

// Solver is a reusable sparse revised-simplex solver. It keeps the
// standard-form matrix, the basis factorisation and all work buffers alive
// across solves, so repeated solves of the same (or same-structured) problem
// perform no per-solve allocations beyond the returned Solution.
//
// A Solver is not safe for concurrent use; hot paths hold one per goroutine.
type Solver struct {
	prob    *Problem
	version int

	sf stdForm

	status  []uint8 // len nStd+m, status of every variable incl. artificials
	basic   []int   // len m, variable basic in each row slot
	artSign []float64
	binv    []float64 // m x m row-major inverse of the basis matrix
	xb      []float64 // values of the basic variables

	// haveBasis marks binv/basic/status as a consistent factorisation of the
	// current structure, enabling zero-refactorisation warm starts when the
	// caller passes back the basis of the previous solve.
	haveBasis bool

	// artsOpen is true while phase 1 has artificial variables with open
	// bounds. Once they are pinned to zero, pricing and reduced-cost updates
	// skip the artificial block entirely (they can never re-enter).
	artsOpen bool

	// priceStart rotates the partial-pricing window across pivots.
	priceStart int

	// Scratch buffers.
	y, w, r []float64
	fac     []float64
	cost1   []float64
	tmpB    []int
	tmpS    []uint8

	// Per-solve depth counters, reset at Solve entry and published on the
	// returned Solution.Stats. statWarm records warm-basis acceptance.
	statRefactors int
	statWarm      bool
}

// NewSolver returns an empty reusable solver.
func NewSolver() *Solver { return &Solver{} }

// Numerical constants of the solver. feasTol is the absolute bound-violation
// tolerance, pivTol the smallest acceptable pivot magnitude, and infeasTol
// the phase-1 threshold under which residual artificial value is considered
// zero (matching the dense tableau solver).
const (
	feasTol    = 1e-7
	pivTol     = 1e-8
	infeasTol  = 1e-6
	refactorEv = 256
)

// Solve solves the problem with the given options, reusing the solver's
// buffers and factorisation where possible.
func (s *Solver) Solve(p *Problem, opts Options) Solution {
	if opts.Dense {
		return solveDense(p, opts)
	}
	s.statRefactors, s.statWarm = 0, false
	if s.prob != p || s.version != p.version {
		s.sf.build(p)
		s.prob, s.version = p, p.version
		s.haveBasis = false
		s.resizeState()
	}
	s.sf.refresh(p)
	m, nStd := s.sf.m, s.sf.nStd
	if opts.MaxIterations == 0 {
		// Sparse-aware pivot budget: scale with the native row/column counts
		// and the stored nonzeros. The dense solver's formula counted one
		// synthetic row per finite bound, which inflated the budget (and the
		// Bland's-rule switchover point) far beyond what bounded-variable
		// pivoting needs.
		opts.MaxIterations = 100*(m+nStd+10) + s.sf.nnz()
	}
	opts = opts.withDefaults(m, nStd)
	tol := opts.Tolerance
	if opts.Deterministic {
		// History-free pricing: the rotating window otherwise carries the
		// previous solve's position into this one.
		s.priceStart = 0
	}

	// Bound sanity: crossed bounds make the problem trivially infeasible.
	for j := 0; j < nStd; j++ {
		if s.sf.lower[j] > s.sf.upper[j]+feasTol {
			return s.done(Solution{Status: StatusInfeasible})
		}
	}
	if opts.MaxIterations < 0 {
		return s.done(Solution{Status: StatusIterLimit})
	}
	budget := opts.MaxIterations
	totalIters := 0

	warmed := false
	if opts.WarmStart != nil && s.installWarm(opts.WarmStart, opts.Deterministic) {
		if s.primalFeasible() {
			warmed = true
		} else if s.dualFeasible(tol) {
			// Bounds or right-hand sides moved under an optimal basis: the
			// textbook dual-simplex case. Restore primal feasibility while
			// keeping dual feasibility; on success phase 2 below terminates in
			// few (often zero) pivots.
			outcome, iters := s.dual(tol, dualBudget(m, budget))
			totalIters += iters
			switch outcome {
			case dualRestored:
				warmed = true
			case dualInfeasible:
				s.haveBasis = true
				s.statWarm = true
				return s.done(Solution{Status: StatusInfeasible, Iterations: totalIters})
			}
		}
	}
	s.statWarm = warmed
	if !warmed {
		if s.coldStart() {
			status, iters := s.primal(s.cost1, tol, budget-totalIters)
			totalIters += iters
			if status == StatusIterLimit {
				return s.done(Solution{Status: StatusIterLimit, Iterations: totalIters})
			}
			if status == StatusUnbounded {
				// Phase 1 minimises a sum of non-negative variables and cannot
				// be unbounded; reaching here means numerical trouble, which
				// we surface as an iteration limit rather than a wrong answer.
				return s.done(Solution{Status: StatusIterLimit, Iterations: totalIters})
			}
			if s.phase1Infeasibility() > infeasTol {
				s.haveBasis = true
				return s.done(Solution{Status: StatusInfeasible, Iterations: totalIters})
			}
		}
		s.closeArtificials()
	}

	status, iters := s.primal(s.sf.cost, tol, budget-totalIters)
	totalIters += iters
	s.haveBasis = true
	if status != StatusOptimal {
		return s.done(Solution{Status: status, Iterations: totalIters})
	}
	return s.done(s.extract(totalIters))
}

// done stamps the per-solve depth counters onto the outgoing solution.
func (s *Solver) done(sol Solution) Solution {
	sol.Stats = Stats{
		Iterations:       sol.Iterations,
		Refactorisations: s.statRefactors,
		Warm:             s.statWarm,
	}
	return sol
}

// dualBudget caps the dual-simplex repair phase: warm starts that need more
// pivots than this are cheaper to re-solve from scratch.
func dualBudget(m, budget int) int {
	cap := 2*m + 200
	if cap > budget {
		cap = budget
	}
	return cap
}

func (s *Solver) resizeState() {
	m, nStd := s.sf.m, s.sf.nStd
	s.status = resizeUint8(s.status, nStd+m)
	s.basic = resizeInt(s.basic, m)
	s.artSign = resizeFloat(s.artSign, m)
	s.binv = resizeFloat(s.binv, m*m)
	s.xb = resizeFloat(s.xb, m)
	s.y = resizeFloat(s.y, m)
	s.w = resizeFloat(s.w, m)
	s.r = resizeFloat(s.r, m)
	s.fac = resizeFloat(s.fac, m*m)
	s.cost1 = resizeFloat(s.cost1, nStd+m)
	for j := 0; j < nStd; j++ {
		s.cost1[j] = 0
	}
	for j := nStd; j < nStd+m; j++ {
		s.cost1[j] = 1
	}
	s.tmpB = resizeInt(s.tmpB, m)
	s.tmpS = resizeUint8(s.tmpS, nStd+m)
}

// columnOf returns the sparse column of any standard-form variable, mapping
// artificial indices to their single ±1 entry (materialised in the scratch
// pair artRow/artVal to avoid allocation).
func (s *Solver) columnOf(j int, artRow *[1]int32, artVal *[1]float64) ([]int32, []float64) {
	if j < s.sf.nStd {
		return s.sf.column(j)
	}
	artRow[0] = int32(j - s.sf.nStd)
	artVal[0] = s.artSign[j-s.sf.nStd]
	return artRow[:], artVal[:]
}

// boundValue returns the value of a nonbasic variable.
func (s *Solver) boundValue(j int) float64 {
	if s.status[j] == vsAtUpper {
		return s.sf.upper[j]
	}
	return s.sf.lower[j]
}

// computeXB recomputes the basic values from the current basis inverse:
// x_B = B^{-1} (b - N x_N).
func (s *Solver) computeXB() {
	m := s.sf.m
	copy(s.r, s.sf.b[:m])
	for j := 0; j < s.sf.nStd; j++ {
		if s.status[j] == vsBasic {
			continue
		}
		v := s.boundValue(j)
		if v == 0 {
			continue
		}
		rows, vals := s.sf.column(j)
		for k, row := range rows {
			s.r[row] -= vals[k] * v
		}
	}
	// Nonbasic artificials are always fixed at zero and contribute nothing.
	for i := 0; i < m; i++ {
		row := s.binv[i*m : (i+1)*m]
		acc := 0.0
		for k, rv := range s.r {
			acc += row[k] * rv
		}
		s.xb[i] = acc
	}
}

// refactor rebuilds binv from the current basis by Gauss-Jordan elimination
// with partial pivoting. It reports false when the basis matrix is singular.
func (s *Solver) refactor() bool {
	s.statRefactors++
	m := s.sf.m
	for i := range s.fac[:m*m] {
		s.fac[i] = 0
	}
	for i := range s.binv[:m*m] {
		s.binv[i] = 0
	}
	var artRow [1]int32
	var artVal [1]float64
	for col, v := range s.basic {
		rows, vals := s.columnOf(v, &artRow, &artVal)
		for k, row := range rows {
			s.fac[int(row)*m+col] = vals[k]
		}
	}
	for i := 0; i < m; i++ {
		s.binv[i*m+i] = 1
	}
	for col := 0; col < m; col++ {
		// Partial pivoting on rows col..m-1.
		piv, pivRow := 0.0, -1
		for i := col; i < m; i++ {
			if a := math.Abs(s.fac[i*m+col]); a > piv {
				piv, pivRow = a, i
			}
		}
		if piv < 1e-12 {
			return false
		}
		if pivRow != col {
			swapRows(s.fac, m, col, pivRow)
			swapRows(s.binv, m, col, pivRow)
		}
		inv := 1 / s.fac[col*m+col]
		for k := 0; k < m; k++ {
			s.fac[col*m+k] *= inv
			s.binv[col*m+k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == col {
				continue
			}
			f := s.fac[i*m+col]
			if f == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				s.fac[i*m+k] -= f * s.fac[col*m+k]
				s.binv[i*m+k] -= f * s.binv[col*m+k]
			}
		}
	}
	return true
}

func swapRows(a []float64, m, i, j int) {
	ri, rj := a[i*m:(i+1)*m], a[j*m:(j+1)*m]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// installWarm loads a basis snapshot, reusing the cached factorisation when
// the snapshot matches the solver's current basis exactly. It reports false
// (leaving the solver ready for a cold start) when the snapshot does not fit
// the problem structure or its basis matrix is singular. With forceRefactor
// the matching-basis fast path is disabled and the inverse is always rebuilt
// from the snapshot, so the numerical state depends only on the snapshot and
// the problem data, not on the solver's history (Options.Deterministic).
func (s *Solver) installWarm(ws *Basis, forceRefactor bool) bool {
	m, nStd := s.sf.m, s.sf.nStd
	if ws.m != m || ws.nStd != nStd || len(ws.basic) != m || len(ws.atUpper) != nStd {
		return false
	}
	tb, ts := s.tmpB[:m], s.tmpS[:nStd+m]
	for j := 0; j < nStd; j++ {
		if ws.atUpper[j] && !math.IsInf(s.sf.upper[j], 1) {
			ts[j] = vsAtUpper
		} else {
			ts[j] = vsAtLower
		}
	}
	for j := nStd; j < nStd+m; j++ {
		ts[j] = vsAtLower
	}
	for i, code := range ws.basic {
		v := code
		if code < 0 {
			r := -code - 1
			if r >= m {
				return false
			}
			v = nStd + r
		} else if v >= nStd {
			return false
		}
		if ts[v] == vsBasic {
			return false // duplicate basic variable
		}
		ts[v] = vsBasic
		tb[i] = v
	}

	same := s.haveBasis && !forceRefactor
	if same {
		for i := range tb {
			if s.basic[i] != tb[i] {
				same = false
				break
			}
		}
	}
	if same {
		for j := range ts {
			if (s.status[j] == vsBasic) != (ts[j] == vsBasic) {
				same = false
				break
			}
		}
	}
	copy(s.basic, tb)
	copy(s.status, ts)
	for _, v := range s.basic {
		// Re-installed artificials use the canonical +e_row column; the sign
		// chosen at their original cold start only mattered for feasibility
		// there, and the bound check below rejects any non-zero value.
		if v >= nStd && (s.artSign[v-nStd] == 0 || !same) {
			s.artSign[v-nStd] = 1
		}
	}
	if !same {
		if !s.refactor() {
			s.haveBasis = false
			return false
		}
	}
	s.computeXB()
	s.haveBasis = true
	s.artsOpen = false // refresh pinned every artificial to [0, 0]
	return true
}

// primalFeasible reports whether every basic value lies within its bounds.
func (s *Solver) primalFeasible() bool {
	for i, v := range s.basic {
		if s.xb[i] < s.sf.lower[v]-feasTol || s.xb[i] > s.sf.upper[v]+feasTol {
			return false
		}
	}
	return true
}

// dualFeasible reports whether the reduced costs of the phase-2 objective
// satisfy the bounded-simplex optimality sign conditions for every movable
// nonbasic variable.
func (s *Solver) dualFeasible(tol float64) bool {
	s.computeY(s.sf.cost)
	lax := math.Max(tol, 1e-7)
	nTot := s.sf.nStd + s.sf.m
	for j := 0; j < nTot; j++ {
		if s.status[j] == vsBasic || s.sf.upper[j]-s.sf.lower[j] <= 0 {
			continue
		}
		d := s.reducedCost(s.sf.cost, j)
		if s.status[j] == vsAtLower && d < -lax {
			return false
		}
		if s.status[j] == vsAtUpper && d > lax {
			return false
		}
	}
	return true
}

// computeY computes the simplex multipliers y = c_B^T B^{-1}.
func (s *Solver) computeY(cost []float64) {
	m := s.sf.m
	for k := range s.y[:m] {
		s.y[k] = 0
	}
	for i, v := range s.basic {
		cb := cost[v]
		if cb == 0 {
			continue
		}
		row := s.binv[i*m : (i+1)*m]
		for k, rv := range row {
			s.y[k] += cb * rv
		}
	}
}

// reducedCost returns d_j = c_j - y^T A_j using the sparse column.
func (s *Solver) reducedCost(cost []float64, j int) float64 {
	d := cost[j]
	if j >= s.sf.nStd {
		r := j - s.sf.nStd
		return d - s.y[r]*s.artSign[r]
	}
	rows, vals := s.sf.column(j)
	for k, row := range rows {
		d -= s.y[row] * vals[k]
	}
	return d
}

// ftran computes w = B^{-1} A_j into s.w.
func (s *Solver) ftran(j int) {
	m := s.sf.m
	var artRow [1]int32
	var artVal [1]float64
	rows, vals := s.columnOf(j, &artRow, &artVal)
	for i := 0; i < m; i++ {
		row := s.binv[i*m : (i+1)*m]
		acc := 0.0
		for k, r := range rows {
			acc += row[r] * vals[k]
		}
		s.w[i] = acc
	}
}

// pivotBinv applies the rank-one basis-inverse update for an entering column
// whose FTRAN image is in s.w, pivoting on row r. The axpy is manually
// unrolled: this is the single hottest kernel of the solver (O(m^2) per
// pivot) and the Go compiler does not vectorise the straightforward loop.
func (s *Solver) pivotBinv(r int) {
	m := s.sf.m
	inv := 1 / s.w[r]
	prow := s.binv[r*m : r*m+m : r*m+m]
	for k := range prow {
		prow[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == r {
			continue
		}
		f := s.w[i]
		if f == 0 {
			continue
		}
		row := s.binv[i*m : i*m+m : i*m+m]
		k := 0
		for ; k+4 <= m; k += 4 {
			r0 := row[k] - f*prow[k]
			r1 := row[k+1] - f*prow[k+1]
			r2 := row[k+2] - f*prow[k+2]
			r3 := row[k+3] - f*prow[k+3]
			row[k], row[k+1], row[k+2], row[k+3] = r0, r1, r2, r3
		}
		for ; k < m; k++ {
			row[k] -= f * prow[k]
		}
	}
}

// coldStart installs the slack-or-artificial starting basis and reports
// whether a phase-1 run is required (some artificial starts at a strictly
// positive value).
func (s *Solver) coldStart() bool {
	m, nStd := s.sf.m, s.sf.nStd
	nTot := nStd + m
	for j := 0; j < nTot; j++ {
		s.status[j] = vsAtLower
	}
	for i := range s.binv[:m*m] {
		s.binv[i] = 0
	}
	// Residual of each row with every variable at its lower bound.
	copy(s.r, s.sf.b[:m])
	for j := 0; j < nStd; j++ {
		lo := s.sf.lower[j]
		if lo == 0 {
			continue
		}
		rows, vals := s.sf.column(j)
		for k, row := range rows {
			s.r[row] -= vals[k] * lo
		}
	}
	needPhase1 := false
	for i := 0; i < m; i++ {
		s.artSign[i] = 0
		if sc := s.sf.slackOf[i]; sc >= 0 {
			v := s.r[i] * s.sf.slackSign[i] // slackSign is ±1, so 1/sign == sign
			if v >= -feasTol {
				if v < 0 {
					v = 0
				}
				s.basic[i] = int(sc)
				s.status[sc] = vsBasic
				s.xb[i] = v
				s.binv[i*m+i] = s.sf.slackSign[i]
				continue
			}
		}
		sign := 1.0
		if s.r[i] < 0 {
			sign = -1
		}
		av := nStd + i
		s.artSign[i] = sign
		s.basic[i] = av
		s.status[av] = vsBasic
		s.xb[i] = s.r[i] * sign
		s.binv[i*m+i] = sign
		if s.xb[i] > feasTol {
			s.sf.upper[av] = math.Inf(1) // open for phase 1
			needPhase1 = true
		} else {
			s.xb[i] = 0
		}
	}
	s.haveBasis = true
	s.artsOpen = needPhase1
	return needPhase1
}

// phase1Infeasibility sums the residual value of the basic artificials.
func (s *Solver) phase1Infeasibility() float64 {
	total := 0.0
	for i, v := range s.basic {
		if v >= s.sf.nStd && s.xb[i] > 0 {
			total += s.xb[i]
		}
	}
	return total
}

// closeArtificials pins every artificial variable to zero for phase 2. Basic
// artificials may remain in the basis at value zero.
func (s *Solver) closeArtificials() {
	m, nStd := s.sf.m, s.sf.nStd
	for j := nStd; j < nStd+m; j++ {
		s.sf.upper[j] = 0
	}
	s.artsOpen = false
	for i, v := range s.basic {
		if v >= nStd {
			if s.xb[i] < 0 || s.xb[i] <= infeasTol {
				s.xb[i] = 0
			}
		}
	}
}

// primal runs the bounded-variable primal simplex minimising cost. It uses
// the Dantzig rule for speed and switches to Bland's rule halfway through the
// iteration budget, which guarantees termination on degenerate instances.
//
// Reduced costs are priced from the simplex multipliers y = c_B^T B^{-1},
// which are maintained across pivots with the O(m) rank-one update
// y' = y + d_q * (row r of the updated B^{-1}) and recomputed periodically
// to bound numerical drift.
func (s *Solver) primal(cost []float64, tol float64, maxIter int) (Status, int) {
	if maxIter <= 0 {
		return StatusIterLimit, 0
	}
	m := s.sf.m
	nTot := s.sf.nStd + m
	if !s.artsOpen {
		// Pinned artificials can never enter; skip their block entirely.
		nTot = s.sf.nStd
	}
	blandAfter := maxIter / 2
	sinceRefresh := 0
	smallPivotRetry := false
	s.computeY(cost)
	colPtr, rowIdx, colVal := s.sf.colPtr, s.sf.rowIdx, s.sf.colVal
	lower, upper := s.sf.lower, s.sf.upper
	y := s.y
	segment := nTot / 8
	if segment < 64 {
		segment = 64
	}
	if s.priceStart >= nTot {
		s.priceStart = 0
	}
	for iters := 0; iters < maxIter; {
		// Pricing: a variable at lower with negative reduced cost can
		// increase; one at upper with positive reduced cost can decrease.
		// Dantzig mode prices a rotating partial window (at least `segment`
		// columns, extended until a candidate appears; a full fruitless
		// wraparound proves optimality). Bland mode scans every column from
		// the start and takes the first eligible one, guaranteeing
		// termination on degenerate instances.
		bland := iters >= blandAfter
		entering, sigma := -1, 1.0
		enteringD := 0.0
		bestViol := tol
		for scanned := 0; scanned < nTot; scanned++ {
			j := scanned
			if !bland {
				if j = s.priceStart + scanned; j >= nTot {
					j -= nTot
				}
			}
			st := s.status[j]
			if st == vsBasic || upper[j]-lower[j] <= 0 {
				continue
			}
			var d float64
			if j < s.sf.nStd {
				d = cost[j]
				for k := colPtr[j]; k < colPtr[j+1]; k++ {
					d -= y[rowIdx[k]] * colVal[k]
				}
			} else {
				d = cost[j] - y[j-s.sf.nStd]*s.artSign[j-s.sf.nStd]
			}
			var viol float64
			if st == vsAtLower {
				viol = -d
			} else {
				viol = d
			}
			if viol > bestViol {
				entering = j
				enteringD = d
				if st == vsAtLower {
					sigma = 1
				} else {
					sigma = -1
				}
				if bland {
					break
				}
				bestViol = viol
			}
			if !bland && entering >= 0 && scanned+1 >= segment {
				break
			}
		}
		if entering < 0 {
			return StatusOptimal, iters
		}
		if s.priceStart = entering + 1; s.priceStart >= nTot {
			s.priceStart = 0
		}

		s.ftran(entering)

		// Ratio test over the basic variables plus the entering variable's own
		// bound range (a "bound flip" when that range is the binding limit).
		tMax := s.sf.upper[entering] - s.sf.lower[entering]
		bestT := tMax
		leaving := -1
		leavingToUpper := false
		for i := 0; i < m; i++ {
			delta := -sigma * s.w[i] // rate of change of xb[i] per unit step
			v := s.basic[i]
			var t float64
			var toUpper bool
			if delta > tol {
				up := s.sf.upper[v]
				if math.IsInf(up, 1) {
					continue
				}
				t = (up - s.xb[i]) / delta
				toUpper = true
			} else if delta < -tol {
				t = (s.xb[i] - s.sf.lower[v]) / (-delta)
			} else {
				continue
			}
			if t < 0 {
				t = 0
			}
			if t < bestT-tol {
				bestT, leaving, leavingToUpper = t, i, toUpper
			} else if t < bestT+tol && leaving >= 0 {
				// Tie-break: prefer the largest pivot magnitude for stability,
				// or the smallest basic variable index under Bland's rule.
				if bland {
					if v < s.basic[leaving] {
						bestT, leaving, leavingToUpper = t, i, toUpper
					}
				} else if math.Abs(s.w[i]) > math.Abs(s.w[leaving]) {
					bestT, leaving, leavingToUpper = t, i, toUpper
				}
			}
		}
		if math.IsInf(bestT, 1) {
			return StatusUnbounded, iters
		}
		iters++

		if leaving < 0 {
			// Bound flip: the entering variable traverses its whole range.
			for i := 0; i < m; i++ {
				if s.w[i] != 0 {
					s.xb[i] -= bestT * sigma * s.w[i]
				}
			}
			if s.status[entering] == vsAtLower {
				s.status[entering] = vsAtUpper
			} else {
				s.status[entering] = vsAtLower
			}
			continue
		}

		if math.Abs(s.w[leaving]) < pivTol && !smallPivotRetry {
			// Numerically tiny pivot: refactorise and re-price once before
			// accepting it, which usually selects a better column.
			if s.refactor() {
				s.computeXB()
				s.computeY(cost)
				smallPivotRetry = true
				sinceRefresh = 0
				continue
			}
		}
		smallPivotRetry = false

		for i := 0; i < m; i++ {
			if i != leaving && s.w[i] != 0 {
				s.xb[i] = s.clamped(s.xb[i]-bestT*sigma*s.w[i], s.basic[i])
			}
		}
		enteringVal := s.boundValue(entering) + sigma*bestT
		leavingVar := s.basic[leaving]
		if leavingToUpper {
			s.status[leavingVar] = vsAtUpper
		} else {
			s.status[leavingVar] = vsAtLower
		}
		s.pivotBinv(leaving)
		s.basic[leaving] = entering
		s.status[entering] = vsBasic
		s.xb[leaving] = s.clamped(enteringVal, entering)
		// Rank-one multiplier update: the entering column's reduced cost
		// must become zero, which shifts y by d_q times the new row r of
		// B^{-1}.
		if enteringD != 0 {
			rowR := s.binv[leaving*m : leaving*m+m]
			for k := range y {
				y[k] += enteringD * rowR[k]
			}
		}

		sinceRefresh++
		if sinceRefresh >= refactorEv {
			if s.refactor() {
				s.computeXB()
			}
			s.computeY(cost)
			sinceRefresh = 0
		}
	}
	return StatusIterLimit, maxIter
}

// clamped snaps tiny bound violations (numerical noise from pivoting) of
// variable v's value back onto the bound, mirroring the dense tableau's
// negative-zero clamping.
func (s *Solver) clamped(x float64, v int) float64 {
	if lo := s.sf.lower[v]; x < lo && x > lo-1e-11 {
		return lo
	}
	if up := s.sf.upper[v]; x > up && x < up+1e-11 {
		return up
	}
	return x
}

// Outcomes of the dual-simplex warm-start repair phase.
type dualOutcome int

const (
	dualRestored   dualOutcome = iota // primal feasibility restored
	dualInfeasible                    // dual unbounded: the problem is infeasible
	dualGaveUp                        // budget or numerics: fall back to cold start
)

// dual runs the bounded-variable dual simplex from a dual-feasible basis
// until primal feasibility is restored. This is the warm-start workhorse:
// after a right-hand-side or bound change the previous optimal basis stays
// dual feasible, and the number of dual pivots needed tracks the size of the
// perturbation rather than the size of the problem.
func (s *Solver) dual(tol float64, maxIter int) (dualOutcome, int) {
	m := s.sf.m
	nTot := s.sf.nStd + m
	sinceRefactor := 0
	for iters := 0; iters < maxIter; iters++ {
		// Leaving row: the most infeasible basic variable.
		r, worst, below := -1, feasTol, false
		for i, v := range s.basic {
			if d := s.sf.lower[v] - s.xb[i]; d > worst {
				r, worst, below = i, d, true
			}
			if d := s.xb[i] - s.sf.upper[v]; d > worst {
				r, worst, below = i, d, false
			}
		}
		if r < 0 {
			return dualRestored, iters
		}

		s.computeY(s.sf.cost)
		rowR := s.binv[r*m : (r+1)*m]
		var artRow [1]int32
		var artVal [1]float64

		// Entering column: among the nonbasic variables whose movement pushes
		// xb[r] toward its violated bound, pick the one with the smallest
		// |d_j / alpha_j| so the reduced costs keep their optimality signs.
		best, bestRatio, bestAlpha := -1, math.Inf(1), 0.0
		var bestSigma float64
		for j := 0; j < nTot; j++ {
			st := s.status[j]
			if st == vsBasic || s.sf.upper[j]-s.sf.lower[j] <= 0 {
				continue
			}
			rows, vals := s.columnOf(j, &artRow, &artVal)
			alpha := 0.0
			for k, row := range rows {
				alpha += rowR[row] * vals[k]
			}
			// d(xb[r])/d(x_j) = -alpha. We need xb[r] to increase when below
			// its lower bound and decrease when above its upper bound, and
			// x_j can only move up from a lower bound or down from an upper.
			sigma := 1.0
			if st == vsAtUpper {
				sigma = -1
			}
			change := -alpha * sigma // per unit of the allowed movement
			if below {
				if change <= tol {
					continue
				}
			} else {
				if change >= -tol {
					continue
				}
			}
			d := math.Abs(s.reducedCost(s.sf.cost, j))
			ratio := d / math.Abs(alpha)
			if ratio < bestRatio-tol || (ratio < bestRatio+tol && math.Abs(alpha) > math.Abs(bestAlpha)) {
				best, bestRatio, bestAlpha, bestSigma = j, ratio, alpha, sigma
			}
		}
		if best < 0 {
			// No column can reduce the infeasibility: the row proves the
			// problem (with the current bounds) infeasible.
			return dualInfeasible, iters
		}

		s.ftran(best)
		if math.Abs(s.w[r]) < pivTol {
			return dualGaveUp, iters
		}
		target := s.sf.upper[s.basic[r]]
		if below {
			target = s.sf.lower[s.basic[r]]
		}
		t := (s.xb[r] - target) / (bestSigma * s.w[r])
		if t < 0 {
			t = 0
		}
		for i := 0; i < m; i++ {
			if i != r && s.w[i] != 0 {
				s.xb[i] = s.clamped(s.xb[i]-t*bestSigma*s.w[i], s.basic[i])
			}
		}
		enteringVal := s.boundValue(best) + bestSigma*t
		leavingVar := s.basic[r]
		if below {
			s.status[leavingVar] = vsAtLower
		} else {
			s.status[leavingVar] = vsAtUpper
		}
		s.pivotBinv(r)
		s.basic[r] = best
		s.status[best] = vsBasic
		s.xb[r] = s.clamped(enteringVal, best)

		sinceRefactor++
		if sinceRefactor >= refactorEv {
			if s.refactor() {
				s.computeXB()
			}
			sinceRefactor = 0
		}
	}
	return dualGaveUp, maxIter
}

// extract maps the basis back to the original problem space.
func (s *Solver) extract(iters int) Solution {
	p := s.prob
	n := s.sf.nStruct
	values := make([]float64, n)
	for j := 0; j < n; j++ {
		if s.status[j] != vsBasic {
			values[j] = s.boundValue(j)
		}
	}
	for i, v := range s.basic {
		if v < n {
			values[v] = s.xb[i]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.objective[j] * values[j]
	}
	return Solution{
		Status:     StatusOptimal,
		Objective:  obj,
		Values:     values,
		Iterations: iters,
		Basis:      s.exportBasis(),
	}
}

// exportBasis snapshots the current basis for warm-starting a later solve.
func (s *Solver) exportBasis() *Basis {
	m, nStd := s.sf.m, s.sf.nStd
	b := &Basis{
		m:       m,
		nStd:    nStd,
		basic:   make([]int, m),
		atUpper: make([]bool, nStd),
	}
	for i, v := range s.basic {
		if v >= nStd {
			b.basic[i] = -(v - nStd + 1)
		} else {
			b.basic[i] = v
		}
	}
	for j := 0; j < nStd; j++ {
		b.atUpper[j] = s.status[j] == vsAtUpper
	}
	return b
}

func resizeInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeUint8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}
