package lp

import (
	"math"
)

// tableau is the dense simplex tableau: constraint matrix rows with slack,
// surplus and artificial columns appended, plus the phase-1 and phase-2
// objective rows.
type tableau struct {
	m int // number of constraint rows
	n int // number of structural + slack/surplus columns (excluding artificials)

	a     [][]float64 // m x totalCols coefficient matrix
	b     []float64   // m right-hand sides (kept non-negative)
	basis []int       // column currently basic in each row

	numStructural int   // columns 0..numStructural-1 are original variables
	artificial    []int // artificial column index per row, -1 if none

	objective []float64 // phase-2 cost per column (minimisation), structural part only
	sense     Sense
	totalCols int
}

// newTableau converts a Problem into standard equality form with
// non-negative right-hand sides. Finite upper bounds become explicit rows.
func newTableau(p *Problem) *tableau {
	// Count rows: constraints plus one per finite upper bound.
	var boundRows int
	for _, u := range p.upper {
		if !math.IsInf(u, 1) {
			boundRows++
		}
	}
	m := len(p.rows) + boundRows

	// Column layout: [structural | slack/surplus | artificial].
	numStructural := len(p.objective)

	type rowSpec struct {
		terms []Term
		op    ConstraintOp
		rhs   float64
	}
	specs := make([]rowSpec, 0, m)
	for _, r := range p.rows {
		specs = append(specs, rowSpec{terms: r.Terms, op: r.Op, rhs: r.RHS})
	}
	for v, u := range p.upper {
		if !math.IsInf(u, 1) {
			specs = append(specs, rowSpec{terms: []Term{{Var: v, Coef: 1}}, op: LessEq, rhs: u})
		}
	}

	// One slack or surplus column for every <= or >= row; artificials are
	// assigned after we know how many slack columns exist.
	slackCount := 0
	for _, s := range specs {
		if s.op == LessEq || s.op == GreaterEq {
			slackCount++
		}
	}
	artStart := numStructural + slackCount

	t := &tableau{
		m:             m,
		numStructural: numStructural,
		sense:         p.sense,
		basis:         make([]int, m),
		artificial:    make([]int, m),
		b:             make([]float64, m),
	}

	// Pre-size: artificial columns at most one per row.
	t.totalCols = artStart + m
	t.n = artStart
	t.a = make([][]float64, m)
	for i := range t.a {
		t.a[i] = make([]float64, t.totalCols)
	}

	slackIdx := numStructural
	artIdx := artStart
	for i, s := range specs {
		row := t.a[i]
		rhs := s.rhs
		sign := 1.0
		op := s.op
		if rhs < 0 {
			// Normalise to a non-negative right-hand side.
			sign = -1
			rhs = -rhs
			switch op {
			case LessEq:
				op = GreaterEq
			case GreaterEq:
				op = LessEq
			}
		}
		for _, term := range s.terms {
			row[term.Var] += sign * term.Coef
		}
		t.b[i] = rhs
		t.artificial[i] = -1
		switch op {
		case LessEq:
			row[slackIdx] = 1
			t.basis[i] = slackIdx
			slackIdx++
		case GreaterEq:
			row[slackIdx] = -1
			slackIdx++
			row[artIdx] = 1
			t.basis[i] = artIdx
			t.artificial[i] = artIdx
			artIdx++
		case Equal:
			row[artIdx] = 1
			t.basis[i] = artIdx
			t.artificial[i] = artIdx
			artIdx++
		}
	}
	// Shrink unused artificial columns.
	t.totalCols = artIdx

	// Phase-2 objective as a minimisation over structural columns.
	t.objective = make([]float64, t.totalCols)
	for v, c := range p.objective {
		if p.sense == Maximize {
			t.objective[v] = -c
		} else {
			t.objective[v] = c
		}
	}
	return t
}

// solve runs the two-phase simplex and maps the result back to the original
// problem space.
func (t *tableau) solve(opts Options) Solution {
	tol := opts.Tolerance
	iterBudget := opts.MaxIterations

	// Phase 1: minimise the sum of artificial variables if any are basic.
	needPhase1 := false
	for _, a := range t.artificial {
		if a >= 0 {
			needPhase1 = true
			break
		}
	}
	totalIters := 0
	if needPhase1 {
		phase1Cost := make([]float64, t.totalCols)
		for _, a := range t.artificial {
			if a >= 0 {
				phase1Cost[a] = 1
			}
		}
		status, iters := t.optimize(phase1Cost, tol, iterBudget)
		totalIters += iters
		if status == StatusIterLimit {
			return Solution{Status: StatusIterLimit, Iterations: totalIters}
		}
		// Feasible only if all artificials are (numerically) zero.
		if t.phase1Value(phase1Cost) > 1e-6 {
			return Solution{Status: StatusInfeasible, Iterations: totalIters}
		}
		t.driveOutArtificials(tol)
	}

	// Phase 2: optimise the real objective, forbidding artificial columns.
	cost := make([]float64, t.totalCols)
	copy(cost, t.objective)
	forbidden := make([]bool, t.totalCols)
	for _, a := range t.artificial {
		if a >= 0 {
			forbidden[a] = true
		}
	}
	status, iters := t.optimizeRestricted(cost, forbidden, tol, iterBudget-totalIters)
	totalIters += iters
	if status == StatusIterLimit || status == StatusUnbounded {
		return Solution{Status: status, Iterations: totalIters}
	}

	values := make([]float64, t.numStructural)
	for i, col := range t.basis {
		if col < t.numStructural {
			values[col] = t.b[i]
		}
	}
	obj := 0.0
	for v := 0; v < t.numStructural; v++ {
		obj += t.objective[v] * values[v]
	}
	if t.sense == Maximize {
		obj = -obj
	}
	return Solution{Status: StatusOptimal, Objective: obj, Values: values, Iterations: totalIters}
}

// phase1Value returns the current value of the phase-1 objective.
func (t *tableau) phase1Value(cost []float64) float64 {
	val := 0.0
	for i, col := range t.basis {
		val += cost[col] * t.b[i]
	}
	return val
}

// driveOutArtificials pivots basic artificial variables out of the basis
// when possible so that phase 2 starts from a clean basis.
func (t *tableau) driveOutArtificials(tol float64) {
	for i := 0; i < t.m; i++ {
		col := t.basis[i]
		if t.artificial[i] < 0 && !t.isArtificialColumn(col) {
			continue
		}
		if !t.isArtificialColumn(col) {
			continue
		}
		// Find a non-artificial column with a non-zero coefficient in this
		// row to pivot in.
		pivoted := false
		for j := 0; j < t.n; j++ {
			if math.Abs(t.a[i][j]) > tol {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Row is redundant (all zeros): the artificial stays basic at
			// value zero, which is harmless as long as it never re-enters.
			t.b[i] = 0
		}
	}
}

func (t *tableau) isArtificialColumn(col int) bool {
	return col >= t.n
}

// optimize runs primal simplex minimising the given cost vector.
func (t *tableau) optimize(cost []float64, tol float64, maxIter int) (Status, int) {
	return t.optimizeRestricted(cost, nil, tol, maxIter)
}

// optimizeRestricted runs primal simplex minimising cost, never letting a
// forbidden column enter the basis.
func (t *tableau) optimizeRestricted(cost []float64, forbidden []bool, tol float64, maxIter int) (Status, int) {
	if maxIter <= 0 {
		return StatusIterLimit, 0
	}
	// reduced[j] = cost[j] - cB^T B^{-1} A_j, maintained implicitly via the
	// tableau: because rows are kept in B^{-1}A form, the reduced cost is
	// cost[j] - sum_i cost[basis[i]] * a[i][j]. It is updated incrementally
	// after every pivot (O(cols)) and recomputed from scratch periodically
	// to bound numerical drift.
	reduced := make([]float64, t.totalCols)
	computeReduced := func() {
		copy(reduced, cost)
		for i, col := range t.basis {
			cb := cost[col]
			if cb == 0 {
				continue
			}
			row := t.a[i]
			for j := 0; j < t.totalCols; j++ {
				reduced[j] -= cb * row[j]
			}
		}
	}
	computeReduced()
	const refreshEvery = 256

	// Dantzig rule for speed; switch to Bland's rule if we appear to stall,
	// which guarantees termination.
	blandAfter := maxIter / 2
	iters := 0
	for ; iters < maxIter; iters++ {
		// Entering column.
		entering := -1
		if iters < blandAfter {
			best := -tol
			for j := 0; j < t.totalCols; j++ {
				if forbidden != nil && forbidden[j] {
					continue
				}
				if reduced[j] < best {
					best = reduced[j]
					entering = j
				}
			}
		} else {
			for j := 0; j < t.totalCols; j++ {
				if forbidden != nil && forbidden[j] {
					continue
				}
				if reduced[j] < -tol {
					entering = j
					break
				}
			}
		}
		if entering < 0 {
			return StatusOptimal, iters
		}

		// Ratio test for the leaving row.
		leaving := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][entering]
			if aij <= tol {
				continue
			}
			ratio := t.b[i] / aij
			if ratio < bestRatio-tol || (ratio < bestRatio+tol && (leaving < 0 || t.basis[i] < t.basis[leaving])) {
				bestRatio = ratio
				leaving = i
			}
		}
		if leaving < 0 {
			return StatusUnbounded, iters
		}
		t.pivot(leaving, entering)
		if (iters+1)%refreshEvery == 0 {
			computeReduced()
			continue
		}
		// Incremental reduced-cost update: after the pivot the entering
		// column must have reduced cost zero, and every other column j
		// changes by -reduced[entering] * a[leavingRow][j] (with the pivot
		// row already normalised by the pivot element).
		factor := reduced[entering]
		prow := t.a[leaving]
		for j := 0; j < t.totalCols; j++ {
			reduced[j] -= factor * prow[j]
		}
		reduced[entering] = 0
	}
	return StatusIterLimit, iters
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the basis.
func (t *tableau) pivot(row, col int) {
	pivotVal := t.a[row][col]
	inv := 1 / pivotVal
	prow := t.a[row]
	for j := 0; j < t.totalCols; j++ {
		prow[j] *= inv
	}
	t.b[row] *= inv

	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		factor := t.a[i][col]
		if factor == 0 {
			continue
		}
		irow := t.a[i]
		for j := 0; j < t.totalCols; j++ {
			irow[j] -= factor * prow[j]
		}
		t.b[i] -= factor * t.b[row]
		if t.b[i] < 0 && t.b[i] > -1e-11 {
			t.b[i] = 0
		}
	}
	t.basis[row] = col
}
