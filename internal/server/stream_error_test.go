package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netrecovery/internal/wire"
)

// streamRaw posts a body to /v1/plan/stream and returns the status,
// content type and full stream text.
func streamRaw(t *testing.T, ts *httptest.Server, body []byte) (int, string, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/plan/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(raw)
}

// extractErrorFrame finds the terminal error event in a stream and decodes
// its payload.
func extractErrorFrame(t *testing.T, text string) wire.Error {
	t.Helper()
	idx := strings.Index(text, "event: error\ndata: ")
	if idx < 0 {
		t.Fatalf("stream has no error event:\n%s", text)
	}
	payload := text[idx+len("event: error\ndata: "):]
	if nl := strings.Index(payload, "\n"); nl >= 0 {
		payload = payload[:nl]
	}
	var werr wire.Error
	if err := json.Unmarshal([]byte(payload), &werr); err != nil {
		t.Fatalf("error frame is not a wire.Error: %v\n%s", err, payload)
	}
	return werr
}

// TestPlanStreamErrorFrame: once the SSE handler has flushed its 200 status
// it can no longer change the status code, so failures surface as a terminal
// `event: error` frame instead. Both an unknown algorithm and a malformed
// scenario must produce one.
func TestPlanStreamErrorFrame(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	t.Run("unknown algorithm", func(t *testing.T) {
		body := planRequestBody(t, "NO-SUCH-ALG", wire.SolveOptions{NoCache: true})
		code, ctype, text := streamRaw(t, ts, body)
		if code != http.StatusOK || ctype != "text/event-stream" {
			t.Fatalf("status %d type %q", code, ctype)
		}
		werr := extractErrorFrame(t, text)
		if !strings.Contains(werr.Error, "NO-SUCH-ALG") {
			t.Errorf("error frame %q does not name the algorithm", werr.Error)
		}
		if strings.Contains(text, "event: plan") {
			t.Errorf("failed stream still emitted a plan event:\n%s", text)
		}
	})

	t.Run("bad scenario", func(t *testing.T) {
		sc := testScenarioJSON()
		sc.Links[0].To = 99 // dangling endpoint: scenario build fails post-flush
		raw, err := json.Marshal(wire.PlanRequest{Scenario: sc, Options: wire.SolveOptions{NoCache: true}})
		if err != nil {
			t.Fatal(err)
		}
		code, _, text := streamRaw(t, ts, raw)
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		werr := extractErrorFrame(t, text)
		if werr.Error == "" {
			t.Error("error frame has empty message")
		}
		if strings.Contains(text, "event: plan") {
			t.Errorf("failed stream still emitted a plan event:\n%s", text)
		}
	})

	// The error frames above must be counted as request errors.
	metrics := fetchMetrics(t, ts)
	if !strings.Contains(metrics, "nrserved_errors_total 2") {
		t.Errorf("stream errors not counted in nrserved_errors_total:\n%s", metrics)
	}
}

// TestPlanStreamClientCancel: a client dropping the connection mid-solve
// cancels the solve; the handler emits a terminal error frame (visible only
// to the recorder at that point) and releases its stream slot.
func TestPlanStreamClientCancel(t *testing.T) {
	srv := New(Config{})

	g := &gateState{started: make(chan struct{}, 1), release: make(chan struct{})}
	gate.Store(g)
	defer gate.Store(nil)
	defer close(g.release)

	ctx, cancel := context.WithCancel(context.Background())
	body := planRequestBody(t, "GATED-test", wire.SolveOptions{NoCache: true})
	req := httptest.NewRequest(http.MethodPost, "/v1/plan/stream", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()

	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Handler().ServeHTTP(rec, req)
	}()

	<-g.started
	if got := srv.sseStreams.Load(); got != 1 {
		t.Fatalf("open streams mid-solve = %d, want 1", got)
	}
	cancel() // client goes away
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after client cancellation")
	}

	werr := extractErrorFrame(t, rec.Body.String())
	if !strings.Contains(werr.Error, "cancel") {
		t.Errorf("error frame %q does not mention cancellation", werr.Error)
	}
	if got := srv.sseStreams.Load(); got != 0 {
		t.Errorf("stream slot leaked: %d open after handler returned", got)
	}
}
