package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"netrecovery/internal/degrade"
	"netrecovery/internal/obs"
	"netrecovery/internal/wire"
)

// waitTrace polls tr's store until a trace rooted at root seals. The root
// span ends after the HTTP response is written, so a client can observe
// the response a beat before the trace lands in the ring.
func waitTrace(t *testing.T, tr *obs.Tracer, root string) obs.TraceDetail {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, sum := range tr.Store().List() {
			if sum.Root != root {
				continue
			}
			if det, ok := tr.Store().Get(sum.TraceID); ok {
				return det
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no trace rooted at %q sealed within 2s", root)
	return obs.TraceDetail{}
}

func findSpan(t *testing.T, det obs.TraceDetail, name string) obs.SpanSnapshot {
	t.Helper()
	for _, sp := range det.Spans {
		if sp.Name == name {
			return sp
		}
	}
	names := make([]string, len(det.Spans))
	for i, sp := range det.Spans {
		names[i] = sp.Name
	}
	t.Fatalf("trace %s has no span %q (spans: %v)", det.TraceID, name, names)
	return obs.SpanSnapshot{}
}

func spanAttr(sp obs.SpanSnapshot, key string) (string, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// TestTraceShowsFailedStageAndFallback is the chaos-suite trace check:
// with the primary solver failing outright, the sealed trace must tell
// the degradation story end to end — the exact stage that errored, the
// fallback stage that served, and solver-depth attributes on the solve
// span that produced the answer. The opt-in timing block mirrors the
// same trace back to the client.
func TestTraceShowsFailedStageAndFallback(t *testing.T) {
	flakyFail.Store(true)
	defer flakyFail.Store(false)

	tr := obs.NewTracer(obs.Config{Seed: 11})
	tr.Enable()
	defer tr.Disable()

	srv := New(Config{
		Tracer: tr,
		Retry:  degrade.RetryPolicy{MaxAttempts: 1},
		// Keep the breaker out of this test's way.
		Breaker: degrade.BreakerConfig{ConsecutiveFailures: 1000, MinSamples: 1000},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := planRequestBody(t, "FLAKY-test", wire.SolveOptions{DeadlineMS: 600, Timing: true})
	resp, raw := postPlanRaw(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d body = %s", resp.StatusCode, raw)
	}
	var dr degradedResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Degradation == nil || dr.Degradation.ServedBy != "fallback_isp" {
		t.Fatalf("degradation = %+v, want served_by fallback_isp", dr.Degradation)
	}

	det := waitTrace(t, tr, "/v1/plan")
	if len(det.Spans) < 5 {
		t.Fatalf("trace has %d spans, want >= 5: %+v", len(det.Spans), det.Spans)
	}

	adm := findSpan(t, det, "admission.wait")
	if v, _ := spanAttr(adm, "outcome"); v != "immediate" {
		t.Fatalf("admission.wait outcome = %q, want immediate", v)
	}
	findSpan(t, det, "cache.lookup")

	primary := findSpan(t, det, "stage.primary")
	if v, _ := spanAttr(primary, "outcome"); v != "error" {
		t.Fatalf("stage.primary outcome = %q, want error", v)
	}
	if primary.Err == "" {
		t.Fatal("stage.primary span records no error")
	}
	fallback := findSpan(t, det, "stage.fallback_isp")
	if v, _ := spanAttr(fallback, "outcome"); v != "served" {
		t.Fatalf("stage.fallback_isp outcome = %q, want served", v)
	}

	// The fallback's solve span carries solver-depth attributes from the
	// heuristics stats hook.
	var solved bool
	for _, sp := range det.Spans {
		if sp.Name != "solve" {
			continue
		}
		if alg, _ := spanAttr(sp, "algorithm"); alg != "ISP" {
			continue
		}
		if _, ok := spanAttr(sp, "isp_iterations"); !ok {
			t.Fatalf("fallback solve span lacks isp_iterations: %+v", sp.Attrs)
		}
		if _, ok := spanAttr(sp, "lp_calls"); !ok {
			t.Fatalf("fallback solve span lacks lp_calls: %+v", sp.Attrs)
		}
		solved = true
	}
	if !solved {
		t.Fatalf("no ISP solve span in trace: %+v", det.Spans)
	}

	// options.timing mirrored the same trace into the response.
	var timed struct {
		Timing *wire.Timing `json:"timing"`
	}
	if err := json.Unmarshal(raw, &timed); err != nil {
		t.Fatal(err)
	}
	if timed.Timing == nil {
		t.Fatal("options.timing set but response carries no timing block")
	}
	if timed.Timing.TraceID != det.TraceID {
		t.Fatalf("timing.trace_id = %q, want %q", timed.Timing.TraceID, det.TraceID)
	}
	var sawFallback bool
	for _, sp := range timed.Timing.Spans {
		if sp.Name == "stage.fallback_isp" {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatalf("timing block lacks stage.fallback_isp: %+v", timed.Timing.Spans)
	}
}

// TestDebugTracesEndpoint mounts the tracer's HTTP surface on the server
// mux and reads a sealed trace back through it.
func TestDebugTracesEndpoint(t *testing.T) {
	tr := obs.NewTracer(obs.Config{Seed: 3})
	tr.Enable()
	defer tr.Disable()

	srv := New(Config{Tracer: tr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := planRequestBody(t, "ISP", wire.SolveOptions{Fast: true})
	if code, parsed := postPlan(t, ts, body); code != http.StatusOK || parsed.Cache.Status != "miss" {
		t.Fatalf("plan: code=%d cache=%+v", code, parsed.Cache)
	}
	det := waitTrace(t, tr, "/v1/plan")

	resp, err := http.Get(ts.URL + "/debug/traces/" + det.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/{id}: %d", resp.StatusCode)
	}
	var got obs.TraceDetail
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.TraceID != det.TraceID || len(got.Spans) != len(det.Spans) {
		t.Fatalf("endpoint trace = %s (%d spans), store trace = %s (%d spans)",
			got.TraceID, len(got.Spans), det.TraceID, len(det.Spans))
	}
}
