package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netrecovery/internal/heuristics"
	"netrecovery/internal/plancache"
	"netrecovery/internal/scenario"
	"netrecovery/internal/wire"
)

// gateState lets tests hold the gated test solver inside a solve and count
// executions.
type gateState struct {
	started chan struct{} // receives one token per solve that began
	release chan struct{} // closed to let solves finish
	solves  atomic.Int32
}

var gate atomic.Pointer[gateState]

// gatedSolver blocks inside Solve until the test releases it (or the
// context dies), then repairs everything. Registered once under
// "GATED-test".
type gatedSolver struct{}

func (gatedSolver) Name() string { return "GATED-test" }

func (gatedSolver) Solve(ctx context.Context, s *scenario.Scenario) (*scenario.Plan, error) {
	g := gate.Load()
	if g != nil {
		g.solves.Add(1)
		select {
		case g.started <- struct{}{}:
		default:
		}
		select {
		case <-g.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	plan := scenario.NewPlan("GATED-test")
	plan.TotalDemand = s.Demand.TotalFlow()
	plan.SatisfiedDemand = plan.TotalDemand
	for _, v := range s.SortedBrokenNodes() {
		plan.RepairedNodes[v] = true
	}
	for _, e := range s.SortedBrokenEdges() {
		plan.RepairedEdges[e] = true
	}
	return plan, nil
}

func init() {
	heuristics.Register(heuristics.Info{
		Name:        "GATED-test",
		Description: "test-only solver that blocks until released",
		Scalability: "tests",
	}, func(heuristics.Params) heuristics.Solver { return gatedSolver{} })
}

// testScenarioJSON is a small diamond scenario in wire form.
func testScenarioJSON() wire.Scenario {
	return wire.Scenario{
		Name: "diamond",
		Nodes: []wire.Node{
			{Name: "a", X: 0, Y: 0, RepairCost: 1},
			{Name: "b", X: 1, Y: 0, RepairCost: 2},
			{Name: "c", X: 1, Y: 1, RepairCost: 3},
			{Name: "d", X: 0, Y: 1, RepairCost: 4},
		},
		Links: []wire.Link{
			{From: 0, To: 1, Capacity: 10, RepairCost: 1},
			{From: 1, To: 2, Capacity: 10, RepairCost: 2},
			{From: 2, To: 3, Capacity: 10, RepairCost: 3},
			{From: 3, To: 0, Capacity: 10, RepairCost: 4},
		},
		Demands:     []wire.Demand{{Source: 0, Target: 2, Flow: 5}},
		BrokenNodes: []int{1, 3},
		BrokenLinks: []int{0, 2},
	}
}

func planRequestBody(t *testing.T, alg string, opts wire.SolveOptions) []byte {
	t.Helper()
	raw, err := json.Marshal(wire.PlanRequest{Scenario: testScenarioJSON(), Algorithm: alg, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// rawResponse splits a /v1/plan response envelope without re-marshalling,
// so byte-level comparisons are meaningful.
type rawResponse struct {
	Plan  json.RawMessage `json:"plan"`
	Cache wire.CacheInfo  `json:"cache"`
}

func postPlan(t *testing.T, ts *httptest.Server, body []byte) (int, rawResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var parsed rawResponse
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &parsed); err != nil {
			t.Fatalf("bad response %s: %v", raw, err)
		}
	}
	return resp.StatusCode, parsed
}

// TestPlanColdThenCacheHit: the second identical request is answered from
// the cache — byte-identical plan, zero additional solver executions.
func TestPlanColdThenCacheHit(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := planRequestBody(t, "ISP", wire.SolveOptions{})
	code, first := postPlan(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("cold request: status %d", code)
	}
	if first.Cache.Status != "miss" {
		t.Fatalf("cold request cache status = %q, want miss", first.Cache.Status)
	}
	if srv.SolveCount() != 1 {
		t.Fatalf("cold request ran %d solves, want 1", srv.SolveCount())
	}

	code, second := postPlan(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("warm request: status %d", code)
	}
	if second.Cache.Status != "hit" {
		t.Fatalf("warm request cache status = %q, want hit", second.Cache.Status)
	}
	if srv.SolveCount() != 1 {
		t.Fatalf("cache hit invoked the solver: %d solves, want 1", srv.SolveCount())
	}
	if !bytes.Equal(first.Plan, second.Plan) {
		t.Fatalf("cache hit plan is not byte-identical:\n%s\nvs\n%s", first.Plan, second.Plan)
	}
	if len(first.Cache.Fingerprint) != 64 || first.Cache.Fingerprint != second.Cache.Fingerprint {
		t.Fatalf("fingerprints: %q vs %q", first.Cache.Fingerprint, second.Cache.Fingerprint)
	}
}

// TestPlanCoalescing: K concurrent identical cold requests perform exactly
// one underlying solve.
func TestPlanCoalescing(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g := &gateState{started: make(chan struct{}, 1), release: make(chan struct{})}
	gate.Store(g)
	defer gate.Store(nil)

	const K = 12
	body := planRequestBody(t, "GATED-test", wire.SolveOptions{})
	codes := make([]int, K)
	resps := make([]rawResponse, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], resps[i] = postPlan(t, ts, body)
		}(i)
	}
	// Wait for the leader to enter the solver, give the followers time to
	// coalesce behind it, then release.
	<-g.started
	time.Sleep(50 * time.Millisecond)
	close(g.release)
	wg.Wait()

	if got := g.solves.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran %d solves, want exactly 1", K, got)
	}
	coalesced := 0
	for i := 0; i < K; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(resps[i].Plan, resps[0].Plan) {
			t.Fatalf("request %d plan differs from request 0", i)
		}
		if resps[i].Cache.Status == "coalesced" {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Fatal("no request reported a coalesced cache status")
	}
}

// TestPlanClientCancellationMidSolve: cancelling the request context while
// the solver runs aborts the solve promptly with the 499-style status.
func TestPlanClientCancellationMidSolve(t *testing.T) {
	srv := New(Config{})
	g := &gateState{started: make(chan struct{}, 1), release: make(chan struct{})}
	gate.Store(g)
	defer gate.Store(nil)
	defer close(g.release)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/plan",
		bytes.NewReader(planRequestBody(t, "GATED-test", wire.SolveOptions{}))).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		srv.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	<-g.started
	start := time.Now()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after client cancellation")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to propagate", elapsed)
	}
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d", rec.Code, StatusClientClosedRequest)
	}
}

// TestPlanRequestTimeout: a solve outlasting the per-request timeout fails
// with 504.
func TestPlanRequestTimeout(t *testing.T) {
	srv := New(Config{RequestTimeout: 30 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	g := &gateState{started: make(chan struct{}, 1), release: make(chan struct{})}
	gate.Store(g)
	defer gate.Store(nil)
	defer close(g.release)

	code, _ := postPlan(t, ts, planRequestBody(t, "GATED-test", wire.SolveOptions{}))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", code)
	}
}

func TestPlanNoCacheBypass(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := planRequestBody(t, "ISP", wire.SolveOptions{NoCache: true})
	for i := 0; i < 2; i++ {
		code, resp := postPlan(t, ts, body)
		if code != http.StatusOK || resp.Cache.Status != "bypass" {
			t.Fatalf("request %d: status %d cache %q, want 200/bypass", i, code, resp.Cache.Status)
		}
	}
	if srv.SolveCount() != 2 {
		t.Fatalf("bypass requests ran %d solves, want 2", srv.SolveCount())
	}
}

// TestPlanDifferentOptionsMissSeparately: the options digest keys the cache,
// the worker count does not.
func TestPlanOptionsKeyTheCache(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, resp := postPlan(t, ts, planRequestBody(t, "ISP", wire.SolveOptions{})); code != 200 || resp.Cache.Status != "miss" {
		t.Fatalf("exact ISP: %d %q", code, resp.Cache.Status)
	}
	if code, resp := postPlan(t, ts, planRequestBody(t, "ISP", wire.SolveOptions{Fast: true})); code != 200 || resp.Cache.Status != "miss" {
		t.Fatalf("fast ISP should miss separately: %d %q", code, resp.Cache.Status)
	}
	if code, resp := postPlan(t, ts, planRequestBody(t, "ISP", wire.SolveOptions{Workers: 3})); code != 200 || resp.Cache.Status != "hit" {
		t.Fatalf("worker count must not key the cache: %d %q", code, resp.Cache.Status)
	}
}

func TestPlanStageBudget(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, resp := postPlan(t, ts, planRequestBody(t, "ALL", wire.SolveOptions{StageBudget: 100}))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var plan wire.Plan
	if err := json.Unmarshal(resp.Plan, &plan); err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) == 0 {
		t.Fatal("no stages in response")
	}
}

func TestPlanBadRequests(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cases := []struct {
		name string
		body string
		want int
	}{
		{"invalid json", "{", http.StatusBadRequest},
		{"empty body", "", http.StatusBadRequest},
		{"unknown solver", string(planRequestBody(t, "NOPE", wire.SolveOptions{})), http.StatusBadRequest},
		{"unknown field", `{"scenari":{}}`, http.StatusBadRequest},
		{"invalid scenario", `{"scenario":{"nodes":[{}],"links":[{"from":0,"to":9,"capacity":1}]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, _ := postPlan(t, ts, []byte(tc.body))
		if code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan: status %d, want 405", resp.StatusCode)
	}
}

func TestSweepEndpoint(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	spec := map[string]any{
		"name":        "smoke",
		"topologies":  []map[string]any{{"kind": "grid", "rows": 3, "cols": 3}},
		"disruptions": []map[string]any{{"kind": "complete"}},
		"demands":     []map[string]any{{"pairs": 2, "flow_per_pair": 4}},
		"algorithms":  []string{"SRT", "ALL"},
		"seeds":       []int64{1, 2},
	}
	raw, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var report struct {
		Jobs     int `json:"jobs"`
		Failures int `json:"failures"`
		Groups   []struct {
			Algorithm string `json:"algorithm"`
		} `json:"groups"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if report.Jobs != 4 || report.Failures != 0 || len(report.Groups) != 2 {
		t.Fatalf("report = %+v, want 4 jobs / 0 failures / 2 groups", report)
	}

	// An invalid spec is a 400.
	resp2, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(`{"topologies":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: status %d, want 400", resp2.StatusCode)
	}
}

// TestPlanStream: the SSE endpoint emits progress events and a final plan
// event carrying the same response schema as /v1/plan.
func TestPlanStream(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// NoCache guarantees this request executes the solve itself and
	// therefore streams progress.
	body := planRequestBody(t, "ISP", wire.SolveOptions{NoCache: true})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if !strings.Contains(text, "event: progress") {
		t.Fatalf("stream has no progress events:\n%s", text)
	}
	idx := strings.Index(text, "event: plan\ndata: ")
	if idx < 0 {
		t.Fatalf("stream has no final plan event:\n%s", text)
	}
	planJSON := text[idx+len("event: plan\ndata: "):]
	planJSON = planJSON[:strings.Index(planJSON, "\n")]
	var envelope wire.PlanResponse
	if err := json.Unmarshal([]byte(planJSON), &envelope); err != nil {
		t.Fatalf("final event is not a PlanResponse: %v\n%s", err, planJSON)
	}
	if envelope.Plan.Algorithm != "ISP" || envelope.Cache.Status != "bypass" {
		t.Fatalf("final event = %+v", envelope)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv := New(Config{Cache: plancache.New(plancache.Config{})})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}

	// Generate one miss + one hit, then check the counters surface.
	body := planRequestBody(t, "ISP", wire.SolveOptions{})
	postPlan(t, ts, body)
	postPlan(t, ts, body)
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"nrserved_solves_total 1",
		"nrserved_cache_hits_total 1",
		"nrserved_cache_misses_total 1",
		"nrserved_cache_entries 1",
		"nrserved_requests_total",
		"nrserved_admission_capacity",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestAdmissionControl: with MaxInFlight=1, two different cold scenarios
// never solve concurrently; the second queues until the first finishes.
func TestAdmissionControl(t *testing.T) {
	srv := New(Config{MaxInFlight: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	g := &gateState{started: make(chan struct{}, 2), release: make(chan struct{})}
	gate.Store(g)
	defer gate.Store(nil)

	// Two distinct scenarios (different demand flow) so they do not coalesce.
	mkBody := func(flow float64) []byte {
		sc := testScenarioJSON()
		sc.Demands[0].Flow = flow
		raw, _ := json.Marshal(wire.PlanRequest{Scenario: sc, Algorithm: "GATED-test"})
		return raw
	}
	var wg sync.WaitGroup
	for _, flow := range []float64{3, 4} {
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			postPlan(t, ts, body)
		}(mkBody(flow))
	}
	<-g.started // first solve entered
	// The second request must be queued on admission, not solving: the gated
	// solver counts entries.
	time.Sleep(50 * time.Millisecond)
	if got := g.solves.Load(); got != 1 {
		t.Fatalf("admission control admitted %d solves concurrently, want 1", got)
	}
	close(g.release)
	wg.Wait()
	if got := g.solves.Load(); got != 2 {
		t.Fatalf("total solves = %d, want 2", got)
	}
}

func ExampleServer() {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	fmt.Println(resp.StatusCode)
	// Output: 200
}
