package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"time"

	"netrecovery/internal/degrade"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/obs"
	"netrecovery/internal/plancache"
	"netrecovery/internal/scenario"
	"netrecovery/internal/wire"
)

// Priority classes for admission-queue load shedding, least important
// first. When the admission queue fills, low classes are shed before high
// ones: an ensemble worker queues only into the first quarter of the
// queue, a sweep worker into the first half, a plan into three quarters,
// and a session re-plan may use the whole queue — sessions carry warm
// state a shed would waste, plans are the interactive product, bulk
// sweeps/ensembles can always be retried.
const (
	prioEnsemble = iota
	prioSweep
	prioPlan
	prioSession
	numPriorities
)

// prioNames are the metric labels of the priority classes, indexed by the
// prio* constants.
var prioNames = [numPriorities]string{"ensemble", "sweep", "plan", "session"}

// defaultQueueFactor sizes the admission queue: MaxQueue = factor ×
// MaxInFlight when the config does not say otherwise.
const defaultQueueFactor = 8

// classLimit is how deep into the queue a class may wait.
func (srv *Server) classLimit(prio int) int64 {
	return int64(srv.maxQueue) * int64(prio+1) / int64(numPriorities)
}

// retryAfterSeconds derives the Retry-After hint from the current queue
// depth: an empty queue suggests retrying in a second, a queue N times the
// solve capacity suggests N+1 seconds — by then the backlog has drained at
// least once.
func (srv *Server) retryAfterSeconds() int {
	return 1 + int(srv.queued.Load())/cap(srv.sem)
}

// acquireSlot takes one admission token for a solve of the given priority
// class. The fast path (capacity free) costs one channel send. When the
// solve must queue, the class's queue-depth limit is checked first: beyond
// it the request is shed with 429 + Retry-After instead of waiting — the
// bounded queue sheds the least important work first and never collapses
// into an unbounded backlog.
func (srv *Server) acquireSlot(ctx context.Context, prio int) *httpError {
	_, sp := obs.StartSpan(ctx, "admission.wait")
	sp.SetAttr("class", prioNames[prio])
	defer sp.End()
	select {
	case srv.sem <- struct{}{}:
		sp.SetAttr("outcome", "immediate")
		return nil
	default:
	}
	q := srv.queued.Add(1)
	if q > srv.classLimit(prio) {
		srv.queued.Add(-1)
		srv.shed[prio].Add(1)
		sp.SetAttr("outcome", "shed")
		return &httpError{
			code:       http.StatusTooManyRequests,
			err:        fmt.Errorf("admission queue full for class %q (%d queued)", prioNames[prio], q-1),
			retryAfter: srv.retryAfterSeconds(),
		}
	}
	defer srv.queued.Add(-1)
	select {
	case srv.sem <- struct{}{}:
		sp.SetAttr("outcome", "queued")
		return nil
	case <-ctx.Done():
		sp.SetAttr("outcome", "cancelled")
		return solveError(ctx.Err())
	}
}

// releaseSlot returns one admission token.
func (srv *Server) releaseSlot() { <-srv.sem }

// breakerFor returns (creating on first use) the circuit breaker of one
// algorithm. Breakers are per-algorithm so a pathological OPT workload
// cannot take ISP fallbacks down with it.
func (srv *Server) breakerFor(alg string) *degrade.Breaker {
	srv.breakerMu.Lock()
	defer srv.breakerMu.Unlock()
	if br, ok := srv.breakers[alg]; ok {
		return br
	}
	cfg := srv.cfg.Breaker
	if cfg.Now == nil {
		cfg.Now = srv.now
	}
	br := degrade.NewBreaker(cfg)
	srv.breakers[alg] = br
	return br
}

// breakerSnapshots returns the per-algorithm breaker stats sorted by name.
func (srv *Server) breakerSnapshots() (names []string, stats []degrade.BreakerStats) {
	srv.breakerMu.Lock()
	for name := range srv.breakers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		stats = append(stats, srv.breakers[name].Snapshot())
	}
	srv.breakerMu.Unlock()
	return names, stats
}

// breakerOpenError maps a refusing breaker to 503 + Retry-After.
func (srv *Server) breakerOpenError(alg string, br *degrade.Breaker) *httpError {
	return &httpError{
		code:       http.StatusServiceUnavailable,
		err:        &degrade.BreakerOpenError{Resource: alg, RetryAfter: br.RetryAfter().Seconds()},
		retryAfter: int(math.Ceil(br.RetryAfter().Seconds())),
	}
}

// retryPolicy is the server's bounded retry for transient solve failures,
// with the retry counter hooked in.
func (srv *Server) retryPolicy() degrade.RetryPolicy {
	p := srv.cfg.Retry
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	orig := p.OnRetry
	p.OnRetry = func(attempt int, err error) {
		srv.solverRetries.Add(1)
		if orig != nil {
			orig(attempt, err)
		}
	}
	return p
}

// runSolve executes one solve attempt under admission control and the
// algorithm's circuit breaker: acquire a slot, ask the breaker, solve,
// record the outcome. Transient-failure retry wraps this function at the
// call sites (each attempt re-acquires its slot, so backoff sleeps never
// hold capacity). A client cancellation is recorded as neither success nor
// failure — the solver was not given a chance to prove itself.
func (srv *Server) runSolve(ctx context.Context, alg string, solver heuristics.Solver, sc *scenario.Scenario, prio int) (*scenario.Plan, error) {
	if herr := srv.acquireSlot(ctx, prio); herr != nil {
		return nil, herr
	}
	defer srv.releaseSlot()
	br := srv.breakerFor(alg)
	if !br.Allow() {
		return nil, srv.breakerOpenError(alg, br)
	}
	srv.solves.Add(1)
	srv.inFlight.Add(1)
	// The solve span's context is what the solver's OnStats hook sees, so
	// depth attributes (LP pivots, B&B nodes, steals) land on this span.
	solveCtx, sp := obs.StartSpan(ctx, "solve")
	sp.SetAttr("algorithm", alg)
	plan, err := solver.Solve(solveCtx, sc)
	sp.SetError(err)
	sp.End()
	srv.inFlight.Add(-1)
	switch {
	case err == nil:
		br.Record(true)
		return plan, nil
	case errors.Is(err, context.Canceled):
		br.Cancel()
	default:
		if degrade.IsPanic(err) {
			srv.solverPanics.Add(1)
		}
		br.Record(false)
	}
	return nil, err
}

// retrySolve wraps runSolve in the server's bounded retry-with-backoff.
func (srv *Server) retrySolve(ctx context.Context, alg string, solver heuristics.Solver, sc *scenario.Scenario, prio int) (*scenario.Plan, error) {
	var plan *scenario.Plan
	_, err := srv.retryPolicy().Retry(ctx, func() error {
		p, serr := srv.runSolve(ctx, alg, solver, sc, prio)
		if serr != nil {
			return serr
		}
		plan = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return plan, nil
}

// primaryFraction is the slice of the degradation deadline granted to the
// requested solver when a cheaper fallback stage exists behind it; the
// fallback gets whatever the primary leaves.
const primaryFraction = 0.6

// solveDegraded runs a plan request through the deadline-budgeted fallback
// chain: the requested solver under a slice of the deadline, then a
// fast-ISP fallback under the remaining budget, then a stale-but-served
// cache entry. Every stage's outcome and timing is annotated on the
// response; a served plan carries the stage's degradation level.
func (srv *Server) solveDegraded(ctx context.Context, req wire.PlanRequest, s *scenario.Scenario, alg string, params heuristics.Params, solver heuristics.Solver, deadline time.Duration) (*solveOutcome, *httpError) {
	out := &solveOutcome{scenario: s, fp: s.FingerprintHex()}
	primaryKey := plancache.Key{
		Fingerprint: s.Fingerprint(),
		Algorithm:   alg,
		Options:     plancache.ParamsDigest(params),
	}

	// solveStage runs one solver stage through the cache (unless bypassed),
	// falling back to a direct solve when the cache shard itself is the
	// injected failure; it records how the serving stage obtained the plan.
	solveStage := func(stageCtx context.Context, stageAlg string, stageSolver heuristics.Solver, key plancache.Key) (*scenario.Plan, error) {
		if req.Options.NoCache {
			plan, err := srv.runSolve(stageCtx, stageAlg, stageSolver, s, prioPlan)
			if err == nil {
				out.status, out.age = "bypass", 0
			}
			return plan, err
		}
		plan, outcome, age, err := srv.cache.Do(stageCtx, key, func(c context.Context) (*scenario.Plan, error) {
			return srv.runSolve(c, stageAlg, stageSolver, s, prioPlan)
		})
		var unavailable *plancache.UnavailableError
		if errors.As(err, &unavailable) {
			plan, err = srv.runSolve(stageCtx, stageAlg, stageSolver, s, prioPlan)
			if err == nil {
				out.status, out.age = "bypass", 0
			}
			return plan, err
		}
		if err == nil {
			out.status, out.age = outcome.String(), age
		}
		return plan, err
	}

	stages := []degrade.Stage{{
		Name:     "primary",
		Level:    degrade.LevelNone,
		Fraction: 0, // adjusted below when a fallback stage exists
		Retry:    true,
		Skip: func() string {
			if srv.breakerFor(alg).Blocked() {
				return "circuit breaker open for " + alg
			}
			return ""
		},
		Run: func(stageCtx context.Context) (*scenario.Plan, error) {
			return solveStage(stageCtx, alg, solver, primaryKey)
		},
	}}

	// The fallback stage is fast ISP — the paper's polynomial heuristic in
	// greedy split mode, the cheapest solver that still optimises. When the
	// request already asks for exactly that, a separate fallback stage
	// would re-run the identical solve, so it is omitted.
	fallbackParams := heuristics.Params{Fast: true, OPTWorkers: params.OPTWorkers, OnStats: params.OnStats}
	haveFallback := !(alg == "ISP" && params.Fast)
	var fallbackKey plancache.Key
	if haveFallback {
		stages[0].Fraction = primaryFraction
		fallbackSolver, err := heuristics.New("ISP", fallbackParams)
		if err != nil {
			return nil, &httpError{code: http.StatusInternalServerError, err: err}
		}
		fallbackKey = plancache.Key{
			Fingerprint: s.Fingerprint(),
			Algorithm:   "ISP",
			Options:     plancache.ParamsDigest(fallbackParams),
		}
		stages = append(stages, degrade.Stage{
			Name:  "fallback_isp",
			Level: degrade.LevelFallback,
			Retry: true,
			Skip: func() string {
				if srv.breakerFor("ISP").Blocked() {
					return "circuit breaker open for ISP"
				}
				return ""
			},
			Run: func(stageCtx context.Context) (*scenario.Plan, error) {
				return solveStage(stageCtx, "ISP", fallbackSolver, fallbackKey)
			},
		})
	}

	stages = append(stages, degrade.Stage{
		Name:  "stale_cache",
		Level: degrade.LevelStale,
		Free:  true,
		Skip: func() string {
			if req.Options.NoCache {
				return "cache disabled by request"
			}
			return ""
		},
		Run: func(context.Context) (*scenario.Plan, error) {
			if plan, age, _, ok := srv.cache.GetStale(primaryKey); ok {
				out.status, out.age = "stale", age
				return plan, nil
			}
			if haveFallback {
				if plan, age, _, ok := srv.cache.GetStale(fallbackKey); ok {
					out.status, out.age = "stale", age
					return plan, nil
				}
			}
			return nil, nil
		},
	})

	res, err := degrade.Execute(ctx, stages, degrade.Options{
		Deadline: deadline,
		Retry:    srv.retryPolicy(),
		Now:      srv.now,
	})
	if err != nil {
		if errors.Is(err, degrade.ErrExhausted) {
			srv.degradeExhausted.Add(1)
			herr := &httpError{
				code:       http.StatusServiceUnavailable,
				err:        err,
				retryAfter: srv.retryAfterSeconds(),
			}
			return nil, herr
		}
		return nil, solveError(err)
	}

	switch res.Level {
	case degrade.LevelFallback:
		srv.degradedFallback.Add(1)
	case degrade.LevelStale:
		srv.degradedStale.Add(1)
	}
	out.plan = res.Plan
	out.degradation = degradationWire(res, deadline)
	return out, nil
}

// degradationWire converts a chain result into its wire annotation.
func degradationWire(res *degrade.Result, deadline time.Duration) *wire.Degradation {
	d := &wire.Degradation{
		Level:      res.Level.String(),
		ServedBy:   res.ServedBy,
		DeadlineMS: deadline.Milliseconds(),
		Retries:    res.Retries,
	}
	for _, st := range res.Stages {
		ts := wire.StageTiming{
			Stage:     st.Name,
			Outcome:   st.Outcome,
			Attempts:  st.Attempts,
			ElapsedMS: st.Elapsed.Milliseconds(),
		}
		if st.Err != nil {
			ts.Error = st.Err.Error()
		}
		d.Stages = append(d.Stages, ts)
	}
	return d
}
