package server

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"netrecovery/internal/heuristics"
	"netrecovery/internal/plancache"
	"netrecovery/internal/wire"
)

// peerURL builds the /v1/peer/plan URL for the test scenario under the
// given algorithm and options digest.
func peerURL(t *testing.T, base, alg string, params heuristics.Params) string {
	t.Helper()
	s, err := testScenarioJSON().Build()
	if err != nil {
		t.Fatal(err)
	}
	digest := plancache.ParamsDigest(params)
	return fmt.Sprintf("%s/v1/peer/plan/%s?algorithm=%s&options=%s",
		base, s.FingerprintHex(), alg, hex.EncodeToString(digest[:]))
}

// TestPeerPlanEndpoint: after a local solve, the peer-fill endpoint serves
// the cached plan — and the transferred plan renders byte-identically to
// the locally served one (the fidelity contract peer-fill relies on).
func TestPeerPlanEndpoint(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, local := postPlan(t, ts, planRequestBody(t, "ISP", wire.SolveOptions{Fast: true}))
	if code != http.StatusOK {
		t.Fatalf("POST /v1/plan: %d", code)
	}

	resp, err := http.Get(peerURL(t, ts.URL, "ISP", heuristics.Params{Fast: true}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/peer/plan: %d", resp.StatusCode)
	}
	var pr wire.PeerPlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Found || pr.Plan == nil {
		t.Fatalf("peer response = %+v, want found", pr)
	}
	rebuilt, err := pr.Plan.Build()
	if err != nil {
		t.Fatalf("Build transferred plan: %v", err)
	}
	s, err := testScenarioJSON().Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(wire.FromPlan(s, rebuilt))
	if err != nil {
		t.Fatal(err)
	}
	var localCompact bytes.Buffer
	if err := json.Compact(&localCompact, local.Plan); err != nil {
		t.Fatal(err)
	}
	if string(got) != localCompact.String() {
		t.Fatalf("transferred plan renders differently:\n local %s\n  peer %s", localCompact.String(), got)
	}
}

// TestPeerPlanMissAndErrors: unknown keys answer 200/found=false (a miss is
// not an error), malformed requests answer 400, and peer lookups never
// count as local cache hits.
func TestPeerPlanMissAndErrors(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Miss: nothing cached yet.
	resp, err := http.Get(peerURL(t, ts.URL, "ISP", heuristics.Params{Fast: true}))
	if err != nil {
		t.Fatal(err)
	}
	var pr wire.PeerPlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pr.Found {
		t.Fatalf("miss: code=%d found=%v, want 200/false", resp.StatusCode, pr.Found)
	}

	// Different options digest than the cached entry is a miss, not a hit.
	if code, _ := postPlan(t, ts, planRequestBody(t, "ISP", wire.SolveOptions{Fast: true})); code != http.StatusOK {
		t.Fatalf("POST /v1/plan: %d", code)
	}
	resp, err = http.Get(peerURL(t, ts.URL, "ISP", heuristics.Params{Fast: false}))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.Found {
		t.Fatal("peer lookup ignored the options digest")
	}

	// Malformed fingerprint / missing parameters.
	for _, u := range []string{
		ts.URL + "/v1/peer/plan/zzzz?algorithm=ISP&options=" + strings.Repeat("0", 64),
		ts.URL + "/v1/peer/plan/" + strings.Repeat("0", 64) + "?options=" + strings.Repeat("0", 64),
		ts.URL + "/v1/peer/plan/" + strings.Repeat("0", 64) + "?algorithm=ISP&options=xx",
	} {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: %d, want 400", u, resp.StatusCode)
		}
	}

	// Peek must not have inflated the local hit ratio: a real client hit
	// is still reported as the cache's first.
	metrics := scrapeMetrics(t, ts)
	if !strings.Contains(metrics, "nrserved_cache_hits_total 0") {
		t.Fatalf("peer lookups counted as cache hits:\n%s", grepMetrics(metrics, "nrserved_cache_"))
	}
	// 5 = 2 well-formed lookups + 3 malformed (the counter tracks endpoint
	// traffic, not validity).
	if !strings.Contains(metrics, "nrserved_peer_lookups_total 5") {
		t.Fatalf("peer lookup counter wrong:\n%s", grepMetrics(metrics, "nrserved_peer_"))
	}
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func grepMetrics(metrics, prefix string) string {
	var out []string
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, prefix) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestRequestDurationHistogram pins the metric NAME and label shape of the
// per-route duration histogram — dashboards and the CI load-smoke job key
// on these exact strings.
func TestRequestDurationHistogram(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := postPlan(t, ts, planRequestBody(t, "ISP", wire.SolveOptions{Fast: true})); code != http.StatusOK {
		t.Fatal("plan request failed")
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	metrics := scrapeMetrics(t, ts)
	for _, want := range []string{
		"# TYPE nrserved_request_duration_seconds histogram",
		`nrserved_request_duration_seconds_bucket{route="/v1/plan",class="plan",le="0.0001"} `,
		`nrserved_request_duration_seconds_bucket{route="/v1/plan",class="plan",le="0.00025"} `,
		`nrserved_request_duration_seconds_bucket{route="/v1/plan",class="plan",le="0.0005"} `,
		`nrserved_request_duration_seconds_bucket{route="/v1/plan",class="plan",le="0.001"} `,
		`nrserved_request_duration_seconds_bucket{route="/v1/plan",class="plan",le="10"} 1`,
		`nrserved_request_duration_seconds_bucket{route="/v1/plan",class="plan",le="+Inf"} 1`,
		`nrserved_request_duration_seconds_count{route="/v1/plan",class="plan"} 1`,
		`nrserved_request_duration_seconds_sum{route="/v1/plan",class="plan"} `,
		`nrserved_request_duration_seconds_count{route="/healthz",class="infra"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Every instrumented route emits a _count series, in fixed order.
	routes := []string{
		"/v1/plan", "/v1/plan/stream", "/v1/sweep", "/v1/ensemble",
		"/v1/ensemble/stream", "/v1/session", "/v1/peer/plan", "/healthz", "/metrics",
	}
	last := -1
	for _, route := range routes {
		needle := fmt.Sprintf("nrserved_request_duration_seconds_count{route=%q,", route)
		idx := strings.Index(metrics, needle)
		if idx < 0 {
			t.Errorf("metrics missing series for route %s", route)
			continue
		}
		if idx < last {
			t.Errorf("route %s emitted out of order", route)
		}
		last = idx
	}
	if t.Failed() {
		t.Logf("histogram exposition:\n%s", grepMetrics(metrics, "nrserved_request_duration_seconds"))
	}
}
