package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"netrecovery/internal/faultinject"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/scenario"
	"netrecovery/internal/wire"
)

// Session defaults (see Config.SessionTTL / Config.MaxSessions).
const (
	defaultSessionTTL  = 10 * time.Minute
	defaultMaxSessions = 64
)

// session is one open planning session: an evolving scenario, the solver
// state kept warm across its re-plans, and the SSE subscribers watching it.
// All fields behind mu; the per-session mutex serialises re-plans so deltas
// on one session are applied and solved in arrival order.
type session struct {
	id  string
	alg string

	mu       sync.Mutex
	ispSess  *heuristics.ISPSession // warm ISP state; nil for other algorithms
	params   heuristics.Params
	cur      *scenario.Scenario
	lastPlan *scenario.Plan
	plans    int
	deltas   int
	lastUsed time.Time
	closed   bool
	subs     map[chan []byte]struct{}
}

// info snapshots the session's wire description; the caller holds s.mu.
func (s *session) infoLocked(ttl time.Duration) wire.SessionInfo {
	return wire.SessionInfo{
		ID:          s.id,
		Algorithm:   s.alg,
		Fingerprint: s.cur.FingerprintHex(),
		Warm:        s.ispSess != nil,
		Plans:       s.plans,
		Deltas:      s.deltas,
		IdleTTLMS:   ttl.Milliseconds(),
	}
}

// broadcastLocked fans an SSE-framed message out to every subscriber; the
// caller holds s.mu. Slow subscribers are skipped (their channel buffer is
// full) rather than blocking delta processing; SSE is a best-effort feed and
// every frame carries the full current plan, so a skipped frame is
// superseded by the next one.
func (s *session) broadcastLocked(frame []byte) {
	for ch := range s.subs {
		select {
		case ch <- frame:
		default:
		}
	}
}

// sseFrame formats one Server-Sent Event.
func sseFrame(event string, payload any) []byte {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil
	}
	return []byte(fmt.Sprintf("event: %s\ndata: %s\n\n", event, raw))
}

// newSessionID returns a 128-bit random hex session ID.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: session ID entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// sessionTTL resolves the configured idle TTL.
func (srv *Server) sessionTTL() time.Duration {
	if srv.cfg.SessionTTL > 0 {
		return srv.cfg.SessionTTL
	}
	return defaultSessionTTL
}

// maxSessions resolves the configured session bound.
func (srv *Server) maxSessions() int {
	if srv.cfg.MaxSessions > 0 {
		return srv.cfg.MaxSessions
	}
	return defaultMaxSessions
}

// evictIdleSessions drops sessions idle past the TTL. It runs opportunistically
// on every session operation (and on /metrics) instead of on a background
// ticker, which keeps the server free of goroutine lifecycle and makes
// eviction deterministic under the test clock. Subscribers of an evicted
// session receive a terminal `end` event.
func (srv *Server) evictIdleSessions() {
	ttl := srv.sessionTTL()
	now := srv.now()
	srv.sessMu.Lock()
	var evict []*session
	for id, s := range srv.sessions {
		s.mu.Lock()
		idle := now.Sub(s.lastUsed)
		s.mu.Unlock()
		if idle >= ttl {
			delete(srv.sessions, id)
			evict = append(evict, s)
		}
	}
	srv.sessMu.Unlock()
	for _, s := range evict {
		srv.sessionsExpired.Add(1)
		srv.closeSession(s, "session expired (idle TTL)")
	}
}

// closeSession marks the session closed and terminates its subscribers.
func (srv *Server) closeSession(s *session, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	frame := sseFrame("end", wire.Error{Error: reason})
	for ch := range s.subs {
		// Best-effort terminal frame (never block holding s.mu on a stuck
		// subscriber); closing the channel is the authoritative signal.
		select {
		case ch <- frame:
		default:
		}
		close(ch)
	}
	s.subs = nil
}

// lookupSession returns the session for the request's {id}, bumping its
// idle timer.
func (srv *Server) lookupSession(r *http.Request) (*session, *httpError) {
	id := r.PathValue("id")
	srv.sessMu.Lock()
	s, ok := srv.sessions[id]
	srv.sessMu.Unlock()
	if !ok {
		return nil, &httpError{code: http.StatusNotFound, err: fmt.Errorf("unknown session %q", id)}
	}
	s.mu.Lock()
	s.lastUsed = srv.now()
	s.mu.Unlock()
	return s, nil
}

// sessionSolve runs one (re-)plan of the session's current scenario under
// the server's admission control; the caller holds s.mu. Warm sessions
// solve through their memo; other algorithms construct a fresh registry
// solver per re-plan.
func (srv *Server) sessionSolve(ctx context.Context, s *session) (*scenario.Plan, *httpError) {
	var solver heuristics.Solver
	if s.ispSess != nil {
		solver = s.ispSess
	} else {
		var err error
		solver, err = heuristics.New(s.alg, s.params)
		if err != nil {
			return nil, &httpError{code: http.StatusInternalServerError, err: err}
		}
	}
	// Sessions solve at the highest priority class: their warm state makes
	// a shed replan the most expensive kind of rejected work.
	plan, err := srv.retrySolve(ctx, s.alg, solver, s.cur, prioSession)
	if herr := solveError(err); herr != nil {
		return nil, herr
	}
	s.plans++
	s.lastPlan = plan
	return plan, nil
}

// handleSessionCreate implements POST /v1/session: validate the scenario and
// solver configuration, solve the initial plan, and return the session
// handle alongside it.
func (srv *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	srv.requests.Add(1)
	srv.evictIdleSessions()
	var req wire.SessionRequest
	if herr := decodeJSON(r, &req); herr != nil {
		srv.writeError(w, herr)
		return
	}
	sc, err := req.Scenario.Build()
	if err != nil {
		srv.writeError(w, badRequest("invalid scenario: %v", err))
		return
	}
	alg := req.Algorithm
	if alg == "" {
		alg = "ISP"
	}
	params := heuristics.Params{
		Fast:         req.Options.Fast,
		OPTTimeLimit: time.Duration(req.Options.OptTimeLimitMS) * time.Millisecond,
		OPTMaxNodes:  req.Options.OptMaxNodes,
		OPTWorkers:   srv.resolveWorkers(req.Options.Workers),
	}
	if _, err := heuristics.New(alg, params); err != nil {
		srv.writeError(w, badRequest("%v", err))
		return
	}

	s := &session{
		id:       newSessionID(),
		alg:      alg,
		params:   params,
		cur:      sc,
		lastUsed: srv.now(),
		subs:     make(map[chan []byte]struct{}),
	}
	if alg == "ISP" {
		s.ispSess = heuristics.NewISPSession(params)
	}

	// Reserve the slot before the initial solve so two concurrent creates
	// cannot both pass a full-capacity check.
	srv.sessMu.Lock()
	if len(srv.sessions) >= srv.maxSessions() {
		srv.sessMu.Unlock()
		srv.writeError(w, &httpError{
			code:       http.StatusServiceUnavailable,
			err:        fmt.Errorf("session capacity exhausted (%d open)", srv.maxSessions()),
			retryAfter: srv.retryAfterSeconds(),
		})
		return
	}
	srv.sessions[s.id] = s
	srv.sessMu.Unlock()
	srv.sessionsOpened.Add(1)

	ctx, cancel := srv.requestContext(r)
	defer cancel()
	s.mu.Lock()
	plan, herr := srv.sessionSolve(ctx, s)
	if herr != nil {
		s.mu.Unlock()
		srv.removeSession(s, "initial solve failed")
		srv.writeError(w, herr)
		return
	}
	resp := wire.SessionResponse{
		Session: s.infoLocked(srv.sessionTTL()),
		Plan:    wire.FromPlan(s.cur, plan),
	}
	s.mu.Unlock()
	srv.writeJSON(w, http.StatusCreated, resp)
}

// removeSession unregisters and closes a session.
func (srv *Server) removeSession(s *session, reason string) {
	srv.sessMu.Lock()
	delete(srv.sessions, s.id)
	srv.sessMu.Unlock()
	srv.closeSession(s, reason)
}

// handleSessionGet implements GET /v1/session/{id}: the session description
// plus its most recent plan.
func (srv *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	srv.requests.Add(1)
	srv.evictIdleSessions()
	s, herr := srv.lookupSession(r)
	if herr != nil {
		srv.writeError(w, herr)
		return
	}
	s.mu.Lock()
	resp := wire.SessionResponse{Session: s.infoLocked(srv.sessionTTL())}
	if s.lastPlan != nil {
		resp.Plan = wire.FromPlan(s.cur, s.lastPlan)
	}
	s.mu.Unlock()
	srv.writeJSON(w, http.StatusOK, resp)
}

// handleSessionDelete implements DELETE /v1/session/{id}.
func (srv *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	srv.requests.Add(1)
	s, herr := srv.lookupSession(r)
	if herr != nil {
		srv.writeError(w, herr)
		return
	}
	srv.removeSession(s, "session closed")
	srv.writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

// handleSessionDelta implements POST /v1/session/{id}/delta: apply a batch
// of deltas atomically to the session's scenario, re-plan with the warm
// solver state, respond with the new plan, and push it to SSE subscribers.
//
// On an invalid delta (409) the session's scenario is unchanged. On a solve
// failure the scenario HAS advanced — the deltas describe what happened in
// the field, which a failed solve does not undo — and the next delta or
// stream request re-plans from the new state.
func (srv *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	srv.requests.Add(1)
	srv.evictIdleSessions()
	s, herr := srv.lookupSession(r)
	if herr != nil {
		srv.writeError(w, herr)
		return
	}
	var req wire.DeltaRequest
	if herr := decodeJSON(r, &req); herr != nil {
		srv.writeError(w, herr)
		return
	}
	if len(req.Deltas) == 0 {
		srv.writeError(w, badRequest("empty delta batch"))
		return
	}
	deltas := make([]scenario.Delta, len(req.Deltas))
	for i, wd := range req.Deltas {
		d, err := wd.Build()
		if err != nil {
			srv.writeError(w, badRequest("delta %d: %v", i, err))
			return
		}
		deltas[i] = d
	}

	ctx, cancel := srv.requestContext(r)
	defer cancel()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		srv.writeError(w, &httpError{code: http.StatusNotFound, err: errors.New("session closed")})
		return
	}
	next, err := s.cur.Apply(deltas...)
	if err != nil {
		s.mu.Unlock()
		srv.writeError(w, &httpError{code: http.StatusConflict, err: err})
		return
	}
	s.cur = next
	s.deltas += len(deltas)
	srv.sessionReplans.Add(1)
	solveStart := srv.now()
	plan, herr := srv.sessionSolve(ctx, s)
	if herr != nil {
		s.mu.Unlock()
		srv.writeError(w, herr)
		return
	}
	resp := wire.DeltaResponse{
		Session:  s.infoLocked(srv.sessionTTL()),
		Plan:     wire.FromPlan(s.cur, plan),
		ReplanMS: float64(srv.now().Sub(solveStart)) / float64(time.Millisecond),
	}
	s.broadcastLocked(sseFrame("plan", resp))
	s.mu.Unlock()
	srv.writeJSON(w, http.StatusOK, resp)
}

// handleSessionStream implements GET /v1/session/{id}/stream: a Server-Sent
// Events feed of the session's plan updates. The current plan is sent
// immediately as a `plan` event; every delta-triggered re-plan follows as
// another `plan` event; a terminal `end` event is sent when the session is
// closed or evicted.
func (srv *Server) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	srv.requests.Add(1)
	srv.evictIdleSessions()
	s, herr := srv.lookupSession(r)
	if herr != nil {
		srv.writeError(w, herr)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		srv.writeError(w, &httpError{code: http.StatusInternalServerError, err: errors.New("response writer does not support streaming")})
		return
	}

	// Subscribe before the initial snapshot so no update can fall between
	// snapshot and subscription. Buffer a few frames; overflow is dropped in
	// broadcastLocked (each frame supersedes the previous).
	ch := make(chan []byte, 8)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		srv.writeError(w, &httpError{code: http.StatusNotFound, err: errors.New("session closed")})
		return
	}
	var initial []byte
	if s.lastPlan != nil {
		initial = sseFrame("plan", wire.SessionResponse{
			Session: s.infoLocked(srv.sessionTTL()),
			Plan:    wire.FromPlan(s.cur, s.lastPlan),
		})
	}
	s.subs[ch] = struct{}{}
	s.mu.Unlock()

	unsubscribe := func() {
		s.mu.Lock()
		if _, still := s.subs[ch]; still {
			delete(s.subs, ch)
		}
		s.mu.Unlock()
	}
	defer unsubscribe()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	if initial != nil {
		w.Write(initial)
	}
	flusher.Flush()

	srv.sseStreams.Add(1)
	defer srv.sseStreams.Add(-1)

	for {
		select {
		case frame, open := <-ch:
			if !open {
				return // session closed; terminal end frame already sent
			}
			// Injected SSE fault: a stalled/dead subscriber connection.
			if err := faultinject.Fire(r.Context(), faultinject.PointSSE); err != nil {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
