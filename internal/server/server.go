// Package server implements the HTTP serving layer of the recovery-planning
// stack (the daemon cmd/nrserved): JSON plan requests in, cached
// deterministic plans out.
//
// Endpoints:
//
//	POST /v1/plan        solve one scenario (content-addressed plan cache +
//	                     singleflight coalescing; cache metadata in the response)
//	POST /v1/sweep       run a declarative scenario sweep on the engine's pool
//	POST /v1/ensemble    run a Monte-Carlo disruption ensemble (fingerprint
//	                     dedup + plan-cache routing) and return the aggregated
//	                     robust-plan report; /v1/ensemble/stream is the SSE
//	                     variant with sample-level progress
//	GET  /v1/plan/stream solve one scenario streaming solver progress as
//	                     Server-Sent Events
//	GET  /healthz        liveness probe
//	GET  /metrics        Prometheus text metrics (cache, solves, admission)
//
// The server applies admission control — at most MaxInFlight solves run
// concurrently, excess requests queue (bounded, shed by priority class with
// Retry-After) — per-request timeouts, and honours client disconnects by
// cancelling the solve promptly (reported as HTTP 499, the de-facto "client
// closed request" status).
//
// Robustness (see internal/degrade): every solve runs behind a panic
// boundary, a bounded transient-failure retry, and a per-algorithm circuit
// breaker. Requests carrying a deadline (options.deadline_ms, or the
// server-wide DegradeDeadline default) are answered through a budgeted
// fallback chain — exact solver, then fast ISP, then a stale cache entry —
// and annotated with a degradation block instead of failing.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"netrecovery/internal/cluster"
	"netrecovery/internal/degrade"
	"netrecovery/internal/faultinject"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/obs"
	"netrecovery/internal/plancache"
	"netrecovery/internal/scenario"
	"netrecovery/internal/sweep"
	"netrecovery/internal/wire"
)

// StatusClientClosedRequest is the nginx-convention status the server
// records when the client went away mid-solve.
const StatusClientClosedRequest = 499

// maxRequestBody bounds request bodies (scenarios are a few MB at most even
// at CAIDA scale).
const maxRequestBody = 64 << 20

// Config parameterises New.
type Config struct {
	// Cache is the plan cache; nil means a fresh default cache
	// (plancache.Config zero values).
	Cache *plancache.Cache
	// MaxInFlight bounds the number of concurrently executing solves — the
	// admission control that keeps the box from oversubscribing. Cache hits
	// and coalesced waiters do not consume a slot; only solve leaders do.
	// 0 means GOMAXPROCS, matching the sizing of the PR 4 solver worker
	// pool: with MaxInFlight solves each running sequentially the machine
	// is exactly saturated.
	MaxInFlight int
	// RequestTimeout bounds each request end to end (0 = no limit). A
	// request that exceeds it fails with 504 and its solve is cancelled.
	RequestTimeout time.Duration
	// SolverWorkers is the default in-solve parallelism handed to solvers
	// when the request does not set options.workers. Zero derives
	// GOMAXPROCS / MaxInFlight (at least 1), so pool x solver parallelism
	// never exceeds the machine.
	SolverWorkers int
	// SessionTTL is the idle timeout after which an open planning session is
	// evicted (0 = 10 minutes). Every session operation resets the timer.
	SessionTTL time.Duration
	// MaxSessions bounds the number of concurrently open planning sessions
	// (0 = 64); POST /v1/session fails with 503 beyond it.
	MaxSessions int
	// MaxQueue bounds how many solves may wait for an admission slot
	// before the priority classes start shedding (429 + Retry-After).
	// 0 means 8 x MaxInFlight.
	MaxQueue int
	// DegradeDeadline, when positive, routes every plan request that does
	// not set its own options.deadline_ms through the deadline-budgeted
	// fallback chain with this budget. Zero leaves degradation opt-in
	// per request.
	DegradeDeadline time.Duration
	// Breaker tunes the per-algorithm circuit breakers (zero values pick
	// the degrade.BreakerConfig defaults).
	Breaker degrade.BreakerConfig
	// Cluster, when non-nil, puts the server in multi-node mode: each
	// scenario fingerprint has one owning peer on the cluster's
	// consistent-hash ring, a local cache miss on a non-owner first
	// attempts a bounded peer-fill from the owner (GET /v1/peer/plan/{fp})
	// before solving locally, and the server answers its own peers' fill
	// lookups. The caller owns the cluster's lifecycle (Start/Close).
	Cluster *cluster.Cluster
	// Retry tunes the transient-failure solve retry (zero MaxAttempts
	// means 3 attempts with the default jittered backoff).
	Retry degrade.RetryPolicy
	// Tracer, when non-nil and enabled, traces every API request: a root
	// span per request (adopting an incoming W3C traceparent header, which
	// is how peer-fill traces stitch across the cluster), child spans at
	// the admission queue, cache lookup, degradation stages, peer fill and
	// solver execution, and a /debug/traces surface on the handler. A nil
	// or disabled tracer costs one atomic load per span site.
	Tracer *obs.Tracer
	// Logger, when non-nil, receives the server's structured log events.
	Logger *obs.Logger
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// Server is the HTTP serving layer. Create with New, expose with Handler.
type Server struct {
	cfg   Config
	cache *plancache.Cache
	sem   chan struct{}
	// sweepMu serialises multi-token admission acquisition (sweeps take one
	// token per sweep worker); without it two sweeps could each hold half
	// the tokens and deadlock waiting for the rest.
	sweepMu sync.Mutex
	now     func() time.Time
	start   time.Time

	// sessMu guards sessions, the registry of open planning sessions.
	sessMu   sync.Mutex
	sessions map[string]*session

	// maxQueue bounds the admission queue (see Config.MaxQueue); queued
	// tracks its current depth; shed counts rejections per priority class.
	maxQueue int
	queued   atomic.Int64
	shed     [numPriorities]atomic.Uint64

	// breakerMu guards breakers, the lazily-built per-algorithm circuit
	// breakers.
	breakerMu sync.Mutex
	breakers  map[string]*degrade.Breaker

	// routeHists are the per-route request-duration histograms behind
	// nrserved_request_duration_seconds.
	routeHists []*routeHistogram

	solves            atomic.Uint64
	peerLookups       atomic.Uint64
	peerServed        atomic.Uint64
	peerFilledPlans   atomic.Uint64
	requests          atomic.Uint64
	errorsTot         atomic.Uint64
	inFlight          atomic.Int64
	sseStreams        atomic.Int64
	sessionsOpened    atomic.Uint64
	sessionsExpired   atomic.Uint64
	sessionReplans    atomic.Uint64
	ensembles         atomic.Uint64
	ensembleSamples   atomic.Uint64
	ensembleCacheHits atomic.Uint64
	solverPanics      atomic.Uint64
	solverRetries     atomic.Uint64
	degradedFallback  atomic.Uint64
	degradedStale     atomic.Uint64
	degradeExhausted  atomic.Uint64
}

// New returns a server configured by cfg.
func New(cfg Config) *Server {
	cache := cfg.Cache
	if cache == nil {
		// The default cache shares the server clock so TTL ages and
		// stale-serve decisions agree with request timestamps.
		cache = plancache.New(plancache.Config{Now: cfg.Now})
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = runtime.GOMAXPROCS(0)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = defaultQueueFactor * maxInFlight
	}
	srv := &Server{
		cfg:      cfg,
		cache:    cache,
		sem:      make(chan struct{}, maxInFlight),
		now:      now,
		sessions: make(map[string]*session),
		maxQueue: maxQueue,
		breakers: make(map[string]*degrade.Breaker),
	}
	srv.routeHists = newRouteHistograms()
	srv.start = now()
	return srv
}

// Cache returns the server's plan cache (shared with any library-path
// Planner the embedding process wires up).
func (srv *Server) Cache() *plancache.Cache { return srv.cache }

// SolveCount returns the number of solver executions the server performed —
// cache hits and coalesced requests do not increment it. Tests use it to
// assert the exactly-one-solve guarantees.
func (srv *Server) SolveCount() uint64 { return srv.solves.Load() }

// Handler returns the server's routing handler. Every route is wrapped in
// its request-duration histogram (see routeHistogram); the session
// sub-routes share the /v1/session histogram.
func (srv *Server) Handler() http.Handler {
	wrap := make(map[string]func(http.HandlerFunc) http.HandlerFunc, len(srv.routeHists))
	for _, rh := range srv.routeHists {
		hist := rh.hist
		route := rh.route
		wrap[route] = func(fn http.HandlerFunc) http.HandlerFunc {
			fn = srv.traced(route, fn)
			return func(w http.ResponseWriter, r *http.Request) {
				start := time.Now()
				fn(w, r)
				hist.Observe(time.Since(start))
			}
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", wrap["/v1/plan"](srv.handlePlan))
	mux.HandleFunc("/v1/plan/stream", wrap["/v1/plan/stream"](srv.handlePlanStream))
	mux.HandleFunc("/v1/sweep", wrap["/v1/sweep"](srv.handleSweep))
	mux.HandleFunc("/v1/ensemble", wrap["/v1/ensemble"](srv.handleEnsemble))
	mux.HandleFunc("/v1/ensemble/stream", wrap["/v1/ensemble/stream"](srv.handleEnsembleStream))
	sess := wrap["/v1/session"]
	mux.HandleFunc("POST /v1/session", sess(srv.handleSessionCreate))
	mux.HandleFunc("GET /v1/session/{id}", sess(srv.handleSessionGet))
	mux.HandleFunc("DELETE /v1/session/{id}", sess(srv.handleSessionDelete))
	mux.HandleFunc("POST /v1/session/{id}/delta", sess(srv.handleSessionDelta))
	mux.HandleFunc("GET /v1/session/{id}/stream", sess(srv.handleSessionStream))
	mux.HandleFunc("GET /v1/peer/plan/{fp}", wrap["/v1/peer/plan"](srv.handlePeerPlan))
	mux.HandleFunc("/healthz", wrap["/healthz"](srv.handleHealthz))
	mux.HandleFunc("/metrics", wrap["/metrics"](srv.handleMetrics))
	if tr := srv.cfg.Tracer; tr != nil {
		th := tr.Handler("/debug/traces")
		mux.Handle("GET /debug/traces", th)
		mux.Handle("GET /debug/traces/{rest...}", th)
	}
	return mux
}

// tracedRoutes are the routes that get a root span per request. Infra
// probes (/healthz, /metrics) are excluded so the trace ring holds real
// work, not scrape noise.
var tracedRoutes = map[string]bool{
	"/v1/plan":            true,
	"/v1/plan/stream":     true,
	"/v1/sweep":           true,
	"/v1/ensemble":        true,
	"/v1/ensemble/stream": true,
	"/v1/session":         true,
	"/v1/peer/plan":       true,
}

// traced wraps an API handler with the root span of a new trace. An
// incoming W3C traceparent header (sent by a peer's fill client) is
// adopted, so the peer-side trace shares the requester's trace ID. When
// the server has no enabled tracer the request path is untouched beyond
// one atomic load.
func (srv *Server) traced(route string, fn http.HandlerFunc) http.HandlerFunc {
	tr := srv.cfg.Tracer
	if tr == nil || !tracedRoutes[route] {
		return fn
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !tr.Enabled() {
			fn(w, r)
			return
		}
		ctx, sp := obs.StartRoot(r.Context(), tr, route, r.Header.Get("traceparent"))
		sp.SetAttr("method", r.Method)
		defer sp.End()
		fn(w, r.WithContext(ctx))
	}
}

// requestContext applies the per-request timeout.
func (srv *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if srv.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), srv.cfg.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// solveOutcome is the result of solveRequest: the solved scenario and plan
// plus the cache disposition and (when the fallback chain ran) the
// degradation annotation.
type solveOutcome struct {
	scenario    *scenario.Scenario
	plan        *scenario.Plan
	status      string // miss | hit | coalesced | bypass | stale | peer
	age         time.Duration
	fp          string
	degradation *wire.Degradation
}

// httpError carries a status code with an error; retryAfter, when positive,
// becomes a Retry-After header (seconds) on shed and unavailable responses.
type httpError struct {
	code       int
	err        error
	retryAfter int
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// solveRequest validates and solves one wire.PlanRequest through the cache.
// progress, when non-nil, receives solver events if (and only if) this
// request ends up executing the solve itself.
func (srv *Server) solveRequest(ctx context.Context, req wire.PlanRequest, progress heuristics.ProgressFunc) (*solveOutcome, *httpError) {
	s, err := req.Scenario.Build()
	if err != nil {
		return nil, badRequest("invalid scenario: %v", err)
	}
	alg := req.Algorithm
	if alg == "" {
		alg = "ISP"
	}
	params := heuristics.Params{
		Fast:         req.Options.Fast,
		OPTTimeLimit: time.Duration(req.Options.OptTimeLimitMS) * time.Millisecond,
		OPTMaxNodes:  req.Options.OptMaxNodes,
		OPTWorkers:   srv.resolveWorkers(req.Options.Workers),
		Progress:     progress,
		OnStats:      solveStatsAttrs,
	}
	solver, err := heuristics.New(alg, params)
	if err != nil {
		return nil, badRequest("%v", err)
	}

	// A deadline (per request, or the server-wide default) routes the solve
	// through the budgeted fallback chain unless the request opts out.
	deadline := time.Duration(req.Options.DeadlineMS) * time.Millisecond
	if deadline <= 0 {
		deadline = srv.cfg.DegradeDeadline
	}
	if deadline > 0 && !req.Options.NoDegrade {
		return srv.solveDegraded(ctx, req, s, alg, params, solver, deadline)
	}

	solve := func(ctx context.Context) (*scenario.Plan, error) {
		return srv.retrySolve(ctx, alg, solver, s, prioPlan)
	}

	out := &solveOutcome{scenario: s, fp: s.FingerprintHex()}
	if req.Options.NoCache {
		plan, err := solve(ctx)
		if herr := solveError(err); herr != nil {
			return nil, herr
		}
		out.plan, out.status = plan, "bypass"
		return out, nil
	}
	key := plancache.Key{
		Fingerprint: s.Fingerprint(),
		Algorithm:   alg,
		Options:     plancache.ParamsDigest(params),
	}
	// In multi-node mode a local miss on a non-owner first asks the
	// fingerprint's owning peer for its cached plan — a plan computed
	// anywhere in the fleet becomes a hit everywhere. The fill runs inside
	// the cache's coalescing leader (so concurrent identical requests
	// trigger at most one fill) and its result is stored like a local
	// solve; any fill failure — ejected owner, open breaker, full mailbox,
	// timeout, or the owner just not having it — falls back to the local
	// solve. NoCache requests never peer-fill: bypass means "solve here".
	peerFilled := false
	cachedSolve := solve
	if srv.cfg.Cluster != nil {
		cachedSolve = func(ctx context.Context) (*scenario.Plan, error) {
			if plan, _, ok := srv.cfg.Cluster.Fill(ctx, key); ok {
				peerFilled = true
				srv.peerFilledPlans.Add(1)
				return plan, nil
			}
			return solve(ctx)
		}
	}
	plan, outcome, age, err := srv.cache.Do(ctx, key, cachedSolve)
	var unavailable *plancache.UnavailableError
	if errors.As(err, &unavailable) {
		// The cache shard itself failed; the solver is fine — bypass.
		plan, err = solve(ctx)
		if herr := solveError(err); herr != nil {
			return nil, herr
		}
		out.plan, out.status = plan, "bypass"
		return out, nil
	}
	if herr := solveError(err); herr != nil {
		return nil, herr
	}
	out.plan, out.status, out.age = plan, outcome.String(), age
	if peerFilled && outcome == plancache.Miss {
		// This request led the solve but answered from a peer's cache;
		// surface that in the response's cache metadata.
		out.status = "peer"
	}
	return out, nil
}

// solveError maps a solve failure to an HTTP status: 499 when the client
// went away, 504 when the per-request timeout fired, 500 otherwise. An
// *httpError produced deeper in the stack (admission shed, breaker open)
// passes through with its status and Retry-After intact.
func solveError(err error) *httpError {
	if err == nil {
		return nil
	}
	var herr *httpError
	if errors.As(err, &herr) {
		return herr
	}
	switch {
	case errors.Is(err, context.Canceled):
		return &httpError{code: StatusClientClosedRequest, err: fmt.Errorf("solve cancelled: %w", err)}
	case errors.Is(err, context.DeadlineExceeded):
		return &httpError{code: http.StatusGatewayTimeout, err: fmt.Errorf("solve timed out: %w", err)}
	default:
		return &httpError{code: http.StatusInternalServerError, err: err}
	}
}

// solveStatsAttrs is the heuristics.StatsFunc the server installs on every
// solve: it lands solver depth telemetry (simplex iterations,
// refactorisations, warm starts; branch-and-bound nodes, rounds, steals,
// incumbent timeline) as attributes on the enclosing "solve" span. The
// solver calls it with its own Solve ctx, which runSolve arranged to carry
// that span; with tracing disabled SpanFromContext is nil and every Set is
// a no-op.
func solveStatsAttrs(ctx context.Context, st heuristics.SolveStats) {
	sp := obs.SpanFromContext(ctx)
	if sp == nil {
		return
	}
	sp.SetAttr("solver", st.Solver)
	if c := st.Core; c != nil {
		sp.SetInt("isp_iterations", int64(c.Iterations))
		sp.SetInt("isp_repairs", int64(c.NodeRepairs+c.EdgeRepairs))
		sp.SetInt("lp_calls", int64(c.Routability.Calls))
		sp.SetInt("lp_rebuilds", int64(c.Routability.Rebuilds))
		sp.SetInt("lp_warm_starts", int64(c.Routability.WarmStarts))
	}
	if m := st.MILP; m != nil {
		sp.SetInt("opt_nodes", int64(m.Nodes))
		sp.SetInt("opt_rounds", int64(m.Rounds))
		sp.SetInt("opt_steals", int64(m.Steals))
		sp.SetInt("opt_incumbents", int64(len(m.Incumbents)))
		sp.SetInt("lp_iterations", int64(m.LPIterations))
		sp.SetInt("lp_refactorisations", int64(m.Refactorisations))
		sp.SetInt("lp_warm_solves", int64(m.WarmSolves))
		sp.SetInt("lp_cold_solves", int64(m.ColdSolves))
		if n := len(m.Incumbents); n > 0 {
			last := m.Incumbents[n-1]
			sp.SetAttr("opt_best_objective", formatFloatAttr(last.Objective))
			sp.SetAttr("opt_best_bound", formatFloatAttr(last.Bound))
		}
	}
}

func formatFloatAttr(f float64) string {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return "none"
	}
	return strconv.FormatFloat(f, 'g', 6, 64)
}

// buildResponse converts a solve outcome into the wire response, attaching
// the progressive timeline and (on request) the traced timing breakdown.
func (srv *Server) buildResponse(ctx context.Context, out *solveOutcome, opts wire.SolveOptions) (wire.PlanResponse, *httpError) {
	wp := wire.FromPlan(out.scenario, out.plan)
	if opts.StageBudget > 0 {
		staged, err := wp.WithStages(out.scenario, out.plan, opts.StageBudget)
		if err != nil {
			return wire.PlanResponse{}, badRequest("%v", err)
		}
		wp = staged
	}
	resp := wire.PlanResponse{
		Plan: wp,
		Cache: wire.CacheInfo{
			Status:      out.status,
			Fingerprint: out.fp,
			AgeMS:       out.age.Milliseconds(),
		},
		Degradation: out.degradation,
	}
	if opts.Timing {
		resp.Timing = timingFromTrace(ctx)
	}
	return resp, nil
}

// timingFromTrace snapshots the request's trace (the spans finished so far
// — i.e. everything but the still-open root) into the opt-in wire.Timing
// block. Returns nil when the request is untraced.
func timingFromTrace(ctx context.Context) *wire.Timing {
	traceID, spans := obs.SnapshotTrace(ctx)
	if traceID == "" || len(spans) == 0 {
		return nil
	}
	t := &wire.Timing{TraceID: traceID, Spans: make([]wire.TimingSpan, 0, len(spans))}
	for _, sp := range spans {
		ts := wire.TimingSpan{
			Name:       sp.Name,
			StartUS:    sp.StartUS,
			DurationUS: sp.DurationUS,
			Error:      sp.Err,
		}
		if len(sp.Attrs) > 0 {
			ts.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				ts.Attrs[a.Key] = a.Value
			}
		}
		t.Spans = append(t.Spans, ts)
	}
	return t
}

// handlePlan implements POST /v1/plan.
func (srv *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	srv.requests.Add(1)
	if r.Method != http.MethodPost {
		srv.writeError(w, &httpError{code: http.StatusMethodNotAllowed, err: errors.New("use POST")})
		return
	}
	var req wire.PlanRequest
	if herr := decodeJSON(r, &req); herr != nil {
		srv.writeError(w, herr)
		return
	}
	ctx, cancel := srv.requestContext(r)
	defer cancel()
	out, herr := srv.solveRequest(ctx, req, nil)
	if herr != nil {
		srv.writeError(w, herr)
		return
	}
	resp, herr := srv.buildResponse(ctx, out, req.Options)
	if herr != nil {
		srv.writeError(w, herr)
		return
	}
	srv.writeJSON(w, http.StatusOK, resp)
}

// progressEvent is the SSE wire form of a solver progress event.
type progressEvent struct {
	Solver    string  `json:"solver"`
	Kind      string  `json:"kind"`
	Iteration int     `json:"iteration,omitempty"`
	Repairs   int     `json:"repairs,omitempty"`
	Incumbent float64 `json:"incumbent,omitempty"`
	Bound     float64 `json:"bound,omitempty"`
	Nodes     int     `json:"nodes,omitempty"`
}

// handlePlanStream implements GET /v1/plan/stream: the same request body as
// /v1/plan, answered as a Server-Sent Events stream of `progress` events
// followed by one final `plan` (or `error`) event. Progress events are only
// emitted when this request executes the solve itself — a cache hit or a
// coalesced request jumps straight to the final event.
func (srv *Server) handlePlanStream(w http.ResponseWriter, r *http.Request) {
	srv.requests.Add(1)
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		srv.writeError(w, &httpError{code: http.StatusMethodNotAllowed, err: errors.New("use GET or POST with a JSON body")})
		return
	}
	var req wire.PlanRequest
	if herr := decodeJSON(r, &req); herr != nil {
		srv.writeError(w, herr)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		srv.writeError(w, &httpError{code: http.StatusInternalServerError, err: errors.New("response writer does not support streaming")})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	srv.sseStreams.Add(1)
	defer srv.sseStreams.Add(-1)

	// Solver progress callbacks can fire from solver-internal goroutines;
	// serialise all writes to the stream.
	var mu sync.Mutex
	emit := func(event string, payload any) {
		// The SSE fault point models a stuck or dead client connection:
		// an injected delay stalls this write, an injected error drops it.
		if err := faultinject.Fire(r.Context(), faultinject.PointSSE); err != nil {
			return
		}
		raw, err := json.Marshal(payload)
		if err != nil {
			return
		}
		mu.Lock()
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, raw)
		flusher.Flush()
		mu.Unlock()
	}
	progress := func(ev heuristics.ProgressEvent) {
		emit("progress", progressEvent{
			Solver:    ev.Solver,
			Kind:      ev.Kind,
			Iteration: ev.Iteration,
			Repairs:   ev.Repairs,
			Incumbent: finiteOrZero(ev.Incumbent),
			Bound:     finiteOrZero(ev.Bound),
			Nodes:     ev.Nodes,
		})
	}

	ctx, cancel := srv.requestContext(r)
	defer cancel()
	out, herr := srv.solveRequest(ctx, req, progress)
	if herr != nil {
		srv.errorsTot.Add(1)
		emit("error", wire.Error{Error: herr.Error()})
		return
	}
	resp, herr := srv.buildResponse(ctx, out, req.Options)
	if herr != nil {
		srv.errorsTot.Add(1)
		emit("error", wire.Error{Error: herr.Error()})
		return
	}
	emit("plan", resp)
}

// finiteOrZero maps the solver's +-Inf sentinel values (no incumbent yet) to
// 0, which JSON can carry.
func finiteOrZero(f float64) float64 {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return 0
	}
	return f
}

// handleSweep implements POST /v1/sweep: the request body is a sweep.Spec;
// the response is the aggregated sweep.Report. The sweep runs on the
// engine's own worker pool and is accounted against the same admission
// budget as plan solves: it acquires one admission token per sweep worker
// (the worker count is clamped to the admission bound, and the per-job
// solver parallelism defaults to 1 instead of the engine's
// machine-owning heuristic), so concurrent sweeps and plan traffic
// together never exceed MaxInFlight executing solver workers.
func (srv *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	srv.requests.Add(1)
	if r.Method != http.MethodPost {
		srv.writeError(w, &httpError{code: http.StatusMethodNotAllowed, err: errors.New("use POST")})
		return
	}
	var spec sweep.Spec
	if herr := decodeJSON(r, &spec); herr != nil {
		srv.writeError(w, herr)
		return
	}
	if err := spec.Validate(); err != nil {
		srv.writeError(w, badRequest("%v", err))
		return
	}
	if spec.Workers <= 0 || spec.Workers > cap(srv.sem) {
		spec.Workers = cap(srv.sem)
	}
	if spec.SolverWorkers == 0 {
		// The engine's zero-default assumes it owns the machine
		// (GOMAXPROCS / pool); under shared admission each sweep job gets
		// exactly the one core its token represents.
		spec.SolverWorkers = 1
	}
	ctx, cancel := srv.requestContext(r)
	defer cancel()
	if herr := srv.acquireSlots(ctx, spec.Workers, prioSweep); herr != nil {
		srv.writeError(w, herr)
		return
	}
	defer srv.releaseSlots(spec.Workers)
	srv.inFlight.Add(1)
	report, err := sweep.Run(ctx, spec)
	srv.inFlight.Add(-1)
	if err != nil {
		srv.writeError(w, solveError(err))
		return
	}
	srv.writeJSON(w, http.StatusOK, report)
}

// acquireSlots takes n admission tokens for a bulk run of the given
// priority class, serialised so that concurrent multi-token acquisitions
// cannot deadlock holding partial sets. Each token that must wait counts
// against the class's queue-depth limit, so a bulk run beyond its class
// budget is shed rather than parked. On context cancellation or shed the
// tokens already held are returned.
func (srv *Server) acquireSlots(ctx context.Context, n, prio int) *httpError {
	srv.sweepMu.Lock()
	defer srv.sweepMu.Unlock()
	for i := 0; i < n; i++ {
		select {
		case srv.sem <- struct{}{}:
			continue
		default:
		}
		q := srv.queued.Add(1)
		if q > srv.classLimit(prio) {
			srv.queued.Add(-1)
			srv.shed[prio].Add(1)
			srv.releaseSlots(i)
			return &httpError{
				code:       http.StatusTooManyRequests,
				err:        fmt.Errorf("admission queue full for class %q (%d queued)", prioNames[prio], q-1),
				retryAfter: srv.retryAfterSeconds(),
			}
		}
		select {
		case srv.sem <- struct{}{}:
			srv.queued.Add(-1)
		case <-ctx.Done():
			srv.queued.Add(-1)
			srv.releaseSlots(i)
			return solveError(ctx.Err())
		}
	}
	return nil
}

// releaseSlots returns n admission tokens.
func (srv *Server) releaseSlots(n int) {
	for i := 0; i < n; i++ {
		<-srv.sem
	}
}

// handleHealthz implements GET /healthz.
func (srv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	srv.writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": srv.now().Sub(srv.start).Milliseconds(),
	})
}

// handleMetrics implements GET /metrics in the Prometheus text exposition
// format (no client library needed for counters and gauges).
func (srv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	srv.evictIdleSessions()
	st := srv.cache.Stats()
	srv.sessMu.Lock()
	openSessions := len(srv.sessions)
	srv.sessMu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b []byte
	add := func(name, help, typ string, value float64) {
		b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, value)...)
	}
	add("nrserved_requests_total", "HTTP requests received.", "counter", float64(srv.requests.Load()))
	add("nrserved_errors_total", "Requests answered with an error status.", "counter", float64(srv.errorsTot.Load()))
	add("nrserved_solves_total", "Solver executions (cache hits and coalesced requests excluded).", "counter", float64(srv.solves.Load()))
	add("nrserved_inflight_solves", "Solves executing right now.", "gauge", float64(srv.inFlight.Load()))
	add("nrserved_admission_capacity", "Maximum concurrent solves.", "gauge", float64(cap(srv.sem)))
	add("nrserved_sse_streams", "Open /v1/plan/stream connections.", "gauge", float64(srv.sseStreams.Load()))
	add("nrserved_cache_hits_total", "Plan-cache hits.", "counter", float64(st.Hits))
	add("nrserved_cache_misses_total", "Plan-cache misses (leader solves).", "counter", float64(st.Misses))
	add("nrserved_cache_coalesced_total", "Requests coalesced onto an in-flight identical solve.", "counter", float64(st.Coalesced))
	add("nrserved_cache_evictions_total", "Plan-cache LRU evictions.", "counter", float64(st.Evictions))
	add("nrserved_cache_expired_total", "Plan-cache TTL expirations.", "counter", float64(st.Expired))
	add("nrserved_cache_reelections_total", "Coalesced waiters that re-competed for solve leadership after their leader was cancelled.", "counter", float64(st.Reelections))
	add("nrserved_cache_entries", "Cached plans.", "gauge", float64(st.Entries))
	add("nrserved_sessions", "Open planning sessions.", "gauge", float64(openSessions))
	add("nrserved_sessions_opened_total", "Planning sessions opened.", "counter", float64(srv.sessionsOpened.Load()))
	add("nrserved_sessions_expired_total", "Planning sessions evicted by the idle TTL.", "counter", float64(srv.sessionsExpired.Load()))
	add("nrserved_session_replans_total", "Delta-triggered session re-plans.", "counter", float64(srv.sessionReplans.Load()))
	add("nrserved_ensembles_total", "Ensemble runs completed.", "counter", float64(srv.ensembles.Load()))
	add("nrserved_ensemble_samples_total", "Disruption samples drawn across ensemble runs.", "counter", float64(srv.ensembleSamples.Load()))
	add("nrserved_ensemble_cache_hits_total", "Unique ensemble scenarios answered from the plan cache.", "counter", float64(srv.ensembleCacheHits.Load()))
	add("nrserved_solver_panics_total", "Solver panics converted to errors at the recovery boundary.", "counter", float64(srv.solverPanics.Load()))
	add("nrserved_solver_retries_total", "Transient solve failures retried with backoff.", "counter", float64(srv.solverRetries.Load()))
	add("nrserved_degraded_fallback_total", "Plan requests served by the fast-ISP fallback stage.", "counter", float64(srv.degradedFallback.Load()))
	add("nrserved_degraded_stale_total", "Plan requests served from a stale cache entry.", "counter", float64(srv.degradedStale.Load()))
	add("nrserved_degrade_exhausted_total", "Plan requests whose fallback chain exhausted every stage.", "counter", float64(srv.degradeExhausted.Load()))
	add("nrserved_cache_stale_served_total", "Expired cache entries served by the degradation chain.", "counter", float64(st.StaleServed))
	add("nrserved_cache_unavailable_total", "Cache lookups failed by an (injected) shard fault.", "counter", float64(st.Unavailable))
	add("nrserved_admission_queued", "Solves waiting for an admission slot.", "gauge", float64(srv.queued.Load()))
	add("nrserved_admission_queue_capacity", "Admission queue bound (sheds beyond it).", "gauge", float64(srv.maxQueue))
	add("nrserved_peer_lookups_total", "Peer-fill lookups served on /v1/peer/plan.", "counter", float64(srv.peerLookups.Load()))
	add("nrserved_peer_served_total", "Peer-fill lookups answered with a cached plan.", "counter", float64(srv.peerServed.Load()))
	add("nrserved_peer_filled_plans_total", "Plan requests this node answered by fetching the owner peer's cached plan.", "counter", float64(srv.peerFilledPlans.Load()))
	if cl := srv.cfg.Cluster; cl != nil {
		cs := cl.Stats()
		add("nrserved_cluster_peers", "Static cluster membership size (including self).", "gauge", float64(cs.Peers))
		add("nrserved_cluster_peers_alive", "Peers currently in the ring (including self).", "gauge", float64(cs.Alive))
		add("nrserved_peer_fills_total", "Peer-fill attempts dispatched to owners.", "counter", float64(cs.Fills))
		add("nrserved_peer_fill_hits_total", "Peer-fills answered from the owner's cache.", "counter", float64(cs.Hits))
		add("nrserved_peer_fill_misses_total", "Peer-fills the owner had nothing cached for.", "counter", float64(cs.Misses))
		add("nrserved_peer_fill_errors_total", "Peer-fills failed by transport or decode errors.", "counter", float64(cs.Errors))
		add("nrserved_peer_fill_timeouts_total", "Peer-fills that hit their jittered deadline.", "counter", float64(cs.Timeouts))
		add("nrserved_peer_fill_dropped_total", "Peer-fills shed because the owner's bounded mailbox was full.", "counter", float64(cs.Dropped))
		add("nrserved_peer_fill_breaker_skipped_total", "Peer-fills refused by the owner's open circuit breaker.", "counter", float64(cs.BreakerSkipped))
		add("nrserved_peer_ejections_total", "Peers ejected from the ring by failed health probes.", "counter", float64(cs.Ejections))
		add("nrserved_peer_readmissions_total", "Ejected peers readmitted after a successful probe.", "counter", float64(cs.Readmissions))
	}

	// Labeled families are emitted by hand in a fixed order so the
	// exposition stays byte-deterministic for a given state.
	header := func(name, help, typ string) {
		b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)...)
	}
	header("nrserved_shed_total", "Requests shed by the bounded priority admission queue.", "counter")
	for i, class := range prioNames {
		b = append(b, fmt.Sprintf("nrserved_shed_total{class=%q} %g\n", class, float64(srv.shed[i].Load()))...)
	}
	algs, breakers := srv.breakerSnapshots()
	header("nrserved_breaker_state", "Circuit breaker state per algorithm (0 closed, 1 open, 2 half-open).", "gauge")
	for i, alg := range algs {
		b = append(b, fmt.Sprintf("nrserved_breaker_state{algorithm=%q} %g\n", alg, float64(breakers[i].State))...)
	}
	header("nrserved_breaker_opens_total", "Circuit breaker trips into the open state.", "counter")
	for i, alg := range algs {
		b = append(b, fmt.Sprintf("nrserved_breaker_opens_total{algorithm=%q} %g\n", alg, float64(breakers[i].Opens))...)
	}
	header("nrserved_breaker_half_opens_total", "Circuit breaker transitions into half-open probing.", "counter")
	for i, alg := range algs {
		b = append(b, fmt.Sprintf("nrserved_breaker_half_opens_total{algorithm=%q} %g\n", alg, float64(breakers[i].HalfOpens))...)
	}
	header("nrserved_breaker_closes_total", "Circuit breaker recoveries into the closed state.", "counter")
	for i, alg := range algs {
		b = append(b, fmt.Sprintf("nrserved_breaker_closes_total{algorithm=%q} %g\n", alg, float64(breakers[i].Closes))...)
	}

	fi := faultinject.Snapshot()
	armed := 0.0
	if faultinject.Armed() {
		armed = 1
	}
	add("nrserved_faultinject_armed", "1 when a fault-injection profile is armed.", "gauge", armed)
	add("nrserved_faultinject_fires_total", "Fault points evaluated while armed.", "counter", float64(fi.Fires))
	add("nrserved_faultinject_delays_total", "Injected delays.", "counter", float64(fi.Delays))
	add("nrserved_faultinject_errors_total", "Injected errors.", "counter", float64(fi.Errors))
	add("nrserved_faultinject_panics_total", "Injected panics.", "counter", float64(fi.Panics))
	b = appendHistograms(b, srv.routeHists)
	add("nrserved_uptime_seconds", "Seconds since the server started.", "gauge", srv.now().Sub(srv.start).Seconds())
	w.Write(b)
}

// resolveWorkers derives the in-solve parallelism for a request: an explicit
// request value wins (clamped to GOMAXPROCS — a client must not be able to
// demand arbitrary parallelism), then the configured default, then
// GOMAXPROCS divided by the admission bound (so admission x solver
// parallelism never oversubscribes the machine).
func (srv *Server) resolveWorkers(requested int) int {
	if requested != 0 {
		if max := runtime.GOMAXPROCS(0); requested > max {
			return max
		}
		return requested
	}
	if srv.cfg.SolverWorkers != 0 {
		return srv.cfg.SolverWorkers
	}
	if w := runtime.GOMAXPROCS(0) / cap(srv.sem); w > 1 {
		return w
	}
	return -1 // negative = sequential, see heuristics.Params.OPTWorkers
}

// decodeJSON parses a request body into v.
func decodeJSON(r *http.Request, v any) *httpError {
	body := http.MaxBytesReader(nil, r.Body, maxRequestBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return badRequest("empty request body (expected JSON)")
		}
		return badRequest("invalid JSON request: %v", err)
	}
	return nil
}

// writeJSON writes a JSON response.
func (srv *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the JSON error envelope and counts the failure. Shed
// and unavailable responses carry a Retry-After hint.
func (srv *Server) writeError(w http.ResponseWriter, herr *httpError) {
	srv.errorsTot.Add(1)
	if herr.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(herr.retryAfter))
	}
	srv.writeJSON(w, herr.code, wire.Error{Error: herr.Error()})
}
