package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"netrecovery/internal/ensemble"
	"netrecovery/internal/faultinject"
	"netrecovery/internal/wire"
)

// buildEnsembleSpec validates an ensemble request and prepares the engine
// spec under the server's admission policy: the solve pool is clamped to the
// admission capacity, per-solve parallelism defaults to 1 (each pool worker
// owns exactly the one admission token it holds), and unique-scenario solves
// route through the shared plan cache — an ensemble repeated, or one
// overlapping plan traffic, hits instead of solving.
func (srv *Server) buildEnsembleSpec(req wire.EnsembleRequest) (ensemble.Spec, *httpError) {
	spec, err := req.BuildSpec()
	if err != nil {
		return ensemble.Spec{}, badRequest("invalid ensemble request: %v", err)
	}
	if spec.Workers <= 0 || spec.Workers > cap(srv.sem) {
		spec.Workers = cap(srv.sem)
	}
	if spec.Workers > spec.Samples && spec.Samples > 0 {
		spec.Workers = spec.Samples
	}
	spec.SolverWorkers = 1
	spec.Cache = srv.cache
	if err := spec.Validate(); err != nil {
		return ensemble.Spec{}, badRequest("%v", err)
	}
	return spec, nil
}

// runEnsemble executes a prepared spec with admission accounting: one token
// per pool worker, like /v1/sweep, so ensembles and plan traffic together
// never exceed MaxInFlight executing solver workers.
func (srv *Server) runEnsemble(r *http.Request, spec ensemble.Spec) (*ensemble.Report, *httpError) {
	ctx, cancel := srv.requestContext(r)
	defer cancel()
	// Ensembles are the lowest priority class: bulk Monte-Carlo work is
	// the cheapest to shed and retry when the box is contended.
	if herr := srv.acquireSlots(ctx, spec.Workers, prioEnsemble); herr != nil {
		return nil, herr
	}
	defer srv.releaseSlots(spec.Workers)
	srv.inFlight.Add(1)
	defer srv.inFlight.Add(-1)

	// Transient per-unique failures retry under the server's policy (and
	// count on the retry metric).
	spec.Retry = srv.retryPolicy()
	rep, err := ensemble.Run(ctx, spec)
	if err != nil {
		return nil, solveError(err)
	}
	srv.ensembles.Add(1)
	srv.ensembleSamples.Add(uint64(rep.Samples))
	srv.ensembleCacheHits.Add(uint64(rep.CacheHits))
	srv.solves.Add(uint64(rep.Solves))
	return rep, nil
}

// handleEnsemble implements POST /v1/ensemble: draw a Monte-Carlo ensemble
// of disruptions over the request scenario, solve the unique samples through
// the plan cache and answer with the aggregated robust-plan report.
func (srv *Server) handleEnsemble(w http.ResponseWriter, r *http.Request) {
	srv.requests.Add(1)
	if r.Method != http.MethodPost {
		srv.writeError(w, &httpError{code: http.StatusMethodNotAllowed, err: errors.New("use POST")})
		return
	}
	var req wire.EnsembleRequest
	if herr := decodeJSON(r, &req); herr != nil {
		srv.writeError(w, herr)
		return
	}
	spec, herr := srv.buildEnsembleSpec(req)
	if herr != nil {
		srv.writeError(w, herr)
		return
	}
	rep, herr := srv.runEnsemble(r, spec)
	if herr != nil {
		srv.writeError(w, herr)
		return
	}
	srv.writeJSON(w, http.StatusOK, wire.FromEnsemble(spec.Scenario, rep))
}

// handleEnsembleStream implements POST /v1/ensemble/stream: the same request
// body as /v1/ensemble, answered as a Server-Sent Events stream of
// `progress` events ({done, total} in samples) followed by one final
// `ensemble` (or `error`) event.
func (srv *Server) handleEnsembleStream(w http.ResponseWriter, r *http.Request) {
	srv.requests.Add(1)
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		srv.writeError(w, &httpError{code: http.StatusMethodNotAllowed, err: errors.New("use GET or POST with a JSON body")})
		return
	}
	var req wire.EnsembleRequest
	if herr := decodeJSON(r, &req); herr != nil {
		srv.writeError(w, herr)
		return
	}
	spec, herr := srv.buildEnsembleSpec(req)
	if herr != nil {
		srv.writeError(w, herr)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		srv.writeError(w, &httpError{code: http.StatusInternalServerError, err: errors.New("response writer does not support streaming")})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	srv.sseStreams.Add(1)
	defer srv.sseStreams.Add(-1)

	var mu sync.Mutex
	emit := func(event string, payload any) {
		// Injected SSE fault: a stalled/dead ensemble-stream client.
		if err := faultinject.Fire(r.Context(), faultinject.PointSSE); err != nil {
			return
		}
		raw, err := json.Marshal(payload)
		if err != nil {
			return
		}
		mu.Lock()
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, raw)
		flusher.Flush()
		mu.Unlock()
	}
	spec.OnProgress = func(p ensemble.Progress) { emit("progress", p) }

	rep, herr := srv.runEnsemble(r, spec)
	if herr != nil {
		srv.errorsTot.Add(1)
		emit("error", wire.Error{Error: herr.Error()})
		return
	}
	emit("ensemble", wire.FromEnsemble(spec.Scenario, rep))
}
