package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netrecovery/internal/degrade"
	"netrecovery/internal/faultinject"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/plancache"
	"netrecovery/internal/scenario"
	"netrecovery/internal/wire"
)

// flakyFail switches the FLAKY-test solver between failing and solving.
var flakyFail atomic.Bool

// flakySolver fails (permanently, non-transiently) while flakyFail is set
// and solves like the gated solver otherwise. Registered once under
// "FLAKY-test" for breaker and degradation tests.
type flakySolver struct{}

func (flakySolver) Name() string { return "FLAKY-test" }

func (flakySolver) Solve(ctx context.Context, s *scenario.Scenario) (*scenario.Plan, error) {
	if flakyFail.Load() {
		return nil, fmt.Errorf("flaky: induced failure")
	}
	return gatedSolver{}.Solve(ctx, s)
}

func init() {
	heuristics.Register(heuristics.Info{
		Name:        "FLAKY-test",
		Description: "test-only solver with a failure switch",
		Scalability: "tests",
	}, func(heuristics.Params) heuristics.Solver { return flakySolver{} })
}

// immediateSleep makes retry backoffs instantaneous (still context-aware).
func immediateSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// degradedResponse is the full /v1/plan envelope including the degradation
// block.
type degradedResponse struct {
	Plan        json.RawMessage   `json:"plan"`
	Cache       wire.CacheInfo    `json:"cache"`
	Degradation *wire.Degradation `json:"degradation"`
}

func postPlanRaw(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// metricValue extracts one (possibly labeled) metric line's value.
func metricValue(t *testing.T, metrics, line string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(line) + ` ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(metrics)
	if m == nil {
		t.Fatalf("metric line %q not found in:\n%s", line, metrics)
	}
	var v float64
	fmt.Sscanf(m[1], "%g", &v)
	return v
}

// TestDegradedFallbackServes: the primary solver (gated, never released)
// exhausts its deadline slice; the fast-ISP fallback serves within budget
// and the response is annotated level=fallback.
func TestDegradedFallbackServes(t *testing.T) {
	g := &gateState{started: make(chan struct{}, 8), release: make(chan struct{})}
	gate.Store(g)
	defer gate.Store(nil)

	srv := New(Config{Retry: degrade.RetryPolicy{MaxAttempts: 1}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := planRequestBody(t, "GATED-test", wire.SolveOptions{DeadlineMS: 600})
	resp, raw := postPlanRaw(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d body = %s", resp.StatusCode, raw)
	}
	var dr degradedResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Degradation == nil {
		t.Fatalf("no degradation block: %s", raw)
	}
	d := dr.Degradation
	if d.Level != "fallback" || d.ServedBy != "fallback_isp" {
		t.Fatalf("level=%q served_by=%q, want fallback/fallback_isp", d.Level, d.ServedBy)
	}
	if len(d.Stages) != 2 || d.Stages[0].Stage != "primary" || d.Stages[0].Outcome != "timeout" {
		t.Fatalf("stages = %+v", d.Stages)
	}
	if d.Stages[1].Stage != "fallback_isp" || d.Stages[1].Outcome != "served" {
		t.Fatalf("stages = %+v", d.Stages)
	}
	if len(dr.Plan) == 0 {
		t.Fatal("degraded response carries no plan")
	}

	metrics := fetchMetrics(t, ts)
	if v := metricValue(t, metrics, "nrserved_degraded_fallback_total"); v != 1 {
		t.Fatalf("nrserved_degraded_fallback_total = %g, want 1", v)
	}
}

// TestDegradedStaleServes: with every live solve failing and the cached
// plan expired, the free stale_cache stage still serves the old plan.
func TestDegradedStaleServes(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	var clockMu sync.Mutex
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		clock = clock.Add(d)
		clockMu.Unlock()
	}
	cache := plancache.New(plancache.Config{TTL: time.Minute, Now: now})
	srv := New(Config{
		Cache: cache,
		Retry: degrade.RetryPolicy{MaxAttempts: 2, Sleep: immediateSleep},
		// Keep the breaker out of this test's way.
		Breaker: degrade.BreakerConfig{ConsecutiveFailures: 1000, MinSamples: 1000},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Seed the cache with a healthy solve, then expire it.
	body := planRequestBody(t, "ISP", wire.SolveOptions{Fast: true})
	if code, parsed := postPlan(t, ts, body); code != http.StatusOK || parsed.Cache.Status != "miss" {
		t.Fatalf("seed solve: code=%d cache=%+v", code, parsed.Cache)
	}
	advance(2 * time.Minute)

	// Every live solve now fails with an injected (transient) error.
	faultinject.Arm(faultinject.Profile{Seed: 7, Points: map[faultinject.Point]faultinject.Spec{
		faultinject.PointSolver: {ErrorRate: 1},
	}})
	defer faultinject.Disarm()

	body = planRequestBody(t, "ISP", wire.SolveOptions{Fast: true, DeadlineMS: 500})
	resp, raw := postPlanRaw(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d body = %s", resp.StatusCode, raw)
	}
	var dr degradedResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Degradation == nil || dr.Degradation.Level != "stale" || dr.Degradation.ServedBy != "stale_cache" {
		t.Fatalf("degradation = %+v", dr.Degradation)
	}
	if dr.Cache.Status != "stale" || dr.Cache.AgeMS <= 0 {
		t.Fatalf("cache = %+v, want stale with positive age", dr.Cache)
	}
	last := dr.Degradation.Stages[len(dr.Degradation.Stages)-1]
	if last.Stage != "stale_cache" || last.Outcome != "served" {
		t.Fatalf("stages = %+v", dr.Degradation.Stages)
	}
	// The transient injected error was retried before falling through.
	if dr.Degradation.Stages[0].Attempts != 2 {
		t.Fatalf("primary attempts = %d, want 2", dr.Degradation.Stages[0].Attempts)
	}

	metrics := fetchMetrics(t, ts)
	if v := metricValue(t, metrics, "nrserved_degraded_stale_total"); v != 1 {
		t.Fatalf("nrserved_degraded_stale_total = %g, want 1", v)
	}
	if v := metricValue(t, metrics, "nrserved_cache_stale_served_total"); v != 1 {
		t.Fatalf("nrserved_cache_stale_served_total = %g, want 1", v)
	}
	if v := metricValue(t, metrics, "nrserved_solver_retries_total"); v < 1 {
		t.Fatalf("nrserved_solver_retries_total = %g, want >= 1", v)
	}
}

// TestChaosInjectedErrorsNeverRaw500 is the headline chaos property: with
// solver faults armed (delay + errors), every plan request within its
// deadline budget is answered 200 — degraded when necessary — and never
// with a raw 500. The profile seed is pinned, requests are sequential, so
// the run is reproducible.
func TestChaosInjectedErrorsNeverRaw500(t *testing.T) {
	faultinject.Arm(faultinject.Profile{Seed: 42, Points: map[faultinject.Point]faultinject.Spec{
		faultinject.PointSolver: {Delay: 2 * time.Millisecond, ErrorRate: 0.3},
	}})
	defer faultinject.Disarm()

	srv := New(Config{
		DegradeDeadline: 2 * time.Second,
		Retry:           degrade.RetryPolicy{MaxAttempts: 3, Sleep: immediateSleep},
		Breaker:         degrade.BreakerConfig{ConsecutiveFailures: 1000, MinSamples: 1000},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	degradedSeen := 0
	for i := 0; i < 30; i++ {
		// NoCache keeps every request solving live through the faults.
		body := planRequestBody(t, "ISP", wire.SolveOptions{Fast: true, NoCache: true})
		resp, raw := postPlanRaw(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d body = %s", i, resp.StatusCode, raw)
		}
		var dr degradedResponse
		if err := json.Unmarshal(raw, &dr); err != nil {
			t.Fatal(err)
		}
		if dr.Degradation == nil {
			t.Fatalf("request %d: no degradation annotation: %s", i, raw)
		}
		if dr.Degradation.Level != "none" {
			degradedSeen++
		}
		if len(dr.Plan) == 0 {
			t.Fatalf("request %d: no plan", i)
		}
	}

	metrics := fetchMetrics(t, ts)
	if v := metricValue(t, metrics, "nrserved_faultinject_errors_total"); v < 1 {
		t.Fatalf("expected injected errors, metrics:\n%s", metrics)
	}
	if v := metricValue(t, metrics, "nrserved_faultinject_delays_total"); v < 1 {
		t.Fatal("expected injected delays")
	}
	if v := metricValue(t, metrics, "nrserved_solver_retries_total"); v < 1 {
		t.Fatal("expected transient retries under 30% injected errors")
	}
	t.Logf("degraded responses: %d/30, retries: %g", degradedSeen,
		metricValue(t, metrics, "nrserved_solver_retries_total"))
}

// TestBreakerLifecycle drives one algorithm's circuit breaker through
// closed -> open -> half-open -> closed, pinned through /metrics names.
func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	var clockMu sync.Mutex
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		clock = clock.Add(d)
		clockMu.Unlock()
	}

	srv := New(Config{
		Now: now,
		Breaker: degrade.BreakerConfig{
			ConsecutiveFailures: 3,
			MinSamples:          100, // ratio condition out of the way
			Cooldown:            10 * time.Second,
		},
		Retry: degrade.RetryPolicy{MaxAttempts: 1},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	flakyFail.Store(true)
	defer flakyFail.Store(false)
	body := planRequestBody(t, "FLAKY-test", wire.SolveOptions{NoCache: true})

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		resp, _ := postPlanRaw(t, ts, body)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failure %d: status = %d, want 500", i, resp.StatusCode)
		}
	}
	metrics := fetchMetrics(t, ts)
	if v := metricValue(t, metrics, `nrserved_breaker_state{algorithm="FLAKY-test"}`); v != 1 {
		t.Fatalf("breaker state = %g, want 1 (open)\n%s", v, metrics)
	}
	if v := metricValue(t, metrics, `nrserved_breaker_opens_total{algorithm="FLAKY-test"}`); v != 1 {
		t.Fatalf("opens = %g, want 1", v)
	}

	// While open: refused fast with 503 + Retry-After.
	resp, raw := postPlanRaw(t, ts, body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status = %d body = %s", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("open breaker: Retry-After = %q, want positive seconds", ra)
	}
	if !strings.Contains(string(raw), "circuit breaker open") {
		t.Fatalf("open breaker error body = %s", raw)
	}

	// After the cooldown the half-open probe runs; it succeeds and the
	// breaker closes again.
	advance(11 * time.Second)
	flakyFail.Store(false)
	resp, raw = postPlanRaw(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe: status = %d body = %s", resp.StatusCode, raw)
	}
	metrics = fetchMetrics(t, ts)
	if v := metricValue(t, metrics, `nrserved_breaker_state{algorithm="FLAKY-test"}`); v != 0 {
		t.Fatalf("breaker state = %g, want 0 (closed)", v)
	}
	if v := metricValue(t, metrics, `nrserved_breaker_half_opens_total{algorithm="FLAKY-test"}`); v != 1 {
		t.Fatalf("half_opens = %g, want 1", v)
	}
	if v := metricValue(t, metrics, `nrserved_breaker_closes_total{algorithm="FLAKY-test"}`); v != 1 {
		t.Fatalf("closes = %g, want 1", v)
	}
	if v := metricValue(t, metrics, "nrserved_solver_panics_total"); v != 0 {
		t.Fatalf("panics = %g, want 0", v)
	}
}

// TestBreakerSkipsPrimaryInChain: with the primary algorithm's breaker
// open, the fallback chain skips the primary stage outright (outcome
// "skipped") instead of burning deadline budget on a doomed solve.
func TestBreakerSkipsPrimaryInChain(t *testing.T) {
	srv := New(Config{
		Breaker: degrade.BreakerConfig{ConsecutiveFailures: 2, Cooldown: time.Hour},
		Retry:   degrade.RetryPolicy{MaxAttempts: 1},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	flakyFail.Store(true)
	defer flakyFail.Store(false)
	plain := planRequestBody(t, "FLAKY-test", wire.SolveOptions{NoCache: true})
	for i := 0; i < 2; i++ {
		if resp, _ := postPlanRaw(t, ts, plain); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("priming failure %d unexpected status %d", i, resp.StatusCode)
		}
	}

	degraded := planRequestBody(t, "FLAKY-test", wire.SolveOptions{NoCache: true, DeadlineMS: 500})
	resp, raw := postPlanRaw(t, ts, degraded)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d body = %s", resp.StatusCode, raw)
	}
	var dr degradedResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Degradation == nil || dr.Degradation.Level != "fallback" {
		t.Fatalf("degradation = %+v", dr.Degradation)
	}
	st := dr.Degradation.Stages[0]
	if st.Stage != "primary" || st.Outcome != "skipped" || !strings.Contains(st.Error, "circuit breaker open") {
		t.Fatalf("primary stage = %+v, want skipped by open breaker", st)
	}
}

// TestPriorityLoadShedding: with capacity saturated and the plan class's
// queue backlog full, further plan requests are shed with 429 +
// Retry-After instead of queueing unboundedly; queued requests complete
// once the gate opens.
func TestPriorityLoadShedding(t *testing.T) {
	g := &gateState{started: make(chan struct{}, 8), release: make(chan struct{})}
	gate.Store(g)
	defer gate.Store(nil)

	// Capacity 1, queue 4: class limits ensemble=1 sweep=2 plan=3 session=4.
	srv := New(Config{MaxInFlight: 1, MaxQueue: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Open the gate even on a failing path, or Close would wait on the
	// parked requests forever.
	releaseGate := sync.OnceFunc(func() { close(g.release) })
	defer releaseGate()

	body := planRequestBody(t, "GATED-test", wire.SolveOptions{NoCache: true})

	// Occupy the only slot.
	var wg sync.WaitGroup
	results := make(chan int, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postPlanRaw(t, ts, body)
		results <- resp.StatusCode
	}()
	<-g.started

	// Fill the plan class's queue allowance (3).
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postPlanRaw(t, ts, body)
			results <- resp.StatusCode
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.queued.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d", srv.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// One more plan request goes over the class limit: shed.
	resp, raw := postPlanRaw(t, ts, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d body = %s", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if !strings.Contains(string(raw), `admission queue full for class \"plan\"`) {
		t.Fatalf("shed body = %s", raw)
	}

	metrics := fetchMetrics(t, ts)
	if v := metricValue(t, metrics, `nrserved_shed_total{class="plan"}`); v != 1 {
		t.Fatalf("shed{plan} = %g, want 1", v)
	}
	for _, class := range []string{"ensemble", "sweep", "session"} {
		if v := metricValue(t, metrics, fmt.Sprintf("nrserved_shed_total{class=%q}", class)); v != 0 {
			t.Fatalf("shed{%s} = %g, want 0", class, v)
		}
	}

	// Release the gate: every queued request completes successfully.
	releaseGate()
	wg.Wait()
	close(results)
	for code := range results {
		if code != http.StatusOK {
			t.Fatalf("queued request finished with %d", code)
		}
	}
}

// TestDegradedResponseByteDeterminism: under a non-advancing fake clock the
// full degraded response — plan, cache block, degradation annotation with
// stage timings — is byte-identical across repeated identical requests.
func TestDegradedResponseByteDeterminism(t *testing.T) {
	fixed := time.Unix(1700000000, 0)
	now := func() time.Time { return fixed }
	srv := New(Config{
		Now:     now,
		Retry:   degrade.RetryPolicy{MaxAttempts: 1},
		Breaker: degrade.BreakerConfig{ConsecutiveFailures: 1000, MinSamples: 1000},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	flakyFail.Store(true)
	defer flakyFail.Store(false)
	// Cached (not bypassed): from the second request on, the fallback stage
	// hits the cache, so the identical stored plan plus the fake clock make
	// the entire response byte-stable.
	body := planRequestBody(t, "FLAKY-test", wire.SolveOptions{DeadlineMS: 250})

	var first []byte
	for i := 0; i < 4; i++ {
		resp, raw := postPlanRaw(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status = %d body = %s", i, resp.StatusCode, raw)
		}
		if i <= 1 {
			first = raw // run 0 is the cold miss; runs 1+ must agree
			continue
		}
		if !bytes.Equal(first, raw) {
			t.Fatalf("degraded response not byte-deterministic:\nrun 1: %s\nrun %d: %s", first, i, raw)
		}
	}

	// Pin the annotation bytes themselves (fake clock => elapsed_ms 0).
	want := `"degradation": {
    "level": "fallback",
    "served_by": "fallback_isp",
    "deadline_ms": 250,
    "stages": [
      {
        "stage": "primary",
        "outcome": "error",
        "attempts": 1,
        "elapsed_ms": 0,
        "error": "flaky: induced failure"
      },
      {
        "stage": "fallback_isp",
        "outcome": "served",
        "attempts": 1,
        "elapsed_ms": 0
      }
    ]
  }`
	if !strings.Contains(string(first), want) {
		t.Fatalf("degradation block drifted; response:\n%s", first)
	}
}

// TestNoDegradeOptOut: a request with no_degrade set fails hard (500)
// instead of falling back, even under a server-wide degradation deadline.
func TestNoDegradeOptOut(t *testing.T) {
	srv := New(Config{
		DegradeDeadline: time.Second,
		Retry:           degrade.RetryPolicy{MaxAttempts: 1},
		Breaker:         degrade.BreakerConfig{ConsecutiveFailures: 1000, MinSamples: 1000},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	flakyFail.Store(true)
	defer flakyFail.Store(false)

	resp, raw := postPlanRaw(t, ts, planRequestBody(t, "FLAKY-test", wire.SolveOptions{NoCache: true, NoDegrade: true}))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d body = %s, want plain 500", resp.StatusCode, raw)
	}
	if bytes.Contains(raw, []byte("degradation")) {
		t.Fatalf("opted-out response carries degradation block: %s", raw)
	}
}

// TestChainExhaustedReturns503: every stage failing (and no stale entry)
// answers 503 + Retry-After, not a raw 500.
func TestChainExhaustedReturns503(t *testing.T) {
	faultinject.Arm(faultinject.Profile{Seed: 3, Points: map[faultinject.Point]faultinject.Spec{
		faultinject.PointSolver: {ErrorRate: 1},
	}})
	defer faultinject.Disarm()

	srv := New(Config{
		Retry:   degrade.RetryPolicy{MaxAttempts: 2, Sleep: immediateSleep},
		Breaker: degrade.BreakerConfig{ConsecutiveFailures: 1000, MinSamples: 1000},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// NoCache: the stale stage is skipped, so the chain exhausts.
	body := planRequestBody(t, "ISP", wire.SolveOptions{Fast: true, NoCache: true, DeadlineMS: 500})
	resp, raw := postPlanRaw(t, ts, body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d body = %s, want 503", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("exhausted chain missing Retry-After")
	}
	if !strings.Contains(string(raw), "all fallback stages exhausted") {
		t.Fatalf("body = %s", raw)
	}
	metrics := fetchMetrics(t, ts)
	if v := metricValue(t, metrics, "nrserved_degrade_exhausted_total"); v != 1 {
		t.Fatalf("exhausted = %g, want 1", v)
	}
}

// TestCacheShardFaultBypassed: an injected cache-shard failure downgrades
// the request to an uncached solve (status "bypass") instead of an error.
func TestCacheShardFaultBypassed(t *testing.T) {
	faultinject.Arm(faultinject.Profile{Seed: 5, Points: map[faultinject.Point]faultinject.Spec{
		faultinject.PointCacheShard: {ErrorRate: 1},
	}})
	defer faultinject.Disarm()

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, parsed := postPlan(t, ts, planRequestBody(t, "ISP", wire.SolveOptions{Fast: true}))
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if parsed.Cache.Status != "bypass" {
		t.Fatalf("cache status = %q, want bypass under shard fault", parsed.Cache.Status)
	}
	metrics := fetchMetrics(t, ts)
	if v := metricValue(t, metrics, "nrserved_cache_unavailable_total"); v < 1 {
		t.Fatal("expected cache unavailable counter to move")
	}
}

// TestSSEFaultDropsEventsNotServer: with the SSE fault point erroring every
// emit, a plan stream yields no events but the server keeps serving.
func TestSSEFaultDropsEventsNotServer(t *testing.T) {
	faultinject.Arm(faultinject.Profile{Seed: 9, Points: map[faultinject.Point]faultinject.Spec{
		faultinject.PointSSE: {ErrorRate: 1},
	}})
	defer faultinject.Disarm()

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/plan/stream", "application/json",
		bytes.NewReader(planRequestBody(t, "ISP", wire.SolveOptions{Fast: true, NoCache: true})))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(bytes.TrimSpace(raw)) != 0 {
		t.Fatalf("expected all SSE events dropped, got: %s", raw)
	}

	// The server itself is unharmed: a plain request still solves.
	faultinject.Disarm()
	if code, _ := postPlan(t, ts, planRequestBody(t, "ISP", wire.SolveOptions{Fast: true})); code != http.StatusOK {
		t.Fatalf("post-fault plain request status = %d", code)
	}
}

// TestSessionCapacity503RetryAfter: the session-capacity rejection carries
// a Retry-After hint like every other admission rejection.
func TestSessionCapacity503RetryAfter(t *testing.T) {
	srv := New(Config{MaxSessions: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mkSession := func() *http.Response {
		raw, err := json.Marshal(wire.SessionRequest{Scenario: testScenarioJSON(), Algorithm: "ISP", Options: wire.SolveOptions{Fast: true}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := mkSession(); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first session: %d", resp.StatusCode)
	}
	resp := mkSession()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second session: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("capacity 503 missing Retry-After")
	}
}

// TestEnsembleCancellationDrainsPool: when the per-request timeout fires
// mid-ensemble the partial SSE stream must end with a terminal `error`
// event, the admission pool must drain promptly (no held slots, no
// in-flight work, empty queue), and no worker goroutines may leak.
func TestEnsembleCancellationDrainsPool(t *testing.T) {
	g := &gateState{started: make(chan struct{}, 8), release: make(chan struct{})}
	gate.Store(g)
	releaseGate := sync.OnceFunc(func() { close(g.release) })
	defer releaseGate()

	srv := New(Config{MaxInFlight: 2, RequestTimeout: 200 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := runtime.NumGoroutine()

	raw, err := json.Marshal(wire.EnsembleRequest{
		Scenario:  testScenarioJSON(),
		Sampler:   wire.EnsembleSampler{Model: "bernoulli", NodeProb: 0.3, EdgeProb: 0.3},
		Samples:   20,
		Seed:      7,
		Algorithm: "GATED-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/ensemble/stream", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(resp.Body) // reads until the handler returns
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	// The stream's final frame — not a mid-stream hiccup — is the error.
	events := regexp.MustCompile(`(?m)^event: (\S+)$`).FindAllStringSubmatch(string(stream), -1)
	if len(events) == 0 {
		t.Fatalf("no SSE events in stream: %q", stream)
	}
	if last := events[len(events)-1][1]; last != "error" {
		t.Fatalf("final SSE event = %q, want error (stream: %q)", last, stream)
	}

	// Pool drains: every admission token returned, nothing executing or
	// queued, once the blocked solver workers observe the cancellation.
	drained := func() bool {
		return srv.inFlight.Load() == 0 && len(srv.sem) == 0 && srv.queued.Load() == 0
	}
	deadline := time.Now().Add(3 * time.Second)
	for !drained() {
		if time.Now().After(deadline) {
			t.Fatalf("pool did not drain: inFlight=%d sem=%d queued=%d",
				srv.inFlight.Load(), len(srv.sem), srv.queued.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// No goroutine leak: the worker pool and SSE plumbing all exit.
	http.DefaultClient.CloseIdleConnections()
	for deadline := time.Now().Add(3 * time.Second); ; {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
