package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"netrecovery/internal/wire"
)

// ensembleRequestBody is a 50-sample bernoulli ensemble over the diamond
// scenario. The diamond has only four nodes and four links (two of each
// already broken in the base scenario), so the 50 draws collapse onto at most
// 16 distinct scenarios — dedup is guaranteed.
func ensembleRequestBody(t *testing.T, samples int) []byte {
	t.Helper()
	raw, err := json.Marshal(wire.EnsembleRequest{
		Scenario: testScenarioJSON(),
		Sampler:  wire.EnsembleSampler{Model: "bernoulli", NodeProb: 0.3, EdgeProb: 0.3},
		Samples:  samples,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func postEnsemble(t *testing.T, ts *httptest.Server, body []byte) (int, wire.EnsembleResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/ensemble", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var parsed wire.EnsembleResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &parsed); err != nil {
			t.Fatalf("bad response %s: %v", raw, err)
		}
	}
	return resp.StatusCode, parsed
}

// TestEnsembleEndpoint: POST /v1/ensemble aggregates a deduplicated ensemble,
// a repeated request answers every unique scenario from the plan cache, and
// the ensemble counters surface on /metrics under their pinned names.
func TestEnsembleEndpoint(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := ensembleRequestBody(t, 50)
	status, first := postEnsemble(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	rep := first.Report
	if rep == nil || rep.Samples != 50 {
		t.Fatalf("report = %+v", first)
	}
	if rep.Unique >= rep.Samples {
		t.Fatalf("tiny scenario space must dedup: unique=%d samples=%d", rep.Unique, rep.Samples)
	}
	if rep.Solves != rep.Unique || rep.CacheHits != 0 {
		t.Fatalf("cold run: solves=%d hits=%d unique=%d", rep.Solves, rep.CacheHits, rep.Unique)
	}
	if rep.Failures != 0 {
		t.Fatalf("failures: %d (%s)", rep.Failures, rep.FirstError)
	}
	if rep.Consensus.Threshold != 0.9 || rep.Consensus.Nodes == nil || rep.Consensus.Links == nil {
		t.Fatalf("consensus not well-formed: %+v", rep.Consensus)
	}
	if first.Fingerprint == "" {
		t.Error("response is missing the base-scenario fingerprint")
	}

	// The same request again: every unique scenario is a plan-cache hit.
	status, second := postEnsemble(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if second.Report.Solves != 0 || second.Report.CacheHits != second.Report.Unique {
		t.Fatalf("warm run: solves=%d hits=%d unique=%d",
			second.Report.Solves, second.Report.CacheHits, second.Report.Unique)
	}
	if second.Report.HitRatio != 1 {
		t.Errorf("warm hit ratio: got %g want 1", second.Report.HitRatio)
	}

	// Metric names are part of the interface: dashboards key on them.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"nrserved_ensembles_total 2",
		"nrserved_ensemble_samples_total 100",
		fmt.Sprintf("nrserved_ensemble_cache_hits_total %d", second.Report.CacheHits),
		fmt.Sprintf("nrserved_solves_total %d", first.Report.Solves),
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestEnsembleBadRequests(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/ensemble")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}

	for name, body := range map[string]string{
		"malformed JSON":  `{"scenario":`,
		"missing sampler": `{"scenario":{"nodes":[{"name":"a"}],"links":[],"demands":[]}}`,
		"bad model":       `{"scenario":{"nodes":[{"name":"a"}],"links":[],"demands":[]},"sampler":{"model":"meteor"}}`,
		"bad alpha":       `{"scenario":{"nodes":[{"name":"a"}],"links":[],"demands":[]},"sampler":{"model":"bernoulli"},"alpha":7}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/ensemble", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestEnsembleStream: the SSE variant emits progress events and a final
// ensemble event carrying the same envelope as /v1/ensemble.
func TestEnsembleStream(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/ensemble/stream", "application/json",
		bytes.NewReader(ensembleRequestBody(t, 30)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if !strings.Contains(text, "event: progress") {
		t.Fatalf("stream has no progress events:\n%s", text)
	}
	idx := strings.Index(text, "event: ensemble\ndata: ")
	if idx < 0 {
		t.Fatalf("stream has no final ensemble event:\n%s", text)
	}
	payload := text[idx+len("event: ensemble\ndata: "):]
	payload = payload[:strings.Index(payload, "\n")]
	var envelope wire.EnsembleResponse
	if err := json.Unmarshal([]byte(payload), &envelope); err != nil {
		t.Fatalf("final event is not an EnsembleResponse: %v\n%s", err, payload)
	}
	if envelope.Report == nil || envelope.Report.Samples != 30 {
		t.Fatalf("final event = %+v", envelope)
	}
	// Progress is monotone in samples and ends at the full count.
	prev := 0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "data: {\"done\"") {
			continue
		}
		var p struct {
			Done  int `json:"done"`
			Total int `json:"total"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
			t.Fatal(err)
		}
		if p.Total != 30 || p.Done <= prev {
			t.Fatalf("bad progress %+v after done=%d", p, prev)
		}
		prev = p.Done
	}
	if prev != 30 {
		t.Fatalf("progress ended at %d, want 30", prev)
	}
}
