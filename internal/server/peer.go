package server

import (
	"encoding/hex"
	"net/http"

	"netrecovery/internal/obs"
	"netrecovery/internal/plancache"
	"netrecovery/internal/wire"
)

// handlePeerPlan implements GET /v1/peer/plan/{fp} — the cluster peer-fill
// endpoint. It is a pure local-cache lookup: it NEVER solves and never
// re-routes to another peer, so a fill can neither cascade through the
// fleet nor recurse (the requesting non-owner falls back to a local solve
// on found=false). A miss is a successful 200 with found=false.
//
// The query parameters carry the remaining cache-key components: algorithm
// (registry name) and options (hex digest of the answer-relevant solver
// options, see plancache.ParamsDigest).
func (srv *Server) handlePeerPlan(w http.ResponseWriter, r *http.Request) {
	srv.requests.Add(1)
	srv.peerLookups.Add(1)
	var key plancache.Key
	if !decodeHex32(r.PathValue("fp"), &key.Fingerprint) {
		srv.writeError(w, badRequest("invalid fingerprint (want 64 hex chars)"))
		return
	}
	key.Algorithm = r.URL.Query().Get("algorithm")
	if key.Algorithm == "" {
		srv.writeError(w, badRequest("missing algorithm parameter"))
		return
	}
	if !decodeHex32(r.URL.Query().Get("options"), &key.Options) {
		srv.writeError(w, badRequest("invalid options digest (want 64 hex chars)"))
		return
	}
	// The peek span lives in the owner-side trace; the root span above it
	// adopted the requester's traceparent, so both sides of the fill share
	// one trace ID.
	_, sp := obs.StartSpan(r.Context(), "cache.peek")
	sp.SetAttr("algorithm", key.Algorithm)
	plan, age, ok := srv.cache.Peek(key)
	sp.SetBool("found", ok)
	sp.End()
	if !ok {
		srv.writeJSON(w, http.StatusOK, wire.PeerPlanResponse{Found: false})
		return
	}
	srv.peerServed.Add(1)
	cp := wire.FromCachedPlan(plan)
	srv.writeJSON(w, http.StatusOK, wire.PeerPlanResponse{Found: true, Plan: &cp, AgeMS: age.Milliseconds()})
}

// decodeHex32 parses a 64-char hex string into dst.
func decodeHex32(s string, dst *[32]byte) bool {
	if len(s) != 64 {
		return false
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return false
	}
	copy(dst[:], raw)
	return true
}
