package server

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// durationBounds are the request-duration histogram bucket upper bounds in
// seconds, fixed so the /metrics exposition is stable across builds. The
// range spans a 100µs warm cache hit to a ten-second exact solve; the
// sub-millisecond buckets (100µs/250µs/500µs) resolve the hit-path
// distribution that a 1ms floor lumped into a single bucket.
var durationBounds = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket duration histogram with lock-free observes,
// exposed in the Prometheus text format as
// nrserved_request_duration_seconds.
type histogram struct {
	buckets []atomic.Uint64 // one per bound; +Inf is derived from count
	count   atomic.Uint64
	sumNS   atomic.Uint64
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]atomic.Uint64, len(durationBounds))}
}

// Observe records one request duration.
func (h *histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	sec := d.Seconds()
	for i, bound := range durationBounds {
		if sec <= bound {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNS.Add(uint64(d))
}

// routeHistogram is one instrumented route: the route label is the
// registered path (sub-paths folded in), the class label the admission
// priority class the route's work is accounted under ("infra" for the
// probes, "peer" for the cluster fill endpoint).
type routeHistogram struct {
	route, class string
	hist         *histogram
}

// newRouteHistograms builds the per-route histogram set in the fixed
// emission order of /metrics.
func newRouteHistograms() []*routeHistogram {
	mk := func(route, class string) *routeHistogram {
		return &routeHistogram{route: route, class: class, hist: newHistogram()}
	}
	return []*routeHistogram{
		mk("/v1/plan", "plan"),
		mk("/v1/plan/stream", "plan"),
		mk("/v1/sweep", "sweep"),
		mk("/v1/ensemble", "ensemble"),
		mk("/v1/ensemble/stream", "ensemble"),
		mk("/v1/session", "session"),
		mk("/v1/peer/plan", "peer"),
		mk("/healthz", "infra"),
		mk("/metrics", "infra"),
	}
}

// appendHistograms emits the nrserved_request_duration_seconds family in
// deterministic order (route slice order, ascending buckets).
func appendHistograms(b []byte, routes []*routeHistogram) []byte {
	const name = "nrserved_request_duration_seconds"
	b = append(b, fmt.Sprintf("# HELP %s HTTP request duration by route and admission class.\n# TYPE %s histogram\n", name, name)...)
	for _, rh := range routes {
		cum := uint64(0)
		for i, bound := range durationBounds {
			cum += rh.hist.buckets[i].Load()
			b = append(b, fmt.Sprintf("%s_bucket{route=%q,class=%q,le=%q} %d\n",
				name, rh.route, rh.class, strconv.FormatFloat(bound, 'g', -1, 64), cum)...)
		}
		count := rh.hist.count.Load()
		b = append(b, fmt.Sprintf("%s_bucket{route=%q,class=%q,le=\"+Inf\"} %d\n", name, rh.route, rh.class, count)...)
		b = append(b, fmt.Sprintf("%s_sum{route=%q,class=%q} %g\n", name, rh.route, rh.class,
			time.Duration(rh.hist.sumNS.Load()).Seconds())...)
		b = append(b, fmt.Sprintf("%s_count{route=%q,class=%q} %d\n", name, rh.route, rh.class, count)...)
	}
	return b
}
