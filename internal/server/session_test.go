package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"netrecovery/internal/wire"
)

// postJSON posts a JSON body and decodes the response into out (when the
// status is 2xx); it always returns the status code.
func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode < 300 && out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("bad response %s: %v", data, err)
		}
	}
	return resp.StatusCode
}

// openSession creates a session on the diamond scenario and returns the
// create response.
func openSession(t *testing.T, ts *httptest.Server, alg string) wire.SessionResponse {
	t.Helper()
	var resp wire.SessionResponse
	code := postJSON(t, ts.URL+"/v1/session", wire.SessionRequest{Scenario: testScenarioJSON(), Algorithm: alg}, &resp)
	if code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	if resp.Session.ID == "" || resp.Plan.Algorithm == "" {
		t.Fatalf("create session: incomplete response %+v", resp)
	}
	return resp
}

// normalizePlan zeroes the wall-clock field so plan comparisons cover every
// answer field without being trivially broken by timing.
func normalizePlan(p wire.Plan) wire.Plan {
	p.RuntimeMS = 0
	return p
}

// planBytes is the canonical wire encoding used for byte-identity checks.
func planBytes(t *testing.T, p wire.Plan) string {
	t.Helper()
	raw, err := json.Marshal(normalizePlan(p))
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestSessionDeltaMatchesColdPlan drives a session through a delta sequence
// and checks, at every step, that the session's warm re-plan is
// byte-identical (wire encoding, runtime zeroed) to a cold /v1/plan solve of
// the same resulting scenario.
func TestSessionDeltaMatchesColdPlan(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	created := openSession(t, ts, "") // default ISP: the warm path
	if !created.Session.Warm {
		t.Fatalf("ISP session not warm: %+v", created.Session)
	}
	id := created.Session.ID

	// The evolving scenario, mirrored client-side so each step can be
	// re-posted cold to /v1/plan.
	sc := testScenarioJSON()
	steps := []struct {
		delta wire.Delta
		apply func(*wire.Scenario)
	}{
		{wire.Delta{Kind: wire.DeltaRepairNode, Node: 3}, func(s *wire.Scenario) { s.BrokenNodes = []int{1} }},
		{wire.Delta{Kind: wire.DeltaRepairLink, Link: 2}, func(s *wire.Scenario) { s.BrokenLinks = []int{0} }},
		{wire.Delta{Kind: wire.DeltaSetDemand, Pair: 0, Flow: 3}, func(s *wire.Scenario) { s.Demands[0].Flow = 3 }},
		{wire.Delta{Kind: wire.DeltaBreakNode, Node: 3}, func(s *wire.Scenario) { s.BrokenNodes = []int{1, 3} }},
	}
	for i, step := range steps {
		var dresp wire.DeltaResponse
		code := postJSON(t, ts.URL+"/v1/session/"+id+"/delta", wire.DeltaRequest{Deltas: []wire.Delta{step.delta}}, &dresp)
		if code != http.StatusOK {
			t.Fatalf("step %d: delta status %d", i, code)
		}
		step.apply(&sc)
		// Cold solve of the same scenario, bypassing the cache so it is a
		// genuine from-scratch rebuild.
		var cold wire.PlanResponse
		code = postJSON(t, ts.URL+"/v1/plan", wire.PlanRequest{Scenario: sc, Options: wire.SolveOptions{NoCache: true}}, &cold)
		if code != http.StatusOK {
			t.Fatalf("step %d: cold plan status %d", i, code)
		}
		if got, want := planBytes(t, dresp.Plan), planBytes(t, cold.Plan); got != want {
			t.Errorf("step %d (%+v): session plan diverged from cold solve:\nwarm %s\ncold %s", i, step.delta, got, want)
		}
		if dresp.Plan.ScenarioFingerprint != cold.Plan.ScenarioFingerprint {
			t.Errorf("step %d: fingerprint mismatch", i)
		}
		if dresp.Session.Deltas != i+1 || dresp.Session.Plans != i+2 {
			t.Errorf("step %d: session counters %+v", i, dresp.Session)
		}
	}

	// GET returns the last plan; DELETE closes; a second GET is a 404.
	var got wire.SessionResponse
	if code := getJSON(t, ts.URL+"/v1/session/"+id, &got); code != http.StatusOK {
		t.Fatalf("get session: status %d", code)
	}
	if got.Session.Plans != len(steps)+1 {
		t.Fatalf("get session: plans = %d, want %d", got.Session.Plans, len(steps)+1)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete session: status %d", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/v1/session/"+id, &got); code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", code)
	}
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode < 300 && out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("bad response %s: %v", data, err)
		}
	}
	return resp.StatusCode
}

func TestSessionInvalidDeltaIsAtomic(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	created := openSession(t, ts, "")
	id := created.Session.ID

	// Valid delta followed by an invalid one in the same batch: 409, nothing
	// applied.
	code := postJSON(t, ts.URL+"/v1/session/"+id+"/delta", wire.DeltaRequest{Deltas: []wire.Delta{
		{Kind: wire.DeltaRepairNode, Node: 3},
		{Kind: wire.DeltaBreakNode, Node: 1}, // already broken
	}}, nil)
	if code != http.StatusConflict {
		t.Fatalf("invalid delta batch: status %d, want 409", code)
	}
	var got wire.SessionResponse
	getJSON(t, ts.URL+"/v1/session/"+id, &got)
	if got.Session.Fingerprint != created.Session.Fingerprint {
		t.Fatalf("failed batch changed the scenario fingerprint")
	}
	if got.Session.Deltas != 0 {
		t.Fatalf("failed batch counted deltas: %+v", got.Session)
	}

	// Unknown kinds and empty batches are 400s.
	if code := postJSON(t, ts.URL+"/v1/session/"+id+"/delta", wire.DeltaRequest{Deltas: []wire.Delta{{Kind: "melt_node"}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/session/"+id+"/delta", wire.DeltaRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
	// Unknown session: 404.
	if code := postJSON(t, ts.URL+"/v1/session/nope/delta", wire.DeltaRequest{Deltas: []wire.Delta{{Kind: wire.DeltaRepairNode, Node: 3}}}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", code)
	}
}

func TestSessionTTLEviction(t *testing.T) {
	clock := time.Now()
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	srv := New(Config{SessionTTL: time.Minute, Now: now})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	created := openSession(t, ts, "")
	id := created.Session.ID
	if created.Session.IdleTTLMS != time.Minute.Milliseconds() {
		t.Fatalf("idle TTL = %d ms", created.Session.IdleTTLMS)
	}

	// Within the TTL the session survives (and use resets the timer).
	mu.Lock()
	clock = clock.Add(45 * time.Second)
	mu.Unlock()
	if code := getJSON(t, ts.URL+"/v1/session/"+id, nil); code != http.StatusOK {
		t.Fatalf("session evicted before TTL: %d", code)
	}
	mu.Lock()
	clock = clock.Add(45 * time.Second)
	mu.Unlock()
	if code := getJSON(t, ts.URL+"/v1/session/"+id, nil); code != http.StatusOK {
		t.Fatalf("session evicted though use reset the timer: %d", code)
	}

	// Past the idle TTL the next operation evicts it.
	mu.Lock()
	clock = clock.Add(2 * time.Minute)
	mu.Unlock()
	if code := getJSON(t, ts.URL+"/v1/session/"+id, nil); code != http.StatusNotFound {
		t.Fatalf("expired session still served: %d", code)
	}
	metrics := fetchMetrics(t, ts)
	for _, want := range []string{"nrserved_sessions 0", "nrserved_sessions_expired_total 1", "nrserved_sessions_opened_total 1"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func fetchMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

func TestSessionCapacity(t *testing.T) {
	srv := New(Config{MaxSessions: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	created := openSession(t, ts, "")
	if code := postJSON(t, ts.URL+"/v1/session", wire.SessionRequest{Scenario: testScenarioJSON()}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("second session: status %d, want 503", code)
	}
	// Closing the first frees the slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+created.Session.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	openSession(t, ts, "")
}

// TestSessionAdmissionAccounting: session re-plans consume the same
// admission tokens as /v1/plan solves — with MaxInFlight=1, two concurrent
// deltas on two sessions never solve at the same time.
func TestSessionAdmissionAccounting(t *testing.T) {
	srv := New(Config{MaxInFlight: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Sessions on the gated solver run every re-plan cold through the
	// registry, which lets the test hold a solve open.
	a := openSession(t, ts, "GATED-test")
	b := openSession(t, ts, "GATED-test")
	solvesBefore := srv.SolveCount()

	g := &gateState{started: make(chan struct{}, 2), release: make(chan struct{})}
	gate.Store(g)
	defer gate.Store(nil)

	delta := wire.DeltaRequest{Deltas: []wire.Delta{{Kind: wire.DeltaRepairNode, Node: 3}}}
	var wg sync.WaitGroup
	for _, id := range []string{a.Session.ID, b.Session.ID} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if code := postJSON(t, ts.URL+"/v1/session/"+id+"/delta", delta, nil); code != http.StatusOK {
				t.Errorf("delta on %s: status %d", id, code)
			}
		}(id)
	}
	<-g.started
	time.Sleep(50 * time.Millisecond)
	if got := g.solves.Load(); got != 1 {
		t.Fatalf("%d session re-plans admitted concurrently, want 1", got)
	}
	close(g.release)
	wg.Wait()
	if got := srv.SolveCount() - solvesBefore; got != 2 {
		t.Fatalf("session re-plans recorded %d solves, want 2", got)
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	event string
	data  string
}

// readSSE parses events off the stream until fn returns false or the stream
// ends.
func readSSE(r *bufio.Reader, fn func(sseEvent) bool) error {
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if ev.event != "" {
				if !fn(ev) {
					return nil
				}
			}
			ev = sseEvent{}
		}
	}
}

// TestSessionStream: the SSE feed delivers the current plan on subscribe,
// every delta-triggered re-plan, and a terminal end event when the session
// is closed.
func TestSessionStream(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	created := openSession(t, ts, "")
	id := created.Session.ID

	resp, err := http.Get(ts.URL + "/v1/session/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("stream: status %d type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	events := make(chan sseEvent, 16)
	go func() {
		defer close(events)
		_ = readSSE(bufio.NewReader(resp.Body), func(ev sseEvent) bool {
			events <- ev
			return true
		})
	}()
	next := func() sseEvent {
		select {
		case ev := <-events:
			return ev
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for SSE event")
			return sseEvent{}
		}
	}

	// Initial snapshot.
	ev := next()
	if ev.event != "plan" {
		t.Fatalf("first event = %q, want plan", ev.event)
	}
	var snap wire.SessionResponse
	if err := json.Unmarshal([]byte(ev.data), &snap); err != nil {
		t.Fatalf("initial plan event: %v", err)
	}
	if snap.Session.ID != id {
		t.Fatalf("initial event for session %q, want %q", snap.Session.ID, id)
	}

	// A delta pushes the re-planned plan to the stream.
	var dresp wire.DeltaResponse
	code := postJSON(t, ts.URL+"/v1/session/"+id+"/delta",
		wire.DeltaRequest{Deltas: []wire.Delta{{Kind: wire.DeltaRepairNode, Node: 3}}}, &dresp)
	if code != http.StatusOK {
		t.Fatalf("delta: status %d", code)
	}
	ev = next()
	if ev.event != "plan" {
		t.Fatalf("delta event = %q, want plan", ev.event)
	}
	var update wire.DeltaResponse
	if err := json.Unmarshal([]byte(ev.data), &update); err != nil {
		t.Fatal(err)
	}
	if planBytes(t, update.Plan) != planBytes(t, dresp.Plan) {
		t.Fatalf("streamed plan differs from the delta response")
	}

	// Closing the session terminates the stream with an end event.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+id, nil)
	dresp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	ev = next()
	if ev.event != "end" {
		t.Fatalf("terminal event = %q, want end", ev.event)
	}
	if _, open := <-events; open {
		// Stream should close after the terminal event (server closed the
		// subscription channel; the handler returned).
		t.Fatal("stream still open after end event")
	}
}

func ExampleServer_sessions() {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(wire.SessionRequest{Scenario: wire.Scenario{
		Nodes:       []wire.Node{{RepairCost: 1}, {RepairCost: 1}},
		Links:       []wire.Link{{From: 0, To: 1, Capacity: 10, RepairCost: 1}},
		Demands:     []wire.Demand{{Source: 0, Target: 1, Flow: 5}},
		BrokenLinks: []int{0},
	}})
	resp, err := http.Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	var created wire.SessionResponse
	json.NewDecoder(resp.Body).Decode(&created)
	fmt.Println(resp.StatusCode, created.Session.Warm, created.Plan.LinkRepairs)
	// Output: 201 true 1
}
