package topology

import (
	"strings"
	"testing"
)

// sampleGraphML is a minimal Internet-Topology-Zoo-flavoured file: three
// nodes with coordinates and labels, two edges (one with a raw link speed),
// plus a self-loop that must be skipped.
const sampleGraphML = `<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="label" attr.type="string" for="node" id="d0"/>
  <key attr.name="Latitude" attr.type="double" for="node" id="d1"/>
  <key attr.name="Longitude" attr.type="double" for="node" id="d2"/>
  <key attr.name="LinkSpeedRaw" attr.type="double" for="edge" id="d3"/>
  <graph edgedefault="undirected">
    <node id="n0">
      <data key="d0">Victoria</data>
      <data key="d1">48.43</data>
      <data key="d2">-123.37</data>
    </node>
    <node id="n1">
      <data key="d0">Vancouver</data>
      <data key="d1">49.25</data>
      <data key="d2">-123.10</data>
    </node>
    <node id="n2">
      <data key="d0">Calgary</data>
      <data key="d1">51.05</data>
      <data key="d2">-114.06</data>
    </node>
    <edge source="n0" target="n1">
      <data key="d3">10000000000</data>
    </edge>
    <edge source="n1" target="n2"/>
    <edge source="n2" target="n2"/>
  </graph>
</graphml>`

func TestReadGraphML(t *testing.T) {
	g, err := ReadGraphML(strings.NewReader(sampleGraphML), GraphMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (self-loop skipped)", g.NumEdges())
	}
	victoria := g.Node(0)
	if victoria.Name != "Victoria" {
		t.Errorf("node 0 name = %q", victoria.Name)
	}
	if victoria.X > -123 || victoria.Y < 48 {
		t.Errorf("node 0 coordinates = (%f, %f)", victoria.X, victoria.Y)
	}
	// Edge n0-n1 has 10 Gbit/s raw speed -> capacity 10.
	if c := g.Edge(0).Capacity; c != 10 {
		t.Errorf("edge 0 capacity = %f, want 10", c)
	}
	// Edge n1-n2 has no speed -> default access capacity.
	if c := g.Edge(1).Capacity; c != BellCanadaAccessCapacity {
		t.Errorf("edge 1 capacity = %f, want %f", c, BellCanadaAccessCapacity)
	}
	if g.Node(0).RepairCost != 1 || g.Edge(0).RepairCost != 1 {
		t.Error("default repair costs should be 1")
	}
}

func TestReadGraphMLCustomOptions(t *testing.T) {
	g, err := ReadGraphML(strings.NewReader(sampleGraphML), GraphMLOptions{
		DefaultCapacity: 55,
		NodeRepairCost:  2,
		EdgeRepairCost:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := g.Edge(1).Capacity; c != 55 {
		t.Errorf("edge 1 capacity = %f, want 55", c)
	}
	if g.Node(0).RepairCost != 2 || g.Edge(0).RepairCost != 3 {
		t.Error("custom repair costs not applied")
	}
}

func TestReadGraphMLErrors(t *testing.T) {
	if _, err := ReadGraphML(strings.NewReader("not xml at all"), GraphMLOptions{}); err == nil {
		t.Error("expected parse error")
	}
	empty := `<?xml version="1.0"?><graphml xmlns="http://graphml.graphdrawing.org/xmlns"></graphml>`
	if _, err := ReadGraphML(strings.NewReader(empty), GraphMLOptions{}); err == nil {
		t.Error("expected error for file without a graph")
	}
	badEdge := `<?xml version="1.0"?><graphml xmlns="http://graphml.graphdrawing.org/xmlns">
	<graph><node id="a"/><edge source="a" target="missing"/></graph></graphml>`
	if _, err := ReadGraphML(strings.NewReader(badEdge), GraphMLOptions{}); err == nil {
		t.Error("expected error for edge referencing an unknown node")
	}
}

func TestReadGraphMLMinimalWithoutKeys(t *testing.T) {
	minimal := `<?xml version="1.0"?><graphml xmlns="http://graphml.graphdrawing.org/xmlns">
	<graph><node id="a"/><node id="b"/><edge source="a" target="b"/></graph></graphml>`
	g, err := ReadGraphML(strings.NewReader(minimal), GraphMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Errorf("size = %d/%d", g.NumNodes(), g.NumEdges())
	}
	if g.Node(0).Name != "a" {
		t.Errorf("node name should fall back to the GraphML id, got %q", g.Node(0).Name)
	}
}
