package topology

import (
	"encoding/json"
	"fmt"
	"io"

	"netrecovery/internal/graph"
)

// JSONNode is the serialised form of a supply-graph node.
type JSONNode struct {
	Name       string  `json:"name"`
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	RepairCost float64 `json:"repairCost"`
}

// JSONEdge is the serialised form of a supply-graph edge; From and To are
// node indices in the Nodes array.
type JSONEdge struct {
	From       int     `json:"from"`
	To         int     `json:"to"`
	Capacity   float64 `json:"capacity"`
	RepairCost float64 `json:"repairCost"`
}

// JSONTopology is the on-disk topology format used by cmd/topogen and
// cmd/nrecover: a plain node list plus an edge list over node indices. Users
// with the original Topology Zoo or CAIDA data can convert it to this format
// and load it with Read.
type JSONTopology struct {
	Name  string     `json:"name"`
	Nodes []JSONNode `json:"nodes"`
	Edges []JSONEdge `json:"edges"`
}

// ToJSON converts a graph into its serialisable form.
func ToJSON(name string, g *graph.Graph) JSONTopology {
	t := JSONTopology{
		Name:  name,
		Nodes: make([]JSONNode, 0, g.NumNodes()),
		Edges: make([]JSONEdge, 0, g.NumEdges()),
	}
	for _, n := range g.Nodes() {
		t.Nodes = append(t.Nodes, JSONNode{Name: n.Name, X: n.X, Y: n.Y, RepairCost: n.RepairCost})
	}
	for _, e := range g.Edges() {
		t.Edges = append(t.Edges, JSONEdge{
			From: int(e.From), To: int(e.To), Capacity: e.Capacity, RepairCost: e.RepairCost,
		})
	}
	return t
}

// ToGraph converts the serialised topology back into a graph.
func (t JSONTopology) ToGraph() (*graph.Graph, error) {
	g := graph.New(len(t.Nodes), len(t.Edges))
	for _, n := range t.Nodes {
		g.AddNode(n.Name, n.X, n.Y, n.RepairCost)
	}
	for i, e := range t.Edges {
		if _, err := g.AddEdge(graph.NodeID(e.From), graph.NodeID(e.To), e.Capacity, e.RepairCost); err != nil {
			return nil, fmt.Errorf("topology: edge %d: %w", i, err)
		}
	}
	return g, nil
}

// Write serialises the topology as indented JSON.
func Write(w io.Writer, name string, g *graph.Graph) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ToJSON(name, g)); err != nil {
		return fmt.Errorf("topology: encode: %w", err)
	}
	return nil
}

// Read parses a JSON topology and returns the graph.
func Read(r io.Reader) (*graph.Graph, string, error) {
	var t JSONTopology
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, "", fmt.Errorf("topology: decode: %w", err)
	}
	g, err := t.ToGraph()
	if err != nil {
		return nil, "", err
	}
	return g, t.Name, nil
}
