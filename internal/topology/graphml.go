package topology

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"

	"netrecovery/internal/graph"
)

// GraphML support for Internet Topology Zoo files. The Zoo distributes every
// topology (including the Bell-Canada network used by the paper) as GraphML
// with per-node "Latitude"/"Longitude" attributes and optional per-edge
// "LinkSpeed" attributes; ReadGraphML maps those onto node coordinates and
// edge capacities so that users who have the original data can run the
// experiments on it instead of the built-in stand-in.

// graphMLDoc mirrors the subset of the GraphML schema the reader needs.
type graphMLDoc struct {
	XMLName xml.Name       `xml:"graphml"`
	Keys    []graphMLKey   `xml:"key"`
	Graphs  []graphMLGraph `xml:"graph"`
}

type graphMLKey struct {
	ID       string `xml:"id,attr"`
	For      string `xml:"for,attr"`
	AttrName string `xml:"attr.name,attr"`
}

type graphMLGraph struct {
	Nodes []graphMLNode `xml:"node"`
	Edges []graphMLEdge `xml:"edge"`
}

type graphMLNode struct {
	ID   string        `xml:"id,attr"`
	Data []graphMLData `xml:"data"`
}

type graphMLEdge struct {
	Source string        `xml:"source,attr"`
	Target string        `xml:"target,attr"`
	Data   []graphMLData `xml:"data"`
}

type graphMLData struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// GraphMLOptions tune the conversion of a GraphML topology into a supply
// graph.
type GraphMLOptions struct {
	// DefaultCapacity is assigned to edges without a recognised capacity
	// attribute (0 means 20, the paper's access-link capacity).
	DefaultCapacity float64
	// NodeRepairCost / EdgeRepairCost are the homogeneous repair costs
	// (0 means 1).
	NodeRepairCost float64
	EdgeRepairCost float64
}

func (o GraphMLOptions) withDefaults() GraphMLOptions {
	if o.DefaultCapacity == 0 {
		o.DefaultCapacity = BellCanadaAccessCapacity
	}
	if o.NodeRepairCost == 0 {
		o.NodeRepairCost = 1
	}
	if o.EdgeRepairCost == 0 {
		o.EdgeRepairCost = 1
	}
	return o
}

// ReadGraphML parses a GraphML topology (Internet Topology Zoo flavour) into
// a supply graph. Node labels become node names, Longitude/Latitude become
// the (x, y) coordinates used by the geographic disruption model, and
// LinkSpeedRaw (bits/s) — when present — is scaled to the same order of
// magnitude as the built-in capacities; other edges get DefaultCapacity.
func ReadGraphML(r io.Reader, opts GraphMLOptions) (*graph.Graph, error) {
	opts = opts.withDefaults()
	var doc graphMLDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("topology: parse graphml: %w", err)
	}
	if len(doc.Graphs) == 0 {
		return nil, fmt.Errorf("topology: graphml file contains no <graph> element")
	}
	// Resolve the key IDs of the attributes we care about.
	var labelKey, latKey, lonKey, speedKey string
	for _, k := range doc.Keys {
		switch k.AttrName {
		case "label":
			if k.For == "node" {
				labelKey = k.ID
			}
		case "Latitude":
			latKey = k.ID
		case "Longitude":
			lonKey = k.ID
		case "LinkSpeedRaw":
			speedKey = k.ID
		}
	}
	lookup := func(data []graphMLData, key string) (string, bool) {
		if key == "" {
			return "", false
		}
		for _, d := range data {
			if d.Key == key {
				return d.Value, true
			}
		}
		return "", false
	}

	gml := doc.Graphs[0]
	g := graph.New(len(gml.Nodes), len(gml.Edges))
	idMap := make(map[string]graph.NodeID, len(gml.Nodes))
	for _, n := range gml.Nodes {
		name := n.ID
		if label, ok := lookup(n.Data, labelKey); ok && label != "" {
			name = label
		}
		x, y := 0.0, 0.0
		if lon, ok := lookup(n.Data, lonKey); ok {
			if v, err := strconv.ParseFloat(lon, 64); err == nil {
				x = v
			}
		}
		if lat, ok := lookup(n.Data, latKey); ok {
			if v, err := strconv.ParseFloat(lat, 64); err == nil {
				y = v
			}
		}
		idMap[n.ID] = g.AddNode(name, x, y, opts.NodeRepairCost)
	}
	for i, e := range gml.Edges {
		from, okFrom := idMap[e.Source]
		to, okTo := idMap[e.Target]
		if !okFrom || !okTo {
			return nil, fmt.Errorf("topology: edge %d references unknown node %q or %q", i, e.Source, e.Target)
		}
		if from == to {
			// The Zoo occasionally contains self-loops; they carry no
			// routable capacity, so they are skipped.
			continue
		}
		capacity := opts.DefaultCapacity
		if raw, ok := lookup(e.Data, speedKey); ok {
			if bps, err := strconv.ParseFloat(raw, 64); err == nil && bps > 0 {
				// Scale bits/s to "capacity units": 1 unit per Gbit/s, with a
				// floor of 1 so slow links remain usable.
				capacity = bps / 1e9
				if capacity < 1 {
					capacity = 1
				}
			}
		}
		if _, err := g.AddEdge(from, to, capacity, opts.EdgeRepairCost); err != nil {
			return nil, fmt.Errorf("topology: edge %d: %w", i, err)
		}
	}
	return g, nil
}
