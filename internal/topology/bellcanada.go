// Package topology provides the supply-network topologies used by the
// paper's evaluation: a Bell-Canada-like backbone (Internet Topology Zoo),
// Erdős–Rényi random graphs, a CAIDA-like AS router-level topology, a grid
// topology for examples, and JSON import/export for user-supplied networks.
//
// The Bell-Canada and CAIDA instances are synthetic stand-ins with the same
// size, sparsity, capacity structure and geographic embedding as the data
// sets the paper uses (see DESIGN.md, "Substitutions"): the original GraphML
// / ITDK files are not redistributable, and the experiments only depend on
// those aggregate properties.
package topology

import (
	"math"

	"netrecovery/internal/graph"
)

// Capacity classes of the Bell-Canada-like topology, following §VII-A: two
// backbones with capacities 30 and 50, access links with capacity 20.
const (
	BellCanadaAccessCapacity    = 20.0
	BellCanadaBackbone1Capacity = 30.0
	BellCanadaBackbone2Capacity = 50.0
)

// BellCanada returns a 48-node, 64-edge national backbone topology shaped
// like the Internet Topology Zoo's Bell-Canada network: a west-east chain of
// regional rings attached to two long-haul backbones. Every node and edge
// has unit repair cost (the paper's setting); capacities follow the three
// classes above. Coordinates span a 100 x 40 plane (west to east) so that
// the geographic disruption model can be applied directly.
func BellCanada() *graph.Graph {
	g := graph.New(48, 64)

	// 12 core nodes laid out west to east form the two backbones.
	// Core node i sits at x = i * 36/11, y ~ 8 with a slight arc. The
	// 36 x 16 extent is chosen so that the disruption variances swept in
	// Fig. 6 (10 to 150) range from a local outage to near-complete
	// destruction, as in the paper.
	const cores = 12
	for i := 0; i < cores; i++ {
		x := float64(i) * 36 / (cores - 1)
		y := 8 + 4*math.Sin(float64(i)*math.Pi/(cores-1))
		g.AddNode(coreName(i), x, y, 1)
	}
	// 36 access nodes: three per core, clustered around it.
	const accessPerCore = 3
	for i := 0; i < cores; i++ {
		core := g.Node(graph.NodeID(i))
		for j := 0; j < accessPerCore; j++ {
			angle := float64(j) * 2 * math.Pi / accessPerCore
			x := core.X + 1.5*math.Cos(angle)
			y := core.Y + 1.5*math.Sin(angle)
			g.AddNode(accessName(i, j), x, y, 1)
		}
	}

	// Backbone 1 (capacity 50): the full west-east chain over the cores.
	for i := 0; i < cores-1; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), BellCanadaBackbone2Capacity, 1)
	}
	// Backbone 2 (capacity 30): express links skipping one core.
	for i := 0; i+2 < cores; i += 2 {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+2), BellCanadaBackbone1Capacity, 1)
	}
	// Access links (capacity 20): each access node to its core, plus a ring
	// link between the first two access nodes of every core. This yields
	// 12*(3+1) = 48 access edges, for 64 edges in total.
	for i := 0; i < cores; i++ {
		base := graph.NodeID(cores + i*accessPerCore)
		for j := 0; j < accessPerCore; j++ {
			g.MustAddEdge(graph.NodeID(i), base+graph.NodeID(j), BellCanadaAccessCapacity, 1)
		}
		g.MustAddEdge(base, base+1, BellCanadaAccessCapacity, 1)
	}
	return g
}

func coreName(i int) string {
	names := []string{
		"Victoria", "Vancouver", "Calgary", "Edmonton", "Regina", "Winnipeg",
		"Thunder Bay", "Toronto", "Ottawa", "Montreal", "Quebec", "Halifax",
	}
	if i < len(names) {
		return names[i]
	}
	return "Core" + itoa(i)
}

func accessName(core, j int) string {
	return coreName(core) + "-access-" + itoa(j)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}
