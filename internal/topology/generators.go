package topology

import (
	"fmt"
	"math"
	"math/rand"

	"netrecovery/internal/graph"
)

// Config carries the per-element attributes applied by the generators.
type Config struct {
	// EdgeCapacity is the capacity assigned to every generated edge.
	EdgeCapacity float64
	// NodeRepairCost and EdgeRepairCost are the homogeneous repair costs
	// (the paper uses unit costs).
	NodeRepairCost float64
	EdgeRepairCost float64
}

// DefaultConfig returns unit repair costs and the given capacity.
func DefaultConfig(capacity float64) Config {
	return Config{EdgeCapacity: capacity, NodeRepairCost: 1, EdgeRepairCost: 1}
}

// ErdosRenyi generates a G(n, p) random graph: every unordered node pair is
// connected independently with probability p (§VII-B). Nodes are placed
// uniformly at random on a 100 x 100 plane so geographic disruptions apply.
func ErdosRenyi(n int, p float64, cfg Config, rng *rand.Rand) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: ErdosRenyi needs n > 0, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("topology: edge probability %f out of [0,1]", p)
	}
	g := graph.New(n, int(p*float64(n*n)/2))
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("er-%d", i), rng.Float64()*100, rng.Float64()*100, cfg.NodeRepairCost)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(graph.NodeID(u), graph.NodeID(v), cfg.EdgeCapacity, cfg.EdgeRepairCost)
			}
		}
	}
	return g, nil
}

// CAIDALikeNodes and CAIDALikeEdges are the size of the CAIDA AS28717 giant
// component used in §VII-C.
const (
	CAIDALikeNodes = 825
	CAIDALikeEdges = 1018
)

// CAIDALike generates a router-level topology with exactly CAIDALikeNodes
// nodes and CAIDALikeEdges edges, mimicking the giant connected component of
// CAIDA AS28717: a preferential-attachment tree (heavy-tailed degrees,
// guaranteed connectivity) plus extra preferential chords up to the edge
// budget. Node positions follow a clustered geographic layout so that the
// geographically-correlated disruption model produces localized damage.
func CAIDALike(cfg Config, rng *rand.Rand) *graph.Graph {
	return PreferentialAttachment(CAIDALikeNodes, CAIDALikeEdges, cfg, rng)
}

// PreferentialAttachment generates a connected graph with the given number
// of nodes and edges (edges >= nodes-1) whose degree distribution is heavy
// tailed, in the style of router-level AS maps.
func PreferentialAttachment(nodes, edges int, cfg Config, rng *rand.Rand) *graph.Graph {
	if nodes < 2 {
		nodes = 2
	}
	if edges < nodes-1 {
		edges = nodes - 1
	}
	g := graph.New(nodes, edges)

	// Clustered layout: sqrt(n) cluster centres on a 100x100 plane.
	numClusters := int(math.Sqrt(float64(nodes)))
	if numClusters < 1 {
		numClusters = 1
	}
	centres := make([][2]float64, numClusters)
	for i := range centres {
		centres[i] = [2]float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	for i := 0; i < nodes; i++ {
		c := centres[i%numClusters]
		x := c[0] + rng.NormFloat64()*3
		y := c[1] + rng.NormFloat64()*3
		g.AddNode(fmt.Sprintf("as-%d", i), x, y, cfg.NodeRepairCost)
	}

	// Preferential-attachment tree: node i attaches to an endpoint chosen
	// proportionally to degree (endpoint list trick).
	endpoints := make([]graph.NodeID, 0, 2*edges)
	g.MustAddEdge(0, 1, cfg.EdgeCapacity, cfg.EdgeRepairCost)
	endpoints = append(endpoints, 0, 1)
	for i := 2; i < nodes; i++ {
		target := endpoints[rng.Intn(len(endpoints))]
		g.MustAddEdge(graph.NodeID(i), target, cfg.EdgeCapacity, cfg.EdgeRepairCost)
		endpoints = append(endpoints, graph.NodeID(i), target)
	}
	// Extra chords, preferentially attached on both sides, skipping
	// duplicates and self loops.
	for g.NumEdges() < edges {
		u := endpoints[rng.Intn(len(endpoints))]
		v := endpoints[rng.Intn(len(endpoints))]
		if u == v || g.EdgeBetween(u, v) != graph.InvalidEdge {
			// Fall back to a uniform pair to guarantee progress on dense
			// hubs.
			u = graph.NodeID(rng.Intn(nodes))
			v = graph.NodeID(rng.Intn(nodes))
			if u == v || g.EdgeBetween(u, v) != graph.InvalidEdge {
				continue
			}
		}
		g.MustAddEdge(u, v, cfg.EdgeCapacity, cfg.EdgeRepairCost)
		endpoints = append(endpoints, u, v)
	}
	return g
}

// Grid generates a rows x cols grid topology with the given configuration,
// used by the examples. Node (r, c) is placed at coordinates (c*10, r*10).
func Grid(rows, cols int, cfg Config) (*graph.Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("topology: grid needs positive dimensions, got %dx%d", rows, cols)
	}
	g := graph.New(rows*cols, 2*rows*cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(fmt.Sprintf("g-%d-%d", r, c), float64(c)*10, float64(r)*10, cfg.NodeRepairCost)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), cfg.EdgeCapacity, cfg.EdgeRepairCost)
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), cfg.EdgeCapacity, cfg.EdgeRepairCost)
			}
		}
	}
	return g, nil
}
