package topology

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"netrecovery/internal/graph"
)

func TestBellCanadaShape(t *testing.T) {
	g := BellCanada()
	if g.NumNodes() != 48 {
		t.Errorf("nodes = %d, want 48", g.NumNodes())
	}
	if g.NumEdges() != 64 {
		t.Errorf("edges = %d, want 64", g.NumEdges())
	}
	// Connected.
	if giant := g.GiantComponent(); len(giant) != 48 {
		t.Errorf("giant component = %d nodes, want 48", len(giant))
	}
	// Capacity classes: only 20, 30, 50.
	counts := map[float64]int{}
	for _, e := range g.Edges() {
		counts[e.Capacity]++
		if e.RepairCost != 1 {
			t.Errorf("edge %d repair cost %f, want 1", e.ID, e.RepairCost)
		}
	}
	if len(counts) != 3 || counts[BellCanadaAccessCapacity] == 0 ||
		counts[BellCanadaBackbone1Capacity] == 0 || counts[BellCanadaBackbone2Capacity] == 0 {
		t.Errorf("capacity classes = %v", counts)
	}
	for _, n := range g.Nodes() {
		if n.RepairCost != 1 {
			t.Errorf("node %d repair cost %f, want 1", n.ID, n.RepairCost)
		}
		if n.Name == "" {
			t.Errorf("node %d has empty name", n.ID)
		}
	}
	if g.Diameter() < 4 {
		t.Errorf("diameter = %d, suspiciously small for a national backbone", g.Diameter())
	}
}

func TestBellCanadaDeterministic(t *testing.T) {
	a, b := BellCanada(), BellCanada()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("BellCanada is not deterministic")
	}
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(graph.EdgeID(i)) != b.Edge(graph.EdgeID(i)) {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := ErdosRenyi(50, 0.2, DefaultConfig(1000), rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 50 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	// Expected edges ~ p * n(n-1)/2 = 245; allow a broad band.
	if g.NumEdges() < 150 || g.NumEdges() > 350 {
		t.Errorf("edges = %d, expected around 245", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.Capacity != 1000 {
			t.Errorf("capacity = %f, want 1000", e.Capacity)
		}
	}
	if _, err := ErdosRenyi(0, 0.5, DefaultConfig(1), rng); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := ErdosRenyi(5, 1.5, DefaultConfig(1), rng); err == nil {
		t.Error("expected error for p>1")
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	empty, err := ErdosRenyi(10, 0, DefaultConfig(1), rng)
	if err != nil || empty.NumEdges() != 0 {
		t.Errorf("p=0 should yield no edges, got %d (%v)", empty.NumEdges(), err)
	}
	full, err := ErdosRenyi(10, 1, DefaultConfig(1), rng)
	if err != nil || full.NumEdges() != 45 {
		t.Errorf("p=1 should yield a clique of 45 edges, got %d (%v)", full.NumEdges(), err)
	}
}

func TestCAIDALike(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := CAIDALike(DefaultConfig(100), rng)
	if g.NumNodes() != CAIDALikeNodes {
		t.Errorf("nodes = %d, want %d", g.NumNodes(), CAIDALikeNodes)
	}
	if g.NumEdges() != CAIDALikeEdges {
		t.Errorf("edges = %d, want %d", g.NumEdges(), CAIDALikeEdges)
	}
	if giant := g.GiantComponent(); len(giant) != CAIDALikeNodes {
		t.Errorf("giant component = %d, want connected graph", len(giant))
	}
	// Heavy-tailed degrees: the maximum degree should far exceed the mean
	// (~2.5) on a preferential-attachment graph.
	if g.MaxDegree() < 10 {
		t.Errorf("max degree = %d, expected a hub of degree >= 10", g.MaxDegree())
	}
}

func TestPreferentialAttachmentSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := PreferentialAttachment(1, 0, DefaultConfig(1), rng)
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Errorf("minimum graph = %d nodes %d edges, want 2 and 1", g.NumNodes(), g.NumEdges())
	}
	g2 := PreferentialAttachment(10, 20, DefaultConfig(1), rng)
	if g2.NumNodes() != 10 || g2.NumEdges() != 20 {
		t.Errorf("graph = %d nodes %d edges, want 10 and 20", g2.NumNodes(), g2.NumEdges())
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(3, 4, DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Errorf("nodes = %d, want 12", g.NumNodes())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.NumEdges() != 17 {
		t.Errorf("edges = %d, want 17", g.NumEdges())
	}
	if _, err := Grid(0, 3, DefaultConfig(1)); err == nil {
		t.Error("expected error for zero rows")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := BellCanada()
	var buf bytes.Buffer
	if err := Write(&buf, "bell-canada", g); err != nil {
		t.Fatal(err)
	}
	back, name, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "bell-canada" {
		t.Errorf("name = %q", name)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Errorf("round trip size mismatch: %v vs %v", back, g)
	}
	for i := 0; i < g.NumEdges(); i++ {
		if back.Edge(graph.EdgeID(i)).Capacity != g.Edge(graph.EdgeID(i)).Capacity {
			t.Errorf("edge %d capacity mismatch", i)
		}
	}
}

func TestJSONReadErrors(t *testing.T) {
	if _, _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
	bad := JSONTopology{
		Nodes: []JSONNode{{Name: "a"}},
		Edges: []JSONEdge{{From: 0, To: 5, Capacity: 1}},
	}
	if _, err := bad.ToGraph(); err == nil {
		t.Error("expected error for out-of-range edge endpoint")
	}
}

// Property: Erdős–Rényi generation with the same seed is deterministic and
// never produces self-loops or out-of-range endpoints.
func TestErdosRenyiProperties(t *testing.T) {
	f := func(seed int64) bool {
		n := 20
		p := 0.3
		a, err1 := ErdosRenyi(n, p, DefaultConfig(7), rand.New(rand.NewSource(seed)))
		b, err2 := ErdosRenyi(n, p, DefaultConfig(7), rand.New(rand.NewSource(seed)))
		if err1 != nil || err2 != nil {
			return false
		}
		if a.NumEdges() != b.NumEdges() {
			return false
		}
		for _, e := range a.Edges() {
			if e.From == e.To || !a.HasNode(e.From) || !a.HasNode(e.To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
