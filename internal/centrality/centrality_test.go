package centrality

import (
	"math"
	"testing"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
)

// line builds a path graph 0-1-...-n-1 with the given capacity.
func line(n int, capacity float64) *graph.Graph {
	g := graph.New(n, n-1)
	for i := 0; i < n; i++ {
		g.AddNode("", float64(i), 0, 1)
	}
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), capacity, 1)
	}
	return g
}

func TestDemandBasedLine(t *testing.T) {
	// Single demand 0->4 of 6 units on a line of capacity 10: every node on
	// the unique path receives the full demand as centrality.
	g := line(5, 10)
	demands := []demand.Pair{{ID: 0, Source: 0, Target: 4, Flow: 6}}
	res := DemandBased(g, demands, graph.UnitLength, nil)
	for v := graph.NodeID(0); v <= 4; v++ {
		if math.Abs(res.Score(v)-6) > 1e-9 {
			t.Errorf("score(%d) = %f, want 6", v, res.Score(v))
		}
		if !res.Contributions[v][0] {
			t.Errorf("pair 0 should contribute to node %d", v)
		}
	}
	if len(res.PathSets[0]) != 1 {
		t.Errorf("path set size = %d, want 1", len(res.PathSets[0]))
	}
	top, ok := res.TopNode()
	if !ok {
		t.Fatal("expected a top node")
	}
	if top != 0 {
		// All scores are equal; ties break by smallest ID.
		t.Errorf("top = %d, want 0 (tie-break by ID)", top)
	}
}

func TestDemandBasedSharedHub(t *testing.T) {
	// Star: two demands 1->2 and 3->4 all passing through hub 0. The hub
	// accumulates both demands; the leaves only their own.
	g := graph.New(5, 4)
	for i := 0; i < 5; i++ {
		g.AddNode("", float64(i), 0, 1)
	}
	for i := 1; i < 5; i++ {
		g.MustAddEdge(0, graph.NodeID(i), 10, 1)
	}
	demands := []demand.Pair{
		{ID: 0, Source: 1, Target: 2, Flow: 4},
		{ID: 1, Source: 3, Target: 4, Flow: 2},
	}
	res := DemandBased(g, demands, graph.UnitLength, nil)
	if math.Abs(res.Score(0)-6) > 1e-9 {
		t.Errorf("hub score = %f, want 6", res.Score(0))
	}
	if math.Abs(res.Score(1)-4) > 1e-9 || math.Abs(res.Score(3)-2) > 1e-9 {
		t.Errorf("leaf scores = %f, %f; want 4, 2", res.Score(1), res.Score(3))
	}
	top, _ := res.TopNode()
	if top != 0 {
		t.Errorf("top = %d, want hub 0", top)
	}
	ranking := res.Ranking()
	if len(ranking) == 0 || ranking[0] != 0 {
		t.Errorf("ranking = %v, want hub first", ranking)
	}
	if len(res.Contributions[0]) != 2 {
		t.Errorf("hub contributions = %v, want both pairs", res.Contributions[0])
	}
}

func TestDemandBasedSplitsAcrossParallelPaths(t *testing.T) {
	// Diamond with routes through 1 (capacity 10) and through 2 (capacity 5):
	// a 12-unit demand needs both. Node 1 gets 10/15 of the demand, node 2
	// gets 5/15.
	g := graph.New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode("", float64(i), 0, 1)
	}
	g.MustAddEdge(0, 1, 10, 1)
	g.MustAddEdge(1, 3, 10, 1)
	g.MustAddEdge(0, 2, 5, 1)
	g.MustAddEdge(2, 3, 5, 1)
	demands := []demand.Pair{{ID: 0, Source: 0, Target: 3, Flow: 12}}
	res := DemandBased(g, demands, graph.UnitLength, nil)
	want1 := 10.0 / 15.0 * 12
	want2 := 5.0 / 15.0 * 12
	if math.Abs(res.Score(1)-want1) > 1e-9 {
		t.Errorf("score(1) = %f, want %f", res.Score(1), want1)
	}
	if math.Abs(res.Score(2)-want2) > 1e-9 {
		t.Errorf("score(2) = %f, want %f", res.Score(2), want2)
	}
	// Endpoints lie on every path and receive the full demand.
	if math.Abs(res.Score(0)-12) > 1e-9 || math.Abs(res.Score(3)-12) > 1e-9 {
		t.Errorf("endpoint scores = %f, %f; want 12", res.Score(0), res.Score(3))
	}
}

func TestDemandBasedRespectsResidualCapacities(t *testing.T) {
	g := line(3, 10)
	demands := []demand.Pair{{ID: 0, Source: 0, Target: 2, Flow: 5}}
	residual := map[graph.EdgeID]float64{0: 0, 1: 0}
	res := DemandBased(g, demands, graph.UnitLength, residual)
	if len(res.Scores) != 0 {
		t.Errorf("scores = %v, want empty with zero residual capacity", res.Scores)
	}
	if _, ok := res.TopNode(); ok {
		t.Error("TopNode should report no candidate")
	}
}

func TestDemandBasedIgnoresZeroFlowPairs(t *testing.T) {
	g := line(3, 10)
	demands := []demand.Pair{{ID: 0, Source: 0, Target: 2, Flow: 0}}
	res := DemandBased(g, demands, graph.UnitLength, nil)
	if len(res.Scores) != 0 {
		t.Errorf("scores = %v, want empty", res.Scores)
	}
}

func TestBetweennessLine(t *testing.T) {
	// On a path of 5 nodes the middle node lies on 2*3=6 of the
	// (5 choose 2)=10 pairs' shortest paths: betweenness 4 for the centre
	// (pairs (0,2),(0,3),(0,4),(1,3),(1,4),(2,4) -> node 2 is interior to
	// (0,3),(0,4),(1,3),(1,4) plus (0,4)? The classical value for the centre
	// of P5 is 4.
	g := line(5, 1)
	cb := Betweenness(g)
	if math.Abs(cb[2]-4) > 1e-9 {
		t.Errorf("betweenness(2) = %f, want 4", cb[2])
	}
	if cb[0] != 0 || cb[4] != 0 {
		t.Errorf("endpoints should have zero betweenness, got %f, %f", cb[0], cb[4])
	}
	if math.Abs(cb[1]-3) > 1e-9 {
		t.Errorf("betweenness(1) = %f, want 3", cb[1])
	}
}

func TestBetweennessSplitsEqualPaths(t *testing.T) {
	// Square 0-1-3-2-0: the two routes between 0 and 3 are equal length, so
	// nodes 1 and 2 each get 0.5 from that pair.
	g := graph.New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0, 1)
	}
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 3, 1, 1)
	g.MustAddEdge(0, 2, 1, 1)
	g.MustAddEdge(2, 3, 1, 1)
	cb := Betweenness(g)
	if math.Abs(cb[1]-0.5) > 1e-9 || math.Abs(cb[2]-0.5) > 1e-9 {
		t.Errorf("betweenness = %v, want 0.5 for nodes 1 and 2", cb)
	}
}

func TestBetweennessAsResult(t *testing.T) {
	g := line(5, 10)
	demands := []demand.Pair{{ID: 3, Source: 0, Target: 4, Flow: 6}}
	res := BetweennessAsResult(g, demands)
	top, ok := res.TopNode()
	if !ok || top != 2 {
		t.Errorf("top = %d ok=%v, want node 2", top, ok)
	}
	if !res.Contributions[top][3] {
		t.Error("demand 3 should be listed as contributor")
	}
	if len(res.PathSets[3]) == 0 {
		t.Error("path sets must be populated for split decisions")
	}
}
