// Package centrality implements the demand-based centrality metric of
// §IV-B (equation 3), the core ranking ingredient of ISP, together with
// classical betweenness centrality used as an ablation baseline.
package centrality

import (
	"math"
	"sort"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
)

// Result is the outcome of a demand-based centrality computation.
type Result struct {
	// Scores maps every node to its centrality c_d(v).
	Scores map[graph.NodeID]float64
	// Contributions[v] is C(v): the set of demand pairs whose shortest-path
	// set traverses v (and therefore contributed to its score).
	Contributions map[graph.NodeID]map[demand.PairID]bool
	// PathSets[h] is the estimated shortest-path set P̂*(s_h, t_h) used for
	// pair h, exposed so that ISP's split decision can reuse it without
	// recomputation.
	PathSets map[demand.PairID][]graph.WeightedPath
}

// Score returns the centrality of v (0 when unknown).
func (r Result) Score(v graph.NodeID) float64 { return r.Scores[v] }

// TopNode returns the node with the highest centrality, breaking ties by the
// smallest node ID for determinism. ok is false when no node has positive
// centrality.
func (r Result) TopNode() (graph.NodeID, bool) {
	best := graph.InvalidNode
	bestScore := 0.0
	ids := make([]graph.NodeID, 0, len(r.Scores))
	for v := range r.Scores {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, v := range ids {
		if s := r.Scores[v]; s > bestScore+1e-12 {
			best = v
			bestScore = s
		}
	}
	return best, best != graph.InvalidNode
}

// Ranking returns all nodes with positive centrality ordered by decreasing
// score (ties broken by node ID).
func (r Result) Ranking() []graph.NodeID {
	ids := make([]graph.NodeID, 0, len(r.Scores))
	for v, s := range r.Scores {
		if s > 1e-12 {
			ids = append(ids, v)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		si, sj := r.Scores[ids[i]], r.Scores[ids[j]]
		if math.Abs(si-sj) > 1e-12 {
			return si > sj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// DemandBased computes the demand-based centrality of every node of g under
// the given demands, edge-length metric and residual capacities (nil means
// the capacities stored on the graph), following the runtime estimation
// procedure of §IV-B: for each demand, the shortest-path set P̂* is built by
// iterated Dijkstra on a residual copy until the accumulated path capacity
// covers the demand, and each node v on a selected path receives a share of
// the demand proportional to the capacity of the paths through v.
//
// The computation deliberately uses the complete graph (broken elements
// included): per §IV-C the ranking measures the *potential* of a node to
// contribute to an efficient routing, disruptions notwithstanding.
func DemandBased(g *graph.Graph, demands []demand.Pair, length graph.EdgeLength, residual map[graph.EdgeID]float64) Result {
	res := Result{
		Scores:        make(map[graph.NodeID]float64, g.NumNodes()),
		Contributions: make(map[graph.NodeID]map[demand.PairID]bool),
		PathSets:      make(map[demand.PairID][]graph.WeightedPath, len(demands)),
	}
	for _, d := range demands {
		if d.Flow <= 1e-9 {
			continue
		}
		paths, _ := g.ShortestPathSet(d.Source, d.Target, d.Flow, length, residual)
		res.PathSets[d.ID] = paths
		total := graph.TotalCapacity(paths)
		if total <= 1e-12 {
			continue
		}
		// Per-node capacity share.
		perNode := make(map[graph.NodeID]float64)
		for _, wp := range paths {
			for _, v := range wp.Path.Nodes {
				perNode[v] += wp.Capacity
			}
		}
		for v, share := range perNode {
			res.Scores[v] += share / total * d.Flow
			if res.Contributions[v] == nil {
				res.Contributions[v] = make(map[demand.PairID]bool)
			}
			res.Contributions[v][d.ID] = true
		}
	}
	return res
}

// Betweenness computes classical (unweighted, unnormalised) betweenness
// centrality for every node using Brandes' algorithm. It ignores demands and
// capacities and is provided as the ablation baseline for ISP's ranking.
func Betweenness(g *graph.Graph) map[graph.NodeID]float64 {
	n := g.NumNodes()
	cb := make(map[graph.NodeID]float64, n)
	for s := 0; s < n; s++ {
		source := graph.NodeID(s)
		// Brandes single-source shortest-path accumulation.
		var stack []graph.NodeID
		preds := make([][]graph.NodeID, n)
		sigma := make([]float64, n)
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		sigma[source] = 1
		dist[source] = 0
		queue := []graph.NodeID{source}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range g.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		delta := make([]float64, n)
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != source {
				cb[w] += delta[w]
			}
		}
	}
	// Undirected graph: every pair was counted twice.
	for v := range cb {
		cb[v] /= 2
	}
	return cb
}

// BetweennessAsResult adapts classical betweenness to the Result shape used
// by ISP so it can be swapped in as an ablation: every active demand is
// listed as a contributor of every node with positive score (the classical
// metric has no per-demand attribution).
func BetweennessAsResult(g *graph.Graph, demands []demand.Pair) Result {
	scores := Betweenness(g)
	res := Result{
		Scores:        make(map[graph.NodeID]float64, len(scores)),
		Contributions: make(map[graph.NodeID]map[demand.PairID]bool),
		PathSets:      make(map[demand.PairID][]graph.WeightedPath),
	}
	for v, s := range scores {
		if s <= 1e-12 {
			continue
		}
		res.Scores[v] = s
		res.Contributions[v] = make(map[demand.PairID]bool)
		for _, d := range demands {
			if d.Flow > 1e-9 {
				res.Contributions[v][d.ID] = true
			}
		}
	}
	// Path sets are still demand-specific: reuse the shortest-path-set
	// machinery with the hop metric so split decisions remain well-defined.
	for _, d := range demands {
		if d.Flow <= 1e-9 {
			continue
		}
		paths, _ := g.ShortestPathSet(d.Source, d.Target, d.Flow, graph.UnitLength, nil)
		res.PathSets[d.ID] = paths
	}
	return res
}
