package graph

import (
	"math"
)

// MaxFlow computes the maximum flow between s and t on the undirected graph,
// treating each undirected edge as a pair of anti-parallel directed arcs that
// share the edge capacity (the standard undirected max-flow model). It uses
// the Edmonds–Karp algorithm (BFS augmenting paths) and runs in
// O(V * E^2) time, which is ample for the topology sizes of the paper.
//
// capOverride, when non-nil, supplies per-edge capacities that replace the
// capacities stored on the graph (used by callers that maintain residual
// capacities without mutating the shared graph). Edges absent from the map
// use their stored capacity.
func (g *Graph) MaxFlow(s, t NodeID, capOverride map[EdgeID]float64) float64 {
	value, _ := g.MaxFlowWithAssignment(s, t, capOverride)
	return value
}

// FlowAssignment records, for each edge, the signed net flow pushed along it
// by a max-flow computation. The sign is positive when flow travels from
// Edge.From to Edge.To and negative otherwise.
type FlowAssignment map[EdgeID]float64

// MaxFlowWithAssignment is MaxFlow but additionally returns the per-edge net
// flow assignment realising the maximum flow.
func (g *Graph) MaxFlowWithAssignment(s, t NodeID, capOverride map[EdgeID]float64) (float64, FlowAssignment) {
	assignment := make(FlowAssignment)
	if !g.HasNode(s) || !g.HasNode(t) || s == t {
		return 0, assignment
	}

	// Residual capacities per direction. forward[e] is residual capacity in
	// the From->To direction, backward[e] in the To->From direction. For an
	// undirected edge both start at the edge capacity, but the *total* net
	// usage may not exceed the capacity; modelling each direction with full
	// capacity plus flow cancellation yields exactly the undirected max-flow.
	m := g.NumEdges()
	forward := make([]float64, m)
	backward := make([]float64, m)
	for i := 0; i < m; i++ {
		c := g.edges[i].Capacity
		if capOverride != nil {
			if oc, ok := capOverride[EdgeID(i)]; ok {
				c = oc
			}
		}
		if c < 0 {
			c = 0
		}
		forward[i] = c
		backward[i] = c
	}

	residual := func(eid EdgeID, from NodeID) float64 {
		if g.edges[eid].From == from {
			return forward[eid]
		}
		return backward[eid]
	}
	push := func(eid EdgeID, from NodeID, amount float64) {
		if g.edges[eid].From == from {
			forward[eid] -= amount
			backward[eid] += amount
			assignment[eid] += amount
		} else {
			backward[eid] -= amount
			forward[eid] += amount
			assignment[eid] -= amount
		}
	}

	total := 0.0
	prevEdge := make([]EdgeID, g.NumNodes())
	prevNode := make([]NodeID, g.NumNodes())
	for {
		// BFS over residual arcs.
		for i := range prevEdge {
			prevEdge[i] = InvalidEdge
			prevNode[i] = InvalidNode
		}
		prevNode[s] = s
		queue := []NodeID{s}
		found := false
		for len(queue) > 0 && !found {
			u := queue[0]
			queue = queue[1:]
			for _, eid := range g.adj[u] {
				if residual(eid, u) <= flowEpsilon {
					continue
				}
				v := g.edges[eid].Other(u)
				if prevNode[v] != InvalidNode {
					continue
				}
				prevNode[v] = u
				prevEdge[v] = eid
				if v == t {
					found = true
					break
				}
				queue = append(queue, v)
			}
		}
		if !found {
			break
		}
		// Bottleneck along the augmenting path.
		bottleneck := math.Inf(1)
		for v := t; v != s; v = prevNode[v] {
			if r := residual(prevEdge[v], prevNode[v]); r < bottleneck {
				bottleneck = r
			}
		}
		if bottleneck <= flowEpsilon || math.IsInf(bottleneck, 1) {
			break
		}
		for v := t; v != s; v = prevNode[v] {
			push(prevEdge[v], prevNode[v], bottleneck)
		}
		total += bottleneck
	}

	// Clean tiny numerical noise from the assignment.
	for eid, f := range assignment {
		if math.Abs(f) <= flowEpsilon {
			delete(assignment, eid)
		}
	}
	return total, assignment
}

// flowEpsilon is the tolerance under which residual capacities and flows are
// treated as zero.
const flowEpsilon = 1e-9
