package graph

import (
	"math"
)

// ShortestPathSet implements the iterative shortest-path procedure of §IV-B
// of the paper: it estimates P*(s, t), the set of first shortest paths whose
// cumulative capacity is sufficient to route the demand between s and t when
// considered in isolation.
//
// Starting from a residual copy of the capacities (residual may be nil to use
// the stored capacities), the procedure repeatedly finds the shortest s-t
// path under the supplied length metric, records it with its residual
// capacity, subtracts that capacity from the residual graph, and stops when
// the accumulated capacity reaches demand or no further positive-capacity
// path exists.
//
// The returned WeightedPath slice preserves discovery order (shortest first);
// Covered is the total capacity accumulated, which may be less than demand if
// the graph cannot carry it.
func (g *Graph) ShortestPathSet(s, t NodeID, demand float64, length EdgeLength, residual map[EdgeID]float64) ([]WeightedPath, float64) {
	if !g.HasNode(s) || !g.HasNode(t) || s == t || demand <= 0 {
		return nil, 0
	}
	// Private residual copy so callers' maps are never mutated.
	res := make(map[EdgeID]float64, g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		id := EdgeID(i)
		c := g.edges[i].Capacity
		if residual != nil {
			if rc, ok := residual[id]; ok {
				c = rc
			}
		}
		res[id] = c
	}

	// Exclude saturated edges from the metric.
	metric := func(e Edge) float64 {
		if res[e.ID] <= flowEpsilon {
			return math.Inf(1)
		}
		return length(e)
	}

	var paths []WeightedPath
	covered := 0.0
	// Termination: each iteration saturates at least one edge, so the number
	// of iterations is bounded by the number of edges.
	for iter := 0; iter <= g.NumEdges(); iter++ {
		if covered >= demand-flowEpsilon {
			break
		}
		p, dist := g.ShortestPath(s, t, metric)
		if p.Empty() || math.IsInf(dist, 1) {
			break
		}
		pathCap := math.Inf(1)
		for _, eid := range p.Edges {
			if res[eid] < pathCap {
				pathCap = res[eid]
			}
		}
		if pathCap <= flowEpsilon {
			break
		}
		use := pathCap
		paths = append(paths, WeightedPath{Path: p, Capacity: use, Length: dist})
		for _, eid := range p.Edges {
			res[eid] -= use
		}
		covered += use
	}
	return paths, covered
}

// WeightedPath is a path annotated with the capacity it contributes to a
// shortest-path set and its length under the metric that selected it.
type WeightedPath struct {
	Path     Path
	Capacity float64
	Length   float64
}

// TotalCapacity returns the sum of the capacities of the weighted paths.
func TotalCapacity(paths []WeightedPath) float64 {
	total := 0.0
	for _, wp := range paths {
		total += wp.Capacity
	}
	return total
}

// PathsThrough returns the subset of paths that traverse node v (the
// P*_{ij}|v of the centrality definition).
func PathsThrough(paths []WeightedPath, v NodeID) []WeightedPath {
	var out []WeightedPath
	for _, wp := range paths {
		if wp.Path.ContainsNode(v) {
			out = append(out, wp)
		}
	}
	return out
}

// AllSimplePaths enumerates every simple path between s and t with at most
// maxLen edges (maxLen <= 0 means no limit) and at most maxPaths results
// (maxPaths <= 0 means no limit). It is used by the greedy knapsack
// heuristics (GRD-COM, GRD-NC), which the paper notes require offline path
// pre-computation and do not scale to large topologies; callers must bound
// the enumeration accordingly.
func (g *Graph) AllSimplePaths(s, t NodeID, maxLen, maxPaths int) []Path {
	if !g.HasNode(s) || !g.HasNode(t) || s == t {
		return nil
	}
	var results []Path
	onPath := make([]bool, g.NumNodes())
	var nodes []NodeID
	var edges []EdgeID

	var dfs func(u NodeID)
	dfs = func(u NodeID) {
		if maxPaths > 0 && len(results) >= maxPaths {
			return
		}
		if u == t {
			p := Path{
				Nodes: append([]NodeID(nil), nodes...),
				Edges: append([]EdgeID(nil), edges...),
			}
			results = append(results, p)
			return
		}
		if maxLen > 0 && len(edges) >= maxLen {
			return
		}
		for _, eid := range g.adj[u] {
			v := g.edges[eid].Other(u)
			if onPath[v] {
				continue
			}
			onPath[v] = true
			nodes = append(nodes, v)
			edges = append(edges, eid)
			dfs(v)
			onPath[v] = false
			nodes = nodes[:len(nodes)-1]
			edges = edges[:len(edges)-1]
		}
	}

	onPath[s] = true
	nodes = append(nodes, s)
	dfs(s)
	return results
}
