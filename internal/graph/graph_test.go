package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildTriangle returns a 3-node triangle with capacities 10, 20, 30.
func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New(3, 3)
	a := g.AddNode("a", 0, 0, 1)
	b := g.AddNode("b", 1, 0, 1)
	c := g.AddNode("c", 0, 1, 1)
	g.MustAddEdge(a, b, 10, 1)
	g.MustAddEdge(b, c, 20, 1)
	g.MustAddEdge(a, c, 30, 1)
	return g
}

func TestAddNodeAndEdge(t *testing.T) {
	g := New(0, 0)
	a := g.AddNode("a", 1, 2, 3)
	b := g.AddNode("b", 4, 5, 6)
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
	if got := g.Node(a); got.Name != "a" || got.X != 1 || got.Y != 2 || got.RepairCost != 3 {
		t.Errorf("Node(a) = %+v", got)
	}
	eid, err := g.AddEdge(a, b, 7, 8)
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	e := g.Edge(eid)
	if e.From != a || e.To != b || e.Capacity != 7 || e.RepairCost != 8 {
		t.Errorf("Edge = %+v", e)
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Errorf("degrees = %d, %d, want 1, 1", g.Degree(a), g.Degree(b))
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(0, 0)
	a := g.AddNode("a", 0, 0, 0)
	tests := []struct {
		name     string
		u, v     NodeID
		capacity float64
	}{
		{"missing endpoint", a, NodeID(7), 1},
		{"self loop", a, a, 1},
		{"negative capacity", a, a, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := g.AddEdge(tt.u, tt.v, tt.capacity, 0); err == nil {
				t.Errorf("AddEdge(%d, %d, %f) succeeded, want error", tt.u, tt.v, tt.capacity)
			}
		})
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{From: 2, To: 5}
	if got := e.Other(2); got != 5 {
		t.Errorf("Other(2) = %d, want 5", got)
	}
	if got := e.Other(5); got != 2 {
		t.Errorf("Other(5) = %d, want 2", got)
	}
	if got := e.Other(9); got != InvalidNode {
		t.Errorf("Other(9) = %d, want InvalidNode", got)
	}
}

func TestNeighborsAndMaxDegree(t *testing.T) {
	g := buildTriangle(t)
	nbrs := g.Neighbors(0)
	if len(nbrs) != 2 {
		t.Fatalf("Neighbors(0) = %v, want 2 entries", nbrs)
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
}

func TestEdgeBetween(t *testing.T) {
	g := New(2, 2)
	a := g.AddNode("a", 0, 0, 0)
	b := g.AddNode("b", 0, 0, 0)
	low := g.MustAddEdge(a, b, 5, 0)
	high := g.MustAddEdge(a, b, 15, 0)
	if got := g.EdgeBetween(a, b); got != high {
		t.Errorf("EdgeBetween = %d, want the higher-capacity edge %d (low=%d)", got, high, low)
	}
	c := g.AddNode("c", 0, 0, 0)
	if got := g.EdgeBetween(a, c); got != InvalidEdge {
		t.Errorf("EdgeBetween(a, c) = %d, want InvalidEdge", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := buildTriangle(t)
	c := g.Clone()
	c.SetCapacity(0, 99)
	c.SetNodeRepairCost(0, 42)
	if g.Edge(0).Capacity == 99 {
		t.Error("mutating clone capacity affected original")
	}
	if g.Node(0).RepairCost == 42 {
		t.Error("mutating clone node cost affected original")
	}
}

func TestBarycenter(t *testing.T) {
	g := New(0, 0)
	g.AddNode("a", 0, 0, 0)
	g.AddNode("b", 2, 4, 0)
	x, y := g.Barycenter()
	if x != 1 || y != 2 {
		t.Errorf("Barycenter = (%f, %f), want (1, 2)", x, y)
	}
	var empty Graph
	if x, y := empty.Barycenter(); x != 0 || y != 0 {
		t.Errorf("empty Barycenter = (%f, %f), want (0, 0)", x, y)
	}
}

func TestShortestPathUnitLength(t *testing.T) {
	// Path graph 0-1-2-3 plus shortcut 0-3 with high length under capacity
	// metric but 1 hop.
	g := New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode("", float64(i), 0, 0)
	}
	g.MustAddEdge(0, 1, 10, 0)
	g.MustAddEdge(1, 2, 10, 0)
	g.MustAddEdge(2, 3, 10, 0)
	g.MustAddEdge(0, 3, 1, 0)

	p, dist := g.ShortestPath(0, 3, UnitLength)
	if dist != 1 {
		t.Fatalf("unit-length distance = %f, want 1", dist)
	}
	if p.Len() != 1 {
		t.Fatalf("unit-length path = %v, want single edge", p)
	}

	p2, dist2 := g.ShortestPath(0, 3, CapacityLength)
	if p2.Len() != 3 {
		t.Fatalf("capacity-length path = %v, want 3 edges", p2)
	}
	if want := 3.0 / 10.0; math.Abs(dist2-want) > 1e-12 {
		t.Errorf("capacity-length distance = %f, want %f", dist2, want)
	}
	if err := p2.Validate(g); err != nil {
		t.Errorf("path validation: %v", err)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3, 1)
	g.AddNode("", 0, 0, 0)
	g.AddNode("", 0, 0, 0)
	g.AddNode("", 0, 0, 0)
	g.MustAddEdge(0, 1, 1, 0)
	p, dist := g.ShortestPath(0, 2, UnitLength)
	if !p.Empty() || !math.IsInf(dist, 1) {
		t.Errorf("expected unreachable, got path %v dist %f", p, dist)
	}
}

func TestShortestPathExclusions(t *testing.T) {
	g := New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0, 0)
	}
	top := g.MustAddEdge(0, 1, 1, 0)
	g.MustAddEdge(1, 3, 1, 0)
	g.MustAddEdge(0, 2, 1, 0)
	g.MustAddEdge(2, 3, 1, 0)

	// Excluding node 1 forces the 0-2-3 route.
	metric := ExcludeNodes(UnitLength, map[NodeID]bool{1: true})
	p, _ := g.ShortestPath(0, 3, metric)
	if p.ContainsNode(1) {
		t.Errorf("path %v traverses excluded node", p)
	}
	// Excluding the top edge forces the same.
	metric = ExcludeEdges(UnitLength, map[EdgeID]bool{top: true})
	p, _ = g.ShortestPath(0, 3, metric)
	if p.ContainsEdge(top) {
		t.Errorf("path %v traverses excluded edge", p)
	}
}

func TestHopDistanceAndDiameter(t *testing.T) {
	g := New(5, 4)
	for i := 0; i < 5; i++ {
		g.AddNode("", 0, 0, 0)
	}
	for i := 0; i < 4; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), 1, 0)
	}
	if d := g.HopDistance(0, 4); d != 4 {
		t.Errorf("HopDistance(0,4) = %d, want 4", d)
	}
	if d := g.HopDistance(2, 2); d != 0 {
		t.Errorf("HopDistance(2,2) = %d, want 0", d)
	}
	if d := g.Diameter(); d != 4 {
		t.Errorf("Diameter = %d, want 4", d)
	}
	isolated := g.AddNode("", 0, 0, 0)
	if d := g.HopDistance(0, isolated); d != -1 {
		t.Errorf("HopDistance to isolated node = %d, want -1", d)
	}
}

func TestMaxFlowSeriesParallel(t *testing.T) {
	// Two disjoint paths from 0 to 3: capacities min(5,7)=5 and min(4,9)=4.
	g := New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0, 0)
	}
	g.MustAddEdge(0, 1, 5, 0)
	g.MustAddEdge(1, 3, 7, 0)
	g.MustAddEdge(0, 2, 4, 0)
	g.MustAddEdge(2, 3, 9, 0)
	if flow := g.MaxFlow(0, 3, nil); math.Abs(flow-9) > 1e-9 {
		t.Errorf("MaxFlow = %f, want 9", flow)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	// Chain 0-1-2 with bottleneck 3 on the second edge.
	g := New(3, 2)
	for i := 0; i < 3; i++ {
		g.AddNode("", 0, 0, 0)
	}
	g.MustAddEdge(0, 1, 10, 0)
	g.MustAddEdge(1, 2, 3, 0)
	if flow := g.MaxFlow(0, 2, nil); math.Abs(flow-3) > 1e-9 {
		t.Errorf("MaxFlow = %f, want 3", flow)
	}
}

func TestMaxFlowWithOverride(t *testing.T) {
	g := New(2, 1)
	g.AddNode("", 0, 0, 0)
	g.AddNode("", 0, 0, 0)
	e := g.MustAddEdge(0, 1, 10, 0)
	if flow := g.MaxFlow(0, 1, map[EdgeID]float64{e: 2.5}); math.Abs(flow-2.5) > 1e-9 {
		t.Errorf("MaxFlow with override = %f, want 2.5", flow)
	}
	if flow := g.MaxFlow(0, 1, map[EdgeID]float64{e: 0}); flow != 0 {
		t.Errorf("MaxFlow with zero override = %f, want 0", flow)
	}
}

func TestMaxFlowAssignmentConservation(t *testing.T) {
	g := New(5, 7)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		g.AddNode("", 0, 0, 0)
	}
	edges := [][2]NodeID{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}}
	for _, uv := range edges {
		g.MustAddEdge(uv[0], uv[1], 1+rng.Float64()*10, 0)
	}
	value, assignment := g.MaxFlowWithAssignment(0, 4, nil)
	// Conservation at interior nodes; net out of source equals value.
	net := make(map[NodeID]float64)
	for eid, f := range assignment {
		e := g.Edge(eid)
		net[e.From] -= f
		net[e.To] += f
		if math.Abs(f) > e.Capacity+1e-9 {
			t.Errorf("edge %d flow %f exceeds capacity %f", eid, f, e.Capacity)
		}
	}
	for v := NodeID(1); v <= 3; v++ {
		if math.Abs(net[v]) > 1e-9 {
			t.Errorf("node %d not conserved: %f", v, net[v])
		}
	}
	if math.Abs(net[0]+value) > 1e-9 {
		t.Errorf("source imbalance %f, want -value %f", net[0], -value)
	}
	if math.Abs(net[4]-value) > 1e-9 {
		t.Errorf("sink imbalance %f, want value %f", net[4], value)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6, 3)
	for i := 0; i < 6; i++ {
		g.AddNode("", 0, 0, 0)
	}
	g.MustAddEdge(0, 1, 1, 0)
	g.MustAddEdge(1, 2, 1, 0)
	g.MustAddEdge(3, 4, 1, 0)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3 components", comps)
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Errorf("component sizes = %d,%d,%d, want 3,2,1", len(comps[0]), len(comps[1]), len(comps[2]))
	}
	giant := g.GiantComponent()
	if len(giant) != 3 {
		t.Errorf("giant component = %v, want 3 nodes", giant)
	}
}

func TestConnectedComponentsFiltered(t *testing.T) {
	g := New(4, 3)
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0, 0)
	}
	e01 := g.MustAddEdge(0, 1, 1, 0)
	g.MustAddEdge(1, 2, 1, 0)
	g.MustAddEdge(2, 3, 1, 0)
	comps := g.ConnectedComponentsFiltered(map[NodeID]bool{2: true}, map[EdgeID]bool{e01: true})
	// Node 2 removed; edge 0-1 removed: components {0}, {1}, {3}.
	if len(comps) != 3 {
		t.Fatalf("filtered components = %v, want 3", comps)
	}
}

func TestConnected(t *testing.T) {
	g := New(4, 3)
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0, 0)
	}
	g.MustAddEdge(0, 1, 1, 0)
	e12 := g.MustAddEdge(1, 2, 1, 0)
	g.MustAddEdge(2, 3, 1, 0)
	if !g.Connected(0, 3, nil, nil) {
		t.Error("0 and 3 should be connected")
	}
	if g.Connected(0, 3, nil, map[EdgeID]bool{e12: true}) {
		t.Error("0 and 3 should be disconnected after removing edge 1-2")
	}
	if g.Connected(0, 3, map[NodeID]bool{1: true}, nil) {
		t.Error("0 and 3 should be disconnected after removing node 1")
	}
	if !g.Connected(2, 2, nil, nil) {
		t.Error("a node is connected to itself")
	}
	if g.Connected(2, 2, map[NodeID]bool{2: true}, nil) {
		t.Error("a removed node is not connected to itself")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildTriangle(t)
	sub, nodeMap, edgeMap := g.InducedSubgraph([]NodeID{0, 1})
	if sub.NumNodes() != 2 || sub.NumEdges() != 1 {
		t.Fatalf("subgraph = %v, want 2 nodes 1 edge", sub)
	}
	if nodeMap[0] != 0 && nodeMap[0] != 1 {
		t.Errorf("node map = %v", nodeMap)
	}
	if len(edgeMap) != 1 {
		t.Errorf("edge map = %v, want 1 entry", edgeMap)
	}
}

func TestShortestPathSetCoversDemand(t *testing.T) {
	// Two parallel 2-hop routes of capacity 10 and 5; demand 12 needs both.
	g := New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0, 0)
	}
	g.MustAddEdge(0, 1, 10, 0)
	g.MustAddEdge(1, 3, 10, 0)
	g.MustAddEdge(0, 2, 5, 0)
	g.MustAddEdge(2, 3, 5, 0)

	paths, covered := g.ShortestPathSet(0, 3, 12, UnitLength, nil)
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2", paths)
	}
	if math.Abs(covered-15) > 1e-9 && math.Abs(covered-12) > 1e-9 {
		// Both the exact demand or the total of the two discovered paths are
		// acceptable depending on when the loop stops; the implementation
		// uses full path capacities, so total is 15.
		t.Errorf("covered = %f, want >= 12", covered)
	}
	if covered < 12 {
		t.Errorf("covered = %f, want at least the demand 12", covered)
	}
}

func TestShortestPathSetInsufficient(t *testing.T) {
	g := New(2, 1)
	g.AddNode("", 0, 0, 0)
	g.AddNode("", 0, 0, 0)
	g.MustAddEdge(0, 1, 3, 0)
	paths, covered := g.ShortestPathSet(0, 1, 10, UnitLength, nil)
	if len(paths) != 1 {
		t.Fatalf("paths = %v, want 1", paths)
	}
	if math.Abs(covered-3) > 1e-9 {
		t.Errorf("covered = %f, want 3", covered)
	}
}

func TestShortestPathSetRespectsResidual(t *testing.T) {
	g := New(2, 1)
	g.AddNode("", 0, 0, 0)
	g.AddNode("", 0, 0, 0)
	e := g.MustAddEdge(0, 1, 10, 0)
	paths, covered := g.ShortestPathSet(0, 1, 10, UnitLength, map[EdgeID]float64{e: 4})
	if covered != 4 {
		t.Errorf("covered = %f, want 4 (residual-limited)", covered)
	}
	if len(paths) != 1 || paths[0].Capacity != 4 {
		t.Errorf("paths = %+v", paths)
	}
}

func TestPathsThroughAndTotalCapacity(t *testing.T) {
	g := New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0, 0)
	}
	g.MustAddEdge(0, 1, 10, 0)
	g.MustAddEdge(1, 3, 10, 0)
	g.MustAddEdge(0, 2, 5, 0)
	g.MustAddEdge(2, 3, 5, 0)
	paths, _ := g.ShortestPathSet(0, 3, 15, UnitLength, nil)
	through1 := PathsThrough(paths, 1)
	if len(through1) != 1 {
		t.Fatalf("PathsThrough(1) = %v, want 1", through1)
	}
	if TotalCapacity(paths) != 15 {
		t.Errorf("TotalCapacity = %f, want 15", TotalCapacity(paths))
	}
}

func TestAllSimplePaths(t *testing.T) {
	// Square 0-1-3, 0-2-3 plus diagonal 1-2: s=0, t=3.
	g := New(4, 5)
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0, 0)
	}
	g.MustAddEdge(0, 1, 1, 0)
	g.MustAddEdge(1, 3, 1, 0)
	g.MustAddEdge(0, 2, 1, 0)
	g.MustAddEdge(2, 3, 1, 0)
	g.MustAddEdge(1, 2, 1, 0)
	paths := g.AllSimplePaths(0, 3, 0, 0)
	if len(paths) != 4 {
		t.Fatalf("found %d simple paths, want 4: %v", len(paths), paths)
	}
	for _, p := range paths {
		if err := p.Validate(g); err != nil {
			t.Errorf("invalid path %v: %v", p, err)
		}
	}
	limited := g.AllSimplePaths(0, 3, 2, 0)
	if len(limited) != 2 {
		t.Errorf("length-limited paths = %d, want 2", len(limited))
	}
	capped := g.AllSimplePaths(0, 3, 0, 1)
	if len(capped) != 1 {
		t.Errorf("count-limited paths = %d, want 1", len(capped))
	}
}

func TestSurplusAndCuts(t *testing.T) {
	g := buildTriangle(t)
	demands := []DemandPair{{Source: 0, Target: 2, Flow: 15}}
	set := map[NodeID]bool{0: true}
	// Cut of {0}: edges 0-1 (10) and 0-2 (30) => 40. Demand cut = 15.
	if got := g.CutCapacity(set, nil); got != 40 {
		t.Errorf("CutCapacity = %f, want 40", got)
	}
	if got := DemandCut(set, demands); got != 15 {
		t.Errorf("DemandCut = %f, want 15", got)
	}
	if got := g.Surplus(set, demands, nil); got != 25 {
		t.Errorf("Surplus = %f, want 25", got)
	}
	if !g.CutConditionHolds(demands, nil) {
		t.Error("cut condition should hold")
	}
	// Demand above the cut capacity violates the singleton cut condition.
	big := []DemandPair{{Source: 0, Target: 2, Flow: 100}}
	if g.CutConditionHolds(big, nil) {
		t.Error("cut condition should fail with demand 100")
	}
}

func TestPathHelpers(t *testing.T) {
	g := buildTriangle(t)
	p, _ := g.ShortestPath(0, 2, CapacityLength)
	if p.Source() != 0 || p.Target() != 2 {
		t.Errorf("endpoints = %d, %d", p.Source(), p.Target())
	}
	if got := p.Capacity(g); got <= 0 {
		t.Errorf("Capacity = %f", got)
	}
	clone := p.Clone()
	if len(clone.Edges) != len(p.Edges) {
		t.Error("clone lost edges")
	}
	if p.String() == "" || (Path{}).String() != "<empty path>" {
		t.Error("String rendering")
	}
	var empty Path
	if empty.Source() != InvalidNode || empty.Target() != InvalidNode {
		t.Error("empty path endpoints should be invalid")
	}
	if !math.IsInf(empty.Capacity(g), 1) {
		t.Error("empty path capacity should be +Inf")
	}
	interior := Path{Nodes: []NodeID{0, 1, 2}, Edges: []EdgeID{0, 1}}.InteriorNodes()
	if len(interior) != 1 || interior[0] != 1 {
		t.Errorf("InteriorNodes = %v, want [1]", interior)
	}
}

func TestPathRepairCost(t *testing.T) {
	g := New(3, 2)
	g.AddNode("", 0, 0, 5)
	g.AddNode("", 0, 0, 7)
	g.AddNode("", 0, 0, 11)
	e0 := g.MustAddEdge(0, 1, 1, 2)
	e1 := g.MustAddEdge(1, 2, 1, 3)
	p := Path{Nodes: []NodeID{0, 1, 2}, Edges: []EdgeID{e0, e1}}
	cost := p.RepairCost(g, map[NodeID]bool{1: true}, map[EdgeID]bool{e1: true})
	if cost != 7+3 {
		t.Errorf("RepairCost = %f, want 10", cost)
	}
}

func TestPathValidateFailures(t *testing.T) {
	g := buildTriangle(t)
	bad := Path{Nodes: []NodeID{0, 1}, Edges: []EdgeID{2}} // edge 2 joins 0 and 2, not 0 and 1
	if err := bad.Validate(g); err == nil {
		t.Error("expected validation error for mismatched edge")
	}
	repeat := Path{Nodes: []NodeID{0, 1, 0}, Edges: []EdgeID{0, 0}}
	if err := repeat.Validate(g); err == nil {
		t.Error("expected validation error for repeated node")
	}
	wrongCount := Path{Nodes: []NodeID{0, 1, 2}, Edges: []EdgeID{0}}
	if err := wrongCount.Validate(g); err == nil {
		t.Error("expected validation error for node/edge count mismatch")
	}
}

// Property: max flow between two nodes never exceeds the capacity of the cut
// around the source, and is symmetric for undirected graphs.
func TestMaxFlowProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		g := New(n, n*2)
		for i := 0; i < n; i++ {
			g.AddNode("", rng.Float64(), rng.Float64(), 1)
		}
		// Random connected-ish graph: a ring plus random chords.
		for i := 0; i < n; i++ {
			g.MustAddEdge(NodeID(i), NodeID((i+1)%n), 1+rng.Float64()*9, 1)
		}
		for k := 0; k < n; k++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u != v {
				g.MustAddEdge(u, v, 1+rng.Float64()*9, 1)
			}
		}
		s := NodeID(0)
		tgt := NodeID(n - 1)
		flow := g.MaxFlow(s, tgt, nil)
		rev := g.MaxFlow(tgt, s, nil)
		if math.Abs(flow-rev) > 1e-6 {
			return false
		}
		cutS := g.CutCapacity(map[NodeID]bool{s: true}, nil)
		cutT := g.CutCapacity(map[NodeID]bool{tgt: true}, nil)
		return flow <= cutS+1e-6 && flow <= cutT+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the shortest-path distance satisfies the triangle inequality
// through any intermediate node.
func TestShortestPathTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(5)
		g := New(n, 2*n)
		for i := 0; i < n; i++ {
			g.AddNode("", 0, 0, 0)
		}
		for i := 0; i < n; i++ {
			g.MustAddEdge(NodeID(i), NodeID((i+1)%n), 1+rng.Float64()*5, 0)
		}
		for k := 0; k < n/2; k++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v {
				g.MustAddEdge(u, v, 1+rng.Float64()*5, 0)
			}
		}
		length := CapacityLength
		dist0 := g.ShortestDistances(0, length)
		mid := NodeID(rng.Intn(n))
		distMid := g.ShortestDistances(mid, length)
		for v := 0; v < n; v++ {
			if dist0[v] > dist0[mid]+distMid[v]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSortedEdgeIDsAndString(t *testing.T) {
	g := buildTriangle(t)
	ids := g.SortedEdgeIDs()
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Errorf("SortedEdgeIDs = %v", ids)
	}
	if g.String() != "graph{nodes: 3, edges: 3}" {
		t.Errorf("String = %q", g.String())
	}
}

func TestNodesEdgesCopies(t *testing.T) {
	g := buildTriangle(t)
	nodes := g.Nodes()
	nodes[0].RepairCost = 999
	if g.Node(0).RepairCost == 999 {
		t.Error("Nodes() must return a copy")
	}
	edges := g.Edges()
	edges[0].Capacity = 999
	if g.Edge(0).Capacity == 999 {
		t.Error("Edges() must return a copy")
	}
	inc := g.IncidentEdges(0)
	if len(inc) != 2 {
		t.Errorf("IncidentEdges(0) = %v", inc)
	}
}
