package graph

// ConnectedComponents returns the connected components of the graph as slices
// of node IDs. Components are returned in order of their smallest node ID and
// each component's node list is sorted ascending.
func (g *Graph) ConnectedComponents() [][]NodeID {
	return g.ConnectedComponentsFiltered(nil, nil)
}

// ConnectedComponentsFiltered returns the connected components of the
// sub-graph obtained by removing the given node and edge sets (either may be
// nil). Removed nodes do not appear in any component.
func (g *Graph) ConnectedComponentsFiltered(removedNodes map[NodeID]bool, removedEdges map[EdgeID]bool) [][]NodeID {
	visited := make([]bool, g.NumNodes())
	var components [][]NodeID
	for start := 0; start < g.NumNodes(); start++ {
		s := NodeID(start)
		if visited[start] || removedNodes[s] {
			continue
		}
		// BFS restricted to live nodes/edges.
		component := []NodeID{s}
		visited[start] = true
		queue := []NodeID{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, eid := range g.adj[u] {
				if removedEdges[eid] {
					continue
				}
				v := g.edges[eid].Other(u)
				if visited[v] || removedNodes[v] {
					continue
				}
				visited[v] = true
				component = append(component, v)
				queue = append(queue, v)
			}
		}
		components = append(components, component)
	}
	for _, c := range components {
		sortNodeIDs(c)
	}
	return components
}

// GiantComponent returns the node set of the largest connected component. If
// the graph is empty it returns nil.
func (g *Graph) GiantComponent() []NodeID {
	var giant []NodeID
	for _, c := range g.ConnectedComponents() {
		if len(c) > len(giant) {
			giant = c
		}
	}
	return giant
}

// InducedSubgraph returns a new graph containing only the given nodes and the
// edges whose both endpoints are kept, along with mappings from the new IDs
// back to the original node and edge IDs.
func (g *Graph) InducedSubgraph(keep []NodeID) (*Graph, map[NodeID]NodeID, map[EdgeID]EdgeID) {
	keepSet := make(map[NodeID]bool, len(keep))
	for _, v := range keep {
		keepSet[v] = true
	}
	sub := New(len(keep), g.NumEdges())
	oldToNew := make(map[NodeID]NodeID, len(keep))
	newToOldNode := make(map[NodeID]NodeID, len(keep))
	sorted := make([]NodeID, len(keep))
	copy(sorted, keep)
	sortNodeIDs(sorted)
	for _, old := range sorted {
		if !g.HasNode(old) {
			continue
		}
		n := g.Node(old)
		id := sub.AddNode(n.Name, n.X, n.Y, n.RepairCost)
		oldToNew[old] = id
		newToOldNode[id] = old
	}
	newToOldEdge := make(map[EdgeID]EdgeID)
	for _, e := range g.edges {
		if !keepSet[e.From] || !keepSet[e.To] {
			continue
		}
		id := sub.MustAddEdge(oldToNew[e.From], oldToNew[e.To], e.Capacity, e.RepairCost)
		newToOldEdge[id] = e.ID
	}
	return sub, newToOldNode, newToOldEdge
}

// Connected reports whether s and t are in the same connected component of
// the sub-graph obtained by removing the given node and edge sets.
func (g *Graph) Connected(s, t NodeID, removedNodes map[NodeID]bool, removedEdges map[EdgeID]bool) bool {
	if !g.HasNode(s) || !g.HasNode(t) {
		return false
	}
	if removedNodes[s] || removedNodes[t] {
		return false
	}
	if s == t {
		return true
	}
	visited := make([]bool, g.NumNodes())
	visited[s] = true
	queue := []NodeID{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, eid := range g.adj[u] {
			if removedEdges[eid] {
				continue
			}
			v := g.edges[eid].Other(u)
			if visited[v] || removedNodes[v] {
				continue
			}
			if v == t {
				return true
			}
			visited[v] = true
			queue = append(queue, v)
		}
	}
	return false
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
