package graph

import (
	"container/heap"
	"math"
)

// EdgeLength is a pluggable edge-length metric used by shortest-path
// computations. Returning math.Inf(1) excludes the edge from consideration.
// The network-recovery core uses the dynamic metric of §IV-D; simpler callers
// can use UnitLength or CapacityLength.
type EdgeLength func(e Edge) float64

// UnitLength assigns length 1 to every edge (hop-count metric).
func UnitLength(Edge) float64 { return 1 }

// CapacityLength assigns length 1/capacity so that shortest paths prefer
// high-capacity edges. Zero-capacity edges are excluded.
func CapacityLength(e Edge) float64 {
	if e.Capacity <= 0 {
		return math.Inf(1)
	}
	return 1 / e.Capacity
}

// ExcludeNodes wraps a length metric so that edges incident to any node in
// the excluded set become unusable. It is used by the bubble search and by
// shortest-path computations on the working sub-graph.
func ExcludeNodes(base EdgeLength, excluded map[NodeID]bool) EdgeLength {
	return func(e Edge) float64 {
		if excluded[e.From] || excluded[e.To] {
			return math.Inf(1)
		}
		return base(e)
	}
}

// ExcludeEdges wraps a length metric so that edges in the excluded set become
// unusable.
func ExcludeEdges(base EdgeLength, excluded map[EdgeID]bool) EdgeLength {
	return func(e Edge) float64 {
		if excluded[e.ID] {
			return math.Inf(1)
		}
		return base(e)
	}
}

// pqItem is an entry of the Dijkstra priority queue.
type pqItem struct {
	node NodeID
	dist float64
}

type priorityQueue []pqItem

func (pq priorityQueue) Len() int            { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool  { return pq[i].dist < pq[j].dist }
func (pq priorityQueue) Swap(i, j int)       { pq[i], pq[j] = pq[j], pq[i] }
func (pq *priorityQueue) Push(x interface{}) { *pq = append(*pq, x.(pqItem)) }
func (pq *priorityQueue) Pop() interface{} {
	old := *pq
	n := len(old)
	item := old[n-1]
	*pq = old[:n-1]
	return item
}

// ShortestPath returns the shortest path from s to t under the given length
// metric using Dijkstra's algorithm, together with its total length. If t is
// unreachable, the returned path is empty and the length is +Inf. Lengths
// must be non-negative; edges of infinite length are skipped.
func (g *Graph) ShortestPath(s, t NodeID, length EdgeLength) (Path, float64) {
	dist, prevEdge := g.dijkstra(s, length, t)
	if math.IsInf(dist[t], 1) {
		return Path{}, math.Inf(1)
	}
	return g.reconstructPath(s, t, prevEdge), dist[t]
}

// ShortestDistances returns the shortest-path distance from s to every node
// under the given length metric. Unreachable nodes have distance +Inf.
func (g *Graph) ShortestDistances(s NodeID, length EdgeLength) []float64 {
	dist, _ := g.dijkstra(s, length, InvalidNode)
	return dist
}

// dijkstra runs Dijkstra from s; if target is a valid node the search stops
// early once the target is settled. It returns the distance array and, for
// each node, the edge used to reach it on a shortest path.
func (g *Graph) dijkstra(s NodeID, length EdgeLength, target NodeID) ([]float64, []EdgeID) {
	n := g.NumNodes()
	dist := make([]float64, n)
	prevEdge := make([]EdgeID, n)
	settled := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = InvalidEdge
	}
	if !g.HasNode(s) {
		return dist, prevEdge
	}
	dist[s] = 0

	pq := &priorityQueue{{node: s, dist: 0}}
	heap.Init(pq)
	for pq.Len() > 0 {
		item := heap.Pop(pq).(pqItem)
		u := item.node
		if settled[u] {
			continue
		}
		settled[u] = true
		if u == target {
			break
		}
		for _, eid := range g.adj[u] {
			e := g.edges[eid]
			w := length(e)
			if math.IsInf(w, 1) {
				continue
			}
			v := e.Other(u)
			if settled[v] {
				continue
			}
			if nd := dist[u] + w; nd < dist[v] {
				dist[v] = nd
				prevEdge[v] = eid
				heap.Push(pq, pqItem{node: v, dist: nd})
			}
		}
	}
	return dist, prevEdge
}

// reconstructPath rebuilds the s->t path from the predecessor-edge array.
func (g *Graph) reconstructPath(s, t NodeID, prevEdge []EdgeID) Path {
	if s == t {
		return Path{Nodes: []NodeID{s}}
	}
	var revEdges []EdgeID
	var revNodes []NodeID
	cur := t
	for cur != s {
		eid := prevEdge[cur]
		if eid == InvalidEdge {
			return Path{}
		}
		revEdges = append(revEdges, eid)
		revNodes = append(revNodes, cur)
		cur = g.edges[eid].Other(cur)
	}
	revNodes = append(revNodes, s)

	p := Path{
		Edges: make([]EdgeID, len(revEdges)),
		Nodes: make([]NodeID, len(revNodes)),
	}
	for i := range revEdges {
		p.Edges[i] = revEdges[len(revEdges)-1-i]
	}
	for i := range revNodes {
		p.Nodes[i] = revNodes[len(revNodes)-1-i]
	}
	return p
}

// HopDistance returns the minimum number of edges between s and t, or -1 if t
// is unreachable from s. It uses breadth-first search.
func (g *Graph) HopDistance(s, t NodeID) int {
	if s == t {
		return 0
	}
	dist := g.BFSDistances(s, nil)
	if dist[t] < 0 {
		return -1
	}
	return dist[t]
}

// BFSDistances returns hop distances from s to every node, restricted to
// edges for which allowed returns true (a nil predicate allows every edge).
// Unreachable nodes have distance -1.
func (g *Graph) BFSDistances(s NodeID, allowed func(Edge) bool) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	if !g.HasNode(s) {
		return dist
	}
	dist[s] = 0
	queue := []NodeID{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, eid := range g.adj[u] {
			e := g.edges[eid]
			if allowed != nil && !allowed(e) {
				continue
			}
			v := e.Other(u)
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Diameter returns the maximum finite hop distance between any pair of nodes
// (the hop diameter of the largest connected component). It returns 0 for
// graphs with fewer than two nodes.
func (g *Graph) Diameter() int {
	diameter := 0
	for v := 0; v < g.NumNodes(); v++ {
		dist := g.BFSDistances(NodeID(v), nil)
		for _, d := range dist {
			if d > diameter {
				diameter = d
			}
		}
	}
	return diameter
}
