// Package graph implements the undirected capacitated supply-graph substrate
// used throughout the network-recovery library: adjacency storage, shortest
// paths, max-flow, connectivity queries, cuts and surplus computations.
//
// Node identifiers are dense non-negative integers. Edges are undirected and
// identified either by an EdgeID (their index in the edge list) or by their
// unordered endpoint pair.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a vertex of a Graph. IDs are dense, starting at 0.
type NodeID int

// EdgeID identifies an edge of a Graph by its index in the edge list.
type EdgeID int

// Invalid sentinel values for identifiers.
const (
	InvalidNode NodeID = -1
	InvalidEdge EdgeID = -1
)

// Node is a vertex of the supply graph. The coordinates are used by the
// geographically-correlated disruption models and by topology generators; the
// repair cost is the k^v_i of the MinR formulation.
type Node struct {
	ID         NodeID
	Name       string
	X, Y       float64
	RepairCost float64
}

// Edge is an undirected capacitated edge of the supply graph. Capacity is the
// c_ij of the MinR formulation and RepairCost the k^e_ij.
type Edge struct {
	ID         EdgeID
	From, To   NodeID
	Capacity   float64
	RepairCost float64
}

// Other returns the endpoint of e opposite to v. It returns InvalidNode if v
// is not an endpoint of e.
func (e Edge) Other(v NodeID) NodeID {
	switch v {
	case e.From:
		return e.To
	case e.To:
		return e.From
	default:
		return InvalidNode
	}
}

// HasEndpoint reports whether v is one of the endpoints of e.
func (e Edge) HasEndpoint(v NodeID) bool {
	return e.From == v || e.To == v
}

// Graph is an undirected capacitated graph. The zero value is an empty graph
// ready to use. Graph is not safe for concurrent mutation; concurrent reads
// are safe.
type Graph struct {
	nodes []Node
	edges []Edge
	// adj[v] lists the IDs of the edges incident to v.
	adj [][]EdgeID
}

// New returns an empty graph with capacity hints for n nodes and m edges.
func New(n, m int) *Graph {
	return &Graph{
		nodes: make([]Node, 0, n),
		edges: make([]Edge, 0, m),
		adj:   make([][]EdgeID, 0, n),
	}
}

// AddNode appends a node with the given attributes and returns its ID.
func (g *Graph) AddNode(name string, x, y, repairCost float64) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, X: x, Y: y, RepairCost: repairCost})
	g.adj = append(g.adj, nil)
	return id
}

// AddEdge appends an undirected edge between u and v and returns its ID.
// It returns an error if either endpoint does not exist or if u == v.
func (g *Graph) AddEdge(u, v NodeID, capacity, repairCost float64) (EdgeID, error) {
	if !g.HasNode(u) || !g.HasNode(v) {
		return InvalidEdge, fmt.Errorf("add edge (%d,%d): endpoint out of range [0,%d)", u, v, len(g.nodes))
	}
	if u == v {
		return InvalidEdge, fmt.Errorf("add edge (%d,%d): self loops are not allowed", u, v)
	}
	if capacity < 0 {
		return InvalidEdge, fmt.Errorf("add edge (%d,%d): negative capacity %f", u, v, capacity)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: u, To: v, Capacity: capacity, RepairCost: repairCost})
	g.adj[u] = append(g.adj[u], id)
	g.adj[v] = append(g.adj[v], id)
	return id, nil
}

// MustAddEdge is AddEdge but panics on error. It is intended for use by
// topology constructors whose inputs are known to be valid at build time.
func (g *Graph) MustAddEdge(u, v NodeID, capacity, repairCost float64) EdgeID {
	id, err := g.AddEdge(u, v, capacity, repairCost)
	if err != nil {
		panic(err)
	}
	return id
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// HasNode reports whether id is a valid node of the graph.
func (g *Graph) HasNode(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// HasEdge reports whether id is a valid edge of the graph.
func (g *Graph) HasEdge(id EdgeID) bool { return id >= 0 && int(id) < len(g.edges) }

// Node returns the node with the given ID. It panics if the ID is invalid.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Edge returns the edge with the given ID. It panics if the ID is invalid.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Nodes returns a copy of the node list.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// IncidentEdges returns a copy of the IDs of the edges incident to v.
func (g *Graph) IncidentEdges(v NodeID) []EdgeID {
	out := make([]EdgeID, len(g.adj[v]))
	copy(out, g.adj[v])
	return out
}

// AdjacentEdges returns the IDs of the edges incident to v without copying.
// The returned slice is owned by the graph and MUST be treated as
// read-only; hot paths use it to avoid the per-call allocation of
// IncidentEdges.
func (g *Graph) AdjacentEdges(v NodeID) []EdgeID { return g.adj[v] }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree over all nodes (eta_max in the paper),
// or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for _, inc := range g.adj {
		if len(inc) > maxDeg {
			maxDeg = len(inc)
		}
	}
	return maxDeg
}

// Neighbors returns the IDs of the nodes adjacent to v. Parallel edges yield
// repeated neighbors.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	out := make([]NodeID, 0, len(g.adj[v]))
	for _, eid := range g.adj[v] {
		out = append(out, g.edges[eid].Other(v))
	}
	return out
}

// EdgeBetween returns the ID of an edge between u and v with maximum
// capacity, or InvalidEdge if no such edge exists.
func (g *Graph) EdgeBetween(u, v NodeID) EdgeID {
	best := InvalidEdge
	bestCap := math.Inf(-1)
	for _, eid := range g.adj[u] {
		e := g.edges[eid]
		if e.Other(u) == v && e.Capacity > bestCap {
			best = eid
			bestCap = e.Capacity
		}
	}
	return best
}

// SetCapacity overwrites the capacity of edge id.
func (g *Graph) SetCapacity(id EdgeID, capacity float64) {
	g.edges[id].Capacity = capacity
}

// SetNodeRepairCost overwrites the repair cost of node id.
func (g *Graph) SetNodeRepairCost(id NodeID, cost float64) {
	g.nodes[id].RepairCost = cost
}

// SetEdgeRepairCost overwrites the repair cost of edge id.
func (g *Graph) SetEdgeRepairCost(id EdgeID, cost float64) {
	g.edges[id].RepairCost = cost
}

// SetNodePosition overwrites the planar coordinates of node id.
func (g *Graph) SetNodePosition(id NodeID, x, y float64) {
	g.nodes[id].X = x
	g.nodes[id].Y = y
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes: make([]Node, len(g.nodes)),
		edges: make([]Edge, len(g.edges)),
		adj:   make([][]EdgeID, len(g.adj)),
	}
	copy(c.nodes, g.nodes)
	copy(c.edges, g.edges)
	for i, inc := range g.adj {
		c.adj[i] = make([]EdgeID, len(inc))
		copy(c.adj[i], inc)
	}
	return c
}

// TotalCapacity returns the sum of all edge capacities.
func (g *Graph) TotalCapacity() float64 {
	total := 0.0
	for _, e := range g.edges {
		total += e.Capacity
	}
	return total
}

// Barycenter returns the average (x, y) position of all nodes. It returns
// (0, 0) for an empty graph.
func (g *Graph) Barycenter() (float64, float64) {
	if len(g.nodes) == 0 {
		return 0, 0
	}
	var sx, sy float64
	for _, n := range g.nodes {
		sx += n.X
		sy += n.Y
	}
	n := float64(len(g.nodes))
	return sx / n, sy / n
}

// SortedEdgeIDs returns all edge IDs sorted ascending. Useful for
// deterministic iteration in callers that build maps keyed by EdgeID.
func (g *Graph) SortedEdgeIDs() []EdgeID {
	ids := make([]EdgeID, len(g.edges))
	for i := range g.edges {
		ids[i] = EdgeID(i)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// String returns a short human-readable summary of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes: %d, edges: %d}", len(g.nodes), len(g.edges))
}
