package graph

// SupplyCut returns delta_G(U): the IDs of the edges with exactly one
// endpoint inside the node set U.
func (g *Graph) SupplyCut(set map[NodeID]bool) []EdgeID {
	var cut []EdgeID
	for _, e := range g.edges {
		inFrom := set[e.From]
		inTo := set[e.To]
		if inFrom != inTo {
			cut = append(cut, e.ID)
		}
	}
	return cut
}

// CutCapacity returns the total capacity of the supply cut of U, honouring
// optional capacity overrides (nil means use stored capacities).
func (g *Graph) CutCapacity(set map[NodeID]bool, capOverride map[EdgeID]float64) float64 {
	total := 0.0
	for _, eid := range g.SupplyCut(set) {
		c := g.edges[eid].Capacity
		if capOverride != nil {
			if oc, ok := capOverride[eid]; ok {
				c = oc
			}
		}
		total += c
	}
	return total
}

// DemandPair is an endpoint pair with an associated demand flow, used by the
// surplus computation; the full demand-graph machinery lives in the demand
// package, which converts to this lightweight form.
type DemandPair struct {
	Source, Target NodeID
	Flow           float64
}

// DemandCut returns the total demand with exactly one endpoint inside U
// (the delta_H(U) term of the surplus definition).
func DemandCut(set map[NodeID]bool, demands []DemandPair) float64 {
	total := 0.0
	for _, d := range demands {
		inS := set[d.Source]
		inT := set[d.Target]
		if inS != inT {
			total += d.Flow
		}
	}
	return total
}

// Surplus returns sigma(U) = capacity(delta_G(U)) - demand(delta_H(U)), the
// quantity used in the termination proof of ISP (Theorem 4). A negative
// surplus for any U certifies that the demand is not routable (cut
// condition violated).
func (g *Graph) Surplus(set map[NodeID]bool, demands []DemandPair, capOverride map[EdgeID]float64) float64 {
	return g.CutCapacity(set, capOverride) - DemandCut(set, demands)
}

// VertexSurplus returns the surplus of the singleton set {v}.
func (g *Graph) VertexSurplus(v NodeID, demands []DemandPair, capOverride map[EdgeID]float64) float64 {
	return g.Surplus(map[NodeID]bool{v: true}, demands, capOverride)
}

// CutConditionHolds checks the cut condition on all singleton vertex sets.
// The cut condition over every subset is necessary for routability; checking
// singletons is a cheap necessary filter used by tests and heuristics
// (sufficiency requires the full routability LP in the flow package).
func (g *Graph) CutConditionHolds(demands []DemandPair, capOverride map[EdgeID]float64) bool {
	for v := 0; v < g.NumNodes(); v++ {
		if g.VertexSurplus(NodeID(v), demands, capOverride) < -flowEpsilon {
			return false
		}
	}
	return true
}
