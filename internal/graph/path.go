package graph

import (
	"fmt"
	"math"
	"strings"
)

// Path is a simple (acyclic) path in a graph, stored as the ordered list of
// edge IDs together with the ordered list of visited nodes. For a path with k
// edges, Nodes has k+1 entries and Nodes[0], Nodes[k] are the endpoints.
type Path struct {
	Edges []EdgeID
	Nodes []NodeID
}

// Len returns the number of edges of the path (n(p) in the paper).
func (p Path) Len() int { return len(p.Edges) }

// Empty reports whether the path has no edges.
func (p Path) Empty() bool { return len(p.Edges) == 0 }

// Source returns the first node of the path, or InvalidNode if empty.
func (p Path) Source() NodeID {
	if len(p.Nodes) == 0 {
		return InvalidNode
	}
	return p.Nodes[0]
}

// Target returns the last node of the path, or InvalidNode if empty.
func (p Path) Target() NodeID {
	if len(p.Nodes) == 0 {
		return InvalidNode
	}
	return p.Nodes[len(p.Nodes)-1]
}

// ContainsNode reports whether v appears on the path (as any endpoint of a
// composing edge, matching the paper's "v in p" notation).
func (p Path) ContainsNode(v NodeID) bool {
	for _, n := range p.Nodes {
		if n == v {
			return true
		}
	}
	return false
}

// ContainsEdge reports whether edge id appears on the path.
func (p Path) ContainsEdge(id EdgeID) bool {
	for _, e := range p.Edges {
		if e == id {
			return true
		}
	}
	return false
}

// InteriorNodes returns the nodes of the path excluding its two endpoints.
func (p Path) InteriorNodes() []NodeID {
	if len(p.Nodes) <= 2 {
		return nil
	}
	out := make([]NodeID, len(p.Nodes)-2)
	copy(out, p.Nodes[1:len(p.Nodes)-1])
	return out
}

// Capacity returns c(p): the minimum capacity over the composing edges of the
// path in graph g. An empty path has infinite capacity.
func (p Path) Capacity(g *Graph) float64 {
	capacity := math.Inf(1)
	for _, eid := range p.Edges {
		if c := g.Edge(eid).Capacity; c < capacity {
			capacity = c
		}
	}
	return capacity
}

// RepairCost returns the total repair cost of the broken elements on the
// path: the sum of the repair costs of the edges in brokenEdges and of the
// nodes in brokenNodes that the path traverses.
func (p Path) RepairCost(g *Graph, brokenNodes map[NodeID]bool, brokenEdges map[EdgeID]bool) float64 {
	cost := 0.0
	for _, eid := range p.Edges {
		if brokenEdges[eid] {
			cost += g.Edge(eid).RepairCost
		}
	}
	for _, v := range p.Nodes {
		if brokenNodes[v] {
			cost += g.Node(v).RepairCost
		}
	}
	return cost
}

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	c := Path{
		Edges: make([]EdgeID, len(p.Edges)),
		Nodes: make([]NodeID, len(p.Nodes)),
	}
	copy(c.Edges, p.Edges)
	copy(c.Nodes, p.Nodes)
	return c
}

// String renders the path as a node sequence, e.g. "0-3-7".
func (p Path) String() string {
	if len(p.Nodes) == 0 {
		return "<empty path>"
	}
	parts := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		parts[i] = fmt.Sprintf("%d", n)
	}
	return strings.Join(parts, "-")
}

// Validate checks that the path is internally consistent with graph g: every
// edge exists, consecutive edges share the recorded intermediate node, and no
// node repeats (the path is simple). It returns nil for an empty path.
func (p Path) Validate(g *Graph) error {
	if len(p.Edges) == 0 && len(p.Nodes) <= 1 {
		return nil
	}
	if len(p.Nodes) != len(p.Edges)+1 {
		return fmt.Errorf("path: %d nodes but %d edges", len(p.Nodes), len(p.Edges))
	}
	seen := make(map[NodeID]bool, len(p.Nodes))
	for _, v := range p.Nodes {
		if !g.HasNode(v) {
			return fmt.Errorf("path: node %d not in graph", v)
		}
		if seen[v] {
			return fmt.Errorf("path: node %d repeats; path is not simple", v)
		}
		seen[v] = true
	}
	for i, eid := range p.Edges {
		if !g.HasEdge(eid) {
			return fmt.Errorf("path: edge %d not in graph", eid)
		}
		e := g.Edge(eid)
		u, v := p.Nodes[i], p.Nodes[i+1]
		if !(e.From == u && e.To == v) && !(e.From == v && e.To == u) {
			return fmt.Errorf("path: edge %d does not join nodes %d and %d", eid, u, v)
		}
	}
	return nil
}
