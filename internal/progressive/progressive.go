// Package progressive schedules a recovery plan over time. The MinR problem
// (and ISP) decide *which* elements to repair; after a real disaster repairs
// happen in stages under a limited per-stage work budget, and operators want
// the mission-critical demand to come back as early as possible. This is the
// progressive-recovery viewpoint of Wang, Qiao and Yu (INFOCOM 2011)
// discussed in §II of the paper; the package implements it as an extension
// on top of any Plan produced by the library's solvers.
//
// The scheduler greedily fills each stage with the repairs that restore the
// most demand per unit of repair cost, re-evaluating the routable demand
// after every stage, and returns the full timeline.
package progressive

import (
	"fmt"
	"math"
	"sort"

	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
)

// Element identifies one repairable element of a plan.
type Element struct {
	// Node is set for node repairs (and Edge is InvalidEdge); Edge is set
	// for edge repairs (and Node is InvalidNode).
	Node graph.NodeID
	Edge graph.EdgeID
}

// IsNode reports whether the element is a node repair.
func (e Element) IsNode() bool { return e.Node != graph.InvalidNode }

// String renders the element.
func (e Element) String() string {
	if e.IsNode() {
		return fmt.Sprintf("node %d", e.Node)
	}
	return fmt.Sprintf("edge %d", e.Edge)
}

// Stage is one step of the recovery timeline.
type Stage struct {
	// Index is the 1-based stage number.
	Index int
	// Repairs lists the elements repaired during this stage.
	Repairs []Element
	// Cost is the total repair cost spent in this stage.
	Cost float64
	// SatisfiedDemand is the demand routable after this stage completes
	// (cumulative, in flow units); SatisfiedRatio is the same as a fraction
	// of the total demand.
	SatisfiedDemand float64
	SatisfiedRatio  float64
}

// Schedule is the full recovery timeline.
type Schedule struct {
	Stages []Stage
	// TotalCost is the cost of all scheduled repairs.
	TotalCost float64
	// FinalSatisfiedRatio is the demand fraction served once every stage is
	// complete.
	FinalSatisfiedRatio float64
}

// Options tune the scheduler.
type Options struct {
	// StageBudget is the maximum repair cost per stage (the "daily budget"
	// of the progressive-recovery literature). It must be positive and at
	// least as large as the most expensive single element of the plan,
	// otherwise that element could never be scheduled.
	StageBudget float64
	// MaxStages bounds the timeline length as a safety net (0 = 10 * number
	// of elements).
	MaxStages int
}

// Build schedules the repairs of the given plan over stages. The plan is not
// modified; elements already working are ignored. It returns an error when
// the budget cannot accommodate the largest single repair.
func Build(s *scenario.Scenario, plan *scenario.Plan, opts Options) (*Schedule, error) {
	if opts.StageBudget <= 0 {
		return nil, fmt.Errorf("progressive: stage budget must be positive, got %f", opts.StageBudget)
	}
	elements := planElements(s, plan)
	maxCost := 0.0
	for _, el := range elements {
		if c := elementCost(s, el); c > maxCost {
			maxCost = c
		}
	}
	if maxCost > opts.StageBudget {
		return nil, fmt.Errorf("progressive: stage budget %.2f is smaller than the most expensive repair %.2f", opts.StageBudget, maxCost)
	}
	maxStages := opts.MaxStages
	if maxStages == 0 {
		maxStages = 10*len(elements) + 1
	}

	totalDemand := s.Demand.TotalFlow()
	repairedNodes := make(map[graph.NodeID]bool)
	repairedEdges := make(map[graph.EdgeID]bool)
	remaining := append([]Element(nil), elements...)

	schedule := &Schedule{}
	for stageIdx := 1; len(remaining) > 0 && stageIdx <= maxStages; stageIdx++ {
		stage := Stage{Index: stageIdx}
		budget := opts.StageBudget
		for budget > 0 && len(remaining) > 0 {
			pick := pickNext(s, remaining, repairedNodes, repairedEdges, budget)
			if pick < 0 {
				break
			}
			el := remaining[pick]
			cost := elementCost(s, el)
			applyElement(el, repairedNodes, repairedEdges)
			stage.Repairs = append(stage.Repairs, el)
			stage.Cost += cost
			budget -= cost
			remaining = append(remaining[:pick], remaining[pick+1:]...)
		}
		if len(stage.Repairs) == 0 {
			break
		}
		stage.SatisfiedDemand = satisfiedWith(s, repairedNodes, repairedEdges)
		if totalDemand > 0 {
			stage.SatisfiedRatio = math.Min(1, stage.SatisfiedDemand/totalDemand)
		} else {
			stage.SatisfiedRatio = 1
		}
		schedule.TotalCost += stage.Cost
		schedule.Stages = append(schedule.Stages, stage)
	}
	if len(schedule.Stages) > 0 {
		schedule.FinalSatisfiedRatio = schedule.Stages[len(schedule.Stages)-1].SatisfiedRatio
	} else if totalDemand == 0 {
		schedule.FinalSatisfiedRatio = 1
	}
	return schedule, nil
}

// planElements lists the plan's repairs in a deterministic order.
func planElements(s *scenario.Scenario, plan *scenario.Plan) []Element {
	var out []Element
	nodes := make([]graph.NodeID, 0, len(plan.RepairedNodes))
	for v := range plan.RepairedNodes {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, v := range nodes {
		out = append(out, Element{Node: v, Edge: graph.InvalidEdge})
	}
	edges := make([]graph.EdgeID, 0, len(plan.RepairedEdges))
	for e := range plan.RepairedEdges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	for _, e := range edges {
		out = append(out, Element{Node: graph.InvalidNode, Edge: e})
	}
	return out
}

func elementCost(s *scenario.Scenario, el Element) float64 {
	if el.IsNode() {
		return s.Supply.Node(el.Node).RepairCost
	}
	return s.Supply.Edge(el.Edge).RepairCost
}

func applyElement(el Element, nodes map[graph.NodeID]bool, edges map[graph.EdgeID]bool) {
	if el.IsNode() {
		nodes[el.Node] = true
		return
	}
	edges[el.Edge] = true
}

// pickNext selects the affordable element with the best marginal
// demand-per-cost gain; ties (including the common all-zero-gain case early
// in the schedule) are broken in favour of the element that joins the
// largest already-working neighbourhood, then by list order.
func pickNext(s *scenario.Scenario, remaining []Element, repairedNodes map[graph.NodeID]bool, repairedEdges map[graph.EdgeID]bool, budget float64) int {
	base := satisfiedWith(s, repairedNodes, repairedEdges)
	bestIdx := -1
	bestGain := -1.0
	bestTie := -1.0
	for i, el := range remaining {
		cost := elementCost(s, el)
		if cost > budget {
			continue
		}
		// Tentatively apply.
		if el.IsNode() {
			repairedNodes[el.Node] = true
		} else {
			repairedEdges[el.Edge] = true
		}
		gain := (satisfiedWith(s, repairedNodes, repairedEdges) - base) / math.Max(cost, 1e-9)
		tie := connectivityTie(s, el, repairedNodes, repairedEdges)
		if el.IsNode() {
			delete(repairedNodes, el.Node)
		} else {
			delete(repairedEdges, el.Edge)
		}
		if gain > bestGain+1e-9 || (math.Abs(gain-bestGain) <= 1e-9 && tie > bestTie) {
			bestIdx = i
			bestGain = gain
			bestTie = tie
		}
	}
	return bestIdx
}

// connectivityTie scores how much an element extends the currently usable
// network: the number of its incident elements that are already usable.
func connectivityTie(s *scenario.Scenario, el Element, repairedNodes map[graph.NodeID]bool, repairedEdges map[graph.EdgeID]bool) float64 {
	usableNode := func(v graph.NodeID) bool { return !s.BrokenNodes[v] || repairedNodes[v] }
	if el.IsNode() {
		score := 0.0
		for _, eid := range s.Supply.IncidentEdges(el.Node) {
			e := s.Supply.Edge(eid)
			if (!s.BrokenEdges[eid] || repairedEdges[eid]) && usableNode(e.Other(el.Node)) {
				score++
			}
		}
		return score
	}
	e := s.Supply.Edge(el.Edge)
	score := 0.0
	if usableNode(e.From) {
		score++
	}
	if usableNode(e.To) {
		score++
	}
	return score
}

// satisfiedWith measures the demand routable on the network formed by the
// working elements plus the given repairs, using the constructive router
// (cheap, and exact enough for stage-by-stage accounting).
func satisfiedWith(s *scenario.Scenario, repairedNodes map[graph.NodeID]bool, repairedEdges map[graph.EdgeID]bool) float64 {
	excludedNodes := make(map[graph.NodeID]bool)
	for v := range s.BrokenNodes {
		if !repairedNodes[v] {
			excludedNodes[v] = true
		}
	}
	excludedEdges := make(map[graph.EdgeID]bool)
	for e := range s.BrokenEdges {
		if !repairedEdges[e] {
			excludedEdges[e] = true
		}
	}
	in := &flow.Instance{
		Graph:         s.Supply,
		ExcludedNodes: excludedNodes,
		ExcludedEdges: excludedEdges,
	}
	residual := make(map[graph.EdgeID]float64, s.Supply.NumEdges())
	for i := 0; i < s.Supply.NumEdges(); i++ {
		id := graph.EdgeID(i)
		residual[id] = in.Capacity(id)
	}
	total := 0.0
	for _, p := range s.Demand.Active() {
		if excludedNodes[p.Source] || excludedNodes[p.Target] {
			continue
		}
		value, assignment := s.Supply.MaxFlowWithAssignment(p.Source, p.Target, residual)
		routed := math.Min(value, p.Flow)
		if routed <= 1e-9 {
			continue
		}
		scale := routed / value
		for eid, f := range assignment {
			residual[eid] -= math.Abs(f * scale)
			if residual[eid] < 0 {
				residual[eid] = 0
			}
		}
		total += routed
	}
	return total
}
