package progressive

import (
	"context"
	"math"
	"testing"

	"netrecovery/internal/core"
	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// destroyedLine returns a fully destroyed 5-node line with one 5-unit demand
// 0->4 and the ISP plan that repairs the whole line (9 elements, cost 9).
func destroyedLine(t *testing.T) (*scenario.Scenario, *scenario.Plan) {
	t.Helper()
	g := graph.New(5, 4)
	for i := 0; i < 5; i++ {
		g.AddNode("", float64(i), 0, 1)
	}
	for i := 0; i < 4; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), 10, 1)
	}
	dg := demand.New()
	dg.MustAdd(0, 4, 5)
	d := disruption.Complete(g)
	s := &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
	plan, _, err := core.Solve(context.Background(), s.Clone(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, plan
}

func TestBuildSchedulesEverythingOnce(t *testing.T) {
	s, plan := destroyedLine(t)
	sched, err := Build(s, plan, Options{StageBudget: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, _, total := plan.NumRepairs()
	scheduled := 0
	seen := make(map[string]bool)
	for _, stage := range sched.Stages {
		if stage.Cost > 3+1e-9 {
			t.Errorf("stage %d cost %f exceeds budget", stage.Index, stage.Cost)
		}
		for _, el := range stage.Repairs {
			if seen[el.String()] {
				t.Errorf("element %s scheduled twice", el)
			}
			seen[el.String()] = true
			scheduled++
		}
	}
	if scheduled != total {
		t.Errorf("scheduled %d elements, plan has %d", scheduled, total)
	}
	if math.Abs(sched.TotalCost-plan.RepairCost(s)) > 1e-9 {
		t.Errorf("TotalCost = %f, want %f", sched.TotalCost, plan.RepairCost(s))
	}
	if sched.FinalSatisfiedRatio < 1-1e-9 {
		t.Errorf("final ratio = %f, want 1", sched.FinalSatisfiedRatio)
	}
}

func TestBuildSatisfactionIsMonotone(t *testing.T) {
	s, plan := destroyedLine(t)
	sched, err := Build(s, plan, Options{StageBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, stage := range sched.Stages {
		if stage.SatisfiedDemand < prev-1e-9 {
			t.Errorf("satisfied demand decreased at stage %d: %f -> %f", stage.Index, prev, stage.SatisfiedDemand)
		}
		prev = stage.SatisfiedDemand
	}
	// The line only carries flow once every element is repaired, so the last
	// stage must reach 5 units and earlier stages are below it.
	last := sched.Stages[len(sched.Stages)-1]
	if math.Abs(last.SatisfiedDemand-5) > 1e-9 {
		t.Errorf("final satisfied = %f, want 5", last.SatisfiedDemand)
	}
	if sched.Stages[0].SatisfiedDemand > 5-1e-9 {
		t.Errorf("first stage already satisfies everything with budget 2: %+v", sched.Stages[0])
	}
}

func TestBuildLargerBudgetFewerStages(t *testing.T) {
	s, plan := destroyedLine(t)
	small, err := Build(s, plan, Options{StageBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Build(s, plan, Options{StageBudget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(large.Stages) != 1 {
		t.Errorf("budget 100 should finish in one stage, got %d", len(large.Stages))
	}
	if len(small.Stages) <= len(large.Stages) {
		t.Errorf("smaller budget should need more stages: %d vs %d", len(small.Stages), len(large.Stages))
	}
}

func TestBuildErrors(t *testing.T) {
	s, plan := destroyedLine(t)
	if _, err := Build(s, plan, Options{StageBudget: 0}); err == nil {
		t.Error("expected error for non-positive budget")
	}
	// Make one repair more expensive than the budget.
	s.Supply.SetNodeRepairCost(2, 50)
	if _, err := Build(s, plan, Options{StageBudget: 3}); err == nil {
		t.Error("expected error when an element exceeds the stage budget")
	}
}

func TestBuildEmptyPlan(t *testing.T) {
	g, err := topology.Grid(2, 2, topology.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	dg := demand.New()
	dg.MustAdd(0, 3, 2)
	s := &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: map[graph.NodeID]bool{}, BrokenEdges: map[graph.EdgeID]bool{}}
	plan := scenario.NewPlan("empty")
	sched, err := Build(s, plan, Options{StageBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Stages) != 0 {
		t.Errorf("stages = %d, want 0", len(sched.Stages))
	}
}

func TestBuildGridScenarioWithISPPlan(t *testing.T) {
	g, err := topology.Grid(3, 3, topology.DefaultConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	dg := demand.New()
	dg.MustAdd(0, 8, 10)
	dg.MustAdd(2, 6, 10)
	d := disruption.Complete(g)
	s := &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
	plan, _, err := core.Solve(context.Background(), s.Clone(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Build(s, plan, Options{StageBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sched.FinalSatisfiedRatio < 1-1e-9 {
		t.Errorf("final ratio = %f, want 1 (ISP plan serves everything)", sched.FinalSatisfiedRatio)
	}
	// Intermediate stages must respect the budget and make progress.
	for i, stage := range sched.Stages {
		if stage.Cost > 4+1e-9 {
			t.Errorf("stage %d over budget: %f", i, stage.Cost)
		}
		if len(stage.Repairs) == 0 {
			t.Errorf("stage %d is empty", i)
		}
	}
	if elementString := (Element{Node: 3, Edge: graph.InvalidEdge}).String(); elementString != "node 3" {
		t.Errorf("Element.String = %q", elementString)
	}
	if elementString := (Element{Node: graph.InvalidNode, Edge: 7}).String(); elementString != "edge 7" {
		t.Errorf("Element.String = %q", elementString)
	}
}
