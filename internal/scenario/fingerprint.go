package scenario

import (
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
)

// fingerprintDomain versions the canonical serialisation below. Bump it when
// the byte layout changes so old and new fingerprints can never collide.
const fingerprintDomain = "netrecovery/scenario/v1"

// Fingerprint returns a stable 256-bit content hash of the scenario: the
// supply topology (node names, coordinates, repair costs; edge endpoints,
// capacities, repair costs), the demand pairs with their residual flows, and
// the disruption state (broken node and edge sets).
//
// The hash is computed over a canonical serialisation — fields are visited
// in ID order, set members in ascending ID order, floats as IEEE-754 bit
// patterns, and every variable-length field is length-prefixed — so it is
// stable across processes, architectures and library versions (within one
// fingerprintDomain), and two scenarios with the same fingerprint describe
// the same MinR instance. Everything a solver reads is covered: any mutation
// that could change a recovery plan changes the fingerprint. The converse
// over-approximates harmlessly: solver-irrelevant details (node names,
// coordinates, demand-pair tombstones) are hashed too, so two semantically
// equal instances may still fingerprint apart — safe for caching, which only
// requires that equal fingerprints imply equal plans.
//
// Solver options (algorithm, ISP fast mode, OPT budget) are deliberately
// NOT part of the fingerprint; cache keys combine the fingerprint with the
// algorithm name and an options digest (see internal/plancache).
//
// Scenarios produced by Apply carry their fingerprint precomputed (updated
// incrementally from the parent snapshot), so Fingerprint on them is free;
// any other scenario pays one full serialisation per call.
func (s *Scenario) Fingerprint() [32]byte {
	if s.fp != nil {
		return s.fp.sum
	}
	return s.fingerprintState().sum
}

// fpState is the cached fingerprint machinery carried by scenarios produced
// by Apply. Deltas never change the topology, so the hash midstate after the
// domain/node/edge sections is shared by every snapshot of one recovery run;
// the demand-section bytes are shared until a DeltaSetDemand re-serialises
// them. The struct is written once at snapshot construction and never
// mutated afterwards, so sharing it across goroutines is safe.
type fpState struct {
	// topoMid is the sha256 midstate after the domain, 'N' and 'E' sections.
	topoMid []byte
	// dBytes is the canonical 'D' (demand) section.
	dBytes []byte
	// sum is the complete fingerprint of the owning scenario.
	sum [32]byte
}

// fingerprintState computes the fingerprint from scratch, returning the
// reusable midstate alongside the sum. It does not cache on the receiver:
// plain scenarios stay mutable (tests and the experiment harness edit them
// in place), so only Apply — which hands out immutable snapshots — stores
// the state.
func (s *Scenario) fingerprintState() *fpState {
	h := sha256.New()
	h.Write([]byte(fingerprintDomain))
	writeTopologySections(h, s.Supply)
	st := &fpState{
		topoMid: marshalHashState(h),
		dBytes:  appendDemandSection(nil, s.Demand),
	}
	h.Write(st.dBytes)
	writeBrokenSections(h, s)
	copy(st.sum[:], h.Sum(nil))
	return st
}

// deriveFingerprint produces the fpState of an Apply result, reusing the
// parent's topology midstate and (when the deltas left the demand untouched)
// demand-section bytes. The resulting sum is byte-for-byte the hash a full
// recompute would produce — the property tests pin this.
func (s *Scenario) deriveFingerprint(next *Scenario, demandChanged bool) *fpState {
	parent := s.fp
	if parent == nil {
		parent = s.fingerprintState()
	}
	st := &fpState{topoMid: parent.topoMid, dBytes: parent.dBytes}
	if demandChanged {
		st.dBytes = appendDemandSection(nil, next.Demand)
	}
	h := unmarshalHashState(st.topoMid)
	h.Write(st.dBytes)
	writeBrokenSections(h, next)
	copy(st.sum[:], h.Sum(nil))
	return st
}

// writeTopologySections hashes the 'N' (node) and 'E' (edge) sections.
func writeTopologySections(h hash.Hash, g *graph.Graph) {
	var buf []byte
	buf = appendSection(buf, 'N')
	buf = appendInt(buf, g.NumNodes())
	for _, n := range g.Nodes() {
		buf = appendInt(buf, len(n.Name))
		buf = append(buf, n.Name...)
		buf = appendFloat(buf, n.X)
		buf = appendFloat(buf, n.Y)
		buf = appendFloat(buf, n.RepairCost)
	}
	buf = appendSection(buf, 'E')
	buf = appendInt(buf, g.NumEdges())
	for _, e := range g.Edges() {
		buf = appendInt(buf, int(e.From))
		buf = appendInt(buf, int(e.To))
		buf = appendFloat(buf, e.Capacity)
		buf = appendFloat(buf, e.RepairCost)
	}
	h.Write(buf)
}

// appendDemandSection appends the canonical 'D' section: every pair slot in
// ID order (tombstones included), as endpoint IDs plus the IEEE-754 bits of
// the residual flow.
func appendDemandSection(buf []byte, d *demand.Graph) []byte {
	pairs := d.All()
	buf = appendSection(buf, 'D')
	buf = appendInt(buf, len(pairs))
	for _, p := range pairs {
		buf = appendInt(buf, int(p.Source))
		buf = appendInt(buf, int(p.Target))
		buf = appendFloat(buf, p.Flow)
	}
	return buf
}

// writeBrokenSections hashes the 'B' (broken nodes) and 'b' (broken edges)
// sections, members in ascending ID order.
func writeBrokenSections(h hash.Hash, s *Scenario) {
	var buf []byte
	brokenNodes := s.SortedBrokenNodes()
	buf = appendSection(buf, 'B')
	buf = appendInt(buf, len(brokenNodes))
	for _, v := range brokenNodes {
		buf = appendInt(buf, int(v))
	}
	brokenEdges := s.SortedBrokenEdges()
	buf = appendSection(buf, 'b')
	buf = appendInt(buf, len(brokenEdges))
	for _, e := range brokenEdges {
		buf = appendInt(buf, int(e))
	}
	h.Write(buf)
}

// appendSection appends a section tag, domain-separating the serialisation
// so that e.g. an empty node list followed by a non-empty edge list can
// never collide with the transpose.
func appendSection(buf []byte, tag byte) []byte {
	return append(buf, 0, tag)
}

func appendU64(buf []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(buf, v)
}

func appendInt(buf []byte, v int) []byte {
	return appendU64(buf, uint64(int64(v)))
}

func appendFloat(buf []byte, f float64) []byte {
	return appendU64(buf, math.Float64bits(f))
}

// marshalHashState snapshots a sha256 midstate. The standard library's
// sha256 implements encoding.BinaryMarshaler and never fails.
func marshalHashState(h hash.Hash) []byte {
	m, err := h.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		panic("scenario: sha256 MarshalBinary: " + err.Error())
	}
	return m
}

// unmarshalHashState resumes hashing from a snapshot taken by
// marshalHashState.
func unmarshalHashState(state []byte) hash.Hash {
	h := sha256.New()
	if err := h.(encoding.BinaryUnmarshaler).UnmarshalBinary(state); err != nil {
		panic("scenario: sha256 UnmarshalBinary: " + err.Error())
	}
	return h
}

// FingerprintHex returns the fingerprint as a lowercase hex string, the form
// used in wire responses and logs.
func (s *Scenario) FingerprintHex() string {
	fp := s.Fingerprint()
	return hex.EncodeToString(fp[:])
}

// SortedBrokenNodes returns the broken node IDs in ascending order. Every
// emitter of broken-ID lists (fingerprints, wire encodings, reports) must go
// through this so output never depends on map iteration order.
func (s *Scenario) SortedBrokenNodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s.BrokenNodes))
	for v, broken := range s.BrokenNodes {
		if broken {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortedBrokenEdges returns the broken edge IDs in ascending order.
func (s *Scenario) SortedBrokenEdges() []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(s.BrokenEdges))
	for e, broken := range s.BrokenEdges {
		if broken {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
