package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"

	"netrecovery/internal/graph"
)

// fingerprintDomain versions the canonical serialisation below. Bump it when
// the byte layout changes so old and new fingerprints can never collide.
const fingerprintDomain = "netrecovery/scenario/v1"

// Fingerprint returns a stable 256-bit content hash of the scenario: the
// supply topology (node names, coordinates, repair costs; edge endpoints,
// capacities, repair costs), the demand pairs with their residual flows, and
// the disruption state (broken node and edge sets).
//
// The hash is computed over a canonical serialisation — fields are visited
// in ID order, set members in ascending ID order, floats as IEEE-754 bit
// patterns, and every variable-length field is length-prefixed — so it is
// stable across processes, architectures and library versions (within one
// fingerprintDomain), and two scenarios with the same fingerprint describe
// the same MinR instance. Everything a solver reads is covered: any mutation
// that could change a recovery plan changes the fingerprint. The converse
// over-approximates harmlessly: solver-irrelevant details (node names,
// coordinates, demand-pair tombstones) are hashed too, so two semantically
// equal instances may still fingerprint apart — safe for caching, which only
// requires that equal fingerprints imply equal plans.
//
// Solver options (algorithm, ISP fast mode, OPT budget) are deliberately
// NOT part of the fingerprint; cache keys combine the fingerprint with the
// algorithm name and an options digest (see internal/plancache).
func (s *Scenario) Fingerprint() [32]byte {
	h := sha256.New()
	h.Write([]byte(fingerprintDomain))

	writeU64 := func(v uint64) {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeInt := func(v int) { writeU64(uint64(int64(v))) }
	writeFloat := func(f float64) { writeU64(math.Float64bits(f)) }
	writeString := func(str string) {
		writeInt(len(str))
		h.Write([]byte(str))
	}

	hashSection(h, 'N')
	writeInt(s.Supply.NumNodes())
	for _, n := range s.Supply.Nodes() {
		writeString(n.Name)
		writeFloat(n.X)
		writeFloat(n.Y)
		writeFloat(n.RepairCost)
	}

	hashSection(h, 'E')
	writeInt(s.Supply.NumEdges())
	for _, e := range s.Supply.Edges() {
		writeInt(int(e.From))
		writeInt(int(e.To))
		writeFloat(e.Capacity)
		writeFloat(e.RepairCost)
	}

	hashSection(h, 'D')
	pairs := s.Demand.All()
	writeInt(len(pairs))
	for _, p := range pairs {
		writeInt(int(p.Source))
		writeInt(int(p.Target))
		writeFloat(p.Flow)
	}

	hashSection(h, 'B')
	brokenNodes := s.SortedBrokenNodes()
	writeInt(len(brokenNodes))
	for _, v := range brokenNodes {
		writeInt(int(v))
	}

	hashSection(h, 'b')
	brokenEdges := s.SortedBrokenEdges()
	writeInt(len(brokenEdges))
	for _, e := range brokenEdges {
		writeInt(int(e))
	}

	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// hashSection writes a section tag, domain-separating the serialisation so
// that e.g. an empty node list followed by a non-empty edge list can never
// collide with the transpose.
func hashSection(h hash.Hash, tag byte) {
	h.Write([]byte{0, tag})
}

// FingerprintHex returns the fingerprint as a lowercase hex string, the form
// used in wire responses and logs.
func (s *Scenario) FingerprintHex() string {
	fp := s.Fingerprint()
	return hex.EncodeToString(fp[:])
}

// SortedBrokenNodes returns the broken node IDs in ascending order. Every
// emitter of broken-ID lists (fingerprints, wire encodings, reports) must go
// through this so output never depends on map iteration order.
func (s *Scenario) SortedBrokenNodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s.BrokenNodes))
	for v, broken := range s.BrokenNodes {
		if broken {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortedBrokenEdges returns the broken edge IDs in ascending order.
func (s *Scenario) SortedBrokenEdges() []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(s.BrokenEdges))
	for e, broken := range s.BrokenEdges {
		if broken {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
