package scenario

import (
	"math/rand"
	"sort"
	"testing"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
)

// fingerprintFixture builds the small fixed scenario pinned by the golden
// test: a 4-node diamond with two demands and a partial disruption.
func fingerprintFixture() *Scenario {
	g := graph.New(4, 5)
	g.AddNode("a", 0, 0, 1)
	g.AddNode("b", 1, 0, 2)
	g.AddNode("c", 1, 1, 3)
	g.AddNode("d", 0, 1, 4)
	g.MustAddEdge(0, 1, 10, 1)
	g.MustAddEdge(1, 2, 10, 2)
	g.MustAddEdge(2, 3, 10, 3)
	g.MustAddEdge(3, 0, 10, 4)
	g.MustAddEdge(0, 2, 5, 5)
	dg := demand.New()
	dg.MustAdd(0, 2, 7)
	dg.MustAdd(1, 3, 3)
	return &Scenario{
		Supply:      g,
		Demand:      dg,
		BrokenNodes: map[graph.NodeID]bool{1: true, 3: true},
		BrokenEdges: map[graph.EdgeID]bool{0: true, 2: true, 4: true},
	}
}

// The golden fingerprint of fingerprintFixture. This constant pins the
// canonical serialisation: if it ever changes, every cached plan and every
// recorded fingerprint in the wild is invalidated, so a failure here means
// either (a) you changed the serialisation — bump fingerprintDomain and
// update the constant — or (b) you changed it by accident: fix the code.
const goldenFingerprint = "f864b1cf842db7230ceeaeeefea2c1251e4ba6e62857750d75c1851eb197dd52"

func TestFingerprintGolden(t *testing.T) {
	got := fingerprintFixture().FingerprintHex()
	if got != goldenFingerprint {
		t.Fatalf("fingerprint of the fixed scenario changed:\n got  %s\n want %s", got, goldenFingerprint)
	}
}

func TestFingerprintStableAcrossRunsAndClones(t *testing.T) {
	s := fingerprintFixture()
	first := s.Fingerprint()
	for i := 0; i < 50; i++ {
		if got := s.Fingerprint(); got != first {
			t.Fatalf("fingerprint not stable across calls: run %d got %x want %x", i, got, first)
		}
		if got := s.Clone().Fingerprint(); got != first {
			t.Fatalf("clone fingerprint differs: run %d got %x want %x", i, got, first)
		}
	}
}

// TestFingerprintMutations asserts that every solver-relevant mutation moves
// the fingerprint.
func TestFingerprintMutations(t *testing.T) {
	base := fingerprintFixture().Fingerprint()
	mutations := map[string]func(s *Scenario){
		"edge capacity":    func(s *Scenario) { s.Supply.SetCapacity(1, 11) },
		"node repair cost": func(s *Scenario) { s.Supply.SetNodeRepairCost(0, 9) },
		"edge repair cost": func(s *Scenario) { s.Supply.SetEdgeRepairCost(0, 9) },
		"node position":    func(s *Scenario) { s.Supply.SetNodePosition(0, 5, 5) },
		"demand flow":      func(s *Scenario) { _ = s.Demand.SetFlow(0, 8) },
		"extra demand":     func(s *Scenario) { s.Demand.MustAdd(0, 3, 1) },
		"break node":       func(s *Scenario) { s.BrokenNodes[0] = true },
		"repair node":      func(s *Scenario) { delete(s.BrokenNodes, 1) },
		"break edge":       func(s *Scenario) { s.BrokenEdges[1] = true },
		"repair edge":      func(s *Scenario) { delete(s.BrokenEdges, 0) },
		"extra node":       func(s *Scenario) { s.Supply.AddNode("e", 2, 2, 1) },
		"extra edge":       func(s *Scenario) { s.Supply.MustAddEdge(1, 3, 4, 1) },
	}
	for name, mutate := range mutations {
		s := fingerprintFixture()
		mutate(s)
		if got := s.Fingerprint(); got == base {
			t.Errorf("mutation %q did not change the fingerprint", name)
		}
	}
}

// TestFingerprintFalseBrokenEntries pins that map entries explicitly set to
// false are treated as absent, matching how every solver reads the sets.
func TestFingerprintFalseBrokenEntries(t *testing.T) {
	s := fingerprintFixture()
	base := s.Fingerprint()
	s.BrokenNodes[0] = false
	s.BrokenEdges[1] = false
	if got := s.Fingerprint(); got != base {
		t.Fatalf("broken=false entries changed the fingerprint: got %x want %x", got, base)
	}
}

// TestFingerprintProperty is a randomized property test: independently
// sampled scenarios collide with negligible probability, and rebuilding the
// same scenario from the same seed reproduces the fingerprint exactly.
func TestFingerprintProperty(t *testing.T) {
	build := func(seed int64) *Scenario {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		g := graph.New(n, 3*n)
		for i := 0; i < n; i++ {
			g.AddNode("", rng.Float64()*100, rng.Float64()*100, 1+rng.Float64()*5)
		}
		for i := 1; i < n; i++ {
			g.MustAddEdge(graph.NodeID(rng.Intn(i)), graph.NodeID(i), 5+rng.Float64()*20, 1+rng.Float64()*3)
		}
		dg := demand.New()
		dg.MustAdd(0, graph.NodeID(n-1), 1+rng.Float64()*10)
		s := &Scenario{Supply: g, Demand: dg, BrokenNodes: map[graph.NodeID]bool{}, BrokenEdges: map[graph.EdgeID]bool{}}
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.4 {
				s.BrokenNodes[graph.NodeID(i)] = true
			}
		}
		for i := 0; i < g.NumEdges(); i++ {
			if rng.Float64() < 0.4 {
				s.BrokenEdges[graph.EdgeID(i)] = true
			}
		}
		return s
	}
	seen := make(map[[32]byte]int64)
	for seed := int64(0); seed < 200; seed++ {
		fp := build(seed).Fingerprint()
		if again := build(seed).Fingerprint(); again != fp {
			t.Fatalf("seed %d: rebuilding the scenario changed the fingerprint", seed)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("seeds %d and %d collided on fingerprint %x", prev, seed, fp)
		}
		seen[fp] = seed
	}
}

func TestSortedBrokenIDs(t *testing.T) {
	s := fingerprintFixture()
	// Entries set to false must be skipped.
	s.BrokenNodes[2] = false
	nodes := s.SortedBrokenNodes()
	edges := s.SortedBrokenEdges()
	if !sort.SliceIsSorted(nodes, func(i, j int) bool { return nodes[i] < nodes[j] }) {
		t.Fatalf("SortedBrokenNodes not sorted: %v", nodes)
	}
	if !sort.SliceIsSorted(edges, func(i, j int) bool { return edges[i] < edges[j] }) {
		t.Fatalf("SortedBrokenEdges not sorted: %v", edges)
	}
	if want := []graph.NodeID{1, 3}; len(nodes) != len(want) || nodes[0] != want[0] || nodes[1] != want[1] {
		t.Fatalf("SortedBrokenNodes = %v, want %v", nodes, want)
	}
	if want := []graph.EdgeID{0, 2, 4}; len(edges) != 3 || edges[0] != want[0] || edges[1] != want[1] || edges[2] != want[2] {
		t.Fatalf("SortedBrokenEdges = %v, want %v", edges, want)
	}
}
