package scenario

import (
	"math/rand"
	"strings"
	"testing"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
)

func TestApplySemantics(t *testing.T) {
	base := buildScenario(t) // node 1 and edge 2 broken, demand 0->3 of 5

	next, err := base.Apply(
		Delta{Kind: DeltaRepairNode, Node: 1},
		Delta{Kind: DeltaBreakNode, Node: 2},
		Delta{Kind: DeltaRepairLink, Edge: 2},
		Delta{Kind: DeltaBreakLink, Edge: 0},
		Delta{Kind: DeltaSetDemand, Pair: 0, Flow: 8},
	)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if next.BrokenNodes[1] || !next.BrokenNodes[2] {
		t.Fatalf("broken nodes after apply: %v", next.BrokenNodes)
	}
	if next.BrokenEdges[2] || !next.BrokenEdges[0] {
		t.Fatalf("broken edges after apply: %v", next.BrokenEdges)
	}
	if f := next.Demand.Flow(0); f != 8 {
		t.Fatalf("demand flow after apply = %g, want 8", f)
	}

	// The parent snapshot is untouched.
	if !base.BrokenNodes[1] || base.BrokenNodes[2] || !base.BrokenEdges[2] {
		t.Fatalf("Apply mutated the parent broken sets")
	}
	if f := base.Demand.Flow(0); f != 5 {
		t.Fatalf("Apply mutated the parent demand: flow = %g, want 5", f)
	}
	if err := next.Validate(); err != nil {
		t.Fatalf("Validate(next): %v", err)
	}
}

func TestApplySharesDemandWhenUnchanged(t *testing.T) {
	base := buildScenario(t)
	next, err := base.Apply(Delta{Kind: DeltaRepairNode, Node: 1})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if next.Demand != base.Demand {
		t.Fatalf("Apply without demand deltas should share the demand graph")
	}
	if next.Supply != base.Supply {
		t.Fatalf("Apply should always share the supply graph")
	}
}

func TestApplyErrors(t *testing.T) {
	base := buildScenario(t)
	cases := []struct {
		name  string
		delta Delta
		want  string
	}{
		{"break broken node", Delta{Kind: DeltaBreakNode, Node: 1}, "already broken"},
		{"repair working node", Delta{Kind: DeltaRepairNode, Node: 0}, "not broken"},
		{"break unknown node", Delta{Kind: DeltaBreakNode, Node: 99}, "not in supply"},
		{"break broken link", Delta{Kind: DeltaBreakLink, Edge: 2}, "already broken"},
		{"repair working link", Delta{Kind: DeltaRepairLink, Edge: 0}, "not broken"},
		{"break unknown link", Delta{Kind: DeltaBreakLink, Edge: 99}, "not in supply"},
		{"set unknown demand", Delta{Kind: DeltaSetDemand, Pair: 7, Flow: 1}, "does not exist"},
		{"negative demand", Delta{Kind: DeltaSetDemand, Pair: 0, Flow: -1}, "negative"},
		{"zero kind", Delta{}, "unknown delta kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := base.Apply(tc.delta); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Apply(%v) error = %v, want containing %q", tc.delta, err, tc.want)
			}
		})
	}
}

func TestApplyAtomicity(t *testing.T) {
	base := buildScenario(t)
	// First delta is valid, second is not: nothing may be applied.
	_, err := base.Apply(
		Delta{Kind: DeltaRepairNode, Node: 1},
		Delta{Kind: DeltaRepairNode, Node: 1}, // now a no-op: error
	)
	if err == nil {
		t.Fatalf("Apply with an invalid tail delta should fail")
	}
	if !base.BrokenNodes[1] {
		t.Fatalf("failed Apply mutated the parent")
	}
}

// randomDelta draws a valid delta for the current scenario state, or ok=false
// when the drawn kind has no valid target.
func randomDelta(rng *rand.Rand, s *Scenario) (Delta, bool) {
	switch rng.Intn(5) {
	case 0: // break a working node
		var working []graph.NodeID
		for i := 0; i < s.Supply.NumNodes(); i++ {
			if !s.BrokenNodes[graph.NodeID(i)] {
				working = append(working, graph.NodeID(i))
			}
		}
		if len(working) == 0 {
			return Delta{}, false
		}
		return Delta{Kind: DeltaBreakNode, Node: working[rng.Intn(len(working))]}, true
	case 1: // repair a broken node
		broken := s.SortedBrokenNodes()
		if len(broken) == 0 {
			return Delta{}, false
		}
		return Delta{Kind: DeltaRepairNode, Node: broken[rng.Intn(len(broken))]}, true
	case 2: // break a working link
		var working []graph.EdgeID
		for i := 0; i < s.Supply.NumEdges(); i++ {
			if !s.BrokenEdges[graph.EdgeID(i)] {
				working = append(working, graph.EdgeID(i))
			}
		}
		if len(working) == 0 {
			return Delta{}, false
		}
		return Delta{Kind: DeltaBreakLink, Edge: working[rng.Intn(len(working))]}, true
	case 3: // repair a broken link
		broken := s.SortedBrokenEdges()
		if len(broken) == 0 {
			return Delta{}, false
		}
		return Delta{Kind: DeltaRepairLink, Edge: broken[rng.Intn(len(broken))]}, true
	default: // set a demand flow (possibly to zero, possibly resurrecting)
		n := s.Demand.NumPairs()
		if n == 0 {
			return Delta{}, false
		}
		return Delta{Kind: DeltaSetDemand, Pair: demand.PairID(rng.Intn(n)), Flow: float64(rng.Intn(12))}, true
	}
}

// rebuildFromScratch constructs a fresh scenario with the same content as s
// but none of the cached fingerprint state.
func rebuildFromScratch(s *Scenario) *Scenario {
	return s.Clone()
}

// TestApplyFingerprintProperty is the delta half of the S4 property test:
// random delta sequences, applied one at a time, must yield incrementally
// maintained fingerprints byte-equal to a from-scratch recompute of an
// independently rebuilt scenario at every step.
func TestApplyFingerprintProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		cur := fingerprintFixture()
		for step := 0; step < 20; step++ {
			d, ok := randomDelta(rng, cur)
			if !ok {
				continue
			}
			next, err := cur.Apply(d)
			if err != nil {
				t.Fatalf("trial %d step %d: Apply(%v): %v", trial, step, d, err)
			}
			fresh := rebuildFromScratch(next)
			if got, want := next.FingerprintHex(), fresh.FingerprintHex(); got != want {
				t.Fatalf("trial %d step %d: incremental fingerprint diverged after %v:\n got  %s\n want %s",
					trial, step, d, got, want)
			}
			cur = next
		}
	}
}

// TestApplyBatchFingerprint checks that a multi-delta batch matches both a
// chain of single-delta Applies and a from-scratch recompute.
func TestApplyBatchFingerprint(t *testing.T) {
	base := fingerprintFixture()
	deltas := []Delta{
		{Kind: DeltaRepairNode, Node: 1},
		{Kind: DeltaBreakLink, Edge: 1},
		{Kind: DeltaSetDemand, Pair: 1, Flow: 9},
		{Kind: DeltaRepairLink, Edge: 0},
	}
	batch, err := base.Apply(deltas...)
	if err != nil {
		t.Fatalf("batch Apply: %v", err)
	}
	chained := base
	for _, d := range deltas {
		chained, err = chained.Apply(d)
		if err != nil {
			t.Fatalf("chained Apply(%v): %v", d, err)
		}
	}
	if batch.FingerprintHex() != chained.FingerprintHex() {
		t.Fatalf("batch and chained fingerprints differ")
	}
	if got, want := batch.FingerprintHex(), rebuildFromScratch(batch).FingerprintHex(); got != want {
		t.Fatalf("batch fingerprint diverged from recompute:\n got  %s\n want %s", got, want)
	}
}

func TestDeltaString(t *testing.T) {
	cases := []struct {
		d    Delta
		want string
	}{
		{Delta{Kind: DeltaBreakNode, Node: 3}, "break_node(3)"},
		{Delta{Kind: DeltaRepairLink, Edge: 2}, "repair_link(2)"},
		{Delta{Kind: DeltaSetDemand, Pair: 1, Flow: 2.5}, "set_demand(1, 2.5)"},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Fatalf("String() = %q, want %q", got, tc.want)
		}
	}
}
