package scenario

import (
	"testing"
	"time"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
)

// buildScenario returns a 4-node path 0-1-2-3 (capacity 10) with node 1 and
// edge (2,3) broken, and a single demand 0->3 of 5 units.
func buildScenario(t *testing.T) *Scenario {
	t.Helper()
	g := graph.New(4, 3)
	for i := 0; i < 4; i++ {
		g.AddNode("", float64(i), 0, 2)
	}
	g.MustAddEdge(0, 1, 10, 3) // edge 0
	g.MustAddEdge(1, 2, 10, 3) // edge 1
	g.MustAddEdge(2, 3, 10, 3) // edge 2
	dg := demand.New()
	dg.MustAdd(0, 3, 5)
	return &Scenario{
		Supply:      g,
		Demand:      dg,
		BrokenNodes: map[graph.NodeID]bool{1: true},
		BrokenEdges: map[graph.EdgeID]bool{2: true},
	}
}

func TestValidate(t *testing.T) {
	s := buildScenario(t)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := buildScenario(t)
	bad.BrokenNodes[99] = true
	if err := bad.Validate(); err == nil {
		t.Error("expected error for unknown broken node")
	}
	bad2 := buildScenario(t)
	bad2.BrokenEdges[99] = true
	if err := bad2.Validate(); err == nil {
		t.Error("expected error for unknown broken edge")
	}
	bad3 := buildScenario(t)
	bad3.Demand.MustAdd(0, 99, 1)
	if err := bad3.Validate(); err == nil {
		t.Error("expected error for unknown demand endpoint")
	}
	if err := (&Scenario{}).Validate(); err == nil {
		t.Error("expected error for nil members")
	}
	if err := (&Scenario{Supply: graph.New(0, 0)}).Validate(); err == nil {
		t.Error("expected error for nil demand")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := buildScenario(t)
	c := s.Clone()
	c.BrokenNodes[3] = true
	c.BrokenEdges[0] = true
	c.Supply.SetCapacity(0, 99)
	if err := c.Demand.SetFlow(0, 1); err != nil {
		t.Fatal(err)
	}
	if s.BrokenNodes[3] || s.BrokenEdges[0] {
		t.Error("clone shares broken sets")
	}
	if s.Supply.Edge(0).Capacity == 99 {
		t.Error("clone shares supply graph")
	}
	if s.Demand.Flow(0) != 5 {
		t.Error("clone shares demand graph")
	}
}

func TestScenarioAccounting(t *testing.T) {
	s := buildScenario(t)
	nodes, edges := s.NumBroken()
	if nodes != 1 || edges != 1 {
		t.Errorf("NumBroken = %d, %d", nodes, edges)
	}
	if cost := s.TotalRepairCost(); cost != 2+3 {
		t.Errorf("TotalRepairCost = %f, want 5", cost)
	}
	working := s.WorkingNodes()
	if working[1] || !working[0] || len(working) != 3 {
		t.Errorf("WorkingNodes = %v", working)
	}
}

func TestEdgeUsable(t *testing.T) {
	s := buildScenario(t)
	// Edge 0 joins 0-1; node 1 broken -> unusable until node 1 repaired.
	if s.EdgeUsable(0, nil, nil) {
		t.Error("edge 0 should be unusable with node 1 broken")
	}
	if !s.EdgeUsable(0, map[graph.NodeID]bool{1: true}, nil) {
		t.Error("edge 0 should be usable once node 1 repaired")
	}
	// Edge 2 is itself broken.
	if s.EdgeUsable(2, map[graph.NodeID]bool{1: true}, nil) {
		t.Error("edge 2 should be unusable until repaired")
	}
	if !s.EdgeUsable(2, nil, map[graph.EdgeID]bool{2: true}) {
		t.Error("edge 2 should be usable once repaired")
	}
}

func TestRoutingHelpers(t *testing.T) {
	r := make(Routing)
	r.AddFlow(0, 1, 3)
	r.AddFlow(0, 1, 2)
	r.AddFlow(1, 1, -4)
	load := r.EdgeLoad()
	if load[1] != 9 {
		t.Errorf("EdgeLoad = %v, want 9 on edge 1", load)
	}
	c := r.Clone()
	c.AddFlow(0, 1, 100)
	if r[0][1] != 5 {
		t.Error("Clone shares maps")
	}
}

func TestPlanAccounting(t *testing.T) {
	s := buildScenario(t)
	p := NewPlan("test")
	p.RepairedNodes[1] = true
	p.RepairedEdges[2] = true
	p.TotalDemand = 5
	p.SatisfiedDemand = 5
	p.Runtime = 10 * time.Millisecond
	n, e, total := p.NumRepairs()
	if n != 1 || e != 1 || total != 2 {
		t.Errorf("NumRepairs = %d, %d, %d", n, e, total)
	}
	if cost := p.RepairCost(s); cost != 5 {
		t.Errorf("RepairCost = %f, want 5", cost)
	}
	if p.SatisfactionRatio() != 1 {
		t.Errorf("SatisfactionRatio = %f", p.SatisfactionRatio())
	}
	p.SatisfiedDemand = 20
	if p.SatisfactionRatio() != 1 {
		t.Error("ratio should clamp at 1")
	}
	p.SatisfiedDemand = -1
	if p.SatisfactionRatio() != 0 {
		t.Error("ratio should clamp at 0")
	}
	empty := NewPlan("x")
	if empty.SatisfactionRatio() != 1 {
		t.Error("zero-demand plan is fully satisfied by convention")
	}
	if p.String() == "" {
		t.Error("String should not be empty")
	}
}

func TestVerifyPlanHappyPath(t *testing.T) {
	s := buildScenario(t)
	p := NewPlan("test")
	p.RepairedNodes[1] = true
	p.RepairedEdges[2] = true
	p.TotalDemand = 5
	p.SatisfiedDemand = 5
	// Route 5 units along 0-1-2-3. Edge orientation matches construction
	// (From < To), so flow is positive.
	p.Routing.AddFlow(0, 0, 5)
	p.Routing.AddFlow(0, 1, 5)
	p.Routing.AddFlow(0, 2, 5)
	if err := VerifyPlan(s, p); err != nil {
		t.Fatalf("VerifyPlan: %v", err)
	}
}

func TestVerifyPlanFailures(t *testing.T) {
	s := buildScenario(t)

	t.Run("repairs element that is not broken", func(t *testing.T) {
		p := NewPlan("bad")
		p.RepairedNodes[0] = true
		if err := VerifyPlan(s, p); err == nil {
			t.Error("expected error")
		}
		p2 := NewPlan("bad")
		p2.RepairedEdges[0] = true
		if err := VerifyPlan(s, p2); err == nil {
			t.Error("expected error")
		}
	})

	t.Run("routing over broken unrepaired edge", func(t *testing.T) {
		p := NewPlan("bad")
		p.RepairedNodes[1] = true
		p.TotalDemand = 5
		p.Routing.AddFlow(0, 0, 5)
		p.Routing.AddFlow(0, 1, 5)
		p.Routing.AddFlow(0, 2, 5) // edge 2 broken, not repaired
		if err := VerifyPlan(s, p); err == nil {
			t.Error("expected error")
		}
	})

	t.Run("capacity violation", func(t *testing.T) {
		p := NewPlan("bad")
		p.RepairedNodes[1] = true
		p.RepairedEdges[2] = true
		p.Routing.AddFlow(0, 0, 50)
		p.Routing.AddFlow(0, 1, 50)
		p.Routing.AddFlow(0, 2, 50)
		if err := VerifyPlan(s, p); err == nil {
			t.Error("expected error")
		}
	})

	t.Run("conservation violation", func(t *testing.T) {
		p := NewPlan("bad")
		p.RepairedNodes[1] = true
		p.RepairedEdges[2] = true
		p.Routing.AddFlow(0, 0, 5) // flow appears at node 1 and vanishes
		if err := VerifyPlan(s, p); err == nil {
			t.Error("expected error")
		}
	})

	t.Run("delivers more than demand", func(t *testing.T) {
		p := NewPlan("bad")
		p.RepairedNodes[1] = true
		p.RepairedEdges[2] = true
		p.Routing.AddFlow(0, 0, 8)
		p.Routing.AddFlow(0, 1, 8)
		p.Routing.AddFlow(0, 2, 8)
		if err := VerifyPlan(s, p); err == nil {
			t.Error("expected error")
		}
	})

	t.Run("claims more satisfied demand than routed", func(t *testing.T) {
		p := NewPlan("bad")
		p.RepairedNodes[1] = true
		p.RepairedEdges[2] = true
		p.TotalDemand = 5
		p.SatisfiedDemand = 5
		p.Routing.AddFlow(0, 0, 2)
		p.Routing.AddFlow(0, 1, 2)
		p.Routing.AddFlow(0, 2, 2)
		if err := VerifyPlan(s, p); err == nil {
			t.Error("expected error")
		}
	})

	t.Run("unknown pair and unknown edge", func(t *testing.T) {
		p := NewPlan("bad")
		p.Routing.AddFlow(demand.PairID(7), 0, 1)
		if err := VerifyPlan(s, p); err == nil {
			t.Error("expected error for unknown pair")
		}
		p2 := NewPlan("bad")
		p2.Routing.AddFlow(0, graph.EdgeID(55), 1)
		if err := VerifyPlan(s, p2); err == nil {
			t.Error("expected error for unknown edge")
		}
	})
}

func TestVerifyPlanNoRouting(t *testing.T) {
	s := buildScenario(t)
	p := NewPlan("repair-only")
	p.Routing = nil
	p.RepairedNodes[1] = true
	if err := VerifyPlan(s, p); err != nil {
		t.Errorf("repair-only plan should verify: %v", err)
	}
}
