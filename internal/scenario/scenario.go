// Package scenario defines the shared problem and solution types of the
// network-recovery library: a Scenario bundles the supply graph, demand
// graph and disruption (broken nodes/edges) of a MinR instance, and a Plan
// records a solver's repair decisions, the routing it produced and summary
// metrics. Every solver (ISP, SRT, the greedy heuristics, OPT, ALL) consumes
// a Scenario and produces a Plan, which keeps the experiment harness and the
// public facade uniform.
package scenario

import (
	"fmt"
	"time"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
)

// Scenario is a single MinR problem instance.
type Scenario struct {
	// Supply is the communication network G = (V, E) including broken
	// elements.
	Supply *graph.Graph
	// Demand is the demand graph H with the required flows.
	Demand *demand.Graph
	// BrokenNodes and BrokenEdges are the disrupted sets V_B and E_B.
	BrokenNodes map[graph.NodeID]bool
	// BrokenEdges holds E_B. Edges incident to a broken node are unusable
	// even if not listed here (the paper removes them from G^(n) as well).
	BrokenEdges map[graph.EdgeID]bool

	// fp caches the fingerprint state of snapshots produced by Apply. It is
	// nil on hand-built or cloned scenarios (which remain freely mutable);
	// scenarios that carry it must be treated as immutable.
	fp *fpState
}

// Clone returns a deep copy of the scenario. Solvers mutate only their own
// copies; the experiment harness hands each solver a clone.
func (s *Scenario) Clone() *Scenario {
	c := &Scenario{
		Supply:      s.Supply.Clone(),
		Demand:      s.Demand.Clone(),
		BrokenNodes: make(map[graph.NodeID]bool, len(s.BrokenNodes)),
		BrokenEdges: make(map[graph.EdgeID]bool, len(s.BrokenEdges)),
	}
	for k, v := range s.BrokenNodes {
		if v {
			c.BrokenNodes[k] = true
		}
	}
	for k, v := range s.BrokenEdges {
		if v {
			c.BrokenEdges[k] = true
		}
	}
	return c
}

// Validate checks internal consistency: every broken element and every
// demand endpoint must exist in the supply graph, and demand endpoints must
// be distinct.
func (s *Scenario) Validate() error {
	if s.Supply == nil {
		return fmt.Errorf("scenario: nil supply graph")
	}
	if s.Demand == nil {
		return fmt.Errorf("scenario: nil demand graph")
	}
	for v := range s.BrokenNodes {
		if !s.Supply.HasNode(v) {
			return fmt.Errorf("scenario: broken node %d not in supply graph", v)
		}
	}
	for e := range s.BrokenEdges {
		if !s.Supply.HasEdge(e) {
			return fmt.Errorf("scenario: broken edge %d not in supply graph", e)
		}
	}
	for _, p := range s.Demand.All() {
		if !s.Supply.HasNode(p.Source) || !s.Supply.HasNode(p.Target) {
			return fmt.Errorf("scenario: demand pair %d endpoints (%d, %d) not in supply graph", p.ID, p.Source, p.Target)
		}
	}
	return nil
}

// NumBroken returns the number of broken nodes and edges (the ALL line of
// the figures).
func (s *Scenario) NumBroken() (nodes, edges int) {
	return len(s.BrokenNodes), len(s.BrokenEdges)
}

// TotalRepairCost returns the cost of repairing every broken element.
func (s *Scenario) TotalRepairCost() float64 {
	cost := 0.0
	for v := range s.BrokenNodes {
		cost += s.Supply.Node(v).RepairCost
	}
	for e := range s.BrokenEdges {
		cost += s.Supply.Edge(e).RepairCost
	}
	return cost
}

// WorkingNodes returns the predicate map of nodes that are usable before any
// repair (i.e. not broken).
func (s *Scenario) WorkingNodes() map[graph.NodeID]bool {
	working := make(map[graph.NodeID]bool, s.Supply.NumNodes())
	for i := 0; i < s.Supply.NumNodes(); i++ {
		id := graph.NodeID(i)
		if !s.BrokenNodes[id] {
			working[id] = true
		}
	}
	return working
}

// EdgeUsable reports whether edge e is usable given the broken sets and an
// optional set of already-repaired elements.
func (s *Scenario) EdgeUsable(e graph.EdgeID, repairedNodes map[graph.NodeID]bool, repairedEdges map[graph.EdgeID]bool) bool {
	edge := s.Supply.Edge(e)
	if s.BrokenEdges[e] && !repairedEdges[e] {
		return false
	}
	if s.BrokenNodes[edge.From] && !repairedNodes[edge.From] {
		return false
	}
	if s.BrokenNodes[edge.To] && !repairedNodes[edge.To] {
		return false
	}
	return true
}

// Routing maps each demand pair to the net flow it places on every edge.
// The sign convention matches graph.FlowAssignment: positive along
// Edge.From -> Edge.To.
type Routing map[demand.PairID]map[graph.EdgeID]float64

// Clone returns a deep copy of the routing.
func (r Routing) Clone() Routing {
	c := make(Routing, len(r))
	for pid, edges := range r {
		ce := make(map[graph.EdgeID]float64, len(edges))
		for eid, f := range edges {
			ce[eid] = f
		}
		c[pid] = ce
	}
	return c
}

// AddFlow accumulates signed flow for a pair on an edge.
func (r Routing) AddFlow(pid demand.PairID, eid graph.EdgeID, flow float64) {
	if r[pid] == nil {
		r[pid] = make(map[graph.EdgeID]float64)
	}
	r[pid][eid] += flow
}

// EdgeLoad returns the total absolute flow crossing each edge, summed over
// all demand pairs (the left-hand side of the capacity constraint 1(b)).
func (r Routing) EdgeLoad() map[graph.EdgeID]float64 {
	load := make(map[graph.EdgeID]float64)
	for _, edges := range r {
		for eid, f := range edges {
			if f < 0 {
				f = -f
			}
			load[eid] += f
		}
	}
	return load
}

// Plan is the output of a recovery solver.
type Plan struct {
	// Solver is the name of the algorithm that produced the plan.
	Solver string
	// RepairedNodes and RepairedEdges are the repair decisions (subsets of
	// the scenario's broken sets).
	RepairedNodes map[graph.NodeID]bool
	RepairedEdges map[graph.EdgeID]bool
	// Routing is the flow assignment produced by the solver; it may be nil
	// for solvers that only decide repairs (e.g. GRD-NC decides repairs and
	// certifies routability without committing to a routing).
	Routing Routing
	// SatisfiedDemand is the total demand the solver could route; together
	// with TotalDemand it yields the "percentage of satisfied demand" of the
	// figures.
	SatisfiedDemand float64
	TotalDemand     float64
	// Runtime is the wall-clock time the solver took.
	Runtime time.Duration
	// Optimal indicates a provably optimal plan (only OPT sets this, and only
	// when branch-and-bound closed the gap).
	Optimal bool
	// Bound is the best lower bound on the optimal cost (OPT only).
	Bound float64
	// Notes carries solver-specific diagnostics.
	Notes string
}

// NewPlan returns an empty plan for the given solver name.
func NewPlan(solver string) *Plan {
	return &Plan{
		Solver:        solver,
		RepairedNodes: make(map[graph.NodeID]bool),
		RepairedEdges: make(map[graph.EdgeID]bool),
		Routing:       make(Routing),
	}
}

// NumRepairs returns the number of repaired nodes, edges and their sum.
func (p *Plan) NumRepairs() (nodes, edges, total int) {
	nodes = len(p.RepairedNodes)
	edges = len(p.RepairedEdges)
	return nodes, edges, nodes + edges
}

// RepairCost returns the total cost of the plan's repairs on scenario s.
func (p *Plan) RepairCost(s *Scenario) float64 {
	cost := 0.0
	for v := range p.RepairedNodes {
		cost += s.Supply.Node(v).RepairCost
	}
	for e := range p.RepairedEdges {
		cost += s.Supply.Edge(e).RepairCost
	}
	return cost
}

// SatisfactionRatio returns SatisfiedDemand / TotalDemand in [0, 1]; it
// returns 1 when the total demand is zero.
func (p *Plan) SatisfactionRatio() float64 {
	if p.TotalDemand <= 0 {
		return 1
	}
	ratio := p.SatisfiedDemand / p.TotalDemand
	if ratio > 1 {
		ratio = 1
	}
	if ratio < 0 {
		ratio = 0
	}
	return ratio
}

// String summarises the plan.
func (p *Plan) String() string {
	n, e, total := p.NumRepairs()
	return fmt.Sprintf("plan{%s: %d node + %d edge = %d repairs, %.1f%% demand, %v}",
		p.Solver, n, e, total, 100*p.SatisfactionRatio(), p.Runtime.Round(time.Millisecond))
}
