package scenario

import (
	"fmt"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
)

// DeltaKind enumerates the scenario mutations a Delta can describe.
type DeltaKind int

// Delta kinds.
const (
	// DeltaBreakNode marks a working node as broken.
	DeltaBreakNode DeltaKind = iota + 1
	// DeltaRepairNode removes a node from the broken set (its repair
	// completed in the field).
	DeltaRepairNode
	// DeltaBreakLink marks a working link as broken.
	DeltaBreakLink
	// DeltaRepairLink removes a link from the broken set.
	DeltaRepairLink
	// DeltaSetDemand overwrites the residual flow of a demand pair.
	DeltaSetDemand
)

// String returns the wire name of the kind (see internal/wire).
func (k DeltaKind) String() string {
	switch k {
	case DeltaBreakNode:
		return "break_node"
	case DeltaRepairNode:
		return "repair_node"
	case DeltaBreakLink:
		return "break_link"
	case DeltaRepairLink:
		return "repair_link"
	case DeltaSetDemand:
		return "set_demand"
	default:
		return fmt.Sprintf("delta_kind(%d)", int(k))
	}
}

// Delta is one incremental change to a scenario's disruption or demand
// state: a node or link breaking or being repaired, or a demand pair's flow
// changing. Deltas never touch the topology itself (nodes, links, capacities
// and repair costs are fixed for the lifetime of a recovery run) — that is
// what lets Apply update fingerprints incrementally and planner sessions
// keep solver state warm across successive re-plans.
type Delta struct {
	// Kind selects the mutation.
	Kind DeltaKind
	// Node is the target of DeltaBreakNode / DeltaRepairNode.
	Node graph.NodeID
	// Edge is the target of DeltaBreakLink / DeltaRepairLink.
	Edge graph.EdgeID
	// Pair and Flow are the target and new residual flow of DeltaSetDemand.
	Pair demand.PairID
	Flow float64
}

// String summarises the delta.
func (d Delta) String() string {
	switch d.Kind {
	case DeltaBreakNode, DeltaRepairNode:
		return fmt.Sprintf("%s(%d)", d.Kind, d.Node)
	case DeltaBreakLink, DeltaRepairLink:
		return fmt.Sprintf("%s(%d)", d.Kind, d.Edge)
	case DeltaSetDemand:
		return fmt.Sprintf("%s(%d, %g)", d.Kind, d.Pair, d.Flow)
	default:
		return d.Kind.String()
	}
}

// Apply returns a new scenario with the deltas applied in order, leaving the
// receiver unchanged. The application is atomic: if any delta is invalid
// (unknown element, breaking an already-broken element, repairing a working
// one, a negative demand flow) an error is returned and no snapshot is
// produced. Break/repair deltas are deliberately strict about no-op
// transitions so that a caller tracking a live disaster detects state drift
// instead of silently absorbing it.
//
// The returned scenario shares the (immutable) supply graph with the
// receiver and, when no DeltaSetDemand is applied, the demand graph too;
// broken-set maps are always fresh copies. It must therefore be treated as
// an immutable snapshot, like every scenario in the serving stack.
//
// Apply also carries the fingerprint state forward incrementally: the hash
// midstate of the (unchanged) topology sections is reused, so the new
// snapshot's Fingerprint costs O(demands + broken) instead of a full
// topology re-serialisation — and is byte-equal to a from-scratch recompute
// (pinned by the delta property tests).
func (s *Scenario) Apply(deltas ...Delta) (*Scenario, error) {
	next := &Scenario{
		Supply:      s.Supply,
		Demand:      s.Demand,
		BrokenNodes: make(map[graph.NodeID]bool, len(s.BrokenNodes)+1),
		BrokenEdges: make(map[graph.EdgeID]bool, len(s.BrokenEdges)+1),
	}
	for v, b := range s.BrokenNodes {
		if b {
			next.BrokenNodes[v] = true
		}
	}
	for e, b := range s.BrokenEdges {
		if b {
			next.BrokenEdges[e] = true
		}
	}
	demandChanged := false
	for i, d := range deltas {
		if err := next.applyOne(d, &demandChanged); err != nil {
			return nil, fmt.Errorf("scenario: delta %d (%s): %w", i, d, err)
		}
	}
	next.fp = s.deriveFingerprint(next, demandChanged)
	return next, nil
}

// applyOne applies a single delta to the scenario under construction.
// next.Demand is cloned lazily on the first DeltaSetDemand.
func (next *Scenario) applyOne(d Delta, demandChanged *bool) error {
	switch d.Kind {
	case DeltaBreakNode:
		if !next.Supply.HasNode(d.Node) {
			return fmt.Errorf("node %d not in supply graph", d.Node)
		}
		if next.BrokenNodes[d.Node] {
			return fmt.Errorf("node %d is already broken", d.Node)
		}
		next.BrokenNodes[d.Node] = true
	case DeltaRepairNode:
		if !next.BrokenNodes[d.Node] {
			return fmt.Errorf("node %d is not broken", d.Node)
		}
		delete(next.BrokenNodes, d.Node)
	case DeltaBreakLink:
		if !next.Supply.HasEdge(d.Edge) {
			return fmt.Errorf("link %d not in supply graph", d.Edge)
		}
		if next.BrokenEdges[d.Edge] {
			return fmt.Errorf("link %d is already broken", d.Edge)
		}
		next.BrokenEdges[d.Edge] = true
	case DeltaRepairLink:
		if !next.BrokenEdges[d.Edge] {
			return fmt.Errorf("link %d is not broken", d.Edge)
		}
		delete(next.BrokenEdges, d.Edge)
	case DeltaSetDemand:
		if _, ok := next.Demand.Pair(d.Pair); !ok {
			return fmt.Errorf("demand pair %d does not exist", d.Pair)
		}
		if d.Flow < 0 {
			return fmt.Errorf("negative demand flow %g", d.Flow)
		}
		if !*demandChanged {
			next.Demand = next.Demand.Clone()
			*demandChanged = true
		}
		return next.Demand.SetFlow(d.Pair, d.Flow)
	default:
		return fmt.Errorf("unknown delta kind %d", int(d.Kind))
	}
	return nil
}
