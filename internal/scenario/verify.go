package scenario

import (
	"fmt"
	"math"

	"netrecovery/internal/graph"
)

// verifyTolerance is the numerical slack allowed when checking capacity and
// conservation constraints of a plan's routing.
const verifyTolerance = 1e-6

// VerifyPlan checks that a plan is a valid solution of the scenario:
//
//  1. every repaired element was actually broken,
//  2. the routing only uses working or repaired elements,
//  3. no edge carries more total flow than its capacity,
//  4. flow is conserved at every node for every demand pair, delivering at
//     most the pair's demand from source to target,
//  5. SatisfiedDemand does not exceed the routed amount (up to tolerance).
//
// Plans with a nil/empty routing skip checks 2-5 (solvers such as GRD-NC
// certify routability without materialising a routing).
func VerifyPlan(s *Scenario, p *Plan) error {
	for v := range p.RepairedNodes {
		if !s.BrokenNodes[v] {
			return fmt.Errorf("plan repairs node %d which is not broken", v)
		}
	}
	for e := range p.RepairedEdges {
		if !s.BrokenEdges[e] {
			return fmt.Errorf("plan repairs edge %d which is not broken", e)
		}
	}
	if len(p.Routing) == 0 {
		return nil
	}

	// Capacity constraints over the summed per-pair flows.
	for eid, load := range p.Routing.EdgeLoad() {
		if !s.Supply.HasEdge(eid) {
			return fmt.Errorf("routing uses unknown edge %d", eid)
		}
		e := s.Supply.Edge(eid)
		if load > e.Capacity+verifyTolerance {
			return fmt.Errorf("edge %d carries %.4f > capacity %.4f", eid, load, e.Capacity)
		}
		if load > verifyTolerance && !s.EdgeUsable(eid, p.RepairedNodes, p.RepairedEdges) {
			return fmt.Errorf("routing uses edge %d which is broken and not repaired", eid)
		}
	}

	// Per-pair conservation.
	routedTotal := 0.0
	for pid, flows := range p.Routing {
		pair, ok := s.Demand.Pair(pid)
		if !ok {
			return fmt.Errorf("routing references unknown demand pair %d", pid)
		}
		net := make(map[graph.NodeID]float64)
		for eid, f := range flows {
			if !s.Supply.HasEdge(eid) {
				return fmt.Errorf("pair %d routed on unknown edge %d", pid, eid)
			}
			e := s.Supply.Edge(eid)
			net[e.From] -= f
			net[e.To] += f
		}
		delivered := net[pair.Target]
		if delivered < -verifyTolerance {
			return fmt.Errorf("pair %d delivers negative flow %.4f", pid, delivered)
		}
		if delivered > pair.Flow+verifyTolerance {
			return fmt.Errorf("pair %d delivers %.4f > demand %.4f", pid, delivered, pair.Flow)
		}
		if math.Abs(net[pair.Source]+delivered) > verifyTolerance {
			return fmt.Errorf("pair %d source imbalance: %.4f vs delivered %.4f", pid, net[pair.Source], delivered)
		}
		for v, imbalance := range net {
			if v == pair.Source || v == pair.Target {
				continue
			}
			if math.Abs(imbalance) > verifyTolerance {
				return fmt.Errorf("pair %d violates conservation at node %d by %.4f", pid, v, imbalance)
			}
		}
		routedTotal += delivered
	}
	if p.SatisfiedDemand > routedTotal+verifyTolerance {
		return fmt.Errorf("plan claims %.4f satisfied demand but routes only %.4f", p.SatisfiedDemand, routedTotal)
	}
	return nil
}
