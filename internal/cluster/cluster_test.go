package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"netrecovery/internal/degrade"
	"netrecovery/internal/graph"
	"netrecovery/internal/plancache"
	"netrecovery/internal/scenario"
	"netrecovery/internal/wire"
)

// fakePeer is a scripted remote peer: it answers /v1/peer/plan/* according
// to mode and /healthz according to the healthy flag.
type fakePeer struct {
	srv     *httptest.Server
	mode    atomic.Int32 // 0 = hit, 1 = miss, 2 = 500, 3 = block on gate
	healthy atomic.Bool
	gate    chan struct{}
	entered chan struct{} // signalled once per blocked request
	fills   atomic.Uint64
}

const (
	modeHit = iota
	modeMiss
	modeErr
	modeBlock
)

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	fp := &fakePeer{gate: make(chan struct{}), entered: make(chan struct{}, 64)}
	fp.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !fp.healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/peer/plan/{fp}", func(w http.ResponseWriter, r *http.Request) {
		fp.fills.Add(1)
		switch fp.mode.Load() {
		case modeMiss:
			json.NewEncoder(w).Encode(wire.PeerPlanResponse{Found: false})
		case modeErr:
			w.WriteHeader(http.StatusInternalServerError)
		case modeBlock:
			fp.entered <- struct{}{}
			select {
			case <-fp.gate:
			case <-r.Context().Done():
			}
			json.NewEncoder(w).Encode(wire.PeerPlanResponse{Found: false})
		default:
			p := scenario.NewPlan("ISP")
			p.RepairedNodes[graph.NodeID(3)] = true
			p.SatisfiedDemand, p.TotalDemand = 4, 5
			cp := wire.FromCachedPlan(p)
			json.NewEncoder(w).Encode(wire.PeerPlanResponse{Found: true, Plan: &cp, AgeMS: 42})
		}
	})
	fp.srv = httptest.NewServer(mux)
	t.Cleanup(fp.srv.Close)
	return fp
}

// newTestCluster builds a 2-node cluster: a fake self address plus the fake
// peer, with probing disabled (tests drive ProbeOnce directly).
func newTestCluster(t *testing.T, peerURL string, mutate func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Self:          "http://self.invalid:1",
		Peers:         []string{"http://self.invalid:1", peerURL},
		ProbeInterval: -1,
		FillTimeout:   2 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// peerKey finds a cache key whose fingerprint the ring assigns to addr.
func peerKey(t *testing.T, c *Cluster, addr string) plancache.Key {
	t.Helper()
	for i := 0; i < 4096; i++ {
		k := plancache.Key{Fingerprint: testFP(i), Algorithm: "ISP"}
		if owner, ok := c.Owner(k.Fingerprint); ok && owner == addr {
			return k
		}
	}
	t.Fatal("no fingerprint mapped to peer (ring broken?)")
	return plancache.Key{}
}

func TestFillHit(t *testing.T) {
	fp := newFakePeer(t)
	c := newTestCluster(t, fp.srv.URL, nil)
	key := peerKey(t, c, fp.srv.URL)

	plan, age, ok := c.Fill(context.Background(), key)
	if !ok {
		t.Fatal("Fill: ok=false, want hit")
	}
	if !plan.RepairedNodes[graph.NodeID(3)] || plan.SatisfiedDemand != 4 {
		t.Fatalf("Fill returned wrong plan: %+v", plan)
	}
	if age != 42*time.Millisecond {
		t.Fatalf("age = %v, want 42ms", age)
	}
	st := c.Stats()
	if st.Fills != 1 || st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 fill / 1 hit", st)
	}
}

func TestFillMissAndSelfOwned(t *testing.T) {
	fp := newFakePeer(t)
	fp.mode.Store(modeMiss)
	c := newTestCluster(t, fp.srv.URL, nil)

	if _, _, ok := c.Fill(context.Background(), peerKey(t, c, fp.srv.URL)); ok {
		t.Fatal("Fill: ok=true on a peer miss")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 miss", st)
	}

	// A self-owned key never dispatches a fill.
	selfKey := peerKey(t, c, c.Self())
	if _, _, ok := c.Fill(context.Background(), selfKey); ok {
		t.Fatal("Fill: ok=true for self-owned key")
	}
	if st := c.Stats(); st.Fills != 1 {
		t.Fatalf("self-owned key dispatched a fill: %+v", st)
	}
}

func TestFillErrorFeedsBreaker(t *testing.T) {
	fp := newFakePeer(t)
	fp.mode.Store(modeErr)
	c := newTestCluster(t, fp.srv.URL, func(cfg *Config) {
		cfg.Breaker = degrade.BreakerConfig{ConsecutiveFailures: 3, Cooldown: time.Hour}
	})
	key := peerKey(t, c, fp.srv.URL)

	for i := 0; i < 3; i++ {
		if _, _, ok := c.Fill(context.Background(), key); ok {
			t.Fatalf("Fill %d: ok=true from a 500", i)
		}
	}
	st := c.Stats()
	if st.Errors != 3 {
		t.Fatalf("stats = %+v, want 3 errors", st)
	}
	// Breaker tripped after 3 consecutive failures: the next fill is
	// refused before touching the mailbox.
	if _, _, ok := c.Fill(context.Background(), key); ok {
		t.Fatal("Fill: ok=true with open breaker")
	}
	st = c.Stats()
	if st.BreakerSkipped != 1 || st.Fills != 3 {
		t.Fatalf("stats = %+v, want breakerSkipped=1 fills=3", st)
	}
	if fp.fills.Load() != 3 {
		t.Fatalf("peer saw %d fills, want 3 (breaker must gate the 4th)", fp.fills.Load())
	}
}

func TestFillMailboxFullSheds(t *testing.T) {
	fp := newFakePeer(t)
	fp.mode.Store(modeBlock)
	c := newTestCluster(t, fp.srv.URL, func(cfg *Config) {
		cfg.MailboxSize = 1
		cfg.WorkersPerPeer = 1
	})
	key := peerKey(t, c, fp.srv.URL)
	p := c.peers[fp.srv.URL]

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Fill 1 occupies the single worker (blocked in the handler).
	go c.Fill(ctx, key)
	<-fp.entered
	// Fill 2 sits in the 1-slot mailbox.
	go c.Fill(ctx, key)
	deadline := time.Now().Add(5 * time.Second)
	for len(p.mailbox) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second fill never reached the mailbox")
		}
		time.Sleep(time.Millisecond)
	}
	// Fill 3 finds the mailbox full and is shed synchronously.
	start := time.Now()
	if _, _, ok := c.Fill(context.Background(), key); ok {
		t.Fatal("Fill: ok=true with full mailbox")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shed fill took %v, want immediate", d)
	}
	if st := c.Stats(); st.Dropped != 1 {
		t.Fatalf("stats = %+v, want dropped=1", st)
	}
	close(fp.gate) // release the blocked handler
	cancel()
}

func TestProbeEjectAndReadmit(t *testing.T) {
	fp := newFakePeer(t)
	c := newTestCluster(t, fp.srv.URL, func(cfg *Config) {
		cfg.ProbeFailures = 3
	})
	key := peerKey(t, c, fp.srv.URL)
	ctx := context.Background()

	if st := c.Stats(); st.Alive != 2 {
		t.Fatalf("alive = %d, want 2", st.Alive)
	}
	fp.healthy.Store(false)
	c.ProbeOnce(ctx)
	c.ProbeOnce(ctx)
	if st := c.Stats(); st.Alive != 2 || st.Ejections != 0 {
		t.Fatalf("ejected after 2 failures: %+v", st)
	}
	c.ProbeOnce(ctx)
	st := c.Stats()
	if st.Alive != 1 || st.Ejections != 1 {
		t.Fatalf("stats after 3rd failed probe = %+v, want alive=1 ejections=1", st)
	}
	// Ownership collapsed onto self; fills stop.
	if owner, ok := c.Owner(key.Fingerprint); !ok || owner != c.Self() {
		t.Fatalf("owner = %q ok=%v, want self after ejection", owner, ok)
	}
	if _, _, ok := c.Fill(ctx, key); ok {
		t.Fatal("Fill: ok=true against ejected peer")
	}
	if c.Stats().Fills != 0 {
		t.Fatal("fill dispatched to ejected peer")
	}

	// One healthy probe readmits.
	fp.healthy.Store(true)
	c.ProbeOnce(ctx)
	st = c.Stats()
	if st.Alive != 2 || st.Readmissions != 1 {
		t.Fatalf("stats after recovery probe = %+v, want alive=2 readmissions=1", st)
	}
	if owner, _ := c.Owner(key.Fingerprint); owner != fp.srv.URL {
		t.Fatalf("owner = %q, want readmitted peer", owner)
	}
}

func TestJitteredTimeoutDeterministic(t *testing.T) {
	mk := func(seed uint64) *Cluster {
		c, err := New(Config{
			Self:          "http://a:1",
			Peers:         []string{"http://a:1", "http://b:1"},
			ProbeInterval: -1,
			FillTimeout:   time.Second,
			TimeoutJitter: 0.2,
			Seed:          seed,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		t.Cleanup(c.Close)
		return c
	}
	c1, c2, c3 := mk(7), mk(7), mk(8)
	lo, hi := 800*time.Millisecond, time.Second
	varied := false
	var prev time.Duration
	for i := 0; i < 64; i++ {
		d1, d2, d3 := c1.jitteredTimeout(), c2.jitteredTimeout(), c3.jitteredTimeout()
		if d1 != d2 {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, d1, d2)
		}
		if d1 < lo || d1 > hi {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, d1, lo, hi)
		}
		if i > 0 && d1 != prev {
			varied = true
		}
		prev = d1
		_ = d3
	}
	if !varied {
		t.Fatal("jitter stream is constant")
	}
}

func TestFillURLGolden(t *testing.T) {
	var key plancache.Key
	key.Fingerprint[0], key.Fingerprint[31] = 0xab, 0x01
	key.Algorithm = "OPT/2"
	key.Options[0] = 0xff
	got := FillURL("http://n1:8080", key)
	want := "http://n1:8080/v1/peer/plan/" +
		"ab00000000000000000000000000000000000000000000000000000000000001" +
		"?algorithm=OPT%2F2&options=" +
		"ff00000000000000000000000000000000000000000000000000000000000000"
	if got != want {
		t.Fatalf("FillURL:\n got %s\nwant %s", got, want)
	}
}

func TestNewRejectsForeignSelf(t *testing.T) {
	if _, err := New(Config{Self: "http://zzz:1", Peers: []string{"http://a:1"}}); err == nil {
		t.Fatal("New accepted Self outside Peers")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted empty Self")
	}
}
