package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netrecovery/internal/graph"
	"netrecovery/internal/plancache"
	"netrecovery/internal/scenario"
)

// TestPeerFillReelectionChurn is the cluster-path counterpart of the plan
// cache's TestDoReelectionChurn: the solve function handed to Do is the
// peer-fill wrapper nrserved uses (try the owner, fall back to a local
// solve), and every round the coalescing leader is cancelled while its fill
// is blocked inside the remote peer. A queued follower must re-elect
// itself, repeat the fill against the now-responsive peer, and share the
// peer's plan with every waiter — the local fallback solver must never run,
// because each round's plan is available remotely the moment the new leader
// asks.
func TestPeerFillReelectionChurn(t *testing.T) {
	const (
		rounds    = 8
		followers = 4
	)
	fp := newFakePeer(t)
	clu := newTestCluster(t, fp.srv.URL, nil)
	cache := plancache.New(plancache.Config{})
	base := peerKey(t, clu, fp.srv.URL)

	var localSolves, peerFills atomic.Int64
	wrapper := func(key plancache.Key) func(context.Context) (*scenario.Plan, error) {
		return func(ctx context.Context) (*scenario.Plan, error) {
			if plan, _, ok := clu.Fill(ctx, key); ok {
				peerFills.Add(1)
				return plan, nil
			}
			if err := ctx.Err(); err != nil {
				return nil, err // cancelled mid-fill: no local fallback to run
			}
			localSolves.Add(1)
			return scenario.NewPlan("ISP"), nil
		}
	}

	for round := 0; round < rounds; round++ {
		// Same peer-owned fingerprint, fresh cache key each round.
		key := base
		key.Options[0] = byte(round)

		// The doomed leader's fill reaches the peer and parks there.
		fp.mode.Store(modeBlock)
		leaderCtx, cancelLeader := context.WithCancel(context.Background())
		leaderDone := make(chan error, 1)
		go func() {
			_, _, _, err := cache.Do(leaderCtx, key, wrapper(key))
			leaderDone <- err
		}()
		select {
		case <-fp.entered:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: leader fill never reached the peer", round)
		}

		var wg sync.WaitGroup
		errs := make([]error, followers)
		plans := make([]*scenario.Plan, followers)
		for f := 0; f < followers; f++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				plans[f], _, _, errs[f] = cache.Do(context.Background(), key, wrapper(key))
			}(f)
		}
		// Let the followers coalesce onto the doomed leader, make the peer
		// answer hits from now on, then kill the leader mid-fill.
		time.Sleep(20 * time.Millisecond)
		fp.mode.Store(modeHit)
		cancelLeader()

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: followers stalled after leader cancellation", round)
		}
		if err := <-leaderDone; err == nil {
			t.Fatalf("round %d: cancelled leader reported success", round)
		}
		for f := 0; f < followers; f++ {
			if errs[f] != nil {
				t.Fatalf("round %d follower %d: %v (leader cancellation leaked)", round, f, errs[f])
			}
			// The shared plan is the fake peer's, not a local fallback's.
			if plans[f] == nil || plans[f] != plans[0] {
				t.Fatalf("round %d follower %d: followers did not share one plan", round, f)
			}
			if !plans[f].RepairedNodes[graph.NodeID(3)] || plans[f].SatisfiedDemand != 4 {
				t.Fatalf("round %d follower %d: plan is not the peer's: %+v", round, f, plans[f])
			}
		}
		// The re-elected fill stored the peer's plan; the key now hits
		// locally without another fill.
		if _, outcome, _, _ := cache.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
			t.Fatalf("round %d: post-churn lookup solved again", round)
			return nil, nil
		}); outcome != plancache.Hit {
			t.Fatalf("round %d: post-churn outcome = %v, want Hit", round, outcome)
		}
	}

	if got := localSolves.Load(); got != 0 {
		t.Errorf("local fallback solves = %d, want 0 (every round must be peer-filled)", got)
	}
	if got := peerFills.Load(); got != rounds {
		t.Errorf("peer fills = %d, want %d (exactly one re-elected fill per round)", got, rounds)
	}
	cst := cache.Stats()
	if cst.Reelections < rounds || cst.Reelections > rounds*followers {
		t.Errorf("Reelections = %d, want within [%d, %d]", cst.Reelections, rounds, rounds*followers)
	}
	st := clu.Stats()
	// One successful fill per round from the re-elected leader; the
	// cancelled leader's fill dispatched but resolved through ctx.Done, so
	// it counts as a dispatch and nothing else.
	if st.Hits != rounds || st.Fills != 2*rounds {
		t.Errorf("cluster stats = %+v, want hits=%d fills=%d", st, rounds, 2*rounds)
	}
}
