package cluster

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"netrecovery/internal/degrade"
	"netrecovery/internal/obs"
	"netrecovery/internal/plancache"
	"netrecovery/internal/scenario"
	"netrecovery/internal/wire"
)

// Defaults of the zero Config fields.
const (
	// DefaultMailboxSize bounds the pending peer-fill queue per peer.
	DefaultMailboxSize = 32
	// DefaultWorkersPerPeer caps concurrent in-flight fills per peer.
	DefaultWorkersPerPeer = 4
	// DefaultFillTimeout is the per-fill budget before falling back to a
	// local solve.
	DefaultFillTimeout = 750 * time.Millisecond
	// DefaultTimeoutJitter is the fraction by which fill timeouts are
	// deterministically spread, so simultaneous fills against a slow peer
	// do not all give up (and re-solve locally) at the same instant.
	DefaultTimeoutJitter = 0.2
	// DefaultProbeInterval is the /healthz probing cadence.
	DefaultProbeInterval = 2 * time.Second
	// DefaultProbeTimeout bounds one /healthz probe.
	DefaultProbeTimeout = time.Second
	// DefaultProbeFailures is how many consecutive failed probes eject a
	// peer from the ring.
	DefaultProbeFailures = 3
)

// Config parameterises New.
type Config struct {
	// Self is this node's advertised base URL (e.g. "http://10.0.0.1:8080").
	// It must appear in Peers; fingerprints the ring assigns to Self are
	// solved locally, never peer-filled.
	Self string
	// Peers is the static cluster membership: every node's advertised base
	// URL, including Self. Order does not matter (the ring canonicalises).
	Peers []string
	// VirtualNodes is the ring's vnode count per peer (0 =
	// DefaultVirtualNodes).
	VirtualNodes int
	// MailboxSize bounds the pending fill queue per peer; a fill finding
	// the mailbox full falls back to a local solve immediately (0 =
	// DefaultMailboxSize).
	MailboxSize int
	// WorkersPerPeer caps the in-flight fills per peer (0 =
	// DefaultWorkersPerPeer).
	WorkersPerPeer int
	// FillTimeout is the per-fill budget (0 = DefaultFillTimeout).
	FillTimeout time.Duration
	// TimeoutJitter spreads each fill's effective timeout over
	// [FillTimeout·(1−J), FillTimeout], deterministically (negative = 0,
	// 0 = DefaultTimeoutJitter; clamped to [0, 1]).
	TimeoutJitter float64
	// ProbeInterval is the /healthz probing cadence (0 =
	// DefaultProbeInterval, negative = probing disabled; tests drive
	// ProbeOnce directly).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (0 = DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// ProbeFailures ejects a peer after this many consecutive failed
	// probes (0 = DefaultProbeFailures).
	ProbeFailures int
	// Breaker tunes the per-peer circuit breakers (zero values pick the
	// degrade.BreakerConfig defaults).
	Breaker degrade.BreakerConfig
	// Client is the HTTP client used for fills and probes (nil = a
	// default client; per-request contexts carry the timeouts).
	Client *http.Client
	// Seed roots the deterministic jitter stream.
	Seed uint64
	// Logger, when non-nil, receives ring-membership lifecycle events
	// (peer ejection after consecutive probe failures, readmission).
	Logger *obs.Logger
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.MailboxSize <= 0 {
		c.MailboxSize = DefaultMailboxSize
	}
	if c.WorkersPerPeer <= 0 {
		c.WorkersPerPeer = DefaultWorkersPerPeer
	}
	if c.FillTimeout <= 0 {
		c.FillTimeout = DefaultFillTimeout
	}
	if c.TimeoutJitter == 0 {
		c.TimeoutJitter = DefaultTimeoutJitter
	}
	if c.TimeoutJitter < 0 {
		c.TimeoutJitter = 0
	}
	if c.TimeoutJitter > 1 {
		c.TimeoutJitter = 1
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.ProbeFailures <= 0 {
		c.ProbeFailures = DefaultProbeFailures
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Stats is a point-in-time snapshot of the cluster counters, exported on
// the server's /metrics.
type Stats struct {
	// Peers is the static membership size (including self); Alive counts
	// members currently in the ring (self always counts).
	Peers, Alive int
	// Fills counts peer-fill attempts that were actually dispatched;
	// Hits/Misses split them by whether the owner had the plan cached.
	Fills, Hits, Misses uint64
	// Errors counts transport/decode failures, Timeouts fills that hit
	// their (jittered) deadline. Both fall back to a local solve.
	Errors, Timeouts uint64
	// Dropped counts fills refused because the owner's mailbox was full —
	// the bounded queue shedding load instead of fanning in unboundedly.
	Dropped uint64
	// BreakerSkipped counts fills refused by the owner's open circuit
	// breaker.
	BreakerSkipped uint64
	// Ejections and Readmissions count ring membership changes driven by
	// the health prober.
	Ejections, Readmissions uint64
}

// fillResult is what a peer worker hands back to a waiting fill.
type fillResult struct {
	plan  *scenario.Plan
	age   time.Duration
	found bool
	err   error
}

// fillReq is one queued peer-fill.
type fillReq struct {
	ctx  context.Context
	url  string
	done chan fillResult // buffered(1); worker never blocks on it
}

// peer is one remote cluster member.
type peer struct {
	addr    string
	mailbox chan *fillReq
	breaker *degrade.Breaker
	down    atomic.Bool

	// probeFails is touched only by the prober goroutine (or ProbeOnce).
	probeFails int
}

// Cluster owns the ring, the peer mailboxes and the health prober. Create
// with New, start probing with Start, stop everything with Close.
type Cluster struct {
	cfg  Config
	ring *Ring
	self string
	// peers maps address -> remote peer (self excluded).
	peers map[string]*peer

	fills, hits, misses     atomic.Uint64
	errs, timeouts, dropped atomic.Uint64
	breakerSkipped          atomic.Uint64
	ejections, readmissions atomic.Uint64
	jitterSeq               atomic.Uint64

	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

// New builds the cluster from cfg. It validates that Self is a member and
// spawns the bounded worker pool for every remote peer; call Start to begin
// health probing and Close to shut everything down.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self address required")
	}
	ring := NewRing(cfg.Peers, cfg.VirtualNodes)
	selfSeen := false
	for _, p := range ring.Peers() {
		if p == cfg.Self {
			selfSeen = true
		}
	}
	if !selfSeen {
		return nil, fmt.Errorf("cluster: Self %q not in Peers", cfg.Self)
	}
	c := &Cluster{
		cfg:   cfg,
		ring:  ring,
		self:  cfg.Self,
		peers: make(map[string]*peer),
		stop:  make(chan struct{}),
	}
	for _, addr := range ring.Peers() {
		if addr == cfg.Self {
			continue
		}
		p := &peer{
			addr:    addr,
			mailbox: make(chan *fillReq, cfg.MailboxSize),
			breaker: degrade.NewBreaker(cfg.Breaker),
		}
		c.peers[addr] = p
		for w := 0; w < cfg.WorkersPerPeer; w++ {
			c.wg.Add(1)
			go c.peerWorker(p)
		}
	}
	return c, nil
}

// Self returns this node's advertised address.
func (c *Cluster) Self() string { return c.self }

// Size returns the static membership size, including self.
func (c *Cluster) Size() int { return len(c.peers) + 1 }

// alive reports whether addr is currently in the ring: self always, remote
// peers unless the prober has ejected them.
func (c *Cluster) alive(addr string) bool {
	if addr == c.self {
		return true
	}
	p, ok := c.peers[addr]
	return ok && !p.down.Load()
}

// Owner returns the live owner of fp (ok=false only if the ring is empty).
func (c *Cluster) Owner(fp [32]byte) (string, bool) {
	return c.ring.Owner(fp, c.alive)
}

// IsOwner reports whether this node owns fp (true also when every remote
// peer is ejected and ownership collapsed onto self).
func (c *Cluster) IsOwner(fp [32]byte) bool {
	owner, ok := c.Owner(fp)
	return !ok || owner == c.self
}

// jitteredTimeout draws the next fill deadline from
// [FillTimeout·(1−J), FillTimeout]: a deterministic splitmix64 stream, so a
// burst of fills against one slow peer gives up staggered, not in lockstep.
func (c *Cluster) jitteredTimeout() time.Duration {
	j := c.cfg.TimeoutJitter
	if j <= 0 {
		return c.cfg.FillTimeout
	}
	n := c.jitterSeq.Add(1)
	u := float64(splitmix64(c.cfg.Seed^n*0x9e3779b97f4a7c15)>>11) / float64(uint64(1)<<53)
	return c.cfg.FillTimeout - time.Duration(j*u*float64(c.cfg.FillTimeout))
}

// FillURL is the peer-fill endpoint path for a cache key, relative to the
// owner's base URL. The options digest rides in a query parameter, hex
// encoded like the fingerprint.
func FillURL(base string, key plancache.Key) string {
	return fmt.Sprintf("%s/v1/peer/plan/%s?algorithm=%s&options=%s",
		base,
		hex.EncodeToString(key.Fingerprint[:]),
		url.QueryEscape(key.Algorithm),
		hex.EncodeToString(key.Options[:]))
}

// Fill attempts a peer-fill of key from its owner. It returns ok=false —
// telling the caller to solve locally — whenever this node is the owner,
// the owner is ejected, its breaker is open, its mailbox is full, the fill
// timed out, errored, or the owner simply does not have the plan cached.
// Concurrent identical fills on one node are already single-flight: Fill is
// called from inside the plan cache's coalescing leader, so at most one
// fill per key is in flight per node.
//
// The returned plan is the shared cached value; callers must treat it as
// immutable.
func (c *Cluster) Fill(ctx context.Context, key plancache.Key) (plan *scenario.Plan, age time.Duration, ok bool) {
	owner, found := c.Owner(key.Fingerprint)
	if !found || owner == c.self {
		return nil, 0, false
	}
	p := c.peers[owner]
	if p == nil {
		return nil, 0, false
	}
	// The fill span's ctx rides inside fillReq, so the worker's HTTP round
	// trip can stamp its traceparent on the request — the owner adopts the
	// trace ID and the two nodes' traces stitch into one.
	ctx, sp := obs.StartSpan(ctx, "peer.fill")
	sp.SetAttr("owner", owner)
	defer sp.End()
	if !p.breaker.Allow() {
		c.breakerSkipped.Add(1)
		sp.SetAttr("outcome", "breaker_open")
		return nil, 0, false
	}
	req := &fillReq{ctx: ctx, url: FillURL(owner, key), done: make(chan fillResult, 1)}
	select {
	case p.mailbox <- req:
	default:
		// Bounded mailbox full: shed the fill, solve locally. The breaker
		// admission is returned without an outcome — queue pressure says
		// nothing about the peer's health.
		p.breaker.Cancel()
		c.dropped.Add(1)
		sp.SetAttr("outcome", "mailbox_full")
		return nil, 0, false
	}
	c.fills.Add(1)
	select {
	case res := <-req.done:
		switch {
		case res.err != nil:
			if errors.Is(res.err, context.DeadlineExceeded) {
				c.timeouts.Add(1)
				sp.SetAttr("outcome", "timeout")
			} else {
				c.errs.Add(1)
				sp.SetAttr("outcome", "error")
			}
			sp.SetError(res.err)
			p.breaker.Record(false)
			return nil, 0, false
		case !res.found:
			c.misses.Add(1)
			p.breaker.Record(true)
			sp.SetAttr("outcome", "miss")
			return nil, 0, false
		default:
			c.hits.Add(1)
			p.breaker.Record(true)
			sp.SetAttr("outcome", "hit")
			return res.plan, res.age, true
		}
	case <-ctx.Done():
		// The requester went away; the worker will finish (or time out)
		// on its own and drop the buffered result.
		p.breaker.Cancel()
		sp.SetAttr("outcome", "cancelled")
		return nil, 0, false
	case <-c.stop:
		p.breaker.Cancel()
		sp.SetAttr("outcome", "shutdown")
		return nil, 0, false
	}
}

// peerWorker drains one peer's mailbox; WorkersPerPeer of them bound the
// in-flight fills per peer.
func (c *Cluster) peerWorker(p *peer) {
	defer c.wg.Done()
	for {
		select {
		case req := <-p.mailbox:
			req.done <- c.fetch(req)
		case <-c.stop:
			return
		}
	}
}

// fetch performs one peer-fill HTTP round trip under the jittered timeout.
func (c *Cluster) fetch(req *fillReq) fillResult {
	ctx, cancel := context.WithTimeout(req.ctx, c.jitteredTimeout())
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, req.url, nil)
	if err != nil {
		return fillResult{err: err}
	}
	// Propagate the requester's trace (W3C traceparent) so the owner's
	// peer-plan handler joins the same trace.
	if sp := obs.SpanFromContext(req.ctx); sp != nil {
		httpReq.Header.Set("traceparent", sp.Traceparent())
	}
	resp, err := c.cfg.Client.Do(httpReq)
	if err != nil {
		if ctx.Err() != nil {
			err = ctx.Err()
		}
		return fillResult{err: err}
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fillResult{err: fmt.Errorf("cluster: peer answered %s", resp.Status)}
	}
	var pr wire.PeerPlanResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&pr); err != nil {
		return fillResult{err: fmt.Errorf("cluster: decode peer response: %w", err)}
	}
	if !pr.Found {
		return fillResult{found: false}
	}
	plan, err := pr.Plan.Build()
	if err != nil {
		return fillResult{err: fmt.Errorf("cluster: invalid peer plan: %w", err)}
	}
	return fillResult{plan: plan, age: time.Duration(pr.AgeMS) * time.Millisecond, found: true}
}

// Start launches the background health prober (a no-op when probing is
// disabled by a negative ProbeInterval).
func (c *Cluster) Start() {
	if c.cfg.ProbeInterval < 0 {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(c.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				c.ProbeOnce(context.Background())
			case <-c.stop:
				return
			}
		}
	}()
}

// ProbeOnce probes every remote peer's /healthz once, ejecting peers after
// ProbeFailures consecutive failures and readmitting them on the first
// success. Exported so tests (and the prober) share one code path; it must
// not be called concurrently with itself.
func (c *Cluster) ProbeOnce(ctx context.Context) {
	for _, addr := range c.ring.Peers() {
		p := c.peers[addr]
		if p == nil {
			continue
		}
		if c.probe(ctx, addr) {
			p.probeFails = 0
			if p.down.CompareAndSwap(true, false) {
				c.readmissions.Add(1)
				c.cfg.Logger.Info(ctx, "peer readmitted to ring", "peer", addr)
			}
			continue
		}
		p.probeFails++
		if p.probeFails >= c.cfg.ProbeFailures && p.down.CompareAndSwap(false, true) {
			c.ejections.Add(1)
			c.cfg.Logger.WarnClass(ctx, "peer-eject", "peer ejected from ring",
				"peer", addr, "consecutive_failures", p.probeFails)
		}
	}
}

// probe performs one /healthz round trip.
func (c *Cluster) probe(ctx context.Context, addr string) bool {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Close stops the prober and the peer workers. Pending fills are abandoned
// (their callers' Fill returns ok=false via the stop channel).
func (c *Cluster) Close() {
	c.stopped.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Stats returns a snapshot of the cluster counters.
func (c *Cluster) Stats() Stats {
	alive := 1 // self
	for _, p := range c.peers {
		if !p.down.Load() {
			alive++
		}
	}
	return Stats{
		Peers:          len(c.peers) + 1,
		Alive:          alive,
		Fills:          c.fills.Load(),
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Errors:         c.errs.Load(),
		Timeouts:       c.timeouts.Load(),
		Dropped:        c.dropped.Load(),
		BreakerSkipped: c.breakerSkipped.Load(),
		Ejections:      c.ejections.Load(),
		Readmissions:   c.readmissions.Load(),
	}
}
