// Package cluster is the multi-node layer of the serving stack: a
// consistent-hash ring that assigns every scenario fingerprint to exactly
// one owning peer, plus a bounded peer-fill client that lets a non-owner
// fetch a cached plan from the owner instead of re-solving — a plan
// computed anywhere in the fleet becomes a cache hit everywhere.
//
// The dataplane discipline is explicit bounds everywhere (no unbounded
// fan-in): each peer has a fixed-size mailbox of pending fills drained by a
// capped worker pool, a fill whose mailbox is full falls back to a local
// solve immediately, per-fill timeouts carry deterministic jitter so
// synchronized retries cannot align, and every peer sits behind a circuit
// breaker (internal/degrade) that stops fills to a struggling node before
// its queue does. Ring membership comes from a static peer list; a
// background /healthz prober ejects dead peers from the ring (moving only
// their ~1/N share of the key space) and readmits them on recovery.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// splitmix64 is the repo-wide deterministic PRNG step (same constants as
// internal/ensemble and internal/degrade).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// addrHash64 hashes a peer address into the 64-bit space of the ring.
func addrHash64(addr string) uint64 {
	sum := sha256.Sum256([]byte(addr))
	return binary.BigEndian.Uint64(sum[:8])
}

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	// point is the vnode's position on the 64-bit ring.
	point uint64
	// rank breaks point collisions: the rendezvous score of the owning
	// peer at this point (higher wins, i.e. sorts first).
	rank uint64
	// peer indexes Ring.peers.
	peer int
}

// Ring is a consistent-hash ring over peer addresses. Each peer is placed
// at VirtualNodes deterministic points (sha256 of "addr|vnode"), so
// placement is identical on every node that was built from the same peer
// list, regardless of list order. Lookups hash a scenario fingerprint onto
// the ring and walk clockwise to the first point whose peer is alive.
//
// Two peers whose virtual nodes collide on the same 64-bit point (possible,
// if astronomically unlikely, and cheap to defend) are ordered by a
// rendezvous score — splitmix64(point XOR sha256(addr)) — so the winner is
// a deterministic function of the colliding (point, addr) pairs, never of
// construction order. The golden tests pin both the regular placement and
// this tiebreak.
//
// A Ring is immutable after New; liveness is layered on top via the alive
// callback of Owner, so ejecting a peer never rebuilds the ring (and
// therefore never moves keys between surviving peers).
type Ring struct {
	peers  []string
	points []ringPoint
}

// DefaultVirtualNodes is the vnode count used when a Config leaves
// VirtualNodes zero: 128 points per peer keeps the per-peer key share
// within a few percent of 1/N for small fleets.
const DefaultVirtualNodes = 128

// NewRing builds the ring for the given peers. The peer list is
// deduplicated and sorted internally, so any permutation of the same
// addresses yields a byte-identical ring. vnodes <= 0 means
// DefaultVirtualNodes.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		uniq = append(uniq, p)
	}
	sort.Strings(uniq)
	r := &Ring{peers: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	var buf [8 + 4]byte
	for i, addr := range uniq {
		base := addrHash64(addr)
		h := sha256.New()
		for v := 0; v < vnodes; v++ {
			binary.BigEndian.PutUint64(buf[:8], base)
			binary.BigEndian.PutUint32(buf[8:], uint32(v))
			h.Reset()
			h.Write([]byte(addr))
			h.Write(buf[:])
			sum := h.Sum(nil)
			point := binary.BigEndian.Uint64(sum[:8])
			r.points = append(r.points, ringPoint{
				point: point,
				rank:  splitmix64(point ^ base),
				peer:  i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.point != pb.point {
			return pa.point < pb.point
		}
		if pa.rank != pb.rank {
			// Rendezvous tiebreak: the higher score owns the point.
			return pa.rank > pb.rank
		}
		return r.peers[pa.peer] < r.peers[pb.peer]
	})
	return r
}

// Peers returns the ring's member addresses in canonical (sorted) order.
func (r *Ring) Peers() []string {
	out := make([]string, len(r.peers))
	copy(out, r.peers)
	return out
}

// keyPoint maps a scenario fingerprint onto the ring. The fingerprint is
// already a uniform content hash, so its leading 8 bytes are the point.
func keyPoint(fp [32]byte) uint64 {
	return binary.BigEndian.Uint64(fp[:8])
}

// Owner returns the address owning fingerprint fp: the first ring point at
// or clockwise after the key whose peer alive reports true (nil alive means
// every peer is alive). The walk skips dead peers' points, so ejecting one
// peer hands exactly its own points — ~1/N of the key space — to the
// respective next survivors and moves nothing between survivors. Returns
// ok=false when the ring is empty or every peer is dead.
func (r *Ring) Owner(fp [32]byte, alive func(addr string) bool) (addr string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	key := keyPoint(fp)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= key })
	for off := 0; off < len(r.points); off++ {
		pt := r.points[(start+off)%len(r.points)]
		a := r.peers[pt.peer]
		if alive == nil || alive(a) {
			return a, true
		}
	}
	return "", false
}
