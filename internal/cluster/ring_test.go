package cluster

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"testing"
)

// testFP derives a deterministic fingerprint for test key i.
func testFP(i int) [32]byte {
	return sha256.Sum256([]byte(fmt.Sprintf("fp-%d", i)))
}

// TestRingGoldenPlacement pins the exact owner assignment of the first 16
// test fingerprints on a canonical 3-node ring. Any change to the vnode
// hashing, point derivation, or walk order shows up here — placement is an
// on-the-wire contract (every node must compute the same owner), so it may
// only change with a deliberate golden update.
func TestRingGoldenPlacement(t *testing.T) {
	peers := []string{"http://node-a:8080", "http://node-b:8080", "http://node-c:8080"}
	r := NewRing(peers, 64)
	want := []string{
		"http://node-a:8080", // fp-0
		"http://node-b:8080", // fp-1
		"http://node-c:8080", // fp-2
		"http://node-a:8080", // fp-3
		"http://node-b:8080", // fp-4
		"http://node-c:8080", // fp-5
		"http://node-b:8080", // fp-6
		"http://node-b:8080", // fp-7
		"http://node-c:8080", // fp-8
		"http://node-b:8080", // fp-9
		"http://node-b:8080", // fp-10
		"http://node-c:8080", // fp-11
		"http://node-b:8080", // fp-12
		"http://node-a:8080", // fp-13
		"http://node-b:8080", // fp-14
		"http://node-c:8080", // fp-15
	}
	for i, w := range want {
		got, ok := r.Owner(testFP(i), nil)
		if !ok {
			t.Fatalf("Owner(fp-%d): no owner", i)
		}
		if got != w {
			t.Errorf("Owner(fp-%d) = %q, want %q", i, got, w)
		}
	}
	if t.Failed() {
		// Emit the actual assignment so a deliberate re-pin is one paste.
		for i := 0; i < 16; i++ {
			got, _ := r.Owner(testFP(i), nil)
			t.Logf("%q, // fp-%d", got, i)
		}
	}
}

// TestRingOrderIndependence: any permutation of the peer list builds a ring
// with identical placement — required for nodes configured with differently
// ordered -peers flags to agree on ownership.
func TestRingOrderIndependence(t *testing.T) {
	peers := []string{"http://n1:1", "http://n2:1", "http://n3:1", "http://n4:1"}
	perms := [][]string{
		{peers[0], peers[1], peers[2], peers[3]},
		{peers[3], peers[2], peers[1], peers[0]},
		{peers[2], peers[0], peers[3], peers[1]},
	}
	base := NewRing(perms[0], 32)
	for pi, perm := range perms[1:] {
		r := NewRing(perm, 32)
		for i := 0; i < 500; i++ {
			fp := testFP(i)
			w, _ := base.Owner(fp, nil)
			g, _ := r.Owner(fp, nil)
			if g != w {
				t.Fatalf("perm %d: Owner(fp-%d) = %q, want %q", pi+1, i, g, w)
			}
		}
	}
}

// TestRingDedup: duplicate and empty addresses collapse; Peers is sorted.
func TestRingDedup(t *testing.T) {
	r := NewRing([]string{"b", "", "a", "b", "a"}, 8)
	got := r.Peers()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Peers = %v, want [a b]", got)
	}
}

// TestRingTiebreak pins the rendezvous collision rule. Natural 64-bit point
// collisions are astronomically rare, so the test builds the colliding
// points by hand (same point, two peers) and checks that the winner is the
// higher splitmix64(point XOR addrHash) score — independent of insertion
// order, exactly as NewRing sorts.
func TestRingTiebreak(t *testing.T) {
	const pt = uint64(0x1234_5678_9abc_def0)
	addrs := []string{"http://x:1", "http://y:1"}
	rankOf := func(addr string) uint64 { return splitmix64(pt ^ addrHash64(addr)) }
	want := addrs[0]
	if rankOf(addrs[1]) > rankOf(addrs[0]) {
		want = addrs[1]
	}
	// Golden: for these two addresses and this point the score of x wins.
	// (Pinned so the tiebreak function itself cannot silently change.)
	if got := want; got != "http://x:1" {
		t.Fatalf("golden tiebreak winner changed: %q (ranks x=%d y=%d)", got, rankOf(addrs[0]), rankOf(addrs[1]))
	}

	for _, order := range [][]string{{addrs[0], addrs[1]}, {addrs[1], addrs[0]}} {
		r := &Ring{peers: append([]string(nil), order...)}
		sort.Strings(r.peers)
		for i, a := range r.peers {
			r.points = append(r.points, ringPoint{point: pt, rank: rankOf(a), peer: i})
		}
		sort.Slice(r.points, func(a, b int) bool {
			pa, pb := r.points[a], r.points[b]
			if pa.point != pb.point {
				return pa.point < pb.point
			}
			if pa.rank != pb.rank {
				return pa.rank > pb.rank
			}
			return r.peers[pa.peer] < r.peers[pb.peer]
		})
		var fp [32]byte // key point 0 < pt, so the walk lands on the colliding pair
		got, ok := r.Owner(fp, nil)
		if !ok || got != want {
			t.Fatalf("order %v: Owner = %q ok=%v, want %q", order, got, ok, want)
		}
	}
}

// TestRingEjectionRebalance proves the consistent-hashing contract: ejecting
// one of five peers moves only that peer's ~1/5 share of the key space, and
// every key owned by a survivor stays put.
func TestRingEjectionRebalance(t *testing.T) {
	peers := []string{"http://n1:1", "http://n2:1", "http://n3:1", "http://n4:1", "http://n5:1"}
	r := NewRing(peers, 0) // DefaultVirtualNodes
	const keys = 10000
	victim := peers[2]

	before := make([]string, keys)
	for i := range before {
		owner, ok := r.Owner(testFP(i), nil)
		if !ok {
			t.Fatalf("no owner for fp-%d", i)
		}
		before[i] = owner
	}

	alive := func(addr string) bool { return addr != victim }
	moved, victimKeys := 0, 0
	heirs := make(map[string]int)
	for i := range before {
		after, ok := r.Owner(testFP(i), alive)
		if !ok {
			t.Fatalf("no owner for fp-%d after ejection", i)
		}
		if before[i] == victim {
			victimKeys++
			if after == victim {
				t.Fatalf("fp-%d still owned by ejected peer", i)
			}
			heirs[after]++
		} else if after != before[i] {
			t.Fatalf("fp-%d moved %s -> %s although its owner survived", i, before[i], after)
		}
		if after != before[i] {
			moved++
		}
	}
	if moved != victimKeys {
		t.Fatalf("moved %d keys, want exactly the victim's %d", moved, victimKeys)
	}
	// The victim's share should be close to 1/5; allow generous slack for
	// hash variance at 128 vnodes.
	lo, hi := keys/10, 3*keys/10
	if victimKeys < lo || victimKeys > hi {
		t.Fatalf("victim owned %d/%d keys, want within [%d, %d] (~1/5)", victimKeys, keys, lo, hi)
	}
	// The orphaned share spreads over several survivors, not one hot spot.
	if len(heirs) < 2 {
		t.Fatalf("victim's keys all moved to a single heir: %v", heirs)
	}
}

// TestRingEmptyAndDead covers the degenerate rings.
func TestRingEmptyAndDead(t *testing.T) {
	if _, ok := NewRing(nil, 4).Owner(testFP(0), nil); ok {
		t.Fatal("empty ring returned an owner")
	}
	r := NewRing([]string{"a", "b"}, 4)
	if _, ok := r.Owner(testFP(0), func(string) bool { return false }); ok {
		t.Fatal("all-dead ring returned an owner")
	}
	// One survivor owns everything.
	for i := 0; i < 50; i++ {
		got, ok := r.Owner(testFP(i), func(a string) bool { return a == "b" })
		if !ok || got != "b" {
			t.Fatalf("fp-%d: owner %q ok=%v, want b", i, got, ok)
		}
	}
}
