// Package ensemble is the Monte-Carlo layer of the recovery stack: it draws
// thousands of correlated disruption samples for one topology, fans the
// resulting scenarios through the sweep worker pool (deduplicating identical
// samples by content fingerprint and routing solves through the plan cache),
// and aggregates the per-sample plans into robust-plan statistics — expected
// cost, quantiles and CVaR of flow loss and repair cost, per-element repair
// frequencies and a greedy consensus plan evaluated against every sample.
//
// Everything is deterministic for a fixed (scenario, sampler spec, seed):
// samples are drawn from per-index splitmix64 streams, solves are
// deterministic across worker counts (PR 4), and aggregation visits samples
// in draw order, so the wire-encoded report is byte-identical across runs
// and across Workers settings.
package ensemble

import (
	"fmt"
	"math/rand"

	"netrecovery/internal/disruption"
	"netrecovery/internal/graph"
)

// Sampler model names, the wire values of SamplerSpec.Model.
const (
	// ModelGeographic draws epicenter + distance-decay failures: a
	// bi-variate Gaussian damage field centred near the network barycentre
	// (optionally jittered per sample), reusing disruption.Geographic.
	ModelGeographic = "geographic"
	// ModelBernoulli breaks every node and edge independently.
	ModelBernoulli = "bernoulli"
	// ModelCascade draws an initial Bernoulli shock that propagates to
	// neighbours of failed nodes (disruption.Cascade).
	ModelCascade = "cascade"
)

// SamplerSpec declares one correlated failure model. It is a plain
// JSON-serialisable value: the same spec bytes always describe the same
// distribution, and together with a seed the same exact sample sequence.
type SamplerSpec struct {
	// Model selects the failure model: geographic, bernoulli or cascade.
	Model string `json:"model"`

	// Variance and PeakProbability parameterise the geographic model (the
	// bi-variate Gaussian of disruption.GeographicConfig). EpicenterJitter,
	// when positive, is the standard deviation of a per-sample Gaussian
	// displacement of the epicentre around the network barycentre, modelling
	// uncertainty in where the disaster strikes; zero pins the epicentre to
	// the barycentre (the paper's setting).
	Variance        float64 `json:"variance,omitempty"`
	PeakProbability float64 `json:"peak_probability,omitempty"`
	EpicenterJitter float64 `json:"epicenter_jitter,omitempty"`

	// NodeProb and EdgeProb are the per-element failure probabilities of the
	// bernoulli model. EdgeProb doubles as the co-located link-damage
	// probability of the cascade model.
	NodeProb float64 `json:"node_prob,omitempty"`
	EdgeProb float64 `json:"edge_prob,omitempty"`

	// SeedProb, Spread and Rounds parameterise the cascade model: the
	// initial-shock probability, the per-neighbour propagation probability
	// and the round bound (0 = until fixpoint).
	SeedProb float64 `json:"seed_prob,omitempty"`
	Spread   float64 `json:"spread,omitempty"`
	Rounds   int     `json:"rounds,omitempty"`
}

// probField is one [0,1]-constrained parameter for validation.
type probField struct {
	name  string
	value float64
}

// Validate checks the spec for the selected model.
func (sp SamplerSpec) Validate() error {
	var probs []probField
	switch sp.Model {
	case ModelGeographic:
		if sp.Variance <= 0 {
			return fmt.Errorf("ensemble: geographic sampler requires variance > 0, got %g", sp.Variance)
		}
		if sp.EpicenterJitter < 0 {
			return fmt.Errorf("ensemble: epicenter_jitter must be >= 0, got %g", sp.EpicenterJitter)
		}
		probs = []probField{{"peak_probability", sp.PeakProbability}}
	case ModelBernoulli:
		probs = []probField{{"node_prob", sp.NodeProb}, {"edge_prob", sp.EdgeProb}}
	case ModelCascade:
		probs = []probField{{"seed_prob", sp.SeedProb}, {"spread", sp.Spread}, {"edge_prob", sp.EdgeProb}}
		if sp.Rounds < 0 {
			return fmt.Errorf("ensemble: rounds must be >= 0, got %d", sp.Rounds)
		}
	case "":
		return fmt.Errorf("ensemble: sampler model is required (one of %s, %s, %s)", ModelGeographic, ModelBernoulli, ModelCascade)
	default:
		return fmt.Errorf("ensemble: unknown sampler model %q (one of %s, %s, %s)", sp.Model, ModelGeographic, ModelBernoulli, ModelCascade)
	}
	for _, p := range probs {
		if p.value < 0 || p.value > 1 {
			return fmt.Errorf("ensemble: %s must be in [0, 1], got %g", p.name, p.value)
		}
	}
	return nil
}

// Sample draws one disruption from the model. For a fixed graph and rng
// state the draw is fully deterministic: each model consumes the rng in a
// canonical element order (see the disruption package).
func (sp SamplerSpec) Sample(g *graph.Graph, rng *rand.Rand) disruption.Disruption {
	switch sp.Model {
	case ModelGeographic:
		cfg := disruption.GeographicConfig{
			Auto:            true,
			Variance:        sp.Variance,
			PeakProbability: sp.PeakProbability,
		}
		if sp.EpicenterJitter > 0 && g.NumNodes() > 0 {
			// The jitter draws come first so the damage-field draws that
			// follow stay aligned with the zero-jitter sequence.
			cx, cy := g.Barycenter()
			cfg.Auto = false
			cfg.EpicenterX = cx + sp.EpicenterJitter*rng.NormFloat64()
			cfg.EpicenterY = cy + sp.EpicenterJitter*rng.NormFloat64()
		}
		return disruption.Geographic(g, cfg, rng)
	case ModelBernoulli:
		return disruption.Random(g, sp.NodeProb, sp.EdgeProb, rng)
	case ModelCascade:
		return disruption.Cascade(g, disruption.CascadeConfig{
			SeedProb:  sp.SeedProb,
			Spread:    sp.Spread,
			EdgeProb:  sp.EdgeProb,
			MaxRounds: sp.Rounds,
		}, rng)
	default:
		return disruption.NewDisruption()
	}
}

// sampleRand returns the deterministic random stream of sample i: drawing
// sample 500 never depends on having drawn samples 0..499, so samples are
// individually reproducible and the sequence is stable when Samples grows.
func sampleRand(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(mix(seed, int64(i))))
}

// mix combines a seed and a stream discriminator with the splitmix64
// finalizer (the same derivation the sweep engine uses), so neighbouring
// sample indices yield uncorrelated streams.
func mix(seed, stream int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(stream)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
