package ensemble

import (
	"math"
	"sort"
	"time"

	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
)

// Dist summarises one per-sample metric across the ensemble, weighted by
// sample multiplicity (a disruption drawn k times counts k times). CVaR is
// the conditional value-at-risk at the report's Alpha: the mean of the worst
// ceil((1-alpha)*n) samples, where "worst" is metric-specific (highest for
// costs and losses, lowest for satisfaction).
type Dist struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	CVaR float64 `json:"cvar"`
}

// RepairStat is the ensemble-wide repair frequency of one network element.
type RepairStat struct {
	// Kind is "node" or "link" (wire naming).
	Kind string `json:"kind"`
	// ID is the element ID.
	ID int `json:"id"`
	// Broken counts the evaluated samples in which the element was broken;
	// Repaired counts those whose optimal plan repaired it.
	Broken   int `json:"broken"`
	Repaired int `json:"repaired"`
	// Frequency is Repaired over all evaluated samples — the measure the
	// consensus threshold applies to. ConditionalFrequency is Repaired over
	// Broken: how often the element is worth repairing when it is damaged.
	Frequency            float64 `json:"frequency"`
	ConditionalFrequency float64 `json:"conditional_frequency"`
}

// Consensus is the robust plan assembled from high-frequency repairs: every
// element repaired in at least Threshold of the evaluated samples, evaluated
// against each sample with the greedy constructive router. In each sample
// only the consensus elements actually broken there are repaired (and paid
// for), matching the paper's repair accounting.
type Consensus struct {
	Threshold float64 `json:"threshold"`
	// Nodes and Links are the consensus repair sets, IDs ascending.
	Nodes []int `json:"nodes"`
	Links []int `json:"links"`
	// MeanCost is the multiplicity-weighted mean repair cost of applying the
	// consensus plan (broken elements only) across samples.
	MeanCost float64 `json:"mean_cost"`
	// SatisfiedRatio is the distribution of the demand fraction the
	// consensus plan restores per sample; FullSatisfied is the fraction of
	// samples it restores completely.
	SatisfiedRatio Dist    `json:"satisfied_ratio"`
	FullSatisfied  float64 `json:"full_satisfied"`
}

// Report is the aggregated result of one ensemble run. It is the wire form
// too (internal/wire aliases it), so every field is JSON-tagged and every
// slice is emitted in a canonical order; encoding the same report twice — or
// re-running the same ensemble at any worker count — yields byte-identical
// JSON. Wall-clock time is deliberately excluded (Elapsed is not
// serialised); transport envelopes carry timing separately.
//
// Solves/CacheHits/Coalesced depend on the cache's pre-existing contents:
// with a fresh (or nil) cache they are themselves deterministic.
type Report struct {
	// Algorithm is the solver-registry name every sample was solved with.
	Algorithm string `json:"algorithm"`
	// Samples is the number of drawn scenarios; Unique the number of
	// distinct fingerprints among them; Deduped = Samples - Unique.
	Samples int `json:"samples"`
	Unique  int `json:"unique"`
	Deduped int `json:"deduped"`
	// Solves counts actual solver executions; CacheHits and Coalesced count
	// unique scenarios answered by the plan cache instead.
	Solves    int `json:"solves"`
	CacheHits int `json:"cache_hits"`
	Coalesced int `json:"coalesced,omitempty"`
	// Failures counts unique scenarios whose solve failed; their samples are
	// excluded from every statistic. FirstError carries the first failure.
	Failures   int    `json:"failures,omitempty"`
	FirstError string `json:"first_error,omitempty"`
	// HitRatio is (Samples - Solves) / Samples: the fraction of samples
	// answered without running a solver, whether by fingerprint dedup or by
	// the plan cache.
	HitRatio float64 `json:"hit_ratio"`
	// Alpha is the CVaR confidence level of every Dist below.
	Alpha float64 `json:"alpha"`
	// TotalDemand is the total demand flow of the base scenario.
	TotalDemand float64 `json:"total_demand"`

	// Per-sample metric distributions: the number of broken elements, the
	// optimal plan's repair cost, the unserved demand flow (TotalDemand
	// minus satisfied) and the satisfied fraction.
	BrokenElements Dist `json:"broken_elements"`
	RepairCost     Dist `json:"repair_cost"`
	FlowLoss       Dist `json:"flow_loss"`
	SatisfiedRatio Dist `json:"satisfied_ratio"`

	// Repairs lists every element broken in at least one evaluated sample
	// with its repair frequency, nodes first then links, IDs ascending.
	Repairs []RepairStat `json:"repairs"`
	// Consensus is the robust plan built from repairs with
	// Frequency >= the consensus threshold.
	Consensus Consensus `json:"consensus"`

	// Elapsed is the wall-clock duration of the run. It is excluded from the
	// JSON encoding so reports stay byte-deterministic.
	Elapsed time.Duration `json:"-"`
}

// computeDist aggregates one metric. values and weights are parallel slices
// in draw order (weights are sample multiplicities); worstHigh selects the
// CVaR tail (true: high values are bad). The expansion by multiplicity keeps
// the quantile semantics of "per sample", not "per unique scenario".
func computeDist(values []float64, weights []int, alpha float64, worstHigh bool) Dist {
	var expanded []float64
	for i, v := range values {
		for k := 0; k < weights[i]; k++ {
			expanded = append(expanded, v)
		}
	}
	n := len(expanded)
	if n == 0 {
		return Dist{}
	}
	// Mean and variance accumulate in draw order, which is fixed, so the
	// floating-point rounding is reproducible.
	sum := 0.0
	for _, v := range expanded {
		sum += v
	}
	mean := sum / float64(n)
	varsum := 0.0
	for _, v := range expanded {
		d := v - mean
		varsum += d * d
	}
	sorted := append([]float64(nil), expanded...)
	sort.Float64s(sorted)
	quantile := func(p float64) float64 {
		// Nearest-rank on the sorted expansion.
		idx := int(math.Ceil(p*float64(n))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		return sorted[idx]
	}
	tail := int(math.Ceil((1 - alpha) * float64(n)))
	if tail < 1 {
		tail = 1
	}
	if tail > n {
		tail = n
	}
	cvar := 0.0
	if worstHigh {
		for _, v := range sorted[n-tail:] {
			cvar += v
		}
	} else {
		for _, v := range sorted[:tail] {
			cvar += v
		}
	}
	return Dist{
		Mean: mean,
		Std:  math.Sqrt(varsum / float64(n)),
		Min:  sorted[0],
		Max:  sorted[n-1],
		P50:  quantile(0.50),
		P90:  quantile(0.90),
		P95:  quantile(0.95),
		P99:  quantile(0.99),
		CVaR: cvar / float64(tail),
	}
}

// repairCostSorted is plan.RepairCost with a canonical summation order, so
// the floating-point result cannot depend on map iteration order.
func repairCostSorted(s *scenario.Scenario, nodes map[graph.NodeID]bool, edges map[graph.EdgeID]bool) float64 {
	nodeIDs := make([]int, 0, len(nodes))
	for v, on := range nodes {
		if on {
			nodeIDs = append(nodeIDs, int(v))
		}
	}
	sort.Ints(nodeIDs)
	edgeIDs := make([]int, 0, len(edges))
	for e, on := range edges {
		if on {
			edgeIDs = append(edgeIDs, int(e))
		}
	}
	sort.Ints(edgeIDs)
	cost := 0.0
	for _, v := range nodeIDs {
		cost += s.Supply.Node(graph.NodeID(v)).RepairCost
	}
	for _, e := range edgeIDs {
		cost += s.Supply.Edge(graph.EdgeID(e)).RepairCost
	}
	return cost
}

// evaluateRepairs measures the demand the given repair set restores on
// sample scenario s, using the greedy constructive router (the progressive
// scheduler's evaluator): per active demand pair, route min(maxflow, flow)
// on the residual network formed by working plus repaired elements. It is a
// lower bound on the exactly-routable demand — sufficient, never optimistic.
func evaluateRepairs(s *scenario.Scenario, repairedNodes map[graph.NodeID]bool, repairedEdges map[graph.EdgeID]bool) float64 {
	excludedNodes := make(map[graph.NodeID]bool)
	for v, broken := range s.BrokenNodes {
		if broken && !repairedNodes[v] {
			excludedNodes[v] = true
		}
	}
	excludedEdges := make(map[graph.EdgeID]bool)
	for e, broken := range s.BrokenEdges {
		if broken && !repairedEdges[e] {
			excludedEdges[e] = true
		}
	}
	in := &flow.Instance{
		Graph:         s.Supply,
		ExcludedNodes: excludedNodes,
		ExcludedEdges: excludedEdges,
	}
	residual := make(map[graph.EdgeID]float64, s.Supply.NumEdges())
	for i := 0; i < s.Supply.NumEdges(); i++ {
		id := graph.EdgeID(i)
		residual[id] = in.Capacity(id)
	}
	total := 0.0
	for _, p := range s.Demand.Active() {
		if excludedNodes[p.Source] || excludedNodes[p.Target] {
			continue
		}
		value, assignment := s.Supply.MaxFlowWithAssignment(p.Source, p.Target, residual)
		routed := math.Min(value, p.Flow)
		if routed <= 1e-9 {
			continue
		}
		scale := routed / value
		for eid, f := range assignment {
			residual[eid] -= math.Abs(f * scale)
			if residual[eid] < 0 {
				residual[eid] = 0
			}
		}
		total += routed
	}
	return total
}
