package ensemble

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"netrecovery/internal/degrade"
	"netrecovery/internal/graph"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/plancache"
	"netrecovery/internal/scenario"
	"netrecovery/internal/sweep"
)

// Defaults applied by Run.
const (
	// DefaultSamples is the ensemble size when Spec.Samples is zero.
	DefaultSamples = 1000
	// DefaultAlpha is the CVaR confidence level when Spec.Alpha is zero.
	DefaultAlpha = 0.95
	// DefaultConsensusThreshold is the repair-frequency cut-off of the
	// consensus plan when Spec.ConsensusThreshold is zero.
	DefaultConsensusThreshold = 0.9
)

// Progress is one ensemble progress notification: Done of Total samples are
// accounted for (a deduplicated sample is done the moment its unique
// scenario's solve finishes).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Spec declares one ensemble run.
type Spec struct {
	// Scenario is the base instance. Sampled disruptions are unioned with
	// its broken sets, so an already-damaged network can be stressed with
	// additional correlated failures. The scenario is never mutated.
	Scenario *scenario.Scenario
	// Sampler is the failure model to draw from.
	Sampler SamplerSpec
	// Samples is the ensemble size (0 = DefaultSamples).
	Samples int
	// Seed is the root of the per-sample random streams. The same
	// (scenario, sampler, seed) triple reproduces the exact sample set.
	Seed int64
	// Algorithm is the solver-registry name (default ISP).
	Algorithm string
	// Fast, OPTTimeLimit and OPTMaxNodes configure the solver
	// (heuristics.Params).
	Fast         bool
	OPTTimeLimit time.Duration
	OPTMaxNodes  int
	// Workers bounds the solve pool (0 = GOMAXPROCS). Reports are identical
	// for every value.
	Workers int
	// SolverWorkers is the per-solve parallelism handed to OPT (0 = let the
	// solver default; callers that already own the pool pass 1 or -1 so the
	// two levels of parallelism do not oversubscribe).
	SolverWorkers int
	// Alpha is the CVaR confidence level in (0, 1) (0 = DefaultAlpha).
	Alpha float64
	// ConsensusThreshold is the repair-frequency cut-off in (0, 1] for the
	// consensus plan (0 = DefaultConsensusThreshold).
	ConsensusThreshold float64
	// Cache, when non-nil, routes unique-scenario solves through the plan
	// cache: an ensemble re-run (or one overlapping another request's
	// scenarios) answers repeats in ~µs. Within one run fingerprint dedup
	// already guarantees at most one solve per unique scenario. A cache
	// shard fault (plancache.UnavailableError) downgrades that unique to a
	// direct uncached solve instead of failing its samples.
	Cache *plancache.Cache
	// Retry, when configured with MaxAttempts > 1, retries transient
	// per-unique solve failures (injected faults, shard hiccups) with the
	// policy's backoff before counting the unique as failed. The zero
	// value keeps the historical single-attempt behaviour.
	Retry degrade.RetryPolicy
	// OnProgress, when set, is called after each unique scenario completes.
	// Calls are serialised but may come from pool goroutines; it must be
	// cheap.
	OnProgress func(Progress)
}

// withDefaults returns the spec with zero fields defaulted.
func (spec Spec) withDefaults() Spec {
	if spec.Samples == 0 {
		spec.Samples = DefaultSamples
	}
	if spec.Algorithm == "" {
		spec.Algorithm = "ISP"
	}
	if spec.Alpha == 0 {
		spec.Alpha = DefaultAlpha
	}
	if spec.ConsensusThreshold == 0 {
		spec.ConsensusThreshold = DefaultConsensusThreshold
	}
	return spec
}

// Validate checks the spec (after defaulting zero fields, matching what Run
// executes).
func (spec Spec) Validate() error {
	spec = spec.withDefaults()
	if spec.Scenario == nil {
		return errors.New("ensemble: nil scenario")
	}
	if err := spec.Scenario.Validate(); err != nil {
		return err
	}
	if err := spec.Sampler.Validate(); err != nil {
		return err
	}
	if spec.Samples < 1 {
		return fmt.Errorf("ensemble: samples must be >= 1, got %d", spec.Samples)
	}
	if spec.Alpha <= 0 || spec.Alpha >= 1 {
		return fmt.Errorf("ensemble: alpha must be in (0, 1), got %g", spec.Alpha)
	}
	if spec.ConsensusThreshold <= 0 || spec.ConsensusThreshold > 1 {
		return fmt.Errorf("ensemble: consensus threshold must be in (0, 1], got %g", spec.ConsensusThreshold)
	}
	return nil
}

// unique is one distinct sampled scenario with its multiplicity and solve
// result.
type unique struct {
	scn   *scenario.Scenario
	fp    [32]byte
	count int

	plan    *scenario.Plan
	outcome plancache.Outcome
	cached  bool // plan came through the cache (outcome meaningful)
	errStr  string
}

// Run executes the ensemble: draw Samples disruptions, deduplicate by
// scenario fingerprint, solve each unique scenario once on a bounded worker
// pool (through the plan cache when configured), and aggregate the plans
// into a Report. The report is deterministic for a fixed (scenario, sampler,
// seed) across runs and worker counts; see Report.
//
// Individual solve failures do not abort the run — their samples are
// excluded and counted in Report.Failures — but a cancelled context does,
// returning ctx.Err().
func Run(ctx context.Context, spec Spec) (*Report, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	base := spec.Scenario

	// Draw the ensemble and deduplicate by fingerprint in one sequential
	// pass; first-occurrence order is the canonical unique order everything
	// downstream iterates in.
	uniques := make([]*unique, 0, spec.Samples)
	index := make(map[[32]byte]*unique, spec.Samples)
	for i := 0; i < spec.Samples; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d := spec.Sampler.Sample(base.Supply, sampleRand(spec.Seed, i))
		bn := make(map[graph.NodeID]bool, len(base.BrokenNodes)+len(d.Nodes))
		for v, broken := range base.BrokenNodes {
			if broken {
				bn[v] = true
			}
		}
		for v := range d.Nodes {
			bn[v] = true
		}
		be := make(map[graph.EdgeID]bool, len(base.BrokenEdges)+len(d.Edges))
		for e, broken := range base.BrokenEdges {
			if broken {
				be[e] = true
			}
		}
		for e := range d.Edges {
			be[e] = true
		}
		// Samples share the base supply and demand graphs: solvers never
		// mutate their input scenario (they clone), so only the broken sets
		// need to be owned per sample.
		scn := &scenario.Scenario{
			Supply:      base.Supply,
			Demand:      base.Demand,
			BrokenNodes: bn,
			BrokenEdges: be,
		}
		fp := scn.Fingerprint()
		if u, ok := index[fp]; ok {
			u.count++
			continue
		}
		u := &unique{scn: scn, fp: fp, count: 1}
		index[fp] = u
		uniques = append(uniques, u)
	}

	// Solve each unique scenario once on the bounded pool.
	params := heuristics.Params{
		Fast:         spec.Fast,
		OPTTimeLimit: spec.OPTTimeLimit,
		OPTMaxNodes:  spec.OPTMaxNodes,
		OPTWorkers:   spec.SolverWorkers,
	}
	if _, err := heuristics.New(spec.Algorithm, params); err != nil {
		return nil, err
	}
	optionsDigest := plancache.ParamsDigest(params)
	var (
		progressMu sync.Mutex
		done       int
	)
	advance := func(n int) {
		if spec.OnProgress == nil {
			return
		}
		progressMu.Lock()
		done += n
		p := Progress{Done: done, Total: spec.Samples}
		spec.OnProgress(p)
		progressMu.Unlock()
	}
	err := sweep.ForEach(ctx, spec.Workers, len(uniques), func(ctx context.Context, i int) error {
		u := uniques[i]
		solveOnce := func(ctx context.Context) (*scenario.Plan, error) {
			// A fresh solver per solve: registry factories hand out
			// independent instances, keeping the pool data-race free.
			// Registry solvers arrive panic-guarded (heuristics.Guard), so
			// a solver bug fails this unique's samples, never the run.
			solver, err := heuristics.New(spec.Algorithm, params)
			if err != nil {
				return nil, err
			}
			return solver.Solve(ctx, u.scn)
		}
		solve := func(ctx context.Context) (*scenario.Plan, error) {
			var plan *scenario.Plan
			_, err := spec.Retry.Retry(ctx, func() error {
				p, serr := solveOnce(ctx)
				if serr != nil {
					return serr
				}
				plan = p
				return nil
			})
			return plan, err
		}
		var (
			plan *scenario.Plan
			err  error
		)
		if spec.Cache != nil {
			key := plancache.Key{Fingerprint: u.fp, Algorithm: spec.Algorithm, Options: optionsDigest}
			plan, u.outcome, _, err = spec.Cache.Do(ctx, key, solve)
			u.cached = true
			var unavailable *plancache.UnavailableError
			if errors.As(err, &unavailable) {
				// The cache shard failed, not the solver: downgrade this
				// unique to a direct uncached solve.
				u.cached = false
				plan, err = solve(ctx)
			}
		} else {
			plan, err = solve(ctx)
		}
		if err != nil {
			// Cancellation aborts the whole run; any other failure is
			// isolated to this unique scenario's samples.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			u.errStr = err.Error()
			advance(u.count)
			return nil
		}
		u.plan = plan
		advance(u.count)
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := aggregate(spec, uniques)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// aggregate folds the solved uniques into the report, visiting them in draw
// order so every floating-point accumulation is reproducible.
func aggregate(spec Spec, uniques []*unique) *Report {
	rep := &Report{
		Algorithm:   spec.Algorithm,
		Samples:     spec.Samples,
		Unique:      len(uniques),
		Deduped:     spec.Samples - len(uniques),
		Alpha:       spec.Alpha,
		TotalDemand: spec.Scenario.Demand.TotalFlow(),
		Repairs:     []RepairStat{},
	}

	evaluated := make([]*unique, 0, len(uniques))
	evaluatedSamples := 0
	for _, u := range uniques {
		if !u.cached {
			rep.Solves++ // direct solve (attempted even when it failed)
		} else {
			switch u.outcome {
			case plancache.Hit:
				rep.CacheHits++
			case plancache.Coalesced:
				rep.Coalesced++
			default:
				rep.Solves++
			}
		}
		if u.plan == nil {
			rep.Failures++
			if rep.FirstError == "" {
				rep.FirstError = u.errStr
			}
			continue
		}
		evaluated = append(evaluated, u)
		evaluatedSamples += u.count
	}
	rep.HitRatio = float64(rep.Samples-rep.Solves) / float64(rep.Samples)

	// Per-sample metric distributions over the evaluated uniques.
	n := len(evaluated)
	broken := make([]float64, n)
	cost := make([]float64, n)
	loss := make([]float64, n)
	ratio := make([]float64, n)
	weights := make([]int, n)
	for i, u := range evaluated {
		bn, be := u.scn.NumBroken()
		broken[i] = float64(bn + be)
		cost[i] = repairCostSorted(u.scn, u.plan.RepairedNodes, u.plan.RepairedEdges)
		l := u.plan.TotalDemand - u.plan.SatisfiedDemand
		if l < 0 {
			l = 0
		}
		loss[i] = l
		ratio[i] = u.plan.SatisfactionRatio()
		weights[i] = u.count
	}
	rep.BrokenElements = computeDist(broken, weights, spec.Alpha, true)
	rep.RepairCost = computeDist(cost, weights, spec.Alpha, true)
	rep.FlowLoss = computeDist(loss, weights, spec.Alpha, true)
	rep.SatisfiedRatio = computeDist(ratio, weights, spec.Alpha, false)

	// Repair frequencies: how often each element is broken, and how often
	// the per-sample optimal plan repairs it, across evaluated samples.
	nodeBroken := make(map[graph.NodeID]int)
	nodeRepaired := make(map[graph.NodeID]int)
	edgeBroken := make(map[graph.EdgeID]int)
	edgeRepaired := make(map[graph.EdgeID]int)
	for _, u := range evaluated {
		for _, v := range u.scn.SortedBrokenNodes() {
			nodeBroken[v] += u.count
			if u.plan.RepairedNodes[v] {
				nodeRepaired[v] += u.count
			}
		}
		for _, e := range u.scn.SortedBrokenEdges() {
			edgeBroken[e] += u.count
			if u.plan.RepairedEdges[e] {
				edgeRepaired[e] += u.count
			}
		}
	}
	consensusNodes := make(map[graph.NodeID]bool)
	consensusEdges := make(map[graph.EdgeID]bool)
	appendStat := func(kind string, id, brokenCount, repairedCount int) RepairStat {
		st := RepairStat{Kind: kind, ID: id, Broken: brokenCount, Repaired: repairedCount}
		if evaluatedSamples > 0 {
			st.Frequency = float64(repairedCount) / float64(evaluatedSamples)
		}
		if brokenCount > 0 {
			st.ConditionalFrequency = float64(repairedCount) / float64(brokenCount)
		}
		return st
	}
	nodeIDs := make([]int, 0, len(nodeBroken))
	for v := range nodeBroken {
		nodeIDs = append(nodeIDs, int(v))
	}
	sort.Ints(nodeIDs)
	for _, v := range nodeIDs {
		id := graph.NodeID(v)
		st := appendStat("node", v, nodeBroken[id], nodeRepaired[id])
		rep.Repairs = append(rep.Repairs, st)
		if st.Frequency >= spec.ConsensusThreshold {
			consensusNodes[id] = true
		}
	}
	edgeIDs := make([]int, 0, len(edgeBroken))
	for e := range edgeBroken {
		edgeIDs = append(edgeIDs, int(e))
	}
	sort.Ints(edgeIDs)
	for _, e := range edgeIDs {
		id := graph.EdgeID(e)
		st := appendStat("link", e, edgeBroken[id], edgeRepaired[id])
		rep.Repairs = append(rep.Repairs, st)
		if st.Frequency >= spec.ConsensusThreshold {
			consensusEdges[id] = true
		}
	}

	rep.Consensus = buildConsensus(spec, evaluated, evaluatedSamples, consensusNodes, consensusEdges)
	return rep
}

// buildConsensus evaluates the high-frequency repair set against every
// evaluated sample: per sample, repair the consensus elements that are
// actually broken there, pay their cost, and measure the demand the greedy
// router restores.
func buildConsensus(spec Spec, evaluated []*unique, evaluatedSamples int, nodes map[graph.NodeID]bool, edges map[graph.EdgeID]bool) Consensus {
	c := Consensus{
		Threshold: spec.ConsensusThreshold,
		Nodes:     []int{},
		Links:     []int{},
	}
	for v := range nodes {
		c.Nodes = append(c.Nodes, int(v))
	}
	sort.Ints(c.Nodes)
	for e := range edges {
		c.Links = append(c.Links, int(e))
	}
	sort.Ints(c.Links)
	if len(evaluated) == 0 {
		return c
	}
	n := len(evaluated)
	costs := make([]float64, n)
	ratios := make([]float64, n)
	weights := make([]int, n)
	fullSatisfied := 0
	totalDemand := spec.Scenario.Demand.TotalFlow()
	for i, u := range evaluated {
		// Only consensus elements broken in this sample are repaired (and
		// paid for).
		rn := make(map[graph.NodeID]bool)
		for v := range nodes {
			if u.scn.BrokenNodes[v] {
				rn[v] = true
			}
		}
		re := make(map[graph.EdgeID]bool)
		for e := range edges {
			if u.scn.BrokenEdges[e] {
				re[e] = true
			}
		}
		costs[i] = repairCostSorted(u.scn, rn, re)
		satisfied := evaluateRepairs(u.scn, rn, re)
		r := 1.0
		if totalDemand > 0 {
			r = satisfied / totalDemand
			if r > 1 {
				r = 1
			}
		}
		ratios[i] = r
		weights[i] = u.count
		if r >= 1-1e-9 {
			fullSatisfied += u.count
		}
	}
	dist := computeDist(costs, weights, spec.Alpha, true)
	c.MeanCost = dist.Mean
	c.SatisfiedRatio = computeDist(ratios, weights, spec.Alpha, false)
	c.FullSatisfied = float64(fullSatisfied) / float64(evaluatedSamples)
	return c
}
