package ensemble

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/faultinject"
	"netrecovery/internal/graph"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/plancache"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// failSolver always errors; registered once to exercise failure isolation.
type failSolver struct{}

func (failSolver) Name() string { return "FAIL-TEST" }
func (failSolver) Solve(context.Context, *scenario.Scenario) (*scenario.Plan, error) {
	return nil, errors.New("boom")
}

func init() {
	heuristics.Register(heuristics.Info{
		Name:        "FAIL-TEST",
		Description: "always fails (ensemble tests)",
	}, func(heuristics.Params) heuristics.Solver { return failSolver{} })
}

// bellScenario is the Quick Bell-Canada instance with an intact network; the
// sampler provides all the damage.
func bellScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	g := topology.BellCanada()
	dg, err := demand.GenerateFarApartPairs(g, 4, 10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("generate demand: %v", err)
	}
	return &scenario.Scenario{
		Supply:      g,
		Demand:      dg,
		BrokenNodes: map[graph.NodeID]bool{},
		BrokenEdges: map[graph.EdgeID]bool{},
	}
}

// tinyScenario is a 3-node path with the first link already broken: the only
// route of the single demand pair runs through it, so every optimal plan must
// repair it.
func tinyScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	g := graph.New(3, 2)
	for i := 0; i < 3; i++ {
		g.AddNode("", float64(i), 0, 1)
	}
	e01 := g.MustAddEdge(0, 1, 10, 7)
	g.MustAddEdge(1, 2, 10, 3)
	dg := demand.New()
	dg.MustAdd(0, 2, 5)
	return &scenario.Scenario{
		Supply:      g,
		Demand:      dg,
		BrokenNodes: map[graph.NodeID]bool{},
		BrokenEdges: map[graph.EdgeID]bool{e01: true},
	}
}

func TestSamplerValidate(t *testing.T) {
	cases := []struct {
		spec SamplerSpec
		want string // substring of the error, "" = valid
	}{
		{SamplerSpec{Model: ModelBernoulli, NodeProb: 0.2, EdgeProb: 0.1}, ""},
		{SamplerSpec{Model: ModelGeographic, Variance: 4, PeakProbability: 0.8}, ""},
		{SamplerSpec{Model: ModelCascade, SeedProb: 0.1, Spread: 0.5, EdgeProb: 0.5}, ""},
		{SamplerSpec{}, "model is required"},
		{SamplerSpec{Model: "meteor"}, "unknown sampler model"},
		{SamplerSpec{Model: ModelBernoulli, NodeProb: 1.5}, "node_prob"},
		{SamplerSpec{Model: ModelBernoulli, EdgeProb: -0.1}, "edge_prob"},
		{SamplerSpec{Model: ModelGeographic, Variance: 0}, "variance"},
		{SamplerSpec{Model: ModelGeographic, Variance: 4, EpicenterJitter: -1}, "epicenter_jitter"},
		{SamplerSpec{Model: ModelGeographic, Variance: 4, PeakProbability: 2}, "peak_probability"},
		{SamplerSpec{Model: ModelCascade, SeedProb: 0.1, Spread: 2}, "spread"},
		{SamplerSpec{Model: ModelCascade, SeedProb: 0.1, Rounds: -1}, "rounds"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%+v: unexpected error %v", tc.spec, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%+v: want error containing %q, got %v", tc.spec, tc.want, err)
		}
	}
}

// TestSamplerSeedStability pins the wrapper layer: the same rng seed draws the
// same disruption, and the wrappers consume the rng exactly like the
// underlying disruption generators (satellite: Random/Geographic stability
// under the new sampler wrappers).
func TestSamplerSeedStability(t *testing.T) {
	g := topology.BellCanada()
	specs := []SamplerSpec{
		{Model: ModelBernoulli, NodeProb: 0.2, EdgeProb: 0.15},
		{Model: ModelGeographic, Variance: 25, PeakProbability: 0.9},
		{Model: ModelGeographic, Variance: 25, PeakProbability: 0.9, EpicenterJitter: 3},
		{Model: ModelCascade, SeedProb: 0.1, Spread: 0.4, EdgeProb: 0.5},
	}
	for _, sp := range specs {
		a := sp.Sample(g, rand.New(rand.NewSource(42)))
		b := sp.Sample(g, rand.New(rand.NewSource(42)))
		if !reflect.DeepEqual(a.Nodes, b.Nodes) || !reflect.DeepEqual(a.Edges, b.Edges) {
			t.Errorf("%s: same seed drew different disruptions", sp.Model)
		}
	}

	// The bernoulli wrapper is exactly disruption.Random.
	sp := SamplerSpec{Model: ModelBernoulli, NodeProb: 0.25, EdgeProb: 0.1}
	got := sp.Sample(g, rand.New(rand.NewSource(9)))
	want := disruption.Random(g, 0.25, 0.1, rand.New(rand.NewSource(9)))
	if !reflect.DeepEqual(got.Nodes, want.Nodes) || !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Error("bernoulli wrapper diverged from disruption.Random")
	}

	// The zero-jitter geographic wrapper is exactly disruption.Geographic in
	// auto-epicentre mode.
	sp = SamplerSpec{Model: ModelGeographic, Variance: 25, PeakProbability: 0.9}
	got = sp.Sample(g, rand.New(rand.NewSource(9)))
	want = disruption.Geographic(g, disruption.GeographicConfig{
		Auto: true, Variance: 25, PeakProbability: 0.9,
	}, rand.New(rand.NewSource(9)))
	if !reflect.DeepEqual(got.Nodes, want.Nodes) || !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Error("geographic wrapper diverged from disruption.Geographic")
	}
}

func TestSampleRandIndependentStreams(t *testing.T) {
	// Stream i is a pure function of (seed, i): sample 500 never depends on
	// samples 0..499, and neighbouring indices decorrelate.
	if sampleRand(7, 500).Int63() != sampleRand(7, 500).Int63() {
		t.Error("sampleRand is not reproducible")
	}
	if sampleRand(7, 0).Int63() == sampleRand(7, 1).Int63() {
		t.Error("neighbouring sample streams coincide")
	}
	if sampleRand(7, 0).Int63() == sampleRand(8, 0).Int63() {
		t.Error("different seeds yield the same stream")
	}
}

func TestComputeDist(t *testing.T) {
	// values expanded by multiplicity: [1, 2, 3, 3].
	d := computeDist([]float64{1, 2, 3}, []int{1, 1, 2}, 0.5, true)
	if d.Mean != 2.25 {
		t.Errorf("mean: got %g want 2.25", d.Mean)
	}
	if d.Min != 1 || d.Max != 3 {
		t.Errorf("min/max: got %g/%g", d.Min, d.Max)
	}
	if d.P50 != 2 {
		t.Errorf("p50: got %g want 2 (nearest-rank)", d.P50)
	}
	if d.P99 != 3 {
		t.Errorf("p99: got %g want 3", d.P99)
	}
	if d.CVaR != 3 {
		t.Errorf("cvar (worst-high, tail 2): got %g want 3", d.CVaR)
	}
	low := computeDist([]float64{1, 2, 3}, []int{1, 1, 2}, 0.5, false)
	if low.CVaR != 1.5 {
		t.Errorf("cvar (worst-low, tail 2): got %g want 1.5", low.CVaR)
	}
	if empty := computeDist(nil, nil, 0.95, true); empty != (Dist{}) {
		t.Errorf("empty dist: got %+v", empty)
	}
}

func TestRunValidation(t *testing.T) {
	base := tinyScenario(t)
	sampler := SamplerSpec{Model: ModelBernoulli, NodeProb: 0.1}
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"nil scenario", Spec{Sampler: sampler}, "nil scenario"},
		{"bad sampler", Spec{Scenario: base, Sampler: SamplerSpec{Model: "x"}}, "unknown sampler model"},
		{"negative samples", Spec{Scenario: base, Sampler: sampler, Samples: -1}, "samples"},
		{"alpha too high", Spec{Scenario: base, Sampler: sampler, Alpha: 1.5}, "alpha"},
		{"threshold too high", Spec{Scenario: base, Sampler: sampler, ConsensusThreshold: 1.5}, "consensus threshold"},
		{"unknown algorithm", Spec{Scenario: base, Sampler: sampler, Samples: 2, Algorithm: "NOPE"}, "NOPE"},
	}
	for _, tc := range cases {
		if _, err := Run(context.Background(), tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Spec{
		Scenario: tinyScenario(t),
		Sampler:  SamplerSpec{Model: ModelBernoulli, NodeProb: 0.1},
		Samples:  10,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunConsensusOnForcedBreak drives the full path on a scenario whose base
// damage forces one specific repair in every sample, pinning the aggregation
// numbers exactly.
func TestRunConsensusOnForcedBreak(t *testing.T) {
	base := tinyScenario(t)
	rep, err := Run(context.Background(), Spec{
		Scenario: base,
		// Zero-probability sampler: every sample is the base scenario itself.
		Sampler: SamplerSpec{Model: ModelBernoulli},
		Samples: 25,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 25 || rep.Unique != 1 || rep.Deduped != 24 {
		t.Fatalf("dedup: got samples=%d unique=%d deduped=%d", rep.Samples, rep.Unique, rep.Deduped)
	}
	if rep.Solves != 1 || rep.CacheHits != 0 || rep.Failures != 0 {
		t.Fatalf("counters: got solves=%d hits=%d failures=%d", rep.Solves, rep.CacheHits, rep.Failures)
	}
	if want := 24.0 / 25.0; rep.HitRatio != want {
		t.Errorf("hit ratio: got %g want %g", rep.HitRatio, want)
	}
	if rep.TotalDemand != 5 {
		t.Errorf("total demand: got %g want 5", rep.TotalDemand)
	}
	if rep.BrokenElements.Mean != 1 || rep.BrokenElements.Std != 0 {
		t.Errorf("broken elements: got %+v", rep.BrokenElements)
	}
	if rep.RepairCost.Mean != 7 {
		t.Errorf("repair cost mean: got %g want 7 (edge 0)", rep.RepairCost.Mean)
	}
	if rep.FlowLoss.Max != 0 {
		t.Errorf("flow loss: got %+v, plan should restore everything", rep.FlowLoss)
	}
	if rep.SatisfiedRatio.Min != 1 {
		t.Errorf("satisfied ratio: got %+v", rep.SatisfiedRatio)
	}
	want := []RepairStat{{
		Kind: "link", ID: 0, Broken: 25, Repaired: 25,
		Frequency: 1, ConditionalFrequency: 1,
	}}
	if !reflect.DeepEqual(rep.Repairs, want) {
		t.Errorf("repairs: got %+v want %+v", rep.Repairs, want)
	}
	c := rep.Consensus
	if !reflect.DeepEqual(c.Links, []int{0}) || len(c.Nodes) != 0 {
		t.Errorf("consensus sets: got nodes=%v links=%v", c.Nodes, c.Links)
	}
	if c.MeanCost != 7 || c.FullSatisfied != 1 || c.SatisfiedRatio.Min != 1 {
		t.Errorf("consensus evaluation: got %+v", c)
	}
}

func TestRunFailureIsolation(t *testing.T) {
	rep, err := Run(context.Background(), Spec{
		Scenario:  tinyScenario(t),
		Sampler:   SamplerSpec{Model: ModelBernoulli},
		Samples:   10,
		Algorithm: "FAIL-TEST",
	})
	if err != nil {
		t.Fatalf("solve failures must not abort the run: %v", err)
	}
	if rep.Failures != 1 || rep.FirstError != "boom" {
		t.Fatalf("failures: got %d (%q)", rep.Failures, rep.FirstError)
	}
	if rep.Solves != 1 {
		t.Errorf("failed solves still count as attempts: got %d", rep.Solves)
	}
	if rep.SatisfiedRatio != (Dist{}) || len(rep.Repairs) != 0 {
		t.Errorf("failed samples must be excluded from statistics: %+v", rep)
	}
	if len(rep.Consensus.Nodes) != 0 || len(rep.Consensus.Links) != 0 {
		t.Errorf("consensus of an all-failed run must be empty: %+v", rep.Consensus)
	}
}

func TestRunProgress(t *testing.T) {
	var events []Progress
	rep, err := Run(context.Background(), Spec{
		Scenario:   bellScenario(t),
		Sampler:    SamplerSpec{Model: ModelCascade, SeedProb: 0.05, Spread: 0.3, EdgeProb: 0.4},
		Samples:    40,
		Seed:       5,
		Fast:       true,
		Workers:    4,
		OnProgress: func(p Progress) { events = append(events, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != rep.Unique {
		t.Fatalf("one progress event per unique scenario: got %d want %d", len(events), rep.Unique)
	}
	prev := 0
	for _, p := range events {
		if p.Total != 40 {
			t.Fatalf("total must be the sample count: got %d", p.Total)
		}
		if p.Done <= prev {
			t.Fatalf("done must strictly increase: %d after %d", p.Done, prev)
		}
		prev = p.Done
	}
	if prev != 40 {
		t.Fatalf("final done must equal samples: got %d", prev)
	}
}

func TestRunCacheReuse(t *testing.T) {
	cache := plancache.New(plancache.Config{})
	spec := Spec{
		Scenario: bellScenario(t),
		Sampler:  SamplerSpec{Model: ModelCascade, SeedProb: 0.05, Spread: 0.3, EdgeProb: 0.4},
		Samples:  60,
		Seed:     11,
		Fast:     true,
		Cache:    cache,
	}
	first, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Solves != first.Unique || first.CacheHits != 0 {
		t.Fatalf("fresh cache: got solves=%d hits=%d unique=%d", first.Solves, first.CacheHits, first.Unique)
	}
	second, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Solves != 0 || second.CacheHits != second.Unique {
		t.Fatalf("warm cache: got solves=%d hits=%d unique=%d", second.Solves, second.CacheHits, second.Unique)
	}
	if second.HitRatio != 1 {
		t.Errorf("warm hit ratio: got %g want 1", second.HitRatio)
	}
	// The statistics must not depend on where the plans came from.
	if !reflect.DeepEqual(first.RepairCost, second.RepairCost) ||
		!reflect.DeepEqual(first.SatisfiedRatio, second.SatisfiedRatio) ||
		!reflect.DeepEqual(first.Repairs, second.Repairs) ||
		!reflect.DeepEqual(first.Consensus, second.Consensus) {
		t.Error("cached and solved runs disagree on the aggregated statistics")
	}
}

// TestRunDeterministicAcrossWorkers is the determinism property: the same
// (topology, sampler config, seed) produces a byte-identical wire-encoded
// report across runs AND across worker counts.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a Bell-Canada ensemble seven times")
	}
	samplers := []SamplerSpec{
		{Model: ModelBernoulli, NodeProb: 0.06, EdgeProb: 0.05},
		{Model: ModelCascade, SeedProb: 0.04, Spread: 0.35, EdgeProb: 0.5},
	}
	for _, sampler := range samplers {
		encode := func(workers int) []byte {
			spec := Spec{
				Scenario: bellScenario(t),
				Sampler:  sampler,
				Samples:  80,
				Seed:     21,
				Fast:     true,
				Workers:  workers,
			}
			rep, err := Run(context.Background(), spec)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", sampler.Model, workers, err)
			}
			raw, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			return raw
		}
		ref := encode(1)
		for _, workers := range []int{1, 2, 4} {
			if got := encode(workers); string(got) != string(ref) {
				t.Fatalf("%s: report bytes differ at workers=%d", sampler.Model, workers)
			}
		}
	}
}

// TestThousandSampleEnsemble is the acceptance-scale run (the nightly job
// repeats it under -race): 1000 geographic-model samples over Quick
// Bell-Canada, solved with fast ISP through a fresh plan cache.
func TestThousandSampleEnsemble(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-sample ensemble")
	}
	rep, err := Run(context.Background(), Spec{
		Scenario: bellScenario(t),
		Sampler:  SamplerSpec{Model: ModelBernoulli, NodeProb: 0.08, EdgeProb: 0.08},
		Samples:  1000,
		Seed:     1,
		Fast:     true,
		Cache:    plancache.New(plancache.Config{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 1000 || rep.Unique < 2 || rep.Unique > 1000 {
		t.Fatalf("samples/unique: got %d/%d", rep.Samples, rep.Unique)
	}
	if rep.Deduped != rep.Samples-rep.Unique {
		t.Errorf("deduped: got %d want %d", rep.Deduped, rep.Samples-rep.Unique)
	}
	if rep.Solves != rep.Unique {
		t.Errorf("fresh cache must solve each unique scenario once: solves=%d unique=%d", rep.Solves, rep.Unique)
	}
	if want := float64(rep.Samples-rep.Solves) / float64(rep.Samples); rep.HitRatio != want {
		t.Errorf("hit ratio: got %g want %g", rep.HitRatio, want)
	}
	if rep.Failures != 0 {
		t.Fatalf("unexpected failures: %d (%s)", rep.Failures, rep.FirstError)
	}
	if rep.TotalDemand != 40 {
		t.Errorf("total demand: got %g want 40", rep.TotalDemand)
	}
	if rep.SatisfiedRatio.Mean <= 0 || rep.SatisfiedRatio.Mean > 1 {
		t.Errorf("satisfied ratio mean out of range: %g", rep.SatisfiedRatio.Mean)
	}
	if rep.SatisfiedRatio.CVaR > rep.SatisfiedRatio.Mean {
		t.Errorf("satisfaction CVaR (worst tail) above the mean: %g > %g", rep.SatisfiedRatio.CVaR, rep.SatisfiedRatio.Mean)
	}
	if rep.RepairCost.CVaR < rep.RepairCost.Mean {
		t.Errorf("cost CVaR (worst tail) below the mean: %g < %g", rep.RepairCost.CVaR, rep.RepairCost.Mean)
	}
	// Repairs are canonical: nodes first, then links, IDs ascending, and the
	// consensus sets are exactly the high-frequency repairs.
	seenLink := false
	prevID := -1
	var consensusNodes, consensusLinks []int
	for _, st := range rep.Repairs {
		switch st.Kind {
		case "node":
			if seenLink {
				t.Fatal("node stat after link stats")
			}
		case "link":
			if !seenLink {
				seenLink = true
				prevID = -1
			}
		default:
			t.Fatalf("unknown repair kind %q", st.Kind)
		}
		if st.ID <= prevID {
			t.Fatalf("repair IDs not ascending: %d after %d", st.ID, prevID)
		}
		prevID = st.ID
		if st.Repaired > st.Broken {
			t.Fatalf("element %s/%d repaired more often than broken", st.Kind, st.ID)
		}
		if st.Frequency >= rep.Consensus.Threshold {
			if st.Kind == "node" {
				consensusNodes = append(consensusNodes, st.ID)
			} else {
				consensusLinks = append(consensusLinks, st.ID)
			}
		}
	}
	if !reflect.DeepEqual(rep.Consensus.Nodes, orEmpty(consensusNodes)) ||
		!reflect.DeepEqual(rep.Consensus.Links, orEmpty(consensusLinks)) {
		t.Errorf("consensus sets disagree with repair frequencies: %+v vs nodes=%v links=%v",
			rep.Consensus, consensusNodes, consensusLinks)
	}
	if r := rep.Consensus.SatisfiedRatio.Mean; r < 0 || r > 1 {
		t.Errorf("consensus satisfied ratio out of range: %g", r)
	}
}

func orEmpty(ids []int) []int {
	if ids == nil {
		return []int{}
	}
	return ids
}

func TestEvaluateRepairsRoutesThroughRepairedOnly(t *testing.T) {
	s := tinyScenario(t)
	none := evaluateRepairs(s, nil, nil)
	if none != 0 {
		t.Errorf("broken unrepaired edge must block the flow, got %g", none)
	}
	all := evaluateRepairs(s, nil, map[graph.EdgeID]bool{0: true})
	if math.Abs(all-5) > 1e-9 {
		t.Errorf("repairing edge 0 must restore the full demand, got %g", all)
	}
}

// TestRunPanicIsolation: a solver panic (injected at the solver fault point)
// fails only that unique's samples — the run itself completes with the panic
// converted to a typed error, never unwinding into the pool.
func TestRunPanicIsolation(t *testing.T) {
	faultinject.Arm(faultinject.Profile{Seed: 11, Points: map[faultinject.Point]faultinject.Spec{
		faultinject.PointSolver: {PanicRate: 1},
	}})
	defer faultinject.Disarm()

	rep, err := Run(context.Background(), Spec{
		Scenario: tinyScenario(t),
		Sampler:  SamplerSpec{Model: ModelBernoulli},
		Samples:  10,
	})
	if err != nil {
		t.Fatalf("solver panics must not abort the run: %v", err)
	}
	if rep.Failures != rep.Unique || rep.Failures == 0 {
		t.Fatalf("every unique must fail under PanicRate 1: failures=%d unique=%d", rep.Failures, rep.Unique)
	}
	if !strings.Contains(rep.FirstError, "panic") {
		t.Fatalf("FirstError should carry the recovered panic, got %q", rep.FirstError)
	}
	if st := faultinject.Snapshot(); st.Panics == 0 {
		t.Fatalf("no injected panics recorded: %+v", st)
	}
}
