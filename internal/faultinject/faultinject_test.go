package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Fault injection is process-global, so every test disarms on exit.
func arm(t *testing.T, p Profile) {
	t.Helper()
	Arm(p)
	t.Cleanup(Disarm)
}

func TestDisarmedFireIsNil(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("Armed after Disarm")
	}
	for i := 0; i < 1000; i++ {
		if err := Fire(context.Background(), PointSolver); err != nil {
			t.Fatalf("disarmed Fire returned %v", err)
		}
	}
	if s := Snapshot(); s != (Stats{}) {
		t.Fatalf("disarmed Snapshot = %+v", s)
	}
}

func TestErrorRateDeterministic(t *testing.T) {
	run := func() []int {
		arm(t, Profile{Seed: 7, Points: map[Point]Spec{
			PointSolver: {ErrorRate: 0.3},
		}})
		var errIdx []int
		for i := 0; i < 200; i++ {
			if err := Fire(context.Background(), PointSolver); err != nil {
				errIdx = append(errIdx, i)
			}
		}
		return errIdx
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("0.3 error rate injected nothing in 200 calls")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d errors", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic error positions: %v vs %v", a, b)
		}
	}
	// ~30% of 200: accept a generous deterministic band.
	if len(a) < 30 || len(a) > 90 {
		t.Fatalf("error count %d far from 30%% of 200", len(a))
	}
}

func TestInjectedErrorIsTransient(t *testing.T) {
	arm(t, Profile{Seed: 1, Points: map[Point]Spec{PointSolver: {ErrorRate: 1}}})
	err := Fire(context.Background(), PointSolver)
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Point != PointSolver {
		t.Fatalf("err = %v", err)
	}
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Fatal("InjectedError must declare Transient() = true")
	}
}

func TestPanicRate(t *testing.T) {
	arm(t, Profile{Seed: 3, Points: map[Point]Spec{PointSolver: {PanicRate: 1}}})
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Point != PointSolver {
			t.Fatalf("recover() = %v", r)
		}
		if s := Snapshot(); s.Panics != 1 {
			t.Fatalf("Snapshot = %+v", s)
		}
	}()
	Fire(context.Background(), PointSolver)
	t.Fatal("Fire must panic at PanicRate 1")
}

func TestDelayHonorsContext(t *testing.T) {
	arm(t, Profile{Seed: 1, Points: map[Point]Spec{PointSSE: {Delay: time.Hour}}})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Fire(ctx, PointSSE)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("delayed Fire ignored context cancellation")
	}
}

func TestUnarmedPointIsFree(t *testing.T) {
	arm(t, Profile{Seed: 1, Points: map[Point]Spec{PointSolver: {ErrorRate: 1}}})
	if err := Fire(context.Background(), PointSSE); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if s := Snapshot(); s.Fires != 0 {
		t.Fatalf("unarmed point counted a fire: %+v", s)
	}
}

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile([]byte(`{"seed": 7, "points": {"solver": {"delay_ms": 25, "error_rate": 0.1}}}`))
	if err != nil {
		t.Fatal(err)
	}
	spec := p.Points[PointSolver]
	if p.Seed != 7 || spec.Delay != 25*time.Millisecond || spec.ErrorRate != 0.1 {
		t.Fatalf("profile = %+v", p)
	}

	if _, err := ParseProfile([]byte(`{"points": {"sovler": {}}}`)); err == nil {
		t.Fatal("typo'd point name must be rejected")
	}
	if _, err := ParseProfile([]byte(`{"points": {"solver": {"error_rate": 1.5}}}`)); err == nil {
		t.Fatal("out-of-range rate must be rejected")
	}
	if _, err := ParseProfile([]byte(`not json`)); err == nil {
		t.Fatal("invalid JSON must be rejected")
	}
}

func TestSnapshotCounters(t *testing.T) {
	arm(t, Profile{Seed: 9, Points: map[Point]Spec{
		PointSolver: {ErrorRate: 0.5},
	}})
	var errs uint64
	for i := 0; i < 100; i++ {
		if Fire(context.Background(), PointSolver) != nil {
			errs++
		}
	}
	s := Snapshot()
	if s.Fires != 100 || s.Errors != errs || s.Delays != 0 || s.Panics != 0 {
		t.Fatalf("Snapshot = %+v, want fires=100 errors=%d", s, errs)
	}
}
