// Package faultinject provides named, seedable fault-injection points for
// the serving stack's chaos tests. Points are compiled in always: when no
// profile is armed, Fire costs a single atomic pointer load and returns
// immediately, so production paths pay nothing. When a profile is armed,
// each point draws deterministic per-call decisions from a splitmix64
// stream keyed by (profile seed, point name, call index) — the n-th call
// at a given point behaves identically across runs regardless of goroutine
// scheduling.
package faultinject

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Point names the places faults can be injected. These strings are pinned
// by fault-profile files and the chaos CI job.
type Point string

const (
	// PointSolver fires at every solver Solve entry (delay / error / panic).
	PointSolver Point = "solver"
	// PointCacheShard fires at plan-cache Do entry (shard unavailable).
	PointCacheShard Point = "cache_shard"
	// PointSSE fires before every SSE event write (slow client).
	PointSSE Point = "sse"
)

// Spec configures one injection point.
type Spec struct {
	// Delay is added to every call at this point (simulates a slow
	// solver or a slow SSE consumer).
	Delay time.Duration `json:"-"`
	// DelayMS mirrors Delay for JSON profiles.
	DelayMS int64 `json:"delay_ms,omitempty"`
	// ErrorRate injects a transient InjectedError on that fraction of
	// calls, decided deterministically per call index. [0,1].
	ErrorRate float64 `json:"error_rate,omitempty"`
	// PanicRate panics (with a PanicValue) on that fraction of calls.
	PanicRate float64 `json:"panic_rate,omitempty"`
}

// Profile is a set of armed injection points sharing one seed.
type Profile struct {
	Seed   uint64         `json:"seed"`
	Points map[Point]Spec `json:"points"`
}

// InjectedError is the transient error produced by an armed ErrorRate.
// It satisfies the structural `Transient() bool` contract consumed by
// internal/degrade's retry policy.
type InjectedError struct {
	Point Point
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected error at %q", e.Point)
}

// Transient marks injected errors as retryable.
func (e *InjectedError) Transient() bool { return true }

// PanicValue is the distinctive value an armed PanicRate panics with, so
// recovery boundaries (and tests) can tell an injected panic from a real
// bug.
type PanicValue struct {
	Point Point
}

func (v PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at %q", v.Point)
}

// Stats counts what an armed profile has done, exported on /metrics.
type Stats struct {
	Fires  uint64 // calls that consulted an armed point
	Delays uint64 // calls that slept
	Errors uint64 // injected errors
	Panics uint64 // injected panics
}

// armed is the immutable armed-profile state swapped in atomically.
type armed struct {
	profile Profile
	// counters holds one atomic call counter per armed point; the map is
	// fixed at Arm time, only the values move.
	counters map[Point]*atomic.Uint64
	stats    struct {
		fires, delays, errors, panics atomic.Uint64
	}
}

// current holds the armed state; nil means disarmed. A single atomic
// pointer load is the entire disarmed-path cost of Fire.
var current atomic.Pointer[armed]

var armMu sync.Mutex

// Arm activates profile process-wide, replacing any previous profile and
// resetting counters. Arming with an empty points map is equivalent to
// Disarm.
func Arm(p Profile) {
	armMu.Lock()
	defer armMu.Unlock()
	if len(p.Points) == 0 {
		current.Store(nil)
		return
	}
	a := &armed{profile: p, counters: make(map[Point]*atomic.Uint64, len(p.Points))}
	for pt, spec := range p.Points {
		if spec.Delay == 0 && spec.DelayMS > 0 {
			spec.Delay = time.Duration(spec.DelayMS) * time.Millisecond
			p.Points[pt] = spec
		}
		a.counters[pt] = new(atomic.Uint64)
	}
	a.profile = p
	current.Store(a)
}

// Disarm deactivates fault injection.
func Disarm() {
	armMu.Lock()
	defer armMu.Unlock()
	current.Store(nil)
}

// Armed reports whether a profile is active.
func Armed() bool { return current.Load() != nil }

// Snapshot returns the armed profile's counters (zero when disarmed).
func Snapshot() Stats {
	a := current.Load()
	if a == nil {
		return Stats{}
	}
	return Stats{
		Fires:  a.stats.fires.Load(),
		Delays: a.stats.delays.Load(),
		Errors: a.stats.errors.Load(),
		Panics: a.stats.panics.Load(),
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func pointHash(pt Point) uint64 {
	h := fnv.New64a()
	h.Write([]byte(pt))
	return h.Sum64()
}

// rate converts a [0,1] fraction into a threshold on a uniform uint64.
func rateThreshold(r float64) uint64 {
	if r <= 0 {
		return 0
	}
	if r >= 1 {
		return ^uint64(0)
	}
	return uint64(r * float64(^uint64(0)))
}

// Fire consults the injection point pt. Disarmed (or pt not in the armed
// profile): returns nil at the cost of one atomic load. Armed: sleeps the
// configured delay (context-aware), then deterministically decides — from
// the profile seed, the point name, and this call's index — whether to
// panic (PanicValue) or return a transient *InjectedError.
func Fire(ctx context.Context, pt Point) error {
	a := current.Load()
	if a == nil {
		return nil
	}
	spec, ok := a.profile.Points[pt]
	if !ok {
		return nil
	}
	n := a.counters[pt].Add(1) - 1
	a.stats.fires.Add(1)
	if spec.Delay > 0 {
		a.stats.delays.Add(1)
		t := time.NewTimer(spec.Delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	if spec.PanicRate > 0 || spec.ErrorRate > 0 {
		u := splitmix64(a.profile.Seed ^ pointHash(pt) ^ n*0x9e3779b97f4a7c15)
		if spec.PanicRate > 0 && u <= rateThreshold(spec.PanicRate) {
			a.stats.panics.Add(1)
			panic(PanicValue{Point: pt})
		}
		// The error decision uses an independent draw so panic and error
		// rates compose without overlapping on the same low values.
		u2 := splitmix64(u)
		if spec.ErrorRate > 0 && u2 <= rateThreshold(spec.ErrorRate) {
			a.stats.errors.Add(1)
			return &InjectedError{Point: pt}
		}
	}
	return nil
}

// ParseProfile decodes a JSON fault profile, e.g.:
//
//	{"seed": 7, "points": {"solver": {"delay_ms": 25, "error_rate": 0.1}}}
//
// Unknown point names are rejected so a typo'd profile fails loudly.
func ParseProfile(data []byte) (Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return Profile{}, fmt.Errorf("faultinject: parse profile: %w", err)
	}
	known := map[Point]bool{PointSolver: true, PointCacheShard: true, PointSSE: true}
	var bad []string
	for pt := range p.Points {
		if !known[pt] {
			bad = append(bad, string(pt))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return Profile{}, fmt.Errorf("faultinject: unknown injection points %v", bad)
	}
	for pt, spec := range p.Points {
		if spec.ErrorRate < 0 || spec.ErrorRate > 1 || spec.PanicRate < 0 || spec.PanicRate > 1 {
			return Profile{}, fmt.Errorf("faultinject: point %q: rates must be in [0,1]", pt)
		}
		if spec.DelayMS < 0 {
			return Profile{}, fmt.Errorf("faultinject: point %q: negative delay", pt)
		}
		spec.Delay = time.Duration(spec.DelayMS) * time.Millisecond
		p.Points[pt] = spec
	}
	return p, nil
}

// LoadProfile reads and parses a profile file (the -fault-profile flag).
func LoadProfile(path string) (Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, fmt.Errorf("faultinject: %w", err)
	}
	return ParseProfile(data)
}
