package sweep

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/graph"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// JobResult is the outcome of one job. Failed jobs carry the error text in
// Err and zero metrics; they are counted but excluded from the statistics.
type JobResult struct {
	Job Job `json:"job"`
	// Cost is the total repair cost of the plan.
	Cost float64 `json:"cost"`
	// SatisfiedRatio is the fraction of the demand the plan routes, in [0,1].
	SatisfiedRatio float64 `json:"satisfied_ratio"`
	// NodeRepairs / EdgeRepairs are the plan's repair counts.
	NodeRepairs int `json:"node_repairs"`
	EdgeRepairs int `json:"edge_repairs"`
	// Runtime is the wall-clock solver time.
	Runtime time.Duration `json:"runtime_ns"`
	// Err is the failure reason ("" on success). Panics inside a solver are
	// isolated and recorded here as "panic: ...".
	Err string `json:"err,omitempty"`
}

// Engine runs a Spec. The zero value plus a Spec is ready to use; Run may
// only be called once per Engine.
type Engine struct {
	Spec Spec
	// OnResult, when set, streams every job result as it completes. Calls
	// are serialized; the callback must not block for long or it throttles
	// the pool.
	OnResult func(JobResult)

	// newSolver overrides solver construction (tests inject failing and
	// panicking solvers through it).
	newSolver func(alg string) (heuristics.Solver, error)
}

// Run expands the spec and executes every job on the worker pool. It returns
// the aggregated report, or the context's error when cancelled before the
// sweep finished. Individual job failures (solver errors, per-job timeouts,
// panics) do not abort the sweep; they are reported per group.
func Run(ctx context.Context, spec Spec) (*Report, error) {
	return (&Engine{Spec: spec}).Run(ctx)
}

// Run executes the engine's spec. See the package-level Run.
func (e *Engine) Run(ctx context.Context) (*Report, error) {
	jobs, err := e.Spec.Expand()
	if err != nil {
		return nil, err
	}
	if e.newSolver == nil {
		e.newSolver = e.buildSolver
	}

	start := time.Now()
	results := make([]JobResult, len(jobs))
	var streamMu sync.Mutex
	err = ForEach(ctx, e.Spec.Workers, len(jobs), func(ctx context.Context, i int) error {
		res := e.runJob(ctx, jobs[i])
		results[i] = res
		// A cancelled context aborts the sweep; every other failure is
		// isolated in the job's result.
		if err := ctx.Err(); err != nil {
			return err
		}
		if e.OnResult != nil {
			streamMu.Lock()
			e.OnResult(res)
			streamMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return buildReport(e.Spec, results, time.Since(start)), nil
}

// runJob executes one job: deterministic scenario construction, solver
// lookup, solve under the per-job timeout, metric extraction. Panics are
// recovered into the result.
func (e *Engine) runJob(ctx context.Context, job Job) (res JobResult) {
	res.Job = job
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()
	if e.Spec.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.Spec.JobTimeout)
		defer cancel()
	}
	s, err := BuildScenario(job)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	solver, err := e.newSolver(job.Algorithm)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	start := time.Now()
	plan, err := solver.Solve(ctx, s)
	res.Runtime = time.Since(start)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Cost = plan.RepairCost(s)
	res.SatisfiedRatio = plan.SatisfactionRatio()
	res.NodeRepairs, res.EdgeRepairs, _ = plan.NumRepairs()
	return res
}

// buildSolver resolves an algorithm name through the heuristics registry.
// The spec's solver knobs (FastISP, OPT limits) are threaded through the
// registry params, so no per-algorithm special case exists here: custom
// solvers registered by callers are constructed exactly like the built-ins.
func (e *Engine) buildSolver(alg string) (heuristics.Solver, error) {
	return heuristics.New(alg, heuristics.Params{
		Fast:         e.Spec.FastISP,
		OPTTimeLimit: e.Spec.OptTimeLimit,
		OPTMaxNodes:  e.Spec.OptMaxNodes,
		OPTWorkers:   e.solverWorkers(),
	})
}

// solverWorkers resolves the per-job branch-and-bound parallelism budget.
// The default divides the machine between the job pool and the solvers:
// with the pool already saturating GOMAXPROCS each job solves sequentially,
// while a deliberately small pool (e.g. Workers: 1 for a handful of huge
// OPT instances) hands each job the remaining cores.
func (e *Engine) solverWorkers() int {
	if e.Spec.SolverWorkers != 0 {
		return e.Spec.SolverWorkers
	}
	cores := runtime.GOMAXPROCS(0)
	pool := e.Spec.Workers
	if pool <= 0 || pool > cores {
		pool = cores
	}
	if w := cores / pool; w > 1 {
		return w
	}
	return 1
}

// Seed-stream discriminators: every random aspect of a job draws from its
// own deterministic stream, so adding a dimension to the grid never shifts
// the draws of another aspect.
const (
	seedStreamTopology int64 = iota + 1
	seedStreamDemand
	seedStreamDisruption
)

// jobRand returns the deterministic random stream of one aspect of a job.
func jobRand(seed, stream int64) *rand.Rand {
	return rand.New(rand.NewSource(mix(seed, stream)))
}

// mix combines a seed and a stream discriminator with the splitmix64 finalizer,
// so that neighbouring seeds yield uncorrelated streams.
func mix(seed, stream int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(stream)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// BuildScenario deterministically constructs the MinR instance of a job from
// its spec coordinates and seed. The same job always yields the same
// scenario, independent of worker scheduling.
func BuildScenario(job Job) (*scenario.Scenario, error) {
	g, err := buildTopology(job.Topology, jobRand(job.Seed, seedStreamTopology))
	if err != nil {
		return nil, err
	}
	dg, err := buildDemand(g, job.Demand, jobRand(job.Seed, seedStreamDemand))
	if err != nil {
		return nil, err
	}
	d, err := buildDisruption(g, job.Disruption, jobRand(job.Seed, seedStreamDisruption))
	if err != nil {
		return nil, err
	}
	s := &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func buildTopology(t Topology, rng *rand.Rand) (*graph.Graph, error) {
	switch t.Kind {
	case TopoBellCanada:
		return topology.BellCanada(), nil
	case TopoGrid:
		capacity := t.Capacity
		if capacity == 0 {
			capacity = 20
		}
		return topology.Grid(t.Rows, t.Cols, topology.DefaultConfig(capacity))
	case TopoErdosRenyi:
		capacity := t.Capacity
		if capacity == 0 {
			capacity = 20
		}
		// Retry until the sample is connected, as the experiments package
		// does: MinR on a disconnected supply graph is trivially infeasible.
		for attempt := 0; attempt < 50; attempt++ {
			g, err := topology.ErdosRenyi(t.Nodes, t.EdgeProb, topology.DefaultConfig(capacity), rng)
			if err != nil {
				return nil, err
			}
			if len(g.GiantComponent()) == g.NumNodes() {
				return g, nil
			}
		}
		return nil, fmt.Errorf("sweep: could not sample a connected G(%d, %.2f) in 50 attempts", t.Nodes, t.EdgeProb)
	case TopoCAIDA:
		capacity := t.Capacity
		if capacity == 0 {
			capacity = 25
		}
		return topology.CAIDALike(topology.DefaultConfig(capacity), rng), nil
	default:
		return nil, fmt.Errorf("sweep: unknown topology kind %q", t.Kind)
	}
}

func buildDemand(g *graph.Graph, d Demand, rng *rand.Rand) (*demand.Graph, error) {
	switch d.Placement {
	case "", PlaceFarApart:
		return demand.GenerateFarApartPairs(g, d.Pairs, d.FlowPerPair, rng)
	case PlaceUniform:
		return demand.GenerateUniformPairs(g, d.Pairs, d.FlowPerPair, rng)
	default:
		return nil, fmt.Errorf("sweep: unknown demand placement %q", d.Placement)
	}
}

func buildDisruption(g *graph.Graph, d Disruption, rng *rand.Rand) (disruption.Disruption, error) {
	switch d.Kind {
	case DisruptComplete:
		return disruption.Complete(g), nil
	case DisruptEdges:
		return disruption.EdgesOnly(g), nil
	case DisruptGeographic:
		peak := d.PeakProbability
		if peak == 0 {
			peak = 1
		}
		return disruption.Geographic(g, disruption.GeographicConfig{
			Auto:            true,
			Variance:        d.Variance,
			PeakProbability: peak,
		}, rng), nil
	case DisruptRandom:
		return disruption.Random(g, d.NodeProb, d.EdgeProb, rng), nil
	default:
		return disruption.Disruption{}, fmt.Errorf("sweep: unknown disruption kind %q", d.Kind)
	}
}
