package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(ctx, i) for every i in [0, n) on a bounded pool of worker
// goroutines and blocks until every dispatched call returned. It is the
// shared execution substrate of the sweep engine and the experiments
// package.
//
//   - workers <= 0 selects GOMAXPROCS.
//   - The first non-nil error stops dispatch (in-flight calls still finish)
//     and is returned.
//   - A cancelled context stops dispatch promptly and ctx.Err() is returned.
//   - A panicking call is recovered and converted into an error carrying the
//     panic value, so one bad cell cannot take down the whole process.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		stop     atomic.Bool
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	call := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("sweep: job %d panicked: %v", i, r)
			}
		}()
		return fn(ctx, i)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := call(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
