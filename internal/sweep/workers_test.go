package sweep

import (
	"runtime"
	"testing"
)

// TestSolverWorkersBudget pins the per-job branch-and-bound budget: a
// saturated job pool keeps each solve sequential (the pre-parallel
// behaviour), a deliberately small pool hands each job the spare cores, and
// an explicit SolverWorkers wins outright.
func TestSolverWorkersBudget(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	cases := []struct {
		name string
		spec Spec
		want int
	}{
		{"default pool saturates the machine", Spec{}, 1},
		{"explicit pool of all cores", Spec{Workers: cores}, 1},
		{"oversized pool clamps to cores", Spec{Workers: 4 * cores}, 1},
		{"serial pool hands jobs the machine", Spec{Workers: 1}, max(1, cores)},
		{"explicit solver budget wins", Spec{Workers: 1, SolverWorkers: 2}, 2},
		{"negative forces sequential", Spec{SolverWorkers: -1}, -1},
	}
	for _, tc := range cases {
		e := &Engine{Spec: tc.spec}
		if got := e.solverWorkers(); got != tc.want {
			t.Errorf("%s: solverWorkers() = %d, want %d", tc.name, got, tc.want)
		}
	}
}
