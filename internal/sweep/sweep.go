// Package sweep is the concurrent scenario-sweep engine of the repository:
// it expands a declarative Spec — a grid of topologies, disruption models,
// demand configurations, algorithms and seeds — into individual jobs, runs
// them across a bounded goroutine worker pool with deterministic per-job
// seeding, context cancellation, per-job timeouts and panic isolation, and
// aggregates the streamed results into per-group statistics (mean, stddev
// and percentiles of repair cost, satisfied-demand ratio, repairs and
// runtime) with JSON and CSV emitters.
//
// The paper's evaluation (§VII) is exactly such a grid; the experiments
// package builds its figure runners on the same worker pool (ForEach), and
// the public facade exposes the engine as netrecovery.Sweep.
package sweep

import (
	"fmt"
	"time"
)

// Topology kinds understood by the engine.
const (
	TopoBellCanada = "bell-canada"
	TopoGrid       = "grid"
	TopoErdosRenyi = "erdos-renyi"
	TopoCAIDA      = "caida"
)

// Disruption kinds understood by the engine.
const (
	DisruptComplete   = "complete"
	DisruptGeographic = "geographic"
	DisruptRandom     = "random"
	DisruptEdges      = "edges"
)

// Demand placement rules understood by the engine.
const (
	PlaceFarApart = "far-apart"
	PlaceUniform  = "uniform"
)

// Topology declares one supply network of the grid.
type Topology struct {
	// Kind is one of the Topo* constants.
	Kind string `json:"kind"`
	// Rows and Cols size a grid topology.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Nodes and EdgeProb size an Erdős–Rényi topology.
	Nodes    int     `json:"nodes,omitempty"`
	EdgeProb float64 `json:"edge_prob,omitempty"`
	// Capacity is the uniform link capacity (0 means 20 for grid/ER, the
	// built-in capacities for bell-canada, 25 for caida).
	Capacity float64 `json:"capacity,omitempty"`
}

// Label returns a stable human-readable identifier of the topology, used as
// the aggregation key and in the emitted reports.
func (t Topology) Label() string {
	switch t.Kind {
	case TopoGrid:
		return fmt.Sprintf("%s-%dx%d", t.Kind, t.Rows, t.Cols)
	case TopoErdosRenyi:
		return fmt.Sprintf("%s-n%d-p%.2f", t.Kind, t.Nodes, t.EdgeProb)
	default:
		return t.Kind
	}
}

// Disruption declares one failure model of the grid.
type Disruption struct {
	// Kind is one of the Disrupt* constants.
	Kind string `json:"kind"`
	// Variance widens a geographic disruption (required for geographic).
	Variance float64 `json:"variance,omitempty"`
	// PeakProbability is the failure probability at the epicentre of a
	// geographic disruption (0 means 1).
	PeakProbability float64 `json:"peak_probability,omitempty"`
	// NodeProb and EdgeProb drive a random disruption.
	NodeProb float64 `json:"node_prob,omitempty"`
	EdgeProb float64 `json:"edge_prob,omitempty"`
}

// Label returns a stable identifier of the disruption model.
func (d Disruption) Label() string {
	switch d.Kind {
	case DisruptGeographic:
		return fmt.Sprintf("geo-v%g", d.Variance)
	case DisruptRandom:
		return fmt.Sprintf("random-n%g-e%g", d.NodeProb, d.EdgeProb)
	default:
		return d.Kind
	}
}

// Demand declares one demand configuration of the grid.
type Demand struct {
	// Pairs is the number of demand pairs to generate.
	Pairs int `json:"pairs"`
	// FlowPerPair is the flow of every pair.
	FlowPerPair float64 `json:"flow_per_pair"`
	// Placement selects the pair-generation rule (default far-apart, the
	// paper's selection rule).
	Placement string `json:"placement,omitempty"`
}

// Label returns a stable identifier of the demand configuration.
func (d Demand) Label() string {
	placement := d.Placement
	if placement == "" {
		placement = PlaceFarApart
	}
	return fmt.Sprintf("%dx%g-%s", d.Pairs, d.FlowPerPair, placement)
}

// Spec declaratively describes a scenario sweep: the cartesian product of
// topologies, disruptions, demand configurations, algorithms and seeds.
type Spec struct {
	// Name identifies the sweep in the emitted report.
	Name string `json:"name,omitempty"`

	Topologies  []Topology   `json:"topologies"`
	Disruptions []Disruption `json:"disruptions"`
	Demands     []Demand     `json:"demands"`
	// Algorithms lists solver names from the heuristics registry.
	Algorithms []string `json:"algorithms"`
	// Seeds lists the random seeds; every grid point runs once per seed and
	// the per-seed results are aggregated into the group statistics.
	Seeds []int64 `json:"seeds"`

	// Workers bounds the goroutine pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// SolverWorkers is the per-job branch-and-bound parallelism handed to
	// OPT (and any custom solver honouring the knob). Zero derives a budget
	// that keeps pool×solver parallelism at GOMAXPROCS — with a saturated
	// job pool each OPT runs sequentially, exactly the pre-parallel
	// behaviour — so a 100-job sweep does not oversubscribe the machine;
	// negative forces 1. Set it explicitly (e.g. together with Workers: 1)
	// to give a few expensive OPT jobs the whole machine instead. Results
	// are identical for every value; only wall-clock changes.
	SolverWorkers int `json:"solver_workers,omitempty"`
	// JobTimeout bounds each individual job (0 = no limit). A timed-out job
	// is recorded as failed; the sweep continues.
	JobTimeout time.Duration `json:"job_timeout,omitempty"`

	// FastISP switches ISP to its greedy split mode (recommended for
	// topologies with hundreds of nodes).
	FastISP bool `json:"fast_isp,omitempty"`
	// OptMaxNodes / OptTimeLimit bound each OPT invocation
	// (defaults: 4000 nodes / 120s, as in the facade).
	OptMaxNodes  int           `json:"opt_max_nodes,omitempty"`
	OptTimeLimit time.Duration `json:"opt_time_limit,omitempty"`
}

// Job is one expanded grid point: a single (topology, disruption, demand,
// algorithm, seed) combination.
type Job struct {
	// Index is the job's position in expansion order; aggregation consumes
	// results in Index order, which makes sweeps deterministic regardless of
	// worker scheduling.
	Index      int        `json:"index"`
	Topology   Topology   `json:"topology"`
	Disruption Disruption `json:"disruption"`
	Demand     Demand     `json:"demand"`
	Algorithm  string     `json:"algorithm"`
	Seed       int64      `json:"seed"`
}

// GroupLabel identifies the aggregation group of the job: every dimension
// except the seed.
func (j Job) GroupLabel() string {
	return fmt.Sprintf("%s/%s/%s/%s", j.Topology.Label(), j.Disruption.Label(), j.Demand.Label(), j.Algorithm)
}

// SeedRange returns n consecutive seeds starting at base, a convenience for
// building Spec.Seeds.
func SeedRange(base int64, n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// Validate checks the spec for structural errors before expansion.
func (s Spec) Validate() error {
	if len(s.Topologies) == 0 {
		return fmt.Errorf("sweep: spec has no topologies")
	}
	if len(s.Disruptions) == 0 {
		return fmt.Errorf("sweep: spec has no disruptions")
	}
	if len(s.Demands) == 0 {
		return fmt.Errorf("sweep: spec has no demand configurations")
	}
	if len(s.Algorithms) == 0 {
		return fmt.Errorf("sweep: spec has no algorithms")
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("sweep: spec has no seeds")
	}
	for _, t := range s.Topologies {
		switch t.Kind {
		case TopoBellCanada, TopoCAIDA:
		case TopoGrid:
			if t.Rows <= 0 || t.Cols <= 0 {
				return fmt.Errorf("sweep: grid topology needs positive rows and cols, got %dx%d", t.Rows, t.Cols)
			}
		case TopoErdosRenyi:
			if t.Nodes <= 0 || t.EdgeProb <= 0 || t.EdgeProb > 1 {
				return fmt.Errorf("sweep: erdos-renyi topology needs positive nodes and edge_prob in (0,1], got n=%d p=%g", t.Nodes, t.EdgeProb)
			}
		default:
			return fmt.Errorf("sweep: unknown topology kind %q", t.Kind)
		}
	}
	for _, d := range s.Disruptions {
		switch d.Kind {
		case DisruptComplete, DisruptEdges:
		case DisruptGeographic:
			if d.Variance <= 0 {
				return fmt.Errorf("sweep: geographic disruption needs a positive variance")
			}
		case DisruptRandom:
			if d.NodeProb < 0 || d.NodeProb > 1 || d.EdgeProb < 0 || d.EdgeProb > 1 {
				return fmt.Errorf("sweep: random disruption probabilities must be in [0,1]")
			}
		default:
			return fmt.Errorf("sweep: unknown disruption kind %q", d.Kind)
		}
	}
	for _, d := range s.Demands {
		if d.Pairs <= 0 || d.FlowPerPair <= 0 {
			return fmt.Errorf("sweep: demand configuration needs positive pairs and flow, got %+v", d)
		}
		switch d.Placement {
		case "", PlaceFarApart, PlaceUniform:
		default:
			return fmt.Errorf("sweep: unknown demand placement %q", d.Placement)
		}
	}
	return nil
}

// Expand returns the job list of the spec in deterministic expansion order:
// topology (outermost) → disruption → demand → algorithm → seed (innermost).
func (s Spec) Expand() ([]Job, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	jobs := make([]Job, 0, len(s.Topologies)*len(s.Disruptions)*len(s.Demands)*len(s.Algorithms)*len(s.Seeds))
	for _, topo := range s.Topologies {
		for _, dis := range s.Disruptions {
			for _, dem := range s.Demands {
				for _, alg := range s.Algorithms {
					for _, seed := range s.Seeds {
						jobs = append(jobs, Job{
							Index:      len(jobs),
							Topology:   topo,
							Disruption: dis,
							Demand:     dem,
							Algorithm:  alg,
							Seed:       seed,
						})
					}
				}
			}
		}
	}
	return jobs, nil
}
