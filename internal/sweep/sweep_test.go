package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netrecovery/internal/heuristics"
	"netrecovery/internal/scenario"
)

// quickSpec returns a small but non-trivial spec: two topologies, two
// disruption models, two algorithms, several seeds.
func quickSpec() Spec {
	return Spec{
		Name:       "quick",
		Topologies: []Topology{{Kind: TopoBellCanada}, {Kind: TopoGrid, Rows: 4, Cols: 4}},
		Disruptions: []Disruption{
			{Kind: DisruptGeographic, Variance: 30},
			{Kind: DisruptComplete},
		},
		Demands:    []Demand{{Pairs: 2, FlowPerPair: 5}},
		Algorithms: []string{"ISP", "SRT"},
		Seeds:      SeedRange(1, 3),
		FastISP:    true,
	}
}

func TestSpecValidate(t *testing.T) {
	good := quickSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no topologies", func(s *Spec) { s.Topologies = nil }},
		{"no disruptions", func(s *Spec) { s.Disruptions = nil }},
		{"no demands", func(s *Spec) { s.Demands = nil }},
		{"no algorithms", func(s *Spec) { s.Algorithms = nil }},
		{"no seeds", func(s *Spec) { s.Seeds = nil }},
		{"bad topology kind", func(s *Spec) { s.Topologies = []Topology{{Kind: "mesh"}} }},
		{"bad grid dims", func(s *Spec) { s.Topologies = []Topology{{Kind: TopoGrid}} }},
		{"bad er prob", func(s *Spec) { s.Topologies = []Topology{{Kind: TopoErdosRenyi, Nodes: 10, EdgeProb: 2}} }},
		{"bad disruption kind", func(s *Spec) { s.Disruptions = []Disruption{{Kind: "flood"}} }},
		{"geo without variance", func(s *Spec) { s.Disruptions = []Disruption{{Kind: DisruptGeographic}} }},
		{"bad demand", func(s *Spec) { s.Demands = []Demand{{Pairs: 0, FlowPerPair: 1}} }},
		{"bad placement", func(s *Spec) { s.Demands = []Demand{{Pairs: 1, FlowPerPair: 1, Placement: "ring"}} }},
	}
	for _, tc := range cases {
		spec := quickSpec()
		tc.mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestExpandOrder(t *testing.T) {
	spec := quickSpec()
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := len(spec.Topologies) * len(spec.Disruptions) * len(spec.Demands) * len(spec.Algorithms) * len(spec.Seeds)
	if len(jobs) != want {
		t.Fatalf("expanded %d jobs, want %d", len(jobs), want)
	}
	for i, job := range jobs {
		if job.Index != i {
			t.Fatalf("job %d has index %d", i, job.Index)
		}
	}
	// Seed is the innermost dimension: consecutive jobs differ only in seed
	// within one group.
	if jobs[0].GroupLabel() != jobs[1].GroupLabel() || jobs[0].Seed == jobs[1].Seed {
		t.Errorf("jobs 0/1 should share a group and differ in seed: %+v vs %+v", jobs[0], jobs[1])
	}
}

func TestBuildScenarioDeterministic(t *testing.T) {
	jobs, err := quickSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	job := jobs[0]
	a, err := BuildScenario(job)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildScenario(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.BrokenNodes) != len(b.BrokenNodes) || len(a.BrokenEdges) != len(b.BrokenEdges) {
		t.Errorf("broken sets differ between identical builds: %d/%d vs %d/%d",
			len(a.BrokenNodes), len(a.BrokenEdges), len(b.BrokenNodes), len(b.BrokenEdges))
	}
	if a.Demand.TotalFlow() != b.Demand.TotalFlow() {
		t.Errorf("demand differs between identical builds")
	}
}

// TestRunDeterministicAcrossWorkerCounts is the core determinism guarantee:
// the aggregated results must be byte-identical for any worker count.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := quickSpec()
	fingerprints := make([]string, 0, 3)
	for _, workers := range []int{1, 4, 16} {
		spec.Workers = workers
		report, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if report.Jobs != 24 || report.Failures != 0 {
			t.Fatalf("workers=%d: jobs=%d failures=%d (results: %+v)", workers, report.Jobs, report.Failures, failedResults(report))
		}
		fingerprints = append(fingerprints, report.Fingerprint())
	}
	if fingerprints[0] != fingerprints[1] || fingerprints[1] != fingerprints[2] {
		t.Errorf("fingerprints differ across worker counts:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s\n--- 16 workers ---\n%s",
			fingerprints[0], fingerprints[1], fingerprints[2])
	}
}

// TestRunConcurrentSharedSpec runs two sweeps of the same spec concurrently
// (exercised under -race) and checks the aggregated results are
// byte-identical.
func TestRunConcurrentSharedSpec(t *testing.T) {
	spec := quickSpec()
	spec.Workers = 4
	var wg sync.WaitGroup
	outs := make([]string, 2)
	errs := make([]error, 2)
	for i := range outs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			report, err := Run(context.Background(), spec)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = report.Fingerprint()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if outs[0] != outs[1] {
		t.Errorf("concurrent sweeps of the same spec disagree:\n%s\nvs\n%s", outs[0], outs[1])
	}
}

func TestRunCancellationStopsPromptly(t *testing.T) {
	spec := quickSpec()
	spec.Seeds = SeedRange(1, 50) // 400 jobs: far more than can finish instantly
	spec.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	eng := &Engine{Spec: spec}
	var seen atomic.Int64
	eng.OnResult = func(JobResult) {
		if seen.Add(1) == 2 {
			cancel()
		}
	}
	start := time.Now()
	report, err := eng.Run(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned (%v, %v), want context.Canceled", report, err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt stop", elapsed)
	}
}

// panicSolver implements heuristics.Solver and always panics.
type panicSolver struct{}

func (panicSolver) Name() string { return "PANIC" }
func (panicSolver) Solve(context.Context, *scenario.Scenario) (*scenario.Plan, error) {
	panic("injected solver panic")
}

func TestPanicIsolation(t *testing.T) {
	spec := quickSpec()
	spec.Workers = 4
	eng := &Engine{
		Spec: spec,
		newSolver: func(alg string) (heuristics.Solver, error) {
			if alg == "SRT" {
				return panicSolver{}, nil
			}
			return heuristics.New(alg, heuristics.Params{})
		},
	}
	report, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("a panicking job must not abort the sweep: %v", err)
	}
	wantFailures := 0
	for _, res := range report.Results {
		if res.Job.Algorithm == "SRT" {
			wantFailures++
			if !strings.Contains(res.Err, "panic: injected solver panic") {
				t.Errorf("job %d: err = %q, want recorded panic", res.Job.Index, res.Err)
			}
		} else if res.Err != "" {
			t.Errorf("job %d unexpectedly failed: %s", res.Job.Index, res.Err)
		}
	}
	if report.Failures != wantFailures || wantFailures == 0 {
		t.Errorf("failures = %d, want %d (> 0)", report.Failures, wantFailures)
	}
}

// stallSolver blocks until the context fires, simulating a hung solver.
type stallSolver struct{}

func (stallSolver) Name() string { return "STALL" }
func (stallSolver) Solve(ctx context.Context, _ *scenario.Scenario) (*scenario.Plan, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestJobTimeoutIsolatesSlowJobs(t *testing.T) {
	spec := quickSpec()
	spec.Algorithms = []string{"ISP"}
	spec.Seeds = SeedRange(1, 1)
	spec.JobTimeout = 50 * time.Millisecond
	eng := &Engine{
		Spec:      spec,
		newSolver: func(string) (heuristics.Solver, error) { return stallSolver{}, nil },
	}
	report, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("timed-out jobs must not abort the sweep: %v", err)
	}
	if report.Failures != report.Jobs {
		t.Fatalf("failures = %d, want all %d jobs", report.Failures, report.Jobs)
	}
	for _, res := range report.Results {
		if !strings.Contains(res.Err, "deadline") {
			t.Errorf("job %d: err = %q, want a deadline error", res.Job.Index, res.Err)
		}
	}
}

func TestRunRecordsUnknownAlgorithm(t *testing.T) {
	spec := quickSpec()
	spec.Algorithms = []string{"NO-SUCH-ALGO"}
	spec.Seeds = SeedRange(1, 1)
	report, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("unknown algorithms must fail per job, not abort: %v", err)
	}
	if report.Failures != report.Jobs {
		t.Errorf("failures = %d, want %d", report.Failures, report.Jobs)
	}
}

func TestForEach(t *testing.T) {
	t.Run("runs every index once", func(t *testing.T) {
		const n = 100
		var hits [n]atomic.Int64
		err := ForEach(context.Background(), 7, n, func(_ context.Context, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("index %d ran %d times", i, got)
			}
		}
	})
	t.Run("propagates first error", func(t *testing.T) {
		boom := errors.New("boom")
		err := ForEach(context.Background(), 3, 50, func(_ context.Context, i int) error {
			if i == 10 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	})
	t.Run("converts panics to errors", func(t *testing.T) {
		err := ForEach(context.Background(), 2, 4, func(_ context.Context, i int) error {
			if i == 1 {
				panic("kaboom")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("err = %v, want recovered panic", err)
		}
	})
	t.Run("honours cancellation", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ran := atomic.Int64{}
		err := ForEach(ctx, 2, 1000, func(_ context.Context, i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if ran.Load() > 4 {
			t.Errorf("%d jobs ran after cancellation", ran.Load())
		}
	})
	t.Run("bounds concurrency", func(t *testing.T) {
		const workers = 3
		var inFlight, peak atomic.Int64
		err := ForEach(context.Background(), workers, 60, func(_ context.Context, i int) error {
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if peak.Load() > workers {
			t.Errorf("peak concurrency %d exceeds %d workers", peak.Load(), workers)
		}
	})
}

// TestHundredJobSweep is the acceptance scenario of the issue: 2 topologies
// × 5 variances × 2 algorithms × 5 seeds = 100 jobs, run serially and on 4+
// workers, deterministic across both, with the wall-clock ratio logged.
func TestHundredJobSweep(t *testing.T) {
	spec := Spec{
		Name:       "acceptance",
		Topologies: []Topology{{Kind: TopoBellCanada}, {Kind: TopoGrid, Rows: 5, Cols: 5}},
		Disruptions: []Disruption{
			{Kind: DisruptGeographic, Variance: 10},
			{Kind: DisruptGeographic, Variance: 25},
			{Kind: DisruptGeographic, Variance: 50},
			{Kind: DisruptGeographic, Variance: 75},
			{Kind: DisruptGeographic, Variance: 100},
		},
		Demands:    []Demand{{Pairs: 3, FlowPerPair: 10}},
		Algorithms: []string{"ISP", "SRT"},
		Seeds:      SeedRange(1, 5),
		FastISP:    true,
	}

	spec.Workers = 1
	serialStart := time.Now()
	serial, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	serialTime := time.Since(serialStart)

	spec.Workers = 4
	parallelStart := time.Now()
	parallel, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	parallelTime := time.Since(parallelStart)

	if serial.Jobs != 100 || parallel.Jobs != 100 {
		t.Fatalf("jobs = %d / %d, want 100", serial.Jobs, parallel.Jobs)
	}
	if serial.Failures != 0 || parallel.Failures != 0 {
		t.Fatalf("failures: serial=%d parallel=%d (serial: %v, parallel: %v)",
			serial.Failures, parallel.Failures, failedResults(serial), failedResults(parallel))
	}
	if serial.Fingerprint() != parallel.Fingerprint() {
		t.Errorf("serial and parallel sweeps disagree")
	}
	speedup := float64(serialTime) / float64(parallelTime)
	t.Logf("100 jobs: serial %v, 4 workers %v, speedup %.2fx (GOMAXPROCS=%d)",
		serialTime.Round(time.Millisecond), parallelTime.Round(time.Millisecond), speedup, runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) >= 4 && speedup < 1.0 {
		t.Errorf("4-worker sweep slower than serial (%.2fx) on a %d-core machine", speedup, runtime.GOMAXPROCS(0))
	}
}

// failedResults extracts the failed job results for diagnostics.
func failedResults(r *Report) []string {
	var out []string
	for _, res := range r.Results {
		if res.Err != "" {
			out = append(out, fmt.Sprintf("job %d (%s): %s", res.Job.Index, res.Job.GroupLabel(), res.Err))
		}
	}
	return out
}
