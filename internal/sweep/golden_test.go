package sweep

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// update regenerates the golden fixtures: go test ./internal/sweep -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenReport returns a fully deterministic report (fixed runtimes, no
// wall-clock dependence) covering success and failure rows.
func goldenReport() *Report {
	spec := Spec{
		Name:        "golden",
		Topologies:  []Topology{{Kind: TopoGrid, Rows: 3, Cols: 3}},
		Disruptions: []Disruption{{Kind: DisruptComplete}},
		Demands:     []Demand{{Pairs: 1, FlowPerPair: 5}},
		Algorithms:  []string{"ISP", "SRT"},
		Seeds:       SeedRange(1, 3),
	}
	jobs, err := spec.Expand()
	if err != nil {
		panic(err)
	}
	results := make([]JobResult, len(jobs))
	for i, job := range jobs {
		res := JobResult{Job: job, Runtime: time.Duration(i+1) * time.Millisecond}
		switch {
		case job.Algorithm == "SRT" && job.Seed == 3:
			res.Err = "injected failure"
		default:
			res.Cost = float64(10 + 2*i)
			res.SatisfiedRatio = 1
			res.NodeRepairs = 3 + i
			res.EdgeRepairs = 2 + i
		}
		results[i] = res
	}
	return buildReport(spec, results, 42*time.Millisecond)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s does not match the golden file (regenerate with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json", buf.Bytes())
}

func TestGoldenCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.csv", buf.Bytes())
}
