package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Stat summarises one metric across the successful jobs of a group.
type Stat struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	Max    float64 `json:"max"`
}

// computeStat builds a Stat from values in job-index order. The mean is
// accumulated in that fixed order so repeated sweeps of the same spec
// produce bit-identical floating-point results regardless of worker
// scheduling.
func computeStat(values []float64) Stat {
	if len(values) == 0 {
		return Stat{}
	}
	st := Stat{Count: len(values)}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	st.Mean = sum / float64(len(values))
	ss := 0.0
	for _, v := range values {
		d := v - st.Mean
		ss += d * d
	}
	if len(values) > 1 {
		st.Stddev = math.Sqrt(ss / float64(len(values)-1))
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	st.Min = sorted[0]
	st.Max = sorted[len(sorted)-1]
	st.P50 = percentile(sorted, 0.50)
	st.P90 = percentile(sorted, 0.90)
	return st
}

// percentile returns the nearest-rank percentile of an ascending-sorted
// slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// GroupStats aggregates every seed of one (topology, disruption, demand,
// algorithm) grid point.
type GroupStats struct {
	Topology   string `json:"topology"`
	Disruption string `json:"disruption"`
	Demand     string `json:"demand"`
	Algorithm  string `json:"algorithm"`

	Jobs     int `json:"jobs"`
	Failures int `json:"failures"`

	Cost           Stat `json:"cost"`
	SatisfiedRatio Stat `json:"satisfied_ratio"`
	Repairs        Stat `json:"repairs"`
	RuntimeSeconds Stat `json:"runtime_seconds"`
}

// Report is the aggregated outcome of a sweep.
type Report struct {
	Name     string        `json:"name,omitempty"`
	Jobs     int           `json:"jobs"`
	Failures int           `json:"failures"`
	WallTime time.Duration `json:"wall_time_ns"`
	// Groups are ordered by first appearance in expansion order.
	Groups []GroupStats `json:"groups"`
	// Results holds every per-job outcome in expansion order.
	Results []JobResult `json:"results"`
}

// buildReport aggregates the per-job results (already in expansion order)
// into group statistics.
func buildReport(spec Spec, results []JobResult, wall time.Duration) *Report {
	rep := &Report{Name: spec.Name, Jobs: len(results), WallTime: wall, Results: results}

	type accum struct {
		stats                             GroupStats
		cost, satisfied, repairs, runtime []float64
	}
	var order []string
	groups := make(map[string]*accum)
	for _, res := range results {
		key := res.Job.GroupLabel()
		acc, ok := groups[key]
		if !ok {
			acc = &accum{stats: GroupStats{
				Topology:   res.Job.Topology.Label(),
				Disruption: res.Job.Disruption.Label(),
				Demand:     res.Job.Demand.Label(),
				Algorithm:  res.Job.Algorithm,
			}}
			groups[key] = acc
			order = append(order, key)
		}
		acc.stats.Jobs++
		if res.Err != "" {
			acc.stats.Failures++
			rep.Failures++
			continue
		}
		acc.cost = append(acc.cost, res.Cost)
		acc.satisfied = append(acc.satisfied, res.SatisfiedRatio)
		acc.repairs = append(acc.repairs, float64(res.NodeRepairs+res.EdgeRepairs))
		acc.runtime = append(acc.runtime, res.Runtime.Seconds())
	}
	for _, key := range order {
		acc := groups[key]
		acc.stats.Cost = computeStat(acc.cost)
		acc.stats.SatisfiedRatio = computeStat(acc.satisfied)
		acc.stats.Repairs = computeStat(acc.repairs)
		acc.stats.RuntimeSeconds = computeStat(acc.runtime)
		rep.Groups = append(rep.Groups, acc.stats)
	}
	return rep
}

// WriteJSON emits the full report (groups and per-job results) as indented
// JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// csvHeader lists the columns of the CSV emitter, one row per group.
var csvHeader = []string{
	"topology", "disruption", "demand", "algorithm", "jobs", "failures",
	"cost_mean", "cost_stddev", "cost_min", "cost_p50", "cost_p90", "cost_max",
	"satisfied_mean", "satisfied_stddev", "satisfied_min", "satisfied_p50", "satisfied_p90", "satisfied_max",
	"repairs_mean", "repairs_stddev", "repairs_min", "repairs_p50", "repairs_p90", "repairs_max",
	"runtime_mean_s", "runtime_stddev_s", "runtime_min_s", "runtime_p50_s", "runtime_p90_s", "runtime_max_s",
}

// WriteCSV emits one row of aggregated statistics per group.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(csvHeader, ",")); err != nil {
		return err
	}
	statCells := func(s Stat) []string {
		return []string{
			formatFloat(s.Mean), formatFloat(s.Stddev), formatFloat(s.Min),
			formatFloat(s.P50), formatFloat(s.P90), formatFloat(s.Max),
		}
	}
	for _, g := range r.Groups {
		cells := []string{g.Topology, g.Disruption, g.Demand, g.Algorithm,
			fmt.Sprintf("%d", g.Jobs), fmt.Sprintf("%d", g.Failures)}
		cells = append(cells, statCells(g.Cost)...)
		cells = append(cells, statCells(g.SatisfiedRatio)...)
		cells = append(cells, statCells(g.Repairs)...)
		cells = append(cells, statCells(g.RuntimeSeconds)...)
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Fingerprint returns a deterministic textual digest of the sweep outcome:
// every field except runtimes and wall time, which vary between runs. Two
// sweeps of the same spec must produce byte-identical fingerprints — the
// race and determinism tests rely on this.
func (r *Report) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "name=%s jobs=%d failures=%d\n", r.Name, r.Jobs, r.Failures)
	for _, res := range r.Results {
		fmt.Fprintf(&b, "job %d %s seed=%d cost=%s satisfied=%s repairs=%d+%d err=%s\n",
			res.Job.Index, res.Job.GroupLabel(), res.Job.Seed,
			formatFloat(res.Cost), formatFloat(res.SatisfiedRatio),
			res.NodeRepairs, res.EdgeRepairs, res.Err)
	}
	statLine := func(name string, s Stat) string {
		return fmt.Sprintf("%s[n=%d mean=%s stddev=%s min=%s p50=%s p90=%s max=%s]",
			name, s.Count, formatFloat(s.Mean), formatFloat(s.Stddev), formatFloat(s.Min),
			formatFloat(s.P50), formatFloat(s.P90), formatFloat(s.Max))
	}
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "group %s/%s/%s/%s jobs=%d failures=%d %s %s %s\n",
			g.Topology, g.Disruption, g.Demand, g.Algorithm, g.Jobs, g.Failures,
			statLine("cost", g.Cost), statLine("satisfied", g.SatisfiedRatio), statLine("repairs", g.Repairs))
	}
	return b.String()
}
