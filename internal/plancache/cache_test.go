package plancache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netrecovery/internal/heuristics"
	"netrecovery/internal/scenario"
)

func testKey(i byte) Key {
	var k Key
	k.Fingerprint[0] = i
	k.Fingerprint[31] = i ^ 0x5a
	k.Algorithm = "ISP"
	k.Options = ParamsDigest(heuristics.Params{})
	return k
}

func testPlan(name string) *scenario.Plan { return scenario.NewPlan(name) }

func TestDoMissThenHit(t *testing.T) {
	c := New(Config{})
	key := testKey(1)
	var solves atomic.Int32
	solve := func(context.Context) (*scenario.Plan, error) {
		solves.Add(1)
		return testPlan("ISP"), nil
	}
	p1, outcome, age, err := c.Do(context.Background(), key, solve)
	if err != nil || outcome != Miss || age != 0 {
		t.Fatalf("first Do: plan=%v outcome=%v age=%v err=%v, want miss", p1, outcome, age, err)
	}
	p2, outcome, _, err := c.Do(context.Background(), key, solve)
	if err != nil || outcome != Hit {
		t.Fatalf("second Do: outcome=%v err=%v, want hit", outcome, err)
	}
	if p1 != p2 {
		t.Fatalf("hit returned a different plan pointer")
	}
	if got := solves.Load(); got != 1 {
		t.Fatalf("solve ran %d times, want 1", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Coalesced != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

// TestDoCoalescesConcurrentCalls is the core singleflight guarantee: K
// concurrent identical requests perform exactly one solve.
func TestDoCoalescesConcurrentCalls(t *testing.T) {
	c := New(Config{})
	key := testKey(2)
	const K = 32
	var solves atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})
	var startOnce sync.Once
	solve := func(context.Context) (*scenario.Plan, error) {
		startOnce.Do(func() { close(started) })
		solves.Add(1)
		<-release
		return testPlan("ISP"), nil
	}

	var wg sync.WaitGroup
	plans := make([]*scenario.Plan, K)
	outcomes := make([]Outcome, K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plans[i], outcomes[i], _, errs[i] = c.Do(context.Background(), key, solve)
		}(i)
	}
	<-started
	// Give followers time to queue up behind the in-flight leader, then let
	// the solve finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := solves.Load(); got != 1 {
		t.Fatalf("%d concurrent calls ran %d solves, want exactly 1", K, got)
	}
	leaders, followers, hits := 0, 0, 0
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("call %d failed: %v", i, errs[i])
		}
		if plans[i] != plans[0] {
			t.Fatalf("call %d got a different plan pointer", i)
		}
		switch outcomes[i] {
		case Miss:
			leaders++
		case Coalesced:
			followers++
		case Hit:
			hits++ // a caller that arrived after the leader stored
		}
	}
	if leaders != 1 {
		t.Fatalf("want exactly 1 leader, got %d (followers=%d hits=%d)", leaders, followers, hits)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != uint64(followers) || st.Hits != uint64(hits) {
		t.Fatalf("stats = %+v inconsistent with outcomes (followers=%d hits=%d)", st, followers, hits)
	}
}

// TestDoFollowerCancellation: a coalesced waiter whose context is cancelled
// returns promptly even though the leader keeps solving.
func TestDoFollowerCancellation(t *testing.T) {
	c := New(Config{})
	key := testKey(3)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _, err := c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
			close(started)
			<-release
			return testPlan("ISP"), nil
		})
		if err != nil {
			t.Errorf("leader failed: %v", err)
		}
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, _, err := c.Do(ctx, key, func(context.Context) (*scenario.Plan, error) {
		t.Error("cancelled follower must not solve")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("follower took %v to observe cancellation", waited)
	}
	close(release)
}

// TestDoLeaderCancellationDoesNotPoisonFollowers: when the leader's own
// context dies mid-solve, a waiting follower with a live context re-elects
// itself leader and solves; the cancellation error is not shared.
func TestDoLeaderCancellationDoesNotPoisonFollowers(t *testing.T) {
	c := New(Config{})
	key := testKey(4)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, _, err := c.Do(leaderCtx, key, func(ctx context.Context) (*scenario.Plan, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		leaderDone <- err
	}()
	<-started

	followerDone := make(chan error, 1)
	var followerSolved atomic.Bool
	go func() {
		_, _, _, err := c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
			followerSolved.Store(true)
			return testPlan("ISP"), nil
		})
		followerDone <- err
	}()
	// Let the follower coalesce onto the leader, then kill the leader.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	select {
	case err := <-followerDone:
		if err != nil {
			t.Fatalf("follower err = %v, want nil after re-electing itself", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower never completed after leader cancellation")
	}
	if !followerSolved.Load() {
		t.Fatal("follower did not run its own solve after the leader died")
	}
}

// TestDoSharesDeterministicErrors: a non-context solver error is shared with
// coalesced followers (the solve is deterministic, re-running it would fail
// identically) and is not cached.
func TestDoSharesDeterministicErrors(t *testing.T) {
	c := New(Config{})
	key := testKey(5)
	boom := errors.New("infeasible")
	var solves atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, _, err := c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
			close(started)
			solves.Add(1)
			<-release
			return nil, boom
		})
		leaderDone <- err
	}()
	<-started
	followerDone := make(chan error, 1)
	go func() {
		_, _, _, err := c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
			solves.Add(1)
			return nil, boom
		})
		followerDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-leaderDone; !errors.Is(err, boom) {
		t.Fatalf("leader err = %v, want %v", err, boom)
	}
	if err := <-followerDone; !errors.Is(err, boom) {
		t.Fatalf("follower err = %v, want the shared %v", err, boom)
	}
	if got := solves.Load(); got != 1 {
		t.Fatalf("error was not shared: %d solves", got)
	}
	// Errors are not cached: the next call solves again.
	_, _, _, err := c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
		solves.Add(1)
		return testPlan("ISP"), nil
	})
	if err != nil {
		t.Fatalf("post-error Do failed: %v", err)
	}
	if got := solves.Load(); got != 2 {
		t.Fatalf("error path cached something: %d solves, want 2", got)
	}
}

func TestTTLExpiry(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	c := New(Config{TTL: time.Minute, Now: now})
	key := testKey(6)
	var solves atomic.Int32
	solve := func(context.Context) (*scenario.Plan, error) {
		solves.Add(1)
		return testPlan("ISP"), nil
	}
	if _, outcome, _, _ := c.Do(context.Background(), key, solve); outcome != Miss {
		t.Fatalf("first call outcome = %v, want miss", outcome)
	}
	clock = clock.Add(30 * time.Second)
	if _, outcome, age, _ := c.Do(context.Background(), key, solve); outcome != Hit || age != 30*time.Second {
		t.Fatalf("fresh entry: outcome=%v age=%v, want hit at 30s", outcome, age)
	}
	clock = clock.Add(2 * time.Minute)
	if _, outcome, _, _ := c.Do(context.Background(), key, solve); outcome != Miss {
		t.Fatalf("expired entry outcome = %v, want miss (re-solve)", outcome)
	}
	if got := solves.Load(); got != 2 {
		t.Fatalf("%d solves, want 2 (initial + after expiry)", got)
	}
	if st := c.Stats(); st.Expired != 1 {
		t.Fatalf("stats = %+v, want Expired=1", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard so the LRU order is global and the arithmetic is exact.
	c := New(Config{MaxEntries: 4, Shards: 1})
	solveNamed := func(name string) func(context.Context) (*scenario.Plan, error) {
		return func(context.Context) (*scenario.Plan, error) { return testPlan(name), nil }
	}
	for i := byte(0); i < 4; i++ {
		if _, _, _, err := c.Do(context.Background(), testKey(i), solveNamed("ISP")); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 is the LRU victim.
	if _, outcome, _, _ := c.Do(context.Background(), testKey(0), solveNamed("ISP")); outcome != Hit {
		t.Fatalf("touch of key 0: outcome %v, want hit", outcome)
	}
	if _, outcome, _, _ := c.Do(context.Background(), testKey(9), solveNamed("ISP")); outcome != Miss {
		t.Fatalf("insert of key 9: outcome %v, want miss", outcome)
	}
	if c.Len() != 4 {
		t.Fatalf("cache holds %d entries, want 4", c.Len())
	}
	if _, outcome, _, _ := c.Do(context.Background(), testKey(1), solveNamed("ISP")); outcome != Miss {
		t.Fatalf("key 1 should have been evicted, got outcome %v", outcome)
	}
	if st := c.Stats(); st.Evictions < 1 {
		t.Fatalf("stats = %+v, want at least 1 eviction", st)
	}
}

// TestConcurrentMixedLoad hammers the cache from many goroutines over a
// small key space; run with -race this is the data-race canary. It also
// checks the bookkeeping invariant hits+misses+coalesced == calls.
func TestConcurrentMixedLoad(t *testing.T) {
	c := New(Config{MaxEntries: 8, Shards: 4, TTL: time.Hour})
	const (
		workers = 16
		iters   = 200
	)
	var calls atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := testKey(byte((w + i) % 12))
				calls.Add(1)
				plan, _, _, err := c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
					return testPlan(fmt.Sprintf("p%d", key.Fingerprint[0])), nil
				})
				if err != nil {
					t.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
				if want := fmt.Sprintf("p%d", key.Fingerprint[0]); plan.Solver != want {
					t.Errorf("worker %d iter %d: got plan %q, want %q (cross-key mixup)", w, i, plan.Solver, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses+st.Coalesced != calls.Load() {
		t.Fatalf("outcome counters %d+%d+%d != %d calls", st.Hits, st.Misses, st.Coalesced, calls.Load())
	}
	if st.Entries > 8 {
		t.Fatalf("cache grew past MaxEntries: %d", st.Entries)
	}
}

func TestParamsDigest(t *testing.T) {
	base := ParamsDigest(heuristics.Params{})
	if d := ParamsDigest(heuristics.Params{Fast: true}); d == base {
		t.Error("Fast did not change the digest")
	}
	if d := ParamsDigest(heuristics.Params{OPTTimeLimit: time.Second}); d == base {
		t.Error("OPTTimeLimit did not change the digest")
	}
	if d := ParamsDigest(heuristics.Params{OPTMaxNodes: 7}); d == base {
		t.Error("OPTMaxNodes did not change the digest")
	}
	// Answer-invariant knobs must NOT change the digest, so requests
	// differing only in parallelism or observability share entries.
	if d := ParamsDigest(heuristics.Params{OPTWorkers: 8, Progress: func(heuristics.ProgressEvent) {}}); d != base {
		t.Error("Workers/Progress changed the digest; they are answer-invariant")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{Miss: "miss", Hit: "hit", Coalesced: "coalesced"} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}
