package plancache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"netrecovery/internal/degrade"
	"netrecovery/internal/faultinject"
	"netrecovery/internal/scenario"
)

// jitterKey builds a key whose fingerprint bytes are spread like a real
// content hash (testKey only sets bytes 0 and 31, which leaves the
// jitter-draw bytes constant).
func jitterKey(i byte) Key {
	k := testKey(i)
	for j := range k.Fingerprint {
		k.Fingerprint[j] = i*31 + byte(j)*17 + 5
	}
	return k
}

// TestTTLJitterSpreadsExpiry stores a burst of entries at the same fake
// instant and asserts their jittered lifetimes differ: some expire before
// the nominal TTL while others survive until it, so a co-created cohort
// never expires as one thundering herd.
func TestTTLJitterSpreadsExpiry(t *testing.T) {
	const ttl = time.Minute
	now := time.Unix(0, 0)
	c := New(Config{TTL: ttl, TTLJitter: 0.5, Now: func() time.Time { return now }})

	const n = 32
	for i := 0; i < n; i++ {
		_, _, _, err := c.Do(context.Background(), jitterKey(byte(i)), func(context.Context) (*scenario.Plan, error) {
			return testPlan("ISP"), nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Just before the earliest possible expiry everything is alive.
	now = now.Add(ttl/2 - time.Second)
	alive := 0
	for i := 0; i < n; i++ {
		if _, _, ok := c.Get(jitterKey(byte(i))); ok {
			alive++
		}
	}
	if alive != n {
		t.Fatalf("alive at TTL·(1−jitter)⁻ = %d, want %d", alive, n)
	}

	// Three quarters in, the cohort must be split: some expired, some not.
	now = now.Add(ttl / 4)
	alive = 0
	for i := 0; i < n; i++ {
		if _, _, ok := c.Get(jitterKey(byte(i))); ok {
			alive++
		}
	}
	if alive == 0 || alive == n {
		t.Fatalf("alive at 0.75·TTL = %d of %d: jitter did not spread expiries", alive, n)
	}

	// Past the nominal TTL everything is gone.
	now = now.Add(ttl)
	for i := 0; i < n; i++ {
		if _, _, ok := c.Get(jitterKey(byte(i))); ok {
			t.Fatalf("entry %d alive past the nominal TTL", i)
		}
	}
}

// TestTTLJitterDeterministic: an entry's effective lifetime is a pure
// function of its key, identical across cache instances.
func TestTTLJitterDeterministic(t *testing.T) {
	a := New(Config{TTL: time.Minute, TTLJitter: 0.3})
	b := New(Config{TTL: time.Minute, TTLJitter: 0.3})
	for i := 0; i < 16; i++ {
		k := jitterKey(byte(i))
		if ta, tb := a.effectiveTTL(k), b.effectiveTTL(k); ta != tb {
			t.Fatalf("key %d: effective TTL %v vs %v", i, ta, tb)
		}
		if ta := a.effectiveTTL(k); ta < 42*time.Second || ta > time.Minute {
			t.Fatalf("key %d: effective TTL %v outside [0.7·TTL, TTL]", i, ta)
		}
	}
}

// TestLeaderPanicDoesNotStrandWaiters is the singleflight regression test:
// a panicking leader must close the flight and share a typed error with
// every coalesced follower instead of leaving them blocked forever.
func TestLeaderPanicDoesNotStrandWaiters(t *testing.T) {
	c := New(Config{})
	key := testKey(1)

	leaderIn := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	errs := make([]error, 4)

	// Leader: panics mid-solve.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _, errs[0] = c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
			close(leaderIn)
			<-release
			panic("solver bug")
		})
	}()
	<-leaderIn

	// Followers coalesce behind the leader.
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _, errs[i] = c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
				t.Error("follower must not solve after a leader panic: the panic error is shared")
				return testPlan("ISP"), nil
			})
		}(i)
	}
	// Give the followers time to park on the inflight call, then let the
	// leader panic.
	time.Sleep(20 * time.Millisecond)
	close(release)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters stranded after leader panic")
	}

	for i, err := range errs {
		if !degrade.IsPanic(err) {
			t.Fatalf("caller %d: err = %v, want a PanicError", i, err)
		}
	}
	var pe *degrade.PanicError
	if errors.As(errs[0], &pe); pe.Op != "plancache:leader:ISP" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v", pe)
	}

	// The flight must be cleaned up: a later Do solves normally.
	plan, outcome, _, err := c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
		return testPlan("ISP"), nil
	})
	if err != nil || plan == nil || outcome != Miss {
		t.Fatalf("post-panic Do: plan=%v outcome=%v err=%v", plan, outcome, err)
	}
}

// TestGetStaleServesExpired: GetStale returns entries past their TTL
// without refreshing them, and counts StaleServed.
func TestGetStaleServesExpired(t *testing.T) {
	now := time.Unix(0, 0)
	c := New(Config{TTL: time.Minute, Now: func() time.Time { return now }})
	key := testKey(1)
	if _, _, _, err := c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
		return testPlan("ISP"), nil
	}); err != nil {
		t.Fatal(err)
	}

	// Fresh: served, not stale.
	plan, age, stale, ok := c.GetStale(key)
	if !ok || stale || plan == nil || age != 0 {
		t.Fatalf("fresh GetStale: ok=%v stale=%v age=%v", ok, stale, age)
	}

	// Expired: Get refuses, GetStale serves.
	now = now.Add(2 * time.Minute)
	if _, _, ok := c.Get(key); ok {
		t.Fatal("Get returned an expired entry")
	}
	// Get dropped the expired entry — re-store and expire again via a
	// fresh key to exercise the serve-without-refresh path.
	key2 := testKey(2)
	if _, _, _, err := c.Do(context.Background(), key2, func(context.Context) (*scenario.Plan, error) {
		return testPlan("ISP"), nil
	}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	plan, age, stale, ok = c.GetStale(key2)
	if !ok || !stale || plan == nil || age != 2*time.Minute {
		t.Fatalf("expired GetStale: ok=%v stale=%v age=%v", ok, stale, age)
	}
	// Served but not refreshed: a second stale read sees the same age base.
	if _, age2, stale2, ok2 := c.GetStale(key2); !ok2 || !stale2 || age2 != 2*time.Minute {
		t.Fatalf("second GetStale: ok=%v stale=%v age=%v", ok2, stale2, age2)
	}
	if s := c.Stats(); s.StaleServed != 3 {
		t.Fatalf("StaleServed = %d, want 3", s.StaleServed)
	}

	// Missing key.
	if _, _, _, ok := c.GetStale(testKey(9)); ok {
		t.Fatal("GetStale invented an entry")
	}
}

// TestDoShardFault: an injected cache-shard fault surfaces as a transient
// UnavailableError without touching the flight or the stored entries.
func TestDoShardFault(t *testing.T) {
	c := New(Config{})
	key := testKey(1)
	if _, _, _, err := c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
		return testPlan("ISP"), nil
	}); err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.Profile{Seed: 1, Points: map[faultinject.Point]faultinject.Spec{
		faultinject.PointCacheShard: {ErrorRate: 1},
	}})
	defer faultinject.Disarm()

	_, _, _, err := c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
		t.Error("solve must not run when the shard is unavailable")
		return nil, nil
	})
	var ue *UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UnavailableError", err)
	}
	if !degrade.IsTransient(err) {
		t.Fatal("UnavailableError must be transient")
	}
	if s := c.Stats(); s.Unavailable != 1 {
		t.Fatalf("Unavailable = %d", s.Unavailable)
	}

	// Disarmed: the cached entry is still there and serves.
	faultinject.Disarm()
	_, outcome, _, err := c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
		return testPlan("ISP"), nil
	})
	if err != nil || outcome != Hit {
		t.Fatalf("post-fault Do: outcome=%v err=%v", outcome, err)
	}
}
