package plancache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netrecovery/internal/scenario"
)

// TestDoReelectionChurn hammers the leader-cancellation path: every round a
// leader is cancelled mid-solve while several followers are queued on its
// key. No round may stall — a follower must re-elect itself and finish the
// solve — and the Reelections counter must account for every follower that
// went back to compete after finding its leader dead.
func TestDoReelectionChurn(t *testing.T) {
	const (
		rounds    = 20
		followers = 4
	)
	c := New(Config{})
	var followerSolves atomic.Int64

	for round := 0; round < rounds; round++ {
		key := testKey(byte(round)) // fresh key: previous rounds stay cached
		leaderCtx, cancelLeader := context.WithCancel(context.Background())
		leaderStarted := make(chan struct{})
		leaderDone := make(chan error, 1)
		go func() {
			_, _, _, err := c.Do(leaderCtx, key, func(ctx context.Context) (*scenario.Plan, error) {
				close(leaderStarted)
				<-ctx.Done()
				return nil, ctx.Err()
			})
			leaderDone <- err
		}()
		<-leaderStarted

		var wg sync.WaitGroup
		errs := make([]error, followers)
		plans := make([]*scenario.Plan, followers)
		for f := 0; f < followers; f++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				plans[f], _, _, errs[f] = c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
					followerSolves.Add(1)
					return testPlan("ISP"), nil
				})
			}(f)
		}
		// Let the followers coalesce onto the doomed leader, then kill it.
		time.Sleep(20 * time.Millisecond)
		cancelLeader()

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: followers stalled after leader cancellation", round)
		}
		if err := <-leaderDone; err == nil {
			t.Fatalf("round %d: cancelled leader reported success", round)
		}
		for f := 0; f < followers; f++ {
			if errs[f] != nil {
				t.Fatalf("round %d follower %d: %v (leader cancellation leaked)", round, f, errs[f])
			}
			if plans[f] == nil || plans[f] != plans[0] {
				t.Fatalf("round %d follower %d: followers did not share one plan", round, f)
			}
		}
		// The re-elected solve stored the plan; the key now hits.
		if _, outcome, _, _ := c.Do(context.Background(), key, func(context.Context) (*scenario.Plan, error) {
			t.Fatalf("round %d: post-churn lookup solved again", round)
			return nil, nil
		}); outcome != Hit {
			t.Fatalf("round %d: post-churn outcome = %v, want Hit", round, outcome)
		}
	}

	st := c.Stats()
	// Every round at least one queued follower observed the dead leader and
	// re-elected (it then ran the successful solve); at most all of them did
	// before the new leader finished.
	if st.Reelections < rounds || st.Reelections > rounds*followers {
		t.Errorf("Reelections = %d, want within [%d, %d]", st.Reelections, rounds, rounds*followers)
	}
	// Exactly one follower solve per round: churn never duplicates work once
	// a new leader holds the key.
	if got := followerSolves.Load(); got != rounds {
		t.Errorf("follower solves = %d, want %d (one re-elected solve per round)", got, rounds)
	}
	if st.Misses != rounds {
		t.Errorf("Misses = %d, want %d", st.Misses, rounds)
	}
}
