// Package plancache is the content-addressed recovery-plan cache of the
// serving stack. Plans are deterministic functions of an immutable Scenario
// snapshot plus the solver configuration, so they are cached by content
// hash: the key combines the scenario fingerprint (see
// scenario.Fingerprint), the algorithm name and a digest of the
// answer-relevant solver options.
//
// The cache is a sharded LRU with TTL + max-entries eviction and
// singleflight request coalescing: N concurrent requests for the same key
// trigger exactly one solve, the rest wait for the leader and share its
// plan. Hit/miss/coalesce/eviction counters feed the server's /metrics
// endpoint and the facade's PlanCache.Stats.
package plancache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"netrecovery/internal/degrade"
	"netrecovery/internal/faultinject"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/obs"
	"netrecovery/internal/scenario"
)

// Key addresses one cached plan: the scenario content hash, the algorithm
// that solved it, and the digest of the solver options that can change the
// answer. Keys are comparable values, usable directly as map keys.
type Key struct {
	// Fingerprint is scenario.Fingerprint() of the solved snapshot.
	Fingerprint [32]byte
	// Algorithm is the registry name of the solver (ISP, OPT, ...).
	Algorithm string
	// Options is ParamsDigest of the solver options.
	Options [32]byte
}

// ParamsDigest hashes the answer-relevant solver options into the Options
// component of a Key: the ISP fast/exact mode and the OPT search budget.
// Params that can never change the resulting plan are deliberately
// excluded — Workers (the parallel search is deterministic across worker
// counts, see internal/milp) and Progress (pure observability) — so requests
// differing only in those knobs share cache entries.
func ParamsDigest(p heuristics.Params) [32]byte {
	var buf [2 + 8 + 8]byte
	buf[0] = 1 // digest layout version
	if p.Fast {
		buf[1] = 1
	}
	binary.BigEndian.PutUint64(buf[2:], uint64(p.OPTTimeLimit))
	binary.BigEndian.PutUint64(buf[10:], uint64(p.OPTMaxNodes))
	return sha256.Sum256(buf[:])
}

// Outcome reports how a Do call obtained its plan.
type Outcome int

// Do outcomes.
const (
	// Miss: this call was the leader and executed the solve.
	Miss Outcome = iota
	// Hit: the plan was served from the cache without any solve.
	Hit
	// Coalesced: another in-flight call was already solving the same key;
	// this call waited for it and shares its plan.
	Coalesced
)

// String renders the outcome as the wire/metrics label.
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Config parameterises New.
type Config struct {
	// MaxEntries bounds the number of cached plans across all shards
	// (rounded up to a multiple of the shard count; 0 means 1024). The
	// least-recently-used entry of a full shard is evicted on insert.
	MaxEntries int
	// TTL is the maximum age of a cached plan (0 = never expires). Expired
	// entries are dropped lazily on lookup.
	TTL time.Duration
	// TTLJitter shortens each entry's effective TTL by up to this fraction
	// of TTL, derived deterministically from the entry's fingerprint. A
	// value of 0.1 spreads the lifetimes of entries created together over
	// [0.9·TTL, TTL], so a burst of plans cached at the same instant does
	// not expire at the same instant and trigger a thundering herd of cold
	// re-solves. Clamped to [0, 1]; 0 disables jitter.
	TTLJitter float64
	// Shards is the number of independently locked shards (0 = 16, rounded
	// up to a power of two). More shards reduce lock contention under
	// concurrent load.
	Shards int
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits, Misses and Coalesced count Do outcomes.
	Hits, Misses, Coalesced uint64
	// Evictions counts entries dropped by LRU pressure, Expired entries
	// dropped because their TTL passed.
	Evictions, Expired uint64
	// Reelections counts followers that found their leader's solve cancelled
	// and went back to compete for leadership. A high rate means leaders are
	// being cancelled mid-solve while demand for the key persists (e.g.
	// impatient clients disconnecting under load).
	Reelections uint64
	// StaleServed counts GetStale lookups that returned an entry (the
	// degradation chain's last resort).
	StaleServed uint64
	// Unavailable counts Do calls refused by an injected cache-shard fault.
	Unavailable uint64
	// Entries is the current number of cached plans.
	Entries int
}

// entry is one cached plan.
type entry struct {
	key    Key
	plan   *scenario.Plan
	stored time.Time
	// ttl is this entry's jittered effective TTL (0 = never expires),
	// fixed at store time so the entry's lifetime is a deterministic
	// function of its key.
	ttl time.Duration
	// expireCounted dedups the Expired stat: an expired entry now outlives
	// its TTL (servable via GetStale until refreshed), so Do may observe
	// the same expiry many times.
	expireCounted bool
	element       *list.Element
}

// expiredLocked reports whether e is past its effective TTL at time now.
func (e *entry) expiredLocked(now time.Time) bool {
	return e.ttl > 0 && now.Sub(e.stored) > e.ttl
}

// UnavailableError reports a cache shard refused by an injected fault.
// It is transient: the caller may retry, or bypass the cache and solve
// directly.
type UnavailableError struct {
	Err error
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("plancache: shard unavailable: %v", e.Err)
}

func (e *UnavailableError) Unwrap() error { return e.Err }

// Transient marks shard unavailability as retryable.
func (e *UnavailableError) Transient() bool { return true }

// call is one in-flight solve that followers coalesce onto.
type call struct {
	done chan struct{}
	plan *scenario.Plan
	err  error
}

// shard is one independently locked slice of the key space.
type shard struct {
	mu       sync.Mutex
	entries  map[Key]*entry
	lru      *list.List // front = most recently used
	inflight map[Key]*call
}

// Cache is a sharded, coalescing, content-addressed plan cache. It is safe
// for concurrent use. The cached *scenario.Plan values are shared between
// callers and must be treated as immutable.
type Cache struct {
	shards      []*shard
	shardMax    int
	ttl         time.Duration
	ttlJitter   float64
	now         func() time.Time
	hits        atomic.Uint64
	misses      atomic.Uint64
	coalesced   atomic.Uint64
	evictions   atomic.Uint64
	expired     atomic.Uint64
	reelections atomic.Uint64
	staleServed atomic.Uint64
	unavailable atomic.Uint64
}

// New returns a cache configured by cfg.
func New(cfg Config) *Cache {
	shards := cfg.Shards
	if shards <= 0 {
		shards = 16
	}
	// Round up to a power of two so shard selection is a mask.
	n := 1
	for n < shards {
		n <<= 1
	}
	maxEntries := cfg.MaxEntries
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	perShard := (maxEntries + n - 1) / n
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	jitter := cfg.TTLJitter
	if jitter < 0 {
		jitter = 0
	}
	if jitter > 1 {
		jitter = 1
	}
	c := &Cache{
		shards:    make([]*shard, n),
		shardMax:  perShard,
		ttl:       cfg.TTL,
		ttlJitter: jitter,
		now:       now,
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			entries:  make(map[Key]*entry),
			lru:      list.New(),
			inflight: make(map[Key]*call),
		}
	}
	return c
}

// shardFor selects the shard of a key from its fingerprint (already a
// uniform hash; the algorithm and options are folded in so keys differing
// only there still spread).
func (c *Cache) shardFor(k Key) *shard {
	return c.shards[c.shardIndex(k)]
}

// shardIndex is the shard number a key maps to (also a trace attribute).
func (c *Cache) shardIndex(k Key) int {
	h := binary.BigEndian.Uint64(k.Fingerprint[:8])
	h ^= binary.BigEndian.Uint64(k.Options[:8])
	for i := 0; i < len(k.Algorithm); i++ {
		h = h*131 + uint64(k.Algorithm[i])
	}
	return int(h & uint64(len(c.shards)-1))
}

// Do returns the plan for key, solving at most once per key across all
// concurrent callers: a cached fresh plan is returned immediately (Hit); if
// another call is already solving the key, this call waits for it and shares
// the result (Coalesced); otherwise this call becomes the leader, runs solve
// and stores the plan (Miss).
//
// Cancelling ctx while waiting — either coalesced behind a leader or as the
// leader inside solve — returns promptly with the context's error. Errors
// are never cached; a leader whose solve failed with its own cancellation
// does not poison waiting followers, they re-elect a new leader and solve
// again. The age result is the time the returned plan spent in the cache
// (zero for Miss and Coalesced).
//
// The returned plan is shared with every other caller of the same key and
// must not be mutated.
func (c *Cache) Do(ctx context.Context, key Key, solve func(ctx context.Context) (*scenario.Plan, error)) (plan *scenario.Plan, outcome Outcome, age time.Duration, err error) {
	ctx, sp := obs.StartSpan(ctx, "cache.lookup")
	if sp != nil {
		sp.SetAttr("algorithm", key.Algorithm)
		sp.SetInt("shard", int64(c.shardIndex(key)))
		defer func() {
			if err != nil {
				sp.SetError(err)
			} else {
				sp.SetAttr("outcome", outcome.String())
				// The miss leader is the caller that executed the solve
				// (coalesced followers shared its result).
				sp.SetBool("leader", outcome == Miss)
			}
			sp.End()
		}()
	}
	return c.do(ctx, key, solve)
}

// do is Do minus the tracing shell.
func (c *Cache) do(ctx context.Context, key Key, solve func(ctx context.Context) (*scenario.Plan, error)) (plan *scenario.Plan, outcome Outcome, age time.Duration, err error) {
	if err := faultinject.Fire(ctx, faultinject.PointCacheShard); err != nil {
		var ie *faultinject.InjectedError
		if errors.As(err, &ie) {
			c.unavailable.Add(1)
			return nil, Miss, 0, &UnavailableError{Err: err}
		}
		// A context error out of an injected delay.
		return nil, Miss, 0, err
	}
	s := c.shardFor(key)
	for {
		if err := ctx.Err(); err != nil {
			return nil, Miss, 0, err
		}
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			if e.expiredLocked(c.now()) {
				// Expired: fall through to a fresh solve, but leave the
				// entry in place — a successful solve overwrites it, and
				// until then it remains servable through GetStale (the
				// degradation chain's stale stage). Count the expiry only
				// once per stored generation.
				if !e.expireCounted {
					e.expireCounted = true
					c.expired.Add(1)
				}
			} else {
				s.lru.MoveToFront(e.element)
				age := c.now().Sub(e.stored)
				s.mu.Unlock()
				c.hits.Add(1)
				return e.plan, Hit, age, nil
			}
		}
		if cl, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			select {
			case <-cl.done:
			case <-ctx.Done():
				return nil, Coalesced, 0, ctx.Err()
			}
			if cl.err == nil {
				c.coalesced.Add(1)
				return cl.plan, Coalesced, 0, nil
			}
			// The leader failed. Its own cancellation must not poison this
			// follower: retry (and typically become the new leader). Any
			// other solver error is deterministic for the key — share it.
			if errors.Is(cl.err, context.Canceled) || errors.Is(cl.err, context.DeadlineExceeded) {
				c.reelections.Add(1)
				continue
			}
			return nil, Coalesced, 0, cl.err
		}
		cl := &call{done: make(chan struct{})}
		s.inflight[key] = cl
		s.mu.Unlock()

		// The leader's solve runs behind a recovery boundary: a panicking
		// solver must become an error shared with the coalesced followers,
		// not a stranded inflight call whose done channel never closes.
		cl.plan, cl.err = c.leaderSolve(ctx, key, solve)
		if cl.err == nil && cl.plan == nil {
			cl.err = errors.New("plancache: solve returned a nil plan")
		}

		s.mu.Lock()
		delete(s.inflight, key)
		if cl.err == nil {
			s.storeLocked(c, key, cl.plan)
		}
		s.mu.Unlock()
		close(cl.done)

		if cl.err != nil {
			return nil, Miss, 0, cl.err
		}
		c.misses.Add(1)
		return cl.plan, Miss, 0, nil
	}
}

// leaderSolve executes the leader's solve with panic recovery, converting
// a panicking solver into a *degrade.PanicError so the normal
// inflight-cleanup path runs and followers share the error instead of
// waiting forever.
func (c *Cache) leaderSolve(ctx context.Context, key Key, solve func(ctx context.Context) (*scenario.Plan, error)) (plan *scenario.Plan, err error) {
	defer func() {
		if r := recover(); r != nil {
			plan, err = nil, degrade.Recovered("plancache:leader:"+key.Algorithm, r, debug.Stack())
		}
	}()
	return solve(ctx)
}

// Get returns the cached plan for key without solving, or nil. It counts as
// a hit when present and respects the TTL.
func (c *Cache) Get(key Key) (*scenario.Plan, time.Duration, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return nil, 0, false
	}
	if e.expiredLocked(c.now()) {
		s.removeLocked(e)
		c.expired.Add(1)
		return nil, 0, false
	}
	s.lru.MoveToFront(e.element)
	c.hits.Add(1)
	return e.plan, c.now().Sub(e.stored), true
}

// Peek returns the cached plan for key without counting a hit — the
// cluster peer-fill endpoint's lookup, which must not distort the local
// hit/miss ratio (a peer's lookup is not local demand). It respects the
// TTL like Get (expired entries are not served, but are left in place for
// GetStale) and refreshes LRU recency: a plan the fleet keeps asking for
// is a plan worth keeping.
func (c *Cache) Peek(key Key) (*scenario.Plan, time.Duration, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || e.expiredLocked(c.now()) {
		return nil, 0, false
	}
	s.lru.MoveToFront(e.element)
	return e.plan, c.now().Sub(e.stored), true
}

// GetStale returns the cached plan for key even when its TTL has passed —
// the degradation chain's last resort when every solver stage has failed
// or timed out. A stale entry is served (and counted in StaleServed) but
// deliberately left in place un-refreshed: the next Do still sees it as
// expired and re-solves. The age return is the entry's time in cache; the
// stale return reports whether the TTL had passed.
func (c *Cache) GetStale(key Key) (plan *scenario.Plan, age time.Duration, stale, ok bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, present := s.entries[key]
	if !present {
		return nil, 0, false, false
	}
	s.lru.MoveToFront(e.element)
	c.staleServed.Add(1)
	return e.plan, c.now().Sub(e.stored), e.expiredLocked(c.now()), true
}

// storeLocked inserts (or refreshes) an entry, evicting the shard's LRU tail
// when full. Callers hold s.mu.
func (s *shard) storeLocked(c *Cache, key Key, plan *scenario.Plan) {
	if e, ok := s.entries[key]; ok {
		e.plan = plan
		e.stored = c.now()
		e.expireCounted = false
		s.lru.MoveToFront(e.element)
		return
	}
	for s.lru.Len() >= c.shardMax {
		tail := s.lru.Back()
		if tail == nil {
			break
		}
		s.removeLocked(tail.Value.(*entry))
		c.evictions.Add(1)
	}
	e := &entry{key: key, plan: plan, stored: c.now(), ttl: c.effectiveTTL(key)}
	e.element = s.lru.PushFront(e)
	s.entries[key] = e
}

// effectiveTTL is the configured TTL shortened by the key's deterministic
// jitter fraction: u is drawn uniformly from the fingerprint (already a
// content hash, so uniform and stable for the key), giving each entry a
// lifetime in [TTL·(1−TTLJitter), TTL] that never varies between runs.
func (c *Cache) effectiveTTL(k Key) time.Duration {
	if c.ttl <= 0 {
		return 0
	}
	if c.ttlJitter <= 0 {
		return c.ttl
	}
	u := float64(binary.BigEndian.Uint64(k.Fingerprint[16:24])>>11) / float64(uint64(1)<<53)
	return c.ttl - time.Duration(c.ttlJitter*u*float64(c.ttl))
}

// removeLocked drops an entry. Callers hold s.mu.
func (s *shard) removeLocked(e *entry) {
	s.lru.Remove(e.element)
	delete(s.entries, e.key)
}

// Len returns the current number of cached plans.
func (c *Cache) Len() int {
	total := 0
	for _, s := range c.shards {
		s.mu.Lock()
		total += len(s.entries)
		s.mu.Unlock()
	}
	return total
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Coalesced:   c.coalesced.Load(),
		Evictions:   c.evictions.Load(),
		Expired:     c.expired.Load(),
		Reelections: c.reelections.Load(),
		StaleServed: c.staleServed.Load(),
		Unavailable: c.unavailable.Load(),
		Entries:     c.Len(),
	}
}
