// Package flow implements the multi-commodity flow machinery shared by the
// recovery algorithms: the routability test of §IV-A (system (2)), the
// maximum-split LP of §IV-C (Decision 2), the multi-commodity relaxation of
// §VI-A (problem (8)) and a constructive per-demand routing fallback used on
// instances too large for the exact LP. RoutabilityTester warm-starts the
// per-iteration routability LPs across an ISP run.
package flow

import (
	"fmt"
	"math"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
	"netrecovery/internal/lp"
	"netrecovery/internal/scenario"
)

// Instance is a multi-commodity flow instance: a supply graph restricted to
// its usable elements, per-edge residual capacities and a set of demands.
type Instance struct {
	// Graph is the full supply graph (element attributes, adjacency).
	Graph *graph.Graph
	// Capacities overrides edge capacities (residual capacities); edges
	// absent from the map use the capacity stored on the graph. A nil map
	// uses stored capacities for every edge.
	Capacities map[graph.EdgeID]float64
	// ExcludedNodes and ExcludedEdges are unusable elements (broken and not
	// yet repaired). Edges incident to an excluded node are implicitly
	// unusable as well.
	ExcludedNodes map[graph.NodeID]bool
	ExcludedEdges map[graph.EdgeID]bool
	// Demands are the flows to route.
	Demands []demand.Pair
}

// Capacity returns the usable capacity of edge id: 0 if the edge or either
// endpoint is excluded, otherwise the residual (or stored) capacity.
func (in *Instance) Capacity(id graph.EdgeID) float64 {
	if in.ExcludedEdges[id] {
		return 0
	}
	e := in.Graph.Edge(id)
	if in.ExcludedNodes[e.From] || in.ExcludedNodes[e.To] {
		return 0
	}
	if in.Capacities != nil {
		if c, ok := in.Capacities[id]; ok {
			if c < 0 {
				return 0
			}
			return c
		}
	}
	return e.Capacity
}

// UsableEdges returns the IDs of edges with positive usable capacity.
func (in *Instance) UsableEdges() []graph.EdgeID {
	var out []graph.EdgeID
	for i := 0; i < in.Graph.NumEdges(); i++ {
		id := graph.EdgeID(i)
		if in.Capacity(id) > capacityEpsilon {
			out = append(out, id)
		}
	}
	return out
}

// NumUsableEdges returns the number of edges with positive usable capacity
// without materialising the list.
func (in *Instance) NumUsableEdges() int {
	n := 0
	for i := 0; i < in.Graph.NumEdges(); i++ {
		if in.Capacity(graph.EdgeID(i)) > capacityEpsilon {
			n++
		}
	}
	return n
}

// TotalDemand returns the sum of the demand flows.
func (in *Instance) TotalDemand() float64 {
	total := 0.0
	for _, d := range in.Demands {
		total += d.Flow
	}
	return total
}

// ActiveDemands returns the demands with strictly positive flow.
func (in *Instance) ActiveDemands() []demand.Pair {
	var out []demand.Pair
	for _, d := range in.Demands {
		if d.Flow > capacityEpsilon {
			out = append(out, d)
		}
	}
	return out
}

// ActiveDemandsInto appends the demands with strictly positive flow to
// buf[:0] and returns the result. The returned slice aliases buf; hot paths
// use it to avoid the per-call allocation of ActiveDemands.
func (in *Instance) ActiveDemandsInto(buf []demand.Pair) []demand.Pair {
	buf = buf[:0]
	for _, d := range in.Demands {
		if d.Flow > capacityEpsilon {
			buf = append(buf, d)
		}
	}
	return buf
}

// Validate checks that every demand endpoint exists and is not excluded.
func (in *Instance) Validate() error {
	if in.Graph == nil {
		return fmt.Errorf("flow: nil graph")
	}
	for _, d := range in.Demands {
		if !in.Graph.HasNode(d.Source) || !in.Graph.HasNode(d.Target) {
			return fmt.Errorf("flow: demand (%d,%d) endpoint not in graph", d.Source, d.Target)
		}
		if d.Flow > capacityEpsilon && (in.ExcludedNodes[d.Source] || in.ExcludedNodes[d.Target]) {
			return fmt.Errorf("flow: demand (%d,%d) endpoint is excluded", d.Source, d.Target)
		}
	}
	return nil
}

// capacityEpsilon is the tolerance below which capacities and flows are
// treated as zero throughout the package.
const capacityEpsilon = 1e-9

// Mode selects how the routability test is performed.
type Mode int

// Routability test modes.
const (
	// ModeAuto uses the exact LP when the model is small enough and falls
	// back to the constructive test otherwise.
	ModeAuto Mode = iota + 1
	// ModeExact always uses the LP (may be slow or memory-hungry on very
	// large instances).
	ModeExact
	// ModeConstructive always uses the greedy constructive test, which is
	// sufficient but not necessary: a "false" answer does not prove the
	// demand unroutable.
	ModeConstructive
)

// Options tune the routability test.
type Options struct {
	Mode Mode
	// MaxLPVariables bounds the LP size in ModeAuto; above it the
	// constructive test is used. Zero means 40000.
	MaxLPVariables int
	// DenseLP forces the legacy dense tableau LP solver (no warm starts).
	// It is a testing fallback used to cross-check the sparse revised
	// simplex end to end; production paths leave it false.
	DenseLP bool
}

func (o Options) withDefaults() Options {
	if o.Mode == 0 {
		o.Mode = ModeAuto
	}
	if o.MaxLPVariables == 0 {
		o.MaxLPVariables = 40000
	}
	return o
}

// Result is the outcome of a routability test.
type Result struct {
	// Routable reports whether the demands can be routed simultaneously.
	// With the constructive method a false value is inconclusive.
	Routable bool
	// Exact reports whether the answer came from the LP (necessary and
	// sufficient) rather than the constructive heuristic.
	Exact bool
	// Routing is a feasible routing when Routable is true.
	Routing scenario.Routing
}

// arcVar indexes the LP variable of the directed flow of one demand on one
// edge direction.
type arcVar struct {
	pair    int // index into Demands
	edge    graph.EdgeID
	forward bool // true: From->To
}

// buildRoutabilityLP constructs the LP of system (2): capacity rows per
// usable edge and conservation rows per (node, demand), with zero objective
// unless a custom objective is installed by the caller afterwards.
//
// It returns the problem, the variable index map and the list of usable
// edges (for result extraction).
func buildRoutabilityLP(in *Instance) (*lp.Problem, map[arcVar]int, []graph.EdgeID) {
	prob := lp.New(lp.Minimize)
	usable := in.UsableEdges()
	vars := make(map[arcVar]int, 2*len(usable)*len(in.Demands))

	for pi := range in.Demands {
		if in.Demands[pi].Flow <= capacityEpsilon {
			continue
		}
		for _, eid := range usable {
			fwd := prob.AddVariable(0, fmt.Sprintf("f_%d_%d_fwd", pi, eid))
			bwd := prob.AddVariable(0, fmt.Sprintf("f_%d_%d_bwd", pi, eid))
			vars[arcVar{pair: pi, edge: eid, forward: true}] = fwd
			vars[arcVar{pair: pi, edge: eid, forward: false}] = bwd
		}
	}

	// Capacity rows: sum over demands of both directions <= capacity.
	for _, eid := range usable {
		var terms []lp.Term
		for pi := range in.Demands {
			if in.Demands[pi].Flow <= capacityEpsilon {
				continue
			}
			terms = append(terms,
				lp.Term{Var: vars[arcVar{pair: pi, edge: eid, forward: true}], Coef: 1},
				lp.Term{Var: vars[arcVar{pair: pi, edge: eid, forward: false}], Coef: 1},
			)
		}
		if len(terms) == 0 {
			continue
		}
		_ = prob.AddConstraint(terms, lp.LessEq, in.Capacity(eid), fmt.Sprintf("cap_%d", eid))
	}

	// Conservation rows per (demand, node): outflow - inflow = b^h_i.
	for pi, d := range in.Demands {
		if d.Flow <= capacityEpsilon {
			continue
		}
		for v := 0; v < in.Graph.NumNodes(); v++ {
			node := graph.NodeID(v)
			if in.ExcludedNodes[node] && node != d.Source && node != d.Target {
				continue
			}
			var terms []lp.Term
			for _, eid := range in.Graph.AdjacentEdges(node) {
				if in.Capacity(eid) <= capacityEpsilon {
					continue
				}
				e := in.Graph.Edge(eid)
				// Outflow from node: forward if node is From, else backward.
				outVar := vars[arcVar{pair: pi, edge: eid, forward: e.From == node}]
				inVar := vars[arcVar{pair: pi, edge: eid, forward: e.From != node}]
				terms = append(terms,
					lp.Term{Var: outVar, Coef: 1},
					lp.Term{Var: inVar, Coef: -1},
				)
			}
			rhs := 0.0
			switch node {
			case d.Source:
				rhs = d.Flow
			case d.Target:
				rhs = -d.Flow
			}
			if len(terms) == 0 {
				if math.Abs(rhs) > capacityEpsilon {
					// Demand endpoint with no usable incident edge: force
					// infeasibility with an explicit contradictory row.
					zero := prob.AddVariable(0, "zero")
					_ = prob.AddConstraint([]lp.Term{{Var: zero, Coef: 1}}, lp.Equal, 0, "pin")
					_ = prob.AddConstraint([]lp.Term{{Var: zero, Coef: 1}}, lp.Equal, rhs, "isolated")
				}
				continue
			}
			_ = prob.AddConstraint(terms, lp.Equal, rhs, fmt.Sprintf("cons_%d_%d", pi, v))
		}
	}
	return prob, vars, usable
}

// extractRouting converts an LP solution over arc variables into a
// per-demand net edge routing.
func extractRouting(in *Instance, sol lp.Solution, vars map[arcVar]int, usable []graph.EdgeID) scenario.Routing {
	routing := make(scenario.Routing)
	for pi, d := range in.Demands {
		if d.Flow <= capacityEpsilon {
			continue
		}
		for _, eid := range usable {
			fwd := sol.Value(vars[arcVar{pair: pi, edge: eid, forward: true}])
			bwd := sol.Value(vars[arcVar{pair: pi, edge: eid, forward: false}])
			net := fwd - bwd
			if math.Abs(net) > capacityEpsilon {
				routing.AddFlow(d.ID, eid, net)
			}
		}
	}
	return routing
}
