package flow

import (
	"math"
	"math/rand"
	"testing"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
	"netrecovery/internal/topology"
)

// checkRoutingServes verifies that a routing delivers each demand's full
// flow to its target and respects the instance's usable capacities.
func checkRoutingServes(t *testing.T, in *Instance, res Result) {
	t.Helper()
	if !res.Routable || res.Routing == nil {
		t.Fatalf("expected a routable result with a routing, got %+v", res.Routable)
	}
	load := res.Routing.EdgeLoad()
	for eid, l := range load {
		if l > in.Capacity(eid)+1e-6 {
			t.Errorf("edge %d overloaded: %.6f > %.6f", eid, l, in.Capacity(eid))
		}
	}
	for _, d := range in.ActiveDemands() {
		net := 0.0
		for eid, f := range res.Routing[d.ID] {
			e := in.Graph.Edge(eid)
			if e.To == d.Target {
				net += f
			}
			if e.From == d.Target {
				net -= f
			}
		}
		if math.Abs(net-d.Flow) > 1e-6 {
			t.Errorf("demand %d delivered %.6f, want %.6f", d.ID, net, d.Flow)
		}
	}
}

// TestRoutabilityTesterMatchesOneShot drives a RoutabilityTester through a
// randomised sequence of instance mutations shaped like ISP iterations
// (capacity consumption, repairs growing the usable set, occasional demand
// changes) and requires every answer to match the one-shot CheckRoutability,
// with valid routings on routable instances. It also pins the warm-start
// machinery: with an unchanged demand layout, repeat calls must reuse the
// basis instead of rebuilding.
func TestRoutabilityTesterMatchesOneShot(t *testing.T) {
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(11))
	dg, err := demand.GenerateFarApartPairs(g, 3, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	demands := dg.Active()

	// Start with every edge at partial capacity and a broken core that
	// shrinks over time, like ISP's repair list growing.
	caps := make(map[graph.EdgeID]float64, g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		caps[graph.EdgeID(i)] = g.Edge(graph.EdgeID(i)).Capacity
	}
	excludedEdges := make(map[graph.EdgeID]bool)
	for i := 0; i < g.NumEdges(); i += 2 {
		excludedEdges[graph.EdgeID(i)] = true
	}

	tester := NewRoutabilityTester()
	opts := Options{Mode: ModeExact}
	for step := 0; step < 40; step++ {
		in := &Instance{Graph: g, Capacities: caps, ExcludedEdges: excludedEdges, Demands: demands}
		got := tester.Check(in, opts)
		want := CheckRoutability(in, opts)
		if got.Routable != want.Routable {
			t.Fatalf("step %d: tester=%v one-shot=%v", step, got.Routable, want.Routable)
		}
		if got.Routable {
			checkRoutingServes(t, in, got)
		}

		// Mutate like an ISP iteration: repair one excluded edge, consume a
		// little capacity somewhere, occasionally resize a demand (which
		// changes the flow but not the layout).
		for eid := range excludedEdges {
			delete(excludedEdges, eid)
			break
		}
		victim := graph.EdgeID(rng.Intn(g.NumEdges()))
		if caps[victim] > 2 {
			caps[victim] -= 1
		}
		if step%7 == 3 {
			demands[rng.Intn(len(demands))].Flow *= 0.9
		}
	}
	if tester.Stats.Calls == 0 || tester.Stats.WarmStarts == 0 {
		t.Fatalf("tester never warm-started: %+v", tester.Stats)
	}
	if tester.Stats.Rebuilds != 1 {
		t.Errorf("layout unchanged throughout, want exactly 1 rebuild, got %+v", tester.Stats)
	}
}

// TestRoutabilityTesterOneShotFallback pins the layout-size guard: when the
// full-edge warm-startable model would exceed MaxLPVariables (a large graph
// with a small usable core), the tester must answer exactly via the one-shot
// usable-edge LP instead of building the oversized model.
func TestRoutabilityTesterOneShotFallback(t *testing.T) {
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(3))
	dg, err := demand.GenerateFarApartPairs(g, 2, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	in := &Instance{Graph: g, Demands: dg.Active()}
	// Full layout needs 2 * 64 edges * 2 demands = 256 variables; cap below
	// that but above the usable-edge model so ModeExact stays on the LP.
	tester := NewRoutabilityTester()
	opts := Options{Mode: ModeExact, MaxLPVariables: 200}
	got := tester.Check(in, opts)
	want := CheckRoutability(in, Options{Mode: ModeExact})
	if got.Routable != want.Routable || !got.Exact {
		t.Fatalf("fallback answer mismatch: got=%+v want routable=%v", got, want.Routable)
	}
	if got.Routable {
		checkRoutingServes(t, in, got)
	}
	if tester.Stats.OneShots != 1 || tester.Stats.Rebuilds != 0 || tester.Stats.Calls != 0 {
		t.Errorf("expected a one-shot solve and no model build, got %+v", tester.Stats)
	}
}

// TestRoutabilityTesterRebuildsOnLayoutChange pins the rebuild trigger: a
// changed commodity list (an ISP split) must rebuild the model, and the
// answers must stay correct across the transition.
func TestRoutabilityTesterRebuildsOnLayoutChange(t *testing.T) {
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(5))
	dg, err := demand.GenerateFarApartPairs(g, 2, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	demands := dg.Active()

	tester := NewRoutabilityTester()
	opts := Options{Mode: ModeExact}
	in := &Instance{Graph: g, Demands: demands}
	if res := tester.Check(in, opts); !res.Routable {
		t.Fatal("full network must route the demands")
	}

	// "Split" one demand through an intermediate node: replace it with two
	// derived pairs, changing the commodity layout.
	split := demands[0]
	via := graph.NodeID(10)
	if via == split.Source || via == split.Target {
		via = 11
	}
	newDemands := append([]demand.Pair{}, demands[1:]...)
	newDemands = append(newDemands,
		demand.Pair{ID: 100, Source: split.Source, Target: via, Flow: split.Flow},
		demand.Pair{ID: 101, Source: via, Target: split.Target, Flow: split.Flow},
	)
	in2 := &Instance{Graph: g, Demands: newDemands}
	got := tester.Check(in2, opts)
	want := CheckRoutability(in2, opts)
	if got.Routable != want.Routable {
		t.Fatalf("post-split: tester=%v one-shot=%v", got.Routable, want.Routable)
	}
	if got.Routable {
		checkRoutingServes(t, in2, got)
	}
	if tester.Stats.Rebuilds != 2 {
		t.Errorf("want 2 rebuilds (initial + layout change), got %+v", tester.Stats)
	}
}
