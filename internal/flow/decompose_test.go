package flow

import (
	"math"
	"testing"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
)

func TestDecomposeSinglePath(t *testing.T) {
	// Line 0-1-2 carrying 5 units for pair 0.
	g := graph.New(3, 2)
	for i := 0; i < 3; i++ {
		g.AddNode("", 0, 0, 1)
	}
	e0 := g.MustAddEdge(0, 1, 10, 1)
	e1 := g.MustAddEdge(1, 2, 10, 1)
	routing := scenario.Routing{}
	routing.AddFlow(0, e0, 5)
	routing.AddFlow(0, e1, 5)

	paths := DecomposeRouting(g, routing)
	if len(paths) != 1 {
		t.Fatalf("paths = %v, want 1", paths)
	}
	if paths[0].Flow != 5 || paths[0].Path.Len() != 2 {
		t.Errorf("path = %+v", paths[0])
	}
	if paths[0].Path.Source() != 0 || paths[0].Path.Target() != 2 {
		t.Errorf("endpoints = %d -> %d", paths[0].Path.Source(), paths[0].Path.Target())
	}
	if err := paths[0].Path.Validate(g); err != nil {
		t.Errorf("invalid path: %v", err)
	}
}

func TestDecomposeSplitsAcrossTwoPaths(t *testing.T) {
	// Diamond carrying 10 through node 1 and 5 through node 2.
	g := diamond([4]float64{10, 10, 5, 5})
	routing := scenario.Routing{}
	routing.AddFlow(3, 0, 10) // 0->1
	routing.AddFlow(3, 1, 10) // 1->3
	routing.AddFlow(3, 2, 5)  // 0->2
	routing.AddFlow(3, 3, 5)  // 2->3

	paths := DecomposeRouting(g, routing)
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2", paths)
	}
	total := 0.0
	for _, p := range paths {
		total += p.Flow
		if p.Pair != 3 {
			t.Errorf("pair = %d, want 3", p.Pair)
		}
		if err := p.Path.Validate(g); err != nil {
			t.Errorf("invalid path: %v", err)
		}
	}
	if math.Abs(total-15) > 1e-9 {
		t.Errorf("total decomposed flow = %f, want 15", total)
	}
}

func TestDecomposeReverseOrientedFlow(t *testing.T) {
	// Flow recorded against the edge orientation: edge built 1->0 but the
	// demand goes 0->1 (negative sign).
	g := graph.New(2, 1)
	g.AddNode("", 0, 0, 1)
	g.AddNode("", 0, 0, 1)
	e := g.MustAddEdge(1, 0, 10, 1)
	routing := scenario.Routing{}
	routing.AddFlow(0, e, -4) // 4 units from node 0 to node 1
	paths := DecomposeRouting(g, routing)
	if len(paths) != 1 || paths[0].Flow != 4 {
		t.Fatalf("paths = %+v", paths)
	}
	if paths[0].Path.Source() != 0 || paths[0].Path.Target() != 1 {
		t.Errorf("endpoints = %d -> %d, want 0 -> 1", paths[0].Path.Source(), paths[0].Path.Target())
	}
}

func TestDecomposeIgnoresCycles(t *testing.T) {
	// A triangle of circulating flow plus a real 0->3 path: the cycle must
	// not produce a path.
	g := graph.New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0, 1)
	}
	e01 := g.MustAddEdge(0, 1, 10, 1)
	e12 := g.MustAddEdge(1, 2, 10, 1)
	e20 := g.MustAddEdge(2, 0, 10, 1)
	e03 := g.MustAddEdge(0, 3, 10, 1)
	routing := scenario.Routing{}
	routing.AddFlow(0, e01, 2)
	routing.AddFlow(0, e12, 2)
	routing.AddFlow(0, e20, 2)
	routing.AddFlow(0, e03, 7)

	paths := DecomposeRouting(g, routing)
	total := 0.0
	for _, p := range paths {
		if p.Path.ContainsEdge(e01) && p.Path.ContainsEdge(e12) && p.Path.ContainsEdge(e20) {
			t.Errorf("cycle reported as a path: %+v", p)
		}
		total += p.Flow
	}
	if math.Abs(total-7) > 1e-9 {
		t.Errorf("decomposed flow = %f, want 7 (cycle discarded)", total)
	}
}

func TestDecomposeRealRouting(t *testing.T) {
	// End to end: decompose the routing produced by the exact routability
	// test and check that per-pair path flows sum to the demand.
	g := diamond([4]float64{10, 10, 5, 5})
	demands := []demand.Pair{
		{ID: 0, Source: 0, Target: 3, Flow: 12},
		{ID: 1, Source: 1, Target: 2, Flow: 2},
	}
	in := &Instance{Graph: g, Demands: demands}
	res := CheckRoutability(in, Options{Mode: ModeExact})
	if !res.Routable {
		t.Fatal("instance should be routable")
	}
	paths := DecomposeRouting(g, res.Routing)
	perPair := make(map[demand.PairID]float64)
	for _, p := range paths {
		if err := p.Path.Validate(g); err != nil {
			t.Errorf("invalid path: %v", err)
		}
		perPair[p.Pair] += p.Flow
	}
	for _, d := range demands {
		if math.Abs(perPair[d.ID]-d.Flow) > 1e-6 {
			t.Errorf("pair %d decomposed to %f units, want %f", d.ID, perPair[d.ID], d.Flow)
		}
	}
}

func TestDecomposeEmptyRouting(t *testing.T) {
	g := diamond([4]float64{1, 1, 1, 1})
	if paths := DecomposeRouting(g, scenario.Routing{}); len(paths) != 0 {
		t.Errorf("paths = %v, want none", paths)
	}
	routing := scenario.Routing{}
	routing.AddFlow(0, 0, 1e-15) // below tolerance
	if paths := DecomposeRouting(g, routing); len(paths) != 0 {
		t.Errorf("paths = %v, want none for sub-tolerance flow", paths)
	}
}
