package flow

import (
	"math"
	"testing"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
)

// diamond builds the 4-node diamond 0-(1|2)-3 with the given capacities on
// the four edges (0-1, 1-3, 0-2, 2-3).
func diamond(caps [4]float64) *graph.Graph {
	g := graph.New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode("", float64(i), float64(i%2), 1)
	}
	g.MustAddEdge(0, 1, caps[0], 1)
	g.MustAddEdge(1, 3, caps[1], 1)
	g.MustAddEdge(0, 2, caps[2], 1)
	g.MustAddEdge(2, 3, caps[3], 1)
	return g
}

func pairs(ps ...demand.Pair) []demand.Pair { return ps }

func TestInstanceCapacityAndExclusions(t *testing.T) {
	g := diamond([4]float64{10, 10, 5, 5})
	in := &Instance{
		Graph:         g,
		Capacities:    map[graph.EdgeID]float64{0: 3},
		ExcludedNodes: map[graph.NodeID]bool{2: true},
		ExcludedEdges: map[graph.EdgeID]bool{1: true},
	}
	if c := in.Capacity(0); c != 3 {
		t.Errorf("Capacity(0) = %f, want 3 (override)", c)
	}
	if c := in.Capacity(1); c != 0 {
		t.Errorf("Capacity(1) = %f, want 0 (excluded edge)", c)
	}
	if c := in.Capacity(2); c != 0 {
		t.Errorf("Capacity(2) = %f, want 0 (excluded endpoint)", c)
	}
	usable := in.UsableEdges()
	if len(usable) != 1 || usable[0] != 0 {
		t.Errorf("UsableEdges = %v, want [0]", usable)
	}
	in.Capacities[0] = -5
	if c := in.Capacity(0); c != 0 {
		t.Errorf("negative override should clamp to 0, got %f", c)
	}
}

func TestInstanceValidate(t *testing.T) {
	g := diamond([4]float64{1, 1, 1, 1})
	good := &Instance{Graph: g, Demands: pairs(demand.Pair{ID: 0, Source: 0, Target: 3, Flow: 1})}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	bad := &Instance{Graph: g, Demands: pairs(demand.Pair{ID: 0, Source: 0, Target: 99, Flow: 1})}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for unknown endpoint")
	}
	excl := &Instance{
		Graph:         g,
		Demands:       pairs(demand.Pair{ID: 0, Source: 0, Target: 3, Flow: 1}),
		ExcludedNodes: map[graph.NodeID]bool{0: true},
	}
	if err := excl.Validate(); err == nil {
		t.Error("expected error for excluded endpoint")
	}
	if err := (&Instance{}).Validate(); err == nil {
		t.Error("expected error for nil graph")
	}
}

func TestRoutabilitySingleDemandFeasible(t *testing.T) {
	g := diamond([4]float64{10, 10, 5, 5})
	in := &Instance{Graph: g, Demands: pairs(demand.Pair{ID: 0, Source: 0, Target: 3, Flow: 12})}
	for _, mode := range []Mode{ModeExact, ModeConstructive, ModeAuto} {
		res := CheckRoutability(in, Options{Mode: mode})
		if !res.Routable {
			t.Errorf("mode %d: demand 12 should be routable (capacity 15)", mode)
		}
		if mode == ModeExact && !res.Exact {
			t.Error("exact mode should report Exact")
		}
		if res.Routing != nil {
			checkRoutingFeasible(t, in, res.Routing)
		}
	}
}

func TestRoutabilityInfeasibleByCapacity(t *testing.T) {
	g := diamond([4]float64{10, 10, 5, 5})
	in := &Instance{Graph: g, Demands: pairs(demand.Pair{ID: 0, Source: 0, Target: 3, Flow: 20})}
	res := CheckRoutability(in, Options{Mode: ModeExact})
	if res.Routable {
		t.Error("demand 20 should not be routable (max flow 15)")
	}
}

func TestRoutabilityTwoCompetingDemands(t *testing.T) {
	// Demands 0->3 and 1->2 share the diamond. Each needs 8; edge capacities
	// allow at most 15 across the 0-3 cut, and the 1->2 demand must traverse
	// either 1-0-2 or 1-3-2.
	g := diamond([4]float64{10, 10, 5, 5})
	in := &Instance{Graph: g, Demands: pairs(
		demand.Pair{ID: 0, Source: 0, Target: 3, Flow: 8},
		demand.Pair{ID: 1, Source: 1, Target: 2, Flow: 4},
	)}
	res := CheckRoutability(in, Options{Mode: ModeExact})
	if !res.Routable {
		t.Fatal("joint demand should be routable")
	}
	checkRoutingFeasible(t, in, res.Routing)

	// Push the second demand beyond what sharing allows.
	in.Demands[1].Flow = 12
	res = CheckRoutability(in, Options{Mode: ModeExact})
	if res.Routable {
		t.Error("joint demand should not be routable")
	}
}

func TestRoutabilityEmptyDemand(t *testing.T) {
	g := diamond([4]float64{1, 1, 1, 1})
	res := CheckRoutability(&Instance{Graph: g}, Options{})
	if !res.Routable || !res.Exact {
		t.Error("empty demand is trivially routable")
	}
}

func TestRoutabilityExcludedElements(t *testing.T) {
	g := diamond([4]float64{10, 10, 10, 10})
	in := &Instance{
		Graph:         g,
		Demands:       pairs(demand.Pair{ID: 0, Source: 0, Target: 3, Flow: 15}),
		ExcludedNodes: map[graph.NodeID]bool{2: true},
	}
	// Only the 0-1-3 route remains (capacity 10): 15 not routable, 10 is.
	if CheckRoutability(in, Options{Mode: ModeExact}).Routable {
		t.Error("15 units should not fit through a single 10-unit route")
	}
	in.Demands[0].Flow = 10
	if !CheckRoutability(in, Options{Mode: ModeExact}).Routable {
		t.Error("10 units should fit")
	}
}

func TestConstructiveRoutingOrderingAndResiduals(t *testing.T) {
	g := diamond([4]float64{10, 10, 5, 5})
	in := &Instance{Graph: g, Demands: pairs(
		demand.Pair{ID: 0, Source: 0, Target: 3, Flow: 9},
		demand.Pair{ID: 1, Source: 0, Target: 3, Flow: 6},
	)}
	routing, ok := ConstructiveRouting(in)
	if !ok {
		t.Fatal("constructive routing should succeed (total 15 = max flow)")
	}
	checkRoutingFeasible(t, in, routing)
}

func TestConstructiveRoutingFailure(t *testing.T) {
	g := diamond([4]float64{2, 2, 2, 2})
	in := &Instance{Graph: g, Demands: pairs(demand.Pair{ID: 0, Source: 0, Target: 3, Flow: 10})}
	if _, ok := ConstructiveRouting(in); ok {
		t.Error("constructive routing should fail for demand 10 over capacity 4")
	}
}

func TestRouteSingleDemand(t *testing.T) {
	g := diamond([4]float64{10, 10, 5, 5})
	in := &Instance{Graph: g}
	flows, routed := RouteSingleDemand(in, 0, 3, 7)
	if math.Abs(routed-7) > 1e-9 {
		t.Errorf("routed = %f, want 7", routed)
	}
	if len(flows) == 0 {
		t.Error("expected non-empty flow map")
	}
	_, routed = RouteSingleDemand(in, 0, 3, 100)
	if math.Abs(routed-15) > 1e-9 {
		t.Errorf("routed = %f, want max flow 15", routed)
	}
	flows, routed = RouteSingleDemand(in, 0, 3, 0)
	if routed != 0 || flows != nil {
		t.Error("zero request should route nothing")
	}
}

func TestMaxSplitBasic(t *testing.T) {
	// Path 0-1-2 with capacity 10; demand 0->2 of 6. Splitting through node
	// 1 should allow the full 6 units.
	g := graph.New(3, 2)
	for i := 0; i < 3; i++ {
		g.AddNode("", float64(i), 0, 1)
	}
	g.MustAddEdge(0, 1, 10, 1)
	g.MustAddEdge(1, 2, 10, 1)
	d := demand.Pair{ID: 0, Source: 0, Target: 2, Flow: 6}
	in := &Instance{Graph: g, Demands: pairs(d)}
	dx, err := MaxSplit(in, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dx-6) > 1e-6 {
		t.Errorf("dx = %f, want 6", dx)
	}
}

func TestMaxSplitLimitedByCapacity(t *testing.T) {
	// Diamond with a cheap wide route 0-2-3 (cap 10) and a narrow route
	// through node 1 (cap 4). Splitting the 0->3 demand of 10 through node 1
	// can carry at most 4 units.
	g := diamond([4]float64{4, 4, 10, 10})
	d := demand.Pair{ID: 0, Source: 0, Target: 3, Flow: 10}
	in := &Instance{Graph: g, Demands: pairs(d)}
	dx, err := MaxSplit(in, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dx-4) > 1e-6 {
		t.Errorf("dx = %f, want 4", dx)
	}
}

func TestMaxSplitRespectsOtherDemands(t *testing.T) {
	// A competing demand 1->3 consumes capacity around the split node, so
	// the splittable amount with the competitor present can never exceed the
	// amount without it, and the post-split demand set must stay routable.
	g := diamond([4]float64{10, 10, 10, 10})
	d0 := demand.Pair{ID: 0, Source: 0, Target: 3, Flow: 10}
	d1 := demand.Pair{ID: 1, Source: 1, Target: 3, Flow: 8}

	alone := &Instance{Graph: g, Demands: pairs(d0)}
	dxAlone, err := MaxSplit(alone, d0, 1)
	if err != nil {
		t.Fatal(err)
	}
	contended := &Instance{Graph: g, Demands: pairs(d0, d1)}
	dx, err := MaxSplit(contended, d0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dx > dxAlone+1e-6 {
		t.Errorf("dx with competition (%f) exceeds dx alone (%f)", dx, dxAlone)
	}
	if dx <= 0 {
		t.Fatalf("dx = %f, want > 0", dx)
	}

	// Apply the split and confirm the resulting demand set is still
	// routable (the invariant MaxSplit is defined to preserve).
	post := &Instance{Graph: g, Demands: pairs(
		demand.Pair{ID: 0, Source: 0, Target: 3, Flow: 10 - dx},
		d1,
		demand.Pair{ID: 2, Source: 0, Target: 1, Flow: dx},
		demand.Pair{ID: 3, Source: 1, Target: 3, Flow: dx},
	)}
	if !CheckRoutability(post, Options{Mode: ModeExact}).Routable {
		t.Errorf("post-split demand set with dx=%f is not routable", dx)
	}
}

func TestMaxSplitErrors(t *testing.T) {
	g := diamond([4]float64{1, 1, 1, 1})
	d := demand.Pair{ID: 0, Source: 0, Target: 3, Flow: 1}
	in := &Instance{Graph: g, Demands: pairs(d)}
	if _, err := MaxSplit(in, d, 99); err == nil {
		t.Error("expected error for unknown split node")
	}
	if _, err := MaxSplit(in, d, 0); err == nil {
		t.Error("expected error for endpoint split node")
	}
	if dx, err := MaxSplit(in, demand.Pair{ID: 0, Source: 0, Target: 3, Flow: 0}, 1); err != nil || dx != 0 {
		t.Errorf("zero-flow split: dx=%f err=%v", dx, err)
	}
}

func TestMaxSplitNoUsableEdges(t *testing.T) {
	g := diamond([4]float64{1, 1, 1, 1})
	d := demand.Pair{ID: 0, Source: 0, Target: 3, Flow: 1}
	in := &Instance{
		Graph:         g,
		Demands:       pairs(d),
		ExcludedEdges: map[graph.EdgeID]bool{0: true, 1: true, 2: true, 3: true},
	}
	dx, err := MaxSplit(in, d, 1)
	if err != nil || dx != 0 {
		t.Errorf("dx = %f err = %v, want 0, nil", dx, err)
	}
}

func TestMulticommodityRelaxation(t *testing.T) {
	// Diamond, all elements intact except edge 0 (0-1) broken with repair
	// cost 1. One demand 0->3 of 4 units fits entirely on the intact route
	// 0-2-3 (cap 5), so the relaxation cost should be 0 and the Best plan
	// should repair nothing.
	g := diamond([4]float64{10, 10, 5, 5})
	dg := demand.New()
	dg.MustAdd(0, 3, 4)
	s := &scenario.Scenario{
		Supply:      g,
		Demand:      dg,
		BrokenNodes: map[graph.NodeID]bool{},
		BrokenEdges: map[graph.EdgeID]bool{0: true},
	}
	res, err := MulticommodityRelaxation(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("relaxation should be feasible")
	}
	if res.Cost > 1e-6 {
		t.Errorf("cost = %f, want 0", res.Cost)
	}
	if _, _, total := res.Best.NumRepairs(); total != 0 {
		t.Errorf("Best repairs = %d, want 0", total)
	}
	// Worst is allowed to use the broken edge only while staying on the
	// optimal face (cost 0), so it must not route anything over edge 0
	// either: with cost pinned at 0, no flow on broken edge is permitted.
	if res.Worst.RepairedEdges[0] {
		t.Error("Worst should not repair edge 0 when the pinned cost is 0")
	}
}

func TestMulticommodityRelaxationNeedsBrokenEdge(t *testing.T) {
	// Demand 12 > intact route capacity 5, so some flow must cross the
	// broken edge 0-1; both plans must repair it (and the relaxation cost is
	// positive).
	g := diamond([4]float64{10, 10, 5, 5})
	dg := demand.New()
	dg.MustAdd(0, 3, 12)
	s := &scenario.Scenario{
		Supply:      g,
		Demand:      dg,
		BrokenNodes: map[graph.NodeID]bool{},
		BrokenEdges: map[graph.EdgeID]bool{0: true},
	}
	res, err := MulticommodityRelaxation(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("relaxation should be feasible")
	}
	if res.Cost <= 0 {
		t.Errorf("cost = %f, want > 0", res.Cost)
	}
	if !res.Best.RepairedEdges[0] || !res.Worst.RepairedEdges[0] {
		t.Error("both plans must repair edge 0")
	}
	if err := scenario.VerifyPlan(s, res.Best); err != nil {
		t.Errorf("Best plan invalid: %v", err)
	}
	if err := scenario.VerifyPlan(s, res.Worst); err != nil {
		t.Errorf("Worst plan invalid: %v", err)
	}
}

func TestMulticommodityRelaxationInfeasible(t *testing.T) {
	g := diamond([4]float64{1, 1, 1, 1})
	dg := demand.New()
	dg.MustAdd(0, 3, 100)
	s := &scenario.Scenario{
		Supply:      g,
		Demand:      dg,
		BrokenNodes: map[graph.NodeID]bool{},
		BrokenEdges: map[graph.EdgeID]bool{},
	}
	res, err := MulticommodityRelaxation(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("demand 100 on capacity 2 must be infeasible")
	}
}

func TestMulticommodityRelaxationEmptyDemand(t *testing.T) {
	g := diamond([4]float64{1, 1, 1, 1})
	s := &scenario.Scenario{
		Supply:      g,
		Demand:      demand.New(),
		BrokenNodes: map[graph.NodeID]bool{},
		BrokenEdges: map[graph.EdgeID]bool{},
	}
	res, err := MulticommodityRelaxation(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Error("empty demand is feasible")
	}
}

// checkRoutingFeasible verifies capacity and conservation of a routing
// against the instance.
func checkRoutingFeasible(t *testing.T, in *Instance, routing scenario.Routing) {
	t.Helper()
	load := routing.EdgeLoad()
	for eid, l := range load {
		if l > in.Capacity(eid)+1e-6 {
			t.Errorf("edge %d overloaded: %f > %f", eid, l, in.Capacity(eid))
		}
	}
	for _, d := range in.Demands {
		if d.Flow <= capacityEpsilon {
			continue
		}
		net := make(map[graph.NodeID]float64)
		for eid, f := range routing[d.ID] {
			e := in.Graph.Edge(eid)
			net[e.From] -= f
			net[e.To] += f
		}
		if math.Abs(net[d.Target]-d.Flow) > 1e-6 {
			t.Errorf("pair %d delivers %f, want %f", d.ID, net[d.Target], d.Flow)
		}
		for v, imbalance := range net {
			if v == d.Source || v == d.Target {
				continue
			}
			if math.Abs(imbalance) > 1e-6 {
				t.Errorf("pair %d conservation violated at %d: %f", d.ID, v, imbalance)
			}
		}
	}
}
