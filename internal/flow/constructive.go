package flow

import (
	"math"
	"sort"

	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
)

// ConstructiveRouting attempts to build a feasible routing greedily: demands
// are processed in decreasing order of flow, each routed with a
// single-commodity max-flow computation on the residual usable capacities
// (so one demand may use several paths), and the used capacity is removed
// before the next demand is considered.
//
// Success (true) proves the instance routable and returns the routing.
// Failure is inconclusive: a smarter joint routing may still exist, which is
// why the exact LP test is preferred whenever it is affordable. The
// constructive test exists for instances whose LP would be too large for the
// dense simplex substrate (very large topologies).
func ConstructiveRouting(in *Instance) (scenario.Routing, bool) {
	residual := usableCapacityMap(in)
	routing := make(scenario.Routing)

	demands := in.ActiveDemands()
	sort.Slice(demands, func(i, j int) bool {
		if demands[i].Flow != demands[j].Flow {
			return demands[i].Flow > demands[j].Flow
		}
		return demands[i].ID < demands[j].ID
	})

	for _, d := range demands {
		value, assignment := in.Graph.MaxFlowWithAssignment(d.Source, d.Target, residual)
		if value+capacityEpsilon < d.Flow {
			return nil, false
		}
		// Scale the assignment down when the max flow exceeds the demand so
		// that only the needed share of capacity is consumed. Scaling a
		// feasible flow by a factor in (0, 1] keeps it feasible and
		// conserves flow, delivering exactly the demand.
		scale := 1.0
		if value > d.Flow {
			scale = d.Flow / value
		}
		for eid, f := range assignment {
			used := f * scale
			if math.Abs(used) <= capacityEpsilon {
				continue
			}
			routing.AddFlow(d.ID, eid, used)
			residual[eid] -= math.Abs(used)
			if residual[eid] < 0 {
				residual[eid] = 0
			}
		}
	}
	return routing, true
}

// RouteSingleDemand routes one demand on the usable residual capacities and
// returns the per-edge signed flow and the amount actually routable (up to
// the requested flow). It does not mutate the instance.
func RouteSingleDemand(in *Instance, source, target graph.NodeID, flowWanted float64) (map[graph.EdgeID]float64, float64) {
	residual := usableCapacityMap(in)
	value, assignment := in.Graph.MaxFlowWithAssignment(source, target, residual)
	routed := math.Min(value, flowWanted)
	if routed <= capacityEpsilon {
		return nil, 0
	}
	scale := 1.0
	if value > routed {
		scale = routed / value
	}
	out := make(map[graph.EdgeID]float64, len(assignment))
	for eid, f := range assignment {
		scaled := f * scale
		if math.Abs(scaled) > capacityEpsilon {
			out[eid] = scaled
		}
	}
	return out, routed
}
