package flow

import (
	"netrecovery/internal/graph"
	"netrecovery/internal/lp"
)

// CheckRoutability answers the routability question of §IV-A: can the
// demands of the instance be routed simultaneously through the usable edges
// within the residual capacities?
//
// In ModeExact (or ModeAuto on small instances) it solves the LP feasibility
// system (2), which is a necessary and sufficient test, and returns a
// feasible routing when one exists. In ModeConstructive (or ModeAuto on
// large instances) it uses a greedy constructive test that is sufficient but
// not necessary.
func CheckRoutability(in *Instance, opts Options) Result {
	opts = opts.withDefaults()
	if len(in.ActiveDemands()) == 0 {
		return Result{Routable: true, Exact: true, Routing: nil}
	}
	if err := in.Validate(); err != nil {
		return Result{Routable: false, Exact: true}
	}

	// Cheap necessary filter: every active demand's endpoints must be
	// connected in the usable sub-graph with enough single-commodity max
	// flow to cover the demand when considered in isolation.
	if !passesSingleCommodityFilter(in) {
		return Result{Routable: false, Exact: true}
	}

	useExact := opts.Mode == ModeExact
	if opts.Mode == ModeAuto {
		numVars := 2 * in.NumUsableEdges() * len(in.ActiveDemands())
		useExact = numVars <= opts.MaxLPVariables
	}
	if useExact {
		return checkRoutabilityLP(in, opts)
	}
	routing, ok := ConstructiveRouting(in)
	return Result{Routable: ok, Exact: false, Routing: routing}
}

// passesSingleCommodityFilter runs the per-demand max-flow necessary
// condition: if any single demand cannot be routed alone, the joint problem
// is certainly infeasible.
func passesSingleCommodityFilter(in *Instance) bool {
	caps := usableCapacityMap(in)
	for _, d := range in.ActiveDemands() {
		if in.ExcludedNodes[d.Source] || in.ExcludedNodes[d.Target] {
			return false
		}
		maxFlow := in.Graph.MaxFlow(d.Source, d.Target, caps)
		if maxFlow+capacityEpsilon < d.Flow {
			return false
		}
	}
	return true
}

// usableCapacityMap materialises the usable capacity of every edge (0 for
// excluded edges/endpoints) for use with graph.MaxFlow.
func usableCapacityMap(in *Instance) map[graph.EdgeID]float64 {
	caps := make(map[graph.EdgeID]float64, in.Graph.NumEdges())
	for i := 0; i < in.Graph.NumEdges(); i++ {
		id := graph.EdgeID(i)
		caps[id] = in.Capacity(id)
	}
	return caps
}

// checkRoutabilityLP solves the exact feasibility LP of system (2).
func checkRoutabilityLP(in *Instance, opts Options) Result {
	prob, vars, usable := buildRoutabilityLP(in)
	sol := prob.SolveWithOptions(lp.Options{Dense: opts.DenseLP})
	switch sol.Status {
	case lp.StatusOptimal:
		return Result{
			Routable: true,
			Exact:    true,
			Routing:  extractRouting(in, sol, vars, usable),
		}
	case lp.StatusInfeasible:
		return Result{Routable: false, Exact: true}
	default:
		// An iteration-limited solve proves nothing either way; answer with
		// the sufficient (but inexact) constructive test instead of
		// conflating the limit with infeasibility.
		routing, ok := ConstructiveRouting(in)
		return Result{Routable: ok, Exact: false, Routing: routing}
	}
}
