package flow

import (
	"math"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
	"netrecovery/internal/lp"
	"netrecovery/internal/scenario"
)

// RoutabilityTester runs exact routability tests with warm starts across
// calls. It is the hot-loop companion of CheckRoutability: ISP performs one
// LP-backed test per iteration, and consecutive iterations differ by a
// single repair, prune or split, so the previous optimal basis re-solves the
// next test in a handful of dual-simplex pivots instead of from scratch.
//
// To keep the LP structure (and therefore the basis) stable while the usable
// edge set evolves, the tester lays the model out over the FULL edge set of
// the supply graph: unusable arcs are fixed to zero via bounds, and repairs
// or capacity changes only touch bounds and right-hand sides. The layout is
// keyed by the commodity list (the endpoints of the active demands); any
// change to that list — a split adding derived pairs, a merge, or a prune
// fully serving a demand — triggers a transparent rebuild.
//
// A RoutabilityTester is not safe for concurrent use; each solver run owns
// one.
type RoutabilityTester struct {
	solver *lp.Solver
	prob   *lp.Problem
	basis  *lp.Basis

	g         *graph.Graph
	numEdges  int
	numNodes  int
	endpoints []demand.Pair // endpoint layout of the current model (Flow ignored)
	capUsable []float64     // scratch: usable capacity per edge for the current call

	activeBuf  []demand.Pair
	filterCaps map[graph.EdgeID]float64

	// Stats counts tester activity for diagnostics and tests.
	Stats TesterStats
}

// TesterStats counts how the tester resolved its calls.
type TesterStats struct {
	Calls    int // exact LP solves attempted on the warm-startable model
	Rebuilds int // model layouts built from scratch
	// WarmStarts counts solves that were handed the previous basis; the LP
	// solver may still fall back to a cold start internally when the basis
	// turns out stale (singular or neither primal- nor dual-feasible).
	WarmStarts   int
	Constructive int // calls answered by the constructive fallback
	OneShots     int // exact calls answered by the one-shot usable-edge LP
}

// NewRoutabilityTester returns an empty tester; the model is built lazily on
// the first exact call.
func NewRoutabilityTester() *RoutabilityTester {
	return &RoutabilityTester{solver: lp.NewSolver()}
}

// arc variable index layout: commodity-major, then edge, then direction.
func (t *RoutabilityTester) arcVar(ci int, e graph.EdgeID, forward bool) int {
	idx := 2 * (ci*t.numEdges + int(e))
	if !forward {
		idx++
	}
	return idx
}

// Row layout: capacity rows first (one per edge), then conservation rows
// (commodity-major, then node).
func (t *RoutabilityTester) capRow(e graph.EdgeID) int { return int(e) }
func (t *RoutabilityTester) consRow(ci int, v graph.NodeID) int {
	return t.numEdges + ci*t.numNodes + int(v)
}

// Check answers the routability question for the instance, like
// CheckRoutability, but reuses the tester's model and basis across calls.
func (t *RoutabilityTester) Check(in *Instance, opts Options) Result {
	opts = opts.withDefaults()
	t.activeBuf = in.ActiveDemandsInto(t.activeBuf)
	active := t.activeBuf
	if len(active) == 0 {
		return Result{Routable: true, Exact: true, Routing: nil}
	}
	if err := in.Validate(); err != nil {
		return Result{Routable: false, Exact: true}
	}
	if !t.passesFilter(in, active) {
		return Result{Routable: false, Exact: true}
	}
	useExact := opts.Mode == ModeExact
	if opts.Mode == ModeAuto {
		numVars := 2 * in.NumUsableEdges() * len(active)
		useExact = numVars <= opts.MaxLPVariables
	}
	if !useExact {
		t.Stats.Constructive++
		routing, ok := ConstructiveRouting(in)
		return Result{Routable: ok, Exact: false, Routing: routing}
	}
	// The warm-startable model spans the FULL edge set (so its layout stays
	// stable across repairs). On a large graph whose usable sub-network is
	// small, that layout can dwarf the usable-edge model the size guard
	// admitted; in that regime solve one-shot on the usable layout instead —
	// still exact, just without warm starts.
	if fullVars := 2 * in.Graph.NumEdges() * len(active); fullVars > opts.MaxLPVariables {
		t.Stats.OneShots++
		return checkRoutabilityLP(in, opts)
	}
	return t.checkExact(in, active, opts)
}

// passesFilter is passesSingleCommodityFilter with a pooled capacity map.
func (t *RoutabilityTester) passesFilter(in *Instance, active []demand.Pair) bool {
	if t.filterCaps == nil {
		t.filterCaps = make(map[graph.EdgeID]float64, in.Graph.NumEdges())
	}
	clear(t.filterCaps)
	for i := 0; i < in.Graph.NumEdges(); i++ {
		id := graph.EdgeID(i)
		t.filterCaps[id] = in.Capacity(id)
	}
	for _, d := range active {
		if in.ExcludedNodes[d.Source] || in.ExcludedNodes[d.Target] {
			return false
		}
		if in.Graph.MaxFlow(d.Source, d.Target, t.filterCaps)+capacityEpsilon < d.Flow {
			return false
		}
	}
	return true
}

// sameLayout reports whether the cached model matches the instance's graph
// and commodity endpoints.
func (t *RoutabilityTester) sameLayout(in *Instance, active []demand.Pair) bool {
	if t.prob == nil || t.g != in.Graph ||
		t.numEdges != in.Graph.NumEdges() || t.numNodes != in.Graph.NumNodes() ||
		len(t.endpoints) != len(active) {
		return false
	}
	for i, d := range active {
		if t.endpoints[i].Source != d.Source || t.endpoints[i].Target != d.Target {
			return false
		}
	}
	return true
}

// build constructs the full-edge-layout feasibility LP for the commodity
// list. All matrix coefficients are structural (±1 incidence entries);
// capacities and demand flows enter only through bounds and right-hand
// sides, which refresh installs per call.
func (t *RoutabilityTester) build(in *Instance, active []demand.Pair) {
	t.g = in.Graph
	t.numEdges = in.Graph.NumEdges()
	t.numNodes = in.Graph.NumNodes()
	t.endpoints = append(t.endpoints[:0], active...)
	t.basis = nil
	t.Stats.Rebuilds++

	prob := lp.New(lp.Minimize)
	prob.Reserve(2*t.numEdges*len(active), t.numEdges+t.numNodes*len(active))
	for range active {
		for e := 0; e < t.numEdges; e++ {
			_ = prob.AddVariable(0, "") // forward arc
			_ = prob.AddVariable(0, "") // backward arc
		}
	}
	// Capacity rows: sum of both directions over every commodity.
	terms := make([]lp.Term, 0, 2*len(active))
	for e := 0; e < t.numEdges; e++ {
		eid := graph.EdgeID(e)
		terms = terms[:0]
		for ci := range active {
			terms = append(terms,
				lp.Term{Var: t.arcVar(ci, eid, true), Coef: 1},
				lp.Term{Var: t.arcVar(ci, eid, false), Coef: 1},
			)
		}
		_ = prob.AddConstraint(terms, lp.LessEq, 0, "")
	}
	// Conservation rows: outflow - inflow per (commodity, node). Right-hand
	// sides are installed by refresh.
	for ci := range active {
		for v := 0; v < t.numNodes; v++ {
			node := graph.NodeID(v)
			terms = terms[:0]
			for _, eid := range in.Graph.AdjacentEdges(node) {
				e := in.Graph.Edge(eid)
				terms = append(terms,
					lp.Term{Var: t.arcVar(ci, eid, e.From == node), Coef: 1},
					lp.Term{Var: t.arcVar(ci, eid, e.From != node), Coef: -1},
				)
			}
			if len(terms) == 0 {
				// Isolated node: keep the row (0 = rhs) so the layout stays
				// positional; a nonzero rhs then correctly reads infeasible.
				_ = prob.AddConstraint(nil, lp.Equal, 0, "")
				continue
			}
			_ = prob.AddConstraint(terms, lp.Equal, 0, "")
		}
	}
	t.prob = prob
}

// refresh installs the instance's capacities and demand flows into the
// cached model: capacity-row right-hand sides, arc bounds (unusable arcs are
// fixed to zero) and conservation right-hand sides at the endpoints.
func (t *RoutabilityTester) refresh(in *Instance, active []demand.Pair) {
	if cap(t.capUsable) < t.numEdges {
		t.capUsable = make([]float64, t.numEdges)
	}
	t.capUsable = t.capUsable[:t.numEdges]
	inf := math.Inf(1)
	for e := 0; e < t.numEdges; e++ {
		eid := graph.EdgeID(e)
		c := in.Capacity(eid)
		t.capUsable[e] = c
		_ = t.prob.SetRHS(t.capRow(eid), c)
		usable := c > capacityEpsilon
		for ci := range active {
			up := 0.0
			if usable {
				up = inf
			}
			_ = t.prob.SetBounds(t.arcVar(ci, eid, true), 0, up)
			_ = t.prob.SetBounds(t.arcVar(ci, eid, false), 0, up)
		}
	}
	for ci, d := range active {
		for v := 0; v < t.numNodes; v++ {
			node := graph.NodeID(v)
			rhs := 0.0
			switch node {
			case d.Source:
				rhs = d.Flow
			case d.Target:
				rhs = -d.Flow
			}
			_ = t.prob.SetRHS(t.consRow(ci, node), rhs)
		}
	}
}

// checkExact solves the feasibility LP, warm-starting from the previous
// basis when the layout is unchanged.
func (t *RoutabilityTester) checkExact(in *Instance, active []demand.Pair, opts Options) Result {
	if !t.sameLayout(in, active) {
		t.build(in, active)
	}
	t.refresh(in, active)
	t.Stats.Calls++

	lpOpts := lp.Options{Dense: opts.DenseLP}
	if t.basis != nil && !opts.DenseLP {
		lpOpts.WarmStart = t.basis
		t.Stats.WarmStarts++
	}
	sol := t.solver.Solve(t.prob, lpOpts)
	switch sol.Status {
	case lp.StatusOptimal:
		t.basis = sol.Basis
		return Result{Routable: true, Exact: true, Routing: t.extract(active, sol)}
	case lp.StatusInfeasible:
		// Keep the basis: the next call usually relaxes the instance (a
		// repair) and the dual-feasible basis remains a good start.
		return Result{Routable: false, Exact: true}
	default:
		// Iteration limit (or numerical trouble): the LP answer is unknown,
		// not "no". Fall back to the sufficient constructive test instead of
		// conflating the limit with infeasibility.
		t.basis = nil
		t.Stats.Constructive++
		routing, ok := ConstructiveRouting(in)
		return Result{Routable: ok, Exact: false, Routing: routing}
	}
}

// extract converts the LP solution into a per-demand net edge routing,
// mirroring extractRouting for the full-edge layout.
func (t *RoutabilityTester) extract(active []demand.Pair, sol lp.Solution) scenario.Routing {
	routing := make(scenario.Routing)
	for ci, d := range active {
		for e := 0; e < t.numEdges; e++ {
			if t.capUsable[e] <= capacityEpsilon {
				continue
			}
			eid := graph.EdgeID(e)
			fwd := sol.Value(t.arcVar(ci, eid, true))
			bwd := sol.Value(t.arcVar(ci, eid, false))
			if net := fwd - bwd; math.Abs(net) > capacityEpsilon {
				routing.AddFlow(d.ID, eid, net)
			}
		}
	}
	return routing
}
