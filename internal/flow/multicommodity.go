package flow

import (
	"fmt"
	"math"

	"netrecovery/internal/graph"
	"netrecovery/internal/lp"
	"netrecovery/internal/scenario"
)

// MCResult is the outcome of the multi-commodity relaxation of §VI-A
// (problem (8)): the optimal relaxation cost and two repair sets extracted
// from the optimal face, approximating the best (fewest repairs, MCB) and
// worst (most repairs, MCW) optimal solutions discussed in Fig. 3.
type MCResult struct {
	// Feasible is false when the demands cannot be routed even using every
	// broken element.
	Feasible bool
	// Cost is the optimal value of problem (8): the flow-weighted cost of
	// broken edges carrying flow.
	Cost float64
	// Best is the plan derived from the optimum that concentrates flow away
	// from broken elements (MCB approximation: fewest repairs).
	Best *scenario.Plan
	// Worst is the plan derived from the optimum that spreads flow across
	// broken elements (MCW approximation: most repairs).
	Worst *scenario.Plan
}

// MulticommodityRelaxation solves problem (8) on the given scenario: route
// all demands on the full supply graph (broken elements usable), minimising
// the repair-cost-weighted flow crossing broken edges. It then explores the
// optimal face to extract MCB/MCW-style repair sets: among the optima it
// re-optimises a secondary objective that either minimises (Best) or
// maximises (Worst) the total flow placed on broken elements.
//
// The paper notes that identifying the true MCB is itself NP-hard; these two
// plans bracket the behaviour shown in Fig. 3 (MCB close to OPT, MCW close
// to ALL) without claiming exact extremality.
func MulticommodityRelaxation(s *scenario.Scenario) (*MCResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	in := &Instance{
		Graph:   s.Supply,
		Demands: s.Demand.Active(),
	}
	if len(in.Demands) == 0 {
		return &MCResult{
			Feasible: true,
			Best:     scenario.NewPlan("MCB"),
			Worst:    scenario.NewPlan("MCW"),
		}, nil
	}

	// Primary solve: minimise sum over broken edges of k^e * (f_fwd + f_bwd).
	prob, vars, usable := buildRoutabilityLP(in)
	applyBrokenEdgeObjective(s, in, prob, vars, usable, 1)
	primary := prob.Solve()
	if primary.Status != lp.StatusOptimal {
		return &MCResult{Feasible: false}, nil
	}
	cost := primary.Objective

	best, err := mcSecondarySolve(s, in, cost, true)
	if err != nil {
		return nil, err
	}
	worst, err := mcSecondarySolve(s, in, cost, false)
	if err != nil {
		return nil, err
	}
	return &MCResult{Feasible: true, Cost: cost, Best: best, Worst: worst}, nil
}

// applyBrokenEdgeObjective sets the objective coefficients of problem (8):
// weight * k^e_ij on every flow variable of a broken edge (or of an intact
// edge incident to a broken node, which also requires repairs to be used).
func applyBrokenEdgeObjective(s *scenario.Scenario, in *Instance, prob *lp.Problem, vars map[arcVar]int, usable []graph.EdgeID, weight float64) {
	for pi := range in.Demands {
		if in.Demands[pi].Flow <= capacityEpsilon {
			continue
		}
		for _, eid := range usable {
			cost := brokenUseCost(s, eid)
			if cost == 0 {
				continue
			}
			_ = prob.SetObjectiveCoef(vars[arcVar{pair: pi, edge: eid, forward: true}], weight*cost)
			_ = prob.SetObjectiveCoef(vars[arcVar{pair: pi, edge: eid, forward: false}], weight*cost)
		}
	}
}

// brokenUseCost returns the repair cost incurred per unit of flow routed on
// edge eid: the edge's own repair cost if broken plus half of each broken
// endpoint's cost (an endpoint shared by many edges is paid once in reality;
// halving keeps the relaxation from double-counting too aggressively).
func brokenUseCost(s *scenario.Scenario, eid graph.EdgeID) float64 {
	e := s.Supply.Edge(eid)
	cost := 0.0
	if s.BrokenEdges[eid] {
		cost += e.RepairCost
	}
	if s.BrokenNodes[e.From] {
		cost += s.Supply.Node(e.From).RepairCost / 2
	}
	if s.BrokenNodes[e.To] {
		cost += s.Supply.Node(e.To).RepairCost / 2
	}
	return cost
}

// mcSecondarySolve re-optimises over the (approximate) optimal face of the
// relaxation: primary objective pinned to optCost, secondary objective the
// total flow on broken elements, minimised for the Best plan and maximised
// for the Worst plan. The repaired sets are the broken elements that carry
// flow in the resulting solution.
func mcSecondarySolve(s *scenario.Scenario, in *Instance, optCost float64, best bool) (*scenario.Plan, error) {
	prob, vars, usable := buildRoutabilityLP(in)

	// Pin the primary objective value.
	var pinTerms []lp.Term
	for pi := range in.Demands {
		if in.Demands[pi].Flow <= capacityEpsilon {
			continue
		}
		for _, eid := range usable {
			cost := brokenUseCost(s, eid)
			if cost == 0 {
				continue
			}
			pinTerms = append(pinTerms,
				lp.Term{Var: vars[arcVar{pair: pi, edge: eid, forward: true}], Coef: cost},
				lp.Term{Var: vars[arcVar{pair: pi, edge: eid, forward: false}], Coef: cost},
			)
		}
	}
	// Small slack on the pin avoids numerical infeasibility.
	if len(pinTerms) > 0 {
		if err := prob.AddConstraint(pinTerms, lp.LessEq, optCost+1e-6*(1+math.Abs(optCost)), "pin"); err != nil {
			return nil, err
		}
	}

	// Secondary objective: total flow on broken elements.
	sign := 1.0
	name := "MCB"
	if !best {
		sign = -1
		name = "MCW"
	}
	for pi := range in.Demands {
		if in.Demands[pi].Flow <= capacityEpsilon {
			continue
		}
		for _, eid := range usable {
			if brokenUseCost(s, eid) == 0 {
				continue
			}
			_ = prob.SetObjectiveCoef(vars[arcVar{pair: pi, edge: eid, forward: true}], sign)
			_ = prob.SetObjectiveCoef(vars[arcVar{pair: pi, edge: eid, forward: false}], sign)
		}
	}
	sol := prob.Solve()
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("flow: secondary multi-commodity solve failed: %v", sol.Status)
	}

	plan := scenario.NewPlan(name)
	plan.Routing = extractRouting(in, sol, vars, usable)
	plan.TotalDemand = in.TotalDemand()
	plan.SatisfiedDemand = in.TotalDemand()
	for eid, load := range plan.Routing.EdgeLoad() {
		if load <= 1e-6 {
			continue
		}
		e := s.Supply.Edge(eid)
		if s.BrokenEdges[eid] {
			plan.RepairedEdges[eid] = true
		}
		if s.BrokenNodes[e.From] {
			plan.RepairedNodes[e.From] = true
		}
		if s.BrokenNodes[e.To] {
			plan.RepairedNodes[e.To] = true
		}
	}
	return plan, nil
}
