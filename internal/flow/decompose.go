package flow

import (
	"math"
	"sort"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
)

// RoutePath is one path of a decomposed routing, carrying Flow units for one
// demand pair.
type RoutePath struct {
	Pair demand.PairID
	Path graph.Path
	Flow float64
}

// DecomposeRouting converts a per-edge routing into explicit per-demand
// paths using standard flow decomposition: for each pair, repeatedly walk
// from a flow source along edges with positive remaining flow, peel off the
// bottleneck, and stop when (numerically) no flow remains. Flow circulating
// on cycles — which can appear in LP solutions without affecting
// feasibility — is discarded.
//
// The result is deterministic (edges are scanned in ID order) and useful for
// presenting a repair/routing plan to an operator: "route 10 units of the
// Victoria->Halifax flow over Victoria-Calgary-Toronto-Halifax".
func DecomposeRouting(g *graph.Graph, routing scenario.Routing) []RoutePath {
	var out []RoutePath
	pairIDs := make([]demand.PairID, 0, len(routing))
	for pid := range routing {
		pairIDs = append(pairIDs, pid)
	}
	sort.Slice(pairIDs, func(i, j int) bool { return pairIDs[i] < pairIDs[j] })

	for _, pid := range pairIDs {
		flows := routing[pid]
		residual := make(map[graph.EdgeID]float64, len(flows))
		net := make(map[graph.NodeID]float64)
		for eid, f := range flows {
			if math.Abs(f) <= capacityEpsilon {
				continue
			}
			residual[eid] = f
			e := g.Edge(eid)
			net[e.From] -= f
			net[e.To] += f
		}
		var sources []graph.NodeID
		for v, imbalance := range net {
			if imbalance < -capacityEpsilon {
				sources = append(sources, v)
			}
		}
		sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })

		for _, source := range sources {
			// Each successful peel removes at least one edge's worth of
			// flow, and each failed peel removes a cycle edge, so the loop
			// is bounded by the number of routed edges.
			for guard := 0; guard <= 2*len(flows); guard++ {
				path, flowOnPath := peelPath(g, residual, source)
				if flowOnPath <= capacityEpsilon || path.Empty() {
					break
				}
				out = append(out, RoutePath{Pair: pid, Path: path, Flow: flowOnPath})
			}
		}
	}
	return out
}

// peelPath extracts one simple path of positive flow starting at source and
// subtracts its bottleneck from the residual map. When the walk runs into a
// cycle, the edge closing the cycle is dropped from the residual (cycle flow
// carries no source-to-sink traffic) and the walk restarts. It returns an
// empty path when the source has no outgoing flow.
func peelPath(g *graph.Graph, residual map[graph.EdgeID]float64, source graph.NodeID) (graph.Path, float64) {
	for attempt := 0; attempt <= g.NumEdges(); attempt++ {
		nodes := []graph.NodeID{source}
		var edges []graph.EdgeID
		visited := map[graph.NodeID]bool{source: true}
		bottleneck := math.Inf(1)
		cur := source
		cycle := false
		for {
			next, eid, amount := nextFlowEdge(g, residual, cur)
			if eid == graph.InvalidEdge {
				break
			}
			if visited[next] {
				// Cycle: cancel the circulating flow around the whole cycle
				// (it carries no source-to-sink traffic) and retry.
				cancelCycle(g, residual, nodes, edges, next, eid)
				cycle = true
				break
			}
			visited[next] = true
			nodes = append(nodes, next)
			edges = append(edges, eid)
			if amount < bottleneck {
				bottleneck = amount
			}
			cur = next
		}
		if cycle {
			continue
		}
		if len(edges) == 0 || math.IsInf(bottleneck, 1) {
			return graph.Path{}, 0
		}
		for i, eid := range edges {
			e := g.Edge(eid)
			if e.From == nodes[i] {
				residual[eid] -= bottleneck
			} else {
				residual[eid] += bottleneck
			}
			if math.Abs(residual[eid]) <= capacityEpsilon {
				delete(residual, eid)
			}
		}
		return graph.Path{Nodes: nodes, Edges: edges}, bottleneck
	}
	return graph.Path{}, 0
}

// cancelCycle removes the circulating flow of the cycle that the walk just
// closed: the cycle consists of the walked edges from the first occurrence
// of repeat onwards plus the closing edge. The cycle bottleneck is
// subtracted from every cycle edge in the direction of travel.
func cancelCycle(g *graph.Graph, residual map[graph.EdgeID]float64, nodes []graph.NodeID, edges []graph.EdgeID, repeat graph.NodeID, closing graph.EdgeID) {
	start := 0
	for i, v := range nodes {
		if v == repeat {
			start = i
			break
		}
	}
	cycleNodes := append([]graph.NodeID(nil), nodes[start:]...)
	cycleEdges := append(append([]graph.EdgeID(nil), edges[start:]...), closing)

	bottleneck := math.Inf(1)
	for _, eid := range cycleEdges {
		if f := math.Abs(residual[eid]); f < bottleneck {
			bottleneck = f
		}
	}
	if bottleneck <= capacityEpsilon || math.IsInf(bottleneck, 1) {
		// Degenerate; drop the closing edge to guarantee progress.
		delete(residual, closing)
		return
	}
	for i, eid := range cycleEdges {
		from := cycleNodes[i%len(cycleNodes)]
		e := g.Edge(eid)
		if e.From == from {
			residual[eid] -= bottleneck
		} else {
			residual[eid] += bottleneck
		}
		if math.Abs(residual[eid]) <= capacityEpsilon {
			delete(residual, eid)
		}
	}
}

// nextFlowEdge finds an edge with positive residual flow leaving node cur
// (smallest edge ID first, for determinism).
func nextFlowEdge(g *graph.Graph, residual map[graph.EdgeID]float64, cur graph.NodeID) (graph.NodeID, graph.EdgeID, float64) {
	incident := g.IncidentEdges(cur)
	sort.Slice(incident, func(i, j int) bool { return incident[i] < incident[j] })
	for _, eid := range incident {
		f, ok := residual[eid]
		if !ok {
			continue
		}
		e := g.Edge(eid)
		// Positive f means From->To; the flow leaves cur if cur is on the
		// sending side.
		if e.From == cur && f > capacityEpsilon {
			return e.To, eid, f
		}
		if e.To == cur && f < -capacityEpsilon {
			return e.From, eid, -f
		}
	}
	return graph.InvalidNode, graph.InvalidEdge, 0
}
