package flow

import (
	"fmt"
	"math"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
	"netrecovery/internal/lp"
)

// MaxSplit implements Decision (2) of §IV-C: given the current instance and
// a chosen demand pair h = (s_h, t_h) to be split over the node via, it
// computes the maximum amount dx (0 <= dx <= d_h) such that replacing dx
// units of h with the two derived demands (s_h, via) and (via, t_h) keeps
// the whole demand set routable on the usable graph.
//
// The computation is a single LP: flow variables for every demand (with the
// split pair's conservation right-hand sides expressed linearly in dx) plus
// the scalar dx, maximising dx subject to system (2).
//
// It returns dx = 0 (with no error) when nothing can be split through via.
func MaxSplit(in *Instance, split demand.Pair, via graph.NodeID) (float64, error) {
	return MaxSplitUsing(nil, in, split, via)
}

// MaxSplitUsing is MaxSplit with a caller-supplied reusable LP solver. The
// split LP is rebuilt on every call (its commodity set changes between ISP
// iterations), but a long-lived solver keeps its factorisation and work
// buffers, eliminating the dominant per-call allocations. A nil solver
// behaves like MaxSplit.
func MaxSplitUsing(solver *lp.Solver, in *Instance, split demand.Pair, via graph.NodeID) (float64, error) {
	if split.Flow <= capacityEpsilon {
		return 0, nil
	}
	if !in.Graph.HasNode(via) {
		return 0, fmt.Errorf("flow: split node %d not in graph", via)
	}
	if via == split.Source || via == split.Target {
		return 0, fmt.Errorf("flow: split node %d is an endpoint of the demand", via)
	}
	if err := in.Validate(); err != nil {
		return 0, err
	}

	prob := lp.New(lp.Maximize)
	usable := in.UsableEdges()
	if len(usable) == 0 {
		return 0, nil
	}

	// Demand list for the LP: every demand of the instance, with the split
	// pair itself plus its two derived pairs. The split pair's flow becomes
	// (d_h - dx) and the derived pairs carry dx, expressed via dx terms in
	// the conservation rows.
	type commodity struct {
		source, target graph.NodeID
		baseFlow       float64 // constant part of the demand
		dxCoef         float64 // coefficient of dx in the demand
	}
	var commodities []commodity
	for _, d := range in.Demands {
		if d.Flow <= capacityEpsilon {
			continue
		}
		if d.ID == split.ID {
			commodities = append(commodities, commodity{d.Source, d.Target, d.Flow, -1})
			continue
		}
		commodities = append(commodities, commodity{d.Source, d.Target, d.Flow, 0})
	}
	commodities = append(commodities,
		commodity{split.Source, via, 0, 1},
		commodity{via, split.Target, 0, 1},
	)

	prob.Reserve(1+2*len(usable)*(len(commodities)), len(usable)+in.Graph.NumNodes()*len(commodities))
	dx := prob.AddBoundedVariable(1, split.Flow, "dx")

	// Arc variables are laid out positionally (commodity-major, then usable
	// edge, then direction) instead of through a map: this LP is rebuilt in
	// every ISP iteration that takes the exact split path, and the map was a
	// confirmed allocation hot spot.
	edgePos := make([]int32, in.Graph.NumEdges())
	for i := range edgePos {
		edgePos[i] = -1
	}
	for pos, eid := range usable {
		edgePos[eid] = int32(pos)
	}
	arcVar := func(ci int, eid graph.EdgeID, forward bool) int {
		idx := 1 + 2*(ci*len(usable)+int(edgePos[eid]))
		if !forward {
			idx++
		}
		return idx
	}
	for range commodities {
		for range usable {
			_ = prob.AddVariable(0, "") // forward arc
			_ = prob.AddVariable(0, "") // backward arc
		}
	}

	// Capacity rows.
	terms := make([]lp.Term, 0, 2*len(commodities))
	for _, eid := range usable {
		terms = terms[:0]
		for ci := range commodities {
			terms = append(terms,
				lp.Term{Var: arcVar(ci, eid, true), Coef: 1},
				lp.Term{Var: arcVar(ci, eid, false), Coef: 1},
			)
		}
		if err := prob.AddConstraint(terms, lp.LessEq, in.Capacity(eid), ""); err != nil {
			return 0, err
		}
	}

	// Conservation rows: outflow - inflow - dxCoef*dx·sign(node) = baseFlow·sign(node).
	for ci, c := range commodities {
		for v := 0; v < in.Graph.NumNodes(); v++ {
			node := graph.NodeID(v)
			if in.ExcludedNodes[node] && node != c.source && node != c.target {
				continue
			}
			terms = terms[:0]
			for _, eid := range in.Graph.AdjacentEdges(node) {
				if in.Capacity(eid) <= capacityEpsilon {
					continue
				}
				e := in.Graph.Edge(eid)
				outVar := arcVar(ci, eid, e.From == node)
				inVar := arcVar(ci, eid, e.From != node)
				terms = append(terms,
					lp.Term{Var: outVar, Coef: 1},
					lp.Term{Var: inVar, Coef: -1},
				)
			}
			sign := 0.0
			switch node {
			case c.source:
				sign = 1
			case c.target:
				sign = -1
			}
			rhs := c.baseFlow * sign
			dxCoef := c.dxCoef * sign
			if dxCoef != 0 {
				terms = append(terms, lp.Term{Var: dx, Coef: -dxCoef})
			}
			if len(terms) == 0 {
				if math.Abs(rhs) > capacityEpsilon {
					// Endpoint with no usable incident edges cannot emit the
					// constant part of its demand: infeasible instance.
					return 0, nil
				}
				continue
			}
			if err := prob.AddConstraint(terms, lp.Equal, rhs, ""); err != nil {
				return 0, err
			}
		}
	}

	if solver == nil {
		solver = lp.NewSolver()
	}
	// Deterministic mode makes each split solve a pure function of the
	// problem data instead of inheriting the solver's rotating-pricing
	// position from earlier solves. Split LPs are rebuilt (cold-started)
	// every call, so the reset is free — and it is what lets warm planner
	// sessions answer recurring split subproblems from a content-addressed
	// memo with bit-identical results (see core.Session).
	sol := solver.Solve(prob, lp.Options{Deterministic: true})
	if sol.Status != lp.StatusOptimal {
		return 0, nil
	}
	result := sol.Value(dx)
	if result < 0 {
		result = 0
	}
	if result > split.Flow {
		result = split.Flow
	}
	// Snap near-integral results to avoid drift across iterations.
	if rounded := math.Round(result); math.Abs(result-rounded) < 1e-7 {
		result = rounded
	}
	return result, nil
}
