// Package demand models the demand graph H = (V_H, E_H) of the paper: the
// set of mission-critical source/destination pairs and their required flows.
// It also provides the demand-pair generators used by the experiments
// (far-apart pair selection with hop distance at least half the supply-graph
// diameter).
package demand

import (
	"fmt"
	"math/rand"
	"sort"

	"netrecovery/internal/graph"
)

// PairID identifies a demand pair within a Graph.
type PairID int

// InvalidPair is the sentinel for a missing pair.
const InvalidPair PairID = -1

// Pair is a single demand (s_h, t_h, d_h).
type Pair struct {
	ID             PairID
	Source, Target graph.NodeID
	Flow           float64
}

// Endpoints returns the source and target of the pair.
func (p Pair) Endpoints() (graph.NodeID, graph.NodeID) { return p.Source, p.Target }

// Graph is the demand graph: an ordered collection of demand pairs. Pair IDs
// are stable across mutation of flow values; removing a pair tombstones it
// (flow zero) rather than renumbering, so all callers can key state by
// PairID for the lifetime of a recovery run.
type Graph struct {
	pairs []Pair
}

// New returns an empty demand graph.
func New() *Graph { return &Graph{} }

// Add appends a new demand pair and returns its ID. Adding a pair with
// non-positive flow or identical endpoints is an error.
func (g *Graph) Add(source, target graph.NodeID, flow float64) (PairID, error) {
	if source == target {
		return InvalidPair, fmt.Errorf("demand: source and target are both node %d", source)
	}
	if flow <= 0 {
		return InvalidPair, fmt.Errorf("demand: non-positive flow %f", flow)
	}
	id := PairID(len(g.pairs))
	g.pairs = append(g.pairs, Pair{ID: id, Source: source, Target: target, Flow: flow})
	return id, nil
}

// MustAdd is Add but panics on error; intended for experiment construction
// with known-good inputs.
func (g *Graph) MustAdd(source, target graph.NodeID, flow float64) PairID {
	id, err := g.Add(source, target, flow)
	if err != nil {
		panic(err)
	}
	return id
}

// NumPairs returns the number of pairs ever added (including fully-routed
// ones whose residual flow is zero).
func (g *Graph) NumPairs() int { return len(g.pairs) }

// Pair returns the pair with the given ID. The second result is false if the
// ID is out of range.
func (g *Graph) Pair(id PairID) (Pair, bool) {
	if id < 0 || int(id) >= len(g.pairs) {
		return Pair{}, false
	}
	return g.pairs[id], true
}

// Flow returns the residual flow of pair id (0 if the ID is invalid).
func (g *Graph) Flow(id PairID) float64 {
	p, ok := g.Pair(id)
	if !ok {
		return 0
	}
	return p.Flow
}

// SetFlow overwrites the residual flow of pair id. Negative values are
// clamped to zero.
func (g *Graph) SetFlow(id PairID, flow float64) error {
	if id < 0 || int(id) >= len(g.pairs) {
		return fmt.Errorf("demand: pair %d out of range", id)
	}
	if flow < 0 {
		flow = 0
	}
	g.pairs[id].Flow = flow
	return nil
}

// Reduce subtracts amount from the residual flow of pair id, clamping at
// zero, and returns the new residual flow.
func (g *Graph) Reduce(id PairID, amount float64) (float64, error) {
	p, ok := g.Pair(id)
	if !ok {
		return 0, fmt.Errorf("demand: pair %d out of range", id)
	}
	next := p.Flow - amount
	if next < 0 {
		next = 0
	}
	g.pairs[id].Flow = next
	return next, nil
}

// Active returns the pairs with strictly positive residual flow, in ID order.
func (g *Graph) Active() []Pair {
	var out []Pair
	for _, p := range g.pairs {
		if p.Flow > flowEpsilon {
			out = append(out, p)
		}
	}
	return out
}

// ActiveInto appends the pairs with strictly positive residual flow, in ID
// order, to buf[:0] and returns the result. Hot paths use it instead of
// Active to reuse one buffer across calls; the returned slice aliases buf
// and is invalidated by the next ActiveInto call with the same buffer.
func (g *Graph) ActiveInto(buf []Pair) []Pair {
	buf = buf[:0]
	for _, p := range g.pairs {
		if p.Flow > flowEpsilon {
			buf = append(buf, p)
		}
	}
	return buf
}

// All returns every pair ever added, including zero-flow ones, in ID order.
func (g *Graph) All() []Pair {
	out := make([]Pair, len(g.pairs))
	copy(out, g.pairs)
	return out
}

// TotalFlow returns the total residual demand.
func (g *Graph) TotalFlow() float64 {
	total := 0.0
	for _, p := range g.pairs {
		total += p.Flow
	}
	return total
}

// Empty reports whether every pair has been fully satisfied (or none exist).
func (g *Graph) Empty() bool {
	for _, p := range g.pairs {
		if p.Flow > flowEpsilon {
			return false
		}
	}
	return true
}

// Nodes returns the set of endpoints of pairs with positive residual flow
// (the V_H of the paper, maintained implicitly).
func (g *Graph) Nodes() map[graph.NodeID]bool {
	nodes := make(map[graph.NodeID]bool)
	for _, p := range g.pairs {
		if p.Flow > flowEpsilon {
			nodes[p.Source] = true
			nodes[p.Target] = true
		}
	}
	return nodes
}

// Clone returns a deep copy of the demand graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{pairs: make([]Pair, len(g.pairs))}
	copy(c.pairs, g.pairs)
	return c
}

// AsDemandPairs converts the active pairs to the lightweight form used by
// the graph package's surplus computations.
func (g *Graph) AsDemandPairs() []graph.DemandPair {
	active := g.Active()
	out := make([]graph.DemandPair, 0, len(active))
	for _, p := range active {
		out = append(out, graph.DemandPair{Source: p.Source, Target: p.Target, Flow: p.Flow})
	}
	return out
}

// String summarises the demand graph.
func (g *Graph) String() string {
	return fmt.Sprintf("demand{pairs: %d, active: %d, flow: %.1f}", len(g.pairs), len(g.Active()), g.TotalFlow())
}

const flowEpsilon = 1e-9

// GenerateFarApartPairs builds a demand graph with numPairs pairs whose
// endpoints are at hop distance of at least half the supply-graph diameter
// (the selection rule of §VII-A), each with the given flow. Pairs are chosen
// uniformly at random among eligible candidates using rng; endpoints may be
// reused across pairs but a pair (ordered-insensitively) is never duplicated.
// It returns an error if the graph has fewer eligible pairs than requested.
func GenerateFarApartPairs(g *graph.Graph, numPairs int, flow float64, rng *rand.Rand) (*Graph, error) {
	if numPairs <= 0 {
		return New(), nil
	}
	minDist := g.Diameter() / 2
	type cand struct{ u, v graph.NodeID }
	var candidates []cand
	for u := 0; u < g.NumNodes(); u++ {
		dist := g.BFSDistances(graph.NodeID(u), nil)
		for v := u + 1; v < g.NumNodes(); v++ {
			if dist[v] >= minDist && dist[v] > 0 {
				candidates = append(candidates, cand{graph.NodeID(u), graph.NodeID(v)})
			}
		}
	}
	if len(candidates) < numPairs {
		return nil, fmt.Errorf("demand: only %d candidate pairs at distance >= %d, need %d", len(candidates), minDist, numPairs)
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	dg := New()
	for i := 0; i < numPairs; i++ {
		dg.MustAdd(candidates[i].u, candidates[i].v, flow)
	}
	return dg, nil
}

// GenerateUniformPairs builds a demand graph with numPairs distinct random
// pairs with the given flow, without any distance constraint.
func GenerateUniformPairs(g *graph.Graph, numPairs int, flow float64, rng *rand.Rand) (*Graph, error) {
	n := g.NumNodes()
	if n < 2 {
		return nil, fmt.Errorf("demand: graph has %d nodes, need at least 2", n)
	}
	maxPairs := n * (n - 1) / 2
	if numPairs > maxPairs {
		return nil, fmt.Errorf("demand: %d pairs requested but only %d exist", numPairs, maxPairs)
	}
	seen := make(map[[2]graph.NodeID]bool)
	dg := New()
	for dg.NumPairs() < numPairs {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]graph.NodeID{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		dg.MustAdd(u, v, flow)
	}
	return dg, nil
}

// SortedByFlowDesc returns the active pairs sorted by decreasing flow,
// breaking ties by pair ID (the ordering used by the SRT heuristic).
func (g *Graph) SortedByFlowDesc() []Pair {
	pairs := g.Active()
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Flow != pairs[j].Flow {
			return pairs[i].Flow > pairs[j].Flow
		}
		return pairs[i].ID < pairs[j].ID
	})
	return pairs
}
