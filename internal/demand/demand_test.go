package demand

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netrecovery/internal/graph"
)

func ringGraph(n int) *graph.Graph {
	g := graph.New(n, n)
	for i := 0; i < n; i++ {
		g.AddNode("", float64(i), 0, 1)
	}
	for i := 0; i < n; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID((i+1)%n), 10, 1)
	}
	return g
}

func TestAddAndAccessors(t *testing.T) {
	dg := New()
	id, err := dg.Add(0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := dg.Pair(id)
	if !ok || p.Source != 0 || p.Target != 1 || p.Flow != 5 {
		t.Errorf("Pair = %+v ok=%v", p, ok)
	}
	if dg.NumPairs() != 1 || dg.TotalFlow() != 5 || dg.Empty() {
		t.Errorf("NumPairs=%d TotalFlow=%f Empty=%v", dg.NumPairs(), dg.TotalFlow(), dg.Empty())
	}
	s, tgt := p.Endpoints()
	if s != 0 || tgt != 1 {
		t.Errorf("Endpoints = %d, %d", s, tgt)
	}
	if dg.Flow(id) != 5 || dg.Flow(PairID(9)) != 0 {
		t.Error("Flow accessor")
	}
}

func TestAddErrors(t *testing.T) {
	dg := New()
	if _, err := dg.Add(3, 3, 1); err == nil {
		t.Error("expected error for identical endpoints")
	}
	if _, err := dg.Add(0, 1, 0); err == nil {
		t.Error("expected error for zero flow")
	}
	if _, err := dg.Add(0, 1, -2); err == nil {
		t.Error("expected error for negative flow")
	}
}

func TestSetFlowReduceAndActive(t *testing.T) {
	dg := New()
	a := dg.MustAdd(0, 1, 10)
	b := dg.MustAdd(2, 3, 4)
	if err := dg.SetFlow(a, 6); err != nil {
		t.Fatal(err)
	}
	if dg.Flow(a) != 6 {
		t.Errorf("Flow(a) = %f, want 6", dg.Flow(a))
	}
	left, err := dg.Reduce(b, 10)
	if err != nil || left != 0 {
		t.Errorf("Reduce = %f, %v; want 0, nil", left, err)
	}
	active := dg.Active()
	if len(active) != 1 || active[0].ID != a {
		t.Errorf("Active = %v", active)
	}
	if len(dg.All()) != 2 {
		t.Errorf("All = %v", dg.All())
	}
	if err := dg.SetFlow(PairID(99), 1); err == nil {
		t.Error("expected error for out-of-range SetFlow")
	}
	if _, err := dg.Reduce(PairID(99), 1); err == nil {
		t.Error("expected error for out-of-range Reduce")
	}
	if err := dg.SetFlow(a, -3); err != nil || dg.Flow(a) != 0 {
		t.Error("negative SetFlow should clamp to zero")
	}
}

func TestNodesAndClone(t *testing.T) {
	dg := New()
	dg.MustAdd(0, 1, 5)
	dg.MustAdd(1, 2, 5)
	nodes := dg.Nodes()
	if len(nodes) != 3 || !nodes[1] {
		t.Errorf("Nodes = %v", nodes)
	}
	c := dg.Clone()
	if err := c.SetFlow(0, 1); err != nil {
		t.Fatal(err)
	}
	if dg.Flow(0) != 5 {
		t.Error("mutating clone affected original")
	}
	pairs := dg.AsDemandPairs()
	if len(pairs) != 2 || pairs[0].Flow != 5 {
		t.Errorf("AsDemandPairs = %v", pairs)
	}
	if dg.String() == "" {
		t.Error("String should not be empty")
	}
}

func TestSortedByFlowDesc(t *testing.T) {
	dg := New()
	dg.MustAdd(0, 1, 3)
	dg.MustAdd(1, 2, 9)
	dg.MustAdd(2, 3, 9)
	dg.MustAdd(3, 4, 1)
	sorted := dg.SortedByFlowDesc()
	if len(sorted) != 4 {
		t.Fatalf("sorted = %v", sorted)
	}
	if sorted[0].Flow != 9 || sorted[1].Flow != 9 || sorted[0].ID > sorted[1].ID {
		t.Errorf("tie-break by ID violated: %v", sorted[:2])
	}
	if sorted[3].Flow != 1 {
		t.Errorf("last = %+v, want flow 1", sorted[3])
	}
}

func TestGenerateFarApartPairs(t *testing.T) {
	g := ringGraph(12) // diameter 6, so min distance 3
	rng := rand.New(rand.NewSource(1))
	dg, err := GenerateFarApartPairs(g, 4, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dg.NumPairs() != 4 {
		t.Fatalf("NumPairs = %d, want 4", dg.NumPairs())
	}
	for _, p := range dg.All() {
		if d := g.HopDistance(p.Source, p.Target); d < 3 {
			t.Errorf("pair (%d,%d) distance %d < 3", p.Source, p.Target, d)
		}
		if p.Flow != 10 {
			t.Errorf("flow = %f, want 10", p.Flow)
		}
	}
}

func TestGenerateFarApartPairsErrors(t *testing.T) {
	g := ringGraph(4)
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateFarApartPairs(g, 1000, 1, rng); err == nil {
		t.Error("expected error when requesting too many pairs")
	}
	dg, err := GenerateFarApartPairs(g, 0, 1, rng)
	if err != nil || dg.NumPairs() != 0 {
		t.Errorf("zero pairs: %v, %v", dg, err)
	}
}

func TestGenerateUniformPairs(t *testing.T) {
	g := ringGraph(6)
	rng := rand.New(rand.NewSource(2))
	dg, err := GenerateUniformPairs(g, 5, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dg.NumPairs() != 5 {
		t.Fatalf("NumPairs = %d", dg.NumPairs())
	}
	seen := make(map[[2]graph.NodeID]bool)
	for _, p := range dg.All() {
		u, v := p.Source, p.Target
		if u > v {
			u, v = v, u
		}
		key := [2]graph.NodeID{u, v}
		if seen[key] {
			t.Errorf("duplicate pair %v", key)
		}
		seen[key] = true
	}
	if _, err := GenerateUniformPairs(g, 1000, 1, rng); err == nil {
		t.Error("expected error for too many pairs")
	}
	small := graph.New(1, 0)
	small.AddNode("", 0, 0, 0)
	if _, err := GenerateUniformPairs(small, 1, 1, rng); err == nil {
		t.Error("expected error for single-node graph")
	}
}

// Property: generation is deterministic for a fixed seed and total flow
// equals pairs * flow.
func TestGenerateDeterminism(t *testing.T) {
	g := ringGraph(16)
	f := func(rawSeed int64, rawPairs uint8) bool {
		numPairs := int(rawPairs%5) + 1
		flow := 7.0
		a, err1 := GenerateFarApartPairs(g, numPairs, flow, rand.New(rand.NewSource(rawSeed)))
		b, err2 := GenerateFarApartPairs(g, numPairs, flow, rand.New(rand.NewSource(rawSeed)))
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(a.TotalFlow()-float64(numPairs)*flow) > 1e-9 {
			return false
		}
		for i := range a.All() {
			pa, _ := a.Pair(PairID(i))
			pb, _ := b.Pair(PairID(i))
			if pa != pb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
