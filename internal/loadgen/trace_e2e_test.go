package loadgen

import (
	"testing"
	"time"

	"netrecovery/internal/cluster"
	"netrecovery/internal/obs"
	"netrecovery/internal/server"
)

// waitTraceRoot polls tr's store until a trace rooted at root seals (the
// root span ends after the response is written, so the client can observe
// the answer a beat before the trace lands).
func waitTraceRoot(t *testing.T, tr *obs.Tracer, root string) obs.TraceDetail {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, sum := range tr.Store().List() {
			if sum.Root != root {
				continue
			}
			if det, ok := tr.Store().Get(sum.TraceID); ok {
				return det
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no trace rooted at %q sealed within 2s", root)
	return obs.TraceDetail{}
}

// waitTraceID polls tr's store for a specific trace ID.
func waitTraceID(t *testing.T, tr *obs.Tracer, traceID string) obs.TraceDetail {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if det, ok := tr.Store().Get(traceID); ok {
			return det
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("trace %s never sealed on the peer within 2s", traceID)
	return obs.TraceDetail{}
}

func spanByName(t *testing.T, det obs.TraceDetail, name string) obs.SpanSnapshot {
	t.Helper()
	for _, sp := range det.Spans {
		if sp.Name == name {
			return sp
		}
	}
	names := make([]string, len(det.Spans))
	for i, sp := range det.Spans {
		names[i] = sp.Name
	}
	t.Fatalf("trace %s has no span %q (spans: %v)", det.TraceID, name, names)
	return obs.SpanSnapshot{}
}

func attrValue(sp obs.SpanSnapshot, key string) (string, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// TestTraceStitchesAcrossPeerFill is the multi-node acceptance path for
// tracing: a cold plan on a non-owning node consults the fingerprint's
// owner (a peer-fill miss) before solving locally. The requester's trace
// must cover admission, cache, peer-fill and solve with solver-depth
// attributes — and the owner must hold a trace under the SAME trace ID
// (propagated via the traceparent header) rooted at its peer endpoint.
func TestTraceStitchesAcrossPeerFill(t *testing.T) {
	lc, err := StartLocal(2, server.Config{}, cluster.Config{}, WithTracing(7))
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	items, err := buildPopulation(Spec{Scenarios: 1, Fast: true, Topology: "grid:4x4"}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	fp := itemFingerprints(t, items)[0]
	owner, nonOwner := lc.Owner(fp), lc.NonOwner(fp)
	if owner == nonOwner {
		t.Fatal("owner == nonOwner in a 2-node fleet")
	}

	// Cold fleet: the non-owner asks the owner first (miss), then solves.
	status, _ := planVia(t, nonOwner, items[0].planBody)
	if status != "miss" {
		t.Fatalf("cold non-owner plan: status %q, want miss", status)
	}

	var reqTracer, ownTracer *obs.Tracer
	for i, u := range lc.URLs {
		switch u {
		case nonOwner:
			reqTracer = lc.Tracers[i]
		case owner:
			ownTracer = lc.Tracers[i]
		}
	}

	det := waitTraceRoot(t, reqTracer, "/v1/plan")
	if len(det.Spans) < 5 {
		t.Fatalf("requester trace has %d spans, want >= 5: %+v", len(det.Spans), det.Spans)
	}
	spanByName(t, det, "admission.wait")
	spanByName(t, det, "cache.lookup")
	fill := spanByName(t, det, "peer.fill")
	if v, _ := attrValue(fill, "outcome"); v != "miss" {
		t.Fatalf("peer.fill outcome = %q, want miss (cold owner)", v)
	}
	if v, _ := attrValue(fill, "owner"); v != owner {
		t.Fatalf("peer.fill owner = %q, want %q", v, owner)
	}
	solve := spanByName(t, det, "solve")
	if _, ok := attrValue(solve, "isp_iterations"); !ok {
		t.Fatalf("solve span lacks solver-depth attrs: %+v", solve.Attrs)
	}

	// The owner's side of the same request: a trace under the SAME ID,
	// rooted at the peer endpoint, showing the cache peek that missed.
	ownDet := waitTraceID(t, ownTracer, det.TraceID)
	if ownDet.Root != "/v1/peer/plan" {
		t.Fatalf("owner trace root = %q, want /v1/peer/plan", ownDet.Root)
	}
	peek := spanByName(t, ownDet, "cache.peek")
	if v, _ := attrValue(peek, "found"); v != "false" {
		t.Fatalf("owner cache.peek found = %q, want false", v)
	}

	// The two stores are distinct rings — the stitch is by ID, not by
	// shared storage.
	if reqTracer == ownTracer {
		t.Fatal("requester and owner share a tracer")
	}
}
