package loadgen

import (
	"fmt"
	"net/http/httptest"

	"netrecovery/internal/cluster"
	"netrecovery/internal/obs"
	"netrecovery/internal/server"
)

// LocalCluster is an in-process nrserved fleet on loopback listeners: N
// servers, each with its own plan cache, wired into one consistent-hash
// ring. It backs the multi-node e2e tests and the serve_* benchmark rows
// without shelling out to real processes.
type LocalCluster struct {
	// URLs are the node base URLs in construction order.
	URLs []string
	// Servers and Clusters are the per-node instances, index-aligned with
	// URLs. Clusters is nil-free only for n > 1; a 1-node LocalCluster
	// runs without a cluster layer.
	Servers  []*server.Server
	Clusters []*cluster.Cluster
	// Tracers are the per-node tracers, index-aligned with URLs; nil
	// unless the fleet was started with WithTracing.
	Tracers []*obs.Tracer

	https []*httptest.Server
}

// LocalOption tweaks StartLocal.
type LocalOption func(*localOptions)

type localOptions struct {
	traceSeed uint64
	tracing   bool
}

// WithTracing gives every node an enabled tracer (deterministic IDs rooted
// in seed+nodeIndex) exposed via LocalCluster.Tracers and the nodes'
// /debug/traces endpoints.
func WithTracing(seed uint64) LocalOption {
	return func(o *localOptions) {
		o.tracing = true
		o.traceSeed = seed
	}
}

// StartLocal boots an n-node fleet. scfg seeds every node's server config
// (Cache and Cluster must be unset — each node gets its own); ccfg seeds
// the cluster config (Self and Peers are filled in per node, probing
// defaults to disabled so tests control liveness; set ccfg.ProbeInterval
// to enable it).
func StartLocal(n int, scfg server.Config, ccfg cluster.Config, opts ...LocalOption) (*LocalCluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: need at least 1 node, got %d", n)
	}
	if scfg.Cache != nil || scfg.Cluster != nil {
		return nil, fmt.Errorf("loadgen: scfg.Cache and scfg.Cluster must be unset")
	}
	var lo localOptions
	for _, opt := range opts {
		opt(&lo)
	}
	lc := &LocalCluster{}
	// Unstarted servers bind their listeners immediately, so every node's
	// address is known before any server (or ring) is built.
	for i := 0; i < n; i++ {
		ts := httptest.NewUnstartedServer(nil)
		lc.https = append(lc.https, ts)
		lc.URLs = append(lc.URLs, "http://"+ts.Listener.Addr().String())
	}
	for i := 0; i < n; i++ {
		nodeCfg := scfg
		if lo.tracing {
			tr := obs.NewTracer(obs.Config{Seed: lo.traceSeed + uint64(i)})
			tr.Enable()
			lc.Tracers = append(lc.Tracers, tr)
			nodeCfg.Tracer = tr
		}
		if n > 1 {
			cc := ccfg
			cc.Self = lc.URLs[i]
			cc.Peers = lc.URLs
			if cc.ProbeInterval == 0 {
				cc.ProbeInterval = -1
			}
			cl, err := cluster.New(cc)
			if err != nil {
				lc.Close()
				return nil, err
			}
			lc.Clusters = append(lc.Clusters, cl)
			nodeCfg.Cluster = cl
		}
		srv := server.New(nodeCfg)
		lc.Servers = append(lc.Servers, srv)
		lc.https[i].Config.Handler = srv.Handler()
		lc.https[i].Start()
	}
	for _, cl := range lc.Clusters {
		cl.Start()
	}
	return lc, nil
}

// Owner returns the URL of the node owning fp (n=1: the only node).
func (lc *LocalCluster) Owner(fp [32]byte) string {
	if len(lc.Clusters) == 0 {
		return lc.URLs[0]
	}
	owner, _ := lc.Clusters[0].Owner(fp)
	return owner
}

// NonOwner returns the URL of some node that does not own fp (n=1: the
// only node).
func (lc *LocalCluster) NonOwner(fp [32]byte) string {
	owner := lc.Owner(fp)
	for _, u := range lc.URLs {
		if u != owner {
			return u
		}
	}
	return owner
}

// Close shuts the fleet down: listeners first (unblocking in-flight
// peer fills), then the cluster workers.
func (lc *LocalCluster) Close() {
	for _, ts := range lc.https {
		ts.Close()
	}
	for _, cl := range lc.Clusters {
		cl.Close()
	}
}
