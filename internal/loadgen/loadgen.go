// Package loadgen replays Zipf-distributed recovery-planning traffic
// against one or more nrserved nodes and summarises the result as a
// wire.LoadReport: latency percentiles, throughput, status classes, and
// the fleet's cache dispositions (hit / coalesced / peer-filled).
//
// The generator is deterministic end to end: scenario population, per
// worker key choice (Zipf over the population), target choice and op mix
// all derive from splitmix64 streams rooted in Spec.Seed, so two runs
// against identical servers issue the identical request sequence per
// worker. It supports a closed loop (fixed concurrency, a worker issues
// the next request when the previous answer lands) and an open loop
// (fixed arrival rate into a bounded dispatch queue; arrivals that find
// the queue full are dropped and counted, so a stalling fleet shows up as
// drops, not as a silently idling generator).
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
	"netrecovery/internal/wire"
)

// Defaults of the zero Spec fields.
const (
	DefaultConcurrency = 4
	DefaultScenarios   = 64
	DefaultZipfS       = 1.2
	DefaultZipfV       = 1.0
	DefaultPairs       = 2
	DefaultFlow        = 6.0
	DefaultTopology    = "grid:5x5"
	DefaultAlgorithm   = "ISP"

	defaultRequestTimeout = 10 * time.Second
)

// Mix weighs the request kinds: a worker draws an op with probability
// proportional to its weight. All-zero means plans only.
type Mix struct {
	// Plan is a POST /v1/plan round trip.
	Plan int
	// Session is a create → delta re-plan → delete session lifecycle
	// (the delta step is skipped for scenarios with no broken link).
	Session int
	// Ensemble is a small POST /v1/ensemble run.
	Ensemble int
}

// Spec parameterises Run.
type Spec struct {
	// Targets are the node base URLs; each request picks one uniformly.
	Targets []string
	// Duration bounds the run's wall time; MaxRequests bounds the number
	// of issued requests. At least one must be positive; whichever trips
	// first ends the run.
	Duration    time.Duration
	MaxRequests int
	// Concurrency is the worker count (0 = DefaultConcurrency).
	Concurrency int
	// Rate switches to the open loop: arrivals per second fed into a
	// bounded queue of QueueDepth (0 = 2·Concurrency) drained by the
	// workers. Rate 0 is the closed loop.
	Rate       float64
	QueueDepth int
	// Scenarios is the population size; keys are drawn Zipf(ZipfS, ZipfV)
	// over it, so a small hot set dominates like production fingerprint
	// traffic does. Zeros pick DefaultScenarios / DefaultZipfS /
	// DefaultZipfV.
	Scenarios    int
	ZipfS, ZipfV float64
	// Seed roots every random stream of the run.
	Seed uint64
	// Algorithm and Fast select the solver the plan requests ask for.
	Algorithm string
	Fast      bool
	// Mix weighs plan/session/ensemble ops.
	Mix Mix
	// Topology is "grid:RxC" or "bell-canada"; Pairs and Flow shape the
	// demand set (zeros pick the defaults).
	Topology string
	Pairs    int
	Flow     float64
	// RequestTimeout bounds one HTTP round trip (0 = 10s).
	RequestTimeout time.Duration
	// PrewarmAll issues every scenario once against every target before
	// measuring, so the measured window starts cache-warm fleet-wide.
	PrewarmAll bool
	// Timing requests the per-response traced timing breakdown
	// (options.timing) on plan requests and aggregates it into the
	// report's Timing block — attributing latency to queue wait, solver
	// execution and peer fills. Needs tracing enabled on the fleet;
	// untraced responses simply carry no block and are not sampled.
	Timing bool
	// Client is the HTTP client (nil = a default client).
	Client *http.Client
}

func (s Spec) withDefaults() Spec {
	if s.Concurrency <= 0 {
		s.Concurrency = DefaultConcurrency
	}
	if s.Scenarios <= 0 {
		s.Scenarios = DefaultScenarios
	}
	if s.ZipfS <= 1 {
		s.ZipfS = DefaultZipfS
	}
	if s.ZipfV < 1 {
		s.ZipfV = DefaultZipfV
	}
	if s.Algorithm == "" {
		s.Algorithm = DefaultAlgorithm
	}
	if s.Topology == "" {
		s.Topology = DefaultTopology
	}
	if s.Pairs <= 0 {
		s.Pairs = DefaultPairs
	}
	if s.Flow <= 0 {
		s.Flow = DefaultFlow
	}
	if s.RequestTimeout <= 0 {
		s.RequestTimeout = defaultRequestTimeout
	}
	if s.QueueDepth <= 0 {
		s.QueueDepth = 2 * s.Concurrency
	}
	if s.Mix.Plan <= 0 && s.Mix.Session <= 0 && s.Mix.Ensemble <= 0 {
		s.Mix = Mix{Plan: 1}
	}
	if s.Client == nil {
		s.Client = &http.Client{}
	}
	return s
}

// splitmix64 is the repo-wide deterministic PRNG step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// parseTopology builds the base graph named by spec ("grid:RxC" or
// "bell-canada").
func parseTopology(name string) (*graph.Graph, error) {
	if name == "bell-canada" {
		return topology.BellCanada(), nil
	}
	if rest, ok := strings.CutPrefix(name, "grid:"); ok {
		rs, cs, ok := strings.Cut(rest, "x")
		if ok {
			r, err1 := strconv.Atoi(rs)
			c, err2 := strconv.Atoi(cs)
			if err1 == nil && err2 == nil {
				return topology.Grid(r, c, topology.DefaultConfig(10))
			}
		}
		return nil, fmt.Errorf("loadgen: bad grid topology %q (want grid:RxC)", name)
	}
	return nil, fmt.Errorf("loadgen: unknown topology %q", name)
}

// workItem is one member of the scenario population with its request
// bodies rendered once up front (the generator must not spend measured
// time marshalling).
type workItem struct {
	// planBody doubles as the session-create body (the request shapes
	// coincide).
	planBody []byte
	// deltaBody repairs the scenario's first broken link; nil when the
	// disruption broke no link.
	deltaBody []byte
	// ensembleBody is a small bernoulli ensemble over the scenario.
	ensembleBody []byte
}

// buildPopulation renders the deterministic scenario population: one base
// graph and demand set, Spec.Scenarios independent random disruptions.
func buildPopulation(spec Spec) ([]workItem, error) {
	g, err := parseTopology(spec.Topology)
	if err != nil {
		return nil, err
	}
	dg, err := demand.GenerateFarApartPairs(g, spec.Pairs, spec.Flow,
		rand.New(rand.NewSource(int64(splitmix64(spec.Seed^0xd3)))))
	if err != nil {
		return nil, fmt.Errorf("loadgen: demand generation: %w", err)
	}
	items := make([]workItem, spec.Scenarios)
	for i := range items {
		rng := rand.New(rand.NewSource(int64(splitmix64(spec.Seed ^ uint64(i+1)*0x9e3779b97f4a7c15))))
		d := disruption.Random(g, 0.15, 0.25, rng)
		s := &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
		ws := wire.FromScenario(fmt.Sprintf("load-%d", i), s)
		items[i].planBody, err = json.Marshal(wire.PlanRequest{
			Scenario:  ws,
			Algorithm: spec.Algorithm,
			Options:   wire.SolveOptions{Fast: spec.Fast, Workers: 1, Timing: spec.Timing},
		})
		if err != nil {
			return nil, err
		}
		if edges := s.SortedBrokenEdges(); len(edges) > 0 {
			items[i].deltaBody, err = json.Marshal(wire.DeltaRequest{
				Deltas: []wire.Delta{{Kind: wire.DeltaRepairLink, Link: int(edges[0])}},
			})
			if err != nil {
				return nil, err
			}
		}
		items[i].ensembleBody, err = json.Marshal(wire.EnsembleRequest{
			Scenario:  ws,
			Sampler:   wire.EnsembleSampler{Model: "bernoulli", NodeProb: 0.1, EdgeProb: 0.15},
			Samples:   8,
			Seed:      int64(i) + 1,
			Algorithm: spec.Algorithm,
			Options:   wire.SolveOptions{Fast: spec.Fast, Workers: 1},
		})
		if err != nil {
			return nil, err
		}
	}
	return items, nil
}

// opKind tags a sample with the request kind that produced it.
type opKind uint8

const (
	opPlan opKind = iota
	opSession
	opEnsemble
)

// sample is one completed logical op.
type sample struct {
	op      opKind
	status  int // 0 = transport error
	cache   string
	latency time.Duration
	// timed is true when the plan response carried a timing block; the
	// phase durations below are summed per phase across the trace's spans.
	timed            bool
	queueUS, solveUS int64
	peerUS           int64
}

// runner carries the shared run state.
type runner struct {
	spec   Spec
	items  []workItem
	issued atomic.Int64 // logical ops started, capped by MaxRequests
}

// Run executes the load spec and aggregates the result. The context
// cancels the run early; whatever was measured so far is reported.
func Run(ctx context.Context, spec Spec) (*wire.LoadReport, error) {
	spec = spec.withDefaults()
	if len(spec.Targets) == 0 {
		return nil, errors.New("loadgen: no targets")
	}
	if spec.Duration <= 0 && spec.MaxRequests <= 0 {
		return nil, errors.New("loadgen: need Duration or MaxRequests")
	}
	items, err := buildPopulation(spec)
	if err != nil {
		return nil, err
	}
	r := &runner{spec: spec, items: items}

	if spec.PrewarmAll {
		if err := r.prewarm(ctx); err != nil {
			return nil, err
		}
	}

	var (
		mu      sync.Mutex
		samples []sample
		dropped atomic.Int64
	)
	collect := func(batch []sample) {
		mu.Lock()
		samples = append(samples, batch...)
		mu.Unlock()
	}

	deadline := time.Time{}
	if spec.Duration > 0 {
		deadline = time.Now().Add(spec.Duration)
	}
	start := time.Now()
	var wg sync.WaitGroup
	if spec.Rate > 0 {
		// Open loop: a dispatcher stamps arrivals into a bounded queue.
		queue := make(chan time.Time, spec.QueueDepth)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(queue)
			interval := time.Duration(float64(time.Second) / spec.Rate)
			if interval <= 0 {
				interval = time.Microsecond
			}
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case now := <-ticker.C:
					if !deadline.IsZero() && now.After(deadline) {
						return
					}
					if spec.MaxRequests > 0 && r.issued.Load() >= int64(spec.MaxRequests) {
						return
					}
					select {
					case queue <- now:
					default:
						dropped.Add(1)
					}
				}
			}
		}()
		for w := 0; w < spec.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				st := r.newWorkerState(w)
				var batch []sample
				for arrival := range queue {
					if spec.MaxRequests > 0 && r.issued.Add(1) > int64(spec.MaxRequests) {
						break
					}
					s := r.doOp(ctx, st)
					// Open-loop latency runs from arrival, so queue wait
					// (up to the bound) counts against the fleet.
					s.latency = time.Since(arrival)
					batch = append(batch, s)
				}
				collect(batch)
			}(w)
		}
	} else {
		// Closed loop: each worker issues back-to-back requests.
		for w := 0; w < spec.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				st := r.newWorkerState(w)
				var batch []sample
				for ctx.Err() == nil {
					if !deadline.IsZero() && time.Now().After(deadline) {
						break
					}
					if spec.MaxRequests > 0 && r.issued.Add(1) > int64(spec.MaxRequests) {
						break
					}
					batch = append(batch, r.doOp(ctx, st))
				}
				collect(batch)
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := aggregate(spec, samples, elapsed)
	rep.Dropped = int(dropped.Load())
	return rep, nil
}

// workerState is one worker's deterministic random streams.
type workerState struct {
	rng  *rand.Rand
	zipf *rand.Zipf
}

func (r *runner) newWorkerState(w int) *workerState {
	rng := rand.New(rand.NewSource(int64(splitmix64(r.spec.Seed ^ uint64(w+1)*0xbf58476d1ce4e5b9))))
	return &workerState{
		rng:  rng,
		zipf: rand.NewZipf(rng, r.spec.ZipfS, r.spec.ZipfV, uint64(len(r.items)-1)),
	}
}

// doOp draws and executes one logical op, returning its sample.
func (r *runner) doOp(ctx context.Context, st *workerState) sample {
	item := &r.items[st.zipf.Uint64()]
	target := r.spec.Targets[st.rng.Intn(len(r.spec.Targets))]
	mix := r.spec.Mix
	total := mix.Plan + mix.Session + mix.Ensemble
	draw := st.rng.Intn(total)
	start := time.Now()
	var s sample
	switch {
	case draw < mix.Plan:
		s = r.doPlan(ctx, target, item)
	case draw < mix.Plan+mix.Session:
		s = r.doSession(ctx, target, item)
	default:
		s = r.doEnsemble(ctx, target, item)
	}
	s.latency = time.Since(start)
	return s
}

// post issues one POST round trip and decodes the response into out (when
// non-nil and the status is 2xx). A transport failure returns status 0.
func (r *runner) post(ctx context.Context, url string, body []byte, out any) int {
	return r.roundTrip(ctx, http.MethodPost, url, body, out)
}

func (r *runner) roundTrip(ctx context.Context, method, url string, body []byte, out any) int {
	ctx, cancel := context.WithTimeout(ctx, r.spec.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.spec.Client.Do(req)
	if err != nil {
		return 0
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(out); err != nil {
			return 0
		}
	}
	return resp.StatusCode
}

// doPlan posts one plan request and records the server's cache verdict
// (and, when the run requested timing, the traced phase breakdown).
func (r *runner) doPlan(ctx context.Context, target string, item *workItem) sample {
	var resp struct {
		Cache  wire.CacheInfo `json:"cache"`
		Timing *wire.Timing   `json:"timing"`
	}
	code := r.post(ctx, target+"/v1/plan", item.planBody, &resp)
	s := sample{op: opPlan, status: code, cache: resp.Cache.Status}
	if t := resp.Timing; t != nil {
		s.timed = true
		for _, span := range t.Spans {
			switch span.Name {
			case "admission.wait":
				s.queueUS += span.DurationUS
			case "solve":
				s.solveUS += span.DurationUS
			case "peer.fill":
				s.peerUS += span.DurationUS
			}
		}
	}
	return s
}

// doSession runs a create → (optional) delta re-plan → delete lifecycle.
// The sample's status is the first non-2xx answer, so a failure anywhere in
// the lifecycle is visible.
func (r *runner) doSession(ctx context.Context, target string, item *workItem) sample {
	var created wire.SessionResponse
	code := r.post(ctx, target+"/v1/session", item.planBody, &created)
	s := sample{op: opSession, status: code}
	if code/100 != 2 || created.Session.ID == "" {
		return s
	}
	base := target + "/v1/session/" + created.Session.ID
	if item.deltaBody != nil {
		if code := r.post(ctx, base+"/delta", item.deltaBody, nil); code/100 != 2 {
			s.status = code
		}
	}
	if code := r.roundTrip(ctx, http.MethodDelete, base, nil, nil); code/100 != 2 && s.status/100 == 2 {
		s.status = code
	}
	return s
}

// doEnsemble posts one small ensemble run.
func (r *runner) doEnsemble(ctx context.Context, target string, item *workItem) sample {
	code := r.post(ctx, target+"/v1/ensemble", item.ensembleBody, nil)
	return sample{op: opEnsemble, status: code}
}

// prewarm issues every scenario once against every target.
func (r *runner) prewarm(ctx context.Context) error {
	type job struct {
		target string
		item   *workItem
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < r.spec.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r.doPlan(ctx, j.target, j.item)
			}
		}()
	}
	for _, target := range r.spec.Targets {
		for i := range r.items {
			jobs <- job{target, &r.items[i]}
		}
	}
	close(jobs)
	wg.Wait()
	return ctx.Err()
}

// percentileMS returns the q-quantile (0 < q <= 1) of sorted latencies in
// milliseconds.
func percentileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// aggregate folds the samples into the wire report.
func aggregate(spec Spec, samples []sample, elapsed time.Duration) *wire.LoadReport {
	rep := &wire.LoadReport{
		Targets:    spec.Targets,
		Mode:       "closed",
		DurationMS: float64(elapsed) / float64(time.Millisecond),
		Requests:   len(samples),
	}
	if spec.Rate > 0 {
		rep.Mode = "open"
	}
	var (
		lats  []time.Duration
		sum   time.Duration
		plans int
	)
	for _, s := range samples {
		switch {
		case s.status == 0:
			rep.Errors++
		case s.status/100 == 2:
			rep.OK2xx++
		case s.status/100 == 4:
			rep.Err4xx++
			rep.Errors++
		case s.status/100 == 5:
			rep.Err5xx++
			rep.Errors++
		default:
			rep.Errors++
		}
		if s.status/100 == 2 {
			lats = append(lats, s.latency)
			sum += s.latency
		}
		switch s.op {
		case opPlan:
			rep.Ops.Plans++
		case opSession:
			rep.Ops.Sessions++
		case opEnsemble:
			rep.Ops.Ensembles++
		}
		if s.op == opPlan && s.status/100 == 2 {
			plans++
			switch s.cache {
			case "hit":
				rep.Cache.Hits++
			case "miss":
				rep.Cache.Misses++
			case "coalesced":
				rep.Cache.Coalesced++
			case "peer":
				rep.Cache.PeerFilled++
			case "bypass":
				rep.Cache.Bypass++
			case "stale":
				rep.Cache.Stale++
			}
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.Latency = wire.LoadLatency{
		P50MS:  percentileMS(lats, 0.50),
		P90MS:  percentileMS(lats, 0.90),
		P99MS:  percentileMS(lats, 0.99),
		P999MS: percentileMS(lats, 0.999),
	}
	if n := len(lats); n > 0 {
		rep.Latency.MaxMS = float64(lats[n-1]) / float64(time.Millisecond)
		rep.Latency.MeanMS = float64(sum) / float64(n) / float64(time.Millisecond)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		rep.ThroughputRPS = float64(len(samples)) / sec
	}
	if plans > 0 {
		rep.Cache.HitRatio = float64(rep.Cache.Hits+rep.Cache.Coalesced+rep.Cache.PeerFilled) / float64(plans)
		rep.Cache.PeerFillRatio = float64(rep.Cache.PeerFilled) / float64(plans)
	}
	if spec.Timing {
		rep.Timing = aggregateTiming(samples)
	}
	return rep
}

// aggregateTiming folds the per-response phase breakdowns into the report's
// timing block. Every timed plan sample contributes to every phase (0 when
// the phase did not run), so the phase percentiles are over the same
// population as the whole-request latency percentiles.
func aggregateTiming(samples []sample) *wire.LoadTiming {
	var queue, solve, peer []time.Duration
	for _, s := range samples {
		if !s.timed || s.op != opPlan || s.status/100 != 2 {
			continue
		}
		queue = append(queue, time.Duration(s.queueUS)*time.Microsecond)
		solve = append(solve, time.Duration(s.solveUS)*time.Microsecond)
		peer = append(peer, time.Duration(s.peerUS)*time.Microsecond)
	}
	if len(queue) == 0 {
		return nil
	}
	for _, phase := range [][]time.Duration{queue, solve, peer} {
		sort.Slice(phase, func(i, j int) bool { return phase[i] < phase[j] })
	}
	return &wire.LoadTiming{
		Samples:       len(queue),
		QueueP50MS:    percentileMS(queue, 0.50),
		QueueP99MS:    percentileMS(queue, 0.99),
		SolveP50MS:    percentileMS(solve, 0.50),
		SolveP99MS:    percentileMS(solve, 0.99),
		PeerFillP50MS: percentileMS(peer, 0.50),
		PeerFillP99MS: percentileMS(peer, 0.99),
	}
}
