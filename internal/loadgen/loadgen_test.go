package loadgen

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestBuildPopulationDeterministic: identical specs render byte-identical
// request bodies; a different seed changes the disruptions.
func TestBuildPopulationDeterministic(t *testing.T) {
	spec := Spec{Scenarios: 6, Seed: 42, Fast: true}.withDefaults()
	a, err := buildPopulation(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildPopulation(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !bytes.Equal(a[i].planBody, b[i].planBody) {
			t.Fatalf("scenario %d: same seed, different plan body", i)
		}
		if !bytes.Equal(a[i].ensembleBody, b[i].ensembleBody) {
			t.Fatalf("scenario %d: same seed, different ensemble body", i)
		}
	}
	spec.Seed = 43
	c, err := buildPopulation(spec)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if bytes.Equal(a[i].planBody, c[i].planBody) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seed produced an identical population")
	}
}

func TestParseTopology(t *testing.T) {
	if g, err := parseTopology("grid:3x4"); err != nil || g.NumNodes() != 12 {
		t.Fatalf("grid:3x4 = %v nodes, err %v", g.NumNodes(), err)
	}
	if g, err := parseTopology("bell-canada"); err != nil || g.NumNodes() == 0 {
		t.Fatalf("bell-canada failed: %v", err)
	}
	for _, bad := range []string{"", "grid:axb", "grid:3", "torus:3x3"} {
		if _, err := parseTopology(bad); err == nil {
			t.Errorf("parseTopology(%q) accepted", bad)
		}
	}
}

func TestPercentileMS(t *testing.T) {
	lats := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 5 * time.Millisecond, 6 * time.Millisecond,
		7 * time.Millisecond, 8 * time.Millisecond, 9 * time.Millisecond,
		10 * time.Millisecond,
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 5}, {0.90, 9}, {0.99, 10}, {0.999, 10}, {1.0, 10},
	}
	for _, c := range cases {
		if got := percentileMS(lats, c.q); got != c.want {
			t.Errorf("p%v = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentileMS(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Spec{Duration: time.Second}); err == nil {
		t.Fatal("Run accepted empty targets")
	}
	if _, err := Run(context.Background(), Spec{Targets: []string{"http://x"}}); err == nil {
		t.Fatal("Run accepted no Duration and no MaxRequests")
	}
}
