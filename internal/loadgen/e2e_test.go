package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"netrecovery/internal/cluster"
	"netrecovery/internal/server"
	"netrecovery/internal/wire"
)

// planVia posts body to target's /v1/plan and returns the cache status and
// the compacted plan bytes.
func planVia(t *testing.T, target string, body []byte) (string, []byte) {
	t.Helper()
	resp, err := http.Post(target+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/plan: %d: %s", resp.StatusCode, raw)
	}
	var parsed struct {
		Plan  json.RawMessage `json:"plan"`
		Cache wire.CacheInfo  `json:"cache"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, parsed.Plan); err != nil {
		t.Fatal(err)
	}
	return parsed.Cache.Status, compact.Bytes()
}

// itemFingerprints rebuilds the scenario fingerprints of a population (the
// bodies are wire JSON; the fingerprint is content-derived).
func itemFingerprints(t *testing.T, items []workItem) [][32]byte {
	t.Helper()
	fps := make([][32]byte, len(items))
	for i, item := range items {
		var req wire.PlanRequest
		if err := json.Unmarshal(item.planBody, &req); err != nil {
			t.Fatal(err)
		}
		s, err := req.Scenario.Build()
		if err != nil {
			t.Fatal(err)
		}
		fps[i] = s.Fingerprint()
	}
	return fps
}

// TestPeerFillE2E is the multi-node acceptance path: a fingerprint solved
// on its owning node A is served from cache on node B — B answers with
// cache.status "peer" and a byte-identical plan, and B's next answer is a
// plain local hit.
func TestPeerFillE2E(t *testing.T) {
	lc, err := StartLocal(3, server.Config{}, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	items, err := buildPopulation(Spec{Scenarios: 1, Fast: true, Topology: "grid:4x4"}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	fp := itemFingerprints(t, items)[0]
	owner, nonOwner := lc.Owner(fp), lc.NonOwner(fp)
	if owner == nonOwner {
		t.Fatal("owner == nonOwner in a 3-node fleet")
	}

	status, ownerPlan := planVia(t, owner, items[0].planBody)
	if status != "miss" {
		t.Fatalf("owner solve: status %q, want miss", status)
	}
	status, peerPlan := planVia(t, nonOwner, items[0].planBody)
	if status != "peer" {
		t.Fatalf("non-owner: status %q, want peer", status)
	}
	if !bytes.Equal(ownerPlan, peerPlan) {
		t.Fatalf("peer-filled plan differs:\nowner %s\n peer %s", ownerPlan, peerPlan)
	}
	status, _ = planVia(t, nonOwner, items[0].planBody)
	if status != "hit" {
		t.Fatalf("non-owner repeat: status %q, want hit (fill stored locally)", status)
	}

	// The cluster counters saw exactly one dispatched fill that hit.
	var nonOwnerStats cluster.Stats
	for i, u := range lc.URLs {
		if u == nonOwner {
			nonOwnerStats = lc.Clusters[i].Stats()
		}
	}
	if nonOwnerStats.Fills != 1 || nonOwnerStats.Hits != 1 {
		t.Fatalf("non-owner cluster stats = %+v, want fills=1 hits=1", nonOwnerStats)
	}
}

// TestRunClosedLoopFleet drives the full generator against a 3-node fleet:
// owner-warmed caches make the non-owners' first misses peer-fill, the run
// answers entirely 2xx, and the report's tallies are consistent.
func TestRunClosedLoopFleet(t *testing.T) {
	lc, err := StartLocal(3, server.Config{}, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	spec := Spec{
		Targets:     lc.URLs,
		MaxRequests: 60,
		Concurrency: 4,
		Scenarios:   8,
		Seed:        1,
		Fast:        true,
		Topology:    "grid:4x4",
	}
	// Warm every scenario at its owner so a non-owner's first request
	// deterministically exercises the peer-fill path.
	items, err := buildPopulation(spec.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for i, fp := range itemFingerprints(t, items) {
		if status, _ := planVia(t, lc.Owner(fp), items[i].planBody); status != "miss" {
			t.Fatalf("warm scenario %d: status %q, want miss", i, status)
		}
	}

	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "closed" {
		t.Fatalf("mode = %q, want closed", rep.Mode)
	}
	if rep.Requests != 60 || rep.OK2xx != 60 {
		t.Fatalf("requests=%d ok=%d, want 60/60 (errors=%d 4xx=%d 5xx=%d)",
			rep.Requests, rep.OK2xx, rep.Errors, rep.Err4xx, rep.Err5xx)
	}
	if rep.Err5xx != 0 || rep.Errors != 0 {
		t.Fatalf("errors in a healthy fleet: %+v", rep)
	}
	if rep.Ops.Plans != 60 {
		t.Fatalf("ops = %+v, want 60 plans", rep.Ops)
	}
	if rep.Cache.PeerFilled == 0 {
		t.Fatalf("no peer fills against owner-warmed fleet: %+v", rep.Cache)
	}
	if rep.Cache.Misses != 0 {
		t.Fatalf("local cold solves despite owner-warmed fleet: %+v", rep.Cache)
	}
	total := rep.Cache.Hits + rep.Cache.Misses + rep.Cache.Coalesced +
		rep.Cache.PeerFilled + rep.Cache.Bypass + rep.Cache.Stale
	if total != 60 {
		t.Fatalf("cache dispositions sum to %d, want 60: %+v", total, rep.Cache)
	}
	if rep.Cache.HitRatio != 1 {
		t.Fatalf("hit ratio = %v, want 1 (every answer cache-served)", rep.Cache.HitRatio)
	}
	if rep.Latency.P50MS <= 0 || rep.Latency.P99MS < rep.Latency.P50MS {
		t.Fatalf("implausible latency summary: %+v", rep.Latency)
	}
	if rep.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %v", rep.ThroughputRPS)
	}
}

// TestRunOpenLoopAndMix covers the open loop (rate-driven, bounded queue)
// and the session/ensemble mix against a single node.
func TestRunOpenLoopAndMix(t *testing.T) {
	lc, err := StartLocal(1, server.Config{}, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	rep, err := Run(context.Background(), Spec{
		Targets:     lc.URLs,
		Duration:    time.Second,
		MaxRequests: 40,
		Concurrency: 2,
		Rate:        500,
		Scenarios:   4,
		Seed:        7,
		Fast:        true,
		Topology:    "grid:4x4",
		Mix:         Mix{Plan: 2, Session: 1, Ensemble: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Fatalf("mode = %q, want open", rep.Mode)
	}
	if rep.Requests == 0 || rep.Requests > 40 {
		t.Fatalf("requests = %d, want (0, 40]", rep.Requests)
	}
	if rep.Err5xx != 0 {
		t.Fatalf("5xx from a healthy node: %+v", rep)
	}
	if rep.Ops.Plans+rep.Ops.Sessions+rep.Ops.Ensembles != rep.Requests {
		t.Fatalf("ops %+v do not sum to %d", rep.Ops, rep.Requests)
	}
	if rep.Ops.Sessions == 0 && rep.Ops.Ensembles == 0 {
		t.Fatal("mix produced no session or ensemble ops")
	}
}
