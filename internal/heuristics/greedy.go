package heuristics

import (
	"context"
	"math"
	"sort"
	"time"

	"netrecovery/internal/demand"
	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
)

// Figure labels of the greedy heuristics.
const (
	GreedyCommitName   = "GRD-COM"
	GreedyNoCommitName = "GRD-NC"
)

// Greedy heuristics of §VI-C. Both map every simple path between a demand
// pair to a knapsack object whose weight is the repair cost of the path and
// whose value is its capacity, then repair paths in ascending order of
// cost/capacity. GRD-COM commits flow to each repaired path immediately
// (fewer repairs, possible demand loss); GRD-NC only stops once the overall
// demand becomes routable on the repaired network (no loss when the intact
// network could carry the demand, but more repairs).
//
// As the paper notes, the path enumeration is exponential in general; both
// heuristics therefore bound the number of paths per demand pair
// (MaxPathsPerPair) and the path length (MaxPathLength), which corresponds
// to the offline pre-computation the paper assumes and explains why the
// greedy heuristics are not run on large topologies (§VII-C).

// GreedyCommit is GRD-COM.
type GreedyCommit struct {
	MaxPathsPerPair int
	MaxPathLength   int
}

// GreedyNoCommit is GRD-NC.
type GreedyNoCommit struct {
	MaxPathsPerPair int
	MaxPathLength   int
	// Routability configures the routability test run after each repair.
	Routability flow.Options
}

var (
	_ Solver = (*GreedyCommit)(nil)
	_ Solver = (*GreedyNoCommit)(nil)
)

// Name implements Solver.
func (GreedyCommit) Name() string { return GreedyCommitName }

// Name implements Solver.
func (GreedyNoCommit) Name() string { return GreedyNoCommitName }

// candidatePath is a knapsack object: one simple path of one demand pair.
type candidatePath struct {
	pair   demand.Pair
	path   graph.Path
	weight float64 // repair cost / capacity
}

// enumerateCandidates builds the weighted path list P(H, G) shared by both
// greedy heuristics.
func enumerateCandidates(s *scenario.Scenario, maxPaths, maxLen int) []candidatePath {
	if maxPaths <= 0 {
		maxPaths = 400
	}
	if maxLen <= 0 {
		maxLen = 12
	}
	brokenNodes := s.BrokenNodes
	brokenEdges := s.BrokenEdges
	var out []candidatePath
	for _, p := range s.Demand.Active() {
		paths := s.Supply.AllSimplePaths(p.Source, p.Target, maxLen, maxPaths)
		for _, path := range paths {
			capacity := path.Capacity(s.Supply)
			if capacity <= 1e-9 {
				continue
			}
			cost := path.RepairCost(s.Supply, brokenNodes, brokenEdges)
			out = append(out, candidatePath{
				pair:   p,
				path:   path,
				weight: cost / capacity,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].weight != out[j].weight {
			return out[i].weight < out[j].weight
		}
		// Tie-break: shorter paths first, then pair ID for determinism.
		if out[i].path.Len() != out[j].path.Len() {
			return out[i].path.Len() < out[j].path.Len()
		}
		return out[i].pair.ID < out[j].pair.ID
	})
	return out
}

// repairPath marks every broken element of the path as repaired in the plan.
func repairPath(s *scenario.Scenario, plan *scenario.Plan, path graph.Path) {
	for _, v := range path.Nodes {
		if s.BrokenNodes[v] {
			plan.RepairedNodes[v] = true
		}
	}
	for _, eid := range path.Edges {
		if s.BrokenEdges[eid] {
			plan.RepairedEdges[eid] = true
		}
	}
}

// Solve implements Solver (GRD-COM): repair paths in weight order, commit as
// much of the owning demand as possible to each repaired path, then try to
// route other demands over the already repaired network, until all demands
// are satisfied or paths run out.
func (g *GreedyCommit) Solve(ctx context.Context, s *scenario.Scenario) (*scenario.Plan, error) {
	start := time.Now()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	plan := scenario.NewPlan(GreedyCommitName)
	plan.TotalDemand = s.Demand.TotalFlow()

	candidates := enumerateCandidates(s, g.MaxPathsPerPair, g.MaxPathLength)

	// Residual demand per pair and residual capacity per edge.
	remaining := make(map[demand.PairID]float64)
	for _, p := range s.Demand.Active() {
		remaining[p.ID] = p.Flow
	}
	residual := make(map[graph.EdgeID]float64, s.Supply.NumEdges())
	for i := 0; i < s.Supply.NumEdges(); i++ {
		residual[graph.EdgeID(i)] = s.Supply.Edge(graph.EdgeID(i)).Capacity
	}

	allSatisfied := func() bool {
		for _, r := range remaining {
			if r > 1e-9 {
				return false
			}
		}
		return true
	}

	// assign pushes up to amount units of pair over path, honouring residual
	// capacities, and records the routing.
	assign := func(pairID demand.PairID, path graph.Path, amount float64) float64 {
		if amount <= 1e-9 {
			return 0
		}
		avail := amount
		for _, eid := range path.Edges {
			if residual[eid] < avail {
				avail = residual[eid]
			}
		}
		if avail <= 1e-9 {
			return 0
		}
		cur := path.Nodes[0]
		for i, eid := range path.Edges {
			e := s.Supply.Edge(eid)
			sign := 1.0
			if e.From != cur {
				sign = -1
			}
			plan.Routing.AddFlow(pairID, eid, sign*avail)
			residual[eid] -= avail
			cur = path.Nodes[i+1]
		}
		return avail
	}

	for _, cand := range candidates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if allSatisfied() {
			break
		}
		if remaining[cand.pair.ID] <= 1e-9 {
			continue
		}
		repairPath(s, plan, cand.path)
		routed := assign(cand.pair.ID, cand.path, remaining[cand.pair.ID])
		remaining[cand.pair.ID] -= routed

		// Opportunistically route other unsatisfied demands over the network
		// repaired so far.
		for _, other := range s.Demand.SortedByFlowDesc() {
			if remaining[other.ID] <= 1e-9 {
				continue
			}
			caps := usableResidual(s, plan, residual)
			value, assignment := s.Supply.MaxFlowWithAssignment(other.Source, other.Target, caps)
			routed := math.Min(value, remaining[other.ID])
			if routed <= 1e-9 {
				continue
			}
			scale := routed / value
			for eid, f := range assignment {
				used := f * scale
				if math.Abs(used) <= 1e-9 {
					continue
				}
				plan.Routing.AddFlow(other.ID, eid, used)
				residual[eid] -= math.Abs(used)
				if residual[eid] < 0 {
					residual[eid] = 0
				}
			}
			remaining[other.ID] -= routed
		}
	}

	satisfied := 0.0
	for _, p := range s.Demand.Active() {
		satisfied += p.Flow - math.Max(0, remaining[p.ID])
	}
	plan.SatisfiedDemand = satisfied
	plan.Runtime = time.Since(start)
	return plan, nil
}

// usableResidual restricts the residual capacities to edges usable with the
// plan's current repairs.
func usableResidual(s *scenario.Scenario, plan *scenario.Plan, residual map[graph.EdgeID]float64) map[graph.EdgeID]float64 {
	caps := make(map[graph.EdgeID]float64, len(residual))
	for eid, c := range residual {
		if s.EdgeUsable(eid, plan.RepairedNodes, plan.RepairedEdges) {
			caps[eid] = c
		} else {
			caps[eid] = 0
		}
	}
	return caps
}

// Solve implements Solver (GRD-NC): repair paths in weight order without
// committing any routing, re-running the routability test after each repair,
// and stop as soon as the whole demand is routable on the repaired network.
func (g *GreedyNoCommit) Solve(ctx context.Context, s *scenario.Scenario) (*scenario.Plan, error) {
	start := time.Now()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	plan := scenario.NewPlan(GreedyNoCommitName)
	plan.TotalDemand = s.Demand.TotalFlow()

	candidates := enumerateCandidates(s, g.MaxPathsPerPair, g.MaxPathLength)

	routable := func() (scenario.Routing, bool) {
		excludedNodes := make(map[graph.NodeID]bool)
		for v := range s.BrokenNodes {
			if !plan.RepairedNodes[v] {
				excludedNodes[v] = true
			}
		}
		excludedEdges := make(map[graph.EdgeID]bool)
		for e := range s.BrokenEdges {
			if !plan.RepairedEdges[e] {
				excludedEdges[e] = true
			}
		}
		in := &flow.Instance{
			Graph:         s.Supply,
			ExcludedNodes: excludedNodes,
			ExcludedEdges: excludedEdges,
			Demands:       s.Demand.Active(),
		}
		res := flow.CheckRoutability(in, g.Routability)
		return res.Routing, res.Routable
	}

	if routing, ok := routable(); ok {
		plan.Routing = routing
		plan.SatisfiedDemand = plan.TotalDemand
		plan.Runtime = time.Since(start)
		return plan, nil
	}
	for _, cand := range candidates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		before := len(plan.RepairedNodes) + len(plan.RepairedEdges)
		repairPath(s, plan, cand.path)
		if len(plan.RepairedNodes)+len(plan.RepairedEdges) == before {
			// Nothing new repaired; skip the (expensive) routability test.
			continue
		}
		if routing, ok := routable(); ok {
			plan.Routing = routing
			plan.SatisfiedDemand = plan.TotalDemand
			plan.Runtime = time.Since(start)
			return plan, nil
		}
	}
	// Ran out of candidate paths: fall back to measuring what the repaired
	// network can carry.
	fillRoutedDemand(s, plan)
	plan.Runtime = time.Since(start)
	return plan, nil
}
