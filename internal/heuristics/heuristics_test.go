package heuristics

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"netrecovery/internal/core"
	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// diamondScenario returns a fully destroyed 4-node diamond with a single
// demand 0->3 of the given flow. Each route has capacity 10.
func diamondScenario(t *testing.T, flowUnits float64) *scenario.Scenario {
	t.Helper()
	g := graph.New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode("", float64(i), float64(i%2), 1)
	}
	g.MustAddEdge(0, 1, 10, 1)
	g.MustAddEdge(1, 3, 10, 1)
	g.MustAddEdge(0, 2, 10, 1)
	g.MustAddEdge(2, 3, 10, 1)
	dg := demand.New()
	dg.MustAdd(0, 3, flowUnits)
	d := disruption.Complete(g)
	return &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
}

// gridScenario returns a destroyed 3x3 grid with two corner demands.
func gridScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	g, err := topology.Grid(3, 3, topology.DefaultConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	dg := demand.New()
	dg.MustAdd(0, 8, 10)
	dg.MustAdd(2, 6, 10)
	d := disruption.Complete(g)
	return &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
}

func TestNewAndNames(t *testing.T) {
	for _, name := range Names() {
		solver, err := New(name, Params{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if solver.Name() != name {
			t.Errorf("Name() = %q, want %q", solver.Name(), name)
		}
	}
	if _, err := New("nope", Params{}); err == nil {
		t.Error("expected error for unknown solver")
	}
}

// TestInfosMetadata checks that every registered solver carries metadata and
// that exactly OPT is marked exact among the built-ins.
func TestInfosMetadata(t *testing.T) {
	infos := Infos()
	if len(infos) != len(Names()) {
		t.Fatalf("Infos() has %d entries, Names() %d", len(infos), len(Names()))
	}
	for i, info := range infos {
		if info.Name != Names()[i] {
			t.Errorf("Infos()[%d].Name = %q, want %q", i, info.Name, Names()[i])
		}
		if info.Description == "" || info.Scalability == "" {
			t.Errorf("%s: empty metadata: %+v", info.Name, info)
		}
		if info.Exact != (info.Name == OptName) {
			t.Errorf("%s: Exact = %v", info.Name, info.Exact)
		}
	}
}

// TestParamsThreadedThroughRegistry checks that the factory params reach the
// constructed solvers: Fast selects ISP's greedy split mode and the OPT
// budget lands on the Opt solver.
func TestParamsThreadedThroughRegistry(t *testing.T) {
	fast, err := New(core.SolverName, Params{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := Unwrap(fast).(*ISPSolver).Options.SplitMode; got != core.SplitGreedy {
		t.Errorf("Fast ISP split mode = %v, want SplitGreedy", got)
	}
	slow, err := New(core.SolverName, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if got := Unwrap(slow).(*ISPSolver).Options.SplitMode; got != core.SplitMode(0) {
		t.Errorf("default ISP split mode = %v, want zero (exact)", got)
	}
	opt, err := New(OptName, Params{OPTTimeLimit: 5 * time.Second, OPTMaxNodes: 77})
	if err != nil {
		t.Fatal(err)
	}
	if o := Unwrap(opt).(*Opt); o.TimeLimit != 5*time.Second || o.MaxNodes != 77 {
		t.Errorf("OPT budget = (%v, %d), want (5s, 77)", o.TimeLimit, o.MaxNodes)
	}
}

// TestProgressEvents checks that ISP streams iteration events and OPT
// streams incumbent/bound events through the registry's Progress param.
func TestProgressEvents(t *testing.T) {
	var events []ProgressEvent
	record := func(ev ProgressEvent) { events = append(events, ev) }

	isp, err := New(core.SolverName, Params{Progress: record})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := isp.Solve(context.Background(), gridScenario(t)); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("ISP emitted no progress events")
	}
	for i, ev := range events {
		if ev.Solver != core.SolverName || ev.Kind != EventIteration {
			t.Fatalf("event %d = %+v, want an ISP iteration event", i, ev)
		}
		if ev.Iteration != i {
			t.Errorf("event %d has iteration %d", i, ev.Iteration)
		}
	}

	events = nil
	opt, err := New(OptName, Params{Progress: record, OPTTimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Disable the warm start so the search itself must find an incumbent.
	Unwrap(opt).(*Opt).DisableWarmStart = true
	if _, err := opt.Solve(context.Background(), diamondScenario(t, 8)); err != nil {
		t.Fatal(err)
	}
	sawIncumbent := false
	for _, ev := range events {
		if ev.Solver != OptName || (ev.Kind != EventIncumbent && ev.Kind != EventBound) {
			t.Fatalf("event %+v, want an OPT incumbent/bound event", ev)
		}
		if ev.Kind == EventIncumbent {
			sawIncumbent = true
			if ev.Incumbent <= 0 {
				t.Errorf("incumbent event with objective %f", ev.Incumbent)
			}
		}
	}
	if !sawIncumbent {
		t.Error("OPT emitted no incumbent event")
	}
}

func TestAllRepairsEverything(t *testing.T) {
	s := diamondScenario(t, 8)
	plan, err := (&All{}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	nodes, edges, _ := plan.NumRepairs()
	if nodes != 4 || edges != 4 {
		t.Errorf("ALL repaired %d nodes %d edges, want 4 and 4", nodes, edges)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("ALL satisfaction = %f, want 1", plan.SatisfactionRatio())
	}
	if err := scenario.VerifyPlan(s, plan); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestSRTRepairsOneRoute(t *testing.T) {
	s := diamondScenario(t, 8)
	plan, err := (&SRT{}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	_, edges, _ := plan.NumRepairs()
	if edges != 2 {
		t.Errorf("SRT repaired %d edges, want 2 (one route)", edges)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("SRT satisfaction = %f, want 1 on a single demand", plan.SatisfactionRatio())
	}
	if err := scenario.VerifyPlan(s, plan); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestSRTDemandLossUnderSharing(t *testing.T) {
	// Two demands of 15 each between the same endpoints of the diamond
	// (total 30 > 20 network capacity, but each fits alone on... actually
	// each needs 15 > 10 per route so SRT repairs both routes per demand).
	// Build instead a path topology where sharing causes loss: two demands
	// (0->2 and 1->2) of 8 units share edge 1-2 of capacity 10.
	g := graph.New(3, 2)
	for i := 0; i < 3; i++ {
		g.AddNode("", float64(i), 0, 1)
	}
	g.MustAddEdge(0, 1, 10, 1)
	g.MustAddEdge(1, 2, 10, 1)
	dg := demand.New()
	dg.MustAdd(0, 2, 8)
	dg.MustAdd(1, 2, 8)
	d := disruption.Complete(g)
	s := &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
	plan, err := (&SRT{}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SatisfactionRatio() >= 1 {
		t.Errorf("SRT should lose demand when shared paths saturate, got ratio %f", plan.SatisfactionRatio())
	}
	if err := scenario.VerifyPlan(s, plan); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestGreedyCommitDiamond(t *testing.T) {
	s := diamondScenario(t, 8)
	plan, err := (&GreedyCommit{}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("GRD-COM satisfaction = %f, want 1", plan.SatisfactionRatio())
	}
	_, edges, _ := plan.NumRepairs()
	if edges > 4 {
		t.Errorf("GRD-COM repaired %d edges, want <= 4", edges)
	}
	if err := scenario.VerifyPlan(s, plan); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestGreedyNoCommitDiamond(t *testing.T) {
	s := diamondScenario(t, 8)
	plan, err := (&GreedyNoCommit{}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("GRD-NC satisfaction = %f, want 1", plan.SatisfactionRatio())
	}
	if err := scenario.VerifyPlan(s, plan); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestGreedyNoCommitNoRepairsWhenIntact(t *testing.T) {
	g, err := topology.Grid(3, 3, topology.DefaultConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	dg := demand.New()
	dg.MustAdd(0, 8, 10)
	s := &scenario.Scenario{
		Supply: g, Demand: dg,
		BrokenNodes: map[graph.NodeID]bool{},
		BrokenEdges: map[graph.EdgeID]bool{},
	}
	plan, err := (&GreedyNoCommit{}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, total := plan.NumRepairs(); total != 0 {
		t.Errorf("repairs = %d, want 0 on an intact network", total)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Error("intact network must satisfy the demand")
	}
}

func TestOptDiamondIsOptimal(t *testing.T) {
	// The optimum for 8 units over the destroyed diamond is one route:
	// 3 nodes + 2 edges = cost 5.
	s := diamondScenario(t, 8)
	plan, err := (&Opt{MaxNodes: 2000, TimeLimit: 30 * time.Second}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if cost := plan.RepairCost(s); cost > 5+1e-6 {
		t.Errorf("OPT cost = %f, want 5", cost)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("OPT satisfaction = %f, want 1", plan.SatisfactionRatio())
	}
	if err := scenario.VerifyPlan(s, plan); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestOptNeverWorseThanISP(t *testing.T) {
	s := gridScenario(t)
	ispPlan, err := (&ISPSolver{}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	optPlan, err := (&Opt{MaxNodes: 300, TimeLimit: 20 * time.Second}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if optPlan.RepairCost(s) > ispPlan.RepairCost(s)+1e-6 {
		t.Errorf("OPT cost %f exceeds ISP cost %f", optPlan.RepairCost(s), ispPlan.RepairCost(s))
	}
	if err := scenario.VerifyPlan(s, optPlan); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestOptInfeasibleDemand(t *testing.T) {
	s := diamondScenario(t, 100) // exceeds total capacity 20
	plan, err := (&Opt{MaxNodes: 50, TimeLimit: 10 * time.Second}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SatisfactionRatio() >= 1 {
		t.Error("demand 100 cannot be fully satisfied")
	}
	if _, _, total := plan.NumRepairs(); total == 0 {
		t.Error("infeasible fallback should still repair elements")
	}
}

func TestOptEmptyDemand(t *testing.T) {
	g, err := topology.Grid(2, 2, topology.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	s := &scenario.Scenario{
		Supply: g, Demand: demand.New(),
		BrokenNodes: map[graph.NodeID]bool{0: true},
		BrokenEdges: map[graph.EdgeID]bool{},
	}
	plan, err := (&Opt{}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, total := plan.NumRepairs(); total != 0 {
		t.Errorf("no demand means no repairs, got %d", total)
	}
	if !plan.Optimal {
		t.Error("empty problem is trivially optimal")
	}
}

func TestOptColdStart(t *testing.T) {
	s := diamondScenario(t, 8)
	plan, err := (&Opt{MaxNodes: 2000, TimeLimit: 30 * time.Second, DisableWarmStart: true}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if cost := plan.RepairCost(s); cost > 5+1e-6 {
		t.Errorf("cold-start OPT cost = %f, want 5", cost)
	}
}

func TestSolverOrderingOnGrid(t *testing.T) {
	// The qualitative ordering the paper reports: OPT <= ISP <= greedy
	// heuristics <= ALL in number of repairs, with ISP and GRD-NC at 100%
	// satisfaction.
	s := gridScenario(t)
	results := make(map[string]*scenario.Plan)
	solvers := []Solver{
		&ISPSolver{},
		&SRT{},
		&GreedyCommit{},
		&GreedyNoCommit{},
		&All{},
		&Opt{MaxNodes: 300, TimeLimit: 20 * time.Second},
	}
	for _, solver := range solvers {
		plan, err := solver.Solve(context.Background(), s)
		if err != nil {
			t.Fatalf("%s: %v", solver.Name(), err)
		}
		if err := scenario.VerifyPlan(s, plan); err != nil {
			t.Fatalf("%s produced an invalid plan: %v", solver.Name(), err)
		}
		results[solver.Name()] = plan
	}
	_, _, ispTotal := results[core.SolverName].NumRepairs()
	_, _, optTotal := results[OptName].NumRepairs()
	_, _, allTotal := results[AllName].NumRepairs()
	if optTotal > ispTotal {
		t.Errorf("OPT repairs %d > ISP repairs %d", optTotal, ispTotal)
	}
	if ispTotal > allTotal {
		t.Errorf("ISP repairs %d > ALL repairs %d", ispTotal, allTotal)
	}
	if results[core.SolverName].SatisfactionRatio() < 1-1e-9 {
		t.Error("ISP must not lose demand")
	}
	if results[GreedyNoCommitName].SatisfactionRatio() < 1-1e-9 {
		t.Error("GRD-NC must not lose demand when the intact network could route it")
	}
}

func TestBellCanadaGeographicAllSolvers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Bell-Canada end-to-end comparison in short mode")
	}
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(11))
	d := disruption.Geographic(g, disruption.GeographicConfig{Auto: true, Variance: 30, PeakProbability: 1}, rng)
	dg, err := demand.GenerateFarApartPairs(g, 3, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}

	ispPlan, err := (&ISPSolver{}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if ispPlan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("ISP satisfaction = %f, want 1", ispPlan.SatisfactionRatio())
	}
	srtPlan, err := (&SRT{}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	_, _, ispTotal := ispPlan.NumRepairs()
	if ispTotal > d.Total() {
		t.Errorf("ISP repairs %d exceed broken elements %d", ispTotal, d.Total())
	}
	for name, plan := range map[string]*scenario.Plan{"ISP": ispPlan, "SRT": srtPlan} {
		if err := scenario.VerifyPlan(s, plan); err != nil {
			t.Errorf("%s verify: %v", name, err)
		}
	}
}
