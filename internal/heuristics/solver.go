// Package heuristics implements the baseline recovery algorithms the paper
// compares ISP against (§VI): the shortest-path repair heuristic SRT, the
// knapsack-inspired greedy heuristics GRD-COM and GRD-NC, the trivial
// repair-everything baseline ALL, the exact MILP OPT (problem (1)) solved by
// branch and bound, and a wrapper around the multi-commodity relaxation.
//
// Every algorithm is registered in a named registry (Register / New / Names)
// and implements the context-aware Solver interface, so callers — the public
// facade, the experiment harness and the concurrent sweep engine — can look
// solvers up by name and cancel long runs through the context.
package heuristics

import (
	"context"
	"fmt"
	"sync"

	"netrecovery/internal/core"
	"netrecovery/internal/scenario"
)

// Solver is the common interface of every recovery algorithm in the
// repository: it consumes a scenario and produces a plan. Implementations
// must not mutate the scenario (they clone what they need) and must honour
// cancellation of the context, returning ctx.Err() promptly once it fires.
type Solver interface {
	// Name returns the algorithm's short name as used in the paper's figures.
	Name() string
	// Solve computes a repair plan for the scenario.
	Solve(ctx context.Context, s *scenario.Scenario) (*scenario.Plan, error)
}

// Factory constructs a fresh instance of a solver configured with defaults.
// Factories keep the registry free of shared mutable solver state: every
// New call hands out an independent value, which keeps concurrent sweeps
// data-race free.
type Factory func() Solver

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Factory)
	// names preserves registration order, which doubles as the presentation
	// order of the paper's figures.
	names []string
)

// Register adds a solver factory under the given name. It panics when the
// name is already taken, mirroring database/sql.Register semantics.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || f == nil {
		panic("heuristics: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("heuristics: Register called twice for solver %q", name))
	}
	registry[name] = f
	names = append(names, name)
}

func init() {
	Register(core.SolverName, func() Solver { return &ISPSolver{} })
	Register(OptName, func() Solver { return &Opt{} })
	Register(SRTName, func() Solver { return &SRT{} })
	Register(GreedyCommitName, func() Solver { return &GreedyCommit{} })
	Register(GreedyNoCommitName, func() Solver { return &GreedyNoCommit{} })
	Register(AllName, func() Solver { return &All{} })
}

// ISPSolver adapts the core ISP implementation to the Solver interface.
type ISPSolver struct {
	Options core.Options
}

var _ Solver = (*ISPSolver)(nil)

// Name implements Solver.
func (ISPSolver) Name() string { return core.SolverName }

// Solve implements Solver.
func (s *ISPSolver) Solve(ctx context.Context, sc *scenario.Scenario) (*scenario.Plan, error) {
	plan, _, err := core.Solve(ctx, sc.Clone(), s.Options)
	return plan, err
}

// New returns a fresh solver with the given name configured with defaults.
// Built-in names: ISP, OPT, SRT, GRD-COM, GRD-NC, ALL.
func New(name string) (Solver, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("heuristics: unknown solver %q", name)
	}
	return f(), nil
}

// Names returns the registered solver names in registration (presentation)
// order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return append([]string(nil), names...)
}
