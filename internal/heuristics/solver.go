// Package heuristics implements the baseline recovery algorithms the paper
// compares ISP against (§VI): the shortest-path repair heuristic SRT, the
// knapsack-inspired greedy heuristics GRD-COM and GRD-NC, the trivial
// repair-everything baseline ALL, the exact MILP OPT (problem (1)) solved by
// branch and bound, and a wrapper around the multi-commodity relaxation.
//
// Every algorithm is registered in a named registry (Register / New / Names /
// Infos) together with its metadata, and implements the context-aware Solver
// interface. Registry factories receive a Params value carrying the
// per-solver tuning knobs (fast mode, OPT search budget, progress streaming),
// so every caller — the public facade, the experiment harness and the
// concurrent sweep engine — constructs every algorithm the same way, with no
// per-name special cases.
package heuristics

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"netrecovery/internal/core"
	"netrecovery/internal/milp"
	"netrecovery/internal/scenario"
)

// Solver is the common interface of every recovery algorithm in the
// repository: it consumes a scenario and produces a plan. Implementations
// must not mutate the scenario (they clone what they need) and must honour
// cancellation of the context, returning ctx.Err() promptly once it fires.
type Solver interface {
	// Name returns the algorithm's short name as used in the paper's figures.
	Name() string
	// Solve computes a repair plan for the scenario.
	Solve(ctx context.Context, s *scenario.Scenario) (*scenario.Plan, error)
}

// Progress event kinds.
const (
	// EventIteration is emitted by ISP once per main-loop iteration.
	EventIteration = "iteration"
	// EventIncumbent is emitted by OPT when branch and bound accepts a new
	// incumbent solution.
	EventIncumbent = "incumbent"
	// EventBound is emitted by OPT periodically as the search explores nodes
	// and the best bound moves.
	EventBound = "bound"
)

// ProgressEvent is one observability event streamed by a long-running
// solver: ISP reports its iterations, OPT reports incumbent and bound
// updates of its branch-and-bound search.
type ProgressEvent struct {
	// Solver is the name of the emitting algorithm.
	Solver string
	// Kind is one of the Event* constants.
	Kind string
	// Iteration and Repairs accompany EventIteration: the 0-based main-loop
	// iteration and the number of elements scheduled for repair so far.
	Iteration int
	Repairs   int
	// Incumbent, Bound and Nodes accompany EventIncumbent / EventBound: the
	// incumbent objective (±Inf while none exists), the best proven bound
	// and the number of explored branch-and-bound nodes.
	Incumbent float64
	Bound     float64
	Nodes     int
}

// ProgressFunc receives solver progress events. It runs synchronously on the
// solver goroutine and must be cheap; concurrent solves may invoke it from
// multiple goroutines.
type ProgressFunc func(ProgressEvent)

// Params carries the per-solver tuning knobs threaded through the registry.
// Every Factory receives the full set and honours the fields it understands,
// ignoring the rest; this is what lets one registry construct every
// algorithm uniformly.
type Params struct {
	// Fast prefers speed over solution quality where an algorithm offers the
	// trade-off: ISP switches to its greedy split mode (recommended for
	// networks with hundreds of nodes). Algorithms without such a mode
	// ignore it.
	Fast bool
	// OPTTimeLimit / OPTMaxNodes bound OPT's branch-and-bound search (zero
	// means the solver defaults: 120s / 4000 nodes).
	OPTTimeLimit time.Duration
	OPTMaxNodes  int
	// OPTWorkers is the branch-and-bound parallelism of OPT's search
	// (0 = GOMAXPROCS, negative = 1). Plans are identical for every worker
	// count; callers that already parallelise across solves (the sweep
	// engine, the figure runners) pass an explicit per-job budget so the
	// two levels of parallelism do not oversubscribe the machine.
	OPTWorkers int
	// Progress, when set, receives the solver's progress events.
	Progress ProgressFunc
	// OnStats, when set, receives the solver-depth statistics of each
	// completed solve (ISP and OPT; other algorithms do not report). It is
	// invoked synchronously on the solver goroutine with the Solve context
	// — serving-time tracing attaches the stats to the current span — and
	// must be cheap. Like Progress it is answer-invariant and excluded
	// from ParamsDigest.
	OnStats StatsFunc
}

// SolveStats is the solver-depth record of one completed solve: what the
// algorithm actually did, as opposed to what it answered. Exactly one of
// Core/MILP is set, matching the algorithm family.
type SolveStats struct {
	// Solver is the reporting algorithm's registry name.
	Solver string
	// Core carries ISP's iteration/prune/repair counters (including the
	// routability tester's LP call and warm-start counts).
	Core *core.Stats
	// MILP carries OPT's branch-and-bound depth record: nodes, rounds,
	// steal counts, aggregated LP iterations/refactorisations and the
	// incumbent/bound timeline.
	MILP *milp.Stats
}

// StatsFunc receives solver-depth statistics after a solve completes. The
// context is the Solve call's context.
type StatsFunc func(ctx context.Context, st SolveStats)

// Factory constructs a fresh solver instance configured from the given
// params. Factories keep the registry free of shared mutable solver state:
// every New call hands out an independent value, which keeps concurrent
// sweeps data-race free.
type Factory func(p Params) Solver

// Info is the registry metadata of one algorithm.
type Info struct {
	// Name is the registry key and the figure label of the algorithm.
	Name string
	// Description is a one-line human-readable summary.
	Description string
	// Exact reports whether the algorithm produces provably optimal plans
	// (given enough search budget) as opposed to a heuristic.
	Exact bool
	// Scalability hints at the instance sizes the algorithm handles.
	Scalability string
}

type registryEntry struct {
	info    Info
	factory Factory
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]registryEntry)
	// names preserves registration order, which doubles as the presentation
	// order of the paper's figures.
	names []string
)

// Register adds a solver factory with its metadata. It panics when the name
// is empty or already taken, mirroring database/sql.Register semantics.
func Register(info Info, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if info.Name == "" || f == nil {
		panic("heuristics: Register with empty name or nil factory")
	}
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("heuristics: Register called twice for solver %q", info.Name))
	}
	registry[info.Name] = registryEntry{info: info, factory: f}
	names = append(names, info.Name)
}

func init() {
	Register(Info{
		Name:        core.SolverName,
		Description: "Iterative Split and Prune, the paper's polynomial heuristic (recommended)",
		Scalability: "hundreds of nodes (greedy split mode for larger topologies)",
	}, func(p Params) Solver {
		s := &ISPSolver{Progress: p.Progress, OnStats: p.OnStats}
		if p.Fast {
			s.Options = core.FastOptions()
		}
		return s
	})
	Register(Info{
		Name:        OptName,
		Description: "exact MILP of problem (1) solved by branch and bound",
		Exact:       true,
		Scalability: "small instances only (tens of broken elements)",
	}, func(p Params) Solver {
		return &Opt{MaxNodes: p.OPTMaxNodes, TimeLimit: p.OPTTimeLimit, Workers: p.OPTWorkers, Progress: p.Progress, OnStats: p.OnStats}
	})
	Register(Info{
		Name:        SRTName,
		Description: "shortest-path repair heuristic; cheap but may lose demand",
		Scalability: "thousands of nodes",
	}, func(Params) Solver { return &SRT{} })
	Register(Info{
		Name:        GreedyCommitName,
		Description: "knapsack-style greedy committing flow per repaired path",
		Scalability: "small topologies (exponential path enumeration, bounded)",
	}, func(Params) Solver { return &GreedyCommit{} })
	Register(Info{
		Name:        GreedyNoCommitName,
		Description: "knapsack-style greedy repairing paths until the demand is routable",
		Scalability: "small topologies (exponential path enumeration, bounded)",
	}, func(Params) Solver { return &GreedyNoCommit{} })
	Register(Info{
		Name:        AllName,
		Description: "repair-everything baseline",
		Scalability: "any size",
	}, func(Params) Solver { return &All{} })
}

// ISPSolver adapts the core ISP implementation to the Solver interface.
type ISPSolver struct {
	Options core.Options
	// Progress, when set, receives an EventIteration event per main-loop
	// iteration.
	Progress ProgressFunc
	// OnStats, when set, receives the run's core.Stats after each solve.
	OnStats StatsFunc
}

var _ Solver = (*ISPSolver)(nil)

// Name implements Solver.
func (ISPSolver) Name() string { return core.SolverName }

// Solve implements Solver.
func (s *ISPSolver) Solve(ctx context.Context, sc *scenario.Scenario) (*scenario.Plan, error) {
	opts := s.Options
	if s.Progress != nil {
		progress := s.Progress
		opts.Progress = func(iteration, repairs int) {
			progress(ProgressEvent{
				Solver:    core.SolverName,
				Kind:      EventIteration,
				Iteration: iteration,
				Repairs:   repairs,
			})
		}
	}
	plan, stats, err := core.Solve(ctx, sc.Clone(), opts)
	if s.OnStats != nil && err == nil {
		s.OnStats(ctx, SolveStats{Solver: core.SolverName, Core: &stats})
	}
	return plan, err
}

// New returns a fresh solver with the given name, configured from params.
// Built-in names: ISP, OPT, SRT, GRD-COM, GRD-NC, ALL. Every returned
// solver is wrapped in the Guard fault boundary (panic recovery + the
// solver fault-injection point); use Unwrap to reach the concrete type.
func New(name string, p Params) (Solver, error) {
	registryMu.RLock()
	e, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("heuristics: unknown solver %q (available: %s)", name, strings.Join(Names(), ", "))
	}
	return Guard(e.factory(p)), nil
}

// Names returns the registered solver names in registration (presentation)
// order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return append([]string(nil), names...)
}

// Infos returns the metadata of every registered solver in registration
// order.
func Infos() []Info {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Info, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n].info)
	}
	return out
}
