// Package heuristics implements the baseline recovery algorithms the paper
// compares ISP against (§VI): the shortest-path repair heuristic SRT, the
// knapsack-inspired greedy heuristics GRD-COM and GRD-NC, the trivial
// repair-everything baseline ALL, the exact MILP OPT (problem (1)) solved by
// branch and bound, and a wrapper around the multi-commodity relaxation.
package heuristics

import (
	"fmt"

	"netrecovery/internal/core"
	"netrecovery/internal/scenario"
)

// Solver is the common interface of every recovery algorithm in the
// repository: it consumes a scenario and produces a plan. Implementations
// must not mutate the scenario (they clone what they need).
type Solver interface {
	// Name returns the algorithm's short name as used in the paper's figures.
	Name() string
	// Solve computes a repair plan for the scenario.
	Solve(s *scenario.Scenario) (*scenario.Plan, error)
}

// ISPSolver adapts the core ISP implementation to the Solver interface.
type ISPSolver struct {
	Options core.Options
}

var _ Solver = (*ISPSolver)(nil)

// Name implements Solver.
func (ISPSolver) Name() string { return core.SolverName }

// Solve implements Solver.
func (s *ISPSolver) Solve(sc *scenario.Scenario) (*scenario.Plan, error) {
	plan, _, err := core.Solve(sc.Clone(), s.Options)
	return plan, err
}

// New returns the solver with the given name configured with defaults.
// Recognised names: ISP, SRT, GRD-COM, GRD-NC, ALL, OPT.
func New(name string) (Solver, error) {
	switch name {
	case core.SolverName:
		return &ISPSolver{}, nil
	case SRTName:
		return &SRT{}, nil
	case GreedyCommitName:
		return &GreedyCommit{}, nil
	case GreedyNoCommitName:
		return &GreedyNoCommit{}, nil
	case AllName:
		return &All{}, nil
	case OptName:
		return &Opt{}, nil
	default:
		return nil, fmt.Errorf("heuristics: unknown solver %q", name)
	}
}

// Names returns the list of recognised solver names in presentation order.
func Names() []string {
	return []string{core.SolverName, OptName, SRTName, GreedyCommitName, GreedyNoCommitName, AllName}
}
