package heuristics

import (
	"context"
	"runtime/debug"

	"netrecovery/internal/degrade"
	"netrecovery/internal/faultinject"
	"netrecovery/internal/scenario"
)

// guarded wraps every solver handed out by New with the serving stack's
// fault boundary: the solver fault-injection point fires at Solve entry
// (chaos tests inject delays, transient errors and panics there), and any
// panic out of the underlying solver is converted into a typed
// *degrade.PanicError instead of unwinding into the caller — a sweep pool,
// a cache singleflight leader or an HTTP handler.
type guarded struct {
	inner Solver
}

var _ Solver = guarded{}

// Name implements Solver.
func (g guarded) Name() string { return g.inner.Name() }

// Solve implements Solver.
func (g guarded) Solve(ctx context.Context, sc *scenario.Scenario) (plan *scenario.Plan, err error) {
	// The recover boundary is installed before the injection point so an
	// injected panic is caught exactly like a real solver panic.
	defer func() {
		if r := recover(); r != nil {
			plan, err = nil, degrade.Recovered("solver:"+g.inner.Name(), r, debug.Stack())
		}
	}()
	if ferr := faultinject.Fire(ctx, faultinject.PointSolver); ferr != nil {
		return nil, ferr
	}
	return g.inner.Solve(ctx, sc)
}

// Guard wraps s with the panic-recovery and fault-injection boundary. New
// applies it to every registry solver; callers constructing solvers
// directly (custom Solver implementations fed to the facade) can apply it
// themselves.
func Guard(s Solver) Solver {
	if _, ok := s.(guarded); ok {
		return s
	}
	return guarded{inner: s}
}

// Unwrap returns the solver underneath a Guard wrapper (or s itself when
// unwrapped). Tests and callers that need the concrete solver type — e.g.
// to flip ISP options after construction — reach through the boundary
// with it.
func Unwrap(s Solver) Solver {
	if g, ok := s.(guarded); ok {
		return g.inner
	}
	return s
}
