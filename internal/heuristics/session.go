package heuristics

import (
	"context"
	"runtime/debug"

	"netrecovery/internal/core"
	"netrecovery/internal/degrade"
	"netrecovery/internal/faultinject"
	"netrecovery/internal/scenario"
)

// ISPSession is a warm ISP solver for incremental re-planning: it keeps
// core.Session state (content-addressed split-LP and routability memos)
// alive across Solve calls, so successive solves of nearby scenarios — the
// same recovery run evolving by break/repair/demand deltas — answer most of
// their LP subproblems from the memo instead of re-solving them.
//
// Every solve is plan-equivalent to a cold ISP solve of the same scenario
// with the same options (see core.Session for the bit-identity argument), so
// an ISPSession is purely a latency optimisation.
//
// Unlike registry solvers, an ISPSession is stateful and NOT safe for
// concurrent use; callers serialise Solve calls (the facade's PlannerSession
// holds a mutex, the server holds one per HTTP session).
type ISPSession struct {
	sess     *core.Session
	options  core.Options
	progress ProgressFunc
}

var _ Solver = (*ISPSession)(nil)

// NewISPSession returns a warm ISP session configured like the registry's
// ISP solver would be for the same params (fast mode selects the greedy
// split configuration; OPT knobs are ignored).
func NewISPSession(p Params) *ISPSession {
	s := &ISPSession{sess: core.NewSession(), progress: p.Progress}
	if p.Fast {
		s.options = core.FastOptions()
	}
	return s
}

// Name implements Solver.
func (s *ISPSession) Name() string { return core.SolverName }

// Solve implements Solver, running ISP with the session's warm state. Like
// the registry's guarded solvers it fires the solver fault-injection point
// and converts panics into typed errors — the warm memo state survives a
// recovered panic only in the parts already committed, which is safe
// because the memos are content-addressed (a re-solve recomputes what the
// interrupted solve never stored).
func (s *ISPSession) Solve(ctx context.Context, sc *scenario.Scenario) (plan *scenario.Plan, err error) {
	defer func() {
		if r := recover(); r != nil {
			plan, err = nil, degrade.Recovered("solver:"+core.SolverName+":session", r, debug.Stack())
		}
	}()
	if ferr := faultinject.Fire(ctx, faultinject.PointSolver); ferr != nil {
		return nil, ferr
	}
	opts := s.options
	if s.progress != nil {
		progress := s.progress
		opts.Progress = func(iteration, repairs int) {
			progress(ProgressEvent{
				Solver:    core.SolverName,
				Kind:      EventIteration,
				Iteration: iteration,
				Repairs:   repairs,
			})
		}
	}
	plan, _, err = s.sess.Solve(ctx, sc.Clone(), opts)
	return plan, err
}

// Stats returns the session's memo counters.
func (s *ISPSession) Stats() core.SessionStats { return s.sess.Stats() }
