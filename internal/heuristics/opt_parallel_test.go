package heuristics

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// invariantScenario builds the same small MinR instances the OPT-vs-dense
// equivalence test uses: the topologies where the exact search terminates
// within the test budget.
func invariantScenario(t *testing.T, topo string, seed int64) *scenario.Scenario {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var (
		g   *graph.Graph
		err error
	)
	if topo == "grid" {
		g, err = topology.Grid(3, 3, topology.DefaultConfig(20))
	} else {
		g, err = topology.ErdosRenyi(10, 0.4, topology.DefaultConfig(20), rng)
	}
	if err != nil {
		t.Fatal(err)
	}
	dg, err := demand.GenerateFarApartPairs(g, 2, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	d := disruption.Geographic(g, disruption.GeographicConfig{Auto: true, Variance: 30, PeakProbability: 1}, rng)
	return &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
}

// planFingerprint is the comparable essence of an OPT plan: the repair
// decision sets, the served demand and the solver's proof state.
type planFingerprint struct {
	Nodes     map[graph.NodeID]bool
	Edges     map[graph.EdgeID]bool
	Satisfied float64
	Cost      float64
	Optimal   bool
	Bound     float64
}

func optFingerprint(s *scenario.Scenario, p *scenario.Plan) planFingerprint {
	return planFingerprint{
		Nodes:     p.RepairedNodes,
		Edges:     p.RepairedEdges,
		Satisfied: math.Round(p.SatisfiedDemand*1e9) / 1e9,
		Cost:      p.RepairCost(s),
		Optimal:   p.Optimal,
		Bound:     math.Round(p.Bound*1e9) / 1e9,
	}
}

// TestOptParallelPlanDeterminism is the end-to-end determinism guarantee of
// the parallel OPT solver: on every invariants topology the plan — repaired
// sets, cost, served demand, bound, optimality proof — is identical across
// Workers ∈ {1, 2, 4} and across five repeats at four workers. (The nightly
// workflow re-runs this under -race -count=2 for schedule diversity.)
func TestOptParallelPlanDeterminism(t *testing.T) {
	ctx := context.Background()
	for _, topo := range []string{"grid", "erdos-renyi"} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", topo, seed), func(t *testing.T) {
				s := invariantScenario(t, topo, seed)
				solve := func(workers int) planFingerprint {
					opt := &Opt{MaxNodes: 20000, TimeLimit: time.Minute, Workers: workers}
					plan, err := opt.Solve(ctx, s)
					if err != nil {
						t.Fatalf("workers %d: %v", workers, err)
					}
					return optFingerprint(s, plan)
				}
				ref := solve(1)
				for _, workers := range []int{2, 4} {
					if got := solve(workers); !reflect.DeepEqual(got, ref) {
						t.Errorf("workers %d: plan diverged\n got %+v\nwant %+v", workers, got, ref)
					}
				}
				for rep := 0; rep < 5; rep++ {
					if got := solve(4); !reflect.DeepEqual(got, ref) {
						t.Errorf("repeat %d @ 4 workers: plan diverged\n got %+v\nwant %+v", rep, got, ref)
					}
				}
			})
		}
	}
}

// TestOptParallelCancellation proves the solver surfaces cancellation
// promptly with every branch-and-bound worker shut down: Solve must return
// ctx.Err() well before the search budget expires.
func TestOptParallelCancellation(t *testing.T) {
	s := invariantScenario(t, "grid", 1)
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		plan *scenario.Plan
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		opt := &Opt{MaxNodes: 10_000_000, TimeLimit: time.Hour, Workers: 4, DisableWarmStart: true}
		plan, err := opt.Solve(ctx, s)
		done <- outcome{plan, err}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case out := <-done:
		if out.err == nil && out.plan != nil && out.plan.Optimal {
			// A tiny instance may legitimately finish before the cancel
			// lands; anything else must surface the context error.
			return
		}
		if out.err == nil {
			t.Errorf("cancelled solve returned no error and a non-optimal plan: %+v", out.plan)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OPT workers did not exit within 5s of cancellation")
	}
}
