package heuristics

import (
	"context"
	"math"
	"testing"
	"time"

	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
)

// bruteForceMinR computes the true MinR optimum of a small scenario by
// enumerating every subset of broken elements and keeping the cheapest one
// whose induced network can route the whole demand (exact LP test). It is
// exponential and only usable on tiny instances, which is exactly what makes
// it a trustworthy oracle for the OPT solver and a lower bound for ISP.
func bruteForceMinR(t *testing.T, s *scenario.Scenario) (float64, bool) {
	t.Helper()
	var brokenNodes []graph.NodeID
	for v := range s.BrokenNodes {
		brokenNodes = append(brokenNodes, v)
	}
	var brokenEdges []graph.EdgeID
	for e := range s.BrokenEdges {
		brokenEdges = append(brokenEdges, e)
	}
	n := len(brokenNodes) + len(brokenEdges)
	if n > 16 {
		t.Fatalf("brute force limited to 16 broken elements, got %d", n)
	}
	bestCost := math.Inf(1)
	found := false
	for mask := 0; mask < 1<<n; mask++ {
		repairedNodes := make(map[graph.NodeID]bool)
		repairedEdges := make(map[graph.EdgeID]bool)
		cost := 0.0
		for i, v := range brokenNodes {
			if mask&(1<<i) != 0 {
				repairedNodes[v] = true
				cost += s.Supply.Node(v).RepairCost
			}
		}
		for j, e := range brokenEdges {
			if mask&(1<<(len(brokenNodes)+j)) != 0 {
				repairedEdges[e] = true
				cost += s.Supply.Edge(e).RepairCost
			}
		}
		if cost >= bestCost {
			continue
		}
		excludedNodes := make(map[graph.NodeID]bool)
		for v := range s.BrokenNodes {
			if !repairedNodes[v] {
				excludedNodes[v] = true
			}
		}
		excludedEdges := make(map[graph.EdgeID]bool)
		for e := range s.BrokenEdges {
			if !repairedEdges[e] {
				excludedEdges[e] = true
			}
		}
		in := &flow.Instance{
			Graph:         s.Supply,
			ExcludedNodes: excludedNodes,
			ExcludedEdges: excludedEdges,
			Demands:       s.Demand.Active(),
		}
		if in.Validate() != nil {
			continue
		}
		if flow.CheckRoutability(in, flow.Options{Mode: flow.ModeExact}).Routable {
			bestCost = cost
			found = true
		}
	}
	return bestCost, found
}

// tinyScenarios returns a handful of small MinR instances with at most 12
// broken elements and known-feasible demand.
func tinyScenarios(t *testing.T) map[string]*scenario.Scenario {
	t.Helper()
	out := make(map[string]*scenario.Scenario)

	// Destroyed diamond, demand fits on one route.
	{
		g := graph.New(4, 4)
		for i := 0; i < 4; i++ {
			g.AddNode("", float64(i), float64(i%2), 1)
		}
		g.MustAddEdge(0, 1, 10, 1)
		g.MustAddEdge(1, 3, 10, 1)
		g.MustAddEdge(0, 2, 10, 1)
		g.MustAddEdge(2, 3, 10, 1)
		dg := demand.New()
		dg.MustAdd(0, 3, 7)
		d := disruption.Complete(g)
		out["destroyed diamond"] = &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
	}

	// Heterogeneous costs: the short route is expensive, the long one cheap.
	{
		g := graph.New(5, 5)
		for i := 0; i < 5; i++ {
			g.AddNode("", float64(i), 0, 1)
		}
		expensive := g.MustAddEdge(0, 4, 10, 10) // direct but costly
		g.MustAddEdge(0, 1, 10, 1)
		g.MustAddEdge(1, 2, 10, 1)
		g.MustAddEdge(2, 3, 10, 1)
		g.MustAddEdge(3, 4, 10, 1)
		dg := demand.New()
		dg.MustAdd(0, 4, 5)
		s := &scenario.Scenario{
			Supply:      g,
			Demand:      dg,
			BrokenNodes: map[graph.NodeID]bool{},
			BrokenEdges: map[graph.EdgeID]bool{expensive: true, 1: true, 2: true, 3: true, 4: true},
		}
		out["heterogeneous costs"] = s
	}

	// Two demands sharing a middle link, partial destruction.
	{
		g := graph.New(6, 7)
		for i := 0; i < 6; i++ {
			g.AddNode("", float64(i%3), float64(i/3), 1)
		}
		g.MustAddEdge(0, 1, 20, 1)
		g.MustAddEdge(1, 2, 20, 1)
		g.MustAddEdge(3, 4, 20, 1)
		g.MustAddEdge(4, 5, 20, 1)
		g.MustAddEdge(0, 3, 20, 1)
		g.MustAddEdge(1, 4, 20, 1)
		g.MustAddEdge(2, 5, 20, 1)
		dg := demand.New()
		dg.MustAdd(0, 5, 8)
		dg.MustAdd(2, 3, 8)
		s := &scenario.Scenario{
			Supply:      g,
			Demand:      dg,
			BrokenNodes: map[graph.NodeID]bool{1: true, 4: true},
			BrokenEdges: map[graph.EdgeID]bool{1: true, 5: true, 6: true},
		}
		out["shared middle"] = s
	}
	return out
}

// TestOptMatchesBruteForce verifies that the OPT solver finds the true
// optimum on every tiny scenario, and that ISP's cost is never below it (it
// is a heuristic upper bound).
func TestOptMatchesBruteForce(t *testing.T) {
	for name, s := range tinyScenarios(t) {
		t.Run(name, func(t *testing.T) {
			want, feasible := bruteForceMinR(t, s)
			if !feasible {
				t.Fatal("oracle says the scenario is infeasible; fix the test inputs")
			}
			optPlan, err := (&Opt{MaxNodes: 20000, TimeLimit: 60 * time.Second}).Solve(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
			if got := optPlan.RepairCost(s); math.Abs(got-want) > 1e-6 {
				t.Errorf("OPT cost = %f, brute force optimum = %f", got, want)
			}
			if err := scenario.VerifyPlan(s, optPlan); err != nil {
				t.Errorf("OPT plan invalid: %v", err)
			}

			ispPlan, err := (&ISPSolver{}).Solve(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
			if got := ispPlan.RepairCost(s); got < want-1e-6 {
				t.Errorf("ISP cost %f is below the optimum %f: its plan cannot be feasible", got, want)
			}
			if ispPlan.SatisfactionRatio() < 1-1e-9 {
				t.Errorf("ISP lost demand on a feasible instance")
			}
			if err := scenario.VerifyPlan(s, ispPlan); err != nil {
				t.Errorf("ISP plan invalid: %v", err)
			}
		})
	}
}

// TestISPDirectLinkRuleIgnoresCost documents a fidelity point: the paper's
// §IV-E rule repairs a broken supply edge that directly joins unservable
// demand endpoints regardless of its cost, so on the heterogeneous-cost
// scenario ISP restores the expensive direct link (cost 10) while OPT finds
// the cheap 4-edge detour (cost 4). With the paper's unit costs the two
// coincide.
func TestISPDirectLinkRuleIgnoresCost(t *testing.T) {
	s := tinyScenarios(t)["heterogeneous costs"]
	plan, err := (&ISPSolver{}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.RepairedEdges[0] {
		t.Errorf("expected the direct-link rule to repair edge 0; repairs: %v", plan.RepairedEdges)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("satisfaction = %f, want 1", plan.SatisfactionRatio())
	}
}

// TestISPPrefersCheapRoute checks the dynamic path metric's cost awareness
// when the direct-link rule does not apply: a 2-hop route with expensive
// repairs competes with a 4-hop route with cheap repairs, and ISP should
// restore the cheap one (as OPT does).
func TestISPPrefersCheapRoute(t *testing.T) {
	g := graph.New(6, 6)
	for i := 0; i < 6; i++ {
		g.AddNode("", float64(i), 0, 1)
	}
	// Expensive 2-hop route 0-5-4 (repair cost 10 per edge).
	exp1 := g.MustAddEdge(0, 5, 10, 10)
	exp2 := g.MustAddEdge(5, 4, 10, 10)
	// Cheap 4-hop route 0-1-2-3-4 (repair cost 1 per edge).
	g.MustAddEdge(0, 1, 10, 1)
	g.MustAddEdge(1, 2, 10, 1)
	g.MustAddEdge(2, 3, 10, 1)
	g.MustAddEdge(3, 4, 10, 1)
	dg := demand.New()
	dg.MustAdd(0, 4, 5)
	s := &scenario.Scenario{
		Supply:      g,
		Demand:      dg,
		BrokenNodes: map[graph.NodeID]bool{},
		BrokenEdges: map[graph.EdgeID]bool{exp1: true, exp2: true, 2: true, 3: true, 4: true, 5: true},
	}
	plan, err := (&ISPSolver{}).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.RepairedEdges[exp1] || plan.RepairedEdges[exp2] {
		t.Errorf("ISP repaired the expensive route; plan cost %f", plan.RepairCost(s))
	}
	if cost := plan.RepairCost(s); cost > 4+1e-9 {
		t.Errorf("ISP cost = %f, want 4 (the four cheap edges)", cost)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Error("ISP must serve the demand")
	}
	want, feasible := bruteForceMinR(t, s)
	if !feasible || math.Abs(want-4) > 1e-9 {
		t.Fatalf("oracle optimum = %f feasible=%v, expected 4", want, feasible)
	}
}
