package heuristics

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/milp"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// optBenchScenario mirrors the Quick-profile Bell-Canada setting used by the
// ISP benchmarks (4 far-apart pairs, 10 units each, complete destruction).
func optBenchScenario(b *testing.B) *scenario.Scenario {
	b.Helper()
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(1))
	dg, err := demand.GenerateFarApartPairs(g, 4, 10, rng)
	if err != nil {
		b.Fatal(err)
	}
	d := disruption.Complete(g)
	return &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
}

// BenchmarkOPT_NodeThroughput measures branch-and-bound node throughput on
// the MinR MILP: every node is one LP relaxation, warm-started from its
// parent's basis, so nodes/sec tracks the LP re-solve cost directly.
func BenchmarkOPT_NodeThroughput(b *testing.B) {
	s := optBenchScenario(b)
	model := buildOptModel(s)
	ctx := context.Background()
	totalNodes := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol := milp.Solve(ctx, milp.Problem{LP: model.problem, Binary: model.binaries},
			milp.Options{MaxNodes: 300, TimeLimit: 5 * time.Minute})
		if sol.Status == milp.StatusUnbounded {
			b.Fatalf("unexpected status %v", sol.Status)
		}
		totalNodes += sol.NodesExplored
	}
	b.StopTimer()
	if totalNodes > 0 {
		b.ReportMetric(float64(totalNodes)/b.Elapsed().Seconds(), "nodes/sec")
	}
}

// BenchmarkOPT_Parallel measures how branch-and-bound node throughput scales
// with the worker count on the Quick-profile MinR MILP (300-node search).
// The search trace is identical for every worker count — the same nodes,
// the same plan — so nodes/sec differences are pure parallel speedup. Run
// the sub-benchmarks on a machine with at least as many cores as workers;
// on fewer cores the extra workers only measure the (small) round-barrier
// overhead.
func BenchmarkOPT_Parallel(b *testing.B) {
	s := optBenchScenario(b)
	prob := OptMILP(s)
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			totalNodes := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol := milp.Solve(ctx, prob,
					milp.Options{MaxNodes: 300, TimeLimit: 5 * time.Minute, Workers: workers})
				if sol.Status == milp.StatusUnbounded {
					b.Fatalf("unexpected status %v", sol.Status)
				}
				totalNodes += sol.NodesExplored
			}
			b.StopTimer()
			if totalNodes > 0 {
				b.ReportMetric(float64(totalNodes)/b.Elapsed().Seconds(), "nodes/sec")
			}
		})
	}
}
