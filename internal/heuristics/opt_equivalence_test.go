package heuristics

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/graph"
	"netrecovery/internal/milp"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// TestOptMILPSparseMatchesDenseLP solves the MinR MILP on the invariants
// topologies with both LP backends for the branch-and-bound relaxations:
// the warm-started sparse revised simplex and the legacy dense tableau.
// The explored trees may differ (different optimal vertices steer the
// branching), but the proven optimal objective must agree within 1e-6.
func TestOptMILPSparseMatchesDenseLP(t *testing.T) {
	ctx := context.Background()
	for _, topo := range []string{"grid", "erdos-renyi"} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			var (
				g   *graph.Graph
				err error
			)
			if topo == "grid" {
				g, err = topology.Grid(3, 3, topology.DefaultConfig(20))
			} else {
				g, err = topology.ErdosRenyi(10, 0.4, topology.DefaultConfig(20), rng)
			}
			if err != nil {
				t.Fatal(err)
			}
			dg, err := demand.GenerateFarApartPairs(g, 2, 5, rng)
			if err != nil {
				t.Fatal(err)
			}
			d := disruption.Geographic(g, disruption.GeographicConfig{Auto: true, Variance: 30, PeakProbability: 1}, rng)
			s := &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}

			model := buildOptModel(s)
			base := milp.Options{MaxNodes: 20000, TimeLimit: time.Minute}
			sparseOpts, denseOpts := base, base
			denseOpts.DenseLP = true
			sparse := milp.Solve(ctx, milp.Problem{LP: model.problem, Binary: model.binaries}, sparseOpts)
			dense := milp.Solve(ctx, milp.Problem{LP: model.problem, Binary: model.binaries}, denseOpts)
			if sparse.Status != dense.Status {
				t.Fatalf("%s/%d: status sparse=%v dense=%v", topo, seed, sparse.Status, dense.Status)
			}
			if sparse.Status != milp.StatusOptimal {
				continue // both hit a limit or proved infeasibility: agreement is enough
			}
			if math.Abs(sparse.Objective-dense.Objective) > 1e-6*(1+math.Abs(dense.Objective)) {
				t.Errorf("%s/%d: objective sparse=%.9f dense=%.9f",
					topo, seed, sparse.Objective, dense.Objective)
			}
		}
	}
}
